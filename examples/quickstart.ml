(* Quickstart: trace a small program and look at its address trace.

   This is Figure 1 of the paper end to end: a user workload runs on the
   traced kernel; its per-process trace buffer drains into the in-kernel
   buffer on every kernel entry; the analysis side (us) receives the
   interleaved system trace and reconstructs the original binaries'
   reference stream.

     dune exec examples/quickstart.exe                                 *)

open Systrace

let greeting_program () : Systrace_kernel.Builder.program =
  let open Isa in
  let a = Asm.create "greet" in
  Asm.func a "main" ~frame:0 ~saves:[ Reg.s0 ] (fun () ->
      Asm.li a Reg.s0 3;
      Asm.label a "$loop";
      Asm.la a Reg.a0 "$msg";
      Asm.jal a "puts";
      Asm.addiu a Reg.s0 Reg.s0 (-1);
      Asm.bgtz a Reg.s0 "$loop";
      Asm.li a Reg.v0 0);
  Asm.dlabel a "$msg";
  Asm.asciiz a "traced hello\n";
  {
    Systrace_kernel.Builder.pname = "greet";
    modules = [ Asm.to_obj a; Workloads.Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }

let () =
  (* Collect the first few reconstructed references to show what a system
     trace looks like. *)
  let shown = ref 0 in
  let on_event ev =
    if !shown < 24 then begin
      incr shown;
      match ev with
      | Inst { addr; pid; kernel } ->
        Printf.printf "  I %08x  pid=%d %s\n" addr pid
          (if kernel then "kernel" else "user")
      | Data { addr; pid; kernel; is_load; _ } ->
        Printf.printf "  %s %08x  pid=%d %s\n"
          (if is_load then "L" else "S")
          addr pid
          (if kernel then "kernel" else "user")
    end
  in
  print_endline "First references of the interleaved system trace:";
  (* A streaming sink consumes the raw trace words online, chunk by chunk
     as each ANALYZE phase drains the in-kernel buffer — here a tee fans
     one run out to a stored trace file, a word counter, and a peak
     tracker, all in O(chunk) memory. *)
  let tmp = Filename.temp_file "quickstart" ".strc" in
  let counter, words_seen = Tracing.Sink.counting () in
  let peak, peak_words = Tracing.Sink.peak () in
  let sink =
    Tracing.Sink.tee [ Tracing.Sink.to_file ~compress:true tmp; counter; peak ]
  in
  let run = run_traced ~on_event ~sink [ greeting_program () ] [] in
  let s = run.parse_stats in
  Printf.printf "\nConsole output: %S\n" run.console;
  Printf.printf "Trace inventory:\n";
  Printf.printf "  %d trace words, %d basic-block records\n"
    s.Tracing.Parser.words s.Tracing.Parser.bb_records;
  Printf.printf "  %d instructions (%d user, %d kernel), %d data references\n"
    s.Tracing.Parser.insts s.Tracing.Parser.user_insts
    s.Tracing.Parser.kernel_insts s.Tracing.Parser.datas;
  Printf.printf "  %d buffer drains, %d pid switches, %d idle-loop instructions\n"
    s.Tracing.Parser.drains s.Tracing.Parser.pid_switches
    s.Tracing.Parser.idle_insts;
  Printf.printf
    "Streaming sinks: %d words streamed (largest chunk %d), stored trace \
     holds %d words\n"
    (words_seen ()) (peak_words ())
    (Tracing.Tracefile.fold_words tmp ~init:0 ~f:(fun n _ ~len -> n + len));
  Sys.remove tmp
