(* Cache study: replay one captured system trace through several cache
   configurations.

   This is what the tracing system was built for: "accurate simulations of
   the large memory systems that are required by state-of-the-art
   processors".  The compress workload's trace — kernel and user
   references interleaved — is captured once, then driven through
   direct-mapped caches from 4KB to 128KB, and finally through the
   set-associative model to split the conflict misses out of a fixed-size
   design (the companion study's question).

     dune exec examples/cache_study.exe                                *)

open Systrace

let () =
  let e = Workloads.Suite.find "compress" in
  Printf.printf "capturing the %s system trace...\n%!" e.Workloads.Suite.name;
  (* capture raw words for the memsim replays AND the data-reference
     stream (pid, va, load?) for the write-policy study in part 3 —
     materializing the trace is the right call here, since one capture
     feeds many replay configurations below *)
  let capture, trace = Tracing.Sink.to_array () in
  let drefs = ref [] in
  let run =
    run_traced ~sink:capture
      ~on_event:(function
        | Data { addr; pid; is_load; _ } -> drefs := (pid, addr, is_load) :: !drefs
        | _ -> ())
      [ e.Workloads.Suite.program () ]
      e.Workloads.Suite.files
  in
  let words = trace () in
  let drefs = List.rev !drefs in
  Printf.printf "  %d trace words (%d instructions reconstructed)\n\n"
    (Array.length words) run.parse_stats.Tracing.Parser.insts;
  let base = default_memsim_cfg ~system:run.system in
  Printf.printf "%-10s %-12s %-12s %-14s %-10s\n" "cache" "I-misses"
    "D-read-misses" "miss/1k-insn" "";
  List.iter
    (fun kb ->
      let cfg =
        {
          base with
          Tracesim.Memsim.icache_bytes = kb * 1024;
          dcache_bytes = kb * 1024;
        }
      in
      let mem, parse = replay ~system:run.system ~memsim_cfg:cfg words in
      let misses =
        mem.Tracesim.Memsim.icache_misses
        + mem.Tracesim.Memsim.dcache_read_misses
      in
      Printf.printf "%3d KB     %-12d %-12d %-14.2f\n" kb
        mem.Tracesim.Memsim.icache_misses
        mem.Tracesim.Memsim.dcache_read_misses
        (1000.0 *. float_of_int misses
        /. float_of_int parse.Tracing.Parser.insts))
    [ 4; 8; 16; 32; 64; 128 ];

  (* Part 2: hold the D-cache at 16KB and sweep associativity over the
     same captured trace — conflict misses melt away, the remainder is
     capacity+compulsory.  (Sim_cache_assoc can also be driven directly
     for custom streams; replay's [dcache_ways] is the packaged path.) *)
  Printf.printf "\n16 KB D-cache, associativity sweep (LRU):\n";
  Printf.printf "%-8s %-14s %-14s\n" "ways" "D-read misses" "miss/1k-insn";
  List.iter
    (fun ways ->
      let cfg = { base with Tracesim.Memsim.dcache_ways = ways } in
      let mem, parse = replay ~system:run.system ~memsim_cfg:cfg words in
      Printf.printf "%-8d %-14d %-14.2f\n" ways
        mem.Tracesim.Memsim.dcache_read_misses
        (1000.0
        *. float_of_int mem.Tracesim.Memsim.dcache_read_misses
        /. float_of_int parse.Tracing.Parser.insts))
    [ 1; 2; 4; 8 ];

  (* Part 3: write policy.  The machine (and the paper's DECstation) is
     write-through with a 4-deep write buffer; write-back/write-allocate
     is the other classic organization these traces enable studying.  The
     interesting number is memory write traffic: every store for
     write-through vs only dirty evictions for write-back. *)
  let translate pid va =
    if va >= 0x80000000 && va < 0xA0000000 then Some (va - 0x80000000)
    else if va < 0x80000000 then base.Tracesim.Memsim.pagemap pid va
    else None
  in
  Printf.printf "\n16 KB D-cache, 1-way, write policy (data refs only):\n";
  Printf.printf "%-14s %-14s %-16s\n" "policy" "read misses"
    "write traffic (words to memory)";
  List.iter
    (fun (name, policy) ->
      let c =
        Tracesim.Sim_cache_assoc.create ~policy ~size_bytes:(16 * 1024)
          ~line_bytes:4 ~ways:1 ()
      in
      let stores = ref 0 in
      List.iter
        (fun (pid, va, is_load) ->
          match translate pid va with
          | None -> ()
          | Some pa ->
            if is_load then ignore (Tracesim.Sim_cache_assoc.read c pa)
            else begin
              incr stores;
              ignore (Tracesim.Sim_cache_assoc.write c pa)
            end)
        drefs;
      let traffic =
        match policy with
        | Tracesim.Sim_cache_assoc.Write_through -> !stores
        | Tracesim.Sim_cache_assoc.Write_back ->
          c.Tracesim.Sim_cache_assoc.writebacks
      in
      Printf.printf "%-14s %-14d %-16d\n" name
        c.Tracesim.Sim_cache_assoc.read_misses traffic)
    [ ("write-through", Tracesim.Sim_cache_assoc.Write_through);
      ("write-back", Tracesim.Sim_cache_assoc.Write_back) ]
