let () =
  Alcotest.run "systrace"
    [
      ("util", Test_util.tests);
      ("isa", Test_isa.tests);
      ("machine", Test_machine.tests);
      ("tracing", Test_tracing.tests);
      ("stream", Test_stream.tests);
      ("epoxie", Test_epoxie.tests);
      ("kernel", Test_kernel.tests);
      ("tracesim", Test_tracesim.tests);
      ("workloads", Test_workloads.tests);
      ("validate", Test_validate.tests);
      ("serve", Test_serve.tests);
      ("threads", Test_threads.tests);
    ]
