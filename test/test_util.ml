(* Tests for the utility library. *)

open Systrace_util

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.next a = Rng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  check_int "copy continues" (Rng.next a) (Rng.next b)

let prop_rng_int_bounds =
  QCheck.Test.make ~count:500 ~name:"Rng.int stays in bounds"
    QCheck.(pair (int_bound 1000) (int_range 1 10000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_bits32 =
  QCheck.Test.make ~count:500 ~name:"Rng.bits32 is a 32-bit word"
    QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      let v = Rng.bits32 r in
      v >= 0 && v <= 0xFFFFFFFF)

let test_stats_mean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_percent_error () =
  check_float "overprediction" 10.0
    (Stats.percent_error ~measured:100.0 ~predicted:110.0);
  check_float "underprediction" 10.0
    (Stats.percent_error ~measured:100.0 ~predicted:90.0);
  check_float "exact" 0.0 (Stats.percent_error ~measured:5.0 ~predicted:5.0)

let test_geometric_mean () =
  check_float "geomean" 2.0 (Stats.geometric_mean [ 1.0; 2.0; 4.0 ])

let test_histogram () =
  let h = Stats.histogram ~lo:0.0 ~hi:10.0 ~bins:2 [ 1.0; 2.0; 7.0; 11.0 ] in
  check_int "bin 0" 2 h.(0);
  check_int "bin 1" 1 h.(1)

let test_table_render () =
  let t =
    Table.create ~title:"T" ~headers:[ "a"; "bb" ]
      ~aligns:[ Table.Left; Table.Right ]
  in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "contains header" true (contains s "bb");
  Alcotest.(check bool) "contains cell" true (contains s "22")

let test_pool_order () =
  let xs = List.init 100 Fun.id in
  let sq = List.map (fun x -> x * x) xs in
  check_int "serial path" 0 (List.length (Pool.map ~jobs:1 Fun.id []));
  Alcotest.(check (list int)) "jobs=1" sq (Pool.map ~jobs:1 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "jobs=4" sq (Pool.map ~jobs:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "more jobs than items" [ 1; 4 ]
    (Pool.map ~jobs:16 (fun x -> x * x) [ 1; 2 ])

let test_pool_exception () =
  let boom = Failure "boom" in
  let f x = if x = 7 then raise boom else x in
  (* [oversubscribe] so the parallel machinery actually runs even when the
     test box has a single core and the pool would otherwise degrade. *)
  Alcotest.check_raises "propagates from a worker" boom (fun () ->
      ignore (Pool.map ~oversubscribe:true ~jobs:4 f (List.init 20 Fun.id)));
  Alcotest.check_raises "propagates serially" boom (fun () ->
      ignore (Pool.map ~jobs:1 f (List.init 20 Fun.id)))

let test_pool_exception_order () =
  (* Both jobs rendezvous inside [f] before raising, so both failures are
     recorded whatever the scheduling — then input order must decide which
     one the caller sees. *)
  let arrived = Atomic.make 0 in
  let f x =
    Atomic.incr arrived;
    while Atomic.get arrived < 2 do
      Domain.cpu_relax ()
    done;
    failwith (string_of_int x)
  in
  Alcotest.check_raises "first in input order wins" (Failure "0") (fun () ->
      ignore (Pool.map ~oversubscribe:true ~chunk:1 ~jobs:2 f [ 0; 1 ]))

let test_pool_chunk () =
  let xs = List.init 37 Fun.id in
  let sq = List.map (fun x -> x * x) xs in
  List.iter
    (fun chunk ->
      Alcotest.(check (list int))
        (Printf.sprintf "chunk=%d" chunk)
        sq
        (Pool.map ~oversubscribe:true ~chunk ~jobs:4 (fun x -> x * x) xs))
    [ 1; 3; 8; 100 ];
  Alcotest.check_raises "chunk must be >= 1"
    (Invalid_argument "Pool.map: chunk 0 < 1") (fun () ->
      ignore (Pool.map ~oversubscribe:true ~chunk:0 ~jobs:4 Fun.id [ 1; 2 ]))

let prop_pool_matches_list_map =
  QCheck.Test.make ~count:50 ~name:"Pool.map == List.map for any jobs"
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (jobs, xs) ->
      Pool.map ~jobs (fun x -> (2 * x) + 1) xs
      = List.map (fun x -> (2 * x) + 1) xs)

let prop_pool_1_vs_n =
  QCheck.Test.make ~count:30
    ~name:"Pool.map: 1-domain and N-domain runs agree"
    QCheck.(
      triple (int_range 2 6) (int_range 1 10)
        (list_of_size Gen.(int_range 0 60) small_int))
    (fun (jobs, chunk, xs) ->
      let f x = (x * 7) lxor (x lsr 1) in
      Pool.map ~oversubscribe:true ~chunk ~jobs f xs = Pool.map ~jobs:1 f xs)

let tests =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "pool preserves order" `Quick test_pool_order;
    Alcotest.test_case "pool propagates exceptions" `Quick test_pool_exception;
    Alcotest.test_case "pool exception order" `Quick test_pool_exception_order;
    Alcotest.test_case "pool chunked claiming" `Quick test_pool_chunk;
    QCheck_alcotest.to_alcotest prop_pool_matches_list_map;
    QCheck_alcotest.to_alcotest prop_pool_1_vs_n;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    QCheck_alcotest.to_alcotest prop_rng_int_bounds;
    QCheck_alcotest.to_alcotest prop_rng_bits32;
    Alcotest.test_case "stats mean/stddev" `Quick test_stats_mean;
    Alcotest.test_case "percent error" `Quick test_percent_error;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "table render" `Quick test_table_render;
  ]
