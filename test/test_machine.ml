(* Tests for the machine simulator: instruction semantics, exceptions, TLB,
   caches, write buffer, FPU, and devices.

   Test programs are assembled with the eDSL, linked at a kseg0 virtual
   address, and loaded at the corresponding physical address.  The machine
   boots in kernel mode, so programs can use privileged instructions. *)

open Systrace_isa
open Systrace_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let text_va = 0x8000_1000
let data_va = 0x8000_8000

(* Build a machine running the given module from "_start"; the hcall 0
   handler halts the machine. *)
let setup ?(cfg = Machine.default_config) ?(extra = []) (build : Asm.t -> unit) =
  let a = Asm.create "test" in
  Asm.global a "_start";
  Asm.label a "_start";
  build a;
  let exe =
    Link.link ~name:"test" ~text_base:text_va ~data_base:data_va
      ~entry:"_start"
      (Asm.to_obj a :: extra)
  in
  let m = Machine.create ~cfg () in
  Machine.load_exe_phys m exe ~text_pa:(Addr.kseg0_pa text_va)
    ~data_pa:(Addr.kseg0_pa data_va);
  m.Machine.pc <- exe.Exe.entry;
  m.Machine.npc <- exe.Exe.entry + 4;
  m.Machine.hcall_handler <-
    Some (fun m code -> if code = 0 then Machine.halt m);
  (m, exe)

let run ?(max_insns = 1_000_000) m =
  match Machine.run m ~max_insns with
  | Machine.Halt -> ()
  | Machine.Limit -> Alcotest.fail "instruction limit reached"

let halt a = Asm.hcall a 0

(* ------------------------------------------------------------------ *)

let test_arith () =
  let m, _ =
    setup (fun a ->
        let open Asm in
        li a Reg.t0 21;
        li a Reg.t1 2;
        mul a Reg.t2 Reg.t0 Reg.t1;       (* 42 *)
        li a Reg.t3 (-7);
        div_ a Reg.t4 Reg.t2 Reg.t3;      (* -6 *)
        rem_ a Reg.t5 Reg.t2 Reg.t3;      (* 0 *)
        subu a Reg.t6 Reg.t2 Reg.t0;      (* 21 *)
        slt a Reg.s0 Reg.t3 Reg.zero;     (* 1: -7 < 0 signed *)
        sltu a Reg.s1 Reg.t3 Reg.zero;    (* 0: 0xfffffff9 > 0 unsigned *)
        halt a)
  in
  run m;
  check_int "mul" 42 m.Machine.regs.(Reg.t2);
  check_int "div" ((-6) land 0xFFFFFFFF) m.Machine.regs.(Reg.t4);
  check_int "rem" 0 m.Machine.regs.(Reg.t5);
  check_int "subu" 21 m.Machine.regs.(Reg.t6);
  check_int "slt signed" 1 m.Machine.regs.(Reg.s0);
  check_int "sltu unsigned" 0 m.Machine.regs.(Reg.s1)

let test_shifts () =
  let m, _ =
    setup (fun a ->
        let open Asm in
        li a Reg.t0 (-8);
        sra a Reg.t1 Reg.t0 1;            (* -4 *)
        srl a Reg.t2 Reg.t0 28;           (* 0xF *)
        sll a Reg.t3 Reg.t0 1;            (* -16 *)
        halt a)
  in
  run m;
  check_int "sra" ((-4) land 0xFFFFFFFF) m.Machine.regs.(Reg.t1);
  check_int "srl" 0xF m.Machine.regs.(Reg.t2);
  check_int "sll" ((-16) land 0xFFFFFFFF) m.Machine.regs.(Reg.t3)

let test_loads_stores () =
  let m, _ =
    setup (fun a ->
        let open Asm in
        la a Reg.t0 "buf";
        li a Reg.t1 0x12345678;
        sw a Reg.t1 0 Reg.t0;
        lw a Reg.t2 0 Reg.t0;
        lbu a Reg.t3 0 Reg.t0;            (* little-endian: 0x78 *)
        lb a Reg.t4 1 Reg.t0;             (* 0x56 *)
        lhu a Reg.t5 2 Reg.t0;            (* 0x1234 *)
        li a Reg.t6 0xFF80;
        sh a Reg.t6 4 Reg.t0;
        lh a Reg.t7 4 Reg.t0;             (* sign-extended: -128 *)
        halt a;
        dlabel a "buf";
        space a 16)
  in
  run m;
  check_int "lw" 0x12345678 m.Machine.regs.(Reg.t2);
  check_int "lbu" 0x78 m.Machine.regs.(Reg.t3);
  check_int "lb" 0x56 m.Machine.regs.(Reg.t4);
  check_int "lhu" 0x1234 m.Machine.regs.(Reg.t5);
  check_int "lh sign" ((-128) land 0xFFFFFFFF) m.Machine.regs.(Reg.t7)

let test_branch_delay_slot () =
  (* The delay slot executes even for taken branches. *)
  let m, _ =
    setup (fun a ->
        let open Asm in
        li a Reg.t0 0;
        li a Reg.t1 5;
        label a "loop";
        Asm.i a (Insn.Bne (Reg.t1, Reg.zero, Sym "loop"));
        (* delay slot: executes 5 times *)
        Asm.i a (Insn.Alui (ADDIU, Reg.t0, Reg.t0, Imm 1));
        halt a)
  in
  (* Wait: the delay slot must also decrement t1, else infinite loop. Redo
     with a proper loop below. *)
  ignore m;
  let m, _ =
    setup (fun a ->
        let open Asm in
        li a Reg.t0 0;
        li a Reg.t1 5;
        label a "loop";
        addiu a Reg.t1 Reg.t1 (-1);
        Asm.i a (Insn.Bne (Reg.t1, Reg.zero, Sym "loop"));
        Asm.i a (Insn.Alui (ADDIU, Reg.t0, Reg.t0, Imm 1)) (* delay slot *);
        halt a)
  in
  run m;
  (* Delay slot runs on every iteration including the fall-through one. *)
  check_int "delay slot executed each iteration" 5 m.Machine.regs.(Reg.t0);
  check_int "loop counter" 0 m.Machine.regs.(Reg.t1)

let test_jal_ra () =
  let m, _ =
    setup (fun a ->
        let open Asm in
        jal a "callee";
        move a Reg.s0 Reg.v0;
        halt a;
        leaf a "callee" (fun () -> li a Reg.v0 99))
  in
  run m;
  check_int "return value" 99 m.Machine.regs.(Reg.s0)

let test_syscall_exception () =
  (* A syscall from kernel mode enters the general vector with EPC set. *)
  let vec = Asm.create "vec" in
  Asm.global vec "_vec_general";
  Asm.label vec "_vec_general";
  Asm.mfc0 vec Reg.k0 Insn.C0_epc;
  Asm.mfc0 vec Reg.k1 Insn.C0_cause;
  Asm.hcall vec 0;
  let vexe =
    Link.link ~name:"vec" ~text_base:Addr.general_vector
      ~data_base:0x8000_0C00 ~entry:"_vec_general" [ Asm.to_obj vec ]
  in
  let m, exe =
    setup (fun a ->
        let open Asm in
        nop a;
        syscall a;
        nop a)
  in
  Machine.load_exe_phys m vexe
    ~text_pa:(Addr.kseg0_pa Addr.general_vector)
    ~data_pa:(Addr.kseg0_pa 0x8000_0C00);
  run m;
  let syscall_addr = exe.Exe.entry + 4 in
  check_int "epc" syscall_addr m.Machine.regs.(Reg.k0);
  check_int "cause code" (Machine.Exc.syscall lsl 2)
    (m.Machine.regs.(Reg.k1) land 0x7C);
  check_int "syscall counter" 1 m.Machine.c.Machine.syscalls

let test_delay_slot_exception () =
  (* An exception in a delay slot sets EPC to the branch and BD in cause. *)
  let vec = Asm.create "vec" in
  Asm.global vec "_vec_general";
  Asm.label vec "_vec_general";
  Asm.mfc0 vec Reg.k0 Insn.C0_epc;
  Asm.mfc0 vec Reg.k1 Insn.C0_cause;
  Asm.hcall vec 0;
  let vexe =
    Link.link ~name:"vec" ~text_base:Addr.general_vector
      ~data_base:0x8000_0C00 ~entry:"_vec_general" [ Asm.to_obj vec ]
  in
  let m, exe =
    setup (fun a ->
        let open Asm in
        nop a;
        Asm.i a (Insn.J (Sym "away"));
        Asm.i a Insn.Syscall (* delay slot *);
        label a "away";
        nop a;
        halt a)
  in
  Machine.load_exe_phys m vexe
    ~text_pa:(Addr.kseg0_pa Addr.general_vector)
    ~data_pa:(Addr.kseg0_pa 0x8000_0C00);
  run m;
  let branch_addr = exe.Exe.entry + 4 in
  check_int "epc points at branch" branch_addr m.Machine.regs.(Reg.k0);
  check "BD bit set" true (m.Machine.regs.(Reg.k1) land 0x80000000 <> 0)

let test_utlb_miss_vector () =
  (* A kuseg reference with no TLB entry vectors to 0x80000000. *)
  let vec = Asm.create "vec" in
  Asm.global vec "_vec_utlb";
  Asm.label vec "_vec_utlb";
  Asm.mfc0 vec Reg.k0 Insn.C0_badvaddr;
  Asm.hcall vec 0;
  let vexe =
    Link.link ~name:"vec" ~text_base:Addr.utlb_vector ~data_base:0x8000_0C00
      ~entry:"_vec_utlb" [ Asm.to_obj vec ]
  in
  let m, _ =
    setup (fun a ->
        let open Asm in
        li a Reg.t0 0x0040_0404;
        lw a Reg.t1 0 Reg.t0;
        halt a)
  in
  Machine.load_exe_phys m vexe
    ~text_pa:(Addr.kseg0_pa Addr.utlb_vector)
    ~data_pa:(Addr.kseg0_pa 0x8000_0C00);
  run m;
  check_int "badvaddr" 0x0040_0404 m.Machine.regs.(Reg.k0);
  check_int "utlb miss counted" 1 m.Machine.c.Machine.utlb_misses

let test_tlb_mapping () =
  (* Write a TLB entry mapping user page 0x400 (va 0x00400000) to a physical
     frame, then access it from kernel mode through kuseg. *)
  let m, _ =
    setup (fun a ->
        let open Asm in
        (* entryhi: vpn 0x400, asid 0 *)
        li a Reg.t0 (0x400 lsl 12);
        mtc0 a Reg.t0 Insn.C0_entryhi;
        (* entrylo: pfn 0x200 (pa 0x200000), valid+dirty *)
        li a Reg.t1 ((0x200 lsl 12) lor 0x600);
        mtc0 a Reg.t1 Insn.C0_entrylo;
        li a Reg.t2 (0 lsl 8);
        mtc0 a Reg.t2 Insn.C0_index;
        tlbwi a;
        (* Store through the mapping, read back through kseg0. *)
        li a Reg.t3 0x00400010;
        li a Reg.t4 0xBEEF;
        sw a Reg.t4 0 Reg.t3;
        li a Reg.t5 0x80200010;
        lw a Reg.s0 0 Reg.t5;
        halt a)
  in
  run m;
  check_int "mapped store visible at pa" 0xBEEF m.Machine.regs.(Reg.s0);
  check_int "no utlb misses" 0 m.Machine.c.Machine.utlb_misses

let test_tlbp () =
  let m, _ =
    setup (fun a ->
        let open Asm in
        li a Reg.t0 (0x123 lsl 12);
        mtc0 a Reg.t0 Insn.C0_entryhi;
        li a Reg.t1 ((0x77 lsl 12) lor 0x600);
        mtc0 a Reg.t1 Insn.C0_entrylo;
        li a Reg.t2 (5 lsl 8);
        mtc0 a Reg.t2 Insn.C0_index;
        tlbwi a;
        (* Probe for it. *)
        li a Reg.t3 (0x123 lsl 12);
        mtc0 a Reg.t3 Insn.C0_entryhi;
        tlbp a;
        mfc0 a Reg.s0 Insn.C0_index;
        (* Probe for something absent. *)
        li a Reg.t4 (0x999 lsl 12);
        mtc0 a Reg.t4 Insn.C0_entryhi;
        tlbp a;
        mfc0 a Reg.s1 Insn.C0_index;
        halt a)
  in
  run m;
  check_int "probe hit index" (5 lsl 8) m.Machine.regs.(Reg.s0);
  check "probe miss flag" true (m.Machine.regs.(Reg.s1) land 0x80000000 <> 0)

let test_user_mode_protection () =
  (* In user mode, privileged instructions trap, and kseg access traps. *)
  let vec = Asm.create "vec" in
  Asm.global vec "_vec_general";
  Asm.label vec "_vec_general";
  Asm.mfc0 vec Reg.k0 Insn.C0_cause;
  Asm.hcall vec 0;
  let vexe =
    Link.link ~name:"vec" ~text_base:Addr.general_vector
      ~data_base:0x8000_0C00 ~entry:"_vec_general" [ Asm.to_obj vec ]
  in
  (* Map a user text page: we place user code at va 0x00400000 backed by
     pa 0x200000 and jump to it with user mode set via rfe. *)
  let user = Asm.create "user" in
  Asm.global user "_user";
  Asm.label user "_user";
  Asm.li user Reg.t0 0x80000000;
  Asm.lw user Reg.t1 0 Reg.t0;
  (* should trap AdEL before this: *)
  Asm.nop user;
  let uexe =
    Link.link ~name:"user" ~text_base:0x0040_0000 ~data_base:0x0041_0000
      ~entry:"_user" [ Asm.to_obj user ]
  in
  let m, _ =
    setup (fun a ->
        let open Asm in
        (* TLB entry for user text page *)
        li a Reg.t0 (0x400 lsl 12);
        mtc0 a Reg.t0 Insn.C0_entryhi;
        li a Reg.t1 ((0x200 lsl 12) lor 0x600);
        mtc0 a Reg.t1 Insn.C0_entrylo;
        li a Reg.t2 0;
        mtc0 a Reg.t2 Insn.C0_index;
        tlbwi a;
        (* status: KUp=1 (user after rfe), IEp=0; KUc=0 now *)
        li a Reg.t3 0x8;
        mtc0 a Reg.t3 Insn.C0_status;
        li a Reg.t4 0x0040_0000;
        mtc0 a Reg.t4 Insn.C0_epc;
        mfc0 a Reg.t5 Insn.C0_epc;
        Asm.i a (Insn.Jr Reg.t5);
        Asm.i a Insn.Rfe (* delay slot: classic return-to-user sequence *))
  in
  Machine.load_exe_phys m vexe
    ~text_pa:(Addr.kseg0_pa Addr.general_vector)
    ~data_pa:(Addr.kseg0_pa 0x8000_0C00);
  Machine.load_exe_phys m uexe ~text_pa:0x20_0000 ~data_pa:0x21_0000;
  run m;
  check_int "AdEL cause" (Machine.Exc.adel lsl 2)
    (m.Machine.regs.(Reg.k0) land 0x7C)

let test_console_device () =
  let m, _ =
    setup (fun a ->
        let open Asm in
        li a Reg.t0 (0xA0000000 + Addr.device_base_pa);
        li a Reg.t1 (Char.code 'h');
        sw a Reg.t1 Addr.dev_console_tx Reg.t0;
        li a Reg.t1 (Char.code 'i');
        sw a Reg.t1 Addr.dev_console_tx Reg.t0;
        halt a)
  in
  run m;
  Alcotest.(check string) "console" "hi" (Machine.console_contents m)

let test_clock_interrupt () =
  let vec = Asm.create "vec" in
  Asm.global vec "_vec_general";
  Asm.label vec "_vec_general";
  (* Ack the clock and halt. *)
  Asm.li vec Reg.k0 (0xA0000000 + Addr.device_base_pa);
  Asm.sw vec Reg.zero Addr.dev_clock_ack Reg.k0;
  Asm.hcall vec 0;
  let vexe =
    Link.link ~name:"vec" ~text_base:Addr.general_vector
      ~data_base:0x8000_0C00 ~entry:"_vec_general" [ Asm.to_obj vec ]
  in
  let m, _ =
    setup (fun a ->
        let open Asm in
        (* Program the clock for 500 cycles. *)
        li a Reg.t0 (0xA0000000 + Addr.device_base_pa);
        li a Reg.t1 500;
        sw a Reg.t1 Addr.dev_clock_interval Reg.t0;
        (* Enable interrupts: IEc=1, IM for the clock line. *)
        li a Reg.t2 (1 lor (1 lsl (Addr.irq_clock + 8)));
        mtc0 a Reg.t2 Insn.C0_status;
        label a "spin";
        j_ a "spin")
  in
  Machine.load_exe_phys m vexe
    ~text_pa:(Addr.kseg0_pa Addr.general_vector)
    ~data_pa:(Addr.kseg0_pa 0x8000_0C00);
  run m;
  check_int "one tick" 1 m.Machine.c.Machine.clock_ticks;
  check_int "one interrupt" 1 m.Machine.c.Machine.interrupts

let test_disk_read () =
  let m, _ =
    setup (fun a ->
        let open Asm in
        li a Reg.t0 (0xA0000000 + Addr.device_base_pa);
        (* Read block 3 into pa 0x100000. *)
        li a Reg.t1 3;
        sw a Reg.t1 Addr.dev_disk_block Reg.t0;
        li a Reg.t1 0x100000;
        sw a Reg.t1 Addr.dev_disk_addr Reg.t0;
        li a Reg.t1 1;
        sw a Reg.t1 Addr.dev_disk_count Reg.t0;
        sw a Reg.t1 Addr.dev_disk_cmd Reg.t0;
        (* Busy-wait on the done block register. *)
        label a "wait";
        lw a Reg.t2 Addr.dev_disk_done_block Reg.t0;
        li a Reg.t3 3;
        bne a Reg.t2 Reg.t3 "wait";
        sw a Reg.zero Addr.dev_disk_ack Reg.t0;
        (* Load the first word of the block. *)
        li a Reg.t4 0x80100000;
        lw a Reg.s0 0 Reg.t4;
        halt a)
  in
  Disk.write_image m.Machine.disk ~block:3 ~off:0 "\xEF\xBE\xAD\xDE";
  run m;
  check_int "dma contents" 0xDEADBEEF m.Machine.regs.(Reg.s0);
  check "took disk latency" true (m.Machine.cycles > 20000)

let test_dcache_behavior () =
  (* First pass over an array misses; second pass hits. *)
  let m, _ =
    setup (fun a ->
        let open Asm in
        la a Reg.s0 "arr";
        List.iter
          (fun _pass ->
            move a Reg.t0 Reg.s0;
            li a Reg.t1 64;
            let l = fresh_label a "lp" in
            label a l;
            lw a Reg.t2 0 Reg.t0;
            addiu a Reg.t0 Reg.t0 4;
            addiu a Reg.t1 Reg.t1 (-1);
            bnez a Reg.t1 l)
          [ 1; 2 ];
        halt a;
        dlabel a "arr";
        space a 256)
  in
  let misses_before = Machine.dcache_misses m in
  run m;
  let misses = Machine.dcache_misses m - misses_before in
  (* 256 bytes / 4-byte lines = 64 misses on the first pass only. *)
  check_int "compulsory misses" 64 misses

let test_write_buffer_stalls () =
  (* A burst of back-to-back stores overwhelms the 4-entry buffer. *)
  let m, _ =
    setup (fun a ->
        let open Asm in
        la a Reg.t0 "arr";
        for k = 0 to 19 do
          sw a Reg.zero (k * 4) Reg.t0
        done;
        halt a;
        dlabel a "arr";
        space a 128)
  in
  run m;
  check "wb stalls happened" true (Machine.wb_stalls m > 0)

let test_fpu_arithmetic () =
  let m, _ =
    setup (fun a ->
        let open Asm in
        la a Reg.t0 "vals";
        ld a 0 0 Reg.t0;                      (* 1.5 *)
        ld a 1 8 Reg.t0;                      (* 2.5 *)
        fadd a 2 0 1;                         (* 4.0 *)
        fmul a 3 2 2;                         (* 16.0 *)
        i a (Insn.Fop (FDIV, 4, 3, 1));       (* 6.4 *)
        sd a 4 16 Reg.t0;
        (* Integer conversion round-trip *)
        li a Reg.t1 7;
        mtc1 a Reg.t1 5;
        cvtdw a 5 5;
        fadd a 5 5 0;                         (* 8.5 *)
        truncwd a 5 5;
        mfc1 a Reg.s0 5;                      (* 8 *)
        halt a;
        dlabel a "vals";
        double a 1.5;
        double a 2.5;
        double a 0.0)
  in
  run m;
  check_int "trunc result" 8 m.Machine.regs.(Reg.s0);
  let bits =
    Int64.logor
      (Int64.of_int (Machine.read_phys_u32 m (Addr.kseg0_pa data_va + 16)))
      (Int64.shift_left
         (Int64.of_int (Machine.read_phys_u32 m (Addr.kseg0_pa data_va + 20)))
         32)
  in
  Alcotest.(check (float 1e-9)) "fp result" 6.4 (Int64.float_of_bits bits);
  check "fp ops counted" true (m.Machine.fpu.Fpu.ops >= 5)

let test_fpu_stalls () =
  (* A dependent chain of divides must accumulate arithmetic stalls. *)
  let m, _ =
    setup (fun a ->
        let open Asm in
        la a Reg.t0 "vals";
        ld a 0 0 Reg.t0;
        ld a 1 8 Reg.t0;
        for _ = 1 to 8 do
          i a (Insn.Fop (FDIV, 0, 0, 1))
        done;
        halt a;
        dlabel a "vals";
        double a 1000.0;
        double a 1.1)
  in
  run m;
  check "arith stalls accumulate" true (Machine.arith_stalls m > 50)

let test_cycle_counter_device () =
  let m, _ =
    setup (fun a ->
        let open Asm in
        li a Reg.t0 (0xA0000000 + Addr.device_base_pa);
        lw a Reg.s0 Addr.dev_cycle_lo Reg.t0;
        lw a Reg.s1 Addr.dev_cycle_lo Reg.t0;
        halt a)
  in
  run m;
  check "cycle counter advances" true
    (m.Machine.regs.(Reg.s1) > m.Machine.regs.(Reg.s0))

let test_idle_range_counting () =
  let m, exe =
    setup (fun a ->
        let open Asm in
        li a Reg.t0 10;
        label a "idle_loop";
        addiu a Reg.t0 Reg.t0 (-1);
        bnez a Reg.t0 "idle_loop";
        label a "idle_end";
        halt a)
  in
  m.Machine.idle_lo <- Exe.symbol exe "test::idle_loop";
  m.Machine.idle_hi <- Exe.symbol exe "test::idle_end";
  run m;
  (* 10 iterations x 3 instructions (addiu, bnez, nop-delay). *)
  check_int "idle instructions" 30 m.Machine.c.Machine.idle_instructions

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "loads and stores" `Quick test_loads_stores;
    Alcotest.test_case "branch delay slot" `Quick test_branch_delay_slot;
    Alcotest.test_case "jal/ra" `Quick test_jal_ra;
    Alcotest.test_case "syscall exception" `Quick test_syscall_exception;
    Alcotest.test_case "exception in delay slot" `Quick test_delay_slot_exception;
    Alcotest.test_case "utlb miss vector" `Quick test_utlb_miss_vector;
    Alcotest.test_case "tlb mapping" `Quick test_tlb_mapping;
    Alcotest.test_case "tlbp probe" `Quick test_tlbp;
    Alcotest.test_case "user mode protection" `Quick test_user_mode_protection;
    Alcotest.test_case "console device" `Quick test_console_device;
    Alcotest.test_case "clock interrupt" `Quick test_clock_interrupt;
    Alcotest.test_case "disk read + dma" `Quick test_disk_read;
    Alcotest.test_case "dcache hit/miss" `Quick test_dcache_behavior;
    Alcotest.test_case "write buffer stalls" `Quick test_write_buffer_stalls;
    Alcotest.test_case "fpu arithmetic" `Quick test_fpu_arithmetic;
    Alcotest.test_case "fpu stalls" `Quick test_fpu_stalls;
    Alcotest.test_case "cycle counter device" `Quick test_cycle_counter_device;
    Alcotest.test_case "idle range counting" `Quick test_idle_range_counting;
  ]

(* ------------------------------------------------------------------ *)
(* Additional machine semantics                                        *)

let run_expect_vec body =
  (* Run [body] with a general-vector stub that records cause/badvaddr
     into k0/k1 and halts. *)
  let vec = Asm.create "vec" in
  Asm.global vec "_vec_general";
  Asm.label vec "_vec_general";
  Asm.mfc0 vec Reg.k0 Insn.C0_cause;
  Asm.mfc0 vec Reg.k1 Insn.C0_badvaddr;
  Asm.hcall vec 0;
  let vexe =
    Link.link ~name:"vec" ~text_base:Addr.general_vector
      ~data_base:0x8000_0C00 ~entry:"_vec_general" [ Asm.to_obj vec ]
  in
  let m, _ = setup body in
  Machine.load_exe_phys m vexe
    ~text_pa:(Addr.kseg0_pa Addr.general_vector)
    ~data_pa:(Addr.kseg0_pa 0x8000_0C00);
  run m;
  ((m.Machine.regs.(Reg.k0) lsr 2) land 0x1F, m.Machine.regs.(Reg.k1))

let test_alignment_traps () =
  let code, badva =
    run_expect_vec (fun a ->
        let open Asm in
        li a Reg.t0 0x80002002;
        lw a Reg.t1 0 Reg.t0)
  in
  check_int "AdEL" Machine.Exc.adel code;
  check_int "badva" 0x80002002 badva;
  let code, _ =
    run_expect_vec (fun a ->
        let open Asm in
        li a Reg.t0 0x80002001;
        sh a Reg.t1 0 Reg.t0)
  in
  check_int "AdES" Machine.Exc.ades code;
  let code, _ =
    run_expect_vec (fun a ->
        let open Asm in
        li a Reg.t0 0x80002004;  (* 4-aligned but not 8 *)
        ld a 0 0 Reg.t0)
  in
  check_int "l.d AdEL" Machine.Exc.adel code

let test_interrupt_masking () =
  (* With IM clear, a pending clock line must NOT interrupt. *)
  let m, _ =
    setup (fun a ->
        let open Asm in
        li a Reg.t0 (0xA0000000 + Addr.device_base_pa);
        li a Reg.t1 200;
        sw a Reg.t1 Addr.dev_clock_interval Reg.t0;
        (* IEc on, but IM = 0 *)
        li a Reg.t2 1;
        mtc0 a Reg.t2 Insn.C0_status;
        li a Reg.t3 3000;
        label a "spin";
        addiu a Reg.t3 Reg.t3 (-1);
        bgtz a Reg.t3 "spin";
        hcall a 0)
  in
  run m;
  check "ticks pending but uninterrupted" true
    (m.Machine.c.Machine.clock_ticks > 0
    && m.Machine.c.Machine.interrupts = 0)

let test_store_invalidates_decode () =
  (* Self-modifying code: a store over an instruction must invalidate the
     decoded-instruction cache (the machine-level mechanism the kernel's
     cache-flush discipline relies on). *)
  let m, exe =
    setup (fun a ->
        let open Asm in
        (* patch target: turns "li v0, 1" into "li v0, 42" *)
        la a Reg.t0 "$patch";
        li a Reg.t1 0x24020063;  (* addiu v0, zero, 99 *)
        (* run the instruction once, patch it, run again *)
        jal a "$target";
        move a Reg.s0 Reg.v0;
        sw a Reg.t1 0 Reg.t0;
        jal a "$target";
        move a Reg.s1 Reg.v0;
        hcall a 0;
        label a "$target";
        label a "$patch";
        li a Reg.v0 1;
        ret a)
  in
  ignore exe;
  run m;
  check_int "before patch" 1 m.Machine.regs.(Reg.s0);
  check_int "after patch" 99 m.Machine.regs.(Reg.s1)

let test_random_register_range () =
  let m, _ =
    setup (fun a ->
        let open Asm in
        mfc0 a Reg.s0 Insn.C0_random;
        nop a; nop a; nop a;
        mfc0 a Reg.s1 Insn.C0_random;
        hcall a 0)
  in
  run m;
  let idx r = (r lsr 8) land 0x3F in
  check "in range" true
    (idx m.Machine.regs.(Reg.s0) >= 8 && idx m.Machine.regs.(Reg.s0) < 64);
  check "advances" true (m.Machine.regs.(Reg.s0) <> m.Machine.regs.(Reg.s1))

let test_context_register () =
  let m, _ =
    setup (fun a ->
        let open Asm in
        li a Reg.t0 0xC0200000;
        mtc0 a Reg.t0 Insn.C0_context;
        (* touch an unmapped user address to set BadVPN; the utlb stub at
           the vector returns through k1 after a tlbwr of garbage, so give
           it a vector that just records context. *)
        mfc0 a Reg.s0 Insn.C0_context;
        hcall a 0)
  in
  run m;
  (* with no fault yet, BadVPN is whatever was there (0): base preserved *)
  check_int "PTEbase preserved" 0xC0200000
    (m.Machine.regs.(Reg.s0) land 0xFFE00000)

(* ------------------------------------------------------------------ *)
(* Translation micro-cache vs the full TLB walk                        *)

(* Random CP0 traffic for the property below.  Every mutation runs as real
   instructions (mtc0/tlbwi/tlbwr/rfe), so the micro-cache sees exactly the
   invalidation points the interpreter gives it — a direct [Tlb.write]
   would bypass them and prove nothing. *)
type tc_op =
  | Access of { va : int; write : bool; fetch : bool }
  | Op_tlbwi of { hi : int; lo : int; index : int }
  | Op_tlbwr of { hi : int; lo : int }
  | Op_status of int
  | Op_entryhi of int
  | Op_context of int
  | Op_rfe

let tc_machine () =
  (* One snippet per mutation kind; parameters arrive in t0..t2. *)
  let a = Asm.create "tcprop" in
  let snippet name build =
    Asm.global a name;
    Asm.label a name;
    build ();
    Asm.hcall a 0
  in
  Asm.global a "_start";
  Asm.label a "_start";
  Asm.hcall a 0;
  snippet "op_tlbwi" (fun () ->
      Asm.mtc0 a Reg.t0 Insn.C0_entryhi;
      Asm.mtc0 a Reg.t1 Insn.C0_entrylo;
      Asm.mtc0 a Reg.t2 Insn.C0_index;
      Asm.tlbwi a);
  snippet "op_tlbwr" (fun () ->
      Asm.mtc0 a Reg.t0 Insn.C0_entryhi;
      Asm.mtc0 a Reg.t1 Insn.C0_entrylo;
      Asm.tlbwr a);
  snippet "op_status" (fun () -> Asm.mtc0 a Reg.t0 Insn.C0_status);
  snippet "op_entryhi" (fun () -> Asm.mtc0 a Reg.t0 Insn.C0_entryhi);
  snippet "op_context" (fun () -> Asm.mtc0 a Reg.t0 Insn.C0_context);
  snippet "op_rfe" (fun () -> Asm.rfe a);
  let exe =
    Link.link ~name:"tcprop" ~text_base:text_va ~data_base:data_va
      ~entry:"_start" [ Asm.to_obj a ]
  in
  let m = Machine.create () in
  Machine.load_exe_phys m exe ~text_pa:(Addr.kseg0_pa text_va)
    ~data_pa:(Addr.kseg0_pa data_va);
  m.Machine.hcall_handler <- Some (fun m code -> if code = 0 then Machine.halt m);
  (m, exe)

let tc_run_snippet m exe name =
  m.Machine.pc <- Exe.symbol exe name;
  m.Machine.npc <- m.Machine.pc + 4;
  m.Machine.next_is_delay <- false;
  m.Machine.halted <- false;
  match Machine.run m ~max_insns:20 with
  | Machine.Halt -> ()
  | Machine.Limit -> Alcotest.fail (name ^ ": snippet did not halt")

(* The machine stays in kernel mode so snippets keep executing: random
   status values have their KU stack masked off. *)
let tc_status_mask = lnot 0x2A

let tc_gen_op =
  let open QCheck.Gen in
  let vpn = int_range 0 7 in
  let va =
    map2
      (fun seg vpn -> seg lor (vpn lsl 12) lor 0x100)
      (oneofl [ 0x0000_0000; 0x0000_4000; 0x8000_0000; 0xA000_0000; 0xC000_0000 ])
      vpn
  in
  let entry_hi =
    map2 (fun vpn asid -> Tlb.make_entryhi ~vpn ~asid) vpn (int_range 0 3)
  in
  let entry_lo =
    map2
      (fun pfn (valid, dirty, global, nc) ->
        Tlb.make_entrylo ~noncacheable:nc ~dirty ~valid ~global ~pfn ())
      (int_range 0 15)
      (quad bool bool bool bool)
  in
  frequency
    [
      (6, map3 (fun va write fetch ->
               Access { va; write; fetch = fetch && not write })
            va bool bool);
      (2, map3 (fun hi lo index -> Op_tlbwi { hi; lo; index = index lsl 8 })
            entry_hi entry_lo (int_range 0 63));
      (1, map2 (fun hi lo -> Op_tlbwr { hi; lo }) entry_hi entry_lo);
      (1, map (fun s -> Op_status (s land tc_status_mask)) (int_bound 0xFFFF));
      (1, map (fun hi -> Op_entryhi hi) entry_hi);
      (1, map (fun c -> Op_context (c lsl 21)) (int_bound 0x3F));
      (1, return Op_rfe);
    ]

let tc_arb_ops =
  QCheck.make
    ~print:(fun ops -> Printf.sprintf "<%d ops>" (List.length ops))
    QCheck.Gen.(list_size (int_range 1 60) tc_gen_op)

let prop_tcache_matches_walk =
  QCheck.Test.make ~count:100
    ~name:"translate micro-cache == full TLB walk on every result"
    tc_arb_ops
    (fun ops ->
      let m, exe = tc_machine () in
      let result f =
        match f () with
        | r -> Ok r
        | exception Machine.Trap { code; badva; refill } ->
          Error (code, badva, refill)
      in
      List.for_all
        (fun op ->
          match op with
          | Access { va; write; fetch } ->
            (* Oracle first: the walk never reads the micro-cache, so the
               order only affects counters, which we don't compare. *)
            let oracle =
              result (fun () -> Machine.translate_walk m va ~write ~fetch)
            in
            let fast =
              result (fun () -> Machine.translate m va ~write ~fetch)
            in
            fast = oracle
          | Op_tlbwi { hi; lo; index } ->
            m.Machine.regs.(Reg.t0) <- hi;
            m.Machine.regs.(Reg.t1) <- lo;
            m.Machine.regs.(Reg.t2) <- index;
            tc_run_snippet m exe "op_tlbwi";
            true
          | Op_tlbwr { hi; lo } ->
            m.Machine.regs.(Reg.t0) <- hi;
            m.Machine.regs.(Reg.t1) <- lo;
            tc_run_snippet m exe "op_tlbwr";
            true
          | Op_status s ->
            m.Machine.regs.(Reg.t0) <- s;
            tc_run_snippet m exe "op_status";
            true
          | Op_entryhi hi ->
            m.Machine.regs.(Reg.t0) <- hi;
            tc_run_snippet m exe "op_entryhi";
            true
          | Op_context c ->
            m.Machine.regs.(Reg.t0) <- c;
            tc_run_snippet m exe "op_context";
            true
          | Op_rfe ->
            tc_run_snippet m exe "op_rfe";
            true)
        ops)

(* ------------------------------------------------------------------ *)
(* Block-cache oracle: replay must be indistinguishable from [step]    *)

(* Complete architectural state plus every ground-truth counter.  Any
   divergence here means the block cache leaked into the simulation. *)
let bb_fingerprint (m : Machine.t) =
  let c = m.Machine.c in
  ( ( Array.to_list m.Machine.regs,
      (m.Machine.pc, m.Machine.npc, m.Machine.next_is_delay),
      (m.Machine.status, m.Machine.cause, m.Machine.epc, m.Machine.badvaddr),
      m.Machine.cycles ),
    ( (c.Machine.instructions, c.Machine.user_instructions,
       c.Machine.kernel_instructions, c.Machine.idle_instructions),
      (c.Machine.utlb_misses, c.Machine.ktlb_misses, c.Machine.exceptions,
       c.Machine.interrupts, c.Machine.clock_ticks),
      (Machine.icache_misses m, Machine.dcache_misses m, Machine.wb_stalls m) ),
    Machine.console_contents m )

(* The general/utlb vectors get a host-assembled stub: interrupts ack the
   clock and resume at epc; any other trap skips the faulting
   instruction (epc + 4).  Written straight into physical memory so the
   generated programs stay simple. *)
let bb_install_vectors m =
  let open Insn in
  let stub base =
    [
      Mfc0 (Reg.k0, C0_cause);
      Alui (ANDI, Reg.k0, Reg.k0, Imm 0x3c);
      Bne (Reg.k0, Reg.zero, Abs (base + (9 * 4)));
      nop;
      Lui (Reg.k1, Imm 0xA100);
      Store (W, Reg.zero, Reg.k1, Imm 0x08) (* dev_clock_ack *);
      Mfc0 (Reg.k1, C0_epc);
      Jr Reg.k1;
      Rfe;
      Mfc0 (Reg.k1, C0_epc);
      Alui (ADDIU, Reg.k1, Reg.k1, Imm 4);
      Jr Reg.k1;
      Rfe;
    ]
  in
  let write base insns =
    List.iteri
      (fun i insn ->
        Machine.write_phys_u32 m
          (Addr.kseg0_pa base + (4 * i))
          (Encode.encode ~pc:(base + (4 * i)) insn))
      insns
  in
  write Addr.general_vector (stub Addr.general_vector);
  write Addr.utlb_vector (stub Addr.utlb_vector)

(* Run the same program under the step-at-a-time oracle and each block
   tier (plain and superblock-fused) with identical budgets; [prepare]
   pokes extra host-side state (mapped routines, clock) into every
   machine identically. *)
let bb_run_both ?(prepare = fun (_ : Machine.t) -> ()) ?(max_insns = 400_000)
    build =
  let run_tier tier =
    let cfg = { Machine.default_config with Machine.tier } in
    let m, _ = setup ~cfg build in
    bb_install_vectors m;
    prepare m;
    (match Machine.run m ~max_insns with
    | Machine.Halt -> ()
    | Machine.Limit ->
      QCheck.Test.fail_report "generated program hit the instruction limit");
    m
  in
  let ms = run_tier Uop.Step in
  let fs = bb_fingerprint ms in
  List.iter
    (fun tier ->
      let mb = run_tier tier in
      if not (Bytes.equal ms.Machine.mem mb.Machine.mem) then
        QCheck.Test.fail_report
          (Uop.tier_name tier ^ " tier diverges from step mode in memory");
      if bb_fingerprint mb <> fs then
        QCheck.Test.fail_report
          (Uop.tier_name tier
          ^ " tier diverges from step mode in registers/counters"))
    [ Uop.Bcache; Uop.Super; Uop.Trace ];
  true

(* Generated program fragments.  [Patch] stores a freshly encoded
   instruction over a callable slot's first word (through kseg0, like
   the stores self-modifying code does); [Call_slot] jumps into it, so a
   stale decoded block would be caught immediately.  [Delay_fault] puts
   an unaligned load in a jump's delay slot: the fault must recover the
   branch pc and the in-delay flag from mid-block state. *)
type bb_op =
  | Arith of int
  | Mem_rw of int
  | Skip_fwd
  | Loop of int * int
  | Patch of int * int
  | Call_slot of int
  | Unaligned
  | Delay_fault

let bb_nslots = 3

let bb_emit_op a fresh op =
  let open Asm in
  match op with
  | Arith k ->
    addiu a Reg.s0 Reg.s0 k;
    xor_ a Reg.s1 Reg.s1 Reg.s0
  | Mem_rw k ->
    li a Reg.t4 (data_va + (4 * k));
    sw a Reg.s0 0 Reg.t4;
    lw a Reg.t5 0 Reg.t4;
    addu a Reg.s1 Reg.s1 Reg.t5
  | Skip_fwd ->
    let l = fresh "skip" in
    beq a Reg.zero Reg.zero l;
    addiu a Reg.s0 Reg.s0 1;
    addiu a Reg.s0 Reg.s0 2;
    label a l
  | Loop (n, k) ->
    let l = fresh "loop" in
    li a Reg.t3 n;
    label a l;
    addiu a Reg.s0 Reg.s0 k;
    addiu a Reg.t3 Reg.t3 (-1);
    bnez a Reg.t3 l
  | Patch (slot, k) ->
    li a Reg.t0
      (Encode.encode ~pc:0 (Insn.Alui (Insn.ADDIU, Reg.s7, Reg.s7, Insn.Imm k)));
    la a Reg.t1 (Printf.sprintf "slot%d" (slot mod bb_nslots));
    sw a Reg.t0 0 Reg.t1
  | Call_slot slot ->
    la a Reg.t2 (Printf.sprintf "slot%d" (slot mod bb_nslots));
    jalr a Reg.t2
  | Unaligned ->
    li a Reg.t8 (data_va + 0x101);
    lw a Reg.t9 0 Reg.t8
  | Delay_fault ->
    let l = fresh "df" in
    li a Reg.t8 (data_va + 0x203);
    i a (Insn.J (Insn.Sym l));
    i a (Insn.Load (Insn.W, Reg.t9, Reg.t8, Insn.Imm 0));
    label a l

let bb_build_program ops a =
  let open Asm in
  let fresh = fresh_label a in
  List.iter (bb_emit_op a fresh) ops;
  halt a;
  for s = 0 to bb_nslots - 1 do
    label a (Printf.sprintf "slot%d" s);
    addiu a Reg.s7 Reg.s7 1;
    jr_ a Reg.ra
  done

let bb_gen_op =
  let open QCheck.Gen in
  frequency
    [
      (4, map (fun k -> Arith k) (int_range 1 100));
      (3, map (fun k -> Mem_rw k) (int_range 0 63));
      (2, return Skip_fwd);
      (2, map2 (fun n k -> Loop (n, k)) (int_range 2 6) (int_range 1 9));
      (3, map2 (fun s k -> Patch (s, k)) (int_range 0 2) (int_range 1 200));
      (3, map (fun s -> Call_slot s) (int_range 0 2));
      (1, return Unaligned);
      (1, return Delay_fault);
    ]

let bb_arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat " "
        (List.map
           (function
             | Arith k -> Printf.sprintf "arith%d" k
             | Mem_rw k -> Printf.sprintf "mem%d" k
             | Skip_fwd -> "skip"
             | Loop (n, k) -> Printf.sprintf "loop%dx%d" n k
             | Patch (s, k) -> Printf.sprintf "patch%d<-%d" s k
             | Call_slot s -> Printf.sprintf "call%d" s
             | Unaligned -> "unaligned"
             | Delay_fault -> "delayfault")
           ops))
    QCheck.Gen.(list_size (int_range 1 40) bb_gen_op)

let prop_bcache_matches_step =
  QCheck.Test.make ~count:60
    ~name:"block replay == step: self-modifying text, faults, branches"
    bb_arb_ops
    (fun ops -> bb_run_both (bb_build_program ops))

(* TLB remaps under the block cache: one kuseg page flips between two
   physical frames holding different routines; jumping through the
   mapping must always execute the routine the TLB currently names, and
   stores through kseg0 to either frame must invalidate blocks decoded
   through the kuseg mapping (block keys are physical). *)

let bb_map_va = 0x0000_6000
let bb_frame1 = 0x0040_0000
let bb_frame2 = 0x0040_1000

type bb_map_op =
  | Map_remap of bool
  | Map_call
  | Map_poke of bool * int
  | Map_arith of int

let bb_map_routine k = [ Insn.Alui (Insn.ADDIU, Reg.s6, Reg.s6, Insn.Imm k); Insn.Jr Reg.ra; Insn.nop ]

let bb_map_prepare m =
  List.iteri
    (fun i insn ->
      Machine.write_phys_u32 m (bb_frame1 + (4 * i))
        (Encode.encode ~pc:(bb_map_va + (4 * i)) insn))
    (bb_map_routine 1);
  List.iteri
    (fun i insn ->
      Machine.write_phys_u32 m (bb_frame2 + (4 * i))
        (Encode.encode ~pc:(bb_map_va + (4 * i)) insn))
    (bb_map_routine 64)

let bb_map_emit a op =
  let open Asm in
  match op with
  | Map_remap second ->
    let frame = if second then bb_frame2 else bb_frame1 in
    li a Reg.t0 (Tlb.make_entryhi ~vpn:(bb_map_va lsr Addr.page_shift) ~asid:0);
    mtc0 a Reg.t0 Insn.C0_entryhi;
    li a Reg.t1
      (Tlb.make_entrylo ~dirty:true ~valid:true ~global:true
         ~pfn:(frame lsr Addr.page_shift) ());
    mtc0 a Reg.t1 Insn.C0_entrylo;
    li a Reg.t2 (8 lsl 8);
    mtc0 a Reg.t2 Insn.C0_index;
    tlbwi a
  | Map_call ->
    li a Reg.t6 bb_map_va;
    jalr a Reg.t6
  | Map_poke (second, k) ->
    let frame = if second then bb_frame2 else bb_frame1 in
    li a Reg.t0
      (Encode.encode ~pc:bb_map_va
         (Insn.Alui (Insn.ADDIU, Reg.s6, Reg.s6, Insn.Imm k)));
    li a Reg.t1 (Addr.kseg0_base lor frame);
    sw a Reg.t0 0 Reg.t1
  | Map_arith k -> addiu a Reg.s0 Reg.s0 k

let bb_map_build ops a =
  List.iter (bb_map_emit a) (Map_remap false :: ops);
  halt a

let bb_map_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat " "
        (List.map
           (function
             | Map_remap b -> Printf.sprintf "remap%B" b
             | Map_call -> "call"
             | Map_poke (b, k) -> Printf.sprintf "poke%B<-%d" b k
             | Map_arith k -> Printf.sprintf "arith%d" k)
           ops))
    QCheck.Gen.(
      list_size (int_range 1 40)
        (frequency
           [
             (3, map (fun b -> Map_remap b) bool);
             (4, return Map_call);
             (2, map2 (fun b k -> Map_poke (b, k)) bool (int_range 1 200));
             (2, map (fun k -> Map_arith k) (int_range 1 100));
           ]))

let prop_bcache_tlb_remap =
  QCheck.Test.make ~count:60
    ~name:"block replay == step: TLB remaps over cached blocks"
    bb_map_arb
    (fun ops -> bb_run_both ~prepare:bb_map_prepare (bb_map_build ops))

(* Clock interrupts at random intervals sweep the interrupt-arrival
   point across every block-boundary alignment — including an irq
   raised at the branch→delay-slot boundary, whose delivery [step]
   defers by exactly one instruction (the regression that motivated
   this property: block chaining must not defer it further). *)

type bb_clk_op = Clk_arith of int | Clk_skip | Clk_loop of int * int | Clk_mem of int

let bb_clk_build ops a =
  let open Asm in
  let fresh = fresh_label a in
  li a Reg.t0 (0x401 lor (1 lsl (Addr.irq_clock + 8)));
  mtc0 a Reg.t0 Insn.C0_status;
  List.iter
    (fun op ->
      bb_emit_op a fresh
        (match op with
        | Clk_arith k -> Arith k
        | Clk_skip -> Skip_fwd
        | Clk_loop (n, k) -> Loop (n, k)
        | Clk_mem k -> Mem_rw k))
    ops;
  halt a;
  for s = 0 to bb_nslots - 1 do
    label a (Printf.sprintf "slot%d" s);
    addiu a Reg.s7 Reg.s7 1;
    jr_ a Reg.ra
  done

let bb_clk_arb =
  QCheck.make
    ~print:(fun (iv, ops) -> Printf.sprintf "interval=%d <%d ops>" iv (List.length ops))
    QCheck.Gen.(
      (* Floor the interval above the handler's steady-state cost (~30
         cycles: nine instructions plus the uncached ack store) — below
         that the clock refires mid-handler forever and the *guest*
         livelocks, on real hardware just as much as here. *)
      pair (int_range 100 300)
        (list_size (int_range 5 40)
           (frequency
              [
                (4, map (fun k -> Clk_arith k) (int_range 1 100));
                (3, return Clk_skip);
                (4, map2 (fun n k -> Clk_loop (n, k)) (int_range 2 8) (int_range 1 9));
                (2, map (fun k -> Clk_mem k) (int_range 0 63));
              ])))

let prop_bcache_clock_interrupts =
  QCheck.Test.make ~count:60
    ~name:"block replay == step: clock interrupts at random intervals"
    bb_clk_arb
    (fun (interval, ops) ->
      bb_run_both
        ~prepare:(fun m ->
          m.Machine.clock_interval <- interval;
          m.Machine.next_clock <- interval)
        (bb_clk_build ops))

(* Structural invariants of superblock fusion (DESIGN.md §5h), over
   random lowered bodies salted with fusible idioms.  A store may only
   be a run's *final* element, so a fused run never crosses a
   store-generation bump — the post-store revalidation happens
   immediately after the dispatch.  (The event-horizon half of the
   contract is runtime behaviour: every seam re-checks the horizon, and
   the clock-interrupt equality property above exercises it on the
   Super tier.)  Covered slots must keep their scalar originals so a
   mid-run bail-out resumes on the unfused tail, and runs never
   overlap. *)

let fuse_gen_insns =
  let open QCheck.Gen in
  let reg = int_range 0 7 in
  let imm = map (fun i -> Insn.Imm i) (int_range (-64) 64) in
  let tgt = map (fun a -> 4 * a) (int_range 0 1024) in
  let insn =
    frequency
      [
        (4, map3 (fun rt rs i -> Insn.Alui (Insn.ADDIU, rt, rs, i)) reg reg imm);
        (2, map2 (fun rt i -> Insn.Lui (rt, i)) reg imm);
        (2, map3 (fun rt rs i -> Insn.Alui (Insn.ORI, rt, rs, i)) reg reg imm);
        (2, map3 (fun rd rs rt -> Insn.Alu (Insn.SLT, rd, rs, rt)) reg reg reg);
        (2, map3 (fun rt b i -> Insn.Load (Insn.W, rt, b, i)) reg reg imm);
        (2, map3 (fun rt b i -> Insn.Store (Insn.W, rt, b, i)) reg reg imm);
        (2, map2 (fun rs a -> Insn.Bne (rs, 0, Insn.Abs a)) reg tgt);
        (2, map2 (fun rs a -> Insn.Beq (rs, 0, Insn.Abs a)) reg tgt);
        (1, map (fun a -> Insn.J (Insn.Abs a)) tgt);
        (2, return (Insn.Shift (Insn.SLL, 0, 0, 0)));
        (1, return Insn.Syscall);
      ]
  in
  let chunk =
    frequency
      [
        (5, map (fun i -> [ i ]) insn);
        ( 2,
          map3
            (fun rd rs a ->
              [ Insn.Alu (Insn.SLTU, rd, rs, rs); Insn.Bne (rd, 0, Insn.Abs a) ])
            reg reg tgt );
        ( 2,
          map2
            (fun rt i ->
              [ Insn.Lui (rt, Insn.Imm 0x1234); Insn.Alui (Insn.ORI, rt, rt, i) ])
            reg imm );
        ( 2,
          map3
            (fun rt b i ->
              [
                Insn.Load (Insn.W, rt, b, i);
                Insn.Alui (Insn.ADDIU, rt, rt, Insn.Imm 4);
                Insn.Store (Insn.W, rt, b, i);
              ])
            reg reg imm );
        (1, map (fun a -> [ Insn.J (Insn.Abs a); Insn.nop ]) tgt);
      ]
  in
  map List.concat (list_size (int_range 1 20) chunk)

let fuse_arb_insns =
  QCheck.make
    ~print:(fun insns -> Printf.sprintf "<%d insns>" (List.length insns))
    fuse_gen_insns

let prop_fusion_structure =
  QCheck.Test.make ~count:500
    ~name:
      "superblock fusion: stores only final (no run crosses a generation \
       bump), originals kept, runs disjoint"
    fuse_arb_insns
    (fun insns ->
      let scal = Array.of_list (List.map Uop.of_insn insns) in
      let out = Uop.fuse scal in
      let n = Array.length out in
      if n <> Array.length scal then
        QCheck.Test.fail_report "fusion changed the block length";
      Array.iter
        (fun u ->
          if Uop.is_fused u then
            QCheck.Test.fail_report "of_insn produced a fused constructor")
        scal;
      let i = ref 0 in
      while !i < n do
        let u = out.(!i) in
        let w = Uop.width u in
        if w > 1 then begin
          if !i + w > n then
            QCheck.Test.fail_report "fused run extends past the block end";
          for j = !i + 1 to !i + w - 1 do
            if out.(j) <> scal.(j) then
              QCheck.Test.fail_report
                "covered slot lost its scalar original (bail-out could not \
                 resume)"
          done;
          for j = !i to !i + w - 2 do
            match scal.(j) with
            | Uop.U_sw _ | Uop.U_sh _ | Uop.U_sb _ ->
              QCheck.Test.fail_report
                "store in a non-final fused position (run would cross a \
                 store-generation bump)"
            | Uop.U_other _ ->
              QCheck.Test.fail_report "U_other inside a fused run"
            | Uop.U_beq _ | Uop.U_bne _ | Uop.U_blez _ | Uop.U_bgtz _
            | Uop.U_bltz _ | Uop.U_bgez _ | Uop.U_bc1t _ | Uop.U_bc1f _
            | Uop.U_jal _ | Uop.U_jr _ | Uop.U_jalr _ ->
              QCheck.Test.fail_report "branch in a non-final fused position"
            | Uop.U_j _ -> (
              match u with
              | Uop.U_j_nop _ -> ()
              | _ ->
                QCheck.Test.fail_report "jump in a non-final fused position")
            | _ -> ()
          done
        end;
        i := !i + w
      done;
      true)


(* --- CLI tier resolution (satellite of the trace-tier PR) ---------- *)

let test_tier_of_cli () =
  (match Uop.tier_of_cli ~tier:None ~no_bcache:false with
  | Ok Uop.Super -> ()
  | _ -> Alcotest.fail "neither flag should default to Super");
  (match Uop.tier_of_cli ~tier:None ~no_bcache:true with
  | Ok Uop.Tcache -> ()
  | _ -> Alcotest.fail "--no-bcache alone should alias to Tcache");
  (match Uop.tier_of_cli ~tier:(Some Uop.Trace) ~no_bcache:false with
  | Ok Uop.Trace -> ()
  | _ -> Alcotest.fail "an explicit --interp-tier should be honoured");
  (match Uop.tier_of_cli ~tier:(Some Uop.Step) ~no_bcache:true with
  | Error _ -> ()
  | Ok _ ->
    Alcotest.fail
      "--interp-tier plus --no-bcache must be rejected (the alias used to \
       lose silently)")

(* A TLB miss on the load of the *last* fused load-modify-store triple
   of a block: the block has already retired whole [U_lmw] dispatches
   when element 1 of its final triple faults, and at the Trace tier the
   fault follows a trace side exit (the loop backedge diverges on the
   last iteration), so trap recovery rebuilds pc/epc and the register
   file from mid-block state with the register cache spilled.
   Registers, EPC, BadVAddr, memory and every counter must match
   step-at-a-time exactly. *)
let test_lmw_last_load_tlb_miss () =
  let build a =
    let open Asm in
    li a Reg.s0 30;
    la a Reg.t2 "buf";
    label a "loop";
    lw a Reg.t3 0 Reg.t2;
    addiu a Reg.t3 Reg.t3 1;
    sw a Reg.t3 0 Reg.t2;
    lw a Reg.t4 4 Reg.t2;
    addiu a Reg.t4 Reg.t4 1;
    sw a Reg.t4 4 Reg.t2;
    addiu a Reg.s0 Reg.s0 (-1);
    bnez a Reg.s0 "loop";
    (* fall out: one more valid triple, then one through an unmapped
       kuseg page — its load takes a utlb refill mid-block, the vector
       stub skips the faulting instruction (and then the store's) *)
    lw a Reg.t5 8 Reg.t2;
    addiu a Reg.t5 Reg.t5 1;
    sw a Reg.t5 8 Reg.t2;
    li a Reg.t2 0x4000;
    lw a Reg.t6 0 Reg.t2;
    addiu a Reg.t6 Reg.t6 1;
    sw a Reg.t6 0 Reg.t2;
    halt a;
    dlabel a "buf";
    word a 0;
    word a 0;
    word a 0
  in
  let run_tier tier =
    let cfg = { Machine.default_config with Machine.tier } in
    let m, _ = setup ~cfg build in
    bb_install_vectors m;
    (match Machine.run m ~max_insns:10_000 with
    | Machine.Halt -> ()
    | Machine.Limit -> Alcotest.fail "instruction limit reached");
    m
  in
  let ms = run_tier Uop.Step in
  let fs = bb_fingerprint ms in
  List.iter
    (fun tier ->
      let mt = run_tier tier in
      check
        (Uop.tier_name tier ^ ": memory matches step after lmw fault")
        true
        (Bytes.equal ms.Machine.mem mt.Machine.mem);
      check
        (Uop.tier_name tier ^ ": registers/epc/counters match step")
        true
        (bb_fingerprint mt = fs))
    [ Uop.Super; Uop.Trace ];
  (* the run really took the fault path it claims to test *)
  check_int "two utlb refills (lw then sw)" 2 ms.Machine.c.Machine.utlb_misses;
  check_int "badvaddr names the unmapped page" 0x4000 ms.Machine.badvaddr;
  let buf_pa = Addr.kseg0_pa data_va in
  check_int "buf.0 counted every loop pass" 30 (Machine.read_phys_u32 ms buf_pa);
  check_int "buf.8 counted once on fall-out" 1
    (Machine.read_phys_u32 ms (buf_pa + 8))

(* Structural invariants of trace superblocks (DESIGN.md section 5i),
   checked on whatever traces form while random self-modifying /
   faulting programs run at the Trace tier (salted with long loops so
   chains actually get hot).  The page/generation snapshot must agree
   with every constituent block — a trace never spans a
   store-generation bump at formation, and in-pass bumps side-exit,
   which the equality properties above check behaviourally.  The
   register-cache candidates are distinct non-zero architectural
   registers.  And a dead trace is never left installed on its head:
   invalidation clears [bb_trace], so the head deopts to plain [Super]
   block dispatch, never to [step]. *)
let prop_trace_structure =
  QCheck.Test.make ~count:60
    ~name:
      "trace superblocks: snapshot consistent, register cache sane, dead \
       traces deopt to super"
    bb_arb_ops
    (fun ops ->
      let ops = Loop (20, 5) :: (ops @ [ Loop (20, 7) ]) in
      let cfg = { Machine.default_config with Machine.tier = Uop.Trace } in
      let m, _ = setup ~cfg (bb_build_program ops) in
      bb_install_vectors m;
      (match Machine.run m ~max_insns:400_000 with
      | Machine.Halt -> ()
      | Machine.Limit ->
        QCheck.Test.fail_report "generated program hit the instruction limit");
      List.iter
        (fun (b : Uop.block) ->
          match b.Uop.bb_trace with
          | Some tr when not tr.Uop.tr_live ->
            QCheck.Test.fail_report
              "invalidated trace still installed on its head block"
          | _ -> ())
        (Machine.cached_blocks m);
      List.iter
        (fun (tr : Uop.trace) ->
          let nb = Array.length tr.Uop.tr_blocks in
          if nb < 2 || nb > cfg.Machine.trace_len then
            QCheck.Test.fail_report "trace block count out of range";
          if tr.Uop.tr_insns > Uop.trace_max_insns then
            QCheck.Test.fail_report "trace exceeds the total-slot cap";
          if Array.length tr.Uop.tr_pages <> Array.length tr.Uop.tr_gens then
            QCheck.Test.fail_report "page/generation snapshot lengths differ";
          Array.iter
            (fun (b : Uop.block) ->
              if not (Uop.trace_eligible b) then
                QCheck.Test.fail_report "ineligible block inside a trace";
              let pg = b.Uop.bb_pa lsr Addr.page_shift in
              let found = ref false in
              Array.iteri
                (fun i p ->
                  if p = pg then begin
                    found := true;
                    if tr.Uop.tr_gens.(i) <> b.Uop.bb_gen then
                      QCheck.Test.fail_report
                        "snapshot generation disagrees with a constituent \
                         block (trace spans a store-generation bump)"
                  end)
                tr.Uop.tr_pages;
              if not !found then
                QCheck.Test.fail_report
                  "constituent block's page missing from the snapshot")
            tr.Uop.tr_blocks;
          (let lo = Array.fold_left min max_int tr.Uop.tr_pages
           and hi = Array.fold_left max (-1) tr.Uop.tr_pages in
           if tr.Uop.tr_pg_lo <> lo || tr.Uop.tr_pg_hi <> hi then
             QCheck.Test.fail_report
               "spanned-page range disagrees with the snapshot");
          let regs = Array.to_list tr.Uop.tr_regs in
          if List.length regs > 4 then
            QCheck.Test.fail_report "more than 4 register-cache candidates";
          if List.exists (fun r -> r <= 0 || r > 31) regs then
            QCheck.Test.fail_report "cached register out of range (or $0)";
          if List.length (List.sort_uniq compare regs) <> List.length regs
          then QCheck.Test.fail_report "duplicate register-cache candidate")
        (Machine.cached_traces m);
      true)

let tests =
  tests
  @ [
      QCheck_alcotest.to_alcotest prop_tcache_matches_walk;
      QCheck_alcotest.to_alcotest prop_bcache_matches_step;
      QCheck_alcotest.to_alcotest prop_bcache_tlb_remap;
      QCheck_alcotest.to_alcotest prop_bcache_clock_interrupts;
      QCheck_alcotest.to_alcotest prop_fusion_structure;
      QCheck_alcotest.to_alcotest prop_trace_structure;
      Alcotest.test_case "cli tier resolution" `Quick test_tier_of_cli;
      Alcotest.test_case "lmw last-load tlb miss vs step" `Quick
        test_lmw_last_load_tlb_miss;
      Alcotest.test_case "alignment traps" `Quick test_alignment_traps;
      Alcotest.test_case "interrupt masking" `Quick test_interrupt_masking;
      Alcotest.test_case "store invalidates decode" `Quick
        test_store_invalidates_decode;
      Alcotest.test_case "random register range" `Quick test_random_register_range;
      Alcotest.test_case "context register" `Quick test_context_register;
    ]
