(* The trace-ingest daemon: wire protocol totality, bounded-queue
   backpressure, loopback round trips, lossy-mode loss accounting, and
   the fault-injection client suite (torn frames, truncation, abrupt
   disconnect) — the daemon must survive all of it with structured
   diagnoses, no exceptions, no hangs, and no leaked descriptors. *)

open Systrace

module Wire = Serve.Wire
module Bqueue = Serve.Bqueue
module Server = Serve.Server
module Client = Serve.Client

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Bqueue                                                              *)

let test_bqueue_basics () =
  let q = Bqueue.create ~slots:4 ~slot_words:8 in
  check_int "capacity" 32 (Bqueue.capacity_words q);
  check_bool "fresh empty" true (Bqueue.is_empty q);
  check_bool "fresh pop" true (Bqueue.pop q = None);
  (* fill one slot exactly: it queues itself *)
  (match Bqueue.reserve q with
  | Some (buf, off, space) ->
    check_int "fresh offset" 0 off;
    check_int "fresh space" 8 space;
    for i = 0 to 7 do
      buf.(i) <- 100 + i
    done;
    Bqueue.commit q 8
  | None -> Alcotest.fail "fresh queue full");
  check_int "one queued" 1 (Bqueue.queued q);
  (* partial tail is invisible until flush *)
  (match Bqueue.reserve q with
  | Some (buf, off, _) ->
    buf.(off) <- 200;
    Bqueue.commit q 1
  | None -> Alcotest.fail "queue full at 1/4");
  check_int "still one queued" 1 (Bqueue.queued q);
  check_int "resident" 9 (Bqueue.resident_words q);
  Bqueue.flush q;
  check_int "flushed tail queued" 2 (Bqueue.queued q);
  (match Bqueue.pop q with
  | Some (buf, len) ->
    check_int "first len" 8 len;
    check_int "first word" 100 buf.(0)
  | None -> Alcotest.fail "nothing to pop");
  (match Bqueue.pop q with
  | Some (buf, len) ->
    check_int "second len" 1 len;
    check_int "second word" 200 buf.(0)
  | None -> Alcotest.fail "no second chunk");
  check_bool "drained empty" true (Bqueue.is_empty q);
  check_int "peak" 9 (Bqueue.peak_words q);
  (* fill to the brim: reserve must refuse *)
  let wrote = ref 0 in
  let rec fill () =
    match Bqueue.reserve q with
    | Some (_, _, space) ->
      Bqueue.commit q space;
      wrote := !wrote + space;
      fill ()
    | None -> ()
  in
  fill ();
  check_int "full at capacity" 32 !wrote;
  check_int "full resident" 32 (Bqueue.resident_words q);
  check_bool "full refuses" true (Bqueue.reserve q = None);
  ignore (Bqueue.pop q);
  check_bool "pop reopens" true (Bqueue.reserve q <> None)

(* Random interleaving of produce/pop against a reference model: FIFO
   word order exactly preserved, resident words never above capacity. *)
let prop_bqueue_order =
  QCheck.Test.make ~count:200 ~name:"bqueue preserves order within bounds"
    QCheck.(
      pair
        (pair (int_range 2 5) (int_range 1 16))
        (list_of_size Gen.(int_range 1 60) (int_range 0 20)))
    (fun ((slots, slot_words), ops) ->
      let q = Bqueue.create ~slots ~slot_words in
      let next = ref 0 in
      let popped = ref [] in
      let pop1 () =
        match Bqueue.pop q with
        | Some (buf, len) ->
          for i = 0 to len - 1 do
            popped := buf.(i) :: !popped
          done
        | None -> ()
      in
      List.iter
        (fun op ->
          if op = 0 then Bqueue.flush q
          else if op mod 2 = 1 then pop1 ()
          else begin
            (* produce up to [op] words, stopping at backpressure *)
            let want = ref op in
            let stop = ref false in
            while !want > 0 && not !stop do
              match Bqueue.reserve q with
              | Some (buf, off, space) ->
                let k = min space !want in
                for i = 0 to k - 1 do
                  buf.(off + i) <- !next + i
                done;
                Bqueue.commit q k;
                next := !next + k;
                want := !want - k
              | None -> stop := true
            done
          end;
          if Bqueue.resident_words q > Bqueue.capacity_words q then
            QCheck.Test.fail_reportf "resident %d > capacity %d"
              (Bqueue.resident_words q)
              (Bqueue.capacity_words q))
        ops;
      Bqueue.flush q;
      let rec drain () =
        match Bqueue.pop q with
        | Some (buf, len) ->
          for i = 0 to len - 1 do
            popped := buf.(i) :: !popped
          done;
          drain ()
        | None -> ()
      in
      drain ();
      let got = List.rev !popped in
      got = List.init !next (fun i -> i)
      && Bqueue.peak_words q <= Bqueue.capacity_words q)

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)

(* Decode a byte string through the incremental decoder, feeding it in
   pieces of the given sizes (cycled) and collecting into chunks of
   [dst_cap]; returns the words, the final status, and the eof
   classification.  Never raises whatever the input. *)
let decode_pieces ?(dst_cap = 97) bytes sizes =
  let src = Bytes.of_string bytes in
  let d = Wire.decoder () in
  let out = ref [] in
  let dst = Array.make dst_cap 0 in
  let pos = ref 0 in
  let n = Bytes.length src in
  let sizes = if sizes = [] then [ n ] else sizes in
  let szs = ref sizes in
  let next_size () =
    match !szs with
    | [] ->
      szs := sizes;
      List.hd sizes
    | s :: tl ->
      szs := tl;
      s
  in
  let last = ref Wire.Need_more in
  while !pos < n && (match !last with Wire.Fault _ -> false | _ -> true) do
    let len = min (max 1 (next_size ())) (n - !pos) in
    let src_pos = ref !pos in
    let src_len = !pos + len in
    let continue = ref true in
    while !continue do
      let dst_pos = ref 0 in
      let st =
        Wire.decode d ~src ~src_pos ~src_len ~dst ~dst_pos ~dst_len:dst_cap
      in
      for i = 0 to !dst_pos - 1 do
        out := dst.(i) :: !out
      done;
      last := st;
      match st with
      | Wire.Need_more -> continue := false
      | Wire.Fault _ -> continue := false
      | Wire.Stream_end -> if !src_pos >= src_len then continue := false
      | Wire.Dst_full | Wire.Frame_end -> ()
    done;
    pos := !src_pos
  done;
  (Array.of_list (List.rev !out), !last, Wire.eof_error d)

let gen_words =
  QCheck.Gen.(
    array_size (int_range 0 400)
      (oneof
         [
           int_range 0 0xFFFF;
           int_range 0x7FFFFFF0 0x8000000F;  (* around the sign bit *)
           int_range 0xFFFF0000 0xFFFFFFFF;
         ]))

let prop_wire_roundtrip =
  QCheck.Test.make ~count:300 ~name:"wire roundtrip under any re-chunking"
    QCheck.(
      make
        Gen.(
          triple gen_words (int_range 1 200)
            (list_size (int_range 1 12) (int_range 1 37))))
    (fun (ws, frame_words, sizes) ->
      let bytes = Wire.encode ~frame_words ws in
      let got, _, eof = decode_pieces bytes sizes in
      got = ws && eof = None)

let prop_wire_torn =
  QCheck.Test.make ~count:300 ~name:"torn wire stream: prefix + diagnosis"
    QCheck.(
      make
        Gen.(
          triple gen_words (int_range 1 100)
            (pair (int_range 0 10000) (int_range 1 23))))
    (fun (ws, frame_words, (cut_raw, piece)) ->
      let bytes = Wire.encode ~frame_words ws in
      let cut = cut_raw mod (String.length bytes + 1) in
      let torn = String.sub bytes 0 cut in
      let got, _, eof = decode_pieces torn [ piece ] in
      (* decoded words are a prefix of the original, and a cut anywhere
         before the end is classified as a structured diagnosis *)
      Array.length got <= Array.length ws
      && got = Array.sub ws 0 (Array.length got)
      && if cut = String.length bytes then eof = None else eof <> None)

let test_wire_faults () =
  (* bad magic *)
  let b = Buffer.create 16 in
  Buffer.add_int32_le b 0xDEADBEEFl;
  let _, st, _ = decode_pieces (Buffer.contents b) [ 4 ] in
  (match st with
  | Wire.Fault e ->
    check_bool "bad magic names state" true (e.Wire.state = "stream header")
  | _ -> Alcotest.fail "bad magic not a fault");
  (* unknown frame kind *)
  let b = Buffer.create 16 in
  Wire.put_magic b;
  Buffer.add_int32_le b (Int32.of_int ((7 lsl 24) lor 3));
  let _, st, _ = decode_pieces (Buffer.contents b) [ 3 ] in
  (match st with
  | Wire.Fault e -> check_bool "kind fault" true (e.Wire.state = "frame header")
  | _ -> Alcotest.fail "unknown kind not a fault");
  (* END with a nonzero count *)
  let b = Buffer.create 16 in
  Wire.put_magic b;
  Buffer.add_int32_le b (Int32.of_int ((1 lsl 24) lor 5));
  let _, st, _ = decode_pieces (Buffer.contents b) [ 5 ] in
  (match st with
  | Wire.Fault e -> check_bool "end fault" true (e.Wire.state = "END frame")
  | _ -> Alcotest.fail "bad END not a fault");
  (* trailing garbage after END *)
  let bytes = Wire.encode [| 1; 2; 3 |] ^ "zz" in
  let got, st, _ = decode_pieces bytes [ 7 ] in
  check_int "words before trailing garbage" 3 (Array.length got);
  (match st with
  | Wire.Fault e ->
    check_bool "trailing fault" true (e.Wire.state = "after END")
  | _ -> Alcotest.fail "trailing garbage not a fault");
  (* out-of-range word refused at the encoder *)
  Alcotest.check_raises "encoder refuses 2^32"
    (Invalid_argument
       "Wire.put_words: word 0 = 0x100000000 outside 32-bit range")
    (fun () -> ignore (Wire.encode [| 1 lsl 32 |]))

(* ------------------------------------------------------------------ *)
(* The daemon over loopback sockets                                    *)

let tmp_name tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "systrace_%s_%d.sock" tag (Unix.getpid ()))

let open_fds () = Array.length (Sys.readdir "/proc/self/fd")

(* Poll aggregated counters until no stream is active (abrupt
   disconnects finish asynchronously to the client's close). *)
let quiesce t =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let s = Server.stats t in
    if s.Server.streams_active = 0 then s
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "daemon did not quiesce"
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let with_server cfg f =
  let t = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t)

let fixture_words = lazy (Tracing.Tracefile.load "fixture_v3.strc")

let test_loopback_roundtrip () =
  let path = tmp_name "rt" in
  let cfg =
    {
      (Server.default_config Server.scan_pipeline) with
      Server.unix_path = Some path;
      tcp = Some ("127.0.0.1", 0);
      workers = 2;
    }
  in
  with_server cfg (fun t ->
      let words = Lazy.force fixture_words in
      (* over the unix socket *)
      (match Client.run (Client.Unix_path path) words with
      | Some r ->
        check_int "unix words echoed" (Array.length words) r.Client.r_words;
        check_int "unix lossless" 0 r.Client.r_dropped_words
      | None -> Alcotest.fail "unix stream rejected");
      (* over TCP, ephemeral port *)
      let port =
        match Server.tcp_port t with
        | Some p -> p
        | None -> Alcotest.fail "no tcp port"
      in
      (match Client.run (Client.Tcp ("127.0.0.1", port)) words with
      | Some r ->
        check_int "tcp words echoed" (Array.length words) r.Client.r_words
      | None -> Alcotest.fail "tcp stream rejected");
      let s = quiesce t in
      check_int "two streams" 2 s.Server.streams_total;
      check_int "all words in" (2 * Array.length words) s.Server.words_in;
      check_int "all words analyzed" (2 * Array.length words)
        s.Server.words_analyzed;
      check_int "no faulted streams" 0 s.Server.streams_faulted;
      (* the scan pipeline matches the offline checker on this fixture *)
      let sc = Tracing.Parser.scanner () in
      Tracing.Parser.scan_feed sc words ~len:(Array.length words);
      let offline = List.length (Tracing.Parser.scan_finish sc) in
      check_int "scan diagnoses match offline scan" (2 * offline)
        s.Server.diagnoses)

(* A deliberately slow consumer behind Sink.batching: the bounded queue
   must cap resident words, and lossless mode must deliver every word in
   order however hard the client pushes. *)
let test_backpressure_lossless () =
  let received = Buffer.create 4096 in
  let mu = Mutex.create () in
  let factory () =
    let slow =
      Tracing.Sink.make (fun ws ~len ->
          Unix.sleepf 0.001;
          Mutex.lock mu;
          for i = 0 to len - 1 do
            Buffer.add_string received (string_of_int ws.(i));
            Buffer.add_char received ','
          done;
          Mutex.unlock mu)
    in
    {
      Server.sink = Tracing.Sink.batching ~words:128 slow;
      diagnoses = (fun () -> 0);
    }
  in
  let path = tmp_name "bp" in
  let cfg =
    {
      (Server.default_config factory) with
      Server.unix_path = Some path;
      workers = 1;
      queue_slots = 2;
      slot_words = 256;
    }
  in
  with_server cfg (fun t ->
      let n = 20_000 in
      let words = Array.init n (fun i -> (i * 7) land 0xFFFFFFFF) in
      (match Client.run (Client.Unix_path path) words with
      | Some r ->
        check_int "lossless: nothing dropped" 0 r.Client.r_dropped_words;
        check_int "lossless: every word" n r.Client.r_words
      | None -> Alcotest.fail "stream rejected");
      let s = quiesce t in
      check_int "analyzed everything" n s.Server.words_analyzed;
      check_bool
        (Printf.sprintf "peak resident %d within queue capacity %d"
           s.Server.peak_resident_words (2 * 256))
        true
        (s.Server.peak_resident_words <= 2 * 256);
      let expect =
        String.concat "" (List.init n (fun i -> string_of_int words.(i) ^ ","))
      in
      check_bool "delivered in order, nothing lost" true
        (Buffer.contents received = expect))

(* Lossy mode: a client outrunning a slow pipeline loses words, but the
   books balance — words in = analyzed + dropped, and dropped frames are
   flagged (the paper's lost-reference accounting, one level up). *)
let test_lossy_accounting () =
  let factory () =
    {
      Server.sink = Tracing.Sink.make (fun _ ~len:_ -> Unix.sleepf 0.005);
      diagnoses = (fun () -> 0);
    }
  in
  let path = tmp_name "lossy" in
  let cfg =
    {
      (Server.default_config factory) with
      Server.unix_path = Some path;
      workers = 1;
      queue_slots = 2;
      slot_words = 64;
      lossy = true;
    }
  in
  with_server cfg (fun t ->
      let n = 50_000 in
      let words = Array.init n (fun i -> i land 0xFFFFFFFF) in
      (match Client.run (Client.Unix_path path) words with
      | Some r ->
        check_int "every sent word decoded" n r.Client.r_words;
        check_bool "some words dropped" true (r.Client.r_dropped_words > 0);
        check_bool "dropped frames flagged" true
          (r.Client.r_dropped_frames > 0)
      | None -> Alcotest.fail "stream rejected");
      let s = quiesce t in
      check_int "loss accounting balances" s.Server.words_in
        (s.Server.words_analyzed + s.Server.words_dropped))

(* The fault-injection client suite: torn frames (byte-level cuts at
   Rng-chosen offsets), abrupt disconnects, and word-level truncation
   faults.  The daemon must answer every well-formed stream afterwards,
   classify every cut as a structured diagnosis, and leak nothing. *)
let test_torn_frames_and_disconnects () =
  let path = tmp_name "torn" in
  let cfg =
    {
      (Server.default_config Server.null_pipeline) with
      Server.unix_path = Some path;
      workers = 2;
    }
  in
  let baseline_fds = open_fds () in
  with_server cfg (fun t ->
      let rng = Systrace_util.Rng.create 42 in
      let words = Array.init 1_000 (fun i -> (i * 13) land 0xFFFFFFFF) in
      let bytes = Wire.encode ~frame_words:97 words in
      let cuts = ref 0 in
      for _ = 1 to 20 do
        let cut = Systrace_util.Rng.int rng (String.length bytes) in
        if cut < String.length bytes then incr cuts;
        (* send_raw half-closes and waits for the reply; a cut stream
           must come back as a structured "err" line, never a hang *)
        match Client.send_raw (Client.Unix_path path) (String.sub bytes 0 cut) with
        | Some line ->
          check_bool "torn stream answered with err" true
            (String.length line >= 3 && String.sub line 0 3 = "err")
        | None -> ()
      done;
      (* abrupt disconnects: close mid-stream without half-close *)
      for _ = 1 to 5 do
        let fd = Client.connect (Client.Unix_path path) in
        let cut = 4 + Systrace_util.Rng.int rng (String.length bytes - 4) in
        (try
           ignore (Unix.write_substring fd (String.sub bytes 0 cut) 0 cut)
         with Unix.Unix_error _ -> ());
        Unix.close fd
      done;
      (* word-level truncation via the Faults machinery: still a valid
         wire stream, so the reply is "ok" and the loss is upstream *)
      (match
         Systrace_tracing.Faults.inject_one rng Systrace_tracing.Faults.Truncate
           (Lazy.force fixture_words)
       with
      | Some (truncated, _) -> (
        match Client.run (Client.Unix_path path) truncated with
        | Some r ->
          check_int "truncated words all ingested" (Array.length truncated)
            r.Client.r_words
        | None -> Alcotest.fail "truncated stream rejected")
      | None -> ());
      let s = quiesce t in
      check_bool
        (Printf.sprintf "every cut diagnosed (%d faulted / %d cut)"
           s.Server.streams_faulted !cuts)
        true
        (s.Server.streams_faulted >= !cuts);
      (* the daemon still serves clean streams after the abuse *)
      match Client.run (Client.Unix_path path) words with
      | Some r -> check_int "alive after abuse" 1_000 r.Client.r_words
      | None -> Alcotest.fail "daemon dead after fault suite");
  (* every accepted connection's descriptor is back *)
  check_int "no leaked file descriptors" baseline_fds (open_fds ())

let test_ctl_stats_shutdown () =
  let path = tmp_name "ctl_d" in
  let ctl = tmp_name "ctl_c" in
  let cfg =
    {
      (Server.default_config Server.null_pipeline) with
      Server.unix_path = Some path;
      ctl_path = Some ctl;
    }
  in
  let t = Server.start cfg in
  let ask cmd =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX ctl);
        ignore (Unix.write_substring fd (cmd ^ "\n") 0 (String.length cmd + 1));
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        let b = Buffer.create 256 in
        let chunk = Bytes.create 256 in
        let rec go () =
          match Unix.read fd chunk 0 256 with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes b chunk 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        in
        go ();
        Buffer.contents b)
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  ignore (Client.run (Client.Unix_path path) [| 1; 2; 3 |]);
  let reply = ask "stats" in
  check_bool "stats reply lists totals" true (contains reply "streams_total 1");
  check_bool "stats reply lists words" true (contains reply "words_in 3");
  let bad = ask "frobnicate" in
  check_bool "unknown command refused" true
    (String.length bad >= 3 && String.sub bad 0 3 = "err");
  check_bool "shutdown acknowledged" true (String.trim (ask "shutdown") = "ok");
  (* the daemon exits on its own after a ctl shutdown *)
  Server.wait t;
  check_bool "socket path unlinked after wait" false (Sys.file_exists path)

let tests =
  [
    Alcotest.test_case "bqueue basics" `Quick test_bqueue_basics;
    QCheck_alcotest.to_alcotest prop_bqueue_order;
    QCheck_alcotest.to_alcotest prop_wire_roundtrip;
    QCheck_alcotest.to_alcotest prop_wire_torn;
    Alcotest.test_case "wire faults are structured" `Quick test_wire_faults;
    Alcotest.test_case "loopback roundtrip (unix + tcp)" `Quick
      test_loopback_roundtrip;
    Alcotest.test_case "lossless backpressure bounds residency" `Quick
      test_backpressure_lossless;
    Alcotest.test_case "lossy mode balances the books" `Quick
      test_lossy_accounting;
    Alcotest.test_case "torn frames, disconnects, no fd leaks" `Quick
      test_torn_frames_and_disconnects;
    Alcotest.test_case "control socket stats and shutdown" `Quick
      test_ctl_stats_shutdown;
  ]
