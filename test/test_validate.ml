(* Tests for the domain-parallel validation harness: running the
   measured-vs-predicted matrix on a pool of domains must be a pure
   performance change — the rendered tables are byte-identical to the
   serial run. *)

open Systrace_validate
open Systrace_workloads

(* A small slice of the suite keeps the regression affordable; each cell
   is a full measured + predicted simulation. *)
let entries () =
  List.filter
    (fun (e : Suite.entry) -> List.mem e.Suite.name [ "sed"; "lisp" ])
    Suite.all

let render m =
  Systrace_util.Table.render (Experiments.table2 m)
  ^ "\n"
  ^ Systrace_util.Table.render (Experiments.table3 m)
  ^ "\n"
  ^ Systrace_util.Table.render (Experiments.figure3 m)

let test_matrix_determinism () =
  let entries = entries () in
  let serial = Experiments.run_matrix ~jobs:1 ~entries () in
  let parallel = Experiments.run_matrix ~jobs:4 ~entries () in
  Alcotest.(check string)
    "tables byte-identical across jobs" (render serial) (render parallel)

(* ------------------------------------------------------------------ *)
(* Multi-configuration sweep on a REAL captured trace: Memsim.sweep must
   be byte-identical to independent single-configuration replays, with
   chunk-split boundaries through the Sink interface chosen differently
   on each side, on both a clean and a fault-injected trace. *)

let captured =
  lazy
    (let e = Suite.find "egrep" in
     let cfg =
       {
         Systrace_kernel.Builder.default_config with
         Systrace_kernel.Builder.traced = true;
       }
     in
     let b =
       Systrace_kernel.Builder.build ~cfg
         ~programs:[ e.Suite.program () ]
         ~files:e.Suite.files ()
     in
     let capture, trace = Systrace_tracing.Sink.to_array () in
     b.Systrace_kernel.Builder.trace_sink <-
       Some (fun ws len -> capture.Systrace_tracing.Sink.on_words ws ~len);
     (match Systrace_kernel.Builder.run b ~max_insns:2_000_000_000 with
     | Systrace_machine.Machine.Halt -> ()
     | Systrace_machine.Machine.Limit -> failwith "sweep equiv: no halt");
     Systrace_kernel.Builder.drain_final b;
     (b, trace ()))

let mk_parser ~recover (b : Systrace_kernel.Builder.t) =
  let p =
    Systrace_tracing.Parser.create ~recover
      ~kernel_bbs:(Option.get b.Systrace_kernel.Builder.kernel_bbs) ()
  in
  List.iter
    (fun (pi : Systrace_kernel.Builder.proc_info) ->
      Systrace_tracing.Parser.register_pid p ~pid:pi.pid (Option.get pi.bbs))
    b.Systrace_kernel.Builder.procs;
  p

(* drive a sink with randomly-sized chunks: boundaries must not matter *)
let feed_random_chunks ~rng (sink : Systrace_tracing.Sink.t) words =
  let n = Array.length words in
  let pos = ref 0 in
  while !pos < n do
    let len = min (n - !pos) (1 + Systrace_util.Rng.int rng 4096) in
    sink.Systrace_tracing.Sink.on_words (Array.sub words !pos len) ~len;
    pos := !pos + len
  done;
  sink.Systrace_tracing.Sink.finish ()

let sweep_grid b =
  let open Systrace_tracesim in
  (* one base config so every grid point shares the extracted page map by
     reference, as Memsim.sweep requires *)
  let base = Systrace.default_memsim_cfg ~system:b in
  List.map snd
    (Memsim.grid ~base
       ~sizes:[ 4096; 8192; 16384 ]
       ~lines:[ 16 ] ~tlb_entries:[ 16; 64 ] ~wb_depths:[ 2; 4 ] ())

let sweep_vs_singles ~recover ~rng_seed b words cfgs =
  let open Systrace_tracesim in
  let swept =
    let p = mk_parser ~recover b in
    let sw = Memsim.sweep cfgs in
    let sink = Memsim.sweep_sink sw p in
    feed_random_chunks ~rng:(Systrace_util.Rng.create rng_seed) sink words;
    Memsim.sweep_stats sw
  in
  List.iteri
    (fun i cfg ->
      let p = mk_parser ~recover b in
      let m = Memsim.create cfg in
      let sink = Memsim.sink m p in
      feed_random_chunks
        ~rng:(Systrace_util.Rng.create (rng_seed + 101 + i))
        sink words;
      Alcotest.(check bool)
        (Printf.sprintf "config %d: sweep stats == single-config stats" i)
        true
        (Memsim.stats m = swept.(i)))
    cfgs

let test_sweep_real_trace () =
  let b, words = Lazy.force captured in
  sweep_vs_singles ~recover:false ~rng_seed:3 b words (sweep_grid b)

let test_sweep_real_trace_faulty () =
  let b, words = Lazy.force captured in
  let rng = Systrace_util.Rng.create 42 in
  let words, _injected =
    Systrace_tracing.Faults.inject rng ~n:20
      ~kinds:Systrace_tracing.Faults.all_kinds words
  in
  sweep_vs_singles ~recover:true ~rng_seed:7 b words (sweep_grid b)

(* predict_sweep: the per-geometry predictions must match what dedicated
   single-geometry passes produce (element 0 is the default geometry, so
   it is exactly [predict]'s result). *)
let test_predict_sweep_consistent () =
  let spec = Experiments.spec_of (Suite.find "sed") in
  let base = Systrace_machine.Machine.default_config in
  let big =
    {
      base with
      Systrace_machine.Machine.icache_bytes = 65536;
      dcache_bytes = 65536;
    }
  in
  let single = Validate.predict ~arith_stalls:0 Validate.Ultrix spec in
  let multi =
    Validate.predict_sweep ~arith_stalls:0 ~geometries:[ base; big ]
      Validate.Ultrix spec
  in
  Alcotest.(check bool) "first geometry == dedicated predict" true
    (single.Validate.p_mem = multi.(0).Validate.p_mem);
  Alcotest.(check bool) "breakdown identical" true
    (single.Validate.p_breakdown = multi.(0).Validate.p_breakdown);
  Alcotest.(check bool) "parse stats shared" true
    (single.Validate.p_parse = multi.(0).Validate.p_parse);
  Alcotest.(check bool) "bigger caches never miss more" true
    (multi.(1).Validate.p_mem.Systrace_tracesim.Memsim.icache_misses
    <= multi.(0).Validate.p_mem.Systrace_tracesim.Memsim.icache_misses)

let tests =
  [
    Alcotest.test_case "matrix determinism (jobs=1 == jobs=4)" `Quick
      test_matrix_determinism;
    Alcotest.test_case "sweep == singles on a real trace" `Quick
      test_sweep_real_trace;
    Alcotest.test_case "sweep == singles on a fault-injected trace" `Quick
      test_sweep_real_trace_faulty;
    Alcotest.test_case "predict_sweep consistent with predict" `Quick
      test_predict_sweep_consistent;
  ]
