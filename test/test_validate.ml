(* Tests for the domain-parallel validation harness: running the
   measured-vs-predicted matrix on a pool of domains must be a pure
   performance change — the rendered tables are byte-identical to the
   serial run. *)

open Systrace_validate
open Systrace_workloads

(* A small slice of the suite keeps the regression affordable; each cell
   is a full measured + predicted simulation. *)
let entries () =
  List.filter
    (fun (e : Suite.entry) -> List.mem e.Suite.name [ "sed"; "lisp" ])
    Suite.all

let render m =
  Systrace_util.Table.render (Experiments.table2 m)
  ^ "\n"
  ^ Systrace_util.Table.render (Experiments.table3 m)
  ^ "\n"
  ^ Systrace_util.Table.render (Experiments.figure3 m)

let test_matrix_determinism () =
  let entries = entries () in
  let serial = Experiments.run_matrix ~jobs:1 ~entries () in
  let parallel = Experiments.run_matrix ~jobs:4 ~entries () in
  Alcotest.(check string)
    "tables byte-identical across jobs" (render serial) (render parallel)

let tests =
  [
    Alcotest.test_case "matrix determinism (jobs=1 == jobs=4)" `Quick
      test_matrix_determinism;
  ]
