(* Tests for the trace-driven memory-system simulator: the independent
   cache/TLB/write-buffer models, the handler-synthesis logic, and the
   execution-time predictor. *)

open Systrace_tracesim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Cache model                                                         *)

let test_cache_compulsory () =
  let c = Sim_cache.create ~size_bytes:1024 ~line_bytes:16 in
  for k = 0 to 63 do
    ignore (Sim_cache.read c (k * 16))
  done;
  check_int "all compulsory" 64 c.Sim_cache.read_misses;
  for k = 0 to 63 do
    ignore (Sim_cache.read c (k * 16))
  done;
  check_int "all hits" 64 c.Sim_cache.read_hits

let test_cache_conflict () =
  let c = Sim_cache.create ~size_bytes:1024 ~line_bytes:16 in
  (* two addresses 1024 apart map to the same line *)
  ignore (Sim_cache.read c 0);
  ignore (Sim_cache.read c 1024);
  ignore (Sim_cache.read c 0);
  check_int "ping-pong misses" 3 c.Sim_cache.read_misses

let test_cache_write_no_allocate () =
  let c = Sim_cache.create ~size_bytes:1024 ~line_bytes:16 in
  check "write miss" true (not (Sim_cache.write c 64));
  (* the line was NOT allocated *)
  check "read still misses" true (not (Sim_cache.read c 64));
  (* but a write to a present line hits *)
  check "write hit" true (Sim_cache.write c 64)

let prop_cache_sequential =
  QCheck.Test.make ~count:100 ~name:"sequential scan misses once per line"
    QCheck.(pair (int_range 1 6) (int_range 1 64))
    (fun (line_pow, nlines) ->
      let line = 1 lsl (line_pow + 1) in
      let c = Sim_cache.create ~size_bytes:(line * 256) ~line_bytes:line in
      let bytes = nlines * line in
      for a = 0 to bytes - 1 do
        ignore (Sim_cache.read c a)
      done;
      c.Sim_cache.read_misses = nlines)

(* ------------------------------------------------------------------ *)
(* TLB model                                                           *)

let test_tlb_hit_miss () =
  let t = Sim_tlb.create () in
  check "first access misses" true
    (not (Sim_tlb.access t ~vpn:5 ~asid:1 ~global:false ~user:true));
  check "second access hits" true
    (Sim_tlb.access t ~vpn:5 ~asid:1 ~global:false ~user:true);
  check_int "one user miss" 1 t.Sim_tlb.user_misses

let test_tlb_asid_isolation () =
  let t = Sim_tlb.create () in
  ignore (Sim_tlb.access t ~vpn:5 ~asid:1 ~global:false ~user:true);
  check "different asid misses" true
    (not (Sim_tlb.access t ~vpn:5 ~asid:2 ~global:false ~user:true))

let test_tlb_global_entries () =
  let t = Sim_tlb.create () in
  ignore (Sim_tlb.access t ~vpn:9 ~asid:0 ~global:true ~user:false);
  check "global entry matches any asid" true
    (Sim_tlb.access t ~vpn:9 ~asid:7 ~global:false ~user:true)

let test_tlb_capacity () =
  let t = Sim_tlb.create ~size:16 ~wired:0 () in
  (* touch 32 distinct pages twice: capacity misses must occur *)
  for round = 1 to 2 do
    ignore round;
    for vpn = 0 to 31 do
      ignore (Sim_tlb.access t ~vpn ~asid:1 ~global:false ~user:true)
    done
  done;
  check "capacity misses" true (t.Sim_tlb.user_misses > 32)

let test_tlb_size_param () =
  let small = Sim_tlb.create ~size:16 ~wired:8 () in
  let big = Sim_tlb.create ~size:128 ~wired:8 () in
  for round = 1 to 3 do
    ignore round;
    for vpn = 0 to 63 do
      ignore (Sim_tlb.access small ~vpn ~asid:1 ~global:false ~user:true);
      ignore (Sim_tlb.access big ~vpn ~asid:1 ~global:false ~user:true)
    done
  done;
  check "bigger TLB misses less" true
    (big.Sim_tlb.user_misses < small.Sim_tlb.user_misses)

(* ------------------------------------------------------------------ *)
(* Write buffer model                                                  *)

let test_wb_burst_stalls () =
  let wb = Sim_wb.create ~depth:4 ~drain_cycles:6 () in
  let total = ref 0 in
  for _ = 1 to 20 do
    Sim_wb.tick wb 1;
    total := !total + Sim_wb.store wb
  done;
  check "burst causes stalls" true (!total > 0)

let test_wb_spaced_stores_free () =
  let wb = Sim_wb.create ~depth:4 ~drain_cycles:6 () in
  let total = ref 0 in
  for _ = 1 to 20 do
    Sim_wb.tick wb 10;
    total := !total + Sim_wb.store wb
  done;
  check_int "spaced stores never stall" 0 !total

(* ------------------------------------------------------------------ *)
(* Memsim: synthetic event streams                                     *)

let mk_memsim ?(tlb_entries = 64) () =
  Memsim.create
    {
      Memsim.icache_bytes = 4096;
      icache_line = 16;
      icache_ways = 1;
      dcache_bytes = 4096;
      dcache_line = 4;
      dcache_ways = 1;
      read_miss_penalty = 10;
      uncached_penalty = 10;
      wb_depth = 4;
      wb_drain = 6;
      pagemap = (fun _pid va -> Some (va land 0xFFFFF));
      pt_base = (fun pid -> 0xC0000000 + (pid * 0x200000));
      utlb_handler_insns = 8;
      ktlb_handler_insns = 24;
      tlb_entries;
    }

let test_memsim_utlb_synthesis () =
  let m = mk_memsim () in
  (* one user instruction on a fresh page: TLB miss -> synthesized
     handler (8 instructions) + PTE load (whose kseg2 access KTLB-misses
     and synthesizes another 24). *)
  Memsim.on_inst m 0x00400000 1 false;
  let s = Memsim.stats m in
  check_int "one utlb miss" 1 s.Memsim.utlb_misses;
  check_int "one ktlb miss" 1 s.Memsim.ktlb_misses;
  check_int "synthesized instructions" (8 + 24) s.Memsim.synth_insts;
  check_int "one trace instruction" 1 s.Memsim.insts

let test_memsim_no_tlb_for_kseg0 () =
  let m = mk_memsim () in
  Memsim.on_inst m 0x80001000 0 true;
  Memsim.on_data m 0x80080000 0 true true 4;
  let s = Memsim.stats m in
  check_int "no tlb misses" 0 (s.Memsim.utlb_misses + s.Memsim.ktlb_misses)

let test_memsim_kseg1_uncached () =
  let m = mk_memsim () in
  Memsim.on_data m 0xA1000000 0 true true 4;
  Memsim.on_data m 0xA1000000 0 true false 4;
  let s = Memsim.stats m in
  check_int "uncached read" 1 s.Memsim.uncached_reads;
  check_int "uncached write" 1 s.Memsim.uncached_writes

let test_memsim_mode_split () =
  let m = mk_memsim () in
  Memsim.on_inst m 0x80001000 0 true;
  Memsim.on_inst m 0x00400000 1 false;
  let s = Memsim.stats m in
  check_int "kernel insts" 1 s.Memsim.kernel_insts;
  check_int "user insts" 1 s.Memsim.user_insts

let test_memsim_same_page_one_miss () =
  let m = mk_memsim () in
  for k = 0 to 99 do
    Memsim.on_inst m (0x00400000 + (k * 4)) 1 false
  done;
  check_int "one page, one miss" 1 (Memsim.stats m).Memsim.utlb_misses

(* ------------------------------------------------------------------ *)
(* Predictor arithmetic                                                *)

let test_predict_components () =
  let mem =
    {
      Memsim.insts = 1000;
      datas = 300;
      kernel_insts = 400;
      user_insts = 600;
      kernel_stall = 0;
      user_stall = 0;
      synth_insts = 50;
      icache_misses = 10;
      dcache_read_misses = 20;
      uncached_reads = 5;
      uncached_writes = 5;
      wb_stalls = 7;
      utlb_misses = 3;
      ktlb_misses = 1;
      unmapped = 0;
    }
  in
  let parse = Systrace_tracing.Parser.fresh_stats () in
  parse.Systrace_tracing.Parser.idle_insts <- 100;
  let b =
    Predict.make ~mem ~parse ~arith_stalls:11 ~dilation:15
      ~read_miss_penalty:15 ~uncached_penalty:12
  in
  check_int "icache stall" 150 b.Predict.icache_stall;
  check_int "dcache stall" 300 b.Predict.dcache_stall;
  check_int "uncached stall" 120 b.Predict.uncached_stall;
  check_int "idle extra" 1400 b.Predict.io_idle_extra;
  check_int "total"
    (1000 + 50 + 1400 + 150 + 300 + 120 + 7 + 11)
    b.Predict.total_cycles

let tests =
  [
    Alcotest.test_case "cache: compulsory then hits" `Quick test_cache_compulsory;
    Alcotest.test_case "cache: conflict ping-pong" `Quick test_cache_conflict;
    Alcotest.test_case "cache: write no-allocate" `Quick test_cache_write_no_allocate;
    QCheck_alcotest.to_alcotest prop_cache_sequential;
    Alcotest.test_case "tlb: hit/miss" `Quick test_tlb_hit_miss;
    Alcotest.test_case "tlb: asid isolation" `Quick test_tlb_asid_isolation;
    Alcotest.test_case "tlb: global entries" `Quick test_tlb_global_entries;
    Alcotest.test_case "tlb: capacity misses" `Quick test_tlb_capacity;
    Alcotest.test_case "tlb: size parameter" `Quick test_tlb_size_param;
    Alcotest.test_case "wb: burst stalls" `Quick test_wb_burst_stalls;
    Alcotest.test_case "wb: spaced stores free" `Quick test_wb_spaced_stores_free;
    Alcotest.test_case "memsim: utlb synthesis" `Quick test_memsim_utlb_synthesis;
    Alcotest.test_case "memsim: kseg0 bypasses tlb" `Quick test_memsim_no_tlb_for_kseg0;
    Alcotest.test_case "memsim: kseg1 uncached" `Quick test_memsim_kseg1_uncached;
    Alcotest.test_case "memsim: mode split" `Quick test_memsim_mode_split;
    Alcotest.test_case "memsim: page locality" `Quick test_memsim_same_page_one_miss;
    Alcotest.test_case "predict: components" `Quick test_predict_components;
  ]

(* ------------------------------------------------------------------ *)
(* Sim_cache_assoc: set-associative LRU model                           *)

let test_assoc_eliminates_conflict () =
  (* Two lines mapping to the same direct-mapped slot ping-pong in a 1-way
     cache but coexist in a 2-way one — the conflict/capacity distinction
     the associative model exists to expose. *)
  let dm = Sim_cache_assoc.create ~size_bytes:1024 ~line_bytes:16 ~ways:1 () in
  let sa = Sim_cache_assoc.create ~size_bytes:1024 ~line_bytes:16 ~ways:2 () in
  let a = 0x0 and b = 0x400 (* a + 1-way cache size: same set both ways *) in
  for _ = 1 to 50 do
    ignore (Sim_cache_assoc.read dm a);
    ignore (Sim_cache_assoc.read dm b);
    ignore (Sim_cache_assoc.read sa a);
    ignore (Sim_cache_assoc.read sa b)
  done;
  Alcotest.(check int) "1-way: all misses" 100 dm.Sim_cache_assoc.read_misses;
  Alcotest.(check int) "2-way: compulsory only" 2 sa.Sim_cache_assoc.read_misses

let test_assoc_lru_order () =
  (* 2-way set with three competing lines: LRU must evict the least
     recently used, so touching [a] between fills keeps [a] resident. *)
  let c = Sim_cache_assoc.create ~size_bytes:512 ~line_bytes:16 ~ways:2 () in
  let set_stride = 16 * (512 / (16 * 2)) in
  let a = 0 and b = set_stride and d = 2 * set_stride in
  ignore (Sim_cache_assoc.read c a);   (* miss, fill *)
  ignore (Sim_cache_assoc.read c b);   (* miss, fill *)
  ignore (Sim_cache_assoc.read c a);   (* hit: a is now MRU *)
  ignore (Sim_cache_assoc.read c d);   (* miss, must evict b *)
  Alcotest.(check bool) "a still resident" true (Sim_cache_assoc.read c a);
  Alcotest.(check bool) "b evicted" false (Sim_cache_assoc.read c b)

let test_assoc_write_no_allocate () =
  let c = Sim_cache_assoc.create ~size_bytes:512 ~line_bytes:16 ~ways:4 () in
  Alcotest.(check bool) "write miss" false (Sim_cache_assoc.write c 0x40);
  Alcotest.(check bool) "still absent" false (Sim_cache_assoc.read c 0x40);
  Alcotest.(check bool) "write hit after fill" true (Sim_cache_assoc.write c 0x40)

let prop_assoc_one_way_equals_direct =
  (* The cross-check promised in the .mli: a 1-way associative cache is
     access-for-access identical to the direct-mapped validation model. *)
  QCheck.Test.make ~count:200 ~name:"1-way assoc cache == direct-mapped"
    QCheck.(
      list_of_size Gen.(int_range 1 300)
        (pair bool (map (fun a -> a land 0xFFFF) (int_bound max_int))))
    (fun accesses ->
      let dm = Sim_cache.create ~size_bytes:1024 ~line_bytes:16 in
      let sa = Sim_cache_assoc.create ~size_bytes:1024 ~line_bytes:16 ~ways:1 () in
      List.for_all
        (fun (is_read, pa) ->
          if is_read then Sim_cache.read dm pa = Sim_cache_assoc.read sa pa
          else Sim_cache.write dm pa = Sim_cache_assoc.write sa pa)
        accesses)

let prop_assoc_full_lru_compulsory_only =
  (* The LRU theorem worth owning: a fully-associative LRU cache whose
     capacity covers the stream's working set misses exactly once per
     distinct line, whatever the access order.  (Misses across *different
     set counts* are deliberately not compared: halving the set count
     while doubling ways is not a Mattson stack inclusion, and anomalies
     are real.) *)
  QCheck.Test.make ~count:200 ~name:"full-LRU: one miss per distinct line"
    QCheck.(
      list_of_size
        Gen.(int_range 1 500)
        (map (fun a -> (a land 0x1F) * 16) (int_bound max_int)))
    (fun pas ->
      (* 32 ways x 16B lines = 512B, >= the 32-line address range above *)
      let c = Sim_cache_assoc.create ~size_bytes:512 ~line_bytes:16 ~ways:32 () in
      List.iter (fun pa -> ignore (Sim_cache_assoc.read c pa)) pas;
      let distinct = List.sort_uniq compare pas in
      c.Sim_cache_assoc.read_misses = List.length distinct)

let tests =
  tests
  @ [
      Alcotest.test_case "assoc: conflict elimination" `Quick
        test_assoc_eliminates_conflict;
      Alcotest.test_case "assoc: true LRU" `Quick test_assoc_lru_order;
      Alcotest.test_case "assoc: write no-allocate" `Quick
        test_assoc_write_no_allocate;
      QCheck_alcotest.to_alcotest prop_assoc_one_way_equals_direct;
      QCheck_alcotest.to_alcotest prop_assoc_full_lru_compulsory_only;
    ]

let test_memsim_ways_knob () =
  (* Two data pages colliding in a direct-mapped D-cache stop colliding at
     2 ways; everything else in the config untouched. *)
  let mk ways =
    Memsim.create
      {
        Memsim.icache_bytes = 4096;
        icache_line = 4;
        icache_ways = 1;
        dcache_bytes = 4096;
        dcache_line = 4;
        dcache_ways = ways;
        read_miss_penalty = 15;
        uncached_penalty = 6;
        wb_depth = 4;
        wb_drain = 5;
        pagemap = (fun _ va -> Some (va land 0xFFFFFF));
        pt_base = (fun _ -> 0xC0000000);
        utlb_handler_insns = 8;
        ktlb_handler_insns = 24;
        tlb_entries = 64;
      }
  in
  let drive sim =
    for _ = 1 to 40 do
      (* kseg0 addresses: no TLB traffic, pure cache behaviour *)
      Memsim.on_data sim 0x80002000 0 true true 4;
      Memsim.on_data sim 0x80003000 0 true true 4 (* +4096: same line idx *)
    done;
    (Memsim.stats sim).Memsim.dcache_read_misses
  in
  Alcotest.(check int) "1-way ping-pong" 80 (drive (mk 1));
  Alcotest.(check int) "2-way coexist" 2 (drive (mk 2))

let tests =
  tests
  @ [ Alcotest.test_case "memsim: dcache_ways knob" `Quick test_memsim_ways_knob ]

let test_assoc_write_back () =
  let c =
    Sim_cache_assoc.create ~policy:Sim_cache_assoc.Write_back
      ~size_bytes:512 ~line_bytes:16 ~ways:2 ()
  in
  (* write-allocate: a store miss installs the line *)
  Alcotest.(check bool) "store miss" false (Sim_cache_assoc.write c 0x40);
  Alcotest.(check bool) "allocated" true (Sim_cache_assoc.read c 0x40);
  Alcotest.(check int) "no writeback yet" 0 c.Sim_cache_assoc.writebacks;
  (* evict the dirty line: 2 ways, so two more lines in the same set *)
  let set_stride = 16 * (512 / (16 * 2)) in
  ignore (Sim_cache_assoc.read c (0x40 + set_stride));
  ignore (Sim_cache_assoc.read c (0x40 + (2 * set_stride)));
  Alcotest.(check int) "dirty eviction counted" 1 c.Sim_cache_assoc.writebacks;
  (* clean evictions don't count *)
  ignore (Sim_cache_assoc.read c (0x40 + (3 * set_stride)));
  Alcotest.(check int) "clean eviction free" 1 c.Sim_cache_assoc.writebacks;
  (* re-dirtying via a write hit *)
  ignore (Sim_cache_assoc.write c (0x40 + (3 * set_stride)));
  ignore (Sim_cache_assoc.read c 0x40);
  ignore (Sim_cache_assoc.read c (0x40 + set_stride));
  Alcotest.(check int) "write-hit dirt written back" 2
    c.Sim_cache_assoc.writebacks

let prop_assoc_wb_traffic_bounded =
  (* Write-back memory traffic never exceeds the number of stores: each
     writeback needs a distinct preceding store that dirtied the line. *)
  QCheck.Test.make ~count:200 ~name:"write-back: writebacks <= stores"
    QCheck.(
      list_of_size Gen.(int_range 1 400)
        (pair bool (map (fun a -> (a land 0x3F) * 16) (int_bound max_int))))
    (fun accesses ->
      let c =
        Sim_cache_assoc.create ~policy:Sim_cache_assoc.Write_back
          ~size_bytes:256 ~line_bytes:16 ~ways:2 ()
      in
      let stores = ref 0 in
      List.iter
        (fun (is_read, pa) ->
          if is_read then ignore (Sim_cache_assoc.read c pa)
          else begin
            incr stores;
            ignore (Sim_cache_assoc.write c pa)
          end)
        accesses;
      c.Sim_cache_assoc.writebacks <= !stores)

let tests =
  tests
  @ [
      Alcotest.test_case "assoc: write-back policy" `Quick
        test_assoc_write_back;
      QCheck_alcotest.to_alcotest prop_assoc_wb_traffic_bounded;
    ]

(* ------------------------------------------------------------------ *)
(* Multi-configuration sweep: the unit fast paths and the end-to-end    *)
(* equivalence with independent single-configuration runs               *)

let prop_stack_equals_assoc_family =
  (* The .mli contract: a stack family member with associativity W is
     read-for-read identical to an independent W-way Sim_cache_assoc over
     the same sets. *)
  QCheck.Test.make ~count:200 ~name:"LRU stack == independent assoc caches"
    QCheck.(
      triple
        (pair (int_range 0 2) (int_range 0 4)) (* line = 16<<l, nsets = 1<<n *)
        (list_of_size Gen.(int_range 1 4) (int_range 1 3)) (* way exponents *)
        (list_of_size Gen.(int_range 1 400)
           (map (fun a -> a land 0xFFFF) (int_bound max_int))))
    (fun ((l, n), wexps, pas) ->
      let line = 16 lsl l and nsets = 1 lsl n in
      let ways =
        Array.of_list (List.sort_uniq compare (List.map (fun e -> 1 lsl e) wexps))
      in
      let st = Sim_stack.create ~line_bytes:line ~nsets ~ways in
      let members =
        Array.map
          (fun w ->
            Sim_cache_assoc.create ~size_bytes:(line * nsets * w)
              ~line_bytes:line ~ways:w ())
          ways
      in
      List.for_all
        (fun pa ->
          let mask = Sim_stack.read st pa in
          Array.to_list
            (Array.mapi
               (fun i c ->
                 let hit = Sim_cache_assoc.read c pa in
                 (mask lsr i) land 1 = if hit then 0 else 1)
               members)
          |> List.for_all Fun.id)
        pas)

let prop_ring_equals_wb =
  (* The absolute-clock ring returns the same stall per store as the
     eagerly-ticked list model, given the clock the latter would hold. *)
  QCheck.Test.make ~count:200 ~name:"wb ring == eager wb model"
    QCheck.(
      pair
        (pair (int_range 1 6) (int_range 0 10)) (* depth, drain *)
        (list_of_size Gen.(int_range 1 300) (int_range 0 12) (* inter-store gaps *)))
    (fun ((depth, drain), gaps) ->
      let wb = Sim_wb.create ~depth ~drain_cycles:drain () in
      let ring = Sim_wb.ring_create ~depth ~drain_cycles:drain in
      let base = ref 0 (* sum of ticks *) and stalls = ref 0 in
      List.for_all
        (fun gap ->
          Sim_wb.tick wb gap;
          base := !base + gap;
          let s_eager = Sim_wb.store wb in
          let s_ring = Sim_wb.ring_store ring ~clock:(!base + !stalls) in
          stalls := !stalls + s_ring;
          s_eager = s_ring)
        gaps)

let prop_write_accounting =
  (* The write path's returned hit/miss status must agree with the cache's
     own write counters, store for store, under both policies — the audit
     for the memsim call sites that drop the returned bool. *)
  QCheck.Test.make ~count:200 ~name:"write status == write counter deltas"
    QCheck.(
      pair bool
        (list_of_size Gen.(int_range 1 400)
           (pair bool (map (fun a -> a land 0xFFF) (int_bound max_int)))))
    (fun (write_back, accesses) ->
      let policy =
        if write_back then Sim_cache_assoc.Write_back
        else Sim_cache_assoc.Write_through
      in
      let c =
        Sim_cache_assoc.create ~policy ~size_bytes:512 ~line_bytes:16 ~ways:2 ()
      in
      List.for_all
        (fun (is_read, pa) ->
          if is_read then begin
            ignore (Sim_cache_assoc.read c pa);
            true
          end
          else begin
            let h0 = c.Sim_cache_assoc.write_hits
            and m0 = c.Sim_cache_assoc.write_misses in
            let hit = Sim_cache_assoc.write c pa in
            let dh = c.Sim_cache_assoc.write_hits - h0
            and dm = c.Sim_cache_assoc.write_misses - m0 in
            if hit then dh = 1 && dm = 0 else dh = 0 && dm = 1
          end)
        accesses)

(* --- sweep == N independent runs, on synthetic event streams --- *)

let sweep_pagemap _pid va =
  (* deterministic, partial: some pages unmapped to exercise the
     fallback-translation path *)
  if va land 0xF000 = 0xF000 then None else Some (va land 0xFFFFF)

let sweep_pt_base pid = 0xC0000000 + (pid * 0x200000)

let sweep_base_cfg =
  {
    Memsim.icache_bytes = 1024;
    icache_line = 16;
    icache_ways = 1;
    dcache_bytes = 1024;
    dcache_line = 16;
    dcache_ways = 1;
    read_miss_penalty = 13;
    uncached_penalty = 7;
    wb_depth = 4;
    wb_drain = 6;
    pagemap = sweep_pagemap;
    pt_base = sweep_pt_base;
    utlb_handler_insns = 8;
    ktlb_handler_insns = 24;
    tlb_entries = 16;
  }

(* random references spread over all four segments, word-aligned *)
let event_gen =
  QCheck.Gen.(
    let* seg = int_range 0 3 in
    let* off = int_bound 0x3FFFF in
    let off = off land lnot 3 in
    let addr =
      match seg with
      | 0 -> 0x00400000 + off
      | 1 -> 0x80000000 + off
      | 2 -> 0xA0000000 + off
      | _ -> 0xC0000000 + off
    in
    let* is_inst = bool and* pid = int_range 0 3 and* kernel = bool in
    let* is_load = bool in
    return (is_inst, addr, pid, kernel, is_load))

let drive_events feed_inst feed_data events =
  List.iter
    (fun (is_inst, addr, pid, kernel, is_load) ->
      if is_inst then feed_inst addr pid kernel
      else feed_data addr pid kernel is_load 4)
    events

let stats_equal (a : Memsim.stats) (b : Memsim.stats) = a = b

let check_sweep_matches_singles cfgs events =
  let sw = Memsim.sweep cfgs in
  drive_events (Memsim.sweep_on_inst sw) (Memsim.sweep_on_data sw) events;
  let swept = Memsim.sweep_stats sw in
  List.for_all2
    (fun c s1 ->
      let m = Memsim.create c in
      drive_events (Memsim.on_inst m) (Memsim.on_data m) events;
      stats_equal (Memsim.stats m) s1)
    cfgs (Array.to_list swept)

let prop_sweep_equals_independent =
  (* The tentpole contract: Memsim.sweep over an arbitrary configuration
     list produces stats identical to N independent single-config runs on
     the same event stream.  Configurations are drawn with independent
     random axes, so a run mixes TLB groups, plain and stacked icache
     units, deduplicated identical configs, and distinct write buffers. *)
  QCheck.Test.make ~count:60 ~name:"sweep == independent single-config runs"
    (QCheck.make ~print:(fun (cfgs, events) ->
         Printf.sprintf "%d cfgs, %d events" (List.length cfgs)
           (List.length events))
       QCheck.Gen.(
         let cfg_gen =
           let* is_exp = int_range 0 2 and* ds_exp = int_range 0 2 in
           let* iline = oneofl [ 16; 32 ] and* dline = oneofl [ 4; 16 ] in
           let* iways = oneofl [ 1; 2 ] and* dways = oneofl [ 1; 2 ] in
           let* tlb = oneofl [ 16; 32; 64 ] in
           let* wb = oneofl [ 2; 4 ] in
           return
             {
               sweep_base_cfg with
               Memsim.icache_bytes = 1024 lsl is_exp;
               icache_line = iline;
               icache_ways = iways;
               dcache_bytes = 1024 lsl ds_exp;
               dcache_line = dline;
               dcache_ways = dways;
               tlb_entries = tlb;
               wb_depth = wb;
             }
         in
         let* cfgs = list_size (int_range 1 6) cfg_gen in
         let* events = list_size (int_range 1 500) event_gen in
         return (cfgs, events)))
    (fun (cfgs, events) -> check_sweep_matches_singles cfgs events)

let prop_sweep_grid_equals_independent =
  (* Same contract through Memsim.grid's nested families, where the size
     axis is guaranteed to exercise the LRU-stack fast path. *)
  QCheck.Test.make ~count:40 ~name:"sweep over nested grid == singles"
    (QCheck.make ~print:(fun events ->
         Printf.sprintf "%d events" (List.length events))
       QCheck.Gen.(list_size (int_range 1 400) event_gen))
    (fun events ->
      let cfgs =
        List.map snd
          (Memsim.grid ~base:sweep_base_cfg ~sizes:[ 1024; 2048; 4096 ]
             ~lines:[ 16 ] ~tlb_entries:[ 16; 64 ] ~wb_depths:[ 2; 4 ] ())
      in
      check_sweep_matches_singles cfgs events)

let test_sweep_rejects_mixed_pagemaps () =
  let other = { sweep_base_cfg with Memsim.pagemap = (fun _ va -> Some va) } in
  Alcotest.check_raises "distinct pagemaps rejected"
    (Invalid_argument
       "Memsim.sweep: all configurations must share pagemap and pt_base \
        (translation is done once per reference)") (fun () ->
      ignore (Memsim.sweep [ sweep_base_cfg; other ]))

let test_grid_shape () =
  let g =
    Memsim.grid ~base:sweep_base_cfg ~sizes:[ 1024; 4096 ] ~lines:[ 16; 32 ]
      ~tlb_entries:[ 16; 64 ] ~wb_depths:[ 2 ] ()
  in
  Alcotest.(check int) "full cross product" 8 (List.length g);
  (* nested: ways scale with size at fixed nsets *)
  List.iter
    (fun (_, c) ->
      Alcotest.(check int) "fixed set count" (1024 / c.Memsim.icache_line)
        (c.Memsim.icache_bytes / (c.Memsim.icache_line * c.Memsim.icache_ways)))
    g

let tests =
  tests
  @ [
      QCheck_alcotest.to_alcotest prop_stack_equals_assoc_family;
      QCheck_alcotest.to_alcotest prop_ring_equals_wb;
      QCheck_alcotest.to_alcotest prop_write_accounting;
      QCheck_alcotest.to_alcotest prop_sweep_equals_independent;
      QCheck_alcotest.to_alcotest prop_sweep_grid_equals_independent;
      Alcotest.test_case "sweep: rejects mixed pagemaps" `Quick
        test_sweep_rejects_mixed_pagemaps;
      Alcotest.test_case "grid: shape and nesting" `Quick test_grid_shape;
    ]
