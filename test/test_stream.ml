(* End-to-end streaming pipeline tests over a real traced system: the
   online (sink-driven) analysis path must produce results identical to
   the materialized capture-then-replay path, with peak resident trace
   words bounded by the ANALYZE chunk size instead of the trace length. *)

open Systrace

let check_int = Alcotest.(check int)

(* One egrep capture shared by the whole suite (the run itself is the
   expensive part). *)
let captured =
  lazy
    (let e = Workloads.Suite.find "egrep" in
     capture_trace [ e.Workloads.Suite.program () ] e.Workloads.Suite.files)

let memsim_cfg run = default_memsim_cfg ~system:run.system

(* The materialized baseline: whole-array replay. *)
let baseline () =
  let words, run = Lazy.force captured in
  (words, run, replay ~system:run.system ~memsim_cfg:(memsim_cfg run) words)

let test_replay_file_matches_replay () =
  let words, run, base = baseline () in
  List.iter
    (fun compress ->
      let path = Filename.temp_file "systrace_stream" ".strc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          (* store through the streaming writer, replay through the
             chunked reader: no whole-array round trip on either side *)
          let sink = Tracing.Sink.to_file ~compress path in
          List.iter
            (fun pos ->
              let len = min 10_000 (Array.length words - pos) in
              sink.Tracing.Sink.on_words (Array.sub words pos len) ~len)
            (List.init
               ((Array.length words + 9_999) / 10_000)
               (fun i -> i * 10_000));
          sink.Tracing.Sink.finish ();
          let streamed =
            replay_file ~system:run.system ~memsim_cfg:(memsim_cfg run) path
          in
          Alcotest.(check bool)
            (Printf.sprintf "replay_file == replay (compress=%b)" compress)
            true (streamed = base)))
    [ false; true ]

let prop_chunked_replay_matches =
  (* satellite: streamed parse+simulate == materialized stats on ARBITRARY
     chunk splits of a real system trace *)
  QCheck.Test.make ~count:20
    ~name:"stream: chunk-split replay == whole-array replay (egrep trace)"
    (QCheck.make
       ~print:(fun l -> Printf.sprintf "<%d cut sizes>" (List.length l))
       QCheck.Gen.(list_size (int_range 1 5) (int_range 0 50_000)))
    (fun sizes ->
      let words, run, base = baseline () in
      let sink, result =
        replay_sink ~system:run.system ~memsim_cfg:(memsim_cfg run) ()
      in
      let n = Array.length words in
      let rec feed pos ss =
        if pos < n then begin
          let s, rest = match ss with s :: r -> (s, r) | [] -> (n, []) in
          let rest = if rest = [] then sizes else rest in
          let len = min (max 1 s) (n - pos) in
          sink.Tracing.Sink.on_words (Array.sub words pos len) ~len;
          feed (pos + len) rest
        end
      in
      feed 0 sizes;
      result () = base)

let test_predict_streams_bounded () =
  (* A full predict run analyses online: its parse stats equal the traced
     run's own parser, its memsim stats equal the materialized replay, and
     its peak resident chunk is the ANALYZE chunk size, not the trace. *)
  let words, run, (base_mem, _) = baseline () in
  let e = Workloads.Suite.find "egrep" in
  let spec =
    {
      Validate.wname = "egrep";
      files = e.Workloads.Suite.files;
      programs = [ e.Workloads.Suite.program () ];
    }
  in
  let p = Validate.predict ~arith_stalls:0 Validate.Ultrix spec in
  Alcotest.(check bool)
    "online parse stats == traced run's" true
    (p.Validate.p_parse = run.parse_stats);
  Alcotest.(check bool)
    "online memsim stats == materialized replay's" true
    (p.Validate.p_mem = base_mem);
  let chunk =
    Systrace_kernel.Builder.default_config.Systrace_kernel.Builder
    .analysis_chunk
  in
  Alcotest.(check bool)
    (Printf.sprintf "peak %d words <= ANALYZE chunk %d" p.Validate.p_peak_words
       chunk)
    true
    (p.Validate.p_peak_words <= chunk);
  Alcotest.(check bool)
    "trace is much larger than the resident peak" true
    (Array.length words > p.Validate.p_peak_words)

let test_run_traced_sink_tee () =
  (* the sink hook on run_traced: one pass tees to counter + peak, totals
     agree with the parser's inventory *)
  let e = Workloads.Suite.find "egrep" in
  let counter, words_seen = Tracing.Sink.counting () in
  let pk, peak_words = Tracing.Sink.peak () in
  let run =
    run_traced
      ~sink:(Tracing.Sink.tee [ counter; pk ])
      [ e.Workloads.Suite.program () ]
      e.Workloads.Suite.files
  in
  check_int "sink saw every trace word" run.parse_stats.Tracing.Parser.words
    (words_seen ());
  let chunk =
    Systrace_kernel.Builder.default_config.Systrace_kernel.Builder
    .analysis_chunk
  in
  Alcotest.(check bool)
    (Printf.sprintf "largest chunk %d <= %d" (peak_words ()) chunk)
    true
    (peak_words () <= chunk)

let test_v3_replay_matches_v2 () =
  (* the v3 store is a pure container change: strict-mode parse results
     and memory-system stats off a v3 file must be byte-identical to the
     v2 file of the same capture — and the parallel block decode must
     not change them either *)
  let words, run, base = baseline () in
  let with_tmp f =
    let path = Filename.temp_file "systrace_v3" ".strc" in
    Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)
  in
  with_tmp (fun p2 ->
      with_tmp (fun p3 ->
          Tracing.Tracefile.save ~compress:true ~version:2 p2 words;
          Tracing.Tracefile.save ~compress:true ~version:3 p3 words;
          let r2 = replay_file ~system:run.system ~memsim_cfg:(memsim_cfg run) p2 in
          let r3 = replay_file ~system:run.system ~memsim_cfg:(memsim_cfg run) p3 in
          Alcotest.(check bool) "v2 replay == baseline" true (r2 = base);
          Alcotest.(check bool) "v3 replay == v2 replay" true (r3 = r2);
          let cfgs = [ default_memsim_cfg ~system:run.system ] in
          let sweep_seq =
            replay_sweep_file ~system:run.system ~memsim_cfgs:cfgs p3
          in
          let sweep_par =
            replay_sweep_file ~jobs:3 ~system:run.system ~memsim_cfgs:cfgs p3
          in
          Alcotest.(check bool)
            "parallel-decode sweep == sequential sweep" true
            (sweep_par = sweep_seq)))

let tests =
  [
    Alcotest.test_case "replay_file == replay (both formats)" `Quick
      test_replay_file_matches_replay;
    Alcotest.test_case "v3 store: strict parse/memsim identical to v2, \
                        parallel decode identical" `Quick
      test_v3_replay_matches_v2;
    QCheck_alcotest.to_alcotest prop_chunked_replay_matches;
    Alcotest.test_case "predict: online analysis, bounded peak" `Quick
      test_predict_streams_bounded;
    Alcotest.test_case "run_traced sink tee totals" `Quick
      test_run_traced_sink_tee;
  ]
