(* Tests for the trace format and parsing library, using hand-built static
   block tables and synthetic trace words. *)

open Systrace_tracing

let check_int = Alcotest.(check int)
let check = Alcotest.(check bool)

(* A kernel table with two blocks:
     record 0x80100000 -> orig 0x80200000, 4 insns, loads at pos 1, store at 3
     record 0x80100040 -> orig 0x80200100, 2 insns, no mems            *)
let kernel_table () =
  let t = Bbtable.create () in
  Bbtable.add t ~record_addr:0x80100000
    {
      Bbtable.orig_addr = 0x80200000;
      ninsns = 4;
      mems = [| (1, 4, true); (3, 4, false) |];
      flags = 0;
    };
  Bbtable.add t ~record_addr:0x80100040
    { Bbtable.orig_addr = 0x80200100; ninsns = 2; mems = [||]; flags = 0 };
  Bbtable.add t ~record_addr:0x80100080
    {
      Bbtable.orig_addr = 0x80200200;
      ninsns = 3;
      mems = [||];
      flags = Bbtable.flag_idle;
    };
  t

let user_table () =
  let t = Bbtable.create () in
  Bbtable.add t ~record_addr:0x00410000
    {
      Bbtable.orig_addr = 0x00400000;
      ninsns = 3;
      mems = [| (0, 4, true); (2, 1, false) |];
      flags = 0;
    };
  t

type ev =
  | I of int * bool          (* addr, kernel *)
  | D of int * bool * bool   (* addr, kernel, is_load *)

let collect () =
  let evs = ref [] in
  let h =
    {
      Parser.on_inst = (fun addr _pid kernel -> evs := I (addr, kernel) :: !evs);
      on_data =
        (fun addr _pid kernel is_load _bytes ->
          evs := D (addr, kernel, is_load) :: !evs);
    }
  in
  (h, fun () -> List.rev !evs)

let parse words =
  let p = Parser.create ~kernel_bbs:(kernel_table ()) () in
  Parser.register_pid p ~pid:1 (user_table ());
  let h, get = collect () in
  Parser.set_handlers p h;
  Parser.feed p (Array.of_list words) ~len:(List.length words);
  Parser.finish p;
  (Parser.stats p, get ())

let test_kernel_block () =
  let stats, evs = parse [ 0x80100000; 0xC0000123; 0x80300040 ] in
  check_int "insts" 4 stats.Parser.insts;
  check_int "datas" 2 stats.Parser.datas;
  Alcotest.(check (list (pair int bool)))
    "event order"
    [
      (0x80200000, true);   (* I pos 0 *)
      (0x80200004, true);   (* I pos 1 (the load) *)
      (0xC0000123, true);   (* D load *)
      (0x80200008, true);   (* I pos 2 *)
      (0x8020000C, true);   (* I pos 3 (the store) *)
      (0x80300040, true);   (* D store *)
    ]
    (List.map
       (function I (a, k) -> (a, k) | D (a, k, _) -> (a, k))
       evs);
  (* Check load/store direction came through. *)
  (match evs with
  | [ _; _; D (_, _, true); _; _; D (_, _, false) ] -> ()
  | _ -> Alcotest.fail "wrong event shapes")

let test_no_mem_block () =
  let stats, _ = parse [ 0x80100040 ] in
  check_int "insts" 2 stats.Parser.insts;
  check_int "datas" 0 stats.Parser.datas

let test_nested_exception_mid_block () =
  (* The first block is interrupted after its first data word by an
     exception whose handler runs the no-mem block; then the first block
     completes. *)
  let words =
    [
      0x80100000;                                 (* bb A *)
      0xC0000123;                                 (* A data 1 *)
      Format_.marker_word (Format_.Exc_enter 0);
      0x80100040;                                 (* nested bb B *)
      Format_.marker_word Format_.Exc_exit;
      0x80300040;                                 (* A data 2 *)
    ]
  in
  let stats, evs = parse words in
  check_int "insts" 6 stats.Parser.insts;
  check_int "max depth" 1 stats.Parser.max_exc_depth;
  (* Nested block's instructions appear between A's data words. *)
  let addrs = List.map (function I (a, _) -> a | D (a, _, _) -> a) evs in
  Alcotest.(check (list int)) "interleaving"
    [
      0x80200000; 0x80200004; 0xC0000123;         (* A up to data 1 *)
      0x80200100; 0x80200104;                     (* B *)
      0x80200008; 0x8020000C; 0x80300040;         (* A completes *)
    ]
    addrs

let test_user_drain () =
  let words =
    [
      Format_.marker_word (Format_.Pid_switch 1);
      Format_.marker_word (Format_.Drain 1);
      3;
      0x00410000;    (* user bb *)
      0x00500000;    (* data 1 (load) *)
      0x00500004;    (* data 2 (store byte) *)
    ]
  in
  let stats, evs = parse words in
  check_int "user insts" 3 stats.Parser.user_insts;
  check_int "user datas" 2 stats.Parser.user_datas;
  check_int "drains" 1 stats.Parser.drains;
  check "all user events" true
    (List.for_all (function I (_, k) | D (_, k, _) -> not k) evs)

let test_drain_split_mid_block () =
  (* A user block's record arrives in one drain and its data words in a
     later one — exactly what happens when an exception interrupts a traced
     process between memory references. *)
  let words =
    [
      Format_.marker_word (Format_.Drain 1);
      2;
      0x00410000;
      0x00500000;
      (* kernel activity between the drains *)
      0x80100040;
      Format_.marker_word (Format_.Drain 1);
      1;
      0x00500004;
    ]
  in
  let stats, _ = parse words in
  check_int "user insts" 3 stats.Parser.user_insts;
  check_int "kernel insts" 2 stats.Parser.kernel_insts;
  check_int "user datas" 2 stats.Parser.user_datas

let test_idle_flag () =
  let stats, _ = parse [ 0x80100080 ] in
  check_int "idle insts counted" 3 stats.Parser.idle_insts

let expect_corrupt words =
  match parse words with
  | exception Parser.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt"

let test_defensive_unknown_record () = expect_corrupt [ 0x80777700 ]

let test_defensive_data_without_block () =
  (* A data-looking kernel word with no open block fails the bb lookup. *)
  expect_corrupt [ 0xC0000123 ]

let test_defensive_surplus_data () =
  (* A completed block followed by a stray data address: the stray word is
     interpreted as a block record and fails the table lookup.  (A stray
     word that happens to equal a record address is undetectable — the
     paper's format detects corruption "with a very high probability", not
     certainty.) *)
  expect_corrupt [ 0x80100000; 0xC0000123; 0x80300040; 0xC0000999 ]

let test_defensive_exc_exit_underflow () =
  expect_corrupt [ Format_.marker_word Format_.Exc_exit ]

let test_defensive_marker_in_drain () =
  expect_corrupt
    [
      Format_.marker_word (Format_.Drain 1);
      2;
      Format_.marker_word (Format_.Pid_switch 1);
      0x00410000;
    ]

let test_defensive_incomplete_at_finish () =
  expect_corrupt [ 0x80100000; 0xC0000123 ]

let test_defensive_kernel_addr_in_drain () =
  expect_corrupt [ Format_.marker_word (Format_.Drain 1); 1; 0x80100040 ]

let test_marker_roundtrip () =
  let ms =
    [
      Format_.Pid_switch 5;
      Format_.Drain 2;
      Format_.Exc_enter 8;
      Format_.Exc_exit;
      Format_.Mode 1;
      Format_.Trace_onoff 0;
      Format_.Thread_switch 3;
      Format_.End;
    ]
  in
  List.iter
    (fun m ->
      let w = Format_.marker_word m in
      check "in marker range" true (Format_.is_marker w);
      check "roundtrip" true (Format_.decode_marker w = m))
    ms

let test_mode_transitions () =
  let words =
    [
      0x80100040;
      Format_.marker_word (Format_.Mode 1);
      Format_.marker_word (Format_.Mode 0);
      0x80100040;
    ]
  in
  let stats, _ = parse words in
  check_int "transitions" 2 stats.Parser.mode_transitions

let prop_marker_roundtrip =
  QCheck.Test.make ~count:500 ~name:"marker word roundtrip"
    QCheck.(pair (int_bound 7) (int_bound 0xFFF))
    (fun (kind, arg) ->
      let w = Format_.make_marker kind arg in
      Format_.is_marker w
      && (w lsr 12) land 0xF = kind
      && w land 0xFFF = arg)

let tests =
  [
    Alcotest.test_case "kernel block parse" `Quick test_kernel_block;
    Alcotest.test_case "block without mems" `Quick test_no_mem_block;
    Alcotest.test_case "nested exception mid-block" `Quick
      test_nested_exception_mid_block;
    Alcotest.test_case "user drain" `Quick test_user_drain;
    Alcotest.test_case "drain split mid-block" `Quick test_drain_split_mid_block;
    Alcotest.test_case "idle flag counting" `Quick test_idle_flag;
    Alcotest.test_case "defensive: unknown record" `Quick
      test_defensive_unknown_record;
    Alcotest.test_case "defensive: data without block" `Quick
      test_defensive_data_without_block;
    Alcotest.test_case "defensive: surplus data word" `Quick
      test_defensive_surplus_data;
    Alcotest.test_case "defensive: exc exit underflow" `Quick
      test_defensive_exc_exit_underflow;
    Alcotest.test_case "defensive: marker in drain" `Quick
      test_defensive_marker_in_drain;
    Alcotest.test_case "defensive: incomplete at finish" `Quick
      test_defensive_incomplete_at_finish;
    Alcotest.test_case "defensive: kernel addr in drain" `Quick
      test_defensive_kernel_addr_in_drain;
    Alcotest.test_case "marker roundtrip" `Quick test_marker_roundtrip;
    Alcotest.test_case "mode transitions" `Quick test_mode_transitions;
    QCheck_alcotest.to_alcotest prop_marker_roundtrip;
  ]

(* ------------------------------------------------------------------ *)
(* Property: the parser reconstructs exactly the schedule that generated
   the trace.  Random kernel-block schedules with bounded exception
   nesting are serialized to words (records, data addresses, EXC
   markers); random user-block sequences are split across drain blocks at
   random points.  Parsed instruction/data counts must match the
   schedule's. *)

type kaction =
  | KBlock of int           (* index into the kernel table *)
  | KNest of kaction list   (* EXC_ENTER ... EXC_EXIT *)

let ktable_entries =
  [|
    (0x80100000, 0x80200000, 4, [| (1, 4, true); (3, 4, false) |]);
    (0x80100040, 0x80200100, 2, [||]);
    (0x80100080, 0x80200200, 3, [||]);
    (0x801000C0, 0x80200300, 6, [| (0, 4, true); (2, 1, false); (5, 4, true) |]);
  |]

let synth_kernel_table () =
  let t = Bbtable.create () in
  Array.iter
    (fun (rec_addr, orig, n, mems) ->
      Bbtable.add t ~record_addr:rec_addr
        { Bbtable.orig_addr = orig; ninsns = n; mems; flags = 0 })
    ktable_entries;
  t

let gen_kactions =
  let open QCheck.Gen in
  sized_size (int_range 1 12) @@ fix (fun self n ->
      if n <= 1 then map (fun k -> KBlock k) (int_range 0 3)
      else
        frequency
          [
            (4, map (fun k -> KBlock k) (int_range 0 3));
            (1, map (fun l -> KNest l) (list_size (int_range 1 3) (self (n / 2))));
          ])

let gen_schedule = QCheck.Gen.(list_size (int_range 1 20) gen_kactions)

(* Serialize a schedule into trace words. *)
let rec serialize_action out (act : kaction) =
  match act with
  | KBlock k ->
    let rec_addr, _, _, mems = ktable_entries.(k) in
    out := rec_addr :: !out;
    Array.iteri
      (fun i _ -> out := (0xC0000000 + (k * 64) + (i * 4)) :: !out)
      mems
  | KNest inner ->
    out := Format_.marker_word (Format_.Exc_enter 0) :: !out;
    List.iter (serialize_action out) inner;
    out := Format_.marker_word Format_.Exc_exit :: !out

let serialize schedule =
  let out = ref [] in
  List.iter (serialize_action out) schedule;
  Array.of_list (List.rev !out)

let expected_counts schedule =
  let insts = ref 0 and datas = ref 0 in
  let rec go = function
    | KBlock k ->
      let _, _, n, mems = ktable_entries.(k) in
      insts := !insts + n;
      datas := !datas + Array.length mems
    | KNest inner -> List.iter go inner
  in
  List.iter go schedule;
  (!insts, !datas)

let prop_parser_roundtrip =
  QCheck.Test.make ~count:200 ~name:"parser reconstructs random schedules"
    (QCheck.make gen_schedule)
    (fun schedule ->
      let words = serialize schedule in
      let p = Parser.create ~kernel_bbs:(synth_kernel_table ()) () in
      Parser.feed p words ~len:(Array.length words);
      Parser.finish p;
      let stats = Parser.stats p in
      let insts, datas = expected_counts schedule in
      stats.Parser.insts = insts && stats.Parser.datas = datas)

let tests = tests @ [ QCheck_alcotest.to_alcotest prop_parser_roundtrip ]

(* ------------------------------------------------------------------ *)
(* Compress: lossless delta/varint trace compression                   *)

let test_compress_basic () =
  let cases =
    [
      ("empty", [||]);
      ("one word", [| 0x40001000 |]);
      ("stride run", Array.init 1000 (fun i -> 0x10000000 + (4 * i)));
      ("loop", Array.init 600 (fun i -> 0x40001000 + (16 * (i mod 3))));
      ("extremes", [| 0; 0xFFFFFFFF; 0; 0x80000000; 0x7FFFFFFF |]);
    ]
  in
  List.iter
    (fun (name, words) ->
      let enc = Compress.encode words in
      Alcotest.(check (array int)) name words (Compress.decode enc))
    cases;
  (* a pure stride compresses to a handful of bytes *)
  let stride = Array.init 10_000 (fun i -> 4 * i) in
  Alcotest.(check bool)
    "stride run tiny" true
    (String.length (Compress.encode stride) < 32)

let test_compress_corrupt () =
  let words = Array.init 64 (fun i -> i * 8) in
  let enc = Compress.encode words in
  (* truncated varint *)
  (try
     ignore (Compress.decode (String.make 1 '\xFF'));
     Alcotest.fail "truncated varint accepted"
   with Compress.Corrupt _ -> ());
  (* word-count check *)
  (try
     ignore (Compress.decode ~expect:(Array.length words + 1) enc);
     Alcotest.fail "wrong count accepted"
   with Compress.Corrupt _ -> ())

let prop_compress_roundtrip =
  QCheck.Test.make ~count:300 ~name:"compress roundtrip on random words"
    QCheck.(
      list_of_size Gen.(int_range 0 400)
        (* mix of clustered addresses and arbitrary 32-bit values *)
        (oneof
           [ map (fun i -> 0x40000000 + (4 * i)) (int_bound 4096);
             map (fun i -> i land 0xFFFFFFFF) (int_bound max_int) ]))
    (fun l ->
      let words = Array.of_list l in
      Compress.decode ~expect:(Array.length words) (Compress.encode words)
      = words)

let test_tracefile_compressed () =
  let words =
    Array.init 5000 (fun i ->
        if i mod 7 = 0 then 0xBFFF0000 + (8 * (i mod 6))
        else 0x40001000 + (4 * (i mod 257)))
  in
  let path = Filename.temp_file "systrace" ".strc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tracefile.save ~compress:true path words;
      Alcotest.(check (array int)) "v2 roundtrip" words (Tracefile.load path);
      let compressed_size = (Unix.stat path).Unix.st_size in
      Tracefile.save path words;
      Alcotest.(check (array int)) "v1 roundtrip" words (Tracefile.load path);
      let raw_size = (Unix.stat path).Unix.st_size in
      Alcotest.(check bool) "v2 smaller" true (compressed_size < raw_size))

let tests =
  tests
  @ [
      Alcotest.test_case "compress: basic shapes" `Quick test_compress_basic;
      Alcotest.test_case "compress: corrupt input" `Quick test_compress_corrupt;
      QCheck_alcotest.to_alcotest prop_compress_roundtrip;
      Alcotest.test_case "tracefile: both formats" `Quick
        test_tracefile_compressed;
    ]

let prop_lzss_roundtrip =
  QCheck.Test.make ~count:300 ~name:"lzss roundtrip on random strings"
    QCheck.(
      oneof
        [
          string_of_size Gen.(int_range 0 2000);
          (* highly repetitive input exercises overlapping matches *)
          map
            (fun (pat, reps) ->
              String.concat "" (List.init (reps + 1) (fun _ -> pat)))
            (pair (string_of_size Gen.(int_range 1 12)) (int_bound 200));
        ])
    (fun s -> Compress.lzss_unpack (Compress.lzss_pack s) = s)

let test_lzss_overlap_and_ratio () =
  (* single repeated byte: one literal + overlapping matches *)
  let s = String.make 10_000 'x' in
  let packed = Compress.lzss_pack s in
  Alcotest.(check string) "overlap roundtrip" s (Compress.lzss_unpack packed);
  Alcotest.(check bool) "rle-dense" true (String.length packed < 160);
  (* a looping trace compresses far better through the LZ stage: the loop
     body's delta sequence becomes one match per iteration *)
  let body =
    (* one loop iteration: block records and fixed-location accesses, the
       trace a tight loop actually emits — its delta sequence repeats
       verbatim, which run-length deltas cannot exploit but LZ can *)
    [| 0x40001000; 0x10002340; 0x40001040; 0x7FFFE000; 0x40001080;
       0x10002344 |]
  in
  let loop_trace = Array.init 4002 (fun i -> body.(i mod 6)) in
  let z1 = String.length (Compress.encode loop_trace) in
  let z2 = String.length (Compress.pack loop_trace) in
  Alcotest.(check bool) "lz beats delta-only on loops" true (z2 < z1 / 2);
  Alcotest.(check (array int))
    "pack roundtrip" loop_trace
    (Compress.unpack ~expect:(Array.length loop_trace)
       (Compress.pack loop_trace))

let tests =
  tests
  @ [
      QCheck_alcotest.to_alcotest prop_lzss_roundtrip;
      Alcotest.test_case "compress: lzss overlap + loop density" `Quick
        test_lzss_overlap_and_ratio;
    ]

(* ------------------------------------------------------------------ *)
(* Fuzzing: hostile input must fail cleanly, never crash.              *)

let prop_parser_never_crashes =
  (* Arbitrary word salad into the parser: every outcome must be either a
     clean parse or a Corrupt/Bad_marker rejection — no other exception,
     no runaway state.  This is the §4.3 "defensive tracing" contract
     stated as a total-behaviour property. *)
  QCheck.Test.make ~count:300 ~name:"parser: garbage never crashes"
    QCheck.(
      list_of_size Gen.(int_range 0 200)
        (oneof
           [ map (fun i -> i land 0xFFFFFFFF) (int_bound max_int);
             (* bias toward the marker slice where the state machine has
                the most transitions *)
             map (fun i -> 0xBFFF0000 lor (i land 0xFFFF)) (int_bound max_int) ]))
    (fun l ->
      let words = Array.of_list l in
      let p = Parser.create ~kernel_bbs:(synth_kernel_table ()) () in
      match
        Parser.feed p words ~len:(Array.length words);
        Parser.finish p
      with
      | () -> true
      | exception Parser.Corrupt _ -> true
      | exception Format_.Bad_marker _ -> true)

let prop_compress_decode_never_crashes =
  QCheck.Test.make ~count:500 ~name:"compress: garbage decode never crashes"
    QCheck.(string_of_size Gen.(int_range 0 300))
    (fun s ->
      (* expect bounds the decode, so hostile run-length tokens are
         rejected after at most 4096 emitted words *)
      match Compress.decode ~expect:4096 s with
      | (_ : int array) -> true
      | exception Compress.Corrupt _ -> true)

let prop_lzss_unpack_never_crashes =
  QCheck.Test.make ~count:500 ~name:"lzss: garbage unpack never crashes"
    QCheck.(string_of_size Gen.(int_range 0 300))
    (fun s ->
      match Compress.lzss_unpack s with
      | (_ : string) -> true
      | exception Compress.Corrupt _ -> true)

(* ------------------------------------------------------------------ *)
(* Equivalence: the zero-allocation fast parse loop and the variant-based
   debug loop must be observably identical — same event stream, same
   stats, same defensive-check failure — on valid traces, corrupted
   traces, and word salad. *)

type parse_outcome = P_ok | P_corrupt of string | P_bad_marker of int

let run_parser ~debug words =
  let p = Parser.create ~debug ~kernel_bbs:(synth_kernel_table ()) () in
  Parser.register_pid p ~pid:1 (user_table ());
  let evs = ref [] in
  Parser.set_handlers p
    {
      Parser.on_inst =
        (fun addr pid kernel -> evs := (`I, addr, pid, kernel, false, 0) :: !evs);
      on_data =
        (fun addr pid kernel is_load bytes ->
          evs := (`D, addr, pid, kernel, is_load, bytes) :: !evs);
    };
  let outcome =
    match
      Parser.feed p words ~len:(Array.length words);
      Parser.finish p
    with
    | () -> P_ok
    | exception Parser.Corrupt msg -> P_corrupt msg
    | exception Format_.Bad_marker w -> P_bad_marker w
  in
  (outcome, List.rev !evs, Parser.stats p)

let gen_equiv_words =
  let open QCheck.Gen in
  let salad_word =
    oneof
      [
        map (fun i -> i land 0xFFFFFFFF) (int_bound max_int);
        map (fun i -> 0xBFFF0000 lor (i land 0xFFFF)) (int_bound max_int);
      ]
  in
  oneof
    [
      (* valid kernel schedules *)
      map serialize gen_schedule;
      (* the same, with one word smashed *)
      map3
        (fun sch pos w ->
          let ws = serialize sch in
          if Array.length ws > 0 then
            ws.(pos mod Array.length ws) <- w land 0xFFFFFFFF;
          ws)
        gen_schedule (int_bound 1000) (int_bound max_int);
      (* pure word salad, biased toward the marker slice *)
      map Array.of_list (list_size (int_range 0 120) salad_word);
    ]

let prop_fast_parser_equivalent =
  QCheck.Test.make ~count:300
    ~name:"fast parse loop == variant parse loop (events, stats, failures)"
    (QCheck.make
       ~print:(fun ws -> Printf.sprintf "<%d words>" (Array.length ws))
       gen_equiv_words)
    (fun words ->
      run_parser ~debug:false words = run_parser ~debug:true words)

let tests =
  tests
  @ [
      QCheck_alcotest.to_alcotest prop_parser_never_crashes;
      QCheck_alcotest.to_alcotest prop_compress_decode_never_crashes;
      QCheck_alcotest.to_alcotest prop_lzss_unpack_never_crashes;
      QCheck_alcotest.to_alcotest prop_fast_parser_equivalent;
    ]
