(* Tests for the trace format and parsing library, using hand-built static
   block tables and synthetic trace words. *)

open Systrace_tracing

let check_int = Alcotest.(check int)
let check = Alcotest.(check bool)

(* A kernel table with two blocks:
     record 0x80100000 -> orig 0x80200000, 4 insns, loads at pos 1, store at 3
     record 0x80100040 -> orig 0x80200100, 2 insns, no mems            *)
let kernel_table () =
  let t = Bbtable.create () in
  Bbtable.add t ~record_addr:0x80100000
    {
      Bbtable.orig_addr = 0x80200000;
      ninsns = 4;
      mems = [| (1, 4, true); (3, 4, false) |];
      flags = 0;
    };
  Bbtable.add t ~record_addr:0x80100040
    { Bbtable.orig_addr = 0x80200100; ninsns = 2; mems = [||]; flags = 0 };
  Bbtable.add t ~record_addr:0x80100080
    {
      Bbtable.orig_addr = 0x80200200;
      ninsns = 3;
      mems = [||];
      flags = Bbtable.flag_idle;
    };
  t

let user_table () =
  let t = Bbtable.create () in
  Bbtable.add t ~record_addr:0x00410000
    {
      Bbtable.orig_addr = 0x00400000;
      ninsns = 3;
      mems = [| (0, 4, true); (2, 1, false) |];
      flags = 0;
    };
  t

type ev =
  | I of int * bool          (* addr, kernel *)
  | D of int * bool * bool   (* addr, kernel, is_load *)

let collect () =
  let evs = ref [] in
  let h =
    {
      Parser.on_inst = (fun addr _pid kernel -> evs := I (addr, kernel) :: !evs);
      on_data =
        (fun addr _pid kernel is_load _bytes ->
          evs := D (addr, kernel, is_load) :: !evs);
    }
  in
  (h, fun () -> List.rev !evs)

let parse words =
  let p = Parser.create ~kernel_bbs:(kernel_table ()) () in
  Parser.register_pid p ~pid:1 (user_table ());
  let h, get = collect () in
  Parser.set_handlers p h;
  Parser.feed p (Array.of_list words) ~len:(List.length words);
  Parser.finish p;
  (Parser.stats p, get ())

let test_kernel_block () =
  let stats, evs = parse [ 0x80100000; 0xC0000123; 0x80300040 ] in
  check_int "insts" 4 stats.Parser.insts;
  check_int "datas" 2 stats.Parser.datas;
  Alcotest.(check (list (pair int bool)))
    "event order"
    [
      (0x80200000, true);   (* I pos 0 *)
      (0x80200004, true);   (* I pos 1 (the load) *)
      (0xC0000123, true);   (* D load *)
      (0x80200008, true);   (* I pos 2 *)
      (0x8020000C, true);   (* I pos 3 (the store) *)
      (0x80300040, true);   (* D store *)
    ]
    (List.map
       (function I (a, k) -> (a, k) | D (a, k, _) -> (a, k))
       evs);
  (* Check load/store direction came through. *)
  (match evs with
  | [ _; _; D (_, _, true); _; _; D (_, _, false) ] -> ()
  | _ -> Alcotest.fail "wrong event shapes")

let test_no_mem_block () =
  let stats, _ = parse [ 0x80100040 ] in
  check_int "insts" 2 stats.Parser.insts;
  check_int "datas" 0 stats.Parser.datas

let test_nested_exception_mid_block () =
  (* The first block is interrupted after its first data word by an
     exception whose handler runs the no-mem block; then the first block
     completes. *)
  let words =
    [
      0x80100000;                                 (* bb A *)
      0xC0000123;                                 (* A data 1 *)
      Format_.marker_word (Format_.Exc_enter 0);
      0x80100040;                                 (* nested bb B *)
      Format_.marker_word Format_.Exc_exit;
      0x80300040;                                 (* A data 2 *)
    ]
  in
  let stats, evs = parse words in
  check_int "insts" 6 stats.Parser.insts;
  check_int "max depth" 1 stats.Parser.max_exc_depth;
  (* Nested block's instructions appear between A's data words. *)
  let addrs = List.map (function I (a, _) -> a | D (a, _, _) -> a) evs in
  Alcotest.(check (list int)) "interleaving"
    [
      0x80200000; 0x80200004; 0xC0000123;         (* A up to data 1 *)
      0x80200100; 0x80200104;                     (* B *)
      0x80200008; 0x8020000C; 0x80300040;         (* A completes *)
    ]
    addrs

let test_user_drain () =
  let words =
    [
      Format_.marker_word (Format_.Pid_switch 1);
      Format_.marker_word (Format_.Drain 1);
      3;
      0x00410000;    (* user bb *)
      0x00500000;    (* data 1 (load) *)
      0x00500004;    (* data 2 (store byte) *)
    ]
  in
  let stats, evs = parse words in
  check_int "user insts" 3 stats.Parser.user_insts;
  check_int "user datas" 2 stats.Parser.user_datas;
  check_int "drains" 1 stats.Parser.drains;
  check "all user events" true
    (List.for_all (function I (_, k) | D (_, k, _) -> not k) evs)

let test_drain_split_mid_block () =
  (* A user block's record arrives in one drain and its data words in a
     later one — exactly what happens when an exception interrupts a traced
     process between memory references. *)
  let words =
    [
      Format_.marker_word (Format_.Drain 1);
      2;
      0x00410000;
      0x00500000;
      (* kernel activity between the drains *)
      0x80100040;
      Format_.marker_word (Format_.Drain 1);
      1;
      0x00500004;
    ]
  in
  let stats, _ = parse words in
  check_int "user insts" 3 stats.Parser.user_insts;
  check_int "kernel insts" 2 stats.Parser.kernel_insts;
  check_int "user datas" 2 stats.Parser.user_datas

let test_idle_flag () =
  let stats, _ = parse [ 0x80100080 ] in
  check_int "idle insts counted" 3 stats.Parser.idle_insts

let expect_corrupt words =
  match parse words with
  | exception Parser.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt"

let test_defensive_unknown_record () = expect_corrupt [ 0x80777700 ]

let test_defensive_data_without_block () =
  (* A data-looking kernel word with no open block fails the bb lookup. *)
  expect_corrupt [ 0xC0000123 ]

let test_defensive_surplus_data () =
  (* A completed block followed by a stray data address: the stray word is
     interpreted as a block record and fails the table lookup.  (A stray
     word that happens to equal a record address is undetectable — the
     paper's format detects corruption "with a very high probability", not
     certainty.) *)
  expect_corrupt [ 0x80100000; 0xC0000123; 0x80300040; 0xC0000999 ]

let test_defensive_exc_exit_underflow () =
  expect_corrupt [ Format_.marker_word Format_.Exc_exit ]

let test_defensive_marker_in_drain () =
  expect_corrupt
    [
      Format_.marker_word (Format_.Drain 1);
      2;
      Format_.marker_word (Format_.Pid_switch 1);
      0x00410000;
    ]

let test_defensive_incomplete_at_finish () =
  expect_corrupt [ 0x80100000; 0xC0000123 ]

let test_defensive_kernel_addr_in_drain () =
  expect_corrupt [ Format_.marker_word (Format_.Drain 1); 1; 0x80100040 ]

let test_marker_roundtrip () =
  let ms =
    [
      Format_.Pid_switch 5;
      Format_.Drain 2;
      Format_.Exc_enter 8;
      Format_.Exc_exit;
      Format_.Mode 1;
      Format_.Trace_onoff 0;
      Format_.Thread_switch 3;
      Format_.End;
    ]
  in
  List.iter
    (fun m ->
      let w = Format_.marker_word m in
      check "in marker range" true (Format_.is_marker w);
      check "roundtrip" true (Format_.decode_marker w = m))
    ms

let test_mode_transitions () =
  let words =
    [
      0x80100040;
      Format_.marker_word (Format_.Mode 1);
      Format_.marker_word (Format_.Mode 0);
      0x80100040;
    ]
  in
  let stats, _ = parse words in
  check_int "transitions" 2 stats.Parser.mode_transitions

let prop_marker_roundtrip =
  QCheck.Test.make ~count:500 ~name:"marker word roundtrip"
    QCheck.(pair (int_bound 7) (int_bound 0xFFF))
    (fun (kind, arg) ->
      let w = Format_.make_marker kind arg in
      Format_.is_marker w
      && (w lsr 12) land 0xF = kind
      && w land 0xFFF = arg)

let tests =
  [
    Alcotest.test_case "kernel block parse" `Quick test_kernel_block;
    Alcotest.test_case "block without mems" `Quick test_no_mem_block;
    Alcotest.test_case "nested exception mid-block" `Quick
      test_nested_exception_mid_block;
    Alcotest.test_case "user drain" `Quick test_user_drain;
    Alcotest.test_case "drain split mid-block" `Quick test_drain_split_mid_block;
    Alcotest.test_case "idle flag counting" `Quick test_idle_flag;
    Alcotest.test_case "defensive: unknown record" `Quick
      test_defensive_unknown_record;
    Alcotest.test_case "defensive: data without block" `Quick
      test_defensive_data_without_block;
    Alcotest.test_case "defensive: surplus data word" `Quick
      test_defensive_surplus_data;
    Alcotest.test_case "defensive: exc exit underflow" `Quick
      test_defensive_exc_exit_underflow;
    Alcotest.test_case "defensive: marker in drain" `Quick
      test_defensive_marker_in_drain;
    Alcotest.test_case "defensive: incomplete at finish" `Quick
      test_defensive_incomplete_at_finish;
    Alcotest.test_case "defensive: kernel addr in drain" `Quick
      test_defensive_kernel_addr_in_drain;
    Alcotest.test_case "marker roundtrip" `Quick test_marker_roundtrip;
    Alcotest.test_case "mode transitions" `Quick test_mode_transitions;
    QCheck_alcotest.to_alcotest prop_marker_roundtrip;
  ]

(* ------------------------------------------------------------------ *)
(* Property: the parser reconstructs exactly the schedule that generated
   the trace.  Random kernel-block schedules with bounded exception
   nesting are serialized to words (records, data addresses, EXC
   markers); random user-block sequences are split across drain blocks at
   random points.  Parsed instruction/data counts must match the
   schedule's. *)

type kaction =
  | KBlock of int           (* index into the kernel table *)
  | KNest of kaction list   (* EXC_ENTER ... EXC_EXIT *)

let ktable_entries =
  [|
    (0x80100000, 0x80200000, 4, [| (1, 4, true); (3, 4, false) |]);
    (0x80100040, 0x80200100, 2, [||]);
    (0x80100080, 0x80200200, 3, [||]);
    (0x801000C0, 0x80200300, 6, [| (0, 4, true); (2, 1, false); (5, 4, true) |]);
  |]

let synth_kernel_table () =
  let t = Bbtable.create () in
  Array.iter
    (fun (rec_addr, orig, n, mems) ->
      Bbtable.add t ~record_addr:rec_addr
        { Bbtable.orig_addr = orig; ninsns = n; mems; flags = 0 })
    ktable_entries;
  t

let gen_kactions =
  let open QCheck.Gen in
  sized_size (int_range 1 12) @@ fix (fun self n ->
      if n <= 1 then map (fun k -> KBlock k) (int_range 0 3)
      else
        frequency
          [
            (4, map (fun k -> KBlock k) (int_range 0 3));
            (1, map (fun l -> KNest l) (list_size (int_range 1 3) (self (n / 2))));
          ])

let gen_schedule = QCheck.Gen.(list_size (int_range 1 20) gen_kactions)

(* Serialize a schedule into trace words. *)
let rec serialize_action out (act : kaction) =
  match act with
  | KBlock k ->
    let rec_addr, _, _, mems = ktable_entries.(k) in
    out := rec_addr :: !out;
    Array.iteri
      (fun i _ -> out := (0xC0000000 + (k * 64) + (i * 4)) :: !out)
      mems
  | KNest inner ->
    out := Format_.marker_word (Format_.Exc_enter 0) :: !out;
    List.iter (serialize_action out) inner;
    out := Format_.marker_word Format_.Exc_exit :: !out

let serialize schedule =
  let out = ref [] in
  List.iter (serialize_action out) schedule;
  Array.of_list (List.rev !out)

let expected_counts schedule =
  let insts = ref 0 and datas = ref 0 in
  let rec go = function
    | KBlock k ->
      let _, _, n, mems = ktable_entries.(k) in
      insts := !insts + n;
      datas := !datas + Array.length mems
    | KNest inner -> List.iter go inner
  in
  List.iter go schedule;
  (!insts, !datas)

let prop_parser_roundtrip =
  QCheck.Test.make ~count:200 ~name:"parser reconstructs random schedules"
    (QCheck.make gen_schedule)
    (fun schedule ->
      let words = serialize schedule in
      let p = Parser.create ~kernel_bbs:(synth_kernel_table ()) () in
      Parser.feed p words ~len:(Array.length words);
      Parser.finish p;
      let stats = Parser.stats p in
      let insts, datas = expected_counts schedule in
      stats.Parser.insts = insts && stats.Parser.datas = datas)

let tests = tests @ [ QCheck_alcotest.to_alcotest prop_parser_roundtrip ]

(* ------------------------------------------------------------------ *)
(* Compress: lossless delta/varint trace compression                   *)

let test_compress_basic () =
  let cases =
    [
      ("empty", [||]);
      ("one word", [| 0x40001000 |]);
      ("stride run", Array.init 1000 (fun i -> 0x10000000 + (4 * i)));
      ("loop", Array.init 600 (fun i -> 0x40001000 + (16 * (i mod 3))));
      ("extremes", [| 0; 0xFFFFFFFF; 0; 0x80000000; 0x7FFFFFFF |]);
    ]
  in
  List.iter
    (fun (name, words) ->
      let enc = Compress.encode words in
      Alcotest.(check (array int)) name words (Compress.decode enc))
    cases;
  (* a pure stride compresses to a handful of bytes *)
  let stride = Array.init 10_000 (fun i -> 4 * i) in
  Alcotest.(check bool)
    "stride run tiny" true
    (String.length (Compress.encode stride) < 32)

let test_compress_corrupt () =
  let words = Array.init 64 (fun i -> i * 8) in
  let enc = Compress.encode words in
  (* truncated varint *)
  (try
     ignore (Compress.decode (String.make 1 '\xFF'));
     Alcotest.fail "truncated varint accepted"
   with Compress.Corrupt _ -> ());
  (* word-count check *)
  (try
     ignore (Compress.decode ~expect:(Array.length words + 1) enc);
     Alcotest.fail "wrong count accepted"
   with Compress.Corrupt _ -> ())

let prop_compress_roundtrip =
  QCheck.Test.make ~count:300 ~name:"compress roundtrip on random words"
    QCheck.(
      list_of_size Gen.(int_range 0 400)
        (* mix of clustered addresses and arbitrary 32-bit values *)
        (oneof
           [ map (fun i -> 0x40000000 + (4 * i)) (int_bound 4096);
             map (fun i -> i land 0xFFFFFFFF) (int_bound max_int) ]))
    (fun l ->
      let words = Array.of_list l in
      Compress.decode ~expect:(Array.length words) (Compress.encode words)
      = words)

let test_tracefile_compressed () =
  let words =
    Array.init 5000 (fun i ->
        if i mod 7 = 0 then 0xBFFF0000 + (8 * (i mod 6))
        else 0x40001000 + (4 * (i mod 257)))
  in
  let path = Filename.temp_file "systrace" ".strc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tracefile.save ~compress:true path words;
      Alcotest.(check (array int)) "v2 roundtrip" words (Tracefile.load path);
      let compressed_size = (Unix.stat path).Unix.st_size in
      Tracefile.save path words;
      Alcotest.(check (array int)) "v1 roundtrip" words (Tracefile.load path);
      let raw_size = (Unix.stat path).Unix.st_size in
      Alcotest.(check bool) "v2 smaller" true (compressed_size < raw_size))

let tests =
  tests
  @ [
      Alcotest.test_case "compress: basic shapes" `Quick test_compress_basic;
      Alcotest.test_case "compress: corrupt input" `Quick test_compress_corrupt;
      QCheck_alcotest.to_alcotest prop_compress_roundtrip;
      Alcotest.test_case "tracefile: both formats" `Quick
        test_tracefile_compressed;
    ]

let prop_lzss_roundtrip =
  QCheck.Test.make ~count:300 ~name:"lzss roundtrip on random strings"
    QCheck.(
      oneof
        [
          string_of_size Gen.(int_range 0 2000);
          (* highly repetitive input exercises overlapping matches *)
          map
            (fun (pat, reps) ->
              String.concat "" (List.init (reps + 1) (fun _ -> pat)))
            (pair (string_of_size Gen.(int_range 1 12)) (int_bound 200));
        ])
    (fun s -> Compress.lzss_unpack (Compress.lzss_pack s) = s)

(* Parallel pack: tiny blocks force many per-domain LZSS units, and the
   concatenated wire format must still unpack to the input through the
   ordinary (serial, chunked-capable) decoder. *)
let prop_pack_parallel_roundtrip =
  QCheck.Test.make ~count:120 ~name:"pack: parallel blocks unpack intact"
    QCheck.(
      list_of_size
        Gen.(int_range 0 4000)
        (oneof
           [ map (fun i -> 0x40000000 + (4 * (i mod 64))) (int_bound 4096);
             map (fun i -> i land 0xFFFFFFFF) (int_bound max_int) ]))
    (fun l ->
      let words = Array.of_list l in
      let z = Compress.pack ~jobs:3 ~block_bytes:512 words in
      Compress.unpack ~expect:(Array.length words) z = words)

let test_lzss_overlap_and_ratio () =
  (* single repeated byte: one literal + overlapping matches *)
  let s = String.make 10_000 'x' in
  let packed = Compress.lzss_pack s in
  Alcotest.(check string) "overlap roundtrip" s (Compress.lzss_unpack packed);
  Alcotest.(check bool) "rle-dense" true (String.length packed < 160);
  (* a looping trace compresses far better through the LZ stage: the loop
     body's delta sequence becomes one match per iteration *)
  let body =
    (* one loop iteration: block records and fixed-location accesses, the
       trace a tight loop actually emits — its delta sequence repeats
       verbatim, which run-length deltas cannot exploit but LZ can *)
    [| 0x40001000; 0x10002340; 0x40001040; 0x7FFFE000; 0x40001080;
       0x10002344 |]
  in
  let loop_trace = Array.init 4002 (fun i -> body.(i mod 6)) in
  let z1 = String.length (Compress.encode loop_trace) in
  let z2 = String.length (Compress.pack loop_trace) in
  Alcotest.(check bool) "lz beats delta-only on loops" true (z2 < z1 / 2);
  Alcotest.(check (array int))
    "pack roundtrip" loop_trace
    (Compress.unpack ~expect:(Array.length loop_trace)
       (Compress.pack loop_trace))

let tests =
  tests
  @ [
      QCheck_alcotest.to_alcotest prop_lzss_roundtrip;
      QCheck_alcotest.to_alcotest prop_pack_parallel_roundtrip;
      Alcotest.test_case "compress: lzss overlap + loop density" `Quick
        test_lzss_overlap_and_ratio;
    ]

(* ------------------------------------------------------------------ *)
(* Fuzzing: hostile input must fail cleanly, never crash.              *)

let prop_parser_never_crashes =
  (* Arbitrary word salad into the parser: every outcome must be either a
     clean parse or a Corrupt/Bad_marker rejection — no other exception,
     no runaway state.  This is the §4.3 "defensive tracing" contract
     stated as a total-behaviour property. *)
  QCheck.Test.make ~count:300 ~name:"parser: garbage never crashes"
    QCheck.(
      list_of_size Gen.(int_range 0 200)
        (oneof
           [ map (fun i -> i land 0xFFFFFFFF) (int_bound max_int);
             (* bias toward the marker slice where the state machine has
                the most transitions *)
             map (fun i -> 0xBFFF0000 lor (i land 0xFFFF)) (int_bound max_int) ]))
    (fun l ->
      let words = Array.of_list l in
      let p = Parser.create ~kernel_bbs:(synth_kernel_table ()) () in
      match
        Parser.feed p words ~len:(Array.length words);
        Parser.finish p
      with
      | () -> true
      | exception Parser.Corrupt _ -> true
      | exception Format_.Bad_marker _ -> true)

let prop_compress_decode_never_crashes =
  QCheck.Test.make ~count:500 ~name:"compress: garbage decode never crashes"
    QCheck.(string_of_size Gen.(int_range 0 300))
    (fun s ->
      (* expect bounds the decode, so hostile run-length tokens are
         rejected after at most 4096 emitted words *)
      match Compress.decode ~expect:4096 s with
      | (_ : int array) -> true
      | exception Compress.Corrupt _ -> true)

let prop_lzss_unpack_never_crashes =
  QCheck.Test.make ~count:500 ~name:"lzss: garbage unpack never crashes"
    QCheck.(string_of_size Gen.(int_range 0 300))
    (fun s ->
      match Compress.lzss_unpack s with
      | (_ : string) -> true
      | exception Compress.Corrupt _ -> true)

(* ------------------------------------------------------------------ *)
(* Marker dispatch.  [Parser.feed] dispatches marker words on their raw
   kind field without building a [Format_.marker] value; the variant API
   serves as the oracle here.  (This replaces the old duplicated
   variant-based word loop, which could never be measured apart from the
   raw-kind one — markers are a fraction of a percent of real traces —
   and was folded away.) *)

type parse_outcome = P_ok | P_corrupt of string | P_bad_marker of int

let gen_equiv_words =
  let open QCheck.Gen in
  let salad_word =
    oneof
      [
        map (fun i -> i land 0xFFFFFFFF) (int_bound max_int);
        map (fun i -> 0xBFFF0000 lor (i land 0xFFFF)) (int_bound max_int);
      ]
  in
  oneof
    [
      (* valid kernel schedules *)
      map serialize gen_schedule;
      (* the same, with one word smashed *)
      map3
        (fun sch pos w ->
          let ws = serialize sch in
          if Array.length ws > 0 then
            ws.(pos mod Array.length ws) <- w land 0xFFFFFFFF;
          ws)
        gen_schedule (int_bound 1000) (int_bound max_int);
      (* pure word salad, biased toward the marker slice *)
      map Array.of_list (list_size (int_range 0 120) salad_word);
    ]

(* Any word in the reserved marker slice, valid kind or not. *)
let gen_marker_word =
  QCheck.Gen.map (fun i -> 0xBFFF0000 lor (i land 0xFFFF))
    (QCheck.Gen.int_bound max_int)

let prop_marker_dispatch_matches_variant =
  QCheck.Test.make ~count:500
    ~name:"raw-kind marker dispatch == Format_.decode_marker oracle"
    (QCheck.make ~print:(Printf.sprintf "0x%x") gen_marker_word)
    (fun w ->
      let p = Parser.create ~kernel_bbs:(synth_kernel_table ()) () in
      let outcome =
        match Parser.feed p [| w |] ~len:1 with
        | () -> P_ok
        | exception Parser.Corrupt msg -> P_corrupt msg
        | exception Format_.Bad_marker bw -> P_bad_marker bw
      in
      let s = Parser.stats p in
      let counted ~pid ~drain ~exc ~mode_t ~ended =
        s.Parser.markers = 1
        && s.Parser.pid_switches = pid
        && s.Parser.drains = drain
        && s.Parser.exc_markers = exc
        && s.Parser.mode_transitions = mode_t
        && s.Parser.ended = ended
      in
      match Format_.decode_marker w with
      | exception Format_.Bad_marker _ ->
        outcome = P_bad_marker w && s.Parser.markers = 1
      | Format_.Pid_switch _ ->
        outcome = P_ok && counted ~pid:1 ~drain:0 ~exc:0 ~mode_t:0 ~ended:false
      | Format_.Drain _ ->
        outcome = P_ok && counted ~pid:0 ~drain:1 ~exc:0 ~mode_t:0 ~ended:false
      | Format_.Exc_enter _ ->
        outcome = P_ok
        && counted ~pid:0 ~drain:0 ~exc:1 ~mode_t:0 ~ended:false
        && s.Parser.max_exc_depth = 1
      | Format_.Exc_exit ->
        (* depth is 0, so the dispatch must land in the exit handler and
           trip its bracket check *)
        (match outcome with P_corrupt _ -> true | _ -> false)
        && s.Parser.exc_markers = 1
      | Format_.Mode _ ->
        outcome = P_ok && counted ~pid:0 ~drain:0 ~exc:0 ~mode_t:1 ~ended:false
      | Format_.Trace_onoff _ | Format_.Thread_switch _ ->
        outcome = P_ok && counted ~pid:0 ~drain:0 ~exc:0 ~mode_t:0 ~ended:false
      | Format_.End ->
        outcome = P_ok && counted ~pid:0 ~drain:0 ~exc:0 ~mode_t:0 ~ended:true)

let tests =
  tests
  @ [
      QCheck_alcotest.to_alcotest prop_parser_never_crashes;
      QCheck_alcotest.to_alcotest prop_compress_decode_never_crashes;
      QCheck_alcotest.to_alcotest prop_lzss_unpack_never_crashes;
      QCheck_alcotest.to_alcotest prop_marker_dispatch_matches_variant;
    ]

(* ------------------------------------------------------------------ *)
(* Fault injection and error recovery (paper 4.3, the tentpole of the
   defensive-tracing work).

   The ISSUE-stated property "strict mode either raises Corrupt or the
   reconstructed stream is identical to the clean run" is deliberately
   weakened here: it is false in general — §4.3 promises detection "with
   very high probability", not certainty.  A dropped record of a mem-less
   block, or a bit flip inside a data address, alters the stream without
   any structural violation; the faults_table experiment measures those
   misses statistically.  What IS universally true, and what these
   properties enforce:
     - recovery mode never raises, on any input whatsoever;
     - when strict mode succeeds on a faulted stream, recovery mode is
       byte-identical to it and reports no diagnoses;
     - when strict mode raises, recovery's first diagnosis is the same
       violation, and recovery reconstructs at least the prefix strict
       managed;
     - every word recovery discards is accounted in the per-source skip
       counters, and the reference loss vs the clean run is bounded by
       what those counters (plus the fault's own size) can explain;
     - a drain split is a valid transform: strict parses it to the
       identical stream;
     - recovery parsing is invariant under chunk splits of the fed
       stream, on valid, faulted, and word-salad inputs alike. *)

(* Valid traces with BOTH kernel activity and user drains: a random
   kernel schedule interleaved with pid-1 drain blocks whose payload is a
   user block stream chunked at random boundaries (blocks may split
   across drains). *)
let take n l =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go n [] l

let serialize_mixed (sched, chunks) =
  let out = ref [ Format_.marker_word (Format_.Pid_switch 1) ] in
  let emit_drain ch =
    out := List.length ch :: Format_.marker_word (Format_.Drain 1) :: !out;
    List.iter (fun w -> out := w :: !out) ch
  in
  let rec go acts chs =
    match (acts, chs) with
    | [], [] -> ()
    | a :: ar, [] ->
      serialize_action out a;
      go ar []
    | [], ch :: cr ->
      emit_drain ch;
      go [] cr
    | a :: ar, ch :: cr ->
      serialize_action out a;
      emit_drain ch;
      go ar cr
  in
  go sched chunks;
  Array.of_list (List.rev !out)

let gen_mixed_words =
  let open QCheck.Gen in
  gen_schedule >>= fun sched ->
  int_range 0 4 >>= fun nblocks ->
  int_range 1 4 >>= fun chunk_max ->
  let user_words =
    List.concat
      (List.init nblocks (fun i ->
           [ 0x00410000; 0x00500000 + (16 * i); 0x00500004 + (16 * i) ]))
  in
  let rec chunk = function
    | [] -> []
    | l ->
      let c, rest = take chunk_max l in
      c :: chunk rest
  in
  return (serialize_mixed (sched, chunk user_words))

(* Like [run_parser], with recovery controls; returns the diagnoses and
   skip counters too. *)
let run_parser_r ?feed_chunks ~recover words =
  let p = Parser.create ~recover ~kernel_bbs:(synth_kernel_table ()) () in
  Parser.register_pid p ~pid:1 (user_table ());
  let evs = ref [] in
  Parser.set_handlers p
    {
      Parser.on_inst =
        (fun addr pid kernel -> evs := (`I, addr, pid, kernel, false, 0) :: !evs);
      on_data =
        (fun addr pid kernel is_load bytes ->
          evs := (`D, addr, pid, kernel, is_load, bytes) :: !evs);
    };
  let feed_all () =
    match feed_chunks with
    | None -> Parser.feed p words ~len:(Array.length words)
    | Some sizes ->
      (* feed the same words split at the given boundaries; any tail not
         covered by [sizes] goes in one final chunk *)
      let n = Array.length words in
      let pos = ref 0 in
      List.iter
        (fun sz ->
          let k = min sz (n - !pos) in
          if k > 0 then begin
            Parser.feed p (Array.sub words !pos k) ~len:k;
            pos := !pos + k
          end)
        sizes;
      if !pos < n then Parser.feed p (Array.sub words !pos (n - !pos)) ~len:(n - !pos)
  in
  let outcome =
    match
      feed_all ();
      Parser.finish p
    with
    | () -> P_ok
    | exception Parser.Corrupt msg -> P_corrupt msg
    | exception Format_.Bad_marker w -> P_bad_marker w
  in
  (outcome, List.rev !evs, Parser.stats p, Parser.errors p, Parser.skipped p)

let gen_fault_case =
  QCheck.Gen.triple gen_mixed_words
    (QCheck.Gen.oneofl Faults.all_kinds)
    (QCheck.Gen.int_bound 100_000)

let print_fault_case (ws, kind, seed) =
  Printf.sprintf "<%d words, %s, seed %d>" (Array.length ws)
    (Faults.kind_name kind) seed

let prop_fault_contract =
  QCheck.Test.make ~count:400
    ~name:"faults: strict/recovery contract on injected faults"
    (QCheck.make ~print:print_fault_case gen_fault_case)
    (fun (words, kind, seed) ->
      let c_out, c_evs, _, _, _ = run_parser_r ~recover:false words in
      if c_out <> P_ok then QCheck.Test.fail_report "generator made an invalid trace";
      match Faults.inject_one (Systrace_util.Rng.create seed) kind words with
      | None -> true
      | Some (faulted, _inj) ->
        let s_out, s_evs, _, _, _ =
          run_parser_r ~recover:false faulted
        in
        let r_out, r_evs, r_stats, r_errs, r_skip =
          run_parser_r ~recover:true faulted
        in
        (* recovery never raises, whatever the fault did *)
        r_out = P_ok
        (* every discarded word is accounted to a source *)
        && List.fold_left (fun a (_, n) -> a + n) 0 r_skip
           = r_stats.Parser.skipped_words
        && (match s_out with
           | P_ok ->
             (* fault landed in dead redundancy (or was a valid
                transform): recovery must agree exactly *)
             r_errs = [] && r_evs = s_evs
           | P_corrupt msg -> (
             match r_errs with
             | e :: _ ->
               (* same first violation, and recovery keeps at least the
                  prefix strict managed before bailing *)
               e.Parser.message = msg
               && List.length r_evs >= List.length s_evs
             | [] -> false)
           | P_bad_marker w -> (
             match r_errs with e :: _ -> e.Parser.got = w | [] -> false))
        (* loss vs the clean run is explained by the skip counters plus
           the words the fault itself added/removed (16 refs per word is
           a >4x margin over the densest table block, 64 covers block
           boundary effects) *)
        && List.length c_evs - List.length r_evs
           <= (16
               * (r_stats.Parser.skipped_words
                 + abs (Array.length words - Array.length faulted)))
              + 64)

let prop_drain_split_transparent =
  QCheck.Test.make ~count:200
    ~name:"faults: drain split is a valid transform (dead redundancy)"
    (QCheck.make
       ~print:(fun (ws, seed) ->
         Printf.sprintf "<%d words, seed %d>" (Array.length ws) seed)
       (QCheck.Gen.pair gen_mixed_words (QCheck.Gen.int_bound 100_000)))
    (fun (words, seed) ->
      let _, c_evs, _, _, _ = run_parser_r ~recover:false words in
      match
        Faults.inject_one (Systrace_util.Rng.create seed) Faults.Drain_split
          words
      with
      | None -> true
      | Some (faulted, _) ->
        let s_out, s_evs, _, _, _ =
          run_parser_r ~recover:false faulted
        in
        s_out = P_ok && s_evs = c_evs)

let prop_recover_never_raises =
  (* The recovery-mode totality contract on raw word salad, not just
     injected faults: Parser.feed ~recover:true must return diagnoses,
     never raise. *)
  QCheck.Test.make ~count:400 ~name:"recovery: word salad never raises"
    QCheck.(
      list_of_size Gen.(int_range 0 200)
        (oneof
           [ map (fun i -> i land 0xFFFFFFFF) (int_bound max_int);
             map (fun i -> 0xBFFF0000 lor (i land 0xFFFF)) (int_bound max_int) ]))
    (fun l ->
      let words = Array.of_list l in
      let out, _, stats, errs, _ = run_parser_r ~recover:true words in
      out = P_ok && List.length errs = stats.Parser.parse_errors)

let gen_recover_equiv_words =
  (* valid, faulted, and salad streams *)
  QCheck.Gen.oneof
    [
      gen_equiv_words;
      QCheck.Gen.map
        (fun (ws, kind, seed) ->
          match Faults.inject_one (Systrace_util.Rng.create seed) kind ws with
          | Some (faulted, _) -> faulted
          | None -> ws)
        gen_fault_case;
    ]

let prop_recovery_chunk_invariant =
  (* The recovery state machine must be invariant under chunk splits:
     feeding a stream in arbitrary pieces yields the same events,
     diagnoses, and skip counters as feeding it whole — on valid,
     faulted, and word-salad streams alike. *)
  QCheck.Test.make ~count:300
    ~name:"recovery parse is chunk-split invariant"
    (QCheck.make
       ~print:(fun (ws, sizes) ->
         Printf.sprintf "<%d words, chunks %s>" (Array.length ws)
           (String.concat "," (List.map string_of_int sizes)))
       (QCheck.Gen.pair gen_recover_equiv_words
          QCheck.Gen.(list_size (int_range 0 8) (int_range 0 40))))
    (fun (words, sizes) ->
      run_parser_r ~recover:true words
      = run_parser_r ~feed_chunks:sizes ~recover:true words)

let prop_faults_deterministic =
  QCheck.Test.make ~count:100 ~name:"faults: equal seeds give equal streams"
    (QCheck.make ~print:print_fault_case gen_fault_case)
    (fun (words, kind, seed) ->
      let one () =
        Faults.inject_one (Systrace_util.Rng.create seed) kind words
      in
      one () = one ())

(* Regression (the drain count-0 bug): an empty drain must reset the
   drain pid, so later diagnoses are not attributed to a closed drain. *)
let test_empty_drain_resets_pid () =
  (* strict: an empty drain followed by kernel activity parses *)
  let stats, _ =
    parse [ Format_.marker_word (Format_.Drain 1); 0; 0x80100040 ]
  in
  check_int "drains" 1 stats.Parser.drains;
  check_int "kernel insts" 2 stats.Parser.kernel_insts;
  (* recovery: the diagnosis for a bad word AFTER the empty drain must
     say "outside any drain" (in_drain = -1), not blame stale pid 1 *)
  let p = Parser.create ~recover:true ~kernel_bbs:(kernel_table ()) () in
  Parser.feed p
    [| Format_.marker_word (Format_.Drain 1); 0; 0x80777700 |]
    ~len:3;
  Parser.finish p;
  match Parser.errors p with
  | [ e ] ->
    check_int "diagnosis at the bad word" 2 e.Parser.at;
    check_int "empty drain closed before the diagnosis" (-1) e.Parser.in_drain
  | es ->
    Alcotest.fail (Printf.sprintf "expected 1 diagnosis, got %d" (List.length es))

(* Recovery resynchronizes and keeps parsing: one smashed word inside the
   first of two kernel blocks costs diagnoses and skips, but the block
   after the next marker parses fully. *)
let test_recover_resync () =
  let words =
    [|
      0x80100000; 0xC0000123; 0xC0000999;          (* block + its 2 data words *)
      0xC0000555;                                  (* bad: looked up as a record *)
      Format_.marker_word (Format_.Pid_switch 1);  (* resync point *)
      0x80100040;                                  (* parses after resync *)
    |]
  in
  let out, evs, stats, errs, _ = run_parser_r ~recover:true words in
  check "no raise" true (out = P_ok);
  check_int "one diagnosis" 1 (List.length errs);
  check "post-resync block reconstructed" true
    (List.exists (function `I, 0x80200100, _, _, _, _ -> true | _ -> false) evs);
  check_int "offending word counted" 1 stats.Parser.skipped_words

(* Structural scan: table-free validation for `systrace check`. *)
let test_scan () =
  (* a clean trace scans clean *)
  Alcotest.(check int) "clean" 0
    (List.length
       (Parser.scan
          [|
            0x80100000; 0xC0000123; 0x80300040;
            Format_.marker_word (Format_.Drain 1); 2; 0x00410000; 0x00500000;
          |]));
  (* truncated drain *)
  (match Parser.scan [| Format_.marker_word (Format_.Drain 3); 5; 0x1000 |] with
  | [ e ] -> check "drain truncation at end" true (e.Parser.in_drain = 3)
  | es -> Alcotest.fail (Printf.sprintf "drain: %d diagnoses" (List.length es)));
  (* exception underflow *)
  check_int "exc underflow" 1
    (List.length (Parser.scan [| Format_.marker_word Format_.Exc_exit |]));
  (* words after END: only the first is reported *)
  check_int "post-END reported once" 1
    (List.length
       (Parser.scan
          [| Format_.marker_word Format_.End; 0x80100000; 0xC0000123 |]));
  (* unknown marker kind *)
  check_int "unknown kind" 1
    (List.length (Parser.scan [| Format_.make_marker 12 0 |]))

let prop_scan_total =
  QCheck.Test.make ~count:400 ~name:"scan: word salad never raises"
    QCheck.(
      list_of_size Gen.(int_range 0 200)
        (oneof
           [ map (fun i -> i land 0xFFFFFFFF) (int_bound max_int);
             map (fun i -> 0xBFFF0000 lor (i land 0xFFFF)) (int_bound max_int) ]))
    (fun l ->
      match Parser.scan (Array.of_list l) with (_ : Parser.error list) -> true)

let prop_scan_clean_on_valid =
  QCheck.Test.make ~count:200 ~name:"scan: valid traces scan clean"
    (QCheck.make
       ~print:(fun ws -> Printf.sprintf "<%d words>" (Array.length ws))
       gen_mixed_words)
    (fun words -> Parser.scan words = [])

let tests =
  tests
  @ [
      Alcotest.test_case "recovery: empty drain resets pid (regression)" `Quick
        test_empty_drain_resets_pid;
      Alcotest.test_case "recovery: resync keeps parsing" `Quick
        test_recover_resync;
      Alcotest.test_case "scan: structural diagnoses" `Quick test_scan;
      QCheck_alcotest.to_alcotest prop_fault_contract;
      QCheck_alcotest.to_alcotest prop_drain_split_transparent;
      QCheck_alcotest.to_alcotest prop_recover_never_raises;
      QCheck_alcotest.to_alcotest prop_recovery_chunk_invariant;
      QCheck_alcotest.to_alcotest prop_faults_deterministic;
      QCheck_alcotest.to_alcotest prop_scan_total;
      QCheck_alcotest.to_alcotest prop_scan_clean_on_valid;
    ]

(* ------------------------------------------------------------------ *)
(* Tracefile hardening: load is total (Bad_file, never End_of_file /
   Invalid_argument / oversized allocation), save refuses out-of-range
   words. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let with_temp f =
  let path = Filename.temp_file "systrace_test" ".strc" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_tracefile_save_range () =
  with_temp (fun path ->
      (* too wide *)
      (match Tracefile.save path [| 0x10; 0x1_0000_0000 |] with
      | () -> Alcotest.fail "33-bit word accepted"
      | exception Invalid_argument msg ->
        check "names the offending index" true (contains msg "word 1"));
      (* negative *)
      match Tracefile.save path [| -1 |] with
      | () -> Alcotest.fail "negative word accepted"
      | exception Invalid_argument msg ->
        check "names index 0" true (contains msg "word 0"))

let expect_bad_file path =
  match Tracefile.load path with
  | (_ : int array) -> Alcotest.fail "malformed file loaded"
  | exception Tracefile.Bad_file _ -> ()

let test_tracefile_load_hardening () =
  with_temp (fun path ->
      (* short garbage: must be Bad_file, not End_of_file *)
      write_file path "ST";
      expect_bad_file path;
      (* magic but truncated header *)
      write_file path "STRC\x01\x00";
      expect_bad_file path;
      (* v1 with an absurd word count: must reject BEFORE allocating n*4
         (a 2^30 count used to allocate 4 GB) *)
      let hdr = Bytes.create 12 in
      Bytes.blit_string "STRC" 0 hdr 0 4;
      Bytes.set_int32_le hdr 4 1l;
      Bytes.set_int32_le hdr 8 0x40000000l;
      write_file path (Bytes.to_string hdr);
      expect_bad_file path;
      (* v1 with a count larger than the file: reject before allocating *)
      Bytes.set_int32_le hdr 8 1000l;
      write_file path (Bytes.to_string hdr ^ "xxxx");
      expect_bad_file path;
      (* v2 with a payload length beyond the file *)
      let hdr2 = Bytes.create 16 in
      Bytes.blit_string "STRC" 0 hdr2 0 4;
      Bytes.set_int32_le hdr2 4 2l;
      Bytes.set_int32_le hdr2 8 4l;
      Bytes.set_int32_le hdr2 12 100000l;
      write_file path (Bytes.to_string hdr2 ^ "zz");
      expect_bad_file path;
      (* truncating a real file anywhere must give Bad_file *)
      Tracefile.save path (Array.init 100 (fun i -> i * 3));
      let full = read_file path in
      List.iter
        (fun k ->
          write_file path (String.sub full 0 k);
          expect_bad_file path)
        [ 0; 3; 7; 11; 12; 50; String.length full - 1 ])

let prop_tracefile_load_total =
  (* The fuzz contract of the acceptance criteria: load on ANY bytes —
     raw garbage or a mangled real file, both formats — either succeeds
     or raises Bad_file.  Anything else (End_of_file, Invalid_argument,
     Out_of_memory) fails the property by escaping it. *)
  QCheck.Test.make ~count:200 ~name:"tracefile: load is total on any bytes"
    QCheck.(
      pair (string_of_size Gen.(int_range 0 256)) (int_bound 1_000_000))
    (fun (garbage, seed) ->
      let rng = Systrace_util.Rng.create seed in
      let content =
        if seed mod 3 = 0 then garbage
        else
          with_temp (fun path ->
              let words = Array.init 60 (fun i -> (i * 2654435761) land 0xFFFFFFFF) in
              Tracefile.save ~compress:(seed mod 2 = 0) path words;
              Faults.mangle rng (read_file path))
      in
      with_temp (fun path ->
          write_file path content;
          match Tracefile.load path with
          | (_ : int array) -> true
          | exception Tracefile.Bad_file _ -> true))

let test_lzss_limit () =
  (* a highly expansive stream must hit the output bound as Corrupt, not
     as a giant allocation *)
  let s = String.make 100_000 'x' in
  let packed = Compress.lzss_pack s in
  (match Compress.lzss_unpack ~limit:1000 packed with
  | (_ : string) -> Alcotest.fail "limit not enforced"
  | exception Compress.Corrupt _ -> ());
  Alcotest.(check string) "full unpack intact" s (Compress.lzss_unpack packed)

let tests =
  tests
  @ [
      Alcotest.test_case "tracefile: save rejects out-of-range words" `Quick
        test_tracefile_save_range;
      Alcotest.test_case "tracefile: load hardening" `Quick
        test_tracefile_load_hardening;
      QCheck_alcotest.to_alcotest prop_tracefile_load_total;
      Alcotest.test_case "compress: lzss output limit" `Quick test_lzss_limit;
    ]

(* ------------------------------------------------------------------ *)
(* Streaming pipeline: the chunked codecs, sinks, writer/reader and
   scanner must be observably identical to their whole-array batch
   counterparts on ARBITRARY chunkings — the invariant that lets the
   trace-analysis side run online over ANALYZE-phase chunks (paper 4.3)
   without a whole trace ever existing in one place. *)

(* Cut [0, total) into (pos, len) slices whose lengths cycle through
   [sizes] (non-positive entries are skipped; all-non-positive falls back
   to one whole slice). *)
let cuts_of sizes total =
  if List.for_all (fun s -> s <= 0) sizes then [ (0, total) ]
  else begin
    let rec go pos ss acc =
      if pos >= total then List.rev acc
      else
        let s, rest = match ss with s :: r -> (s, r) | [] -> assert false in
        let rest = if rest = [] then sizes else rest in
        let len = min (max s 0) (total - pos) in
        if len = 0 then go pos rest acc
        else go (pos + len) rest ((pos, len) :: acc)
    in
    go 0 sizes []
  end

let gen_sizes = QCheck.Gen.(list_size (int_range 1 6) (int_range 0 13))

let gen_words_arr =
  QCheck.Gen.(
    map Array.of_list
      (list_size (int_range 0 400)
         (oneof
            [
              map (fun i -> 0x40000000 + (4 * i)) (int_bound 4096);
              map (fun i -> i land 0xFFFFFFFF) (int_bound max_int);
            ])))

let prop_encoder_chunked =
  QCheck.Test.make ~count:300
    ~name:"compress: chunked encode is byte-identical to batch encode"
    (QCheck.make
       ~print:(fun (ws, _) -> Printf.sprintf "<%d words>" (Array.length ws))
       (QCheck.Gen.pair gen_words_arr gen_sizes))
    (fun (words, sizes) ->
      let e = Compress.encoder () in
      let buf = Buffer.create 64 in
      List.iter
        (fun (pos, len) ->
          Compress.encode_chunk e buf (Array.sub words pos len) ~len)
        (cuts_of sizes (Array.length words));
      Compress.encode_finish e buf;
      Buffer.contents buf = Compress.encode words)

let prop_decoder_chunked =
  QCheck.Test.make ~count:300
    ~name:"compress: chunked decode == batch decode on any byte split"
    (QCheck.make
       ~print:(fun (ws, _) -> Printf.sprintf "<%d words>" (Array.length ws))
       (QCheck.Gen.pair gen_words_arr gen_sizes))
    (fun (words, sizes) ->
      let s = Compress.encode words in
      let out = ref [] in
      let d =
        Compress.decoder ~expect:(Array.length words)
          ~emit:(fun w -> out := w :: !out)
          ()
      in
      List.iter
        (fun (pos, len) -> Compress.decode_bytes d s ~pos ~len)
        (cuts_of sizes (String.length s));
      Compress.decode_finish d;
      Array.of_list (List.rev !out) = words)

let prop_lz_decoder_chunked =
  QCheck.Test.make ~count:300
    ~name:"compress: chunked lzss decode == batch unpack on any byte split"
    (QCheck.make
       (QCheck.Gen.pair
          QCheck.Gen.(
            oneof
              [
                string_size (int_range 0 2000);
                map
                  (fun (pat, reps) ->
                    String.concat "" (List.init (reps + 1) (fun _ -> pat)))
                  (pair (string_size (int_range 1 12)) (int_bound 200));
              ])
          gen_sizes))
    (fun (s, sizes) ->
      let packed = Compress.lzss_pack s in
      let buf = Buffer.create (String.length s) in
      let z = Compress.lz_decoder ~emit:(Buffer.add_char buf) () in
      List.iter
        (fun (pos, len) -> Compress.lz_decode_bytes z packed ~pos ~len)
        (cuts_of sizes (String.length packed));
      Compress.lz_decode_finish z;
      Buffer.contents buf = s)

(* The trace-file writer concatenates independently packed LZSS blocks
   into one byte stream, relying on each block's final group being padded
   to 8 items.  The streaming decoder must see the concatenation as one
   stream — across any chunk split, including splits inside the padding
   items at block boundaries. *)
let prop_lz_block_concat =
  QCheck.Test.make ~count:200
    ~name:"compress: concatenated lzss blocks decode as one stream"
    (QCheck.make
       (QCheck.Gen.pair
          QCheck.Gen.(
            list_size (int_range 0 5)
              (oneof
                 [
                   string_size (int_range 0 400);
                   map
                     (fun (pat, reps) ->
                       String.concat ""
                         (List.init (reps + 1) (fun _ -> pat)))
                     (pair (string_size (int_range 1 8)) (int_bound 60));
                 ]))
          gen_sizes))
    (fun (ss, sizes) ->
      let packed = String.concat "" (List.map Compress.lzss_pack ss) in
      let buf = Buffer.create 1024 in
      let z = Compress.lz_decoder ~emit:(Buffer.add_char buf) () in
      List.iter
        (fun (pos, len) -> Compress.lz_decode_bytes z packed ~pos ~len)
        (cuts_of sizes (String.length packed));
      Compress.lz_decode_finish z;
      Buffer.contents buf = String.concat "" ss)

(* Parser.feed across arbitrary chunk boundaries: the persistent per-source
   state (split drains, open EXC brackets, block records awaiting their
   data words, recovery resync) must make chunking unobservable — on valid
   traces, faulted traces and word salad, in strict and recovery mode. *)
let run_parser_r_chunks ~recover cuts words =
  let p =
    Parser.create ~recover ~kernel_bbs:(synth_kernel_table ()) ()
  in
  Parser.register_pid p ~pid:1 (user_table ());
  let evs = ref [] in
  Parser.set_handlers p
    {
      Parser.on_inst =
        (fun addr pid kernel -> evs := (`I, addr, pid, kernel, false, 0) :: !evs);
      on_data =
        (fun addr pid kernel is_load bytes ->
          evs := (`D, addr, pid, kernel, is_load, bytes) :: !evs);
    };
  let outcome =
    match
      List.iter
        (fun (pos, len) -> Parser.feed p (Array.sub words pos len) ~len)
        cuts;
      Parser.finish p
    with
    | () -> P_ok
    | exception Parser.Corrupt msg -> P_corrupt msg
    | exception Format_.Bad_marker w -> P_bad_marker w
  in
  (outcome, List.rev !evs, Parser.stats p, Parser.errors p, Parser.skipped p)

let prop_feed_chunk_invariant =
  QCheck.Test.make ~count:300
    ~name:"parser: chunked feed == single feed (strict and recovery)"
    (QCheck.make
       ~print:(fun (ws, _, r) ->
         Printf.sprintf "<%d words, recover=%b>" (Array.length ws) r)
       (QCheck.Gen.triple gen_recover_equiv_words gen_sizes QCheck.Gen.bool))
    (fun (words, sizes, recover) ->
      run_parser_r_chunks ~recover (cuts_of sizes (Array.length words)) words
      = run_parser_r ~recover words)

(* Deterministic regression for the nastiest boundary placements: a DRAIN
   marker, its count word and its payload each in a different feed; EXC
   brackets and the bracketed block split from each other; a block record
   split from its data words. *)
let test_chunk_boundary_regression () =
  let words =
    [|
      0x80100000;                                 (* kernel bb, 2 data words *)
      0xC0000123;
      Format_.marker_word (Format_.Exc_enter 0);  (* nested mid-block *)
      0x80100040;
      Format_.marker_word Format_.Exc_exit;
      0x80300040;                                 (* first block completes *)
      Format_.marker_word (Format_.Pid_switch 1);
      Format_.marker_word (Format_.Drain 1);
      3;
      0x00410000;                                 (* user bb *)
      0x00500000;
      0x00500004;
      Format_.marker_word (Format_.Drain 1);      (* empty drain *)
      0;
    |]
  in
  let whole = run_parser_r_chunks ~recover:false [ (0, 14) ] words in
  List.iter
    (fun cuts ->
      Alcotest.(check bool)
        (Printf.sprintf "split at %s"
           (String.concat ","
              (List.map (fun (p, l) -> Printf.sprintf "%d+%d" p l) cuts)))
        true
        (run_parser_r_chunks ~recover:false cuts words = whole))
    [
      List.init 14 (fun i -> (i, 1));             (* every word its own feed *)
      [ (0, 8); (8, 1); (9, 3); (12, 2) ];        (* count split from payload *)
      [ (0, 3); (3, 2); (5, 9) ];                 (* EXC brackets split *)
      [ (0, 1); (1, 13) ];                        (* record split from data *)
      [ (0, 9); (9, 1); (10, 1); (11, 1); (12, 2) ]; (* payload word-by-word *)
    ]

let prop_scanner_chunked =
  QCheck.Test.make ~count:300
    ~name:"scanner: chunked scan_feed == whole-array scan"
    (QCheck.make
       ~print:(fun (ws, _) -> Printf.sprintf "<%d words>" (Array.length ws))
       (QCheck.Gen.pair
          (QCheck.Gen.oneof
             [
               gen_mixed_words;
               QCheck.Gen.(
                 map Array.of_list
                   (list_size (int_range 0 200)
                      (oneof
                         [
                           map (fun i -> i land 0xFFFFFFFF) (int_bound max_int);
                           map
                             (fun i -> 0xBFFF0000 lor (i land 0xFFFF))
                             (int_bound max_int);
                         ])));
             ])
          gen_sizes))
    (fun (words, sizes) ->
      let c = Parser.scanner () in
      List.iter
        (fun (pos, len) -> Parser.scan_feed c (Array.sub words pos len) ~len)
        (cuts_of sizes (Array.length words));
      Parser.scan_finish c = Parser.scan words)

let tests =
  tests
  @ [
      QCheck_alcotest.to_alcotest prop_encoder_chunked;
      QCheck_alcotest.to_alcotest prop_decoder_chunked;
      QCheck_alcotest.to_alcotest prop_lz_decoder_chunked;
      QCheck_alcotest.to_alcotest prop_lz_block_concat;
      QCheck_alcotest.to_alcotest prop_feed_chunk_invariant;
      Alcotest.test_case "parser: chunk-boundary regression" `Quick
        test_chunk_boundary_regression;
      QCheck_alcotest.to_alcotest prop_scanner_chunked;
    ]

(* ------------------------------------------------------------------ *)
(* Sinks: fan-out order, finish propagation, endpoints.                *)

let test_sink_tee_order () =
  let a1, get1 = Sink.to_array () in
  let a2, get2 = Sink.to_array () in
  let cnt, words_seen = Sink.counting () in
  let pk, peak_words = Sink.peak () in
  let fin = ref 0 in
  let flag = Sink.make ~finish:(fun () -> incr fin) (fun _ ~len:_ -> ()) in
  let sink = Sink.tee [ a1; cnt; a2; pk; flag ] in
  sink.Sink.on_words [| 1; 2; 3 |] ~len:3;
  sink.Sink.on_words [| 9; 9; 9; 9 |] ~len:0;       (* empty chunks are legal *)
  sink.Sink.on_words [| 4; 5; 6; 7; 8 |] ~len:4;    (* len < array length *)
  sink.Sink.finish ();
  let expect = [| 1; 2; 3; 4; 5; 6; 7 |] in
  Alcotest.(check (array int)) "branch 1 word order" expect (get1 ());
  Alcotest.(check (array int)) "branch 2 word order" expect (get2 ());
  check_int "count" 7 (words_seen ());
  check_int "peak chunk" 4 (peak_words ());
  check_int "finish reached every branch once" 1 !fin

let test_sink_tee_finish_raises () =
  (* finish must reach every branch even when an earlier one raises, and
     the first exception must surface afterwards *)
  let order = ref [] in
  let branch name exn =
    Sink.make
      ~finish:(fun () ->
        order := name :: !order;
        match exn with Some e -> raise e | None -> ())
      (fun _ ~len:_ -> ())
  in
  let sink =
    Sink.tee
      [
        branch "a" None;
        branch "b" (Some (Failure "first"));
        branch "c" (Some (Failure "second"));
        branch "d" None;
      ]
  in
  (match sink.Sink.finish () with
  | () -> Alcotest.fail "expected the first branch failure to re-raise"
  | exception Failure msg -> Alcotest.(check string) "first exception wins" "first" msg);
  Alcotest.(check (list string))
    "every finish ran, in order" [ "a"; "b"; "c"; "d" ] (List.rev !order)

let test_sink_finish_propagation_under_parse_failure () =
  (* A strict parser branch whose finish raises (incomplete block at end
     of trace) must not leave a file branch unclosed: the defensive
     contract for one-pass parse+store pipelines. *)
  with_temp (fun path ->
      let p = Parser.create ~kernel_bbs:(synth_kernel_table ()) () in
      let words = [| 0x80100000; 0xC0000123 |] in
      let sink = Sink.tee [ Sink.to_parser p; Sink.to_file path ] in
      sink.Sink.on_words words ~len:2;
      (match sink.Sink.finish () with
      | () -> Alcotest.fail "expected Corrupt from Parser.finish"
      | exception Parser.Corrupt _ -> ());
      Alcotest.(check (array int))
        "file branch closed despite parser failure" words (Tracefile.load path))

(* Under recovery-mode faults the tee still delivers the identical word
   sequence to every branch, and the recovery parse behind [to_parser]
   matches a direct recovery parse of the same faulted stream. *)
let prop_sink_tee_recovery_faults =
  QCheck.Test.make ~count:200
    ~name:"sink: tee preserves order and finish under recovery-mode faults"
    (QCheck.make ~print:print_fault_case gen_fault_case)
    (fun (words, kind, seed) ->
      let faulted =
        match Faults.inject_one (Systrace_util.Rng.create seed) kind words with
        | Some (f, _) -> f
        | None -> words
      in
      let p =
        Parser.create ~recover:true ~kernel_bbs:(synth_kernel_table ()) ()
      in
      Parser.register_pid p ~pid:1 (user_table ());
      let arr, get = Sink.to_array () in
      let cnt, words_seen = Sink.counting () in
      let sink = Sink.tee [ Sink.to_parser p; arr; cnt ] in
      (* feed in a few chunks to cross fault positions with boundaries *)
      List.iter
        (fun (pos, len) -> sink.Sink.on_words (Array.sub faulted pos len) ~len)
        (cuts_of [ 7; 3; 11 ] (Array.length faulted));
      sink.Sink.finish ();
      let direct_out, _, direct_stats, direct_errs, _ =
        run_parser_r ~recover:true faulted
      in
      direct_out = P_ok
      && get () = faulted
      && words_seen () = Array.length faulted
      && Parser.stats p = direct_stats
      && Parser.errors p = direct_errs)

(* [batching] must forward the identical word sequence whatever the
   incoming chunking and batch size — including chunks bigger than the
   batch (passed through) and a producer that reuses one scratch array
   across calls (the Builder contract: chunks are borrowed). *)
let prop_sink_batching_equivalent =
  QCheck.Test.make ~count:300
    ~name:"sink: batching forwards the identical word sequence"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 12) (int_range 0 100))
        (int_range 1 64))
    (fun (lens, batch) ->
      let direct, dget = Sink.to_array () in
      let inner, bget = Sink.to_array () in
      let cnt, words_seen = Sink.counting () in
      let batched = Sink.batching ~words:batch (Sink.tee [ inner; cnt ]) in
      let scratch = Array.make 100 0 in
      let ctr = ref 0 in
      List.iter
        (fun len ->
          for i = 0 to len - 1 do
            incr ctr;
            scratch.(i) <- !ctr
          done;
          direct.Sink.on_words scratch ~len;
          batched.Sink.on_words scratch ~len)
        lens;
      direct.Sink.finish ();
      batched.Sink.finish ();
      dget () = bget () && words_seen () = !ctr)

let tests =
  tests
  @ [
      Alcotest.test_case "sink: tee order and counters" `Quick
        test_sink_tee_order;
      QCheck_alcotest.to_alcotest prop_sink_batching_equivalent;
      Alcotest.test_case "sink: tee finish runs every branch" `Quick
        test_sink_tee_finish_raises;
      Alcotest.test_case "sink: file branch closed when parser fails" `Quick
        test_sink_finish_propagation_under_parse_failure;
      QCheck_alcotest.to_alcotest prop_sink_tee_recovery_faults;
    ]

(* ------------------------------------------------------------------ *)
(* Streaming trace files: incremental writer + chunked reader.         *)

let prop_writer_fold_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"tracefile: chunked write + fold_words == save + load (both formats)"
    (QCheck.make
       ~print:(fun (ws, _, _, z) ->
         Printf.sprintf "<%d words, compress=%b>" (Array.length ws) z)
       (QCheck.Gen.quad gen_words_arr gen_sizes
          QCheck.Gen.(int_range 1 97)
          QCheck.Gen.bool))
    (fun (words, sizes, chunk_words, compress) ->
      with_temp (fun path ->
          let w = Tracefile.open_writer ~compress path in
          List.iter
            (fun (pos, len) -> Tracefile.write w (Array.sub words pos len) ~len)
            (cuts_of sizes (Array.length words));
          let n = Tracefile.close_writer w in
          let folded = ref [] in
          let total =
            Tracefile.fold_words ~chunk_words path ~init:0
              ~f:(fun acc chunk ~len ->
                folded := Array.sub chunk 0 len :: !folded;
                acc + len)
          in
          n = Array.length words
          && total = Array.length words
          && Array.concat (List.rev !folded) = words
          && Tracefile.load path = words))

let test_writer_byte_identical_to_save () =
  (* chunked writes produce byte-for-byte what the batch writer produces:
     always for v1 and v3 (v3 block boundaries depend only on the word
     stream, never on call chunking) *)
  let words =
    Array.init 5000 (fun i ->
        if i mod 7 = 0 then 0xBFFF0000 + (8 * (i mod 6))
        else 0x40001000 + (4 * (i mod 257)))
  in
  List.iter
    (fun compress ->
      with_temp (fun p1 ->
          with_temp (fun p2 ->
              Tracefile.save ~compress p1 words;
              let w = Tracefile.open_writer ~compress p2 in
              List.iter
                (fun (pos, len) ->
                  Tracefile.write w (Array.sub words pos len) ~len)
                (cuts_of [ 33; 1; 500 ] (Array.length words));
              ignore (Tracefile.close_writer w);
              Alcotest.(check string)
                (if compress then "v3" else "v1")
                (read_file p1) (read_file p2))))
    [ false; true ]

let test_writer_multiblock_v2 () =
  (* a delta stream larger than the ~1MB block size forces the writer
     through several LZSS blocks; the concatenation must read back with
     the ordinary loader AND the chunked reader *)
  let n = 300_000 in
  (* LCG, not an affine ramp: consecutive deltas must vary, or the whole
     stream collapses into one run token *)
  let x = ref 1 in
  let words =
    Array.init n (fun _ ->
        x := ((!x * 1103515245) + 12345) land 0xFFFFFFFF;
        !x)
  in
  Alcotest.(check bool)
    "delta stream spans several blocks" true
    (String.length (Compress.encode words) > 1 lsl 20);
  with_temp (fun path ->
      let w = Tracefile.open_writer ~compress:true path in
      List.iter
        (fun (pos, len) -> Tracefile.write w (Array.sub words pos len) ~len)
        (cuts_of [ 65536 ] n);
      check_int "count" n (Tracefile.close_writer w);
      Alcotest.(check bool) "load" true (Tracefile.load path = words);
      let sum =
        Tracefile.fold_words path ~init:0 ~f:(fun acc _ ~len -> acc + len)
      in
      check_int "fold word count" n sum)

let test_writer_rejects_bad_words () =
  with_temp (fun path ->
      let w = Tracefile.open_writer path in
      Tracefile.write w [| 1; 2; 3 |] ~len:3;
      (match Tracefile.write w [| 0x1_0000_0000 |] ~len:1 with
      | () -> Alcotest.fail "33-bit word accepted"
      | exception Invalid_argument msg ->
        check "global stream index in message" true (contains msg "word 3"));
      ignore (Tracefile.close_writer w))

let test_fold_words_callback_exn () =
  (* the reader's totality contract wraps ITS failures in Bad_file but
     must let the callback's own exceptions through untouched *)
  with_temp (fun path ->
      Tracefile.save path (Array.init 10 (fun i -> i));
      match Tracefile.fold_words path ~init:() ~f:(fun () _ ~len:_ -> raise Exit) with
      | () -> Alcotest.fail "callback exception swallowed"
      | exception Exit -> ())

let prop_fold_words_total =
  (* fold_words matches load on ANY bytes: same words when load succeeds,
     Bad_file when load raises Bad_file — and never any other escape. *)
  QCheck.Test.make ~count:200 ~name:"tracefile: fold_words total, == load"
    QCheck.(
      pair (string_of_size Gen.(int_range 0 256)) (int_bound 1_000_000))
    (fun (garbage, seed) ->
      let rng = Systrace_util.Rng.create seed in
      let content =
        if seed mod 3 = 0 then garbage
        else
          with_temp (fun path ->
              let words =
                Array.init 60 (fun i -> (i * 2654435761) land 0xFFFFFFFF)
              in
              Tracefile.save ~compress:(seed mod 2 = 0) path words;
              Faults.mangle rng (read_file path))
      in
      with_temp (fun path ->
          write_file path content;
          let via_load =
            match Tracefile.load path with
            | ws -> Ok ws
            | exception Tracefile.Bad_file _ -> Error ()
          in
          let via_fold =
            match
              Tracefile.fold_words ~chunk_words:17 path ~init:[]
                ~f:(fun acc chunk ~len -> Array.sub chunk 0 len :: acc)
            with
            | chunks -> Ok (Array.concat (List.rev chunks))
            | exception Tracefile.Bad_file _ -> Error ()
          in
          via_load = via_fold))

let tests =
  tests
  @ [
      QCheck_alcotest.to_alcotest prop_writer_fold_roundtrip;
      Alcotest.test_case "tracefile: writer byte-identical to save" `Quick
        test_writer_byte_identical_to_save;
      Alcotest.test_case "tracefile: multi-block v2 writer" `Quick
        test_writer_multiblock_v2;
      Alcotest.test_case "tracefile: writer rejects bad words" `Quick
        test_writer_rejects_bad_words;
      Alcotest.test_case "tracefile: fold_words lets callback exceptions \
                          through" `Quick test_fold_words_callback_exn;
      QCheck_alcotest.to_alcotest prop_fold_words_total;
    ]

(* ------------------------------------------------------------------ *)
(* Version-3 trace store: semantic codec, index trailer, seek windows,
   parallel decode, slice — and the decode-path fuzz sweep against
   trailer-targeted faults. *)

(* Trace-like word mix covering every semantic class (markers, drain
   protocol left out on purpose — classification is encoder-only) plus
   raw salad so codec selection is exercised. *)
let gen_v3_words =
  QCheck.Gen.(
    map Array.of_list
      (list_size (int_range 0 500)
         (oneof
            [
              map (fun i -> 0x00400000 + (4 * i)) (int_bound 8192);
              map (fun i -> 0x10000000 + (4 * i)) (int_bound 65536);
              map (fun i -> 0x80100000 + (4 * i)) (int_bound 4096);
              map (fun i -> 0xBFFF0000 lor (1 lsl 12) lor (i land 0xFFF))
                (int_bound 0xFFF);
              map (fun i -> i land 0xFFFFFFFF) (int_bound max_int);
            ])))

let prop_semantic_roundtrip =
  QCheck.Test.make ~count:300
    ~name:"compress: semantic codec roundtrip on random slices"
    (QCheck.make
       ~print:(fun (ws, _, _) -> Printf.sprintf "<%d words>" (Array.length ws))
       QCheck.Gen.(triple gen_v3_words (int_bound 100) (int_bound 100)))
    (fun (words, a, b) ->
      let n = Array.length words in
      let pos = if n = 0 then 0 else a * n / 101 in
      let len = min (n - pos) (b * n / 101) in
      Compress.decode_semantic ~expect:len
        (Compress.encode_semantic words ~pos ~len)
      = Array.sub words pos len)

let prop_v3_version_roundtrip =
  (* both compressed formats, chunk-split writer == save, load intact *)
  QCheck.Test.make ~count:200
    ~name:"tracefile: v2/v3 chunked write + load roundtrip"
    (QCheck.make
       ~print:(fun (ws, _, v) ->
         Printf.sprintf "<%d words, v%d>" (Array.length ws) v)
       QCheck.Gen.(triple gen_v3_words gen_sizes (int_range 2 3)))
    (fun (words, sizes, version) ->
      with_temp (fun p1 ->
          with_temp (fun p2 ->
              Tracefile.save ~compress:true ~version p1 words;
              let w = Tracefile.open_writer ~compress:true ~version p2 in
              List.iter
                (fun (pos, len) ->
                  Tracefile.write w (Array.sub words pos len) ~len)
                (cuts_of sizes (Array.length words));
              ignore (Tracefile.close_writer w);
              Tracefile.load p1 = words
              && (version = 2 || read_file p1 = read_file p2)
              && Tracefile.load p2 = words)))

(* A multi-block v3 trace (several 64K-word blocks) shared by the tests
   below; LCG-scrambled trace-like words so blocks are non-degenerate. *)
let multiblock_words =
  lazy
    (let x = ref 7 in
     Array.init 180_000 (fun i ->
         x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF;
         match i mod 13 with
         | 0 -> 0xBFFF0000 lor (1 lsl 12) lor (i land 0xFFF)
         | 1 | 2 | 3 | 4 -> 0x00400000 + (4 * (!x mod 8192))
         | 5 | 6 -> 0x10000000 + (4 * (!x mod 65536))
         | 7 | 8 | 9 -> 0x80100000 + (4 * (!x mod 4096))
         | _ -> !x))

let multiblock_file =
  lazy
    (let path = Filename.temp_file "systrace_v3multi" ".strc" in
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     Tracefile.save ~compress:true path (Lazy.force multiblock_words);
     path)

let test_v3_multiblock () =
  let words = Lazy.force multiblock_words in
  let path = Lazy.force multiblock_file in
  check "spans several blocks" true
    (Array.length words > 2 * Tracefile.v3_block_words);
  check "load intact" true (Tracefile.load path = words);
  (* byte identity of save and an arbitrarily chunked writer across
     block boundaries *)
  with_temp (fun p2 ->
      let w = Tracefile.open_writer ~compress:true p2 in
      List.iter
        (fun (pos, len) -> Tracefile.write w (Array.sub words pos len) ~len)
        (cuts_of [ 40_000; 1; 65536; 13 ] (Array.length words));
      ignore (Tracefile.close_writer w);
      Alcotest.(check string)
        "multi-block writer == save" (read_file path) (read_file p2));
  (* a window crossing a block boundary seeks to the covering block *)
  let from = Tracefile.v3_block_words - 7
  and until = Tracefile.v3_block_words + 9 in
  let got = ref [] in
  ignore
    (Tracefile.fold_words ~from ~until path ~init:()
       ~f:(fun () c ~len -> got := Array.sub c 0 len :: !got));
  check "boundary window == array window" true
    (Array.concat (List.rev !got) = Array.sub words from (until - from))

let prop_fold_window =
  (* fold_words ?from ?until == the materialized window, all formats *)
  QCheck.Test.make ~count:150
    ~name:"tracefile: fold_words window == array window (v1/v2/v3)"
    (QCheck.make
       ~print:(fun (ws, a, b, v) ->
         Printf.sprintf "<%d words, [%d,%d), v%d>" (Array.length ws) a b v)
       QCheck.Gen.(
         quad gen_v3_words (int_bound 600) (int_bound 600) (int_range 1 3)))
    (fun (words, a, b, version) ->
      let from = min a b and until = max a b in
      with_temp (fun path ->
          (if version = 1 then Tracefile.save path words
           else Tracefile.save ~compress:true ~version path words);
          let got = ref [] in
          ignore
            (Tracefile.fold_words ~chunk_words:23 ~from ~until path ~init:()
               ~f:(fun () c ~len -> got := Array.sub c 0 len :: !got));
          let n = Array.length words in
          let from' = min from n and until' = min until n in
          Array.concat (List.rev !got)
          = Array.sub words from' (max 0 (until' - from'))))

let prop_slice_matches_window =
  QCheck.Test.make ~count:100
    ~name:"tracefile: slice(from,until) == materialized array slice"
    (QCheck.make
       ~print:(fun (ws, a, b, v) ->
         Printf.sprintf "<%d words, [%d,%d), v%d>" (Array.length ws) a b v)
       QCheck.Gen.(
         quad gen_v3_words (int_bound 600) (int_bound 600) (int_range 1 3)))
    (fun (words, a, b, version) ->
      let from = min a b and until = max a b in
      with_temp (fun src ->
          with_temp (fun dst ->
              (if version = 1 then Tracefile.save src words
               else Tracefile.save ~compress:true ~version src words);
              let wrote = Tracefile.slice ~from ~until src dst in
              let n = Array.length words in
              let from' = min from n and until' = min until n in
              wrote = max 0 (until' - from')
              && Tracefile.load dst
                 = Array.sub words from' (max 0 (until' - from')))))

let prop_parallel_fold_identity =
  QCheck.Test.make ~count:100
    ~name:"tracefile: fold_blocks_parallel == fold_words (v1/v2/v3)"
    (QCheck.make
       ~print:(fun (ws, j, v) ->
         Printf.sprintf "<%d words, jobs=%d, v%d>" (Array.length ws) j v)
       QCheck.Gen.(triple gen_v3_words (int_range 1 4) (int_range 1 3)))
    (fun (words, jobs, version) ->
      with_temp (fun path ->
          (if version = 1 then Tracefile.save path words
           else Tracefile.save ~compress:true ~version path words);
          let seq = ref [] in
          ignore
            (Tracefile.fold_words path ~init:()
               ~f:(fun () c ~len -> seq := Array.sub c 0 len :: !seq));
          let par = ref [] in
          ignore
            (Tracefile.fold_blocks_parallel ~jobs path ~init:()
               ~f:(fun () c ~len -> par := Array.sub c 0 len :: !par));
          Array.concat (List.rev !par) = Array.concat (List.rev !seq)))

let test_parallel_fold_multiblock () =
  (* several blocks decoded on the pool, folded in order, == sequential *)
  let words = Lazy.force multiblock_words in
  let path = Lazy.force multiblock_file in
  let par = ref [] in
  ignore
    (Tracefile.fold_blocks_parallel ~jobs:3 path ~init:()
       ~f:(fun () c ~len -> par := Array.sub c 0 len :: !par));
  check "parallel multi-block == words" true
    (Array.concat (List.rev !par) = words);
  (* callback exceptions escape as themselves *)
  match
    Tracefile.fold_blocks_parallel ~jobs:2 path ~init:()
      ~f:(fun () _ ~len:_ -> raise Exit)
  with
  | () -> Alcotest.fail "callback exception swallowed"
  | exception Exit -> ()

let test_empty_writer_roundtrip () =
  (* a writer closed after zero words must produce a valid empty file in
     every format: load = [||], fold delivers no chunks, the structural
     scanner sees a clean empty trace *)
  List.iter
    (fun version ->
      with_temp (fun path ->
          let w =
            if version = 1 then Tracefile.open_writer path
            else Tracefile.open_writer ~compress:true ~version path
          in
          check_int "zero words" 0 (Tracefile.close_writer w);
          check "empty load" true (Tracefile.load path = [||]);
          ignore
            (Tracefile.fold_words path ~init:()
               ~f:(fun () _ ~len:_ -> Alcotest.fail "chunk on empty trace"));
          ignore
            (Tracefile.fold_blocks_parallel ~jobs:2 path ~init:()
               ~f:(fun () _ ~len:_ -> Alcotest.fail "chunk on empty trace"));
          let c = Parser.scanner () in
          check "empty trace scans clean" true (Parser.scan_finish c = [])))
    [ 1; 2; 3 ]

let test_lzss_limit_pad_boundary () =
  (* dist-0 group-padding items must be skipped BEFORE the output-limit
     check: a complete stream unpacked with limit = exact plaintext size
     must succeed even though pad items follow the last real byte, and
     limit = size - 1 must still be Corrupt. *)
  let cases =
    [
      "abc" (* 3 literal items + 5 pads in the final group *);
      String.concat "" (List.init 50 (fun i -> Printf.sprintf "%d," i));
      String.make 1000 'r' (* long match run, partial tail group *);
    ]
  in
  List.iter
    (fun s ->
      let packed = Compress.lzss_pack s in
      Alcotest.(check string)
        "exact-fit limit succeeds" s
        (Compress.lzss_unpack ~limit:(String.length s) packed);
      match Compress.lzss_unpack ~limit:(String.length s - 1) packed with
      | (_ : string) -> Alcotest.fail "limit - 1 not enforced"
      | exception Compress.Corrupt _ -> ())
    cases;
  (* concatenated complete streams carry pads mid-stream (v2 writer block
     flushes); the exact-fit limit must hold across the seam too *)
  let s = "hello, trace words, hello, trace words" in
  let packed2 = Compress.lzss_pack s ^ Compress.lzss_pack s in
  Alcotest.(check string)
    "exact-fit across block seam" (s ^ s)
    (Compress.lzss_unpack ~limit:(2 * String.length s) packed2)

(* --- decode-path fuzz sweep ---------------------------------------- *)

let prop_v3_fuzz_total =
  (* the PR-2 totality bar extended to v3: load and fold_words on any
     trailer-mangled file either succeed or raise Bad_file, and always
     agree with each other *)
  QCheck.Test.make ~count:300
    ~name:"tracefile: v3 trailer fuzz — load/fold total and equal"
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let rng = Systrace_util.Rng.create seed in
      let base =
        with_temp (fun path ->
            let words =
              Array.init
                (200 + Systrace_util.Rng.int rng 400)
                (fun i -> (i * 2654435761) land 0xFFFFFFFF)
            in
            Tracefile.save ~compress:true path words;
            read_file path)
      in
      let mangled, _what = Faults.mangle_v3 rng base in
      with_temp (fun path ->
          write_file path mangled;
          let via_load =
            match Tracefile.load path with
            | ws -> Ok ws
            | exception Tracefile.Bad_file _ -> Error ()
          in
          let via_fold =
            match
              Tracefile.fold_words ~chunk_words:31 path ~init:[]
                ~f:(fun acc c ~len -> Array.sub c 0 len :: acc)
            with
            | chunks -> Ok (Array.concat (List.rev chunks))
            | exception Tracefile.Bad_file _ -> Error ()
          in
          let via_par =
            match
              Tracefile.fold_blocks_parallel ~jobs:2 path ~init:[]
                ~f:(fun acc c ~len -> Array.sub c 0 len :: acc)
            with
            | chunks -> Ok (Array.concat (List.rev chunks))
            | exception Tracefile.Bad_file _ -> Error ()
          in
          via_load = via_fold && via_load = via_par))

let test_v3_multiblock_trailer_fuzz () =
  (* the same sweep against a file with several blocks, where entry
     validation (overlap, tiling, monotone word offsets) has real work
     to do; the base file is built once, mangled hundreds of ways *)
  let base = read_file (Lazy.force multiblock_file) in
  let rng = Systrace_util.Rng.create 424242 in
  for _ = 1 to 300 do
    let mangled, what = Faults.mangle_v3 rng base in
    with_temp (fun path ->
        write_file path mangled;
        match Tracefile.load path with
        | (_ : int array) -> ()
        | exception Tracefile.Bad_file msg ->
          if String.length msg = 0 then
            Alcotest.failf "empty diagnosis for %s" what
        | exception e ->
          Alcotest.failf "%s escaped as %s" what (Printexc.to_string e))
  done

let test_v3_targeted_diagnoses () =
  (* deterministic fault classes must produce Bad_file with the matching
     structured diagnosis, not a generic failure: drive mangle_v3 until
     every class has been seen, and check the message each time *)
  let base = read_file (Lazy.force multiblock_file) in
  let rng = Systrace_util.Rng.create 1337 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 400 do
    let mangled, what = Faults.mangle_v3 rng base in
    let class_of w =
      List.find_opt (fun p -> String.length w >= String.length p
                              && String.sub w 0 (String.length p) = p)
        [ "trailer truncated"; "index bit rot"; "payload bit rot";
          "footer magic"; "footer block count" ]
    in
    let expect_substring =
      (* classes whose diagnosis is deterministic *)
      match class_of what with
      | Some "index bit rot" -> Some "index CRC"
      | Some "payload bit rot" -> Some "CRC mismatch"
      | Some "footer magic" -> Some "footer"
      | _ -> None
    in
    with_temp (fun path ->
        write_file path mangled;
        match Tracefile.load path with
        | (_ : int array) -> Alcotest.failf "%s loaded clean" what
        | exception Tracefile.Bad_file msg ->
          Hashtbl.replace seen
            (Option.value ~default:"entry lie" (class_of what)) ();
          (match expect_substring with
          | Some sub when not (contains msg sub) ->
            Alcotest.failf "%s diagnosed as %S (wanted %S)" what msg sub
          | _ -> ()))
  done;
  check "every targeted fault class exercised" true (Hashtbl.length seen >= 6)

(* --- backward-compat fixtures -------------------------------------- *)

(* MUST match scratch history: the fixture files in test/ were written by
   this exact generator when each format version landed; decoding must
   keep producing these words from those bytes forever. *)
let fixture_words =
  let x = ref 1 in
  Array.init 5000 (fun i ->
      x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF;
      match i mod 11 with
      | 0 -> 0xBFFF0000 lor (1 lsl 12) lor (i land 0xFFF)
      | 1 | 2 | 3 -> 0x00400000 + (4 * (!x mod 8192))
      | 4 | 5 -> 0x10000000 + (4 * (!x mod 65536))
      | 6 | 7 | 8 -> 0x80100000 + (4 * (!x mod 4096))
      | _ -> !x)

let test_backward_compat_fixtures () =
  List.iter
    (fun (file, version) ->
      let words = Tracefile.load file in
      check (Printf.sprintf "v%d fixture loads byte-identically" version) true
        (words = fixture_words);
      let folded = ref [] in
      ignore
        (Tracefile.fold_words file ~init:()
           ~f:(fun () c ~len -> folded := Array.sub c 0 len :: !folded));
      check (Printf.sprintf "v%d fixture folds identically" version) true
        (Array.concat (List.rev !folded) = fixture_words))
    [ ("fixture_v1.strc", 1); ("fixture_v2.strc", 2); ("fixture_v3.strc", 3) ]

let tests =
  tests
  @ [
      QCheck_alcotest.to_alcotest prop_semantic_roundtrip;
      QCheck_alcotest.to_alcotest prop_v3_version_roundtrip;
      Alcotest.test_case "tracefile: v3 multi-block store" `Quick
        test_v3_multiblock;
      QCheck_alcotest.to_alcotest prop_fold_window;
      QCheck_alcotest.to_alcotest prop_slice_matches_window;
      QCheck_alcotest.to_alcotest prop_parallel_fold_identity;
      Alcotest.test_case "tracefile: parallel fold across blocks" `Quick
        test_parallel_fold_multiblock;
      Alcotest.test_case "tracefile: empty writer round-trips (v1/v2/v3)"
        `Quick test_empty_writer_roundtrip;
      Alcotest.test_case "compress: lzss pad items skip the output limit"
        `Quick test_lzss_limit_pad_boundary;
      QCheck_alcotest.to_alcotest prop_v3_fuzz_total;
      Alcotest.test_case "tracefile: v3 multi-block trailer fuzz" `Quick
        test_v3_multiblock_trailer_fuzz;
      Alcotest.test_case "tracefile: v3 targeted fault diagnoses" `Quick
        test_v3_targeted_diagnoses;
      Alcotest.test_case "tracefile: v1/v2/v3 backward-compat fixtures" `Quick
        test_backward_compat_fixtures;
    ]
