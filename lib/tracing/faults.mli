(** Deterministic fault injection over trace word streams and stored trace
    files (paper §4.3).

    Supplies the corruption against which defensive tracing is measured: a
    catalogue of fault kinds covering realistic trace-path failure modes,
    applied at [Systrace_util.Rng]-chosen positions and tagged with their injection
    index so detections can be attributed.  Equal seeds give equal faulted
    streams.

    Position selection is framing-aware: the injector tracks the drain
    protocol so "mutate a marker" targets an actual marker word, not a
    payload word that happens to land in the marker range. *)

type kind =
  | Bit_flip  (** flip one bit of one word *)
  | Word_drop  (** delete one word *)
  | Word_dup  (** duplicate one word in place *)
  | Word_swap  (** exchange two adjacent words *)
  | Truncate  (** cut the stream at a position *)
  | Marker_kind  (** rewrite a marker's kind field *)
  | Marker_arg  (** rewrite a marker's argument field *)
  | Drain_count  (** corrupt the count word after a DRAIN marker *)
  | Drain_split
      (** split one drain block into two valid halves — a correct transform
          of the stream (drains are resumable), exercising the protocol's
          dead redundancy *)

val all_kinds : kind list
val kind_name : kind -> string

type injection = {
  kind : kind;
  pos : int;  (** word index the fault was applied at *)
  detail : string;  (** human-readable what-changed *)
}

val describe : injection -> string

val inject_one :
  Systrace_util.Rng.t -> kind -> int array -> (int array * injection) option
(** Apply one fault to a copy of the stream (the input is never mutated).
    [None] when the stream has no site for this kind (e.g. no markers to
    mutate). *)

val inject :
  Systrace_util.Rng.t ->
  n:int ->
  ?kinds:kind list ->
  int array ->
  int array * injection list
(** Apply [n] faults drawn uniformly from [kinds] (default {!all_kinds}),
    composing left to right; kinds with no remaining site are skipped.
    Returns the final stream and the injections actually applied, in
    order. *)

val mangle : Systrace_util.Rng.t -> string -> string
(** Corrupt a stored trace file's bytes (header, compressed payload,
    anything): bit flips, truncation, appended garbage, overwritten
    windows.  For fuzzing [Tracefile.load]. *)

val mangle_v3 : Systrace_util.Rng.t -> string -> string * string
(** Corrupt a version-3 trace file's index trailer specifically:
    truncated index, index/block CRC rot, and — with the index CRC
    {e recomputed} so the checksum passes — lying entries (packed
    lengths past EOF, overlapping blocks, non-monotone word offsets,
    unknown codec bytes) and a rewritten footer block count, so the
    reader's entry validation is exercised behind the checksum.
    Returns the mangled bytes and a description of the fault; falls
    back to {!mangle} when the input is not a well-formed v3 file. *)
