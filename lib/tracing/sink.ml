(* Streaming trace consumers.

   A sink is the analysis side of the paper's generation/analysis
   alternation: [on_words] per ANALYZE phase, [finish] once at the end.
   Everything here is glue — the point is that the endpoints (parser,
   writer, counters) and the fan-out compose without any of them ever
   seeing more than one chunk. *)

type t = {
  on_words : int array -> len:int -> unit;
  finish : unit -> unit;
}

let make ?(finish = fun () -> ()) on_words = { on_words; finish }

let null = { on_words = (fun _ ~len:_ -> ()); finish = (fun () -> ()) }

let tee sinks =
  {
    on_words =
      (fun words ~len -> List.iter (fun s -> s.on_words words ~len) sinks);
    finish =
      (fun () ->
        (* Every branch must get its finish even if an earlier one raises
           — a failing parser must not leave a file sink unclosed.  The
           first exception wins, after the sweep. *)
        let first =
          List.fold_left
            (fun first s ->
              match s.finish () with
              | () -> first
              | exception e -> if first = None then Some e else first)
            None sinks
        in
        match first with Some e -> raise e | None -> ());
  }

let batching ?(words = 65536) sink =
  if words < 1 then invalid_arg "Sink.batching: words < 1";
  let buf = Array.make words 0 in
  let fill = ref 0 in
  let flush () =
    if !fill > 0 then begin
      let len = !fill in
      (* reset before delivering so a raising consumer cannot see the
         same words again on the next flush *)
      fill := 0;
      sink.on_words buf ~len
    end
  in
  {
    on_words =
      (fun ws ~len ->
        if len >= words then begin
          (* chunk at least a whole batch: flush and pass it through *)
          flush ();
          sink.on_words ws ~len
        end
        else begin
          if !fill + len > words then flush ();
          Array.blit ws 0 buf !fill len;
          fill := !fill + len
        end);
    finish =
      (fun () ->
        flush ();
        sink.finish ());
  }

let counting () =
  let n = ref 0 in
  ( { on_words = (fun _ ~len -> n := !n + len); finish = (fun () -> ()) },
    fun () -> !n )

let peak () =
  let p = ref 0 in
  ( {
      on_words = (fun _ ~len -> if len > !p then p := len);
      finish = (fun () -> ());
    },
    fun () -> !p )

let to_parser ?live p =
  {
    on_words = (fun words ~len -> Parser.feed p words ~len);
    finish = (fun () -> Parser.finish ?live p);
  }

let to_array () =
  let chunks = ref [] in
  ( {
      on_words = (fun words ~len -> chunks := Array.sub words 0 len :: !chunks);
      finish = (fun () -> ());
    },
    fun () -> Array.concat (List.rev !chunks) )

let to_file ?compress path =
  let w = Tracefile.open_writer ?compress path in
  batching
    {
      on_words = (fun words ~len -> Tracefile.write w words ~len);
      finish = (fun () -> ignore (Tracefile.close_writer w : int));
    }
