(* On-disk trace files.

   The Tunix system "produced a collection of single and multi-task
   user-level traces on tape, which were made available to the community"
   (paper §3.4).  This module is the tape: a captured in-kernel trace is
   written to a host file and can be re-analyzed offline — against the
   paper's design philosophy for LONG traces ("trace analysis that must be
   done off-line against stored traces is unacceptable" for 64MB-a-phase
   volumes), but exactly right for sharing and for replay studies.

   Two formats behind one magic:
     version 1: "STRC", version, word count, words as little-endian 32-bit
     version 2: "STRC", version, word count, compressed byte count, then
                the {!Compress} delta/varint stream
   [load] dispatches on the version, so consumers never care which way a
   trace was dumped.

   Robustness contract (defensive tracing, §4.3, extended to the stored
   form): [load] on ANY byte sequence either returns a word array or
   raises {!Bad_file} — never [End_of_file], [Invalid_argument], or an
   attacker-sized allocation.  Header counts are validated against both a
   hard cap (the same 2^26-word bound as [Compress.decode]) and the actual
   file size before any buffer is allocated.  [save] refuses words outside
   the 32-bit trace-word range instead of silently truncating them through
   [Int32.of_int], so a corrupted in-memory buffer cannot round-trip into
   a "valid" trace file. *)

let magic = "STRC"

exception Bad_file of string

(* Same bound as [Compress.max_decoded_words]: far beyond any real
   capture (the paper's largest kernel buffer is 64 MB = 2^24 words). *)
let max_words = 1 lsl 26

let save ?(compress = false) path (words : int array) =
  Array.iteri
    (fun i w ->
      if w < 0 || w > 0xFFFFFFFF then
        invalid_arg
          (Printf.sprintf
             "Tracefile.save: word %d (0x%x) outside the 32-bit trace-word \
              range"
             i w))
    words;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      if compress then begin
        let payload = Compress.pack words in
        let hdr = Bytes.create 12 in
        Bytes.set_int32_le hdr 0 2l;
        Bytes.set_int32_le hdr 4 (Int32.of_int (Array.length words));
        Bytes.set_int32_le hdr 8 (Int32.of_int (String.length payload));
        output_bytes oc hdr;
        output_string oc payload
      end
      else begin
        let hdr = Bytes.create 8 in
        Bytes.set_int32_le hdr 0 1l;
        Bytes.set_int32_le hdr 4 (Int32.of_int (Array.length words));
        output_bytes oc hdr;
        let buf = Bytes.create (Array.length words * 4) in
        Array.iteri
          (fun i w -> Bytes.set_int32_le buf (i * 4) (Int32.of_int w))
          words;
        output_bytes oc buf
      end)

let load path : int array =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let bad fmt = Printf.ksprintf (fun m -> raise (Bad_file (path ^ ": " ^ m))) fmt in
      try
        let file_len = in_channel_length ic in
        let m = really_input_string ic 4 in
        if m <> magic then bad "not a trace file";
        let hdr = Bytes.create 8 in
        really_input ic hdr 0 8;
        let v = Int32.to_int (Bytes.get_int32_le hdr 0) in
        let n = Int32.to_int (Bytes.get_int32_le hdr 4) in
        if n < 0 then bad "negative length";
        if n > max_words then bad "word count %d exceeds the %d-word cap" n max_words;
        match v with
        | 1 ->
          (* Validate the count against the bytes actually present before
             allocating [n * 4]: a corrupt count must not cost memory. *)
          if file_len - 12 < n * 4 then
            bad "truncated: header claims %d words, file holds %d bytes of \
                 payload"
              n (file_len - 12);
          let buf = Bytes.create (n * 4) in
          really_input ic buf 0 (n * 4);
          Array.init n (fun i ->
              Int32.to_int (Bytes.get_int32_le buf (i * 4)) land 0xFFFFFFFF)
        | 2 ->
          let lenb = Bytes.create 4 in
          really_input ic lenb 0 4;
          let len = Int32.to_int (Bytes.get_int32_le lenb 0) in
          if len < 0 then bad "negative payload";
          if file_len - 16 < len then
            bad "truncated: header claims %d payload bytes, file holds %d" len
              (file_len - 16);
          let payload = really_input_string ic len in
          (try Compress.unpack ~expect:n payload
           with Compress.Corrupt msg -> bad "%s" msg)
        | v -> bad "version %d unsupported" v
      with
      | End_of_file -> bad "truncated file"
      | Invalid_argument _ -> bad "malformed header")

(* ------------------------------------------------------------------ *)
(* Streaming interfaces.

   [save]/[load] above materialize the whole word array; the streaming
   pipeline must not.  The writer accepts ANALYZE-phase chunks as they
   arrive and patches the header counts on close; the reader folds over
   a stored file chunk by chunk.  Peak memory on both sides is O(chunk),
   not O(trace).

   The version-2 writer cannot hold the whole delta stream either, so it
   LZSS-packs it in ~1 MB blocks.  The concatenation of complete LZSS
   streams is itself a valid LZSS stream: the packer pads each stream's
   final control-byte group to a full 8 items (so the next block's first
   byte is read as a fresh control byte, never as a leftover item), and
   match distances are relative — each block's matches only reach into
   that block's own plaintext, which sits at the same relative offset in
   the concatenation.  So [load] and [fold_words] read block-flushed
   files with the same decoder, and files whose delta stream fits one
   block are byte-for-byte what [save ~compress:true] writes. *)

type writer = {
  w_oc : out_channel;
  w_compress : bool;
  w_enc : Compress.encoder;
  w_pend : Buffer.t;  (* delta bytes awaiting an LZSS block flush *)
  mutable w_payload : int;  (* v2 payload bytes written so far *)
  mutable w_words : int;
  mutable w_closed : bool;
}

let writer_block_bytes = 1 lsl 20

let open_writer ?(compress = false) path =
  let oc = open_out_bin path in
  output_string oc magic;
  (* word count (and v2 payload size) are patched by [close_writer] *)
  let hdr = Bytes.make (if compress then 12 else 8) '\000' in
  Bytes.set_int32_le hdr 0 (if compress then 2l else 1l);
  output_bytes oc hdr;
  {
    w_oc = oc;
    w_compress = compress;
    w_enc = Compress.encoder ();
    w_pend = Buffer.create (if compress then 65536 else 16);
    w_payload = 0;
    w_words = 0;
    w_closed = false;
  }

let writer_flush_block w =
  if Buffer.length w.w_pend > 0 then begin
    let z = Compress.lzss_pack (Buffer.contents w.w_pend) in
    Buffer.clear w.w_pend;
    output_string w.w_oc z;
    w.w_payload <- w.w_payload + String.length z
  end

let write w (words : int array) ~len =
  if w.w_closed then invalid_arg "Tracefile.write: writer is closed";
  for i = 0 to len - 1 do
    let v = words.(i) in
    if v < 0 || v > 0xFFFFFFFF then
      invalid_arg
        (Printf.sprintf
           "Tracefile.write: word %d (0x%x) outside the 32-bit trace-word \
            range"
           (w.w_words + i) v)
  done;
  if w.w_words + len > max_words then
    invalid_arg
      (Printf.sprintf "Tracefile.write: trace exceeds the %d-word cap"
         max_words);
  if w.w_compress then begin
    Compress.encode_chunk w.w_enc w.w_pend words ~len;
    if Buffer.length w.w_pend >= writer_block_bytes then writer_flush_block w
  end
  else begin
    let buf = Bytes.create (len * 4) in
    for i = 0 to len - 1 do
      Bytes.set_int32_le buf (i * 4) (Int32.of_int words.(i))
    done;
    output_bytes w.w_oc buf
  end;
  w.w_words <- w.w_words + len

let close_writer w =
  if not w.w_closed then begin
    w.w_closed <- true;
    Fun.protect
      ~finally:(fun () -> close_out w.w_oc)
      (fun () ->
        if w.w_compress then begin
          Compress.encode_finish w.w_enc w.w_pend;
          writer_flush_block w
        end;
        seek_out w.w_oc 8;
        let tl = Bytes.create (if w.w_compress then 8 else 4) in
        Bytes.set_int32_le tl 0 (Int32.of_int w.w_words);
        if w.w_compress then Bytes.set_int32_le tl 4 (Int32.of_int w.w_payload);
        output_bytes w.w_oc tl)
  end;
  w.w_words

(* Exceptions raised by the caller's [f] must escape [fold_words] as
   themselves, not be swallowed into [Bad_file] by the totality net
   below. *)
exception Escape of exn

let fold_words ?(chunk_words = 65536) path ~init ~f =
  if chunk_words <= 0 then
    invalid_arg "Tracefile.fold_words: chunk_words must be positive";
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let bad fmt =
        Printf.ksprintf (fun m -> raise (Bad_file (path ^ ": " ^ m))) fmt
      in
      let acc = ref init in
      let apply chunk len =
        match f !acc chunk ~len with
        | a -> acc := a
        | exception e -> raise (Escape e)
      in
      try
        let file_len = in_channel_length ic in
        let m = really_input_string ic 4 in
        if m <> magic then bad "not a trace file";
        let hdr = Bytes.create 8 in
        really_input ic hdr 0 8;
        let v = Int32.to_int (Bytes.get_int32_le hdr 0) in
        let n = Int32.to_int (Bytes.get_int32_le hdr 4) in
        if n < 0 then bad "negative length";
        if n > max_words then
          bad "word count %d exceeds the %d-word cap" n max_words;
        (match v with
        | 1 ->
          if file_len - 12 < n * 4 then
            bad
              "truncated: header claims %d words, file holds %d bytes of \
               payload"
              n (file_len - 12);
          let chunk = Array.make (max 1 (min chunk_words n)) 0 in
          let buf = Bytes.create (Array.length chunk * 4) in
          let remaining = ref n in
          while !remaining > 0 do
            let k = min (Array.length chunk) !remaining in
            really_input ic buf 0 (k * 4);
            for i = 0 to k - 1 do
              chunk.(i) <-
                Int32.to_int (Bytes.get_int32_le buf (i * 4)) land 0xFFFFFFFF
            done;
            apply chunk k;
            remaining := !remaining - k
          done
        | 2 ->
          let lenb = Bytes.create 4 in
          really_input ic lenb 0 4;
          let len = Int32.to_int (Bytes.get_int32_le lenb 0) in
          if len < 0 then bad "negative payload";
          if file_len - 16 < len then
            bad "truncated: header claims %d payload bytes, file holds %d" len
              (file_len - 16);
          let chunk = Array.make chunk_words 0 in
          let fill = ref 0 in
          let emit_word w =
            chunk.(!fill) <- w;
            incr fill;
            if !fill = chunk_words then begin
              apply chunk chunk_words;
              fill := 0
            end
          in
          let d = Compress.decoder ~expect:n ~emit:emit_word () in
          let lz_limit = (n * Compress.max_delta_bytes_per_word) + 16 in
          let z =
            Compress.lz_decoder ~limit:lz_limit ~emit:(Compress.decode_byte d)
              ()
          in
          (try
             let left = ref len in
             while !left > 0 do
               let k = min !left 65536 in
               let s = really_input_string ic k in
               Compress.lz_decode_bytes z s ~pos:0 ~len:k;
               left := !left - k
             done;
             Compress.lz_decode_finish z;
             Compress.decode_finish d
           with Compress.Corrupt msg -> bad "%s" msg);
          if !fill > 0 then apply chunk !fill
        | v -> bad "version %d unsupported" v);
        !acc
      with
      | Escape e -> raise e
      | End_of_file -> bad "truncated file"
      | Invalid_argument _ -> bad "malformed header")
