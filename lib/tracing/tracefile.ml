(* On-disk trace files.

   The Tunix system "produced a collection of single and multi-task
   user-level traces on tape, which were made available to the community"
   (paper §3.4).  This module is the tape: a captured in-kernel trace is
   written to a host file and can be re-analyzed offline — against the
   paper's design philosophy for LONG traces ("trace analysis that must be
   done off-line against stored traces is unacceptable" for 64MB-a-phase
   volumes), but exactly right for sharing and for replay studies.

   Three formats behind one magic:
     version 1: "STRC", version, word count, words as little-endian 32-bit
     version 2: "STRC", version, word count, compressed byte count, then
                the {!Compress} delta/varint + LZSS stream
     version 3: "STRC", version, word count, payload byte count, then
                independently compressed blocks, then an index trailer:
                one 17-byte entry per block (word offset, file offset,
                packed length, codec byte, CRC-32 of the packed bytes)
                followed by a 12-byte footer (block count, CRC-32 of the
                index bytes, "SIDX").
   [load] dispatches on the version, so consumers never care which way a
   trace was dumped; v1/v2 files keep loading byte-identically forever.

   Version 3 exists because v2 is decode-forward-only: one sequential
   decoder, no seeking, and a single shared predictor chain from the
   first word to the last.  v3 blocks are self-contained — each one
   chooses its own codec (semantic preconditioning, plain delta/varint,
   or raw words, whichever packed smallest; see {!Compress}) and resets
   every predictor — so the index lets [fold_words ?from ?until] seek to
   the covering block, [fold_blocks_parallel] decode blocks concurrently
   on the domain pool, and `systrace slice` cut a window without a full
   decode.

   Robustness contract (defensive tracing, §4.3, extended to the stored
   form): [load] and [fold_words] on ANY byte sequence either return
   words or raise {!Bad_file} — never [End_of_file], [Invalid_argument],
   or an attacker-sized allocation.  Header counts are validated against
   both a hard cap (the same 2^26-word bound as [Compress.decode]) and
   the actual file size before any buffer is allocated; the v3 index is
   CRC-checked and every entry validated (offsets contiguous from the
   first block to the trailer, word offsets strictly increasing, codecs
   known) before a single block is read, and each block's own CRC is
   checked before it is decoded.  [save] refuses words outside the
   32-bit trace-word range instead of silently truncating them through
   [Int32.of_int], so a corrupted in-memory buffer cannot round-trip
   into a "valid" trace file. *)

let magic = "STRC"
let index_magic = "SIDX"

exception Bad_file of string

(* Same bound as [Compress.max_decoded_words]: far beyond any real
   capture (the paper's largest kernel buffer is 64 MB = 2^24 words). *)
let max_words = 1 lsl 26

(* v3 block geometry: 64K words (256KB raw) balances seek granularity,
   per-block predictor warmup, and parallel-decode grain.  One index
   entry per block = 17 bytes per 256KB of trace, noise. *)
let v3_block_words = 65536
let v3_entry_bytes = 17
let v3_footer_bytes = 12

(* ------------------------------------------------------------------ *)
(* v3 block codecs                                                     *)

(* Codec byte, recorded per block in the index:
     0 = delta/varint (fresh predictor) + LZSS  — the v2 stages
     1 = semantic preconditioning + LZSS        — the usual winner
     2 = raw little-endian words + LZSS         — incompressible fallback
   The packer tries 1 and 0 and keeps the smaller; if even that beat
   nothing (packed >= raw bytes) it tries 2.  The choice is recorded on
   the wire, so the reader never guesses. *)

let v3_pack_block (block : int array) ~len : int * string =
  let sem = Compress.lzss_pack (Compress.encode_semantic block ~pos:0 ~len) in
  let plain =
    let buf = Buffer.create ((len * 2) + 64) in
    let e = Compress.encoder () in
    Compress.encode_chunk e buf block ~len;
    Compress.encode_finish e buf;
    Compress.lzss_pack (Buffer.contents buf)
  in
  let codec, best =
    if String.length sem <= String.length plain then (1, sem) else (0, plain)
  in
  if String.length best >= len * 4 then begin
    let raw = Bytes.create (len * 4) in
    for i = 0 to len - 1 do
      Bytes.set_int32_le raw (i * 4) (Int32.of_int block.(i))
    done;
    let z = Compress.lzss_pack (Bytes.unsafe_to_string raw) in
    if String.length z < String.length best then (2, z) else (codec, best)
  end
  else (codec, best)

(* Decode one block's packed bytes back to exactly [expect] words.
   Every stage is bounded by [expect], so a lying index entry surfaces
   as [Compress.Corrupt] before an oversized allocation. *)
let v3_decode_block ~codec ~expect (z : string) : int array =
  match codec with
  | 0 ->
    let limit = (expect * Compress.max_delta_bytes_per_word) + 16 in
    Compress.decode ~expect (Compress.lzss_unpack ~limit z)
  | 1 ->
    (* body worst case: <= 5 run-token bytes + 10 stream bytes per word,
       plus the fixed header varints *)
    let limit = (expect * 15) + 64 in
    Compress.decode_semantic ~expect (Compress.lzss_unpack ~limit z)
  | 2 ->
    let s = Compress.lzss_unpack ~limit:(expect * 4) z in
    if String.length s <> expect * 4 then
      raise (Compress.Corrupt "raw block length mismatch");
    Array.init expect (fun i ->
        Int32.to_int (String.get_int32_le s (i * 4)) land 0xFFFFFFFF)
  | c -> raise (Compress.Corrupt (Printf.sprintf "unknown block codec %d" c))

(* ------------------------------------------------------------------ *)
(* v3 index                                                            *)

type v3_entry = {
  e_word_off : int;  (* stream index of the block's first word *)
  e_file_off : int;  (* absolute byte offset of the packed block *)
  e_len : int;       (* packed byte length *)
  e_codec : int;
  e_crc : int;       (* CRC-32 of the packed bytes *)
}

let v3_entry_write buf e =
  let b = Bytes.create v3_entry_bytes in
  Bytes.set_int32_le b 0 (Int32.of_int e.e_word_off);
  Bytes.set_int32_le b 4 (Int32.of_int e.e_file_off);
  Bytes.set_int32_le b 8 (Int32.of_int e.e_len);
  Bytes.set b 12 (Char.chr e.e_codec);
  Bytes.set_int32_le b 13 (Int32.of_int e.e_crc);
  Buffer.add_bytes buf b

(* Parse and fully validate a v3 trailer.  Nothing is allocated
   proportional to any header field before that field has been proven
   consistent with the actual file length. *)
let v3_read_index ic ~file_len ~path ~n =
  let bad fmt =
    Printf.ksprintf (fun m -> raise (Bad_file (path ^ ": " ^ m))) fmt
  in
  let u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF in
  let lenb = Bytes.create 4 in
  really_input ic lenb 0 4;
  let payload = Int32.to_int (Bytes.get_int32_le lenb 0) in
  if payload < 0 then bad "negative payload";
  if file_len < 16 + v3_footer_bytes then bad "truncated: no index footer";
  if payload > file_len - 16 - v3_footer_bytes then
    bad "truncated: header claims %d payload bytes, file holds %d" payload
      (file_len - 16 - v3_footer_bytes);
  seek_in ic (file_len - v3_footer_bytes);
  let fb = Bytes.create v3_footer_bytes in
  really_input ic fb 0 v3_footer_bytes;
  if Bytes.sub_string fb 8 4 <> index_magic then
    bad "bad index footer magic";
  let nblocks = u32 fb 0 in
  let index_crc = u32 fb 4 in
  if nblocks > max_words then bad "index claims %d blocks" nblocks;
  let index_bytes = file_len - 16 - payload - v3_footer_bytes in
  if nblocks * v3_entry_bytes <> index_bytes then
    bad "index size mismatch: %d blocks need %d bytes, trailer holds %d"
      nblocks (nblocks * v3_entry_bytes) index_bytes;
  if nblocks = 0 && (n <> 0 || payload <> 0) then
    bad "empty index for %d words, %d payload bytes" n payload;
  if nblocks > 0 && n = 0 then bad "%d blocks for zero words" nblocks;
  seek_in ic (16 + payload);
  let ib = really_input_string ic index_bytes in
  if Compress.crc32 ib <> index_crc then bad "index CRC mismatch";
  let entries =
    Array.init nblocks (fun k ->
        let b = Bytes.unsafe_of_string ib in
        let off = k * v3_entry_bytes in
        {
          e_word_off = u32 b off;
          e_file_off = u32 b (off + 4);
          e_len = u32 b (off + 8);
          e_codec = Char.code (Bytes.get b (off + 12));
          e_crc = u32 b (off + 13);
        })
  in
  (* Offsets must tile the payload exactly — no gaps, no overlaps, no
     block reaching past EOF — and word offsets must start at 0 and
     strictly increase below the word count. *)
  let fo = ref 16 in
  Array.iteri
    (fun k e ->
      if e.e_file_off <> !fo then
        bad "block %d at offset %d, expected %d (overlap or gap)" k
          e.e_file_off !fo;
      if e.e_len < 0 || e.e_file_off + e.e_len > 16 + payload then
        bad "block %d reaches past the payload" k;
      fo := e.e_file_off + e.e_len;
      let expected_word_off = if k = 0 then 0 else -1 in
      if k = 0 && e.e_word_off <> expected_word_off then
        bad "first block at word offset %d" e.e_word_off;
      if k > 0 && e.e_word_off <= entries.(k - 1).e_word_off then
        bad "block %d word offset %d not increasing" k e.e_word_off;
      if e.e_word_off >= n then
        bad "block %d word offset %d beyond word count %d" k e.e_word_off n;
      if e.e_codec > 2 then bad "block %d has unknown codec %d" k e.e_codec)
    entries;
  if nblocks > 0 && !fo <> 16 + payload then
    bad "blocks cover %d payload bytes, header claims %d" (!fo - 16) payload;
  (payload, entries)

(* Words covered by entry [k]: up to the next block's offset (or the
   file's word count for the last block). *)
let v3_entry_words entries ~n k =
  let e = entries.(k) in
  let next =
    if k + 1 < Array.length entries then entries.(k + 1).e_word_off else n
  in
  next - e.e_word_off

(* Read and decode block [k], checking its CRC first. *)
let v3_read_block ic entries ~n ~path k =
  let bad fmt =
    Printf.ksprintf (fun m -> raise (Bad_file (path ^ ": " ^ m))) fmt
  in
  let e = entries.(k) in
  seek_in ic e.e_file_off;
  let z = really_input_string ic e.e_len in
  if Compress.crc32 z <> e.e_crc then bad "block %d CRC mismatch" k;
  let expect = v3_entry_words entries ~n k in
  try v3_decode_block ~codec:e.e_codec ~expect z
  with Compress.Corrupt msg -> bad "block %d: %s" k msg

(* ------------------------------------------------------------------ *)
(* Whole-array interfaces                                              *)

let check_save_words (words : int array) =
  Array.iteri
    (fun i w ->
      if w < 0 || w > 0xFFFFFFFF then
        invalid_arg
          (Printf.sprintf
             "Tracefile.save: word %d (0x%x) outside the 32-bit trace-word \
              range"
             i w))
    words

let save_v1 path (words : int array) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let hdr = Bytes.create 8 in
      Bytes.set_int32_le hdr 0 1l;
      Bytes.set_int32_le hdr 4 (Int32.of_int (Array.length words));
      output_bytes oc hdr;
      let buf = Bytes.create (Array.length words * 4) in
      Array.iteri
        (fun i w -> Bytes.set_int32_le buf (i * 4) (Int32.of_int w))
        words;
      output_bytes oc buf)

let save_v2 path (words : int array) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let payload = Compress.pack words in
      let hdr = Bytes.create 12 in
      Bytes.set_int32_le hdr 0 2l;
      Bytes.set_int32_le hdr 4 (Int32.of_int (Array.length words));
      Bytes.set_int32_le hdr 8 (Int32.of_int (String.length payload));
      output_bytes oc hdr;
      output_string oc payload)

(* ------------------------------------------------------------------ *)
(* Streaming writer.

   [save]/[load] materialize the whole word array; the streaming
   pipeline must not.  The writer accepts ANALYZE-phase chunks as they
   arrive and patches the header counts on close; peak memory is
   O(block), not O(trace).

   The version-2 writer cannot hold the whole delta stream either, so it
   LZSS-packs it in ~1 MB blocks.  The concatenation of complete LZSS
   streams is itself a valid LZSS stream: the packer pads each stream's
   final control-byte group to a full 8 items (so the next block's first
   byte is read as a fresh control byte, never as a leftover item), and
   match distances are relative — each block's matches only reach into
   that block's own plaintext, which sits at the same relative offset in
   the concatenation.  So [load] and [fold_words] read block-flushed
   files with the same decoder, and files whose delta stream fits one
   block are byte-for-byte what [save ~compress:true ~version:2] writes.

   The version-3 writer buffers words (not bytes): every
   [v3_block_words] it packs a self-contained block, appends it to the
   file and its entry to the in-memory index, which [close_writer]
   writes as the trailer.  Block boundaries depend only on the word
   stream, never on how calls chunked it, so the streamed file is
   byte-identical to [save] of the concatenation — for any chunking,
   not just single-block files. *)

type writer = {
  w_oc : out_channel;
  w_version : int;  (* 1, 2 or 3 *)
  (* v2 state *)
  w_enc : Compress.encoder;
  w_pend : Buffer.t;  (* delta bytes awaiting an LZSS block flush *)
  (* v3 state *)
  w_block : int array;  (* words awaiting a block flush *)
  mutable w_fill : int;
  w_index : Buffer.t;  (* index entries of the flushed blocks *)
  mutable w_nblocks : int;
  (* common *)
  mutable w_payload : int;  (* payload bytes written so far *)
  mutable w_words : int;
  mutable w_closed : bool;
}

let writer_block_bytes = 1 lsl 20

let open_writer ?(compress = false) ?(version = 3) path =
  if compress && version <> 2 && version <> 3 then
    invalid_arg
      (Printf.sprintf "Tracefile.open_writer: unsupported version %d" version);
  let version = if compress then version else 1 in
  let oc = open_out_bin path in
  output_string oc magic;
  (* word count (and v2/v3 payload size) are patched by [close_writer] *)
  let hdr = Bytes.make (if compress then 12 else 8) '\000' in
  Bytes.set_int32_le hdr 0 (Int32.of_int version);
  output_bytes oc hdr;
  {
    w_oc = oc;
    w_version = version;
    w_enc = Compress.encoder ();
    w_pend = Buffer.create (if version = 2 then 65536 else 16);
    w_block = (if version = 3 then Array.make v3_block_words 0 else [||]);
    w_fill = 0;
    w_index = Buffer.create (if version = 3 then 1024 else 16);
    w_nblocks = 0;
    w_payload = 0;
    w_words = 0;
    w_closed = false;
  }

let writer_flush_v2 w =
  if Buffer.length w.w_pend > 0 then begin
    let z = Compress.lzss_pack (Buffer.contents w.w_pend) in
    Buffer.clear w.w_pend;
    output_string w.w_oc z;
    w.w_payload <- w.w_payload + String.length z
  end

let writer_flush_v3 w =
  if w.w_fill > 0 then begin
    let len = w.w_fill in
    w.w_fill <- 0;
    let codec, z = v3_pack_block w.w_block ~len in
    v3_entry_write w.w_index
      {
        e_word_off = w.w_words - len;
        e_file_off = 16 + w.w_payload;
        e_len = String.length z;
        e_codec = codec;
        e_crc = Compress.crc32 z;
      };
    w.w_nblocks <- w.w_nblocks + 1;
    output_string w.w_oc z;
    w.w_payload <- w.w_payload + String.length z
  end

let write w (words : int array) ~len =
  if w.w_closed then invalid_arg "Tracefile.write: writer is closed";
  for i = 0 to len - 1 do
    let v = words.(i) in
    if v < 0 || v > 0xFFFFFFFF then
      invalid_arg
        (Printf.sprintf
           "Tracefile.write: word %d (0x%x) outside the 32-bit trace-word \
            range"
           (w.w_words + i) v)
  done;
  if w.w_words + len > max_words then
    invalid_arg
      (Printf.sprintf "Tracefile.write: trace exceeds the %d-word cap"
         max_words);
  (match w.w_version with
  | 2 ->
    Compress.encode_chunk w.w_enc w.w_pend words ~len;
    if Buffer.length w.w_pend >= writer_block_bytes then writer_flush_v2 w
  | 3 ->
    (* fill the pending block; flush whenever it reaches the block size,
       so boundaries depend only on the word stream *)
    let pos = ref 0 in
    while !pos < len do
      let k = min (v3_block_words - w.w_fill) (len - !pos) in
      Array.blit words !pos w.w_block w.w_fill k;
      w.w_fill <- w.w_fill + k;
      w.w_words <- w.w_words + k;
      pos := !pos + k;
      if w.w_fill = v3_block_words then writer_flush_v3 w
    done
  | _ ->
    let buf = Bytes.create (len * 4) in
    for i = 0 to len - 1 do
      Bytes.set_int32_le buf (i * 4) (Int32.of_int words.(i))
    done;
    output_bytes w.w_oc buf);
  if w.w_version <> 3 then w.w_words <- w.w_words + len

let close_writer w =
  if not w.w_closed then begin
    w.w_closed <- true;
    Fun.protect
      ~finally:(fun () -> close_out w.w_oc)
      (fun () ->
        (match w.w_version with
        | 2 ->
          Compress.encode_finish w.w_enc w.w_pend;
          writer_flush_v2 w
        | 3 ->
          writer_flush_v3 w;
          (* trailer: index entries, then block count + index CRC + magic
             — so an empty trace is a header plus an empty trailer, and
             still a structurally valid v3 file *)
          let ib = Buffer.contents w.w_index in
          output_string w.w_oc ib;
          let fb = Bytes.create v3_footer_bytes in
          Bytes.set_int32_le fb 0 (Int32.of_int w.w_nblocks);
          Bytes.set_int32_le fb 4 (Int32.of_int (Compress.crc32 ib));
          Bytes.blit_string index_magic 0 fb 8 4;
          output_bytes w.w_oc fb
        | _ -> ());
        seek_out w.w_oc 8;
        let tl = Bytes.create (if w.w_version = 1 then 4 else 8) in
        Bytes.set_int32_le tl 0 (Int32.of_int w.w_words);
        if w.w_version <> 1 then
          Bytes.set_int32_le tl 4 (Int32.of_int w.w_payload);
        output_bytes w.w_oc tl)
  end;
  w.w_words

let save ?(compress = false) ?(version = 3) path (words : int array) =
  check_save_words words;
  if not compress then save_v1 path words
  else
    match version with
    | 2 -> save_v2 path words
    | 3 ->
      (* route through the streaming writer: one code path, and the
         byte-identity of save and chunked writes is true by
         construction *)
      let w = open_writer ~compress:true ~version:3 path in
      Fun.protect
        ~finally:(fun () -> ignore (close_writer w : int))
        (fun () -> write w words ~len:(Array.length words))
    | v ->
      invalid_arg
        (Printf.sprintf "Tracefile.save: unsupported version %d" v)

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)

(* Shared header parse: returns (version, word count, file length).
   Raises [Bad_file] on anything structurally wrong. *)
let read_header ic ~path =
  let bad fmt =
    Printf.ksprintf (fun m -> raise (Bad_file (path ^ ": " ^ m))) fmt
  in
  let file_len = in_channel_length ic in
  let m = really_input_string ic 4 in
  if m <> magic then bad "not a trace file";
  let hdr = Bytes.create 8 in
  really_input ic hdr 0 8;
  let v = Int32.to_int (Bytes.get_int32_le hdr 0) in
  let n = Int32.to_int (Bytes.get_int32_le hdr 4) in
  if n < 0 then bad "negative length";
  if n > max_words then bad "word count %d exceeds the %d-word cap" n max_words;
  (v, n, file_len)

let load path : int array =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let bad fmt =
        Printf.ksprintf (fun m -> raise (Bad_file (path ^ ": " ^ m))) fmt
      in
      try
        let v, n, file_len = read_header ic ~path in
        match v with
        | 1 ->
          (* Validate the count against the bytes actually present before
             allocating [n * 4]: a corrupt count must not cost memory. *)
          if file_len - 12 < n * 4 then
            bad "truncated: header claims %d words, file holds %d bytes of \
                 payload"
              n (file_len - 12);
          let buf = Bytes.create (n * 4) in
          really_input ic buf 0 (n * 4);
          Array.init n (fun i ->
              Int32.to_int (Bytes.get_int32_le buf (i * 4)) land 0xFFFFFFFF)
        | 2 ->
          let lenb = Bytes.create 4 in
          really_input ic lenb 0 4;
          let len = Int32.to_int (Bytes.get_int32_le lenb 0) in
          if len < 0 then bad "negative payload";
          if file_len - 16 < len then
            bad "truncated: header claims %d payload bytes, file holds %d" len
              (file_len - 16);
          let payload = really_input_string ic len in
          (try Compress.unpack ~expect:n payload
           with Compress.Corrupt msg -> bad "%s" msg)
        | 3 ->
          let _payload, entries = v3_read_index ic ~file_len ~path ~n in
          let out = Array.make n 0 in
          Array.iteri
            (fun k e ->
              let words = v3_read_block ic entries ~n ~path k in
              Array.blit words 0 out e.e_word_off (Array.length words))
            entries;
          out
        | v -> bad "version %d unsupported" v
      with
      | End_of_file -> bad "truncated file"
      | Invalid_argument _ -> bad "malformed header")

(* Exceptions raised by the caller's [f] must escape the folds as
   themselves, not be swallowed into [Bad_file] by the totality net
   below. *)
exception Escape of exn

(* Raised internally when [?until] is satisfied: the remaining tail is
   not read (that is the point of stopping early), so a corrupt tail
   past the window goes unreported. *)
exception Early_stop

let check_window ~from ~until =
  if from < 0 then invalid_arg "Tracefile: negative ?from";
  match until with
  | Some u when u < from -> invalid_arg "Tracefile: ?until before ?from"
  | _ -> ()

let fold_words ?(chunk_words = 65536) ?(from = 0) ?until path ~init ~f =
  if chunk_words <= 0 then
    invalid_arg "Tracefile.fold_words: chunk_words must be positive";
  check_window ~from ~until;
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let bad fmt =
        Printf.ksprintf (fun m -> raise (Bad_file (path ^ ": " ^ m))) fmt
      in
      let acc = ref init in
      let apply chunk len =
        match f !acc chunk ~len with
        | a -> acc := a
        | exception e -> raise (Escape e)
      in
      try
        let v, n, file_len = read_header ic ~path in
        let until = match until with Some u -> min u n | None -> n in
        let from = min from n in
        (match v with
        | 1 ->
          if file_len - 12 < n * 4 then
            bad
              "truncated: header claims %d words, file holds %d bytes of \
               payload"
              n (file_len - 12);
          (* raw words: seek straight to the window *)
          seek_in ic (12 + (from * 4));
          let want = until - from in
          let chunk = Array.make (max 1 (min chunk_words (max want 1))) 0 in
          let buf = Bytes.create (Array.length chunk * 4) in
          let remaining = ref want in
          while !remaining > 0 do
            let k = min (Array.length chunk) !remaining in
            really_input ic buf 0 (k * 4);
            for i = 0 to k - 1 do
              chunk.(i) <-
                Int32.to_int (Bytes.get_int32_le buf (i * 4)) land 0xFFFFFFFF
            done;
            apply chunk k;
            remaining := !remaining - k
          done
        | 2 ->
          let lenb = Bytes.create 4 in
          really_input ic lenb 0 4;
          let len = Int32.to_int (Bytes.get_int32_le lenb 0) in
          if len < 0 then bad "negative payload";
          if file_len - 16 < len then
            bad "truncated: header claims %d payload bytes, file holds %d" len
              (file_len - 16);
          (* forward-only stream: decode from the start, emit only the
             window, stop once [until] words have been seen *)
          let chunk = Array.make chunk_words 0 in
          let fill = ref 0 in
          let seen = ref 0 in
          let flush () =
            if !fill > 0 then begin
              let k = !fill in
              fill := 0;
              apply chunk k
            end
          in
          let emit_word w =
            if !seen >= from && !seen < until then begin
              chunk.(!fill) <- w;
              incr fill;
              if !fill = chunk_words then flush ()
            end;
            incr seen;
            if !seen >= until then begin
              flush ();
              raise Early_stop
            end
          in
          let d = Compress.decoder ~expect:n ~emit:emit_word () in
          let lz_limit = (n * Compress.max_delta_bytes_per_word) + 16 in
          let z =
            Compress.lz_decoder ~limit:lz_limit ~emit:(Compress.decode_byte d)
              ()
          in
          (try
             let left = ref len in
             while !left > 0 do
               let k = min !left 65536 in
               let s = really_input_string ic k in
               Compress.lz_decode_bytes z s ~pos:0 ~len:k;
               left := !left - k
             done;
             Compress.lz_decode_finish z;
             Compress.decode_finish d
           with
          | Compress.Corrupt msg -> bad "%s" msg
          | Early_stop -> ());
          flush ()
        | 3 ->
          let _payload, entries = v3_read_index ic ~file_len ~path ~n in
          let nblocks = Array.length entries in
          (* binary search for the block covering [from] *)
          let first =
            let lo = ref 0 and hi = ref nblocks in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              let e = entries.(mid) in
              if e.e_word_off + v3_entry_words entries ~n mid <= from then
                lo := mid + 1
              else hi := mid
            done;
            !lo
          in
          let k = ref first in
          while
            !k < nblocks && entries.(!k).e_word_off < until
          do
            let e = entries.(!k) in
            let words = v3_read_block ic entries ~n ~path !k in
            let nw = Array.length words in
            (* clip the block to the window, then re-chunk *)
            let lo = max 0 (from - e.e_word_off) in
            let hi = min nw (until - e.e_word_off) in
            let pos = ref lo in
            while !pos < hi do
              let c = min chunk_words (hi - !pos) in
              let slice =
                if !pos = 0 && c = nw then words else Array.sub words !pos c
              in
              apply slice c;
              pos := !pos + c
            done;
            incr k
          done
        | v -> bad "version %d unsupported" v);
        !acc
      with
      | Escape e -> raise e
      | End_of_file -> bad "truncated file"
      | Invalid_argument _ -> bad "malformed header")

(* Parallel block decode.  v3 blocks are self-contained, so they decode
   concurrently on the domain pool; [f] still runs on the calling domain
   in stream order, so the fold is observationally identical to
   {!fold_words} — only the decode is parallel.  Blocks are read and
   decoded in batches of a few per worker, so peak memory is
   O(jobs * block), not O(trace).  v1/v2 files fall back to the
   sequential reader unchanged. *)
let fold_blocks_parallel ?jobs path ~init ~f =
  let jobs =
    match jobs with Some j -> j | None -> Systrace_util.Pool.default_jobs ()
  in
  if jobs <= 0 then
    invalid_arg "Tracefile.fold_blocks_parallel: jobs must be positive";
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let bad fmt =
        Printf.ksprintf (fun m -> raise (Bad_file (path ^ ": " ^ m))) fmt
      in
      try
        let v, n, file_len = read_header ic ~path in
        if v <> 3 then begin
          close_in ic;
          fold_words path ~init ~f
        end
        else begin
          let _payload, entries = v3_read_index ic ~file_len ~path ~n in
          let nblocks = Array.length entries in
          let acc = ref init in
          let apply chunk len =
            match f !acc chunk ~len with
            | a -> acc := a
            | exception e -> raise (Escape e)
          in
          let batch = max 1 (jobs * 2) in
          let k = ref 0 in
          while !k < nblocks do
            let b = min batch (nblocks - !k) in
            (* read the packed bytes sequentially (one channel), decode
               on the pool, then fold in order *)
            let packed =
              List.init b (fun i ->
                  let e = entries.(!k + i) in
                  seek_in ic e.e_file_off;
                  (!k + i, really_input_string ic e.e_len))
            in
            let decoded =
              try
                Systrace_util.Pool.map ~jobs
                  (fun (idx, z) ->
                    let e = entries.(idx) in
                    if Compress.crc32 z <> e.e_crc then
                      raise
                        (Compress.Corrupt
                           (Printf.sprintf "block %d CRC mismatch" idx));
                    v3_decode_block ~codec:e.e_codec
                      ~expect:(v3_entry_words entries ~n idx)
                      z)
                  packed
              with Compress.Corrupt msg -> bad "%s" msg
            in
            List.iter (fun words -> apply words (Array.length words)) decoded;
            k := !k + b
          done;
          !acc
        end
      with
      | Escape e -> raise e
      | End_of_file -> bad "truncated file"
      | Invalid_argument _ -> bad "malformed header")

(* Extract the window [from, until) of a stored trace into a fresh v3
   trace file, decoding only the covering blocks (the `systrace slice`
   back end).  Returns the number of words written. *)
let slice ?from ?until src dst =
  let w = open_writer ~compress:true ~version:3 dst in
  Fun.protect
    ~finally:(fun () -> ignore (close_writer w : int))
    (fun () ->
      fold_words ?from ?until src ~init:() ~f:(fun () words ~len ->
          write w words ~len));
  w.w_words
