(* On-disk trace files.

   The Tunix system "produced a collection of single and multi-task
   user-level traces on tape, which were made available to the community"
   (paper §3.4).  This module is the tape: a captured in-kernel trace is
   written to a host file and can be re-analyzed offline — against the
   paper's design philosophy for LONG traces ("trace analysis that must be
   done off-line against stored traces is unacceptable" for 64MB-a-phase
   volumes), but exactly right for sharing and for replay studies.

   Two formats behind one magic:
     version 1: "STRC", version, word count, words as little-endian 32-bit
     version 2: "STRC", version, word count, compressed byte count, then
                the {!Compress} delta/varint stream
   [load] dispatches on the version, so consumers never care which way a
   trace was dumped.

   Robustness contract (defensive tracing, §4.3, extended to the stored
   form): [load] on ANY byte sequence either returns a word array or
   raises {!Bad_file} — never [End_of_file], [Invalid_argument], or an
   attacker-sized allocation.  Header counts are validated against both a
   hard cap (the same 2^26-word bound as [Compress.decode]) and the actual
   file size before any buffer is allocated.  [save] refuses words outside
   the 32-bit trace-word range instead of silently truncating them through
   [Int32.of_int], so a corrupted in-memory buffer cannot round-trip into
   a "valid" trace file. *)

let magic = "STRC"

exception Bad_file of string

(* Same bound as [Compress.max_decoded_words]: far beyond any real
   capture (the paper's largest kernel buffer is 64 MB = 2^24 words). *)
let max_words = 1 lsl 26

let save ?(compress = false) path (words : int array) =
  Array.iteri
    (fun i w ->
      if w < 0 || w > 0xFFFFFFFF then
        invalid_arg
          (Printf.sprintf
             "Tracefile.save: word %d (0x%x) outside the 32-bit trace-word \
              range"
             i w))
    words;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      if compress then begin
        let payload = Compress.pack words in
        let hdr = Bytes.create 12 in
        Bytes.set_int32_le hdr 0 2l;
        Bytes.set_int32_le hdr 4 (Int32.of_int (Array.length words));
        Bytes.set_int32_le hdr 8 (Int32.of_int (String.length payload));
        output_bytes oc hdr;
        output_string oc payload
      end
      else begin
        let hdr = Bytes.create 8 in
        Bytes.set_int32_le hdr 0 1l;
        Bytes.set_int32_le hdr 4 (Int32.of_int (Array.length words));
        output_bytes oc hdr;
        let buf = Bytes.create (Array.length words * 4) in
        Array.iteri
          (fun i w -> Bytes.set_int32_le buf (i * 4) (Int32.of_int w))
          words;
        output_bytes oc buf
      end)

let load path : int array =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let bad fmt = Printf.ksprintf (fun m -> raise (Bad_file (path ^ ": " ^ m))) fmt in
      try
        let file_len = in_channel_length ic in
        let m = really_input_string ic 4 in
        if m <> magic then bad "not a trace file";
        let hdr = Bytes.create 8 in
        really_input ic hdr 0 8;
        let v = Int32.to_int (Bytes.get_int32_le hdr 0) in
        let n = Int32.to_int (Bytes.get_int32_le hdr 4) in
        if n < 0 then bad "negative length";
        if n > max_words then bad "word count %d exceeds the %d-word cap" n max_words;
        match v with
        | 1 ->
          (* Validate the count against the bytes actually present before
             allocating [n * 4]: a corrupt count must not cost memory. *)
          if file_len - 12 < n * 4 then
            bad "truncated: header claims %d words, file holds %d bytes of \
                 payload"
              n (file_len - 12);
          let buf = Bytes.create (n * 4) in
          really_input ic buf 0 (n * 4);
          Array.init n (fun i ->
              Int32.to_int (Bytes.get_int32_le buf (i * 4)) land 0xFFFFFFFF)
        | 2 ->
          let lenb = Bytes.create 4 in
          really_input ic lenb 0 4;
          let len = Int32.to_int (Bytes.get_int32_le lenb 0) in
          if len < 0 then bad "negative payload";
          if file_len - 16 < len then
            bad "truncated: header claims %d payload bytes, file holds %d" len
              (file_len - 16);
          let payload = really_input_string ic len in
          (try Compress.unpack ~expect:n payload
           with Compress.Corrupt msg -> bad "%s" msg)
        | v -> bad "version %d unsupported" v
      with
      | End_of_file -> bad "truncated file"
      | Invalid_argument _ -> bad "malformed header")
