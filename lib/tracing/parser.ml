(* Trace parsing library.

   Consumes the contents of the in-kernel trace buffer (streamed in chunks,
   one per trace-analysis phase) and reconstructs the exact interleaved
   instruction and data reference stream of the original, uninstrumented
   binaries, using the static basic-block tables.

   Sources and their framing:
     - Kernel trace is written directly into the buffer.  Nested exceptions
       can interrupt a kernel block mid-stream; the uninstrumented exception
       stubs bracket the nested activity with EXC_ENTER/EXC_EXIT markers and
       the parser keeps a stack of in-progress blocks (paper, section 3.3:
       "the trace-analysis system must correctly handle situations when
       arbitrary kernel activity is interrupted by an exception").
     - User trace arrives in DRAIN blocks copied from per-process buffers
       whenever the kernel is entered.  A process's block can be split
       across drains (an exception can land between two memory references),
       so per-pid parse state persists across drains.

   Defensive tracing (paper, section 4.3): every block record must exist in
   the static table of the right address space; data words must arrive
   exactly where the static record promises memory references.  Violations
   are surfaced two ways:
     - strict mode (the default) raises [Corrupt] with the offending word
       and position, discarding the rest of the phase — right for traces
       that are supposed to be pristine;
     - recovery mode ([create ~recover:true]) builds a structured {!error}
       (word index, source, expected vs got, enclosing drain/exception
       state), reports it through the [on_error] callback, abandons the
       suspect source state, resynchronizes at the next marker word (the
       only words identifiable without parser state, since they live in a
       reserved address slice), counts the skipped words per source, and
       keeps parsing — one bad word no longer discards a whole
       trace-analysis phase.

   The word loop is the innermost loop of every reconstruct-and-feed-memsim
   experiment, so [feed] is allocation-free: open blocks are tracked with
   a sentinel entry instead of an [option], block records are looked up
   with the non-allocating [Bbtable.find_exn], the innermost kernel source
   is cached in a mutable field instead of read through the exception
   stack, and marker words are dispatched on their raw kind field without
   building a [Format_.marker] value.  There used to be a second,
   variant-based "debug" word loop selected by [create ~debug:true ()];
   markers are a fraction of a percent of any real trace (38 in the 68k
   egrep capture), so the two paths were indistinguishable in benchmarks
   and the duplicate was folded away — the variant dispatch survives as a
   qcheck oracle in the test suite, checked equivalent to the raw-kind
   dispatch over every marker word. *)

exception Corrupt of string

(* Where a trace word was attributed when a violation fired. *)
type source =
  | Kernel of int  (* exception-nesting depth, 0 = base level *)
  | User of int    (* pid *)
  | Stream         (* framing: markers, drain counts, END *)

type error = {
  at : int;          (* word index in the whole fed stream *)
  source : source;
  expected : string; (* what the format promised at this point *)
  got : int;         (* the offending word (or pid for drain errors) *)
  in_drain : int;    (* enclosing drain's pid, -1 when outside a drain *)
  exc_depth : int;   (* kernel exception-nesting depth at the violation *)
  message : string;  (* the strict-mode [Corrupt] message *)
}

(* Internal: recovery mode throws the structured record to the word loop,
   which logs it and resynchronizes; strict mode raises [Corrupt]
   directly from the check site (zero cost on the hot path). *)
exception Parse_error of error

let source_name = function
  | Kernel d -> Printf.sprintf "kernel (exc depth %d)" d
  | User pid -> Printf.sprintf "pid %d" pid
  | Stream -> "stream framing"

let describe e =
  Printf.sprintf "%s [source: %s; expected %s; got 0x%x%s]" e.message
    (source_name e.source) e.expected e.got
    (if e.in_drain >= 0 then Printf.sprintf "; inside drain for pid %d" e.in_drain
     else "")

type handlers = {
  on_inst : int -> int -> bool -> unit;
  (* addr, pid, kernel *)
  on_data : int -> int -> bool -> bool -> int -> unit;
  (* addr, pid, kernel, is_load, bytes *)
}

let null_handlers = { on_inst = (fun _ _ _ -> ()); on_data = (fun _ _ _ _ _ -> ()) }

type stats = {
  mutable words : int;
  mutable bb_records : int;
  mutable markers : int;
  mutable insts : int;
  mutable user_insts : int;
  mutable kernel_insts : int;
  mutable datas : int;
  mutable user_datas : int;
  mutable kernel_datas : int;
  mutable idle_insts : int;
  mutable drains : int;
  mutable pid_switches : int;
  mutable exc_markers : int;
  mutable max_exc_depth : int;
  mutable mode_transitions : int;
  mutable analysis_mode_words : int;  (* "dirt" indicator *)
  mutable ended : bool;
  mutable parse_errors : int;    (* diagnoses recorded in recovery mode *)
  mutable skipped_words : int;   (* words discarded while resynchronizing *)
}

let fresh_stats () =
  {
    words = 0;
    bb_records = 0;
    markers = 0;
    insts = 0;
    user_insts = 0;
    kernel_insts = 0;
    datas = 0;
    user_datas = 0;
    kernel_datas = 0;
    idle_insts = 0;
    drains = 0;
    pid_switches = 0;
    exc_markers = 0;
    max_exc_depth = 0;
    mode_transitions = 0;
    analysis_mode_words = 0;
    ended = false;
    parse_errors = 0;
    skipped_words = 0;
  }

(* Sentinel for "no block open" — compared with physical equality so the
   hot loop never allocates or matches an [option]. *)
let no_entry : Bbtable.entry =
  { Bbtable.orig_addr = -1; ninsns = 0; mems = [||]; flags = 0 }

(* Parse state of one trace source (the kernel at one exception-nesting
   level, or one user process). *)
type src = {
  mutable entry : Bbtable.entry;  (* == [no_entry] when no block is open *)
  mutable next_pos : int;      (* next instruction position to emit *)
  mutable mem_idx : int;       (* next memory reference index *)
}

let fresh_src () = { entry = no_entry; next_pos = 0; mem_idx = 0 }

type t = {
  kernel_bbs : Bbtable.t;
  user_bbs : (int, Bbtable.t) Hashtbl.t;   (* pid -> table *)
  mutable kernel_stack : src list;          (* innermost first *)
  mutable kernel_top : src;                 (* == List.hd kernel_stack *)
  users : (int, src) Hashtbl.t;
  mutable cur_pid : int;
  mutable mode : int;
  mutable h : handlers;
  s : stats;
  (* drain framing *)
  mutable drain_pid : int;      (* -1 = not in a drain *)
  mutable drain_left : int;     (* -2: expecting count word *)
  (* recovery mode *)
  recover : bool;
  on_error : error -> unit;
  mutable errors_rev : error list;
  skipped : (source, int) Hashtbl.t;
  mutable resync : bool;        (* discarding words until the next marker *)
  mutable resync_source : source;
}

let create ?(recover = false) ?(on_error = fun (_ : error) -> ())
    ~kernel_bbs () =
  let base = fresh_src () in
  {
    kernel_bbs;
    user_bbs = Hashtbl.create 8;
    kernel_stack = [ base ];
    kernel_top = base;
    users = Hashtbl.create 8;
    cur_pid = -1;
    mode = 0;
    h = null_handlers;
    s = fresh_stats ();
    drain_pid = -1;
    drain_left = 0;
    recover;
    on_error;
    errors_rev = [];
    skipped = Hashtbl.create 8;
    resync = false;
    resync_source = Stream;
  }

let set_handlers t h = t.h <- h

let register_pid t ~pid bbs = Hashtbl.replace t.user_bbs pid bbs

let stats t = t.s

let errors t = List.rev t.errors_rev

let skipped t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.skipped [])

(* ------------------------------------------------------------------ *)
(* Failure sites                                                       *)

let fail t ~at ~source ~expected ~got fmt =
  Printf.ksprintf
    (fun message ->
      if not t.recover then raise (Corrupt message)
      else
        raise
          (Parse_error
             {
               at;
               source;
               expected;
               got;
               in_drain = t.drain_pid;
               exc_depth = List.length t.kernel_stack - 1;
               message;
             }))
    fmt

let src_of t ~kernel ~pid =
  if kernel then Kernel (List.length t.kernel_stack - 1) else User pid

(* ------------------------------------------------------------------ *)
(* Core block machinery, shared by both paths                          *)

let emit_inst t ~kernel ~pid addr =
  t.s.insts <- t.s.insts + 1;
  if kernel then t.s.kernel_insts <- t.s.kernel_insts + 1
  else t.s.user_insts <- t.s.user_insts + 1;
  t.h.on_inst addr pid kernel

let emit_data t ~kernel ~pid ~is_load ~bytes addr =
  t.s.datas <- t.s.datas + 1;
  if kernel then t.s.kernel_datas <- t.s.kernel_datas + 1
  else t.s.user_datas <- t.s.user_datas + 1;
  t.h.on_data addr pid kernel is_load bytes

(* Emit instruction fetches of the current block up to and including
   position [upto]. *)
let emit_insts_upto t src ~kernel ~pid upto =
  let e = src.entry in
  if e != no_entry then
    while src.next_pos <= upto do
      emit_inst t ~kernel ~pid (e.Bbtable.orig_addr + (src.next_pos * 4));
      src.next_pos <- src.next_pos + 1
    done

(* If all memory references of the current block have been consumed, emit
   its trailing instructions and close it. *)
let maybe_finish_block t src ~kernel ~pid =
  let e = src.entry in
  if e != no_entry && src.mem_idx >= Array.length e.Bbtable.mems then begin
    emit_insts_upto t src ~kernel ~pid (e.Bbtable.ninsns - 1);
    src.entry <- no_entry
  end

let open_entry t src ~kernel ~pid e =
  t.s.bb_records <- t.s.bb_records + 1;
  if Bbtable.is_idle e then t.s.idle_insts <- t.s.idle_insts + e.Bbtable.ninsns;
  src.entry <- e;
  src.next_pos <- 0;
  src.mem_idx <- 0;
  maybe_finish_block t src ~kernel ~pid

let feed_bb_record t src ~kernel ~pid ~table ~idx w =
  let cur = src.entry in
  if cur != no_entry then
    fail t ~at:idx ~source:(src_of t ~kernel ~pid)
      ~expected:
        (Printf.sprintf "%d more data words of block 0x%x"
           (Array.length cur.Bbtable.mems - src.mem_idx)
           cur.Bbtable.orig_addr)
      ~got:w
      "word %d: block record 0x%x while block at 0x%x still expects %d data \
       words"
      idx w cur.Bbtable.orig_addr
      (Array.length cur.Bbtable.mems - src.mem_idx);
  match Bbtable.find_exn table w with
  | e -> open_entry t src ~kernel ~pid e
  | exception Not_found ->
    fail t ~at:idx ~source:(src_of t ~kernel ~pid)
      ~expected:"a basic-block record of this address space" ~got:w
      "word %d: 0x%x is not a basic-block record of this address space" idx w

let feed_data_word t src ~kernel ~pid ~idx w =
  let e = src.entry in
  if e == no_entry then
    fail t ~at:idx ~source:(src_of t ~kernel ~pid)
      ~expected:"an open basic block" ~got:w
      "word %d: data address 0x%x with no open basic block" idx w;
  let pos, bytes, is_load = e.Bbtable.mems.(src.mem_idx) in
  emit_insts_upto t src ~kernel ~pid pos;
  emit_data t ~kernel ~pid ~is_load ~bytes w;
  src.mem_idx <- src.mem_idx + 1;
  maybe_finish_block t src ~kernel ~pid

(* A word belonging to the kernel's own stream.  [t.kernel_top] caches
   the head of [kernel_stack] so the per-word path does no list access. *)
let feed_kernel_word t ~idx w =
  let src = t.kernel_top in
  (* A kernel block record is a kseg0 text address present in the kernel
     table; anything else is a data address.  A kernel data address could
     in principle collide with a block-record address; the kernel table is
     consulted only when no block is open, and blocks never reference their
     own record addresses with loads in practice.  The expected-count check
     still catches any residual ambiguity. *)
  if src.entry != no_entry then
    feed_data_word t src ~kernel:true ~pid:t.cur_pid ~idx w
  else
    feed_bb_record t src ~kernel:true ~pid:t.cur_pid ~table:t.kernel_bbs ~idx w

let user_src t pid =
  match Hashtbl.find_opt t.users pid with
  | Some s -> s
  | None ->
    let s = fresh_src () in
    Hashtbl.replace t.users pid s;
    s

let feed_user_word t ~idx w =
  let pid = t.drain_pid in
  let src = user_src t pid in
  if src.entry != no_entry then feed_data_word t src ~kernel:false ~pid ~idx w
  else
    match Hashtbl.find_opt t.user_bbs pid with
    | None ->
      fail t ~at:idx ~source:(User pid)
        ~expected:"a drain for a registered pid" ~got:w
        "word %d: drain for unregistered pid %d" idx pid
    | Some table -> feed_bb_record t src ~kernel:false ~pid ~table ~idx w

(* ------------------------------------------------------------------ *)
(* Marker dispatch: shared bodies                                      *)

let on_pid_switch t p =
  t.s.pid_switches <- t.s.pid_switches + 1;
  t.cur_pid <- p

let on_drain t p =
  t.s.drains <- t.s.drains + 1;
  t.drain_pid <- p;
  t.drain_left <- -2 (* count word follows *)

let on_exc_enter t =
  t.s.exc_markers <- t.s.exc_markers + 1;
  let top = fresh_src () in
  t.kernel_stack <- top :: t.kernel_stack;
  t.kernel_top <- top;
  t.s.max_exc_depth <- max t.s.max_exc_depth (List.length t.kernel_stack - 1)

(* The EXC_EXIT marker word, for [error.got]. *)
let w_of_exit = Format_.make_marker Format_.kind_exc_exit 0

let on_exc_exit t ~idx =
  t.s.exc_markers <- t.s.exc_markers + 1;
  match t.kernel_stack with
  | top :: (outer :: _ as rest) ->
    if top.entry != no_entry then
      fail t ~at:idx
        ~source:(Kernel (List.length t.kernel_stack - 1))
        ~expected:"a completed kernel block before EXC_EXIT" ~got:w_of_exit
        "word %d: exception exit with kernel block 0x%x still open" idx
        top.entry.Bbtable.orig_addr;
    t.kernel_stack <- rest;
    t.kernel_top <- outer
  | _ ->
    fail t ~at:idx ~source:Stream ~expected:"a matching EXC_ENTER"
      ~got:w_of_exit "word %d: exception exit at depth 0" idx

let on_mode t m =
  t.s.mode_transitions <- t.s.mode_transitions + 1;
  t.mode <- m

(* Marker dispatch on the raw kind field (no variant allocation).  The
   test suite holds this equivalent to a [Format_.decode_marker]-based
   oracle over every marker word. *)
let feed_marker t ~idx w =
  t.s.markers <- t.s.markers + 1;
  let kind = Format_.marker_kind w in
  if kind = Format_.kind_pid then on_pid_switch t (Format_.marker_arg w)
  else if kind = Format_.kind_drain then on_drain t (Format_.marker_arg w)
  else if kind = Format_.kind_exc_enter then on_exc_enter t
  else if kind = Format_.kind_exc_exit then on_exc_exit t ~idx
  else if kind = Format_.kind_mode then on_mode t (Format_.marker_arg w)
  else if kind = Format_.kind_onoff then ()
  else if kind = Format_.kind_thread then ()
  else if kind = Format_.kind_end then t.s.ended <- true
  else raise (Format_.Bad_marker w)

(* ------------------------------------------------------------------ *)
(* Word loop                                                           *)

let feed_word t ~idx w =
  t.s.words <- t.s.words + 1;
  if t.s.ended then
    fail t ~at:idx ~source:Stream ~expected:"no words after the END marker"
      ~got:w "word %d: trace continues after END marker" idx;
  if t.mode = 1 then t.s.analysis_mode_words <- t.s.analysis_mode_words + 1;
  if t.drain_left = -2 then begin
    (* The word after a DRAIN marker is the payload count. *)
    if w < 0 || w > 1 lsl 24 then
      fail t ~at:idx ~source:(User t.drain_pid)
        ~expected:"a drain payload count below 2^24" ~got:w
        "word %d: implausible drain count %d" idx w;
    t.drain_left <- w;
    (* An empty drain carries no payload: close the drain immediately so
       its pid does not linger in later diagnoses. *)
    if w = 0 then t.drain_pid <- -1
  end
  else if t.drain_left > 0 then begin
    t.drain_left <- t.drain_left - 1;
    if Format_.is_marker w then
      fail t ~at:idx ~source:(User t.drain_pid)
        ~expected:"user words inside the drain payload" ~got:w
        "word %d: marker 0x%x inside a drain block" idx w;
    if not (Format_.is_user_addr w) then
      fail t ~at:idx ~source:(User t.drain_pid)
        ~expected:"user-space addresses inside the drain payload" ~got:w
        "word %d: kernel address 0x%x inside a user drain block" idx w;
    feed_user_word t ~idx w;
    if t.drain_left = 0 then t.drain_pid <- -1
  end
  else if Format_.is_marker w then feed_marker t ~idx w
  else feed_kernel_word t ~idx w

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

let record_error t e =
  t.s.parse_errors <- t.s.parse_errors + 1;
  t.errors_rev <- e :: t.errors_rev;
  t.on_error e

let bump_skip t source n =
  Hashtbl.replace t.skipped source
    (n + Option.value ~default:0 (Hashtbl.find_opt t.skipped source))

let reset_source t = function
  | Kernel _ -> t.kernel_top.entry <- no_entry
  | User pid -> (
    match Hashtbl.find_opt t.users pid with
    | Some src -> src.entry <- no_entry
    | None -> ())
  | Stream -> ()

(* A diagnosis invalidates everything the parser believed about the
   offending source and the current framing: drop the open block, abandon
   the drain, and discard words until the next marker — the only words
   identifiable without parser state (they live in a reserved kseg1
   slice no data reference can produce). *)
let recover_from t e =
  record_error t e;
  t.s.skipped_words <- t.s.skipped_words + 1;  (* the offending word *)
  bump_skip t e.source 1;
  reset_source t e.source;
  t.drain_left <- 0;
  t.drain_pid <- -1;
  t.resync <- true;
  t.resync_source <- e.source

let is_resync_point w =
  Format_.is_marker w && Format_.marker_kind w <= Format_.kind_end

let rec feed_word_recovering t ~idx w =
  if t.resync then
    if is_resync_point w then begin
      t.resync <- false;
      feed_word_recovering t ~idx w
    end
    else begin
      t.s.words <- t.s.words + 1;
      t.s.skipped_words <- t.s.skipped_words + 1;
      bump_skip t t.resync_source 1
    end
  else
    try feed_word t ~idx w with
    | Parse_error e -> recover_from t e
    | Format_.Bad_marker bw ->
      recover_from t
        {
          at = idx;
          source = Stream;
          expected = "a marker kind the format defines";
          got = bw;
          in_drain = t.drain_pid;
          exc_depth = List.length t.kernel_stack - 1;
          message =
            Printf.sprintf "word %d: unknown marker kind in 0x%x" idx bw;
        }

(* Feed a chunk of trace (one trace-analysis phase's worth). *)
let feed t words ~len =
  if len < 0 || len > Array.length words then
    invalid_arg "Parser.feed: len outside the chunk";
  let base = t.s.words in
  if t.recover then
    for k = 0 to len - 1 do
      feed_word_recovering t ~idx:(base + k) (Array.unsafe_get words k)
    done
  else
    for k = 0 to len - 1 do
      feed_word t ~idx:(base + k) (Array.unsafe_get words k)
    done

(* End-of-run checks: every source must have completed its last block.
   Processes listed in [live] are allowed an incomplete block: a process
   that never exits (e.g. a server blocked in receive) legitimately stops
   mid-block when the machine halts.  In recovery mode the violations are
   recorded as diagnoses instead of raised. *)
let finish ?(live = []) t =
  let flag ~source ~expected ~got fmt =
    Printf.ksprintf
      (fun message ->
        if not t.recover then raise (Corrupt message)
        else
          record_error t
            {
              at = t.s.words;
              source;
              expected;
              got;
              in_drain = t.drain_pid;
              exc_depth = List.length t.kernel_stack - 1;
              message;
            })
      fmt
  in
  if t.drain_left > 0 || t.drain_left = -2 then
    flag ~source:(User t.drain_pid) ~expected:"a complete drain payload"
      ~got:t.drain_left "finish: drain for pid %d truncated (%s)" t.drain_pid
      (if t.drain_left = -2 then "count word missing"
       else Printf.sprintf "%d payload words missing" t.drain_left);
  (match t.kernel_stack with
  | [ top ] ->
    if top.entry != no_entry then
      flag ~source:(Kernel 0)
        ~expected:"a completed kernel block at end of trace"
        ~got:top.entry.Bbtable.orig_addr "finish: kernel block 0x%x incomplete"
        top.entry.Bbtable.orig_addr
  | stack ->
    flag
      ~source:(Kernel (List.length stack - 1))
      ~expected:"exception depth 0 at end of trace"
      ~got:(List.length stack - 1) "finish: exception depth %d at end of trace"
      (List.length stack - 1));
  Hashtbl.iter
    (fun pid src ->
      if src.entry != no_entry && not (List.mem pid live) then
        flag ~source:(User pid)
          ~expected:"a completed user block at end of trace"
          ~got:src.entry.Bbtable.orig_addr "finish: pid %d block 0x%x incomplete"
          pid src.entry.Bbtable.orig_addr)
    t.users

(* ------------------------------------------------------------------ *)
(* Structural scan                                                     *)

(* Table-free validation of a stored trace: everything that can be checked
   about the word stream without the static block tables — marker kinds,
   drain framing, exception bracketing, END placement.  Used by
   `systrace check` on traces whose binaries are not at hand.  The scan
   never raises; it reports every violation it can see and keeps going
   (re-deriving the framing optimistically after each one).

   The scanner is a persistent state machine fed one chunk at a time so
   `systrace check` can stream a stored trace through [Tracefile.fold_words]
   in bounded memory; {!scan} is the whole-array wrapper.  The carried
   state is exactly what the per-word logic threads between words — drain
   framing, exception depth, END position — so chunking cannot change the
   diagnoses. *)

type scanner = {
  mutable c_errs : error list;  (* newest first *)
  mutable c_drain_pid : int;
  mutable c_drain_left : int;
  mutable c_depth : int;
  mutable c_ended_at : int;
  mutable c_flagged_after_end : bool;
  mutable c_words : int;  (* words scanned so far, = next word's index *)
}

let scanner () =
  {
    c_errs = [];
    c_drain_pid = -1;
    c_drain_left = 0;
    c_depth = 0;
    c_ended_at = -1;
    c_flagged_after_end = false;
    c_words = 0;
  }

let scan_add c ~at ~source ~expected ~got message =
  c.c_errs <-
    {
      at;
      source;
      expected;
      got;
      in_drain = c.c_drain_pid;
      exc_depth = c.c_depth;
      message;
    }
    :: c.c_errs

let scan_word c w =
  let i = c.c_words in
  c.c_words <- i + 1;
  if c.c_ended_at >= 0 then begin
    if not c.c_flagged_after_end then begin
      scan_add c ~at:i ~source:Stream
        ~expected:"no words after the END marker" ~got:w
        (Printf.sprintf "word %d: trace continues after END marker (at word %d)"
           i c.c_ended_at);
      c.c_flagged_after_end <- true
    end
  end
  else if c.c_drain_left = -2 then begin
    if w < 0 || w > 1 lsl 24 then begin
      scan_add c ~at:i ~source:(User c.c_drain_pid)
        ~expected:"a drain payload count below 2^24" ~got:w
        (Printf.sprintf "word %d: implausible drain count %d" i w);
      c.c_drain_left <- 0;
      c.c_drain_pid <- -1
    end
    else begin
      c.c_drain_left <- w;
      if w = 0 then c.c_drain_pid <- -1
    end
  end
  else if c.c_drain_left > 0 then begin
    c.c_drain_left <- c.c_drain_left - 1;
    if Format_.is_marker w then
      scan_add c ~at:i ~source:(User c.c_drain_pid)
        ~expected:"user words inside the drain payload" ~got:w
        (Printf.sprintf "word %d: marker 0x%x inside a drain block" i w)
    else if not (Format_.is_user_addr w) then
      scan_add c ~at:i ~source:(User c.c_drain_pid)
        ~expected:"user-space addresses inside the drain payload" ~got:w
        (Printf.sprintf "word %d: kernel address 0x%x inside a user drain \
                         block" i w);
    if c.c_drain_left = 0 then c.c_drain_pid <- -1
  end
  else if Format_.is_marker w then begin
    let kind = Format_.marker_kind w in
    if kind > Format_.kind_end then
      scan_add c ~at:i ~source:Stream
        ~expected:"a marker kind the format defines" ~got:w
        (Printf.sprintf "word %d: unknown marker kind in 0x%x" i w)
    else if kind = Format_.kind_drain then begin
      c.c_drain_pid <- Format_.marker_arg w;
      c.c_drain_left <- -2
    end
    else if kind = Format_.kind_exc_enter then c.c_depth <- c.c_depth + 1
    else if kind = Format_.kind_exc_exit then begin
      if c.c_depth = 0 then
        scan_add c ~at:i ~source:Stream ~expected:"a matching EXC_ENTER" ~got:w
          (Printf.sprintf "word %d: exception exit at depth 0" i)
      else c.c_depth <- c.c_depth - 1
    end
    else if kind = Format_.kind_end then c.c_ended_at <- i
  end

let scan_feed c (words : int array) ~len =
  for k = 0 to len - 1 do
    scan_word c words.(k)
  done

let scan_finish c : error list =
  let n = c.c_words in
  if c.c_drain_left > 0 || c.c_drain_left = -2 then
    scan_add c ~at:n ~source:(User c.c_drain_pid)
      ~expected:"a complete drain payload" ~got:c.c_drain_left
      (Printf.sprintf "end of trace: drain for pid %d truncated (%s)"
         c.c_drain_pid
         (if c.c_drain_left = -2 then "count word missing"
          else Printf.sprintf "%d payload words missing" c.c_drain_left));
  if c.c_depth > 0 then
    scan_add c ~at:n ~source:(Kernel c.c_depth)
      ~expected:"exception depth 0 at end of trace" ~got:c.c_depth
      (Printf.sprintf "end of trace: %d exception level(s) never exited"
         c.c_depth);
  List.rev c.c_errs

let scan (words : int array) : error list =
  let c = scanner () in
  scan_feed c words ~len:(Array.length words);
  scan_finish c
