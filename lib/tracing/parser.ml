(* Trace parsing library.

   Consumes the contents of the in-kernel trace buffer (streamed in chunks,
   one per trace-analysis phase) and reconstructs the exact interleaved
   instruction and data reference stream of the original, uninstrumented
   binaries, using the static basic-block tables.

   Sources and their framing:
     - Kernel trace is written directly into the buffer.  Nested exceptions
       can interrupt a kernel block mid-stream; the uninstrumented exception
       stubs bracket the nested activity with EXC_ENTER/EXC_EXIT markers and
       the parser keeps a stack of in-progress blocks (paper, section 3.3:
       "the trace-analysis system must correctly handle situations when
       arbitrary kernel activity is interrupted by an exception").
     - User trace arrives in DRAIN blocks copied from per-process buffers
       whenever the kernel is entered.  A process's block can be split
       across drains (an exception can land between two memory references),
       so per-pid parse state persists across drains.

   Defensive tracing (paper, section 4.3): every block record must exist in
   the static table of the right address space; data words must arrive
   exactly where the static record promises memory references; violations
   raise [Corrupt] with the offending word and position.

   The word loop is the innermost loop of every reconstruct-and-feed-memsim
   experiment, so [feed] runs an allocation-free fast path by default: open
   blocks are tracked with a sentinel entry instead of an [option], block
   records are looked up with the non-allocating [Bbtable.find_exn], and
   marker words are dispatched on their raw kind field without building a
   [Format_.marker] value.  The variant-based path is kept as the
   slow/debug reference ([create ~debug:true ()]), and a qcheck property
   holds the two equivalent on arbitrary valid and corrupted traces. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type handlers = {
  on_inst : int -> int -> bool -> unit;
  (* addr, pid, kernel *)
  on_data : int -> int -> bool -> bool -> int -> unit;
  (* addr, pid, kernel, is_load, bytes *)
}

let null_handlers = { on_inst = (fun _ _ _ -> ()); on_data = (fun _ _ _ _ _ -> ()) }

type stats = {
  mutable words : int;
  mutable bb_records : int;
  mutable markers : int;
  mutable insts : int;
  mutable user_insts : int;
  mutable kernel_insts : int;
  mutable datas : int;
  mutable user_datas : int;
  mutable kernel_datas : int;
  mutable idle_insts : int;
  mutable drains : int;
  mutable pid_switches : int;
  mutable exc_markers : int;
  mutable max_exc_depth : int;
  mutable mode_transitions : int;
  mutable analysis_mode_words : int;  (* "dirt" indicator *)
  mutable ended : bool;
}

let fresh_stats () =
  {
    words = 0;
    bb_records = 0;
    markers = 0;
    insts = 0;
    user_insts = 0;
    kernel_insts = 0;
    datas = 0;
    user_datas = 0;
    kernel_datas = 0;
    idle_insts = 0;
    drains = 0;
    pid_switches = 0;
    exc_markers = 0;
    max_exc_depth = 0;
    mode_transitions = 0;
    analysis_mode_words = 0;
    ended = false;
  }

(* Sentinel for "no block open" — compared with physical equality so the
   hot loop never allocates or matches an [option]. *)
let no_entry : Bbtable.entry =
  { Bbtable.orig_addr = -1; ninsns = 0; mems = [||]; flags = 0 }

(* Parse state of one trace source (the kernel at one exception-nesting
   level, or one user process). *)
type src = {
  mutable entry : Bbtable.entry;  (* == [no_entry] when no block is open *)
  mutable next_pos : int;      (* next instruction position to emit *)
  mutable mem_idx : int;       (* next memory reference index *)
}

let fresh_src () = { entry = no_entry; next_pos = 0; mem_idx = 0 }

type t = {
  kernel_bbs : Bbtable.t;
  user_bbs : (int, Bbtable.t) Hashtbl.t;   (* pid -> table *)
  mutable kernel_stack : src list;          (* innermost first *)
  users : (int, src) Hashtbl.t;
  mutable cur_pid : int;
  mutable mode : int;
  mutable h : handlers;
  s : stats;
  debug : bool;                 (* variant-based reference path *)
  (* drain framing *)
  mutable drain_pid : int;      (* -1 = not in a drain *)
  mutable drain_left : int;     (* -2: expecting count word *)
}

let create ?(debug = false) ~kernel_bbs () =
  {
    kernel_bbs;
    user_bbs = Hashtbl.create 8;
    kernel_stack = [ fresh_src () ];
    users = Hashtbl.create 8;
    cur_pid = -1;
    mode = 0;
    h = null_handlers;
    s = fresh_stats ();
    debug;
    drain_pid = -1;
    drain_left = 0;
  }

let set_handlers t h = t.h <- h

let register_pid t ~pid bbs = Hashtbl.replace t.user_bbs pid bbs

let stats t = t.s

(* ------------------------------------------------------------------ *)
(* Core block machinery, shared by both paths                          *)

let emit_inst t ~kernel ~pid addr =
  t.s.insts <- t.s.insts + 1;
  if kernel then t.s.kernel_insts <- t.s.kernel_insts + 1
  else t.s.user_insts <- t.s.user_insts + 1;
  t.h.on_inst addr pid kernel

let emit_data t ~kernel ~pid ~is_load ~bytes addr =
  t.s.datas <- t.s.datas + 1;
  if kernel then t.s.kernel_datas <- t.s.kernel_datas + 1
  else t.s.user_datas <- t.s.user_datas + 1;
  t.h.on_data addr pid kernel is_load bytes

(* Emit instruction fetches of the current block up to and including
   position [upto]. *)
let emit_insts_upto t src ~kernel ~pid upto =
  let e = src.entry in
  if e != no_entry then
    while src.next_pos <= upto do
      emit_inst t ~kernel ~pid (e.Bbtable.orig_addr + (src.next_pos * 4));
      src.next_pos <- src.next_pos + 1
    done

(* If all memory references of the current block have been consumed, emit
   its trailing instructions and close it. *)
let maybe_finish_block t src ~kernel ~pid =
  let e = src.entry in
  if e != no_entry && src.mem_idx >= Array.length e.Bbtable.mems then begin
    emit_insts_upto t src ~kernel ~pid (e.Bbtable.ninsns - 1);
    src.entry <- no_entry
  end

let open_entry t src ~kernel ~pid e =
  t.s.bb_records <- t.s.bb_records + 1;
  if Bbtable.is_idle e then t.s.idle_insts <- t.s.idle_insts + e.Bbtable.ninsns;
  src.entry <- e;
  src.next_pos <- 0;
  src.mem_idx <- 0;
  maybe_finish_block t src ~kernel ~pid

let feed_bb_record t src ~kernel ~pid ~table ~idx w =
  let cur = src.entry in
  if cur != no_entry then
    corrupt
      "word %d: block record 0x%x while block at 0x%x still expects %d data \
       words"
      idx w cur.Bbtable.orig_addr
      (Array.length cur.Bbtable.mems - src.mem_idx);
  match Bbtable.find_exn table w with
  | e -> open_entry t src ~kernel ~pid e
  | exception Not_found ->
    corrupt "word %d: 0x%x is not a basic-block record of this address space"
      idx w

let feed_data_word t src ~kernel ~pid ~idx w =
  let e = src.entry in
  if e == no_entry then
    corrupt "word %d: data address 0x%x with no open basic block" idx w;
  let pos, bytes, is_load = e.Bbtable.mems.(src.mem_idx) in
  emit_insts_upto t src ~kernel ~pid pos;
  emit_data t ~kernel ~pid ~is_load ~bytes w;
  src.mem_idx <- src.mem_idx + 1;
  maybe_finish_block t src ~kernel ~pid

(* A word belonging to the kernel's own stream. *)
let feed_kernel_word t ~idx w =
  let src = List.hd t.kernel_stack in
  (* A kernel block record is a kseg0 text address present in the kernel
     table; anything else is a data address.  A kernel data address could
     in principle collide with a block-record address; the kernel table is
     consulted only when no block is open, and blocks never reference their
     own record addresses with loads in practice.  The expected-count check
     still catches any residual ambiguity. *)
  if src.entry != no_entry then
    feed_data_word t src ~kernel:true ~pid:t.cur_pid ~idx w
  else
    feed_bb_record t src ~kernel:true ~pid:t.cur_pid ~table:t.kernel_bbs ~idx w

let user_src t pid =
  match Hashtbl.find_opt t.users pid with
  | Some s -> s
  | None ->
    let s = fresh_src () in
    Hashtbl.replace t.users pid s;
    s

let feed_user_word t ~idx w =
  let pid = t.drain_pid in
  let src = user_src t pid in
  if src.entry != no_entry then feed_data_word t src ~kernel:false ~pid ~idx w
  else
    match Hashtbl.find_opt t.user_bbs pid with
    | None -> corrupt "word %d: drain for unregistered pid %d" idx pid
    | Some table -> feed_bb_record t src ~kernel:false ~pid ~table ~idx w

(* ------------------------------------------------------------------ *)
(* Marker dispatch: shared bodies                                      *)

let on_pid_switch t p =
  t.s.pid_switches <- t.s.pid_switches + 1;
  t.cur_pid <- p

let on_drain t p =
  t.s.drains <- t.s.drains + 1;
  t.drain_pid <- p;
  t.drain_left <- -2 (* count word follows *)

let on_exc_enter t =
  t.s.exc_markers <- t.s.exc_markers + 1;
  t.kernel_stack <- fresh_src () :: t.kernel_stack;
  t.s.max_exc_depth <- max t.s.max_exc_depth (List.length t.kernel_stack - 1)

let on_exc_exit t ~idx =
  t.s.exc_markers <- t.s.exc_markers + 1;
  match t.kernel_stack with
  | top :: (_ :: _ as rest) ->
    if top.entry != no_entry then
      corrupt "word %d: exception exit with kernel block 0x%x still open" idx
        top.entry.Bbtable.orig_addr;
    t.kernel_stack <- rest
  | _ -> corrupt "word %d: exception exit at depth 0" idx

let on_mode t m =
  t.s.mode_transitions <- t.s.mode_transitions + 1;
  t.mode <- m

(* Slow/debug marker dispatch through the variant API. *)
let feed_marker t ~idx w =
  t.s.markers <- t.s.markers + 1;
  match Format_.decode_marker w with
  | Format_.Pid_switch p -> on_pid_switch t p
  | Format_.Drain p -> on_drain t p
  | Format_.Exc_enter _ -> on_exc_enter t
  | Format_.Exc_exit -> on_exc_exit t ~idx
  | Format_.Mode m -> on_mode t m
  | Format_.Trace_onoff _ -> ()
  | Format_.Thread_switch _ -> ()
  | Format_.End -> t.s.ended <- true

(* Fast marker dispatch on the raw kind field (no variant). *)
let feed_marker_fast t ~idx w =
  t.s.markers <- t.s.markers + 1;
  let kind = Format_.marker_kind w in
  if kind = Format_.kind_pid then on_pid_switch t (Format_.marker_arg w)
  else if kind = Format_.kind_drain then on_drain t (Format_.marker_arg w)
  else if kind = Format_.kind_exc_enter then on_exc_enter t
  else if kind = Format_.kind_exc_exit then on_exc_exit t ~idx
  else if kind = Format_.kind_mode then on_mode t (Format_.marker_arg w)
  else if kind = Format_.kind_onoff then ()
  else if kind = Format_.kind_thread then ()
  else if kind = Format_.kind_end then t.s.ended <- true
  else raise (Format_.Bad_marker w)

(* ------------------------------------------------------------------ *)
(* Word loop                                                           *)

let feed_word t ~feed_marker ~idx w =
  t.s.words <- t.s.words + 1;
  if t.s.ended then corrupt "word %d: trace continues after END marker" idx;
  if t.mode = 1 then t.s.analysis_mode_words <- t.s.analysis_mode_words + 1;
  if t.drain_left = -2 then begin
    (* The word after a DRAIN marker is the payload count. *)
    if w < 0 || w > 1 lsl 24 then
      corrupt "word %d: implausible drain count %d" idx w;
    t.drain_left <- w
  end
  else if t.drain_left > 0 then begin
    t.drain_left <- t.drain_left - 1;
    if Format_.is_marker w then
      corrupt "word %d: marker 0x%x inside a drain block" idx w;
    if not (Format_.is_user_addr w) then
      corrupt "word %d: kernel address 0x%x inside a user drain block" idx w;
    feed_user_word t ~idx w;
    if t.drain_left = 0 then t.drain_pid <- -1
  end
  else if Format_.is_marker w then feed_marker t ~idx w
  else feed_kernel_word t ~idx w

(* Feed a chunk of trace (one trace-analysis phase's worth). *)
let feed t words ~len =
  let base = t.s.words in
  if t.debug then
    for k = 0 to len - 1 do
      feed_word t ~feed_marker ~idx:(base + k) words.(k)
    done
  else
    for k = 0 to len - 1 do
      feed_word t ~feed_marker:feed_marker_fast ~idx:(base + k) words.(k)
    done

(* End-of-run checks: every source must have completed its last block.
   Processes listed in [live] are allowed an incomplete block: a process
   that never exits (e.g. a server blocked in receive) legitimately stops
   mid-block when the machine halts. *)
let finish ?(live = []) t =
  (match t.kernel_stack with
  | [ top ] ->
    if top.entry != no_entry then
      corrupt "finish: kernel block 0x%x incomplete" top.entry.Bbtable.orig_addr
  | stack ->
    corrupt "finish: exception depth %d at end of trace"
      (List.length stack - 1));
  Hashtbl.iter
    (fun pid src ->
      if src.entry != no_entry && not (List.mem pid live) then
        corrupt "finish: pid %d block 0x%x incomplete" pid
          src.entry.Bbtable.orig_addr)
    t.users
