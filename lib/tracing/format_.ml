(* Trace word format.

   Every trace entry is a single 32-bit word (paper, section 3.3), so a
   single store instruction records a complete entry and entries stay
   contiguous without locks:

     - a word in user space (< 0x80000000) is a user basic-block record or a
       user data address, disambiguated by parser state;
     - a word in kseg0/kseg2 is a kernel basic-block record or kernel data
       address;
     - words in a reserved slice of kseg1 (0xBFFF0000..0xBFFFFFFF) are
       markers written by the kernel: pid switches, drained user-trace
       blocks, exception nesting, and mode transitions.  Device registers
       live at 0xA1000000, so no real data reference can collide with the
       marker range (the machine would fault on such an access anyway since
       it is beyond the device window).

   The redundancy used for defensive tracing (paper, section 4.3) lives in
   the parser: every block record must exist in the static table for the
   right address space, and every block must be followed by exactly the
   number of data words its static record promises. *)

let marker_base = 0xBFFF0000
let marker_limit = 0xC0000000

type marker =
  | Pid_switch of int     (* kernel scheduled user process [pid] *)
  | Drain of int          (* next word = count, then count user words *)
  | Exc_enter of int      (* kernel interrupted by exception [code] *)
  | Exc_exit
  | Mode of int           (* 0 = trace-generation, 1 = trace-analysis *)
  | Trace_onoff of int    (* 1 = on, 0 = off *)
  | Thread_switch of int  (* Mach: thread within the current task *)
  | End

let is_marker w = w >= marker_base && w < marker_limit

let kind_pid = 0
let kind_drain = 1
let kind_exc_enter = 2
let kind_exc_exit = 3
let kind_mode = 4
let kind_onoff = 5
let kind_thread = 6
let kind_end = 7

let make_marker kind arg =
  if arg < 0 || arg > 0xFFF then invalid_arg "Format_.make_marker: arg range";
  marker_base lor (kind lsl 12) lor arg

let marker_word = function
  | Pid_switch p -> make_marker kind_pid p
  | Drain p -> make_marker kind_drain p
  | Exc_enter c -> make_marker kind_exc_enter c
  | Exc_exit -> make_marker kind_exc_exit 0
  | Mode m -> make_marker kind_mode m
  | Trace_onoff m -> make_marker kind_onoff m
  | Thread_switch th -> make_marker kind_thread th
  | End -> make_marker kind_end 0

exception Bad_marker of int

let decode_marker w =
  if not (is_marker w) then raise (Bad_marker w);
  let kind = (w lsr 12) land 0xF in
  let arg = w land 0xFFF in
  if kind = kind_pid then Pid_switch arg
  else if kind = kind_drain then Drain arg
  else if kind = kind_exc_enter then Exc_enter arg
  else if kind = kind_exc_exit then Exc_exit
  else if kind = kind_mode then Mode arg
  else if kind = kind_onoff then Trace_onoff arg
  else if kind = kind_thread then Thread_switch arg
  else if kind = kind_end then End
  else raise (Bad_marker w)

(* Field accessors for the parser's allocation-free fast path: the same
   decode as [decode_marker] without building the variant. *)
let marker_kind w = (w lsr 12) land 0xF
let marker_arg w = w land 0xFFF

let is_user_addr w = w < 0x80000000
let is_kernel_addr w = w >= 0x80000000 && not (is_marker w)
