(** On-disk trace files — the "traces on tape" of the paper's §3.4, for
    sharing and offline replay studies.  Two wire formats: raw words
    (version 1) and {!Compress} delta/varint (version 2); {!load}
    dispatches on the stored version. *)

exception Bad_file of string

val max_words : int
(** Hard cap on the stored word count (2^26, matching
    [Compress.decode]'s bound) — far beyond any real capture, so a
    corrupt header cannot force an oversized allocation. *)

val save : ?compress:bool -> string -> int array -> unit
(** Write a captured trace. [~compress:true] (default [false]) selects the
    version-2 delta/varint format — typically 3-6x smaller on real system
    traces.
    @raise Invalid_argument naming the offending index if any word is
    outside the 32-bit trace-word range (a corrupted in-memory buffer
    must not round-trip into a "valid" file). *)

val load : string -> int array
(** Read back either format.  On ANY byte sequence this either returns a
    word array or raises {!Bad_file} — never [End_of_file],
    [Invalid_argument], or an attacker-sized allocation; header counts
    are checked against {!max_words} and the actual file size before any
    buffer is allocated (fuzzed in the test suite).
    @raise Bad_file on bad magic, version, truncation, oversized or
    lying counts, or corrupt payload. *)

(** {1 Streaming interfaces}

    {!save}/{!load} materialize the whole word array; the streaming
    pipeline must not.  The writer accepts ANALYZE-phase chunks as they
    arrive; the reader folds over a stored file chunk by chunk.  Peak
    memory on both sides is O(chunk), not O(trace). *)

type writer

val open_writer : ?compress:bool -> string -> writer
(** Start a trace file of the given format (the header's word count is
    patched on close, so the destination must be seekable — a regular
    file, not a pipe).  With [~compress:true] the delta stream is
    LZSS-packed in ~1 MB blocks as it grows; each block is group-aligned
    by the packer, so concatenated blocks form a valid stream — {!load}
    and {!fold_words} read the result with the same decoder, and a trace
    whose delta stream fits one block is byte-for-byte what
    [save ~compress:true] writes. *)

val write : writer -> int array -> len:int -> unit
(** Append [words.(0 .. len-1)].  The array is consumed before return
    and never retained.
    @raise Invalid_argument on a word outside the 32-bit trace-word
    range (named by its stream index), on exceeding {!max_words}, or if
    the writer is closed. *)

val close_writer : writer -> int
(** Flush the pending block, patch the header counts, close the file;
    returns the total words written.  Idempotent. *)

val fold_words :
  ?chunk_words:int ->
  string ->
  init:'a ->
  f:('a -> int array -> len:int -> 'a) ->
  'a
(** Fold [f] over a stored trace's words in chunks of at most
    [chunk_words] (default 65536) — the streaming counterpart of
    {!load}, with the same totality contract: any malformed input
    raises {!Bad_file} (possibly after some chunks were already
    delivered — a corrupt tail is only discovered when reached).  The
    chunk array is reused between calls; [f] must copy what it keeps.
    Exceptions raised by [f] itself propagate unchanged.
    @raise Bad_file as {!load}. *)
