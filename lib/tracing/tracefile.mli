(** On-disk trace files — the "traces on tape" of the paper's §3.4, for
    sharing and offline replay studies.  Two wire formats: raw words
    (version 1) and {!Compress} delta/varint (version 2); {!load}
    dispatches on the stored version. *)

exception Bad_file of string

val max_words : int
(** Hard cap on the stored word count (2^26, matching
    [Compress.decode]'s bound) — far beyond any real capture, so a
    corrupt header cannot force an oversized allocation. *)

val save : ?compress:bool -> string -> int array -> unit
(** Write a captured trace. [~compress:true] (default [false]) selects the
    version-2 delta/varint format — typically 3-6x smaller on real system
    traces.
    @raise Invalid_argument naming the offending index if any word is
    outside the 32-bit trace-word range (a corrupted in-memory buffer
    must not round-trip into a "valid" file). *)

val load : string -> int array
(** Read back either format.  On ANY byte sequence this either returns a
    word array or raises {!Bad_file} — never [End_of_file],
    [Invalid_argument], or an attacker-sized allocation; header counts
    are checked against {!max_words} and the actual file size before any
    buffer is allocated (fuzzed in the test suite).
    @raise Bad_file on bad magic, version, truncation, oversized or
    lying counts, or corrupt payload. *)
