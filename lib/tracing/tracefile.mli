(** On-disk trace files — the "traces on tape" of the paper's §3.4, for
    sharing and offline replay studies.  Three wire formats: raw words
    (version 1), {!Compress} delta/varint (version 2), and indexed
    self-contained compressed blocks (version 3 — seekable, parallel
    decodable, semantically preconditioned); {!load} dispatches on the
    stored version, and v1/v2 files keep loading byte-identically. *)

exception Bad_file of string

val max_words : int
(** Hard cap on the stored word count (2^26, matching
    [Compress.decode]'s bound) — far beyond any real capture, so a
    corrupt header cannot force an oversized allocation. *)

val v3_block_words : int
(** Words per version-3 block (65536).  Each block compresses
    independently — own codec choice, fresh predictors, own CRC — so
    blocks seek and decode in isolation. *)

val save : ?compress:bool -> ?version:int -> string -> int array -> unit
(** Write a captured trace. [~compress:true] (default [false]) selects a
    compressed format: version 3 by default (indexed blocks, typically
    4-100x smaller on real system traces), or [~version:2] for the
    legacy whole-stream delta/varint format.  [version] is ignored
    without [~compress:true].
    @raise Invalid_argument naming the offending index if any word is
    outside the 32-bit trace-word range (a corrupted in-memory buffer
    must not round-trip into a "valid" file), or on an unsupported
    [version]. *)

val load : string -> int array
(** Read back any format.  On ANY byte sequence this either returns a
    word array or raises {!Bad_file} — never [End_of_file],
    [Invalid_argument], or an attacker-sized allocation; header counts
    are checked against {!max_words} and the actual file size before any
    buffer is allocated, and a v3 file's index and per-block CRCs are
    verified before its blocks are decoded (fuzzed in the test suite).
    @raise Bad_file on bad magic, version, truncation, oversized or
    lying counts, index inconsistency (overlapping or gapped blocks,
    offsets past EOF, CRC mismatch), or corrupt payload. *)

(** {1 Streaming interfaces}

    {!save}/{!load} materialize the whole word array; the streaming
    pipeline must not.  The writer accepts ANALYZE-phase chunks as they
    arrive; the reader folds over a stored file chunk by chunk.  Peak
    memory on both sides is O(chunk), not O(trace). *)

type writer

val open_writer : ?compress:bool -> ?version:int -> string -> writer
(** Start a trace file of the given format (the header's word count is
    patched on close, so the destination must be seekable — a regular
    file, not a pipe).  With [~compress:true] (version 3 by default,
    [~version:2] for the legacy format) the stream is compressed
    incrementally: v3 packs a self-contained block every
    {!v3_block_words} words and appends the index as a trailer on close;
    v2 LZSS-packs the delta stream in ~1 MB blocks.  Either way block
    boundaries depend only on the word stream, never on call chunking,
    so the streamed file is byte-identical to [save] of the
    concatenation.
    @raise Invalid_argument on an unsupported [version]. *)

val write : writer -> int array -> len:int -> unit
(** Append [words.(0 .. len-1)].  The array is consumed before return
    and never retained.
    @raise Invalid_argument on a word outside the 32-bit trace-word
    range (named by its stream index), on exceeding {!max_words}, or if
    the writer is closed. *)

val close_writer : writer -> int
(** Flush the pending block, write the v3 index trailer, patch the
    header counts, close the file; returns the total words written.
    Idempotent.  A writer closed after zero words produces a valid
    empty trace file (v3: header plus empty index trailer) that
    round-trips through {!load} and {!fold_words}. *)

val fold_words :
  ?chunk_words:int ->
  ?from:int ->
  ?until:int ->
  string ->
  init:'a ->
  f:('a -> int array -> len:int -> 'a) ->
  'a
(** Fold [f] over a stored trace's words in chunks of at most
    [chunk_words] (default 65536) — the streaming counterpart of
    {!load}, with the same totality contract: any malformed input
    raises {!Bad_file} (possibly after some chunks were already
    delivered — a corrupt tail is only discovered when reached).  The
    chunk array is reused between calls; [f] must copy what it keeps.
    Exceptions raised by [f] itself propagate unchanged.

    [?from]/[?until] (word indices, default the whole trace, clamped to
    the stored count) restrict the fold to the window [from, until):
    v1 files seek straight to the window, v3 files seek to the covering
    block via the index, v2 files decode from the start but emit only
    the window and stop at [until].  With a window, bytes past what the
    fold needed are not read, so corruption beyond the window goes
    undetected — use {!load} or a full fold to audit a file.
    @raise Bad_file as {!load}.
    @raise Invalid_argument on a negative [from], [until < from], or
    non-positive [chunk_words]. *)

val fold_blocks_parallel :
  ?jobs:int ->
  string ->
  init:'a ->
  f:('a -> int array -> len:int -> 'a) ->
  'a
(** Like {!fold_words} over the whole trace, but v3 blocks are decoded
    concurrently on the domain pool ([jobs] defaults to the hardware
    core count, as [Pool.default_jobs]): blocks are read and CRC-checked
    in batches, decoded in parallel, and [f] runs on the calling domain
    in stream order — observationally identical to {!fold_words}, only
    the decode is parallel.  Chunks are whole blocks (at most
    {!v3_block_words} words).  Peak memory is O(jobs * block).  v1/v2
    files fall back to the sequential reader.
    @raise Bad_file as {!load}.
    @raise Invalid_argument on non-positive [jobs]. *)

val slice : ?from:int -> ?until:int -> string -> string -> int
(** [slice ?from ?until src dst] extracts the window [from, until) of a
    stored trace into a fresh version-3 trace file, decoding only the
    covering blocks (the [systrace slice] back end).  Returns the
    number of words written.
    @raise Bad_file as {!load}; @raise Invalid_argument as
    {!fold_words}. *)
