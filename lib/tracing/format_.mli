(** Trace word format (paper §3.3).

    Every trace entry is a single 32-bit word, so one store instruction
    records a complete entry and entries stay contiguous without locks:

    - a word below [0x80000000] is a user basic-block record or user data
      address (disambiguated by parser state);
    - a kseg0/kseg2 word is a kernel record or kernel data address;
    - words in a reserved slice of kseg1 are markers written by the
      kernel: pid switches, drained user-trace blocks, exception nesting
      brackets, and trace-generation/analysis mode transitions. *)

type marker =
  | Pid_switch of int     (** kernel scheduled user process [pid] *)
  | Drain of int          (** next word = count, then count user words *)
  | Exc_enter of int      (** kernel interrupted by exception [code] *)
  | Exc_exit
  | Mode of int           (** 0 = trace-generation, 1 = trace-analysis *)
  | Trace_onoff of int
  | Thread_switch of int
  | End

val marker_base : int
val marker_limit : int

val is_marker : int -> bool
val is_user_addr : int -> bool
val is_kernel_addr : int -> bool

val marker_word : marker -> int
(** Encode a marker as a trace word. *)

exception Bad_marker of int

val decode_marker : int -> marker
(** Raises {!Bad_marker} if the word is not in the marker range or has an
    unknown kind. *)

(** Marker kind codes, for tests and low-level writers. *)

val kind_pid : int
val kind_drain : int
val kind_exc_enter : int
val kind_exc_exit : int
val kind_mode : int
val kind_onoff : int
val kind_thread : int
val kind_end : int

val make_marker : int -> int -> int
(** [make_marker kind arg] builds a marker word from raw fields; [arg]
    must fit in 12 bits. *)

val marker_kind : int -> int
val marker_arg : int -> int
(** Raw kind/arg fields of a marker word, for the parser's
    allocation-free fast path ([decode_marker] without the variant). *)
