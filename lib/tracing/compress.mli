(** Lossless delta/varint compression of trace word streams, in the PDATS
    family of address-trace compressors: consecutive trace words are
    highly correlated (blocks repeat around loops, data addresses walk
    fixed strides), so each word is stored as a zigzag-varint delta from
    its predecessor, with a run-length extension for repeated strides.

    Used by {!Tracefile} (format version 2) and by the [dump -z] CLI
    command; the [compression] bench experiment measures the density win
    over the raw one-word format (paper §3.5: "the trace takes less space
    and less time to write"). *)

exception Corrupt of string
(** Raised by {!decode} on malformed input (truncated or oversized
    varints, word-count mismatch). *)

val encode : int array -> string
(** Delta/varint stage alone. Total; never raises. *)

val decode : ?expect:int -> string -> int array
(** Inverse of {!encode}: [decode (encode w) = w] for all [w].
    [?expect] both checks the decoded word count and bounds the decode
    exactly; without it, hostile run-length tokens are cut off at 2^26
    words so corrupt input cannot exhaust memory (fuzzed in the test
    suite).
    @raise Corrupt on malformed input. *)

val lzss_pack : string -> string
(** LZSS stage alone (32KB window, 4..259-byte possibly-overlapping
    matches): catches the repeating delta {e sequences} that loops emit,
    which the delta stage's run-length extension cannot (Mache-style
    second stage). Total; never raises. *)

val lzss_unpack : ?limit:int -> string -> string
(** Inverse of {!lzss_pack}.  [limit] bounds the decompressed size (in
    bytes) so a hostile stream surfaces as {!Corrupt} before the
    allocation, not as OOM; the default admits the largest stream
    {!decode} would accept anyway.
    @raise Corrupt on malformed input or when the output exceeds
    [limit]. *)

val pack : int array -> string
(** Both stages: [lzss_pack (encode words)] — the {!Tracefile} v2
    payload. *)

val unpack : ?expect:int -> string -> int array
(** Inverse of {!pack}.  With [?expect], both stages are bounded by the
    expected word count (the LZSS stage by the largest delta stream that
    many words can occupy), so a lying header cannot force an oversized
    allocation.
    @raise Corrupt on malformed input. *)

val ratio : int array -> float
(** {!pack}ed bytes over raw bytes ([4 * length]); 1.0 for the empty
    stream. *)
