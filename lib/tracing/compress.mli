(** Lossless delta/varint compression of trace word streams, in the PDATS
    family of address-trace compressors: consecutive trace words are
    highly correlated (blocks repeat around loops, data addresses walk
    fixed strides), so each word is stored as a zigzag-varint delta from
    its predecessor, with a run-length extension for repeated strides.

    Used by {!Tracefile} (format version 2) and by the [dump -z] CLI
    command; the [compression] bench experiment measures the density win
    over the raw one-word format (paper §3.5: "the trace takes less space
    and less time to write"). *)

exception Corrupt of string
(** Raised by {!decode} on malformed input (truncated or oversized
    varints, word-count mismatch). *)

val encode : int array -> string
(** Delta/varint stage alone. Total; never raises. *)

val decode : ?expect:int -> string -> int array
(** Inverse of {!encode}: [decode (encode w) = w] for all [w].
    [?expect] both checks the decoded word count and bounds the decode
    exactly; without it, hostile run-length tokens are cut off at 2^26
    words so corrupt input cannot exhaust memory (fuzzed in the test
    suite).
    @raise Corrupt on malformed input. *)

val lzss_pack : string -> string
(** LZSS stage alone (32KB window, 4..259-byte possibly-overlapping
    matches): catches the repeating delta {e sequences} that loops emit,
    which the delta stage's run-length extension cannot (Mache-style
    second stage). Total; never raises. *)

val lzss_unpack : ?limit:int -> string -> string
(** Inverse of {!lzss_pack}.  [limit] bounds the decompressed size (in
    bytes) so a hostile stream surfaces as {!Corrupt} before the
    allocation, not as OOM; the default admits the largest stream
    {!decode} would accept anyway.
    @raise Corrupt on malformed input or when the output exceeds
    [limit]. *)

val pack : ?jobs:int -> ?block_bytes:int -> int array -> string
(** Both stages: [lzss_pack (encode words)] — the {!Tracefile} v2
    payload.  With [jobs > 1] and more than one [block_bytes]-sized block
    of delta stream (default 256K), the LZSS stage runs per block on a
    domain pool and the outputs concatenate into the same wire format
    (complete streams are group-aligned and matches never cross a block),
    at a fraction of a percent of ratio.  [jobs <= 1] is byte-identical
    to the serial packer. *)

val unpack : ?expect:int -> string -> int array
(** Inverse of {!pack}.  With [?expect], both stages are bounded by the
    expected word count (the LZSS stage by the largest delta stream that
    many words can occupy), so a lying header cannot force an oversized
    allocation.
    @raise Corrupt on malformed input. *)

val ratio : int array -> float
(** {!pack}ed bytes over raw bytes ([4 * length]); 1.0 for the empty
    stream. *)

(** {1 Semantic preconditioning (v3 codec)}

    The delta stage treats the trace as one undifferentiated sequence,
    so every kernel/user/marker interleave lands a huge delta and breaks
    the run detector.  Trace words have structure generic LZ cannot see
    (the HMTT "semantic gap"): {!encode_semantic} classifies each word
    by the address-space region that produced it (markers, drain counts,
    user text, user data, kseg0, kseg1/2), run-length encodes the class
    sequence, and delta/varint-encodes each class against its own
    predecessor — PC deltas stay small, array strides become run tokens.
    The classifier is heuristic and encoder-only: class runs are
    recorded on the wire, so a misclassified word costs ratio, never
    correctness.  Used by the version-3 {!Tracefile} blocks (with the
    LZSS stage on top). *)

val encode_semantic : int array -> pos:int -> len:int -> string
(** Precondition [words.(pos .. pos+len-1)].  Self-contained: each call
    starts every per-class predictor fresh, so v3 blocks decode
    independently.  Total; never raises (beyond [Invalid_argument] on a
    bad slice). *)

val decode_semantic : expect:int -> string -> int array
(** Inverse of {!encode_semantic}.  [expect] is the exact word count
    (v3 readers know it from the block index); every structural field —
    run totals, per-class stream lengths, trailing bytes — is validated
    against it before any oversized allocation.
    @raise Corrupt on malformed input. *)

(** {1 CRC-32}

    IEEE 802.3 CRC-32 over bytes, for the v3 {!Tracefile} block index:
    one CRC per compressed block plus one over the index itself, so a
    seeking reader can tell a rotted block from a lying index before it
    decodes anything. *)

val crc32 : string -> int
(** CRC-32 of a whole string; always in [0, 0xFFFFFFFF]. *)

val crc32_update : int -> string -> pos:int -> len:int -> int
(** Incremental form: [crc32_update 0 s ~pos:0 ~len] over successive
    slices chains to {!crc32} of the concatenation. *)

(** {1 Incremental interfaces}

    The streaming trace pipeline ({!Tracefile.open_writer},
    {!Tracefile.fold_words}, [Sink.to_file]) never holds a whole trace;
    these carry the codec state across chunk boundaries.  The batch
    entry points above are thin wrappers over them, so chunked and
    whole-array use share one code path: feeding the same words in any
    chunking produces byte-identical output (qcheck-enforced). *)

type encoder
(** Delta/varint encoder state: the previous raw word plus the pending
    maximal-delta run. *)

val encoder : unit -> encoder

val encode_chunk : encoder -> Buffer.t -> int array -> len:int -> unit
(** Encode [words.(0 .. len-1)], appending tokens to the buffer.  A run
    still open at the end of the chunk stays pending — it may continue
    into the next chunk — so the buffer trails the input by at most one
    token. *)

val encode_finish : encoder -> Buffer.t -> unit
(** Flush the pending run.  The concatenation of every chunk's bytes
    plus this tail equals [encode] of the concatenated words. *)

type decoder
(** Delta/varint decoder state: partial varint, pending run token,
    predictor word, emitted count. *)

val decoder : ?expect:int -> emit:(int -> unit) -> unit -> decoder
(** Words are pushed to [emit] as their tokens complete.  [?expect]
    bounds the decode exactly and is checked by {!decode_finish};
    without it the 2^26-word cap applies, as in {!decode}. *)

val decode_byte : decoder -> char -> unit
(** @raise Corrupt as {!decode} would (varint overflow, word cap). *)

val decode_bytes : decoder -> string -> pos:int -> len:int -> unit

val decode_finish : decoder -> unit
(** @raise Corrupt on a token split by end-of-input ("truncated
    varint") or an [?expect] word-count mismatch. *)

type lz_decoder
(** LZSS decoder state: a 64K ring of recent output (a complete history
    — matches reach back at most 65535 bytes) plus the partially read
    group, so memory stays O(1) regardless of stream size. *)

val lz_decoder : ?limit:int -> emit:(char -> unit) -> unit -> lz_decoder
(** Decompressed bytes are pushed to [emit] as they are recovered.
    [limit] bounds the total output as in {!lzss_unpack}. *)

val lz_decode_byte : lz_decoder -> char -> unit
(** @raise Corrupt as {!lzss_unpack} would (bad distance, output
    limit). *)

val lz_decode_bytes : lz_decoder -> string -> pos:int -> len:int -> unit

val lz_decode_finish : lz_decoder -> unit
(** @raise Corrupt when end-of-input splits a match token ("truncated
    LZSS stream"). *)

val max_delta_bytes_per_word : int
(** Worst-case delta/varint bytes one word can occupy; [expect *
    max_delta_bytes_per_word] bounds the LZSS stage of an [expect]-word
    decode (used by {!Tracefile}'s streaming reader). *)
