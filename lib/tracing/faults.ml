(* Deterministic fault injection over trace word streams and stored trace
   files.

   The paper's defensive-tracing argument (§4.3) is that the one-word trace
   format carries enough redundancy to *detect* corruption with very high
   probability rather than silently mis-simulate.  This module supplies the
   corruption: a catalogue of fault kinds covering the realistic failure
   modes of a trace path (bit rot on the store, lost/duplicated/reordered
   buffer words, truncated files, scribbled markers, damaged drain
   framing), each applied at an [Systrace_util.Rng]-chosen position and tagged with
   its injection index so a detection can be attributed to the fault that
   caused it.

   All choice is driven by the caller's generator: equal seeds give equal
   faulted streams, so every detection-rate experiment and every qcheck
   counterexample replays exactly.

   Position selection is framing-aware.  A drain payload word and a marker
   word can only be told apart by tracking the drain protocol (DRAIN marker,
   then a count word, then count payload words), so the injector runs the
   same lightweight scan as the parser to classify positions before
   choosing targets — otherwise "mutate a marker" could hit a user address
   that merely lands in the marker range. *)

type kind =
  | Bit_flip      (* flip one bit of one word *)
  | Word_drop     (* delete one word *)
  | Word_dup      (* duplicate one word in place *)
  | Word_swap     (* exchange two adjacent words *)
  | Truncate      (* cut the stream at a position *)
  | Marker_kind   (* rewrite a marker's kind field *)
  | Marker_arg    (* rewrite a marker's argument field *)
  | Drain_count   (* corrupt the count word after a DRAIN marker *)
  | Drain_split   (* split one drain block into two valid halves *)

let all_kinds =
  [
    Bit_flip;
    Word_drop;
    Word_dup;
    Word_swap;
    Truncate;
    Marker_kind;
    Marker_arg;
    Drain_count;
    Drain_split;
  ]

let kind_name = function
  | Bit_flip -> "bit_flip"
  | Word_drop -> "word_drop"
  | Word_dup -> "word_dup"
  | Word_swap -> "word_swap"
  | Truncate -> "truncate"
  | Marker_kind -> "marker_kind"
  | Marker_arg -> "marker_arg"
  | Drain_count -> "drain_count"
  | Drain_split -> "drain_split"

type injection = {
  kind : kind;
  pos : int;       (* word index in the stream the fault was applied at *)
  detail : string; (* human-readable what-changed *)
}

let describe inj =
  Printf.sprintf "%s@%d: %s" (kind_name inj.kind) inj.pos inj.detail

(* ------------------------------------------------------------------ *)
(* Framing-aware position classification                               *)

type pos_class =
  | Marker_pos       (* a marker word outside any drain *)
  | Drain_count_pos  (* the count word following a DRAIN marker *)
  | Payload_pos      (* a word inside a drain payload *)
  | Kernel_pos       (* a kernel-stream word (record or data) *)

(* Classify every word of a well-formed stream by running the drain
   protocol.  On streams that are already malformed the classification is
   best-effort — fine for an injector, whose output is malformed anyway. *)
let classify (words : int array) : pos_class array =
  let n = Array.length words in
  let cls = Array.make n Kernel_pos in
  let drain_left = ref 0 in
  for i = 0 to n - 1 do
    let w = words.(i) in
    if !drain_left = -2 then begin
      cls.(i) <- Drain_count_pos;
      drain_left := if w >= 0 && w <= 1 lsl 24 then w else 0
    end
    else if !drain_left > 0 then begin
      cls.(i) <- Payload_pos;
      decr drain_left
    end
    else if Format_.is_marker w then begin
      cls.(i) <- Marker_pos;
      if Format_.marker_kind w = Format_.kind_drain then drain_left := -2
    end
  done;
  cls

let positions_of cls want =
  let acc = ref [] in
  Array.iteri (fun i c -> if c = want then acc := i :: !acc) cls;
  Array.of_list (List.rev !acc)

(* Position of each DRAIN marker whose payload has at least 2 words (the
   only drains a split can divide), as (marker_pos, count). *)
let splittable_drains (words : int array) cls =
  let acc = ref [] in
  Array.iteri
    (fun i c ->
      if
        c = Marker_pos
        && Format_.marker_kind words.(i) = Format_.kind_drain
        && i + 1 < Array.length words
        && cls.(i + 1) = Drain_count_pos
        && words.(i + 1) >= 2
      then acc := (i, words.(i + 1)) :: !acc)
    cls;
  Array.of_list (List.rev !acc)

let pick rng a =
  if Array.length a = 0 then None else Some a.(Systrace_util.Rng.int rng (Array.length a))

(* ------------------------------------------------------------------ *)
(* Single-fault application                                            *)

let mask32 w = w land 0xFFFFFFFF

(* Apply one fault of [kind] to [words], choosing the site with [rng].
   Returns the faulted stream (a fresh array; the input is never mutated)
   and the injection tag, or [None] when the stream has no site for this
   kind (e.g. no markers to mutate). *)
let inject_one rng kind (words : int array) : (int array * injection) option =
  let n = Array.length words in
  if n = 0 then None
  else
    let cls = lazy (classify words) in
    match kind with
    | Bit_flip ->
      let pos = Systrace_util.Rng.int rng n in
      let bit = Systrace_util.Rng.int rng 32 in
      let out = Array.copy words in
      out.(pos) <- mask32 (out.(pos) lxor (1 lsl bit));
      Some
        ( out,
          {
            kind;
            pos;
            detail =
              Printf.sprintf "0x%x -> 0x%x (bit %d)" words.(pos) out.(pos) bit;
          } )
    | Word_drop ->
      let pos = Systrace_util.Rng.int rng n in
      let out = Array.init (n - 1) (fun i -> if i < pos then words.(i) else words.(i + 1)) in
      Some (out, { kind; pos; detail = Printf.sprintf "dropped 0x%x" words.(pos) })
    | Word_dup ->
      let pos = Systrace_util.Rng.int rng n in
      let out =
        Array.init (n + 1) (fun i ->
            if i <= pos then words.(i) else words.(i - 1))
      in
      Some
        (out, { kind; pos; detail = Printf.sprintf "duplicated 0x%x" words.(pos) })
    | Word_swap ->
      if n < 2 then None
      else
        let pos = Systrace_util.Rng.int rng (n - 1) in
        if words.(pos) = words.(pos + 1) then
          (* Swapping equal words is the identity; still a valid "fault
             landed in dead redundancy" case, keep it. *)
          Some
            ( Array.copy words,
              { kind; pos; detail = "swapped equal words (no-op)" } )
        else begin
          let out = Array.copy words in
          let tmp = out.(pos) in
          out.(pos) <- out.(pos + 1);
          out.(pos + 1) <- tmp;
          Some
            ( out,
              {
                kind;
                pos;
                detail =
                  Printf.sprintf "swapped 0x%x <-> 0x%x" words.(pos)
                    words.(pos + 1);
              } )
        end
    | Truncate ->
      let pos = Systrace_util.Rng.int rng n in
      Some
        ( Array.sub words 0 pos,
          { kind; pos; detail = Printf.sprintf "cut %d trailing words" (n - pos) }
        )
    | Marker_kind -> (
      match pick rng (positions_of (Lazy.force cls) Marker_pos) with
      | None -> None
      | Some pos ->
        let w = words.(pos) in
        let old_kind = Format_.marker_kind w in
        (* A different kind, possibly an undefined one (kinds 8-15). *)
        let k' = (old_kind + 1 + Systrace_util.Rng.int rng 15) land 0xF in
        let out = Array.copy words in
        out.(pos) <- w land lnot (0xF lsl 12) lor (k' lsl 12);
        Some
          ( out,
            {
              kind;
              pos;
              detail = Printf.sprintf "marker kind %d -> %d" old_kind k';
            } ))
    | Marker_arg -> (
      match pick rng (positions_of (Lazy.force cls) Marker_pos) with
      | None -> None
      | Some pos ->
        let w = words.(pos) in
        (* Nonzero xor in the 12-bit arg field: always changes the arg. *)
        let x = 1 + Systrace_util.Rng.int rng 0xFFF in
        let out = Array.copy words in
        out.(pos) <- w lxor x;
        Some
          ( out,
            {
              kind;
              pos;
              detail =
                Printf.sprintf "marker arg 0x%x -> 0x%x" (Format_.marker_arg w)
                  (Format_.marker_arg out.(pos));
            } ))
    | Drain_count -> (
      match pick rng (positions_of (Lazy.force cls) Drain_count_pos) with
      | None -> None
      | Some pos ->
        let w = words.(pos) in
        let w' =
          if Systrace_util.Rng.bool rng then mask32 (w lxor (1 lsl Systrace_util.Rng.int rng 32))
          else (w + 1 + Systrace_util.Rng.int rng 16) land 0xFFFFFF
        in
        let w' = if w' = w then w + 1 else w' in
        let out = Array.copy words in
        out.(pos) <- w';
        Some
          (out, { kind; pos; detail = Printf.sprintf "drain count %d -> %d" w w' })
      )
    | Drain_split -> (
      match pick rng (splittable_drains words (Lazy.force cls)) with
      | None -> None
      | Some (mpos, count) ->
        (* [DRAIN(p); n; w1..wn] -> [DRAIN(p); k; w1..wk; DRAIN(p); n-k;
           wk+1..wn] — a *valid* transform of the stream (drains are
           resumable), exercising the protocol's dead redundancy: the
           parser must reconstruct the identical reference stream. *)
        let k = 1 + Systrace_util.Rng.int rng (count - 1) in
        let marker = words.(mpos) in
        let out = Array.make (n + 2) 0 in
        Array.blit words 0 out 0 (mpos + 2 + k);
        out.(mpos + 1) <- k;
        out.(mpos + 2 + k) <- marker;
        out.(mpos + 3 + k) <- count - k;
        Array.blit words (mpos + 2 + k) out (mpos + 4 + k) (n - (mpos + 2 + k));
        Some
          ( out,
            {
              kind;
              pos = mpos;
              detail = Printf.sprintf "drain of %d split at %d" count k;
            } ))

(* ------------------------------------------------------------------ *)
(* Multi-fault application                                             *)

(* Apply [n] faults drawn uniformly from [kinds] (default: all).  Faults
   compose left to right on the progressively-faulted stream; kinds with
   no remaining site (e.g. [Truncate] emptied the stream) are skipped.
   Returns the final stream and the injections actually applied, in
   order. *)
let inject rng ~n ?(kinds = all_kinds) (words : int array) :
    int array * injection list =
  if kinds = [] then invalid_arg "Faults.inject: empty kind list";
  let karr = Array.of_list kinds in
  let cur = ref words in
  let injs = ref [] in
  for _ = 1 to n do
    let kind = karr.(Systrace_util.Rng.int rng (Array.length karr)) in
    match inject_one rng kind !cur with
    | Some (out, inj) ->
      cur := out;
      injs := inj :: !injs
    | None -> ()
  done;
  (!cur, List.rev !injs)

(* ------------------------------------------------------------------ *)
(* Stored-file mangling                                                *)

(* Corrupt a stored trace file's *bytes* (header, compressed payload,
   anything): byte flips, truncation, appended garbage, or an overwritten
   window.  For fuzzing [Tracefile.load]'s every-malformed-input-raises-
   [Bad_file] guarantee. *)
let mangle rng (s : string) : string =
  let n = String.length s in
  match Systrace_util.Rng.int rng 4 with
  | 0 when n > 0 ->
    (* flip one bit of one byte *)
    let pos = Systrace_util.Rng.int rng n in
    let b = Bytes.of_string s in
    Bytes.set b pos
      (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl Systrace_util.Rng.int rng 8)));
    Bytes.to_string b
  | 1 when n > 0 ->
    (* truncate *)
    String.sub s 0 (Systrace_util.Rng.int rng n)
  | 2 ->
    (* append garbage *)
    let extra = 1 + Systrace_util.Rng.int rng 64 in
    s ^ String.init extra (fun _ -> Char.chr (Systrace_util.Rng.int rng 256))
  | _ when n > 0 ->
    (* overwrite a window with garbage *)
    let pos = Systrace_util.Rng.int rng n in
    let len = min (1 + Systrace_util.Rng.int rng 16) (n - pos) in
    let b = Bytes.of_string s in
    for i = pos to pos + len - 1 do
      Bytes.set b i (Char.chr (Systrace_util.Rng.int rng 256))
    done;
    Bytes.to_string b
  | _ -> s ^ String.init 4 (fun _ -> Char.chr (Systrace_util.Rng.int rng 256))

(* v3-trailer-targeted mangling.  Blind byte mangling almost always dies
   on the first CRC check; the interesting decode-path bugs live behind
   it, in the entry validation — so half these faults *recompute* the
   index CRC after lying, forcing the reader to reject the entry on its
   own merits (offsets past EOF, overlaps, non-monotone word offsets,
   unknown codecs) rather than on a checksum.  Returns the mangled bytes
   and a description of what was done; falls back to {!mangle} when the
   input is not a well-formed v3 file. *)
let mangle_v3 rng (s : string) : string * string =
  let n = String.length s in
  let u32 off = Int32.to_int (String.get_int32_le s off) land 0xFFFFFFFF in
  let fallback () = (mangle rng s, "blind byte mangle") in
  if
    n < 28
    || String.sub s 0 4 <> "STRC"
    || u32 4 <> 3
    || String.sub s (n - 4) 4 <> "SIDX"
  then fallback ()
  else begin
    let nblocks = u32 (n - 12) in
    let payload = u32 12 in
    let index_off = 16 + payload in
    let index_bytes = 17 * nblocks in
    if index_off + index_bytes + 12 <> n then fallback ()
    else begin
      let b = Bytes.of_string s in
      let set32 off v = Bytes.set_int32_le b off (Int32.of_int v) in
      let flip_byte pos =
        Bytes.set b pos
          (Char.chr
             (Char.code (Bytes.get b pos)
             lxor (1 lsl Systrace_util.Rng.int rng 8)))
      in
      let fix_index_crc () =
        set32 (n - 8)
          (Compress.crc32_update 0
             (Bytes.unsafe_to_string b)
             ~pos:index_off ~len:index_bytes)
      in
      let entry k = index_off + (17 * k) in
      match Systrace_util.Rng.int rng 9 with
      | 0 ->
        (* cut inside the trailer: index or footer goes missing *)
        let cut = index_off + Systrace_util.Rng.int rng (index_bytes + 12) in
        ( String.sub s 0 cut,
          Printf.sprintf "trailer truncated at %d/%d" cut n )
      | 1 when nblocks > 0 ->
        flip_byte (index_off + Systrace_util.Rng.int rng index_bytes);
        (Bytes.to_string b, "index bit rot (index CRC mismatch)")
      | 2 when nblocks > 0 ->
        let k = Systrace_util.Rng.int rng nblocks in
        let off = entry k in
        set32 (off + 8)
          (u32 (off + 8) + payload + 1 + Systrace_util.Rng.int rng 1000);
        fix_index_crc ();
        ( Bytes.to_string b,
          Printf.sprintf "block %d length past EOF (index CRC fixed)" k )
      | 3 when nblocks > 1 ->
        let k = 1 + Systrace_util.Rng.int rng (nblocks - 1) in
        let off = entry k in
        set32 (off + 4)
          (max 16 (u32 (off + 4) - 1 - Systrace_util.Rng.int rng 16));
        fix_index_crc ();
        ( Bytes.to_string b,
          Printf.sprintf "block %d overlaps its predecessor (index CRC fixed)"
            k )
      | 4 when nblocks > 0 && payload > 0 ->
        flip_byte (16 + Systrace_util.Rng.int rng payload);
        (Bytes.to_string b, "payload bit rot (block CRC mismatch)")
      | 5 ->
        let nb' =
          match Systrace_util.Rng.int rng 3 with
          | 0 -> nblocks + 1 + Systrace_util.Rng.int rng 100
          | 1 -> (nblocks + 1) land 0xFFFFFF (* any different value *)
          | _ -> 0x7FFFFFFF (* oversized: must be rejected pre-allocation *)
        in
        set32 (n - 12) (if nb' = nblocks then nblocks + 1 else nb');
        ( Bytes.to_string b,
          Printf.sprintf "footer block count %d -> %d" nblocks
            (if nb' = nblocks then nblocks + 1 else nb') )
      | 6 ->
        flip_byte (n - 4 + Systrace_util.Rng.int rng 4);
        (Bytes.to_string b, "footer magic scribbled")
      | 7 when nblocks > 1 ->
        let k = 1 + Systrace_util.Rng.int rng (nblocks - 1) in
        set32 (entry k) (u32 (entry (k - 1)));
        fix_index_crc ();
        ( Bytes.to_string b,
          Printf.sprintf "block %d word offset clamped to predecessor (index \
                          CRC fixed)"
            k )
      | 8 when nblocks > 0 ->
        let k = Systrace_util.Rng.int rng nblocks in
        Bytes.set b (entry k + 12)
          (Char.chr (3 + Systrace_util.Rng.int rng 253));
        fix_index_crc ();
        ( Bytes.to_string b,
          Printf.sprintf "block %d codec byte invalid (index CRC fixed)" k )
      | _ -> fallback ()
    end
  end
