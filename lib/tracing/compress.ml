(* Delta/varint compression of trace word streams.

   The paper's trace volumes are the central engineering constraint: a
   64 MB kernel buffer holds about two seconds of execution, and §3.5
   justifies the one-word format because "it makes the trace more concise,
   so the trace takes less space and less time to write".  When a trace
   leaves the machine — the Tunix tapes of §3.4, or this repository's
   `systrace dump` — the same pressure applies to the stored bytes.

   The scheme here is the classic address-trace compressor in the PDATS
   family (Johnson & Ha, 1994): consecutive trace words are highly
   correlated — block records repeat around loops, data addresses walk
   arrays in fixed strides, markers cluster — so we store the difference
   from the previous word, zigzag-mapped to favour small magnitudes,
   varint-encoded (7 bits per byte), with a run-length extension for
   repeated deltas (a stride walking an array becomes a single token).

   Token format, self-describing:
     varint( zigzag(delta) * 2 + has_run )
     if has_run: varint(extra)     -- the delta repeats [extra] more times

   The format is lossless and order-preserving: [decode (encode w) = w]
   for every word sequence, checked by a qcheck property and by a
   roundtrip of a real captured trace in the test suite. *)

(* Deltas are differences of 32-bit words, reduced to the signed 32-bit
   range so that a wraparound (e.g. a marker in kseg1 followed by a low
   user text address) still yields a small-ish magnitude. *)
let mask32 = 0xFFFFFFFF

let delta32 cur prev =
  let d = (cur - prev) land mask32 in
  if d land 0x80000000 <> 0 then d - 0x100000000 else d

let zigzag d = if d < 0 then ((-d) lsl 1) - 1 else d lsl 1
let unzigzag z = if z land 1 = 1 then -((z + 1) lsr 1) else z lsr 1

let put_varint buf v =
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7F)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

exception Corrupt of string

(* Incremental encoder.  The streaming pipeline (Tracefile.open_writer,
   Sink.to_file) hands the codec one ANALYZE chunk at a time; the run
   state carried across calls is exactly the state the batch encoder
   keeps between tokens — the previous raw word plus the pending
   maximal-delta run — so the emitted bytes are identical no matter how
   the words were split into chunks.  [encode] below is a thin wrapper,
   keeping a single code path. *)

type encoder = {
  mutable e_prev : int;  (* last raw word seen *)
  mutable e_delta : int;  (* delta shared by the pending run *)
  mutable e_count : int;  (* pending run length; 0 = nothing pending *)
}

let encoder () = { e_prev = 0; e_delta = 0; e_count = 0 }

let encoder_flush e buf =
  if e.e_count > 0 then begin
    if e.e_count > 1 then begin
      put_varint buf ((zigzag e.e_delta lsl 1) lor 1);
      put_varint buf (e.e_count - 1)
    end
    else put_varint buf (zigzag e.e_delta lsl 1);
    e.e_count <- 0
  end

let encode_chunk e buf (words : int array) ~len =
  for k = 0 to len - 1 do
    let w = words.(k) in
    let d = delta32 w e.e_prev in
    e.e_prev <- w;
    if e.e_count > 0 && d = e.e_delta then e.e_count <- e.e_count + 1
    else begin
      encoder_flush e buf;
      e.e_delta <- d;
      e.e_count <- 1
    end
  done

let encode_finish = encoder_flush

(* Batch encode writes through a fixed Bytes cursor instead of a Buffer:
   a single token covers at least one word and is at most 5 varint bytes
   (zigzag of a 33-bit magnitude, doubled), and a run token's two varints
   amortize over >= 2 words, so [5 * n + 16] bytes never overflow.  The
   token stream is the incremental encoder's exactly — a qcheck property
   holds the two paths byte-identical under arbitrary chunking. *)
let encode (words : int array) : string =
  let n = Array.length words in
  let out = Bytes.create ((n * 5) + 16) in
  let o = ref 0 in
  let put_varint v =
    let v = ref v in
    while !v >= 0x80 do
      Bytes.unsafe_set out !o (Char.unsafe_chr (0x80 lor (!v land 0x7F)));
      incr o;
      v := !v lsr 7
    done;
    Bytes.unsafe_set out !o (Char.unsafe_chr !v);
    incr o
  in
  let prev = ref 0 and delta = ref 0 and count = ref 0 in
  let flush () =
    if !count > 0 then begin
      if !count > 1 then begin
        put_varint ((zigzag !delta lsl 1) lor 1);
        put_varint (!count - 1)
      end
      else put_varint (zigzag !delta lsl 1);
      count := 0
    end
  in
  for k = 0 to n - 1 do
    let w = Array.unsafe_get words k in
    let d = delta32 w !prev in
    prev := w;
    if !count > 0 && d = !delta then incr count
    else begin
      flush ();
      delta := d;
      count := 1
    end
  done;
  flush ();
  Bytes.sub_string out 0 !o

(* Without this bound a hostile run-length token could claim a
   multi-billion-word run and exhaust memory before any structural check
   fires; 2^26 words (256 MiB decoded) is beyond any real capture — the
   paper's largest kernel buffer is 64 MB — and callers with a trusted
   word count should pass [?expect], which bounds the decode exactly. *)
let max_decoded_words = 1 lsl 26

(* Incremental decoder: a byte-at-a-time state machine over the varint
   token stream, emitting words through a callback so the caller never
   holds more than its own chunk.  The carried state is the partially
   accumulated varint (acc/shift), a completed run token still waiting
   for its count varint, and the predictor word.  The checks — and their
   messages — are the batch decoder's, in the same order. *)

type decoder = {
  d_emit : int -> unit;
  d_limit : int;
  d_expect : int option;
  mutable d_acc : int;  (* varint accumulated so far *)
  mutable d_shift : int;  (* next continuation byte's shift; 0 = idle *)
  mutable d_tok : int;  (* run token awaiting its count varint; -1 = none *)
  mutable d_prev : int;
  mutable d_emitted : int;
}

let decoder ?expect ~emit () =
  let limit = match expect with Some e -> e | None -> max_decoded_words in
  {
    d_emit = emit;
    d_limit = limit;
    d_expect = expect;
    d_acc = 0;
    d_shift = 0;
    d_tok = -1;
    d_prev = 0;
    d_emitted = 0;
  }

let decoder_run d delta count =
  d.d_emitted <- d.d_emitted + count;
  if d.d_emitted > d.d_limit then
    raise (Corrupt (Printf.sprintf "decoded stream exceeds %d words" d.d_limit));
  for _ = 1 to count do
    d.d_prev <- (d.d_prev + delta) land mask32;
    d.d_emit d.d_prev
  done

let decode_byte d c =
  if d.d_shift > 62 then raise (Corrupt "varint overflow");
  let b = Char.code c in
  let acc = d.d_acc lor ((b land 0x7F) lsl d.d_shift) in
  if acc < 0 then raise (Corrupt "varint overflow");
  if b land 0x80 <> 0 then begin
    d.d_acc <- acc;
    d.d_shift <- d.d_shift + 7
  end
  else begin
    d.d_acc <- 0;
    d.d_shift <- 0;
    if d.d_tok >= 0 then begin
      (* [acc] is the extra-repeat count of the pending run token *)
      let tok = d.d_tok in
      d.d_tok <- -1;
      decoder_run d (unzigzag (tok lsr 1)) (acc + 1)
    end
    else if acc land 1 = 1 then d.d_tok <- acc
    else decoder_run d (unzigzag (acc lsr 1)) 1
  end

let decode_bytes d (s : string) ~pos ~len =
  for i = pos to pos + len - 1 do
    decode_byte d s.[i]
  done

let decode_finish d =
  if d.d_shift > 0 || d.d_tok >= 0 then raise (Corrupt "truncated varint");
  match d.d_expect with
  | Some e when e <> d.d_emitted ->
    raise (Corrupt (Printf.sprintf "decoded %d words, expected %d" d.d_emitted e))
  | _ -> ()

let decode ?expect (s : string) : int array =
  let out = Buffer.create ((String.length s * 4) + 16) in
  let d =
    decoder ?expect ~emit:(fun w -> Buffer.add_int32_le out (Int32.of_int w)) ()
  in
  decode_bytes d s ~pos:0 ~len:(String.length s);
  decode_finish d;
  let nwords = Buffer.length out / 4 in
  let b = Buffer.to_bytes out in
  Array.init nwords (fun i ->
      Int32.to_int (Bytes.get_int32_le b (i * 4)) land mask32)

(* ------------------------------------------------------------------ *)
(* LZSS layer.

   Delta/varint alone only exploits *constant* strides; the dominant
   redundancy in a real system trace is repeating delta *sequences* —
   every loop iteration emits the same few block-record deltas.  The
   Mache compressor (Samples 1989) attacked exactly this by piping the
   per-stream deltas through LZ, and the paper's community shipped its
   Tunix tapes through compress(1).  This is that second stage: LZSS with
   a 32KB window over the delta byte stream.

   Wire format: groups of exactly 8 items, each group led by a control
   byte (bit i set = item i is a match).  A literal is one raw byte; a
   match is a 2-byte little-endian back-distance (1..65535, <= bytes
   emitted) and a 1-byte length-minus-4 (matches span 4..259 bytes and
   may self-overlap, RLE-style).  A distance of 0 is a padding item the
   decoder skips: the packer fills the final group with them so every
   complete stream is group-aligned — which makes the concatenation of
   complete streams itself a valid stream, the property the block-
   flushing {!Tracefile} writer relies on. *)

let lz_min_match = 4
let lz_max_match = 259
let lz_max_dist = 65535
let lz_hash_bits = 15

(* Match-finder tuning.  [lz_max_tries] bounds the hash-chain walk per
   position; [lz_nice_len] is the "good enough" length — once a match
   this long is found the walk stops, because the marginal ratio gain of
   a longer one never pays for the remaining chain probes on trace
   deltas (loop bodies repeat in short bursts, not megabyte runs).
   [lz_max_insert] caps how many positions inside an emitted match are
   registered in the hash chains: trace matches average ~8 bytes, and
   hashing every covered byte was the single largest cost in the packer
   while the tail positions of a match add chain depth, not new matches
   (measured: full insertion buys ~0.5% ratio for ~25% more time). *)
let lz_max_tries = 16
let lz_nice_len = 64
let lz_max_insert = 2

(* Unaligned 16-bit load: an unboxed compiler intrinsic, so the match
   scan compares two bytes per step and the 4-byte hash needs two loads
   instead of four.  Native-endian, which only perturbs hash bucketing
   (which match gets chosen), never decoded bytes — the emitted token
   format is byte-order-defined. *)
external get16u : string -> int -> int = "%caml_string_get16u"

let lzss_pack (src : string) : string =
  let n = String.length src in
  (* Exact worst case: all-literal output is [n] item bytes plus one
     control byte per 8 items, and the tail pad adds at most 7 dist-0
     items (21 bytes) plus one control byte — so a fixed buffer of
     [n + n/8 + 32] can never overflow and the hot loop carries no
     growth checks at all. *)
  let out = Bytes.create (n + (n lsr 3) + 32) in
  let o = ref 0 in
  (* pending group: control byte is patched in place when the group
     closes, so items stream straight into [out] with no staging buffer *)
  let ctrl_pos = ref 0 and ctrl = ref 0 and nitems = ref 0 in
  let close_group () =
    Bytes.unsafe_set out !ctrl_pos (Char.unsafe_chr !ctrl);
    ctrl := 0;
    nitems := 0
  in
  let add_literal c =
    if !nitems = 0 then begin
      ctrl_pos := !o;
      incr o
    end;
    Bytes.unsafe_set out !o c;
    incr o;
    incr nitems;
    if !nitems = 8 then close_group ()
  in
  let add_match dist len =
    if !nitems = 0 then begin
      ctrl_pos := !o;
      incr o
    end;
    ctrl := !ctrl lor (1 lsl !nitems);
    Bytes.unsafe_set out !o (Char.unsafe_chr (dist land 0xFF));
    Bytes.unsafe_set out (!o + 1) (Char.unsafe_chr (dist lsr 8));
    Bytes.unsafe_set out (!o + 2) (Char.unsafe_chr (len - lz_min_match));
    o := !o + 3;
    incr nitems;
    if !nitems = 8 then close_group ()
  in
  let hmask = (1 lsl lz_hash_bits) - 1 in
  let head = Array.make (1 lsl lz_hash_bits) (-1) in
  let chain = Array.make (max n 1) (-1) in
  (* 4-byte multiplicative hash (Fibonacci constant); one multiply on
     the packed word beats the per-byte mix it replaces, and quality is
     equivalent for chain bucketing.  Caller guarantees [i + 4 <= n]. *)
  let hash i =
    ((get16u src i lor (get16u src (i + 2) lsl 16)) * 0x9E3779B1)
    lsr 16
    land hmask
  in
  (* last position with 4 bytes of lookahead, i.e. the last hashable one *)
  let hash_end = n - lz_min_match in
  let insert i =
    if i <= hash_end then begin
      let h = hash i in
      Array.unsafe_set chain i (Array.unsafe_get head h);
      Array.unsafe_set head h i
    end
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_pos = ref (-1) in
    if !i + lz_min_match <= n then begin
      let pos = !i in
      let lim = if lz_max_match < n - pos then lz_max_match else n - pos in
      let nice = if lz_nice_len < lim then lz_nice_len else lim in
      (* chains run newest-to-oldest, so the first candidate past the
         window ends the walk — no per-candidate distance re-check *)
      let min_pos = pos - lz_max_dist in
      let cand = ref (Array.unsafe_get head (hash pos)) in
      let tries = ref lz_max_tries in
      let continue = ref true in
      while !continue && !cand >= min_pos && !cand >= 0 && !tries > 0 do
        let c = !cand in
        (* quick reject: a candidate that can't beat [best_len] differs
           at offset [best_len]; one compare skips the whole scan.
           [best_len < nice <= lim] here, so both indices are in range. *)
        if
          !best_len = 0
          || String.unsafe_get src (c + !best_len)
             = String.unsafe_get src (pos + !best_len)
        then begin
          (* two bytes per compare; the trailing odd byte is settled by
             one final char test (the 16-bit miss pins the mismatch to
             one of the two bytes, so the char test is exact) *)
          let k = ref 0 in
          while !k + 1 < lim && get16u src (c + !k) = get16u src (pos + !k) do
            k := !k + 2
          done;
          if
            !k < lim
            && String.unsafe_get src (c + !k) = String.unsafe_get src (pos + !k)
          then incr k;
          if !k > !best_len then begin
            best_len := !k;
            best_pos := c;
            if !k >= nice then continue := false
          end
        end;
        cand := Array.unsafe_get chain c;
        decr tries
      done
    end;
    if !best_len >= lz_min_match then begin
      add_match (!i - !best_pos) !best_len;
      (* register covered positions, bounds check hoisted; for matches
         longer than [lz_max_insert] only the head region is hashed —
         the tail of a long repeat adds chain depth, not new matches *)
      let ins = if !best_len < lz_max_insert then !best_len else lz_max_insert in
      let stop =
        if !i + ins - 1 < hash_end then !i + ins - 1 else hash_end
      in
      for k = !i to stop do
        let h = hash k in
        Array.unsafe_set chain k (Array.unsafe_get head h);
        Array.unsafe_set head h k
      done;
      i := !i + !best_len
    end
    else begin
      add_literal (String.unsafe_get src !i);
      insert !i;
      incr i
    end
  done;
  (* group-align the tail with padding items (dist-0 matches, skipped by
     the decoder), so complete streams concatenate into valid streams *)
  if !nitems > 0 then begin
    while !nitems < 8 do
      ctrl := !ctrl lor (1 lsl !nitems);
      Bytes.unsafe_set out !o '\000';
      Bytes.unsafe_set out (!o + 1) '\000';
      Bytes.unsafe_set out (!o + 2) '\000';
      o := !o + 3;
      incr nitems
    done;
    close_group ()
  end;
  Bytes.sub_string out 0 !o

(* The LZSS stage expands at most ~65x (a 4-byte match token yields up to
   259 bytes), but a hostile stream still reaches gigabytes from a modest
   input; [limit] bounds the decompressed size so corruption surfaces as
   [Corrupt] before the allocation, not as OOM.  The default admits the
   largest stream {!decode} would accept anyway. *)
let max_delta_bytes_per_word = 10 (* 5-byte token + 5-byte run varint *)

(* Incremental LZSS decoder.  Matches reach back at most [lz_max_dist]
   bytes, so a 64K ring of recent output is a complete history — the
   decoder never holds the decompressed stream, only the ring plus a
   partially read group (control byte, item index, up to two buffered
   bytes of a split match token).  A chunk boundary may fall anywhere,
   including inside a token.  Dist-0 match items are the packer's
   group-alignment padding and emit nothing; end-of-input between items
   is still accepted for leniency, though the packer always ends on a
   group boundary. *)

let lz_hist_size = 65536 (* power of two > lz_max_dist *)

type lz_decoder = {
  z_emit : char -> unit;
  z_limit : int;
  z_hist : Bytes.t;  (* ring of the last [lz_hist_size] output bytes *)
  z_tok : Bytes.t;  (* partially received match token *)
  mutable z_ctrl : int;
  mutable z_item : int;  (* 8 = between groups: next byte is a control *)
  mutable z_ntok : int;
  mutable z_total : int;  (* output bytes emitted so far *)
}

let lz_decoder ?(limit = max_decoded_words * max_delta_bytes_per_word) ~emit ()
    =
  {
    z_emit = emit;
    z_limit = limit;
    z_hist = Bytes.create lz_hist_size;
    z_tok = Bytes.create 3;
    z_ctrl = 0;
    z_item = 8;
    z_ntok = 0;
    z_total = 0;
  }

let lz_out z c =
  if z.z_total >= z.z_limit then
    raise (Corrupt (Printf.sprintf "LZSS stream exceeds %d bytes" z.z_limit));
  Bytes.set z.z_hist (z.z_total land (lz_hist_size - 1)) c;
  z.z_total <- z.z_total + 1;
  z.z_emit c

let lz_decode_byte z c =
  if z.z_item >= 8 then begin
    z.z_ctrl <- Char.code c;
    z.z_item <- 0
  end
  else if z.z_ctrl land (1 lsl z.z_item) <> 0 then begin
    Bytes.set z.z_tok z.z_ntok c;
    z.z_ntok <- z.z_ntok + 1;
    if z.z_ntok = 3 then begin
      z.z_ntok <- 0;
      z.z_item <- z.z_item + 1;
      let dist =
        Char.code (Bytes.get z.z_tok 0)
        lor (Char.code (Bytes.get z.z_tok 1) lsl 8)
      in
      let len = Char.code (Bytes.get z.z_tok 2) + lz_min_match in
      let start = z.z_total - dist in
      if dist = 0 then () (* padding item: group alignment, emits nothing *)
      else if start < 0 then raise (Corrupt "bad LZSS distance")
      else
        (* may self-overlap: copy byte-at-a-time through the ring *)
        for k = 0 to len - 1 do
          lz_out z (Bytes.get z.z_hist ((start + k) land (lz_hist_size - 1)))
        done
    end
  end
  else begin
    lz_out z c;
    z.z_item <- z.z_item + 1
  end

let lz_decode_bytes z (s : string) ~pos ~len =
  for i = pos to pos + len - 1 do
    lz_decode_byte z s.[i]
  done

let lz_decode_finish z =
  if z.z_ntok > 0 then raise (Corrupt "truncated LZSS stream")

let lzss_unpack ?limit (src : string) : string =
  let out = Buffer.create ((String.length src * 3) + 16) in
  let z = lz_decoder ?limit ~emit:(Buffer.add_char out) () in
  lz_decode_bytes z src ~pos:0 ~len:(String.length src);
  lz_decode_finish z;
  Buffer.contents out

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven.

   The v3 {!Tracefile} trailer stores one CRC per compressed block plus
   one over the index itself, so a seeking reader can tell "this block
   rotted on disk" apart from "this index is lying" before it decodes
   anything.  Plain OCaml ints; the 32-bit result is always
   non-negative. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_update crc (s : string) ~pos ~len =
  let t = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get t ((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 s = crc32_update 0 s ~pos:0 ~len:(String.length s)

(* ------------------------------------------------------------------ *)
(* Semantic preconditioning (v3 codec 1).

   The delta stage above treats the trace as one undifferentiated word
   sequence, so every kernel-word/user-word/marker interleave lands a
   huge delta that costs 5 varint bytes and breaks the run detector.
   But trace words HAVE structure the generic stage cannot see (the HMTT
   "semantic gap"): markers cluster in a 64KB window, basic-block words
   walk program text in small PC deltas, data addresses walk arrays in
   fixed strides — each a beautifully compressible stream on its own,
   ruined only by being shuffled together.

   So: classify each word by the address-space region that produced it
   (plus the drain protocol's count words, which are small integers, not
   addresses), run-length encode the class sequence, and delta/varint
   each class's words against its OWN predecessor.  PC-deltas stay small
   because no data address intervenes; array strides become run tokens
   because the stride is uninterrupted.  The classifier is heuristic and
   encoder-only — the class runs are recorded on the wire, so a
   misclassified word costs ratio, never correctness, and the decoder
   needs no block tables.

   Body layout (before the LZSS stage):

     varint(nruns)
     nruns x varint((run_length - 1) * 8 + class)
     nclasses x varint(stream_bytes)
     the class streams, concatenated in class order

   Each class stream is exactly the incremental {!encoder}'s token
   stream, started fresh (prev = 0), so blocks decode independently. *)

let n_classes = 6

(* Classes: 0 markers, 1 drain-count words, 2 user text (bb records),
   3 user data/stack, 4 kseg0 (kernel text + data), 5 kseg1/kseg2
   (devices, page tables).  The split points are the address-space
   layout of the traced system; a foreign trace still round-trips, just
   with whatever ratio its own layout earns. *)
let class_of ~count_next w =
  if count_next then 1
  else if Format_.is_marker w then 0
  else if w < 0x10000000 then 2
  else if w < 0x80000000 then 3
  else if w < 0xA0000000 then 4
  else 5

let encode_semantic (words : int array) ~pos ~len : string =
  let runs = Buffer.create 256 in
  let streams = Array.init n_classes (fun _ -> Buffer.create 256) in
  let encs = Array.init n_classes (fun _ -> encoder ()) in
  let nruns = ref 0 in
  let run_class = ref (-1) and run_len = ref 0 in
  let close_run () =
    if !run_len > 0 then begin
      put_varint runs (((!run_len - 1) lsl 3) lor !run_class);
      incr nruns
    end
  in
  let count_next = ref false in
  for i = pos to pos + len - 1 do
    let w = words.(i) in
    let c = class_of ~count_next:!count_next w in
    count_next :=
      (not !count_next) && Format_.is_marker w
      && Format_.marker_kind w = Format_.kind_drain;
    if c = !run_class then incr run_len
    else begin
      close_run ();
      run_class := c;
      run_len := 1
    end;
    let e = encs.(c) and buf = streams.(c) in
    let d = delta32 w e.e_prev in
    e.e_prev <- w;
    if e.e_count > 0 && d = e.e_delta then e.e_count <- e.e_count + 1
    else begin
      encoder_flush e buf;
      e.e_delta <- d;
      e.e_count <- 1
    end
  done;
  close_run ();
  Array.iteri (fun c e -> encoder_flush e streams.(c)) encs;
  let out =
    Buffer.create
      (Buffer.length runs
      + Array.fold_left (fun a b -> a + Buffer.length b) 64 streams)
  in
  put_varint out !nruns;
  Buffer.add_buffer out runs;
  Array.iter (fun b -> put_varint out (Buffer.length b)) streams;
  Array.iter (fun b -> Buffer.add_buffer out b) streams;
  Buffer.contents out

let decode_semantic ~expect (s : string) : int array =
  let n = String.length s in
  let p = ref 0 in
  let get_varint () =
    let acc = ref 0 and shift = ref 0 and fin = ref false in
    while not !fin do
      if !p >= n then raise (Corrupt "semantic block: truncated varint");
      if !shift > 62 then raise (Corrupt "semantic block: varint overflow");
      let b = Char.code s.[!p] in
      incr p;
      acc := !acc lor ((b land 0x7F) lsl !shift);
      if !acc < 0 then raise (Corrupt "semantic block: varint overflow");
      if b land 0x80 = 0 then fin := true else shift := !shift + 7
    done;
    !acc
  in
  let nruns = get_varint () in
  if nruns > expect then
    raise
      (Corrupt
         (Printf.sprintf "semantic block: %d runs for %d words" nruns expect));
  let run_class = Array.make (max nruns 1) 0 in
  let run_len = Array.make (max nruns 1) 0 in
  let counts = Array.make n_classes 0 in
  let total = ref 0 in
  for r = 0 to nruns - 1 do
    let tok = get_varint () in
    let c = tok land 7 and l = (tok lsr 3) + 1 in
    if c >= n_classes then raise (Corrupt "semantic block: bad class");
    run_class.(r) <- c;
    run_len.(r) <- l;
    counts.(c) <- counts.(c) + l;
    total := !total + l;
    if !total > expect then
      raise
        (Corrupt
           (Printf.sprintf "semantic block: runs cover %d words, expected %d"
              !total expect))
  done;
  if !total <> expect then
    raise
      (Corrupt
         (Printf.sprintf "semantic block: runs cover %d words, expected %d"
            !total expect));
  let lens = Array.init n_classes (fun _ -> get_varint ()) in
  let start = Array.make n_classes 0 in
  let off = ref !p in
  Array.iteri
    (fun c l ->
      start.(c) <- !off;
      if l < 0 || !off + l > n then
        raise (Corrupt "semantic block: stream lengths exceed block");
      off := !off + l)
    lens;
  if !off <> n then raise (Corrupt "semantic block: trailing bytes");
  (* decode each class stream into its own array, then interleave *)
  let cls_words =
    Array.init n_classes (fun c ->
        let out = Array.make (max counts.(c) 1) 0 in
        let k = ref 0 in
        let d = decoder ~expect:counts.(c) ~emit:(fun w ->
            out.(!k) <- w;
            incr k) ()
        in
        decode_bytes d s ~pos:start.(c) ~len:lens.(c);
        decode_finish d;
        out)
  in
  let idx = Array.make n_classes 0 in
  let out = Array.make (max expect 1) 0 in
  let o = ref 0 in
  for r = 0 to nruns - 1 do
    let c = run_class.(r) in
    let src = cls_words.(c) and i = idx.(c) in
    Array.blit src i out !o run_len.(r);
    idx.(c) <- i + run_len.(r);
    o := !o + run_len.(r)
  done;
  if expect = 0 then [||] else out

(* ------------------------------------------------------------------ *)

(* Parallel pack.  The delta stream is split into fixed-size blocks and
   each block is LZSS-packed independently on the domain pool, then the
   outputs are concatenated.  This changes nothing about the wire format:
   every complete LZSS stream is group-aligned (the packer pads the final
   control group with dist-0 items) and a block's matches only reach back
   into its own output, so the concatenation of per-block streams is
   itself a valid stream — the same property the block-flushing
   {!Tracefile} writer already relies on.  Cross-block matches are lost,
   costing a fraction of a percent of ratio (the window is 64K, the
   blocks 256K).  With [jobs <= 1], or input at most one block, the
   serial packer runs unchanged and the output is byte-identical to
   before. *)

let pack_block_bytes = 256 * 1024

let lzss_pack_blocks ~jobs ~block_bytes (src : string) : string =
  let n = String.length src in
  if jobs <= 1 || n <= block_bytes then lzss_pack src
  else begin
    let nblocks = (n + block_bytes - 1) / block_bytes in
    let blocks =
      List.init nblocks (fun k ->
          let pos = k * block_bytes in
          String.sub src pos (min block_bytes (n - pos)))
    in
    String.concat "" (Systrace_util.Pool.map ~jobs lzss_pack blocks)
  end

let pack ?(jobs = 1) ?(block_bytes = pack_block_bytes) (words : int array) :
    string =
  lzss_pack_blocks ~jobs ~block_bytes (encode words)

let unpack ?expect (s : string) : int array =
  let limit =
    match expect with
    | Some e -> (e * max_delta_bytes_per_word) + 16
    | None -> max_decoded_words * max_delta_bytes_per_word
  in
  decode ?expect (lzss_unpack ~limit s)

let ratio (words : int array) : float =
  if Array.length words = 0 then 1.0
  else
    float_of_int (String.length (pack words))
    /. float_of_int (4 * Array.length words)
