(* Delta/varint compression of trace word streams.

   The paper's trace volumes are the central engineering constraint: a
   64 MB kernel buffer holds about two seconds of execution, and §3.5
   justifies the one-word format because "it makes the trace more concise,
   so the trace takes less space and less time to write".  When a trace
   leaves the machine — the Tunix tapes of §3.4, or this repository's
   `systrace dump` — the same pressure applies to the stored bytes.

   The scheme here is the classic address-trace compressor in the PDATS
   family (Johnson & Ha, 1994): consecutive trace words are highly
   correlated — block records repeat around loops, data addresses walk
   arrays in fixed strides, markers cluster — so we store the difference
   from the previous word, zigzag-mapped to favour small magnitudes,
   varint-encoded (7 bits per byte), with a run-length extension for
   repeated deltas (a stride walking an array becomes a single token).

   Token format, self-describing:
     varint( zigzag(delta) * 2 + has_run )
     if has_run: varint(extra)     -- the delta repeats [extra] more times

   The format is lossless and order-preserving: [decode (encode w) = w]
   for every word sequence, checked by a qcheck property and by a
   roundtrip of a real captured trace in the test suite. *)

(* Deltas are differences of 32-bit words, reduced to the signed 32-bit
   range so that a wraparound (e.g. a marker in kseg1 followed by a low
   user text address) still yields a small-ish magnitude. *)
let mask32 = 0xFFFFFFFF

let delta32 cur prev =
  let d = (cur - prev) land mask32 in
  if d land 0x80000000 <> 0 then d - 0x100000000 else d

let zigzag d = if d < 0 then ((-d) lsl 1) - 1 else d lsl 1
let unzigzag z = if z land 1 = 1 then -((z + 1) lsr 1) else z lsr 1

let put_varint buf v =
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7F)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

exception Corrupt of string

(* [get_varint s pos] returns (value, next position). *)
let get_varint s pos =
  let n = String.length s in
  let rec go pos shift acc =
    if pos >= n then raise (Corrupt "truncated varint");
    if shift > 62 then raise (Corrupt "varint overflow");
    let b = Char.code s.[pos] in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if acc < 0 then raise (Corrupt "varint overflow");
    if b land 0x80 <> 0 then go (pos + 1) (shift + 7) acc else (acc, pos + 1)
  in
  go pos 0 0

let encode (words : int array) : string =
  let buf = Buffer.create (Array.length words) in
  let n = Array.length words in
  let prev = ref 0 in
  let i = ref 0 in
  while !i < n do
    let d = delta32 words.(!i) !prev in
    (* count additional words continuing the same stride *)
    let run = ref 0 in
    let p = ref words.(!i) in
    while
      !i + !run + 1 < n && delta32 words.(!i + !run + 1) !p = d
    do
      incr run;
      p := words.(!i + !run)
    done;
    if !run > 0 then begin
      put_varint buf ((zigzag d lsl 1) lor 1);
      put_varint buf !run
    end
    else put_varint buf (zigzag d lsl 1);
    prev := !p;
    i := !i + !run + 1
  done;
  Buffer.contents buf

(* Without this bound a hostile run-length token could claim a
   multi-billion-word run and exhaust memory before any structural check
   fires; 2^26 words (256 MiB decoded) is beyond any real capture — the
   paper's largest kernel buffer is 64 MB — and callers with a trusted
   word count should pass [?expect], which bounds the decode exactly. *)
let max_decoded_words = 1 lsl 26

let decode ?expect (s : string) : int array =
  let out = Buffer.create (String.length s * 4) in
  let n = String.length s in
  let prev = ref 0 in
  let pos = ref 0 in
  let emitted = ref 0 in
  let limit = match expect with Some e -> e | None -> max_decoded_words in
  let emit w =
    Buffer.add_int32_le out (Int32.of_int w);
    prev := w
  in
  while !pos < n do
    let tok, p = get_varint s !pos in
    let d = unzigzag (tok lsr 1) in
    let extra, p =
      if tok land 1 = 1 then get_varint s p else (0, p)
    in
    pos := p;
    emitted := !emitted + extra + 1;
    if !emitted > limit then
      raise
        (Corrupt
           (Printf.sprintf "decoded stream exceeds %d words"
              limit));
    for _ = 0 to extra do
      emit ((!prev + d) land mask32)
    done
  done;
  let nwords = Buffer.length out / 4 in
  (match expect with
  | Some e when e <> nwords ->
    raise (Corrupt (Printf.sprintf "decoded %d words, expected %d" nwords e))
  | _ -> ());
  let b = Buffer.to_bytes out in
  Array.init nwords (fun i ->
      Int32.to_int (Bytes.get_int32_le b (i * 4)) land mask32)

(* ------------------------------------------------------------------ *)
(* LZSS layer.

   Delta/varint alone only exploits *constant* strides; the dominant
   redundancy in a real system trace is repeating delta *sequences* —
   every loop iteration emits the same few block-record deltas.  The
   Mache compressor (Samples 1989) attacked exactly this by piping the
   per-stream deltas through LZ, and the paper's community shipped its
   Tunix tapes through compress(1).  This is that second stage: LZSS with
   a 32KB window over the delta byte stream.

   Wire format: groups of up to 8 items, each group led by a control byte
   (bit i set = item i is a match).  A literal is one raw byte; a match is
   a 2-byte little-endian back-distance (1..65535, <= bytes emitted) and a
   1-byte length-minus-4 (matches span 4..259 bytes and may self-overlap,
   RLE-style). *)

let lz_min_match = 4
let lz_max_match = 259
let lz_max_dist = 65535
let lz_hash_bits = 15

let lz_hash s i =
  (* 4-byte hash, FNV-ish *)
  let b k = Char.code s.[i + k] in
  let h = (b 0 * 0x9E3779B1) lxor (b 1 * 0x85EBCA77)
          lxor (b 2 * 0xC2B2AE3D) lxor (b 3 * 0x27D4EB2F) in
  (h lsr 7) land ((1 lsl lz_hash_bits) - 1)

let lzss_pack (src : string) : string =
  let n = String.length src in
  let out = Buffer.create (n / 2) in
  let head = Array.make (1 lsl lz_hash_bits) (-1) in
  let chain = Array.make (max n 1) (-1) in
  (* pending group: control bits + encoded items *)
  let ctrl = ref 0 and nitems = ref 0 in
  let items = Buffer.create 32 in
  let flush_group () =
    if !nitems > 0 then begin
      Buffer.add_char out (Char.chr !ctrl);
      Buffer.add_buffer out items;
      Buffer.clear items;
      ctrl := 0;
      nitems := 0
    end
  in
  let add_literal c =
    Buffer.add_char items c;
    incr nitems;
    if !nitems = 8 then flush_group ()
  in
  let add_match dist len =
    ctrl := !ctrl lor (1 lsl !nitems);
    Buffer.add_char items (Char.chr (dist land 0xFF));
    Buffer.add_char items (Char.chr (dist lsr 8));
    Buffer.add_char items (Char.chr (len - lz_min_match));
    incr nitems;
    if !nitems = 8 then flush_group ()
  in
  let insert i = (* register position i in the hash chains *)
    if i + lz_min_match <= n then begin
      let h = lz_hash src i in
      chain.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let match_len i j =
    (* longest common run of src[i..] and src[j..], capped *)
    let lim = min lz_max_match (n - i) in
    let k = ref 0 in
    while !k < lim && src.[i + !k] = src.[j + !k] do incr k done;
    !k
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_pos = ref (-1) in
    if !i + lz_min_match <= n then begin
      let cand = ref head.(lz_hash src !i) in
      let tries = ref 64 in
      while !cand >= 0 && !tries > 0 do
        if !i - !cand <= lz_max_dist then begin
          let l = match_len !i !cand in
          if l > !best_len then begin
            best_len := l;
            best_pos := !cand
          end
        end;
        cand := chain.(!cand);
        decr tries
      done
    end;
    if !best_len >= lz_min_match then begin
      add_match (!i - !best_pos) !best_len;
      for k = !i to !i + !best_len - 1 do insert k done;
      i := !i + !best_len
    end
    else begin
      add_literal src.[!i];
      insert !i;
      incr i
    end
  done;
  flush_group ();
  Buffer.contents out

(* The LZSS stage expands at most ~65x (a 4-byte match token yields up to
   259 bytes), but a hostile stream still reaches gigabytes from a modest
   input; [limit] bounds the decompressed size so corruption surfaces as
   [Corrupt] before the allocation, not as OOM.  The default admits the
   largest stream {!decode} would accept anyway. *)
let max_delta_bytes_per_word = 10 (* 5-byte token + 5-byte run varint *)

let lzss_unpack ?(limit = max_decoded_words * max_delta_bytes_per_word)
    (src : string) : string =
  let n = String.length src in
  let out = Buffer.create (min (n * 3) (limit + 1)) in
  let pos = ref 0 in
  let byte () =
    if !pos >= n then raise (Corrupt "truncated LZSS stream");
    let c = src.[!pos] in
    incr pos;
    c
  in
  let check_room len =
    if Buffer.length out + len > limit then
      raise (Corrupt (Printf.sprintf "LZSS stream exceeds %d bytes" limit))
  in
  while !pos < n do
    let ctrl = Char.code (byte ()) in
    let item = ref 0 in
    while !item < 8 && !pos < n do
      if ctrl land (1 lsl !item) <> 0 then begin
        let lo = Char.code (byte ()) in
        let hi = Char.code (byte ()) in
        let len = Char.code (byte ()) + lz_min_match in
        let dist = lo lor (hi lsl 8) in
        let start = Buffer.length out - dist in
        if dist = 0 || start < 0 then raise (Corrupt "bad LZSS distance");
        check_room len;
        (* may self-overlap: copy byte-at-a-time through the buffer *)
        for k = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + k))
        done
      end
      else begin
        check_room 1;
        Buffer.add_char out (byte ())
      end;
      incr item
    done
  done;
  Buffer.contents out

(* ------------------------------------------------------------------ *)

let pack (words : int array) : string = lzss_pack (encode words)

let unpack ?expect (s : string) : int array =
  let limit =
    match expect with
    | Some e -> (e * max_delta_bytes_per_word) + 16
    | None -> max_decoded_words * max_delta_bytes_per_word
  in
  decode ?expect (lzss_unpack ~limit s)

let ratio (words : int array) : float =
  if Array.length words = 0 then 1.0
  else
    float_of_int (String.length (pack words))
    /. float_of_int (4 * Array.length words)
