(* Static basic-block lookup table.

   Keyed by the basic-block record address that appears in the trace — the
   address of the first instruction of the *instrumented* block body (the
   return address bbtrace captures).  Each entry carries the information the
   trace parsing library needs to reconstruct the reference stream of the
   *original* binary: the block's original address, its instruction count,
   and the position/size/direction of every memory reference.

   Entries can be flagged: IDLE blocks drive the idle-loop instruction
   counters used to estimate I/O time (paper, sections 3.5 and 5.1);
   HAND marks hand-traced routines, whose records are built manually rather
   than by epoxie. *)

type entry = {
  orig_addr : int;                    (* block address in the original binary *)
  ninsns : int;
  mems : (int * int * bool) array;    (* (position, bytes, is_load) *)
  flags : int;
}

let flag_idle = 1
let flag_hand = 2

let is_idle e = e.flags land flag_idle <> 0
let is_hand = fun e -> e.flags land flag_hand <> 0

type t = {
  entries : (int, entry) Hashtbl.t;
  mutable total_blocks : int;
}

let create () = { entries = Hashtbl.create 1024; total_blocks = 0 }

let add t ~record_addr entry =
  if Hashtbl.mem t.entries record_addr then
    failwith
      (Printf.sprintf "Bbtable.add: duplicate record address 0x%x" record_addr);
  Hashtbl.add t.entries record_addr entry;
  t.total_blocks <- t.total_blocks + 1

let find t record_addr = Hashtbl.find_opt t.entries record_addr

(* Allocation-free lookup for the parser's hot loop. *)
let find_exn t record_addr = Hashtbl.find t.entries record_addr

let mem t record_addr = Hashtbl.mem t.entries record_addr

let size t = t.total_blocks

(* Merge [src] into [dst] (e.g. kernel table + hand-traced entries). *)
let merge_into ~dst src =
  Hashtbl.iter (fun k e -> add dst ~record_addr:k e) src.entries

let iter f t = Hashtbl.iter f t.entries

(* Mark every block whose record address falls in [lo, hi) with [flag];
   used to tag the kernel idle loop after linking. *)
let flag_range t ~lo ~hi flag =
  let updates =
    Hashtbl.fold
      (fun k e acc -> if k >= lo && k < hi then (k, e) :: acc else acc)
      t.entries []
  in
  List.iter
    (fun (k, e) -> Hashtbl.replace t.entries k { e with flags = e.flags lor flag })
    updates

(* Same, keyed on the ORIGINAL block address range. *)
let flag_orig_range t ~lo ~hi flag =
  let updates =
    Hashtbl.fold
      (fun k e acc ->
        if e.orig_addr >= lo && e.orig_addr < hi then (k, e) :: acc else acc)
      t.entries []
  in
  List.iter
    (fun (k, e) -> Hashtbl.replace t.entries k { e with flags = e.flags lor flag })
    updates
