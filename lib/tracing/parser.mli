(** Trace parsing library (paper §3.3, §4.3).

    Consumes the in-kernel trace buffer (streamed in chunks, one per
    trace-analysis phase) and reconstructs the exact interleaved
    instruction and data reference stream of the original, uninstrumented
    binaries, using the static basic-block tables.

    Kernel trace is parsed with a stack of in-progress blocks so that
    nested exceptions (bracketed by EXC markers) interleave correctly; user
    trace arrives in DRAIN blocks and each process's parse state persists
    across drains, so blocks split by an exception reassemble.

    Defensive tracing: every block record must exist in the right address
    space's table, and data words must arrive exactly where the static
    record promises.  Violations surface two ways:

    - strict mode (the default) raises {!Corrupt} and discards the rest of
      the phase;
    - recovery mode ([create ~recover:true ()]) builds a structured
      {!error}, reports it through [on_error], abandons the suspect
      source state, resynchronizes at the next marker word, counts the
      skipped words per {!source}, and keeps parsing.  {!feed} never
      raises in recovery mode, whatever the input.

    {!feed} is allocation-free (sentinel open blocks, non-allocating
    table lookups, markers dispatched on their raw kind field, the
    innermost kernel source cached instead of read through the exception
    stack).  The variant-based marker dispatch that used to ship as a
    parallel "debug" word loop lives on as a qcheck oracle in the test
    suite: markers are a fraction of a percent of any real trace, so the
    duplicated loop could never be measured apart and was folded away. *)

exception Corrupt of string

(** Where a trace word was attributed when a violation fired. *)
type source =
  | Kernel of int  (** exception-nesting depth, 0 = base level *)
  | User of int  (** pid *)
  | Stream  (** framing: markers, drain counts, END *)

(** One defensive-tracing diagnosis. *)
type error = {
  at : int;  (** word index in the whole fed stream *)
  source : source;
  expected : string;  (** what the format promised at this point *)
  got : int;  (** the offending word (or count/pid for framing errors) *)
  in_drain : int;  (** enclosing drain's pid, -1 when outside a drain *)
  exc_depth : int;  (** kernel exception-nesting depth at the violation *)
  message : string;  (** the strict-mode {!Corrupt} message *)
}

val source_name : source -> string

val describe : error -> string
(** One-line rendering of a diagnosis: the strict-mode message plus the
    structured context. *)

type handlers = {
  on_inst : int -> int -> bool -> unit;
      (** [on_inst addr pid kernel]: one instruction fetch of the original
          binary. *)
  on_data : int -> int -> bool -> bool -> int -> unit;
      (** [on_data addr pid kernel is_load bytes]. *)
}

val null_handlers : handlers

type stats = {
  mutable words : int;
  mutable bb_records : int;
  mutable markers : int;
  mutable insts : int;
  mutable user_insts : int;
  mutable kernel_insts : int;
  mutable datas : int;
  mutable user_datas : int;
  mutable kernel_datas : int;
  mutable idle_insts : int;
  mutable drains : int;
  mutable pid_switches : int;
  mutable exc_markers : int;
  mutable max_exc_depth : int;
  mutable mode_transitions : int;
  mutable analysis_mode_words : int;
  mutable ended : bool;
  mutable parse_errors : int;
      (** diagnoses recorded (recovery mode; always 0 in strict mode) *)
  mutable skipped_words : int;
      (** words discarded while resynchronizing after a diagnosis *)
}

val fresh_stats : unit -> stats

type t

val create :
  ?recover:bool ->
  ?on_error:(error -> unit) ->
  kernel_bbs:Bbtable.t ->
  unit ->
  t
(** [recover] (default [false]) turns format violations into recorded
    {!error} diagnoses (reported through [on_error] as they happen)
    followed by resynchronization, instead of a {!Corrupt} exception. *)

val set_handlers : t -> handlers -> unit

val register_pid : t -> pid:int -> Bbtable.t -> unit
(** Register the block table for one process's binary. *)

val stats : t -> stats

val errors : t -> error list
(** Diagnoses recorded so far, in stream order (recovery mode). *)

val skipped : t -> (source * int) list
(** Words discarded per source while recovering, including each offending
    word itself.  Sums to [(stats t).skipped_words]. *)

val feed : t -> int array -> len:int -> unit
(** Feed one chunk of trace words.  Strict mode raises {!Corrupt} (or
    {!Format_.Bad_marker}) on format violations; recovery mode records
    diagnoses and never raises. *)

val finish : ?live:int list -> t -> unit
(** End-of-run check: every source must have completed its last block,
    except processes in [live] (e.g. a server still blocked in receive
    when the machine halted).  Violations raise {!Corrupt} in strict
    mode and are recorded as diagnoses in recovery mode. *)

val scan : int array -> error list
(** Table-free structural validation of a stored trace: marker kinds,
    drain framing, exception bracketing, END placement — everything
    checkable without the static block tables.  Never raises; reports
    every violation it can see (the first only, for trailing garbage
    after END) and keeps going.  Used by [systrace check] on traces whose
    binaries are not at hand. *)

type scanner
(** {!scan}'s state machine, exposed so a stored trace can be scanned
    chunk by chunk (e.g. through [Tracefile.fold_words]) in bounded
    memory.  The carried state is exactly what the scan threads between
    words, so chunking cannot change the diagnoses: for any split,
    feeding the pieces yields the same list {!scan} gives the
    concatenation. *)

val scanner : unit -> scanner

val scan_feed : scanner -> int array -> len:int -> unit
(** Scan the next [len] words.  Never raises. *)

val scan_finish : scanner -> error list
(** Run the end-of-input checks (truncated drain, unexited exception
    levels) and return every diagnosis in stream order. *)
