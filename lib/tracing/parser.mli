(** Trace parsing library (paper §3.3, §4.3).

    Consumes the in-kernel trace buffer (streamed in chunks, one per
    trace-analysis phase) and reconstructs the exact interleaved
    instruction and data reference stream of the original, uninstrumented
    binaries, using the static basic-block tables.

    Kernel trace is parsed with a stack of in-progress blocks so that
    nested exceptions (bracketed by EXC markers) interleave correctly; user
    trace arrives in DRAIN blocks and each process's parse state persists
    across drains, so blocks split by an exception reassemble.

    Defensive tracing: every block record must exist in the right address
    space's table, and data words must arrive exactly where the static
    record promises; violations raise {!Corrupt}.

    {!feed} runs an allocation-free fast path by default (sentinel open
    blocks, non-allocating table lookups, markers dispatched on their raw
    kind field); [create ~debug:true ()] selects the variant-based
    reference path, which a qcheck property holds equivalent on arbitrary
    valid and corrupted traces. *)

exception Corrupt of string

type handlers = {
  on_inst : int -> int -> bool -> unit;
      (** [on_inst addr pid kernel]: one instruction fetch of the original
          binary. *)
  on_data : int -> int -> bool -> bool -> int -> unit;
      (** [on_data addr pid kernel is_load bytes]. *)
}

val null_handlers : handlers

type stats = {
  mutable words : int;
  mutable bb_records : int;
  mutable markers : int;
  mutable insts : int;
  mutable user_insts : int;
  mutable kernel_insts : int;
  mutable datas : int;
  mutable user_datas : int;
  mutable kernel_datas : int;
  mutable idle_insts : int;
  mutable drains : int;
  mutable pid_switches : int;
  mutable exc_markers : int;
  mutable max_exc_depth : int;
  mutable mode_transitions : int;
  mutable analysis_mode_words : int;
  mutable ended : bool;
}

val fresh_stats : unit -> stats

type t

val create : ?debug:bool -> kernel_bbs:Bbtable.t -> unit -> t
(** [debug] (default [false]) routes {!feed} through the variant-based
    slow path instead of the allocation-free fast path. *)

val set_handlers : t -> handlers -> unit

val register_pid : t -> pid:int -> Bbtable.t -> unit
(** Register the block table for one process's binary. *)

val stats : t -> stats

val feed : t -> int array -> len:int -> unit
(** Feed one chunk of trace words (raises {!Corrupt} on format
    violations). *)

val finish : ?live:int list -> t -> unit
(** End-of-run check: every source must have completed its last block,
    except processes in [live] (e.g. a server still blocked in receive
    when the machine halted). *)
