(** Streaming trace consumers (paper §4.3).

    The traced system alternates trace-generation and trace-analysis
    phases over a bounded in-kernel buffer; a whole trace never exists
    in one place.  A sink is the analysis side of that contract: it
    receives each ANALYZE phase's words as they are drained and is told
    when the run is over, so every consumer — parser, simulator, disk
    writer, counter — works online in O(chunk) memory instead of over a
    materialized O(trace) array.

    Sinks compose: {!tee} fans one stream out to several consumers in
    order (parse + count + write to disk in one pass), and the
    constructors below cover the common endpoints.  The materializing
    {!to_array} is the compatibility sink for consumers that genuinely
    need the whole trace (e.g. replaying one capture under many cache
    configurations). *)

type t = {
  on_words : int array -> len:int -> unit;
      (** Receives [words.(0 .. len-1)], one call per ANALYZE phase.
          The array is borrowed for the duration of the call: producers
          may reuse it, so a sink must copy what it keeps. *)
  finish : unit -> unit;
      (** The run is over; flush, close, or run end-of-stream checks.
          Called once, after the final chunk. *)
}

val make : ?finish:(unit -> unit) -> (int array -> len:int -> unit) -> t
(** [make on_words] with a no-op [finish] by default. *)

val null : t
(** Discards everything. *)

val tee : t list -> t
(** Fan-out: every chunk goes to every sink, in list order, so each
    branch sees the identical word sequence.  [finish] runs every
    branch's [finish] even if one raises — a failing parser must not
    leave a file sink unclosed — then re-raises the first exception. *)

val batching : ?words:int -> t -> t
(** [batching ~words sink] coalesces small chunks into batches of up to
    [words] (default 65536) before forwarding, so a consumer with
    per-call overhead (file writer, parser) sees a few big chunks
    instead of many small ANALYZE-phase ones.  Chunks of [words] or more
    are passed through directly after a flush, so the forwarded word
    sequence is always identical to the input sequence.  [finish]
    flushes the remainder, then finishes [sink].  Raises
    [Invalid_argument] if [words < 1]. *)

val counting : unit -> t * (unit -> int)
(** A sink that counts words, and the read side of the counter. *)

val peak : unit -> t * (unit -> int)
(** Records the largest single chunk delivered — the peak resident
    trace words of a streamed run (the materialized equivalent is the
    whole trace length). *)

val to_parser : ?live:int list -> Parser.t -> t
(** Feeds chunks to {!Parser.feed}; [finish] runs
    [Parser.finish ?live].  Attach handlers to the parser first to
    drive a simulator online during generation. *)

val to_array : unit -> t * (unit -> int array)
(** The compatibility sink: copies every chunk and hands back the
    concatenation — deliberately O(trace) memory. *)

val to_file : ?compress:bool -> string -> t
(** Streams chunks to a trace file through {!Tracefile.open_writer},
    coalescing small chunks with {!batching}; [finish] flushes and
    closes it (patching the header word count).  Memory stays bounded
    by the batch either way; [~compress:true] writes the version-2
    format block by block. *)
