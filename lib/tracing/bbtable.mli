(** Static basic-block lookup table (paper §3.5).

    Keyed by the basic-block record address appearing in the trace — the
    address of the first instruction of the instrumented block body.  Each
    entry carries what the trace parsing library needs to reconstruct the
    original binary's reference stream: the block's original address, its
    instruction count, and the position/size/direction of each memory
    reference. *)

type entry = {
  orig_addr : int;                    (** block address in the original binary *)
  ninsns : int;
  mems : (int * int * bool) array;    (** (position, bytes, is_load) *)
  flags : int;
}

val flag_idle : int
(** Blocks of the kernel idle loop: drive the idle-instruction counters
    used to estimate I/O time (§3.5, §5.1). *)

val flag_hand : int
(** Hand-traced routines, whose records are built manually (§3.3). *)

val is_idle : entry -> bool
val is_hand : entry -> bool

type t

val create : unit -> t

val add : t -> record_addr:int -> entry -> unit
(** Raises [Failure] on a duplicate record address. *)

val find : t -> int -> entry option

val find_exn : t -> int -> entry
(** Allocation-free lookup (raises [Not_found]) for the parser's hot
    loop. *)

val mem : t -> int -> bool
val size : t -> int
val iter : (int -> entry -> unit) -> t -> unit

val merge_into : dst:t -> t -> unit

val flag_range : t -> lo:int -> hi:int -> int -> unit
(** Flag all blocks whose record address lies in [\[lo, hi)]. *)

val flag_orig_range : t -> lo:int -> hi:int -> int -> unit
(** Flag all blocks whose original address lies in [\[lo, hi)] — e.g. the
    kernel idle loop located from the original kernel's symbols. *)
