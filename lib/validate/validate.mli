(** The validation harness (paper §5): each workload runs twice on each
    system — MEASURED (uninstrumented binaries, untraced kernel, the
    machine's ground-truth counters standing in for the paper's
    high-resolution timer and TLB-counting kernel) and PREDICTED (traced
    system, with the collected trace driven through the memory-system
    simulator and the four-component time model).  Comparing the two
    reproduces Table 2, Figure 3 and Table 3. *)

open Systrace_tracing
open Systrace_kernel
open Systrace_tracesim

type os = Ultrix | Mach

val os_name : os -> string

type spec = {
  wname : string;
  files : Builder.file_spec list;
  programs : Builder.program list;
      (** excluding the UX server, which the harness adds under Mach *)
}

type measurement = {
  m_cycles : int;
  m_seconds : float;
  m_utlb : int;
  m_idle : int;
  m_user_insts : int;
  m_kernel_insts : int;
  m_insts : int;
  m_arith_ideal : int;
      (** pixie-style arithmetic-stall estimate (ideal-memory run) *)
  m_console : string;
  m_disk_reads : int;
  m_disk_writes : int;
}

type prediction = {
  p_breakdown : Predict.breakdown;
  p_utlb : int;
  p_console : string;
  p_parse : Parser.stats;
  p_mem : Memsim.stats;
  p_traced_insts : int;
  p_tlbdropins : int;
  p_peak_words : int;
      (** largest ANALYZE chunk fed to the online parse+simulate sink —
          the predicted run's peak resident trace words, bounded by the
          in-kernel buffer size rather than the trace length *)
}

val measure : ?pagemap:Kcfg.pagemap -> ?machine_cfg:Systrace_machine.Machine.config -> ?seed:int -> os -> spec -> measurement

val measure_with :
  machine_cfg:Systrace_machine.Machine.config ->
  ?pagemap:Kcfg.pagemap ->
  ?seed:int ->
  os ->
  spec ->
  measurement

val predict :
  ?pagemap:Kcfg.pagemap -> ?seed:int -> ?arith_stalls:int -> os -> spec ->
  prediction
(** One traced pass, one prediction for the default machine geometry.
    Implemented as a single-element {!predict_sweep}. *)

val predict_sweep :
  ?pagemap:Kcfg.pagemap ->
  ?seed:int ->
  ?arith_stalls:int ->
  ?geometries:Systrace_machine.Machine.config list ->
  os ->
  spec ->
  prediction array
(** One traced pass predicting every geometry at once: the trace is
    collected, parsed and translated once, and a {!Memsim.sweep} updates
    per-geometry cache/TLB/write-buffer state from the shared decode.
    Returns predictions in [geometries] order (default: the machine's
    base configuration); each is byte-identical to what a dedicated
    {!predict} pass with that geometry would produce. *)

type row = {
  r_name : string;
  r_os : os;
  r_measured : measurement;
  r_predicted : prediction;
}

val run_workload :
  ?machine_cfg:Systrace_machine.Machine.config ->
  ?pagemap:Kcfg.pagemap ->
  ?seed:int ->
  os ->
  spec ->
  row
(** Measured and predicted passes; fails if traced and untraced runs
    disagree on program output.  [machine_cfg] overrides the measured
    pass's machine configuration (e.g. [tier = Uop.Tcache]); the
    predicted pass is a trace-driven model and takes no machine. *)

val run_workload_sweep :
  ?pagemap:Kcfg.pagemap ->
  ?seed:int ->
  geometries:Systrace_machine.Machine.config list ->
  os ->
  spec ->
  row list
(** {!run_workload} across a geometry family: one measured pass per
    geometry (the machine must really be built with each), one traced
    pass predicting all of them via {!predict_sweep}. *)

val percent_error : row -> float
(** The Figure 3 quantity. *)

val dilation : row -> float
(** Instrumented instructions per original instruction (§4.1). *)
