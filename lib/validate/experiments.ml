(* Regeneration of every table and figure in the paper's evaluation
   (DESIGN.md's per-experiment index).  Each function prints the same rows
   or series the paper reports; the full matrix (every workload under both
   systems, measured and predicted) is computed once and shared. *)

open Systrace_util
open Systrace_isa
open Systrace_kernel
open Systrace_epoxie
open Systrace_workloads

let spec_of (e : Suite.entry) : Validate.spec =
  { Validate.wname = e.name; files = e.files; programs = [ e.program () ] }

type full_row = {
  fname : string;
  ultrix : Validate.row;
  mach : Validate.row;
}

(* Every Table 2/3/Figure 3 cell is a self-contained thunk: it builds its
   own machine, kernel and workload state from the immutable [Suite.entry]
   (all randomness flows from the explicit [seed]), so the matrix can run
   on a domain pool.  Results are merged back in suite order, making the
   rendered tables byte-identical whatever [jobs] is. *)
let run_matrix ?(seed = 1) ?(progress = fun _ -> ()) ?(jobs = 1)
    ?(entries = Suite.all) () : full_row list =
  let pm = Mutex.create () in
  let progress s =
    Mutex.lock pm;
    Fun.protect ~finally:(fun () -> Mutex.unlock pm) (fun () -> progress s)
  in
  (* The spec — including the assembled program, which is immutable once
     built — is shared by an entry's two cells instead of being rebuilt
     inside each per-cell closure on the pool. *)
  let cells =
    List.concat_map
      (fun (e : Suite.entry) ->
        let spec = spec_of e in
        [ (e, spec, Validate.Ultrix); (e, spec, Validate.Mach) ])
      entries
  in
  let rows =
    Pool.map ~jobs
      (fun ((e : Suite.entry), spec, os) ->
        progress (Printf.sprintf "%s (%s)" e.Suite.name (Validate.os_name os));
        Validate.run_workload ~seed os spec)
      cells
  in
  let rec merge rows entries =
    match (rows, entries) with
    | u :: m :: rows, (e : Suite.entry) :: entries ->
      { fname = e.Suite.name; ultrix = u; mach = m } :: merge rows entries
    | [], [] -> []
    | _ -> assert false
  in
  merge rows entries

(* ------------------------------------------------------------------ *)
(* Geometry-sweep matrix: like [run_matrix], but each (workload, OS)
   cell predicts a whole family of machine geometries from ONE traced
   pass (Validate.run_workload_sweep / Memsim.sweep) instead of
   re-collecting and re-parsing the trace per geometry. *)

let run_geometry_matrix ?(seed = 1) ?(progress = fun _ -> ()) ?(jobs = 1)
    ?(entries = Suite.all) ~geometries () :
    (string * Validate.os * (string * Validate.row) list) list =
  let pm = Mutex.create () in
  let progress s =
    Mutex.lock pm;
    Fun.protect ~finally:(fun () -> Mutex.unlock pm) (fun () -> progress s)
  in
  let cells =
    List.concat_map
      (fun (e : Suite.entry) ->
        let spec = spec_of e in
        [ (e, spec, Validate.Ultrix); (e, spec, Validate.Mach) ])
      entries
  in
  let results =
    Pool.map ~jobs
      (fun ((e : Suite.entry), spec, os) ->
        progress (Printf.sprintf "%s (%s)" e.Suite.name (Validate.os_name os));
        Validate.run_workload_sweep ~seed
          ~geometries:(List.map snd geometries) os spec)
      cells
  in
  List.map2
    (fun ((e : Suite.entry), _, os) rows ->
      (e.Suite.name, os, List.combine (List.map fst geometries) rows))
    cells results

let geometry_table
    (matrix : (string * Validate.os * (string * Validate.row) list) list) =
  let t =
    Table.create
      ~title:
        "Geometry sweep: measured vs predicted run time per machine \
         geometry (one traced pass per workload/OS cell predicts every \
         geometry)"
      ~headers:
        [ "workload"; "OS"; "geometry"; "measured s"; "predicted s";
          "error %" ]
      ~aligns:
        [ Table.Left; Table.Left; Table.Left; Table.Right; Table.Right;
          Table.Right ]
  in
  List.iter
    (fun (wname, os, rows) ->
      List.iter
        (fun (label, (r : Validate.row)) ->
          Table.add_row t
            [
              wname;
              Validate.os_name os;
              label;
              Printf.sprintf "%.4f" r.Validate.r_measured.Validate.m_seconds;
              Printf.sprintf "%.4f"
                r.Validate.r_predicted.Validate.p_breakdown
                  .Systrace_tracesim.Predict.seconds;
              Printf.sprintf "%.1f" (Validate.percent_error r);
            ])
        rows)
    matrix;
  t

(* ------------------------------------------------------------------ *)
(* Table 1: the workloads                                              *)

let table1 () =
  let t =
    Table.create ~title:"Table 1: Experimental workloads"
      ~headers:[ "workload"; "description" ]
      ~aligns:[ Table.Left; Table.Left ]
  in
  List.iter
    (fun (e : Suite.entry) -> Table.add_row t [ e.Suite.name; e.description ])
    Suite.all;
  t

(* ------------------------------------------------------------------ *)
(* Table 2: run times, measured and predicted, in (scaled) seconds      *)

let fmt_s v = Printf.sprintf "%.4f" v

let table2 (matrix : full_row list) =
  let t =
    Table.create
      ~title:
        "Table 2: Run times, measured and predicted, in seconds (simulated \
         25 MHz clock; workloads scaled ~100x from the paper's)"
      ~headers:[ "workload"; "Ultrix measured"; "Ultrix predicted";
                 "Mach measured"; "Mach predicted" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.fname;
          fmt_s r.ultrix.Validate.r_measured.Validate.m_seconds;
          fmt_s
            r.ultrix.Validate.r_predicted.Validate.p_breakdown
              .Systrace_tracesim.Predict.seconds;
          fmt_s r.mach.Validate.r_measured.Validate.m_seconds;
          fmt_s
            r.mach.Validate.r_predicted.Validate.p_breakdown
              .Systrace_tracesim.Predict.seconds;
        ])
    matrix;
  t

(* ------------------------------------------------------------------ *)
(* Figure 3: percent error in predicted execution times (Ultrix)        *)

let figure3 (matrix : full_row list) =
  let t =
    Table.create
      ~title:
        "Figure 3: Error in predicted execution times for Ultrix (percent; \
         bar = 1% per '#')"
      ~headers:[ "workload"; "error %"; "" ]
      ~aligns:[ Table.Left; Table.Right; Table.Left ]
  in
  List.iter
    (fun r ->
      let e = Validate.percent_error r.ultrix in
      let bar = String.make (min 40 (int_of_float (e +. 0.5))) '#' in
      Table.add_row t [ r.fname; Printf.sprintf "%.1f" e; bar ])
    matrix;
  let errors = List.map (fun r -> Validate.percent_error r.ultrix) matrix in
  Table.add_rule t;
  Table.add_row t
    [ "mean"; Printf.sprintf "%.1f" (Stats.mean errors); "" ];
  t

(* ------------------------------------------------------------------ *)
(* Table 3: user TLB misses, measured and predicted                     *)

let table3 (matrix : full_row list) =
  let t =
    Table.create ~title:"Table 3: TLB misses, measured and predicted"
      ~headers:[ "workload"; "Mach measured"; "Mach predicted";
                 "Ultrix measured"; "Ultrix predicted" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.fname;
          string_of_int r.mach.Validate.r_measured.Validate.m_utlb;
          string_of_int r.mach.Validate.r_predicted.Validate.p_utlb;
          string_of_int r.ultrix.Validate.r_measured.Validate.m_utlb;
          string_of_int r.ultrix.Validate.r_predicted.Validate.p_utlb;
        ])
    matrix;
  t

(* ------------------------------------------------------------------ *)
(* §3.2: text expansion, epoxie vs pixie                                *)

let expansion_table () =
  let t =
    Table.create
      ~title:
        "Text expansion under instrumentation (paper: epoxie 1.9-2.3x, \
         pixie/QPT 4-6x)"
      ~headers:[ "workload"; "epoxie"; "pixie" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
  in
  let epoxie_fs = ref [] and pixie_fs = ref [] in
  List.iter
    (fun (e : Suite.entry) ->
      let prog = e.Suite.program () in
      let mods = prog.Builder.modules in
      let imods, _ = Epoxie.instrument_modules mods in
      let pmods = Pixie.instrument_modules mods in
      let fe = Epoxie.expansion ~original:mods ~instrumented:imods in
      let fp = Pixie.expansion ~original:mods ~instrumented:pmods in
      epoxie_fs := fe :: !epoxie_fs;
      pixie_fs := fp :: !pixie_fs;
      Table.add_row t
        [ e.Suite.name; Printf.sprintf "%.2fx" fe; Printf.sprintf "%.2fx" fp ])
    Suite.all;
  Table.add_rule t;
  Table.add_row t
    [
      "mean";
      Printf.sprintf "%.2fx" (Stats.mean !epoxie_fs);
      Printf.sprintf "%.2fx" (Stats.mean !pixie_fs);
    ];
  t

(* ------------------------------------------------------------------ *)
(* §4.1: time dilation                                                  *)

let dilation_table (matrix : full_row list) =
  let t =
    Table.create
      ~title:
        "Time dilation: instrumented instructions per original instruction \
         (paper: ~15x)"
      ~headers:[ "workload"; "Ultrix"; "Mach" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.fname;
          Printf.sprintf "%.1fx" (Validate.dilation r.ultrix);
          Printf.sprintf "%.1fx" (Validate.dilation r.mach);
        ])
    matrix;
  t

(* ------------------------------------------------------------------ *)
(* §3.4: kernel CPI vs user CPI (the Tunix result)                      *)

let kernel_cpi_table (matrix : full_row list) =
  let t =
    Table.create
      ~title:
        "Kernel vs user CPI from trace-driven simulation (paper, §3.4: \
         kernel CPI was three times user CPI on Tunix)"
      ~headers:[ "workload"; "user CPI"; "kernel CPI"; "ratio" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
  in
  List.iter
    (fun r ->
      let m = r.ultrix.Validate.r_predicted.Validate.p_mem in
      let ucpi =
        float_of_int (m.Systrace_tracesim.Memsim.user_insts + m.Systrace_tracesim.Memsim.user_stall)
        /. float_of_int (max 1 m.Systrace_tracesim.Memsim.user_insts)
      in
      let kcpi =
        float_of_int
          (m.Systrace_tracesim.Memsim.kernel_insts + m.Systrace_tracesim.Memsim.kernel_stall)
        /. float_of_int (max 1 m.Systrace_tracesim.Memsim.kernel_insts)
      in
      Table.add_row t
        [
          r.fname;
          Printf.sprintf "%.2f" ucpi;
          Printf.sprintf "%.2f" kcpi;
          Printf.sprintf "%.2f" (kcpi /. ucpi);
        ])
    matrix;
  t

(* ------------------------------------------------------------------ *)
(* §4.3: in-kernel buffer size vs mode-transition dirt                  *)

let buffer_sweep_table ?(wname = "compress") ?(jobs = 1) () =
  let e = Suite.find wname in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "In-kernel buffer size vs trace-analysis transitions (%s traced, \
            Ultrix; paper uses a 64MB buffer to make transitions rare)"
           wname)
      ~headers:
        [ "buffer"; "analysis phases"; "mode markers"; "disk ops"; "trace words" ]
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
  in
  (* Each sweep point builds its own traced system and parser, so the
     sweep runs on the pool; rows are added in sweep order. *)
  let rows =
    Pool.map ~jobs
      (fun kb ->
        let cfg =
          {
            Builder.default_config with
            Builder.traced = true;
            trace_buf_bytes = kb * 1024;
            trace_slack_bytes = min (kb * 1024 / 4) (64 * 1024);
            analysis_chunk = 8192;
          }
        in
        let b =
          Builder.build ~cfg ~programs:[ e.Suite.program () ]
            ~files:e.Suite.files ()
        in
        let kernel_bbs = Option.get b.Builder.kernel_bbs in
        let p = Systrace_tracing.Parser.create ~kernel_bbs () in
        List.iter
          (fun (pi : Builder.proc_info) ->
            Systrace_tracing.Parser.register_pid p ~pid:pi.pid
              (Option.get pi.bbs))
          b.Builder.procs;
        let counter, words = Systrace_tracing.Sink.counting () in
        let sink =
          Systrace_tracing.Sink.tee
            [ counter; Systrace_tracing.Sink.to_parser p ]
        in
        b.Builder.trace_sink <-
          Some (fun ws len -> sink.Systrace_tracing.Sink.on_words ws ~len);
        (match Builder.run b ~max_insns:2_000_000_000 with
        | Systrace_machine.Machine.Halt -> ()
        | Systrace_machine.Machine.Limit -> failwith "buffer sweep: no halt");
        Builder.drain_final b;
        sink.Systrace_tracing.Sink.finish ();
        let stats = Systrace_tracing.Parser.stats p in
        (* disk completions whose trace was lost: total disk ops minus the
           ones we can see; approximate dirt indicator via mode transitions *)
        [
          Printf.sprintf "%d KB" kb;
          string_of_int b.Builder.analyze_calls;
          string_of_int stats.Systrace_tracing.Parser.mode_transitions;
          string_of_int
            (b.Builder.machine.Systrace_machine.Machine.disk
               .Systrace_machine.Disk.reads
            + b.Builder.machine.Systrace_machine.Machine.disk
                .Systrace_machine.Disk.writes);
          string_of_int (words ());
        ])
      [ 64; 128; 256; 1024; 4096 ]
  in
  List.iter (Table.add_row t) rows;
  t

(* ------------------------------------------------------------------ *)
(* §4.4: page-mapping policy sensitivity (tomcatv)                      *)

let pagemap_table ?(wname = "tomcatv") ?(nseeds = 4) ?(jobs = 1) () =
  let e = Suite.find wname in
  (* Use the DECstation's real 64KB caches: page placement matters most
     when the working set is marginal against the cache, which is how the
     paper's machine behaved for tomcatv. *)
  let mcfg =
    {
      Systrace_machine.Machine.default_config with
      Systrace_machine.Machine.icache_bytes = 65536;
      dcache_bytes = 65536;
    }
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Page-mapping policy sensitivity: %s measured run time across \
            page-map seeds (paper, §4.4: >10%% variation from page \
            selection; Mach's random policy causes its Table 2 variance)"
           wname)
      ~headers:[ "policy"; "min s"; "max s"; "spread %" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
  in
  let policies =
    [ (Kcfg.Careful, "careful (Ultrix)"); (Kcfg.Random, "random (Mach)") ]
  in
  (* One thunk per (policy, seed) cell; merged back per policy in order. *)
  let cells =
    List.concat_map
      (fun (policy, _) -> List.init nseeds (fun k -> (policy, k + 1)))
      policies
  in
  let spec = spec_of e in
  let times =
    Pool.map ~jobs
      (fun (policy, seed) ->
        (Validate.measure_with ~machine_cfg:mcfg ~pagemap:policy ~seed
           Validate.Ultrix spec)
          .Validate.m_seconds)
      cells
  in
  List.iteri
    (fun i (_, pname) ->
      let times =
        List.filteri
          (fun k _ -> k >= i * nseeds && k < (i + 1) * nseeds)
          times
      in
      let lo = Stats.minimum times and hi = Stats.maximum times in
      Table.add_row t
        [
          pname;
          fmt_s lo;
          fmt_s hi;
          Printf.sprintf "%.1f" ((hi -. lo) /. lo *. 100.0);
        ])
    policies;
  t

(* ------------------------------------------------------------------ *)
(* §4.1: measured distortion of the traced system itself.

   The instrumented text is ~2x the original and executes ~10-15x the
   instructions, so the traced machine's OWN cache and TLB behaviour is
   not representative — which is why predictions are made from the
   reconstructed original reference stream, and why the UTLB handler is
   synthesized rather than traced.  This table quantifies the distortion
   by comparing machine-level event rates between the untraced and traced
   runs of the same workloads. *)

let distortion_table ?(wnames = [ "egrep"; "compress"; "eqntott" ]) () =
  let t =
    Table.create
      ~title:
        "Instrumentation distortion: machine-level events per 1k original \
         instructions, untraced vs traced execution (paper 4.1: the traced \
         system's own TLB/cache behaviour is unrepresentative)"
      ~headers:
        [ "workload"; "icache miss/1k"; "traced"; "utlb miss/1k"; "traced" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
  in
  List.iter
    (fun wname ->
      let e = Suite.find wname in
      let run traced =
        let cfg = { Builder.default_config with Builder.traced } in
        let b =
          Builder.build ~cfg ~programs:[ e.Suite.program () ]
            ~files:e.Suite.files ()
        in
        (match Builder.run b ~max_insns:2_000_000_000 with
        | Systrace_machine.Machine.Halt -> ()
        | Systrace_machine.Machine.Limit -> failwith "distortion: no halt");
        b
      in
      let bu = run false and bt = run true in
      let orig_insts =
        float_of_int
          bu.Builder.machine.Systrace_machine.Machine.c
            .Systrace_machine.Machine.instructions
      in
      let per v = Printf.sprintf "%.2f" (1000.0 *. float_of_int v /. orig_insts) in
      Table.add_row t
        [
          wname;
          per (Systrace_machine.Machine.icache_misses bu.Builder.machine);
          per (Systrace_machine.Machine.icache_misses bt.Builder.machine);
          per
            bu.Builder.machine.Systrace_machine.Machine.c
              .Systrace_machine.Machine.utlb_misses;
          per
            bt.Builder.machine.Systrace_machine.Machine.c
              .Systrace_machine.Machine.utlb_misses;
        ])
    wnames;
  t

(* ------------------------------------------------------------------ *)
(* §4.3 fault injection: "the format of trace contains a significant
   degree of redundancy, such that missing words of trace or erroneous
   writes into the trace are detected with a very high probability."
   Quantify it: corrupt one random word of a captured trace per trial and
   count how often the parsing library's defensive checks catch it. *)

let corruption_table ?(wname = "egrep") ?(trials = 300) ?(seed = 7) () =
  let e = Suite.find wname in
  (* capture the trace once *)
  let cfg = { Builder.default_config with Builder.traced = true } in
  let b =
    Builder.build ~cfg ~programs:[ e.Suite.program () ] ~files:e.Suite.files ()
  in
  let capture, trace = Systrace_tracing.Sink.to_array () in
  b.Builder.trace_sink <-
    Some (fun ws len -> capture.Systrace_tracing.Sink.on_words ws ~len);
  (match Builder.run b ~max_insns:2_000_000_000 with
  | Systrace_machine.Machine.Halt -> ()
  | Systrace_machine.Machine.Limit -> failwith "corruption: no halt");
  Builder.drain_final b;
  let words = trace () in
  let kernel_bbs = Option.get b.Builder.kernel_bbs in
  let user_bbs =
    List.filter_map (fun (p : Builder.proc_info) -> p.bbs) b.Builder.procs
  in
  (* Two lines of defence, as in §4.3: the format's structural redundancy
     (parser [Corrupt]) and analysis-level sanity checks — references to
     unmapped pages in the simulator flag "erroneous writes" whose
     structure happened to parse. *)
  let pagemap = Builder.extract_pagemap b in
  let parse ws =
    let p = Systrace_tracing.Parser.create ~kernel_bbs () in
    List.iteri
      (fun pid bbs -> Systrace_tracing.Parser.register_pid p ~pid bbs)
      user_bbs;
    let sim =
      Systrace_tracesim.Memsim.create
        {
          Systrace_tracesim.Memsim.icache_bytes = 4096;
          icache_line = 16;
          icache_ways = 1;
          dcache_bytes = 4096;
          dcache_line = 4;
          dcache_ways = 1;
          read_miss_penalty = 0;
          uncached_penalty = 0;
          wb_depth = 4;
          wb_drain = 0;
          pagemap;
          pt_base = Kcfg.pt_base_va;
          utlb_handler_insns = 8;
          ktlb_handler_insns = 24;
          tlb_entries = 64;
        }
    in
    Systrace_tracing.Parser.set_handlers p
      (Systrace_tracesim.Memsim.handlers sim);
    Systrace_tracing.Parser.feed p ws ~len:(Array.length ws);
    Systrace_tracing.Parser.finish p;
    (Systrace_tracesim.Memsim.stats sim).Systrace_tracesim.Memsim.unmapped
  in
  (* sanity: the pristine trace parses with no unmapped references *)
  if parse words <> 0 then failwith "corruption: pristine trace not clean";
  let rng = Systrace_util.Rng.create seed in
  (* each kind maps (pristine words, position) to a corrupted copy *)
  let overwrite f ws pos =
    let ws = Array.copy ws in
    ws.(pos) <- f ws.(pos) land 0xFFFFFFFF;
    ws
  in
  let kinds =
    [
      ("random word", overwrite (fun _old -> Systrace_util.Rng.bits32 rng));
      ( "single bit flip",
        overwrite (fun old -> old lxor (1 lsl Systrace_util.Rng.int rng 32)) );
      ( "word deleted",
        fun ws pos ->
          Array.init
            (Array.length ws - 1)
            (fun i -> if i < pos then ws.(i) else ws.(i + 1)) );
      ( "word duplicated",
        fun ws pos ->
          Array.init
            (Array.length ws + 1)
            (fun i ->
              if i <= pos then ws.(i) else ws.(i - 1)) );
      ( "adjacent words swapped",
        fun ws pos ->
          let ws = Array.copy ws in
          let q = if pos + 1 < Array.length ws then pos + 1 else pos - 1 in
          let tmp = ws.(pos) in
          ws.(pos) <- ws.(q);
          ws.(q) <- tmp;
          ws );
    ]
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Defensive tracing (paper 4.3): single corruptions of the %s \
            trace (%d words) detected by the parsing library (%d trials \
            each)"
           wname (Array.length words) trials)
      ~headers:[ "corruption"; "detected"; "rate" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
  in
  List.iter
    (fun (kname, mutate) ->
      let detected = ref 0 in
      for _ = 1 to trials do
        let pos = Systrace_util.Rng.int rng (Array.length words) in
        let ws = mutate words pos in
        match parse ws with
        | unmapped -> if unmapped > 0 then incr detected
        | exception Systrace_tracing.Parser.Corrupt _ -> incr detected
        | exception Systrace_tracing.Format_.Bad_marker _ -> incr detected
        | exception Invalid_argument _ -> incr detected
      done;
      Table.add_row t
        [
          kname;
          Printf.sprintf "%d/%d" !detected trials;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int !detected /. float_of_int trials);
        ])
    kinds;
  t

(* ------------------------------------------------------------------ *)
(* Fault-injection sweep (paper 4.3, quantitative): drive the [Faults]
   catalogue over a captured trace at several injection rates and measure
   what defensive tracing actually delivers — the detection rate per fault
   kind, the detection latency (words between the injection and the first
   diagnosis), and the recovery loss (references missing from the
   recovery-mode reconstruction vs the clean run).  [Drain_split] is the
   control: a valid transform of the stream (drains are resumable), so its
   row should read 0% detected, 0% lost. *)

let faults_table ?(wname = "egrep") ?(trials = 40) ?(seed = 11)
    ?(rates = [ 1e-4; 1e-3; 1e-2 ]) () =
  let module P = Systrace_tracing.Parser in
  let module F = Systrace_tracing.Faults in
  let e = Suite.find wname in
  (* capture the trace once *)
  let cfg = { Builder.default_config with Builder.traced = true } in
  let b =
    Builder.build ~cfg ~programs:[ e.Suite.program () ] ~files:e.Suite.files ()
  in
  let capture, trace = Systrace_tracing.Sink.to_array () in
  b.Builder.trace_sink <-
    Some (fun ws len -> capture.Systrace_tracing.Sink.on_words ws ~len);
  (match Builder.run b ~max_insns:2_000_000_000 with
  | Systrace_machine.Machine.Halt -> ()
  | Systrace_machine.Machine.Limit -> failwith "faults: no halt");
  Builder.drain_final b;
  let words = trace () in
  let kernel_bbs = Option.get b.Builder.kernel_bbs in
  let user_bbs =
    List.filter_map (fun (p : Builder.proc_info) -> p.bbs) b.Builder.procs
  in
  (* Parse [ws], fingerprinting the reconstructed reference stream so
     "identical to the clean run" is checkable exactly.  Returns
     (strict_raised, diagnoses, refs, fingerprint, stats). *)
  let run_parse ~recover ws =
    let p = P.create ~recover ~kernel_bbs () in
    List.iteri (fun pid bbs -> P.register_pid p ~pid bbs) user_bbs;
    let h = ref 0 in
    let refs = ref 0 in
    let mix v = h := ((!h * 1000003) + v) land max_int in
    P.set_handlers p
      {
        P.on_inst =
          (fun a pid k ->
            incr refs;
            mix 1; mix a; mix pid; mix (Bool.to_int k));
        on_data =
          (fun a pid k ld by ->
            incr refs;
            mix 2; mix a; mix pid; mix (Bool.to_int k);
            mix (Bool.to_int ld); mix by);
      };
    match
      P.feed p ws ~len:(Array.length ws);
      P.finish p
    with
    | () -> (false, P.errors p, !refs, !h, P.stats p)
    | exception (P.Corrupt _ | Systrace_tracing.Format_.Bad_marker _) ->
      (true, [], !refs, !h, P.stats p)
  in
  (* Injection rate 0 (the acceptance criterion): strict and recovery
     modes must reconstruct the identical reference stream from the
     pristine trace, with identical parser stats and no diagnoses. *)
  let s_raised, _, clean_refs, clean_hash, s_stats =
    run_parse ~recover:false words
  in
  let r_raised, r_errs, r_refs, r_hash, r_stats =
    run_parse ~recover:true words
  in
  if s_raised || r_raised || r_errs <> [] then
    failwith "faults: pristine trace not clean";
  if clean_refs <> r_refs || clean_hash <> r_hash || s_stats <> r_stats then
    failwith "faults: recovery-mode stream differs from strict on the clean \
              trace";
  let rng = Systrace_util.Rng.create seed in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Defensive tracing under injected faults (paper 4.3): %s trace \
            (%d words, %d references), %d trials per cell.  detected = \
            recovery-mode diagnosis raised; latency = words from injection \
            to first diagnosis; loss = references missing from the \
            recovered stream vs the clean run.  drain_split is a valid \
            transform (control row: nothing to detect)."
           wname (Array.length words) clean_refs trials)
      ~headers:
        [ "fault"; "rate"; "faults/run"; "detected"; "latency (words)"; "loss" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
  in
  Table.add_row t
    [ "(none)"; "0"; "0"; Printf.sprintf "0/%d" trials; "-"; "0.000%" ];
  List.iter
    (fun kind ->
      List.iter
        (fun rate ->
          (* Truncation is a single tail event — iterating it just cuts
             to the minimum of the picked positions. *)
          let n =
            if kind = F.Truncate then 1
            else
              max 1
                (int_of_float
                   ((rate *. float_of_int (Array.length words)) +. 0.5))
          in
          let detected = ref 0 in
          let lat_sum = ref 0.0 in
          let loss_sum = ref 0.0 in
          for _ = 1 to trials do
            let ws, injs = F.inject rng ~n ~kinds:[ kind ] words in
            let _, errs, refs, _, _ = run_parse ~recover:true ws in
            (match (errs, injs) with
            | e :: _, inj :: _ ->
              incr detected;
              lat_sum := !lat_sum +. float_of_int (max 0 (e.P.at - inj.F.pos))
            | _ -> ());
            loss_sum :=
              !loss_sum
              +. 100.0
                 *. float_of_int (max 0 (clean_refs - refs))
                 /. float_of_int (max 1 clean_refs)
          done;
          Table.add_row t
            [
              F.kind_name kind;
              Printf.sprintf "%g" rate;
              string_of_int n;
              Printf.sprintf "%d/%d (%.0f%%)" !detected trials
                (100.0 *. float_of_int !detected /. float_of_int trials);
              (if !detected = 0 then "-"
               else Printf.sprintf "%.0f" (!lat_sum /. float_of_int !detected));
              Printf.sprintf "%.3f%%" (!loss_sum /. float_of_int trials);
            ])
        rates)
    F.all_kinds;
  t

(* ------------------------------------------------------------------ *)
(* Ablation (DESIGN.md 5): draining user buffers on every kernel entry —
   the design that makes the global interleaving exact (3.1) — against
   the obvious cheaper alternative, flushing a user buffer only when it
   fills (plus at process exit).  The kernel counts, at each skipped
   drain, the words the current entry's kernel records will overtake in
   the global stream; the table also shows what the disorder does to a
   trace-driven simulation of the same run. *)

let drain_ablation_table ?(wname = "sed") () =
  let e = Suite.find wname in
  let run drain_on_entry =
    let cfg =
      {
        Builder.default_config with
        Builder.traced = true;
        drain_on_entry;
      }
    in
    let b =
      Builder.build ~cfg
        ~programs:[ e.Suite.program () ]
        ~files:e.Suite.files ()
    in
    let p =
      Systrace_tracing.Parser.create
        ~kernel_bbs:(Option.get b.Builder.kernel_bbs) ()
    in
    List.iter
      (fun (pi : Builder.proc_info) ->
        Systrace_tracing.Parser.register_pid p ~pid:pi.pid (Option.get pi.bbs))
      b.Builder.procs;
    let sim =
      Systrace_tracesim.Memsim.create
        {
          Systrace_tracesim.Memsim.icache_bytes = 16384;
          icache_line = 16;
          icache_ways = 1;
          dcache_bytes = 16384;
          dcache_line = 4;
          dcache_ways = 1;
          read_miss_penalty = 15;
          uncached_penalty = 6;
          wb_depth = 4;
          wb_drain = 5;
          pagemap = (fun _ _ -> None);
          pt_base = Kcfg.pt_base_va;
          utlb_handler_insns = 8;
          ktlb_handler_insns = 24;
          tlb_entries = 64;
        }
    in
    (* virtual-indexed stand-in map (identity-ish): the page map is only
       extractable after the run, and the comparison between the two
       policies only needs a fixed translation *)
    let sink = Systrace_tracesim.Memsim.sink sim p in
    b.Builder.trace_sink <-
      Some (fun ws len -> sink.Systrace_tracing.Sink.on_words ws ~len);
    (match Builder.run b ~max_insns:2_000_000_000 with
    | Systrace_machine.Machine.Halt -> ()
    | Systrace_machine.Machine.Limit -> failwith "drain ablation: no halt");
    Builder.drain_final b;
    sink.Systrace_tracing.Sink.finish ();
    (String.trim (Builder.console b),
     Systrace_tracing.Parser.stats p,
     Systrace_tracesim.Memsim.stats sim,
     Builder.peek b "kstat_displaced")
  in
  let con1, ps1, ms1, d1 = run true in
  let con2, ps2, ms2, d2 = run false in
  if con1 <> con2 then failwith "drain ablation: console outputs differ";
  let user st =
    st.Systrace_tracing.Parser.insts - st.Systrace_tracing.Parser.kernel_insts
  in
  if user ps1 <> user ps2 then
    failwith "drain ablation: user reference streams differ in size";
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Draining on every kernel entry (3.1) vs flush-only-when-full \
            (%s traced under Ultrix; identical console output and user \
            reference counts)"
           wname)
      ~headers:
        [ "policy"; "drains"; "overtaken words"; "kernel insts";
          "icache misses"; "dcache read misses" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
  in
  let row name ps ms d =
    Table.add_row t
      [
        name;
        string_of_int ps.Systrace_tracing.Parser.drains;
        string_of_int d;
        string_of_int ps.Systrace_tracing.Parser.kernel_insts;
        string_of_int ms.Systrace_tracesim.Memsim.icache_misses;
        string_of_int ms.Systrace_tracesim.Memsim.dcache_read_misses;
      ]
  in
  row "drain on entry (paper)" ps1 ms1 d1;
  row "flush when full" ps2 ms2 d2;
  t

(* ------------------------------------------------------------------ *)
(* OS structure and memory behaviour: the study these traces enabled
   (Chen & Bershad, SOSP'93, reference [7]).  From the predicted runs'
   per-mode attribution: how much of each workload's memory-system time
   is system (kernel + server) rather than user, under each structure. *)

(* ------------------------------------------------------------------ *)
(* DESIGN.md Â§5e: interpreter execution-mode ablation                   *)

(* Host cost of the four interpreter tiers on a full untraced
   boot + workload run.  The simulated machine must be bit-for-bit
   indifferent: every ground-truth counter and the console transcript are
   asserted identical across tiers before the timings are reported, which
   exercises the block cache's invalidation machinery (kernel loads
   programs, remaps pages and switches modes constantly) at system
   scale. *)
let interp_ablation_table ?(wname = "egrep") () =
  let e = Suite.find wname in
  let run tier =
    let cfg =
      {
        Builder.default_config with
        Builder.machine_cfg =
          {
            Systrace_machine.Machine.default_config with
            Systrace_machine.Machine.tier;
          };
      }
    in
    let t0 = Sys.time () in
    let b =
      Builder.build ~cfg ~programs:[ e.Suite.program () ] ~files:e.Suite.files
        ()
    in
    (match Builder.run b ~max_insns:2_000_000_000 with
    | Systrace_machine.Machine.Halt -> ()
    | Systrace_machine.Machine.Limit -> failwith "interp ablation: no halt");
    (Sys.time () -. t0, b)
  in
  let fingerprint (b : Builder.t) =
    let m = b.Builder.machine in
    let c = m.Systrace_machine.Machine.c in
    ( m.Systrace_machine.Machine.cycles,
      ( c.Systrace_machine.Machine.instructions,
        c.Systrace_machine.Machine.user_instructions,
        c.Systrace_machine.Machine.kernel_instructions,
        c.Systrace_machine.Machine.idle_instructions ),
      ( c.Systrace_machine.Machine.utlb_misses,
        c.Systrace_machine.Machine.ktlb_misses,
        c.Systrace_machine.Machine.exceptions,
        c.Systrace_machine.Machine.interrupts,
        c.Systrace_machine.Machine.syscalls ),
      Builder.console b )
  in
  let modes =
    [
      ("step (no caches)", Systrace_machine.Uop.Step);
      ("tcache", Systrace_machine.Uop.Tcache);
      ("tcache + bcache", Systrace_machine.Uop.Bcache);
      ("superblock (fused)", Systrace_machine.Uop.Super);
      ("trace superblocks", Systrace_machine.Uop.Trace);
    ]
  in
  let results =
    List.map
      (fun (label, tier) ->
        let secs, b = run tier in
        (label, secs, fingerprint b))
      modes
  in
  (match results with
  | (_, _, fp0) :: rest ->
    List.iter
      (fun (label, _, fp) ->
        if fp <> fp0 then
          failwith
            (Printf.sprintf
               "interp ablation: %s diverges from step-at-a-time on %s" label
               wname))
      rest
  | [] -> ());
  let base = match results with (_, s, _) :: _ -> s | [] -> 1.0 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Interpreter execution tiers: host cost of an untraced %s run \
(identical simulated counters and console asserted across all five)"
           wname)
      ~headers:[ "mode"; "host cpu s"; "speedup" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
  in
  List.iter
    (fun (label, secs, _) ->
      Table.add_row t
        [
          label;
          Printf.sprintf "%.2f" secs;
          Printf.sprintf "%.2fx" (base /. secs);
        ])
    results;
  t

let os_structure_table (matrix : full_row list) =
  let t =
    Table.create
      ~title:
        "System vs user share of memory-system activity (the paper's \
         companion study [7]: OS structure's impact on memory behaviour)"
      ~headers:
        [ "workload"; "Ultrix sys insts"; "sys stall share";
          "Mach sys insts"; "sys stall share" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
  in
  List.iter
    (fun r ->
      let cell (row : Validate.row) =
        let m = row.Validate.r_predicted.Validate.p_mem in
        let sys_i = m.Systrace_tracesim.Memsim.kernel_insts in
        let tot_i = m.Systrace_tracesim.Memsim.insts in
        let sys_s = m.Systrace_tracesim.Memsim.kernel_stall in
        let tot_s =
          m.Systrace_tracesim.Memsim.kernel_stall
          + m.Systrace_tracesim.Memsim.user_stall
        in
        ( Printf.sprintf "%.1f%%" (100.0 *. float_of_int sys_i /. float_of_int (max 1 tot_i)),
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int sys_s /. float_of_int (max 1 tot_s)) )
      in
      let ui, us = cell r.ultrix in
      let mi, ms = cell r.mach in
      Table.add_row t [ r.fname; ui; us; mi; ms ])
    matrix;
  t

(* ------------------------------------------------------------------ *)
(* Figure 2: instrumentation by epoxie, before and after                *)

let figure2 () =
  let sample () =
    let a = Asm.create "sample" in
    let open Asm in
    global a "fopen";
    label a "fopen";
    addiu a Reg.sp Reg.sp (-24);
    sw a Reg.ra 20 Reg.sp;
    sw a Reg.a0 24 Reg.sp;
    i a (Insn.Jal (Sym "_findiop"));
    sw a Reg.a1 28 Reg.sp;
    ret a;
    leaf a "_findiop" (fun () -> li a Reg.v0 0);
    to_obj a
  in
  let orig =
    Link.link ~name:"orig" ~text_base:0x400000 ~data_base:0x500000
      ~entry:"fopen" [ sample () ]
  in
  let imods, _ = Epoxie.instrument_modules [ sample () ] in
  let instr =
    Link.link ~name:"instr" ~text_base:0x400000 ~data_base:0x500000
      ~entry:"fopen"
      (imods @ [ Runtime.make Runtime.User ])
  in
  let stop exe = Exe.symbol exe "_findiop" in
  Printf.sprintf
    "Figure 2: Instrumentation by epoxie\n\n\
     a) Before instrumentation:\n%s\n\
     b) After instrumentation:\n%s"
    (Exe.disassemble ~hi:(stop orig) orig)
    (Exe.disassemble ~hi:(stop instr) instr)
