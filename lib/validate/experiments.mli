(** Regeneration of every table and figure of the paper's evaluation, plus
    the design-choice ablations of DESIGN.md.  Each function prints the
    rows/series the paper reports; the measured/predicted matrix is
    computed once and shared between tables. *)

open Systrace_util
open Systrace_workloads

val spec_of : Suite.entry -> Validate.spec

type full_row = {
  fname : string;
  ultrix : Validate.row;
  mach : Validate.row;
}

val run_matrix :
  ?seed:int ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?entries:Suite.entry list ->
  unit ->
  full_row list
(** Every workload under both personalities, measured and predicted.
    Each cell is a self-contained simulation run on a pool of [jobs]
    domains (default 1 = serial); results merge in suite order, so the
    rendered tables are byte-identical whatever [jobs] is.  [progress] is
    serialized by a mutex and may be called from worker domains.
    [entries] restricts the matrix (tests use a subset). *)

val run_geometry_matrix :
  ?seed:int ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?entries:Suite.entry list ->
  geometries:(string * Systrace_machine.Machine.config) list ->
  unit ->
  (string * Validate.os * (string * Validate.row) list) list
(** [run_matrix] across a labelled machine-geometry family: each
    (workload, OS) cell runs one measured pass per geometry but only ONE
    traced pass, predicting every geometry from the shared trace via
    {!Validate.run_workload_sweep}.  Cells run on a pool of [jobs]
    domains; results merge deterministically in suite order. *)

val geometry_table :
  (string * Validate.os * (string * Validate.row) list) list -> Table.t
(** Measured vs predicted run time and error per geometry, from
    {!run_geometry_matrix}. *)

val table1 : unit -> Table.t
val table2 : full_row list -> Table.t
val figure3 : full_row list -> Table.t
val table3 : full_row list -> Table.t

val expansion_table : unit -> Table.t
(** §3.2: epoxie vs pixie text growth. *)

val dilation_table : full_row list -> Table.t
(** §4.1: instrumented instructions per original instruction. *)

val kernel_cpi_table : full_row list -> Table.t
(** §3.4: kernel vs user CPI from trace-driven simulation. *)

val distortion_table : ?wnames:string list -> unit -> Table.t
(** §4.1: machine-level event rates, untraced vs traced execution. *)

val buffer_sweep_table : ?wname:string -> ?jobs:int -> unit -> Table.t
(** §4.3: in-kernel buffer size vs trace-analysis transitions; the sweep
    points run on a pool of [jobs] domains. *)

val pagemap_table :
  ?wname:string -> ?nseeds:int -> ?jobs:int -> unit -> Table.t
(** §4.2/§4.4: page-mapping policy sensitivity across seeds; the
    (policy, seed) cells run on a pool of [jobs] domains. *)

val corruption_table : ?wname:string -> ?trials:int -> ?seed:int -> unit -> Table.t
(** §4.3 fault injection: detection rate of single-word corruptions. *)

val faults_table :
  ?wname:string ->
  ?trials:int ->
  ?seed:int ->
  ?rates:float list ->
  unit ->
  Table.t
(** §4.3, quantitative: sweep the [Tracing.Faults] catalogue (bit flips,
    drops, duplicates, swaps, truncation, marker/drain mutations, drain
    splits) over a captured trace at several injection rates, reporting
    per-kind detection rate, detection latency (words from injection to
    first recovery-mode diagnosis), and recovery loss (references missing
    vs the clean run).  Asserts the rate-0 criterion first: strict and
    recovery modes reconstruct the identical reference stream from the
    pristine trace. *)

val interp_ablation_table : ?wname:string -> unit -> Table.t
(** DESIGN.md §5e: step-at-a-time vs translation micro-cache vs
    basic-block replay on an untraced boot + workload run — host cost per
    mode, with the ground-truth counters and console transcript asserted
    identical first (the block cache must be invisible to the simulated
    machine). *)

val os_structure_table : full_row list -> Table.t
(** System vs user share of memory activity under each OS structure. *)

val figure2 : unit -> string
(** Before/after disassembly of the paper's fopen example. *)

val drain_ablation_table : ?wname:string -> unit -> Table.t
(** DESIGN.md §5: drain-user-buffers-on-every-kernel-entry (the paper's
    interleaving-preserving design) vs flush-only-when-full, with the
    kernel counting the trace words each skipped drain lets kernel records
    overtake, and the disorder's effect on a trace-driven simulation. *)
