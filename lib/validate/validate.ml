(* The validation harness (paper §5): run each workload on each system
   twice —

   MEASURED: the uninstrumented binaries on the untraced kernel, using the
   machine simulator's ground-truth counters as the paper used its
   high-resolution timer and TLB-miss-counting kernel;

   PREDICTED: the epoxie-instrumented binaries on the traced kernel, with
   the collected trace streamed through the trace-driven memory-system
   simulator, the page map extracted from the running (traced) system, an
   arithmetic-stall estimate from a pixie-style ideal-memory run, and
   idle-loop counts scaled by the time-dilation factor.

   Comparing the two reproduces Table 2 (run times), Figure 3 (percent
   error) and Table 3 (user TLB misses). *)

open Systrace_tracing
open Systrace_kernel
open Systrace_tracesim

type os = Ultrix | Mach

let os_name = function Ultrix -> "Ultrix" | Mach -> "Mach 3.0"

(* A workload specification: its programs (excluding the UX server, which
   the harness adds for Mach) and its input files. *)
type spec = {
  wname : string;
  files : Builder.file_spec list;
  programs : Builder.program list;
}

type measurement = {
  m_cycles : int;
  m_seconds : float;
  m_utlb : int;
  m_idle : int;
  m_user_insts : int;
  m_kernel_insts : int;
  m_insts : int;
  m_arith_ideal : int; (* pixie-style arithmetic-stall estimate *)
  m_console : string;
  m_disk_reads : int;
  m_disk_writes : int;
}

type prediction = {
  p_breakdown : Predict.breakdown;
  p_utlb : int;
  p_console : string;
  p_parse : Parser.stats;
  p_mem : Memsim.stats;
  p_traced_insts : int;      (* instructions the traced machine executed *)
  p_tlbdropins : int;
  p_peak_words : int;        (* largest ANALYZE chunk: peak resident words *)
}

let base_cfg os pagemap seed =
  {
    Builder.default_config with
    Builder.personality = (match os with Ultrix -> Kcfg.Ultrix | Mach -> Kcfg.Mach);
    pagemap =
      (match pagemap with
      | Some p -> p
      | None -> (match os with Ultrix -> Kcfg.Careful | Mach -> Kcfg.Random));
    seed;
  }

let all_programs os spec =
  match os with
  | Ultrix -> spec.programs
  | Mach ->
    let server =
      {
        Builder.pname = "uxserver";
        modules =
          [
            Systrace_workloads.Ux_server.make
              ~file_plan:(Builder.file_plan spec.files) ();
            Systrace_workloads.Userlib.make ();
          ];
        heap_pages = 4;
        is_server = true;
        notrace = false;
      }
    in
    server :: spec.programs

let max_insns = 2_000_000_000

let run_to_halt t =
  match Builder.run t ~max_insns with
  | Systrace_machine.Machine.Halt -> ()
  | Systrace_machine.Machine.Limit -> failwith "validate: system did not halt"

(* ------------------------------------------------------------------ *)

let measure ?pagemap ?machine_cfg ?(seed = 1) os spec : measurement =
  let cfg = base_cfg os pagemap seed in
  let cfg =
    match machine_cfg with
    | Some m -> { cfg with Builder.machine_cfg = m }
    | None -> cfg
  in
  let t = Builder.build ~cfg ~programs:(all_programs os spec) ~files:spec.files () in
  run_to_halt t;
  let c = t.Builder.machine.Systrace_machine.Machine.c in
  (* pixie-style arithmetic stall estimate: a functional run with an ideal
     memory system, so FP interlocks are the only stalls. *)
  let ideal_cfg =
    {
      cfg with
      Builder.machine_cfg =
        {
          cfg.Builder.machine_cfg with
          Systrace_machine.Machine.read_miss_penalty = 0;
          uncached_penalty = 0;
          wb_drain = 0;
        };
    }
  in
  let ti =
    Builder.build ~cfg:ideal_cfg ~programs:(all_programs os spec)
      ~files:spec.files ()
  in
  run_to_halt ti;
  {
    m_cycles = t.Builder.machine.Systrace_machine.Machine.cycles;
    m_seconds =
      float_of_int t.Builder.machine.Systrace_machine.Machine.cycles
      /. Predict.clock_hz;
    m_utlb = c.Systrace_machine.Machine.utlb_misses;
    m_idle = c.Systrace_machine.Machine.idle_instructions;
    m_user_insts = c.Systrace_machine.Machine.user_instructions;
    m_kernel_insts = c.Systrace_machine.Machine.kernel_instructions;
    m_insts = c.Systrace_machine.Machine.instructions;
    m_arith_ideal =
      Systrace_machine.Machine.arith_stalls ti.Builder.machine;
    m_console = Builder.console t;
    m_disk_reads = t.Builder.machine.Systrace_machine.Machine.disk.Systrace_machine.Disk.reads;
    m_disk_writes = t.Builder.machine.Systrace_machine.Machine.disk.Systrace_machine.Disk.writes;
  }

(* ------------------------------------------------------------------ *)

(* The memory-simulator configuration a machine geometry implies, with
   the page map shared by reference so [Memsim.sweep] can translate once
   per trace word for every geometry at once. *)
let memsim_cfg ~pagemap (mcfg : Systrace_machine.Machine.config) =
  {
    Memsim.icache_bytes = mcfg.Systrace_machine.Machine.icache_bytes;
    icache_line = mcfg.Systrace_machine.Machine.icache_line;
    icache_ways = 1;
    dcache_bytes = mcfg.Systrace_machine.Machine.dcache_bytes;
    dcache_line = mcfg.Systrace_machine.Machine.dcache_line;
    dcache_ways = 1;
    read_miss_penalty = mcfg.Systrace_machine.Machine.read_miss_penalty;
    uncached_penalty = mcfg.Systrace_machine.Machine.uncached_penalty;
    wb_depth = mcfg.Systrace_machine.Machine.wb_depth;
    wb_drain = mcfg.Systrace_machine.Machine.wb_drain;
    pagemap;
    pt_base = Kcfg.pt_base_va;
    utlb_handler_insns = 8;
    ktlb_handler_insns = 24;
    tlb_entries = 64;
  }

let predict_sweep ?pagemap ?(seed = 1) ?(arith_stalls = -1) ?geometries os
    spec : prediction array =
  let cfg = { (base_cfg os pagemap seed) with Builder.traced = true } in
  let geometries =
    match geometries with
    | Some [] -> invalid_arg "predict_sweep: no geometries"
    | Some gs -> gs
    | None -> [ cfg.Builder.machine_cfg ]
  in
  let t = Builder.build ~cfg ~programs:(all_programs os spec) ~files:spec.files () in
  let kernel_bbs = Option.get t.Builder.kernel_bbs in
  let parser = Parser.create ~kernel_bbs () in
  List.iter
    (fun (pi : Builder.proc_info) ->
      Parser.register_pid parser ~pid:pi.pid (Option.get pi.bbs))
    t.Builder.procs;
  (* one extracted page map, shared (by reference) across every geometry:
     the sweep translates each trace word once *)
  let shared_pagemap = Builder.extract_pagemap t in
  let sw =
    Memsim.sweep (List.map (memsim_cfg ~pagemap:shared_pagemap) geometries)
  in
  (* The prediction is fully online (paper §4.3): each ANALYZE phase's
     chunk drives the parser and memory simulation — all geometries at
     once — as it is drained, so peak resident trace words is the largest
     chunk — O(in-kernel buffer) — not the trace length.  The peak branch
     of the tee is the witness the stream bench checks against the buffer
     size. *)
  let live =
    List.filter_map
      (fun (pi : Builder.proc_info) ->
        if pi.prog.Builder.is_server then Some pi.pid else None)
      t.Builder.procs
  in
  let peak_sink, peak_words = Sink.peak () in
  let sink = Sink.tee [ peak_sink; Memsim.sweep_sink ~live sw parser ] in
  t.Builder.trace_sink <- Some (fun words len -> sink.Sink.on_words words ~len);
  run_to_halt t;
  Builder.drain_final t;
  sink.Sink.finish ();
  (* The arithmetic-stall estimate comes from the caller (usually the
     measured pass's ideal-memory run) or is recomputed here; the ideal
     run zeroes every memory penalty, so it is geometry-invariant and
     shared by all predictions. *)
  let arith =
    if arith_stalls >= 0 then arith_stalls
    else (measure ?pagemap ~seed os spec).m_arith_ideal
  in
  let stats = Memsim.sweep_stats sw in
  let parse = Parser.stats parser in
  let console = Builder.console t in
  let traced_insts =
    t.Builder.machine.Systrace_machine.Machine.c.Systrace_machine.Machine.instructions
  in
  let tlbdropins = Builder.tlbdropins t in
  let peak = peak_words () in
  Array.of_list
    (List.mapi
       (fun i (mcfg : Systrace_machine.Machine.config) ->
         let mem = stats.(i) in
         let breakdown =
           Predict.make ~mem ~parse ~arith_stalls:arith
             ~dilation:Kcfg.time_dilation
             ~read_miss_penalty:mcfg.Systrace_machine.Machine.read_miss_penalty
             ~uncached_penalty:mcfg.Systrace_machine.Machine.uncached_penalty
         in
         {
           p_breakdown = breakdown;
           p_utlb = mem.Memsim.utlb_misses;
           p_console = console;
           p_parse = parse;
           p_mem = mem;
           p_traced_insts = traced_insts;
           p_tlbdropins = tlbdropins;
           p_peak_words = peak;
         })
       geometries)

let predict ?pagemap ?seed ?arith_stalls os spec : prediction =
  (predict_sweep ?pagemap ?seed ?arith_stalls os spec).(0)

(* ------------------------------------------------------------------ *)

type row = {
  r_name : string;
  r_os : os;
  r_measured : measurement;
  r_predicted : prediction;
}

let run_workload ?machine_cfg ?pagemap ?(seed = 1) os spec : row =
  let m = measure ?machine_cfg ?pagemap ~seed os spec in
  let p = predict ?pagemap ~seed ~arith_stalls:m.m_arith_ideal os spec in
  if m.m_console <> p.p_console then
    failwith
      (Printf.sprintf
         "%s/%s: traced and untraced runs disagree on output:\n%S\nvs\n%S"
         spec.wname (os_name os) m.m_console p.p_console);
  { r_name = spec.wname; r_os = os; r_measured = m; r_predicted = p }

(* One measured pass per geometry (the "real machine" must actually be
   built with each geometry), but a single traced pass predicting all of
   them: the trace is collected and parsed once and [Memsim.sweep]
   evaluates every geometry from the shared decode. *)
let run_workload_sweep ?pagemap ?(seed = 1) ~geometries os spec : row list =
  let ms =
    List.map
      (fun machine_cfg -> measure ~machine_cfg ?pagemap ~seed os spec)
      geometries
  in
  let arith =
    match ms with m :: _ -> m.m_arith_ideal | [] -> invalid_arg
      "run_workload_sweep: no geometries"
  in
  let ps = predict_sweep ?pagemap ~seed ~arith_stalls:arith ~geometries os spec in
  List.mapi
    (fun i m ->
      let p = ps.(i) in
      if m.m_console <> p.p_console then
        failwith
          (Printf.sprintf
             "%s/%s: traced and untraced runs disagree on output:\n%S\nvs\n%S"
             spec.wname (os_name os) m.m_console p.p_console);
      { r_name = spec.wname; r_os = os; r_measured = m; r_predicted = p })
    ms

let percent_error row =
  Systrace_util.Stats.percent_error ~measured:row.r_measured.m_seconds
    ~predicted:row.r_predicted.p_breakdown.Predict.seconds

(* [measure] with a non-default machine configuration (cache-geometry
   studies). *)
let measure_with ~machine_cfg ?pagemap ?(seed = 1) os spec =
  measure ~machine_cfg ?pagemap ~seed os spec

(* Time-dilation factor actually achieved by instrumentation (§4.1). *)
let dilation row =
  float_of_int row.r_predicted.p_traced_insts
  /. float_of_int row.r_measured.m_insts
