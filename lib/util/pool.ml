(* Fixed-size domain work pool.

   The validation harness runs the full Table 2/3 matrix — every workload
   under both personalities, measured and predicted — and every cell is an
   independent full-machine simulation.  [map] farms such jobs out to a
   pool of domains (OCaml 5 [Domain] and [Mutex] from the stdlib only; no
   new packages, per DESIGN.md §6).

   Guarantees:
   - results come back in input order, regardless of completion order;
   - an exception in any job is re-raised in the caller (the first failing
     job in input order, among those that ran, wins) after all workers
     have stopped;
   - one effective worker (or fewer than two items) degrades to a plain
     [List.map] on the calling domain, so serial runs take the exact same
     code path through the job closures.

   Scheduling (DESIGN.md §5d):
   - Workers are capped at [Domain.recommended_domain_count ()] unless
     [~oversubscribe:true].  OCaml 5's minor collector is stop-the-world
     across domains: on a box with fewer cores than [jobs], descheduled
     domains stall every minor GC for everyone, and the "parallel" run
     loses to the serial one (measured 0.39x at [-j 4] on one core).
     Capping turns that configuration back into the serial path.
   - Indices are claimed in blocks of [chunk] (default [n / (workers*8)],
     at least 1), not one-at-a-time, so the claim mutex is off the hot
     path for large matrices while the tail still load-balances.
   - Each worker's first action is to grow its own minor heap: spawned
     domains do NOT inherit the parent's [Gc.set], and the default minor
     heap makes allocation-heavy simulation cells trigger frequent
     stop-the-world minor collections across the pool. *)

type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

(* Minor heap per worker domain, in words (16 MB on 64-bit). *)
let worker_minor_heap = 1 lsl 21

let effective_jobs ?(oversubscribe = false) ~jobs n =
  let cores = max 1 (Domain.recommended_domain_count ()) in
  let j = if oversubscribe then jobs else min jobs cores in
  max 1 (min j n)

let map ?(oversubscribe = false) ?chunk ~jobs f xs =
  let n = List.length xs in
  let nworkers = effective_jobs ~oversubscribe ~jobs n in
  if nworkers <= 1 || n <= 1 then List.map f xs
  else begin
    let block =
      match chunk with
      | Some c when c >= 1 -> c
      | Some c -> invalid_arg (Printf.sprintf "Pool.map: chunk %d < 1" c)
      | None -> max 1 (n / (nworkers * 8))
    in
    let items = Array.of_list xs in
    let results = Array.make n Pending in
    let next = ref 0 in
    let m = Mutex.create () in
    let failed = Atomic.make false in
    (* Claim a block [lo, hi) under the mutex; compute outside it.  Workers
       keep claiming until the queue is empty or some job has failed (no
       point starting new work that will be thrown away). *)
    let claim () =
      Mutex.lock m;
      let lo = if Atomic.get failed || !next >= n then -1 else !next in
      let hi = if lo < 0 then -1 else min n (lo + block) in
      if lo >= 0 then next := hi;
      Mutex.unlock m;
      (lo, hi)
    in
    let worker () =
      let g = Gc.get () in
      if g.Gc.minor_heap_size < worker_minor_heap then
        Gc.set { g with Gc.minor_heap_size = worker_minor_heap };
      let rec go () =
        let lo, hi = claim () in
        if lo >= 0 then begin
          let k = ref lo in
          while !k < hi && not (Atomic.get failed) do
            (match f items.(!k) with
            | r -> results.(!k) <- Done r
            | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              results.(!k) <- Failed (e, bt);
              Atomic.set failed true);
            incr k
          done;
          go ()
        end
      in
      go ()
    in
    let domains = Array.init nworkers (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Done r -> r
           | Pending | Failed _ -> assert false (* no failure, all claimed *))
         results)
  end

let default_jobs () = Domain.recommended_domain_count ()
