(* Fixed-size domain work pool.

   The validation harness runs the full Table 2/3 matrix — every workload
   under both personalities, measured and predicted — and every cell is an
   independent full-machine simulation.  [map] farms such jobs out to
   [jobs] domains (OCaml 5 [Domain], [Mutex] and [Condition] from the
   stdlib only; no new packages, per DESIGN.md §6).

   Guarantees:
   - results come back in input order, regardless of completion order;
   - an exception in any job is re-raised in the caller (the first failing
     job in input order wins) after all workers have stopped;
   - [jobs <= 1] (or fewer than two items) degrades to a plain [List.map]
     on the calling domain, so serial runs take the exact same code path
     through the job closures. *)

type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map ~jobs f xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let items = Array.of_list xs in
    let results = Array.make n Pending in
    let next = ref 0 in
    let m = Mutex.create () in
    (* Claim indices under the mutex; compute outside it.  Workers keep
       claiming until the queue is empty or some job has failed (no point
       starting new work that will be thrown away). *)
    let failed = ref false in
    let claim () =
      Mutex.lock m;
      let k = if !failed || !next >= n then -1 else !next in
      if k >= 0 then incr next;
      Mutex.unlock m;
      k
    in
    let worker () =
      let rec go () =
        let k = claim () in
        if k >= 0 then begin
          (match f items.(k) with
          | r -> results.(k) <- Done r
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            results.(k) <- Failed (e, bt);
            Mutex.lock m;
            failed := true;
            Mutex.unlock m);
          go ()
        end
      in
      go ()
    in
    let nworkers = min jobs n in
    let domains = Array.init nworkers (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Done r -> r
           | Pending | Failed _ -> assert false (* no failure, all claimed *))
         results)
  end

let default_jobs () = Domain.recommended_domain_count ()
