(** Fixed-size domain work pool for independent jobs (stdlib [Domain] /
    [Mutex] / [Condition] only; no new packages).

    Used by the validation harness to run the measured/predicted matrix —
    each cell a self-contained machine simulation — across cores. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on a pool of at
    most [jobs] domains and returns the results in input order.  If any
    job raises, the exception of the first failing job (in input order) is
    re-raised in the caller after all workers have stopped.  With
    [jobs <= 1] (or fewer than two items) this is exactly [List.map f xs]
    on the calling domain. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)
