(** Fixed-size domain work pool for independent jobs (stdlib [Domain] /
    [Mutex] only; no new packages).

    Used by the validation harness to run the measured/predicted matrix —
    each cell a self-contained machine simulation — across cores. *)

val map :
  ?oversubscribe:bool ->
  ?chunk:int ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on a pool of
    domains and returns the results in input order.

    The pool size is [min jobs (Domain.recommended_domain_count ())]
    unless [oversubscribe] is [true]: running more domains than cores is
    a measured slowdown under OCaml 5's stop-the-world minor collector
    (DESIGN.md §5d), so requests beyond the hardware are clamped by
    default.  [oversubscribe] keeps the literal [jobs] for tests and
    experiments that want the contention on purpose.

    Workers claim indices in blocks of [chunk] (default
    [n / (workers * 8)], at least 1) to keep the claim lock off the hot
    path.  [chunk] must be >= 1 or [Invalid_argument] is raised.

    If any job raises, the exception of the first failing job in input
    order (among those that ran — later blocks may be abandoned) is
    re-raised in the caller after all workers have stopped.  With one
    effective worker (or fewer than two items) this is exactly
    [List.map f xs] on the calling domain. *)

val effective_jobs : ?oversubscribe:bool -> jobs:int -> int -> int
(** [effective_jobs ~jobs n] is the number of worker domains [map] would
    use for [n] items: [jobs] clamped to the hardware core count (unless
    [oversubscribe]) and to [n], at least 1.  Benchmarks use it to report
    the worker count that actually ran. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)
