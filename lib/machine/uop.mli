(** The execution-engine uop IR: decode-to-uop lowering, basic-block
    formation, superblock peephole fusion, tier selection, and the
    per-page store-generation invalidation contract.

    This module owns everything about *what* a compiled block contains;
    {!Machine} owns the architectural state and *how* blocks replay.
    [Machine.step] remains the state-identical oracle for every tier. *)

open Systrace_isa

(** {2 Execution tiers}

    The interpreter tiers, each strictly a host-side accelerator over the
    one below it — simulated state, counters and console are bit-identical
    across all five (qcheck- and ablation-enforced):

    - [Step]: step-at-a-time oracle, full TLB walk on every access.
    - [Tcache]: + last-translation micro-cache per access class.
    - [Bcache]: + decode-once basic-block cache with successor memo.
    - [Super]: + superblock peephole fusion over cached blocks.
    - [Trace]: + trace superblocks stitched over the successor memo with
      cross-seam register caching. *)
type tier = Step | Tcache | Bcache | Super | Trace

val all_tiers : tier list
val tier_name : tier -> string
val tier_of_string : string -> tier option

val tcache_enabled : tier -> bool
val bcache_enabled : tier -> bool

val fusion_enabled : tier -> bool
(** Fused uops are only built at [Super] and above; the block replay
    engine is shared, so the lower tiers never see a fused constructor. *)

val trace_enabled : tier -> bool
(** Trace superblocks are only formed and dispatched at [Trace]. *)

val tier_of_cli :
  tier:tier option -> no_bcache:bool -> (tier, string) result
(** Resolve the CLI tier selection.  [--interp-tier] wins when given
    alone; the deprecated [--no-bcache] alias alone maps to [Tcache];
    giving both is an error (the alias used to lose silently); neither
    means the default ([Super]). *)

(** {2 The uop IR}

    One pre-decoded instruction (or fused run) of a cached basic block:
    operands resolved to plain ints at build time (immediates applied,
    branch targets absolute), dispatch pre-selected, so replay does no
    decode-cache probing and allocates nothing.  Anything without a
    specialised executor falls back to [U_other] and the full interpreter
    dispatch.

    The [U_li]..[U_j_nop] constructors are superblock fusions: one
    dispatch executes 2–3 instructions.  A fused uop sits in the slot of
    its first instruction; the covered slots keep their original scalar
    uops, so the executor can bail out mid-run (event horizon about to
    expire, block/budget boundary) after executing only a prefix and the
    generic loop resumes on the unfused tail.  Fusion rules
    (enforced by {!fuse}, qcheck-checked):

    - only cached blocks are fused, so fused bodies skip the per-uop
      cacheability test (they are specialised on [bb_cached = true]);
    - no covered instruction may be a store, except as the *final*
      element ([U_lmw]), so a fused run never crosses a
      store-generation bump — the post-store revalidation runs
      immediately after the dispatch;
    - no covered instruction may be a barrier or [U_other];
    - a branch may only be the final element ([U_slt_b]) or carry its
      own empty delay slot ([U_j_nop]);
    - at run time every inter-instruction seam inside the fused body
      re-checks the event horizon and falls back to the scalar tail if
      the next poll could be observable. *)
type t =
  | U_alu of Insn.alu * int * int * int    (* rd, rs, rt *)
  | U_alui of Insn.alui * int * int * int  (* rt, rs, imm *)
  | U_shift of Insn.shift * int * int * int
  | U_lui of int * int
  | U_lw of int * int * int                (* rt, base, off *)
  | U_lh of int * int * int
  | U_lhu of int * int * int
  | U_lb of int * int * int
  | U_lbu of int * int * int
  | U_sw of int * int * int
  | U_sh of int * int * int
  | U_sb of int * int * int
  | U_beq of int * int * int               (* rs, rt, absolute target *)
  | U_bne of int * int * int
  | U_blez of int * int
  | U_bgtz of int * int
  | U_bltz of int * int
  | U_bgez of int * int
  | U_bc1t of int
  | U_bc1f of int
  | U_j of int
  | U_jal of int
  | U_jr of int
  | U_jalr of int * int
  | U_li of int * int
      (** [lui rt; ori rt, rt, lo] — rt, full 32-bit immediate *)
  | U_addiu2 of int * int * int * int * int * int
      (** two consecutive addiu: rt1, rs1, imm1, rt2, rs2, imm2 *)
  | U_slt_b of bool * int * int * int * bool * int
      (** compare+branch: [slt(u) rd, rs, rt; bne/beq rd, $0, tgt] —
          unsigned, rd, rs, rt, branch-if-nonzero, target.  The compare
          result stays in an OCaml local for the branch decision. *)
  | U_lw_addiu of int * int * int * int * int * int
      (** load+use: [lw rt, off(base); addiu rt2, rs2, imm2] *)
  | U_lmw of int * int * int * int * int * int * int * int * int
      (** load-modify-store: [lw rt, off(base); addiu rt2, rs2, imm2;
          sw rt3, off3(base3)] — the store is the final element *)
  | U_j_nop of int
      (** [j tgt] with an empty (nop) delay slot *)
  | U_other of Insn.t                      (* full interpreter dispatch *)

val of_insn : Insn.t -> t
(** Scalar lowering: never produces a fused constructor. *)

val barrier : Insn.t -> bool
(** Instructions that can change fetch semantics for their successors
    (mode, ASID, TLB contents, arbitrary host effects) end a block, so
    the next instruction re-enters through a fresh translation. *)

val fuse : t array -> t array
(** Peephole superblock fusion over a lowered block body, under the
    rules above.  Same length as the input: fused constructors replace
    the slot of their first instruction and every covered slot keeps its
    original scalar uop. *)

val width : t -> int
(** Instructions covered by one dispatch: 3 for [U_lmw], 2 for the other
    fused constructors, 1 for scalar uops. *)

val is_fused : t -> bool

(** {2 Blocks} *)

(** One straight-line run of instructions: from a block-entry pc up to
    the first control transfer (plus its delay slot) or block barrier,
    never crossing a page boundary — so one fetch translation covers the
    whole block.  Blocks are immutable; staleness is detected, never
    patched. *)
type block = {
  bb_pa : int;       (* physical address of the first instruction *)
  bb_va : int;       (* pc it was decoded at: branch targets (and the
                        shared per-word decode cache) depend on the va,
                        so an aliased mapping must not reuse the block *)
  bb_cached : bool;  (* cacheability of the fetch mapping at build time *)
  bb_gen : int;      (* page generation at build: stale => rebuild *)
  bb_uops : t array;
  mutable bb_next : block;
      (* memoized chain successor (last block entered from this block's
         end): re-validated on every use against the fetch micro-cache
         and the successor's own page generation, so it is only ever a
         shortcut past the block-table probe, never a source of truth *)
  mutable bb_hot : int;
      (* chain-entry heat at the [Trace] tier; reaching
         [trace_hot_threshold] triggers one trace-formation attempt *)
  mutable bb_trace : trace option;
      (* trace superblock headed by this block, if one formed *)
}

(** A trace superblock: a hot chain of blocks (found through the
    successor memo, loops unrolled) replayed as one unit.  The dispatcher
    performs the budget, event-horizon, watchpoint, store-generation and
    icache-residency checks *once* up front — [tr_insns]/[tr_wc] bound
    the whole pass, [tr_pages]/[tr_gens] snapshot every spanned text
    page, and [tr_lines] are the spanned icache lines, which the builder
    guarantees map to distinct cache indexes so an all-resident check
    makes every fetch in the pass a hit.  Inside the pass there are no
    per-element re-tests; any event that could invalidate the
    preconditions (device store, generation bump, recorded path
    diverging) takes a side exit that spills the register cache and
    returns to the generic loop.  [tr_regs] are the ≤4 hottest registers
    by def/use count; the executor keeps the top of the list in OCaml
    locals across internal seams, spilling only at side exits, traps,
    may-fault memory slow paths and trace end. *)
and trace = {
  tr_blocks : block array;  (* ≥ 2 constituent blocks, in path order *)
  tr_insns : int;           (* total instruction slots *)
  tr_wc : int;              (* worst-case cycles for one full pass *)
  tr_pages : int array;     (* distinct spanned text pages (page index) *)
  tr_gens : int array;      (* generation snapshot, parallel to tr_pages *)
  tr_pg_lo : int;           (* min spanned page: a store to a page outside
                               [tr_pg_lo, tr_pg_hi] cannot invalidate the
                               snapshot, so the in-pass recheck is two
                               compares on the common (data-page) store *)
  tr_pg_hi : int;           (* max spanned page *)
  tr_lines : int array;     (* distinct icache line tags, distinct index *)
  tr_regs : int array;      (* hottest registers, hottest first, ≤ 4 *)
  mutable tr_live : bool;   (* false after first invalidation: the head
                               deopts to plain [Super] dispatch *)
}

val dummy_block : block

val dummy_trace : trace
(** Never-live placeholder for dispatcher state (spans no blocks). *)

val trace_hot_threshold : int
(** Memo-chain entries into a block before trace formation is tried. *)

val trace_max_insns : int
(** Total-slot cap on one trace, independent of the block-count cap. *)

val trace_eligible : block -> bool
(** Blocks a trace may contain: cached RAM text, no [U_other] (barriers,
    FP, hcalls), and no control transfer left open at the end by the
    page-end clamp. *)

val form_trace :
  head:block ->
  max_blocks:int ->
  wc_load:int ->
  wc_store:int ->
  line_shift:int ->
  nlines:int ->
  trace option
(** Walk the successor memo from [head], collecting up to [max_blocks]
    eligible blocks (at least 2, at most [trace_max_insns] slots), and
    build the trace superblock: page/generation snapshot, spanned icache
    lines, worst-case cycles (1 + [wc_load]/[wc_store] per memory
    instruction), def/use register ranking.  Returns [None] when the
    chain is too short, a spanned page has an inconsistent generation
    snapshot, or two spanned icache lines alias the same cache index
    (which would defeat the up-front residency check). *)

val max_block_insns : int
(** Straight-line runs longer than this are split; the tail re-enters
    through the block table, so nothing is lost but one lookup. *)

val build :
  decode:(va:int -> pa:int -> Insn.t) ->
  va:int -> pa:int -> cached:bool -> gen:int -> fuse:bool -> block
(** Form the block starting at [va]/[pa]: decode and lower until a
    control transfer (plus delay slot), barrier, page end or
    [max_block_insns].  A decode failure at the entry word re-raises; a
    later one ends the block before the bad word, so it raises exactly
    when step-at-a-time would reach it.  [fuse] applies {!fuse} — only
    honoured on cacheable text, which is what lets fused bodies skip the
    cacheability test. *)

(** {2 The store-generation invalidation contract}

    One generation counter per physical page.  Every physical write —
    stores (including the block replay's inlined fast path), DMA
    completions, host pokes — must bump the written page(s).  A block is
    valid only while [bb_gen] matches its text page's current
    generation: the block table probe, the successor memo and the
    post-store recheck inside replay all compare against it, which is
    what makes self-modifying code, newly-loaded text and DMA into text
    pages safe with no explicit flush anywhere.  TLB remaps and mode
    switches need no generation traffic either: every block entry
    re-runs the fetch translation and blocks are keyed on its
    (pa, va, cacheability) result. *)
module Gens : sig
  type t = int array

  val create : mem_bytes:int -> t
  val bump : t -> int -> unit          (* one written address *)
  val bump_range : t -> int -> int -> unit  (* [pa, pa+len) *)
  val get : t -> int -> int            (* current generation of pa's page *)
end
