(** The simulated machine: CPU interpreter with branch delay slots, CP0,
    TLB, caches, write buffer, FP latency model, and devices (console,
    line clock, disk).

    This is the "hardware" of the reproduction.  Its ground-truth event
    counters play the role of the paper's direct measurements of the
    uninstrumented DECstation.  Nothing here knows about tracing: traces
    are generated purely by instrumented code running on the machine. *)

open Systrace_isa

exception Halted

(** R3000 exception codes. *)
module Exc : sig
  val interrupt : int
  val tlb_mod : int
  val tlbl : int
  val tlbs : int
  val adel : int
  val ades : int
  val syscall : int
  val breakpoint : int
  val reserved : int
end

exception Trap of { code : int; badva : int; refill : bool }

type config = {
  mem_bytes : int;
  icache_bytes : int;
  icache_line : int;
  dcache_bytes : int;
  dcache_line : int;
  read_miss_penalty : int;
  uncached_penalty : int;
  wb_depth : int;
  wb_drain : int;
  disk_blocks : int;
  disk_seek : int;
  disk_per_block : int;
  count_exec : bool;  (** per-instruction-word execution counts (§4.3) *)
  tier : Uop.tier;
      (** Interpreter tier (default {!Uop.Super}): [Step] is the
          step-at-a-time oracle with a full TLB walk per access; [Tcache]
          adds the last-translation micro-cache; [Bcache] adds the
          decode-once basic-block execution cache (one fetch translation
          + bounds check per block, keyed by (physical address, pc,
          cacheability), invalidated by per-page store generations, so
          self-modifying code, DMA, TLB remaps and mode switches behave
          exactly as in step-at-a-time execution); [Super] adds
          superblock peephole fusion over cached blocks; [Trace] adds
          trace superblocks stitched over the successor memo with
          cross-seam register caching.  {!step} remains the
          state-identical oracle for every tier (qcheck-enforced). *)
  trace_len : int;
      (** Maximum blocks per trace superblock at the [Trace] tier
          (default 8; CLI range 4–16). *)
}

val default_config : config

type counters = {
  mutable instructions : int;
  mutable user_instructions : int;
  mutable kernel_instructions : int;
  mutable idle_instructions : int;
  mutable uncached_ifetches : int;
  mutable uncached_reads : int;
  mutable utlb_misses : int;
  mutable ktlb_misses : int;
  mutable tlb_invalid : int;
  mutable tlb_mod : int;
  mutable exceptions : int;
  mutable interrupts : int;
  mutable syscalls : int;
  mutable clock_ticks : int;
}

(** Last-translation micro-cache: one (vpn -> page frame) entry per access
    class (fetch / load / store), flushed on TLB writes, CP0 status/mode
    changes and ASID/context updates. *)
type tcache = {
  mutable f_vpn : int;  mutable f_frame : int;  mutable f_cached : bool;
  mutable r_vpn : int;  mutable r_frame : int;  mutable r_cached : bool;
  mutable w_vpn : int;  mutable w_frame : int;  mutable w_cached : bool;
}

type t = {
  cfg : config;
  mem : Bytes.t;
  dec : Insn.t array;
  dec_valid : Bytes.t;
  bcache_tab : Uop.block array;
  bgen : Uop.Gens.t;
      (** Per-physical-page store generation: bumped by every store, DMA
          and host poke; cached blocks are valid only while their page's
          generation matches ({!Uop.Gens} owns the contract). *)
  regs : int array;
  fregs : float array;
  mutable fcc : bool;
  mutable pc : int;
  mutable npc : int;
  mutable next_is_delay : bool;
  mutable status : int;
  mutable cause : int;
  mutable epc : int;
  mutable badvaddr : int;
  mutable entryhi : int;
  mutable entrylo : int;
  mutable index_reg : int;
  mutable context_base : int;
  mutable context_badvpn : int;
  tlb : Tlb.t;
  tc : tcache;
  mutable tr_cached : bool;
      (** Cacheability of the last [translate_i] result — the hot paths'
          allocation-free way of returning (pa, cached). *)
  mutable bb_k : int;
      (** Index of the uop currently replaying in block mode — lets the
          per-block trap handler recover the faulting pc. *)
  mutable bb_blk : Uop.block;
      (** The block currently replaying (replay chains across blocks, so
          the trap handler tracks it here). *)
  mutable bb_dev : bool;
      (** Set when a store reached a device register (or a watchpoint
          fired), forcing the full post-store device recheck in block
          replay. *)
  mutable bb_kf : int;
      (** First uop of the pending (not yet counted) replay span. *)
  mutable bb_um : bool;
      (** Mode the pending replay span executed in. *)
  mutable bb_trc : bool;
      (** True while a trace-superblock pass is replaying: icache fetch
          hits are batched (the up-front residency check makes every
          fetch a hit), so flush points — including the trap handler —
          credit them alongside the instruction counters. *)
  mutable bb_tr : Uop.trace;
      (** The trace replaying (valid while [bb_trc]). *)
  mutable bb_tbi : int;
      (** Index in [bb_tr.tr_blocks] of the block replaying. *)
  mutable bb_tbudget : int;
      (** Budget captured at trace-pass entry. *)
  mutable bb_tnext : int;
      (** Event horizon captured at trace-pass entry. *)
  mutable bb_tacc : int;
      (** Instructions completed in already-finished blocks of the
          current trace pass, not yet credited to the counters: internal
          seams accumulate here and the next flush (or the trap handler)
          folds it in, so a pass touches the counter record once. *)
  icache : Cache.t;
  dcache : Cache.t;
  wb : Write_buffer.t;
  fpu : Fpu.t;
  disk : Disk.t;
  mutable clock_interval : int;
  mutable next_clock : int;
  mutable ip : int;
  mutable cycles : int;
  mutable halted : bool;
  console : Buffer.t;
  c : counters;
  mutable idle_lo : int;
  mutable idle_hi : int;
  mutable hcall_handler : (t -> int -> unit) option;
  exec_counts : int array;
  mutable watchpoint : (int -> int -> unit) option;
  mutable ref_tracer : (int -> int -> unit) option;
      (** Reference tracer: (kind, virtual address) for every instruction
          fetch (0), load (1), store (2) — the "independently developed
          CPU simulator" epoxie is validated against (§4.3). *)
}

val create : ?cfg:config -> unit -> t

val user_mode : t -> bool
val asid : t -> int

(** {2 Address translation} *)

val translate : t -> int -> write:bool -> fetch:bool -> int * bool
(** [translate t va ~write ~fetch] is [(pa, cached)]; raises {!Trap} on
    failure.  Goes through the last-translation micro-cache at every
    tier above [Step]. *)

val translate_walk : t -> int -> write:bool -> fetch:bool -> int * bool
(** The full segment-check + TLB walk, never consulting the micro-cache —
    the oracle that {!translate} must agree with on every (pa, cached,
    exception) result. *)

(** {2 Physical memory access (host side too)} *)

val read_phys_u32 : t -> int -> int
val write_phys_u32 : t -> int -> int -> unit
val read_phys_u16 : t -> int -> int
val write_phys_u16 : t -> int -> int -> unit
val read_phys_u8 : t -> int -> int
val write_phys_u8 : t -> int -> int -> unit
val write_phys_bytes : t -> int -> string -> unit
val read_phys_bytes : t -> int -> int -> string

(** {2 Execution} *)

val step : t -> unit
(** One instruction (or one exception entry).  Raises {!Halted} if the
    machine was already halted. *)

type stop_reason = Halt | Limit

val run : t -> max_insns:int -> stop_reason
val halt : t -> unit

(** {2 Loading and inspection} *)

val load_exe_phys : t -> Exe.t -> text_pa:int -> data_pa:int -> unit
val console_contents : t -> string

val cached_blocks : t -> Uop.block list
(** The live entries of the block table (bench introspection: fused-run
    statistics). *)

val cached_traces : t -> Uop.trace list
(** The live trace superblocks headed by cached blocks (bench
    introspection: trace-length histogram). *)

val arith_stalls : t -> int
val wb_stalls : t -> int
val icache_misses : t -> int
val dcache_misses : t -> int
