(* Write buffer between the write-through data cache and memory.

   Four entries; each retires to memory in [drain_cycles] of memory time,
   strictly in order.  A store issued when all four entries are occupied
   stalls the CPU until the oldest entry retires.  The buffer is modelled
   as a queue of absolute retirement times, which lets write-buffer drain
   overlap with floating-point latency in the machine model — the overlap
   the paper's trace-driven simulator does NOT model, and the cause of the
   liv prediction error in Figure 3.

   The queue is a ring of ints rather than a list: [store] runs once per
   simulated store inside the interpreter's hottest loop, and the ring
   keeps that path allocation-free. *)

type t = {
  depth : int;
  drain_cycles : int;
  ring : int array;            (* absolute retire cycles, ascending *)
  mutable head : int;          (* index of the oldest entry *)
  mutable count : int;
  mutable stall_cycles : int;
  mutable stores : int;
}

let create ?(depth = 4) ?(drain_cycles = 6) () =
  {
    depth;
    drain_cycles;
    ring = Array.make depth 0;
    head = 0;
    count = 0;
    stall_cycles = 0;
    stores = 0;
  }

let reset t =
  t.head <- 0;
  t.count <- 0;
  t.stall_cycles <- 0;
  t.stores <- 0

(* Ring index arithmetic uses compare-and-subtract, not [mod]: integer
   division by the run-time [depth] costs more than everything else the
   store path does.  All indices stay in [0, 2*depth), so one subtract
   wraps them. *)
let[@inline] wrap t i = if i >= t.depth then i - t.depth else i

(* Drop entries that have retired by [now] (they are ascending, so a
   prefix of the ring). *)
let expire t now =
  while t.count > 0 && t.ring.(t.head) <= now do
    t.head <- wrap t (t.head + 1);
    t.count <- t.count - 1
  done

(* Issue a store at absolute cycle [now]; returns the stall in cycles the
   CPU suffers (0 if a buffer slot is free). *)
let store t ~now =
  expire t now;
  t.stores <- t.stores + 1;
  let stall, now =
    if t.count < t.depth then (0, now)
    else begin
      (* Stall until the oldest entry retires. *)
      let oldest = t.ring.(t.head) in
      t.head <- wrap t (t.head + 1);
      t.count <- t.count - 1;
      (oldest - now, oldest)
    end
  in
  let last =
    if t.count = 0 then now else t.ring.(wrap t (t.head + t.count - 1))
  in
  let retire = max now last + t.drain_cycles in
  t.ring.(wrap t (t.head + t.count)) <- retire;
  t.count <- t.count + 1;
  t.stall_cycles <- t.stall_cycles + stall;
  stall

(* Cycles until the buffer is fully drained, e.g. for uncached operations
   that must wait for pending writes. *)
let drain_time t ~now =
  expire t now;
  if t.count = 0 then 0
  else max 0 (t.ring.(wrap t (t.head + t.count - 1)) - now)

let pending t ~now =
  expire t now;
  t.count
