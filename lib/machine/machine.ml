(* The simulated machine: CPU interpreter with branch delay slots, CP0
   system coprocessor, TLB, caches, write buffer, FP latency model, and the
   devices (console, line clock, disk).

   This is the "hardware" of the reproduction.  It keeps ground-truth event
   counters (cycles, cache misses, TLB misses, idle-loop instructions) that
   play the role of the paper's direct measurements of the uninstrumented
   DECstation: the validation harness compares these against predictions
   made from software-collected traces.

   Deliberately, nothing in this module knows about tracing: address traces
   are generated purely by instrumented code running on the machine. *)

open Systrace_isa
open Uop

exception Halted

(* R3000 exception codes. *)
module Exc = struct
  let interrupt = 0
  let tlb_mod = 1
  let tlbl = 2
  let tlbs = 3
  let adel = 4
  let ades = 5
  let syscall = 8
  let breakpoint = 9
  let reserved = 10
end

exception Trap of { code : int; badva : int; refill : bool }

let trap ?(badva = -1) ?(refill = false) code =
  raise (Trap { code; badva; refill })

type config = {
  mem_bytes : int;
  icache_bytes : int;
  icache_line : int;
  dcache_bytes : int;
  dcache_line : int;
  read_miss_penalty : int;     (* cycles per cached read miss *)
  uncached_penalty : int;      (* cycles per uncached access *)
  wb_depth : int;
  wb_drain : int;
  disk_blocks : int;
  disk_seek : int;
  disk_per_block : int;
  count_exec : bool;           (* per-instruction-word execution counts *)
  tier : Uop.tier;    (* interpreter tier: step|tcache|bcache|super|trace *)
  trace_len : int;    (* max blocks stitched into one trace superblock *)
}

let default_config =
  {
    mem_bytes = 16 * 1024 * 1024;
    icache_bytes = 16384;
    icache_line = 16;
    dcache_bytes = 16384;
    dcache_line = 4;
    read_miss_penalty = 15;
    uncached_penalty = 15;
    wb_depth = 4;
    wb_drain = 6;
    disk_blocks = 2048;
    disk_seek = 20000;
    disk_per_block = 4000;
    count_exec = false;
    tier = Uop.Super;
    trace_len = 8;
  }

type counters = {
  mutable instructions : int;
  mutable user_instructions : int;
  mutable kernel_instructions : int;
  mutable idle_instructions : int;
  mutable uncached_ifetches : int;
  mutable uncached_reads : int;
  mutable utlb_misses : int;          (* refill misses on kuseg *)
  mutable ktlb_misses : int;          (* refill misses on kseg2 *)
  mutable tlb_invalid : int;
  mutable tlb_mod : int;
  mutable exceptions : int;
  mutable interrupts : int;
  mutable syscalls : int;
  mutable clock_ticks : int;
}

let fresh_counters () =
  {
    instructions = 0;
    user_instructions = 0;
    kernel_instructions = 0;
    idle_instructions = 0;
    uncached_ifetches = 0;
    uncached_reads = 0;
    utlb_misses = 0;
    ktlb_misses = 0;
    tlb_invalid = 0;
    tlb_mod = 0;
    exceptions = 0;
    interrupts = 0;
    syscalls = 0;
    clock_ticks = 0;
  }

(* Last-translation micro-cache: one (vpn -> page frame) entry per access
   class (fetch / load / store), the way the R3000 pipeline held the last
   TLB match.  Only successful translations are cached, so the exception
   and counter behaviour of the full walk is preserved exactly; the cache
   is flushed on every event that can change a translation (TLB writes,
   CP0 status/mode changes, ASID/context updates). *)
type tcache = {
  mutable f_vpn : int;  mutable f_frame : int;  mutable f_cached : bool;
  mutable r_vpn : int;  mutable r_frame : int;  mutable r_cached : bool;
  mutable w_vpn : int;  mutable w_frame : int;  mutable w_cached : bool;
}

(* The uop IR and block representation live in {!Uop} (opened above):
   decode-to-uop lowering, superblock fusion, and the store-generation
   invalidation contract are owned there; this module owns the
   architectural state and the replay loop. *)

(* Direct-mapped block table: 16K slots of one word each.  Indexed by the
   physical word address of the block entry; collisions just evict. *)
let bcache_slots = 1 lsl 14

type t = {
  cfg : config;
  mem : Bytes.t;
  (* Decoded-instruction cache: one slot per physical word, invalidated on
     stores. *)
  dec : Insn.t array;
  dec_valid : Bytes.t;
  (* Basic-block execution cache (Bcache and Super tiers): direct-mapped
     block table plus the per-physical-page store generations whose
     invalidation contract {!Uop.Gens} owns — every physical write
     (stores, DMA, host pokes) bumps the written page's generation, and
     a block is valid only while its text page's generation matches,
     which is what makes self-modifying and newly-loaded code safe.  TLB
     remaps and mode switches need no explicit flush: every block entry
     re-runs the fetch translation and the block is keyed on its
     (pa, va, cached) result. *)
  bcache_tab : Uop.block array;
  bgen : Uop.Gens.t;
  regs : int array;              (* 32-bit values as 0..2^32-1 *)
  fregs : float array;
  mutable fcc : bool;
  mutable pc : int;
  mutable npc : int;
  mutable next_is_delay : bool;
  (* CP0 *)
  mutable status : int;
  mutable cause : int;
  mutable epc : int;
  mutable badvaddr : int;
  mutable entryhi : int;
  mutable entrylo : int;
  mutable index_reg : int;
  mutable context_base : int;    (* PTEBase, bits 21.. *)
  mutable context_badvpn : int;
  tlb : Tlb.t;
  tc : tcache;
  (* Cacheability of the last [translate_i] result — a scratch return
     slot, so the hot translation path hands back (pa, cached) without
     allocating a tuple per access. *)
  mutable tr_cached : bool;
  (* Index of the uop currently replaying inside [exec_block] — written
     by every uop that can trap, so the block-level trap handler can
     recover the faulting pc and delay-slot flag instead of pushing an
     exception handler per instruction. *)
  mutable bb_k : int;
  (* The block currently replaying (valid together with [bb_k]): replay
     chains across blocks without returning, so the trap handler cannot
     rely on the block [exec_block] was entered with. *)
  mutable bb_blk : Uop.block;
  (* Set by [store_timed] when a store reached a device register (or a
     watchpoint fired): tells [exec_block] the interrupt lines and event
     horizon may have moved, so the post-store recheck must poll.  Plain
     RAM stores leave it clear and only re-validate the text page. *)
  mutable bb_dev : bool;
  (* Instruction-count batching for block replay: uops [bb_kf, k) of
     [bb_blk] have executed in mode [bb_um] but are not yet reflected in
     the counters.  Flushed ([bb_flush]) whenever the counters become
     observable: block exit, slow recheck paths, [U_other] entry, and
     the trap handler. *)
  mutable bb_kf : int;
  mutable bb_um : bool;
  (* True while a trace-superblock pass is replaying: icache fetch hits
     are batched (the up-front residency check guarantees every fetch in
     the pass hits), so flush points — including the trap handler — must
     credit [k - bb_kf] hits alongside the instruction counters. *)
  mutable bb_trc : bool;
  (* Per-pass trace-dispatch state, stashed in fields rather than threaded
     through the hot loop: [bb_tr]/[bb_tbi] are the running trace and the
     index of the block replaying, [bb_tbudget]/[bb_tnext] the budget and
     event horizon captured at pass entry.  Only read at seams, stores and
     exits, so the per-slot loop keeps every live value in a register. *)
  mutable bb_tr : Uop.trace;
  mutable bb_tbi : int;
  mutable bb_tbudget : int;
  mutable bb_tnext : int;
  mutable bb_tacc : int;
  icache : Cache.t;
  dcache : Cache.t;
  wb : Write_buffer.t;
  fpu : Fpu.t;
  disk : Disk.t;
  mutable clock_interval : int;  (* 0 = disabled *)
  mutable next_clock : int;
  mutable ip : int;              (* pending interrupt lines, bit positions *)
  mutable cycles : int;
  mutable halted : bool;
  console : Buffer.t;
  c : counters;
  mutable idle_lo : int;         (* kernel idle-loop pc range, for ground *)
  mutable idle_hi : int;         (* truth idle instruction counting *)
  mutable hcall_handler : (t -> int -> unit) option;
  exec_counts : int array;       (* per physical word; empty if disabled *)
  (* Set by the harness to observe stores (used by tests). *)
  mutable watchpoint : (int -> int -> unit) option;
  (* Reference tracer: called with (kind, virtual address) for every
     instruction fetch (0), load (1) and store (2).  This is the
     "independently developed CPU simulator" trace the paper validates
     epoxie against (§4.3). *)
  mutable ref_tracer : (int -> int -> unit) option;
}

let create ?(cfg = default_config) () =
  let words = cfg.mem_bytes / 4 in
  {
    cfg;
    mem = Bytes.make cfg.mem_bytes '\000';
    dec = Array.make words Insn.nop;
    dec_valid = Bytes.make words '\000';
    bcache_tab =
      (if Uop.bcache_enabled cfg.tier then
         Array.make bcache_slots Uop.dummy_block
       else [||]);
    bgen = Uop.Gens.create ~mem_bytes:cfg.mem_bytes;
    regs = Array.make 32 0;
    fregs = Array.make Reg.nfregs 0.0;
    fcc = false;
    pc = 0;
    npc = 4;
    next_is_delay = false;
    status = 0;
    cause = 0;
    epc = 0;
    badvaddr = 0;
    entryhi = 0;
    entrylo = 0;
    index_reg = 0;
    context_base = 0;
    context_badvpn = 0;
    tlb =
      (let tlb = Tlb.create () in
       Tlb.reset tlb;
       tlb);
    tc =
      {
        f_vpn = -1; f_frame = 0; f_cached = false;
        r_vpn = -1; r_frame = 0; r_cached = false;
        w_vpn = -1; w_frame = 0; w_cached = false;
      };
    tr_cached = false;
    bb_k = 0;
    bb_blk = Uop.dummy_block;
    bb_dev = false;
    bb_kf = 0;
    bb_um = false;
    bb_trc = false;
    bb_tr = Uop.dummy_trace;
    bb_tbi = 0;
    bb_tbudget = 0;
    bb_tnext = 0;
    bb_tacc = 0;
    icache = Cache.create ~size_bytes:cfg.icache_bytes ~line_bytes:cfg.icache_line;
    dcache = Cache.create ~size_bytes:cfg.dcache_bytes ~line_bytes:cfg.dcache_line;
    wb = Write_buffer.create ~depth:cfg.wb_depth ~drain_cycles:cfg.wb_drain ();
    fpu = Fpu.create ();
    disk =
      Disk.create ~blocks:cfg.disk_blocks ~seek_cycles:cfg.disk_seek
        ~per_block_cycles:cfg.disk_per_block ();
    clock_interval = 0;
    next_clock = max_int;
    ip = 0;
    cycles = 0;
    halted = false;
    console = Buffer.create 256;
    c = fresh_counters ();
    idle_lo = 0;
    idle_hi = 0;
    hcall_handler = None;
    exec_counts = (if cfg.count_exec then Array.make words 0 else [||]);
    watchpoint = None;
    ref_tracer = None;
  }

let ref_trace t kind addr =
  match t.ref_tracer with Some f -> f kind addr | None -> ()

let user_mode t = t.status land 0x2 <> 0
let asid t = (t.entryhi lsr 6) land 0x3F

(* ------------------------------------------------------------------ *)
(* Raw physical memory access (host-side too)                          *)

let phys_ok t pa len = pa >= 0 && pa + len <= t.cfg.mem_bytes

(* Every physical write advances the page's store generation
   ({!Uop.Gens} owns the contract), which invalidates any cached basic
   block decoded from that page (bounds checked: callers validate [pa]
   against memory the same way the Bytes accesses do). *)
let bgen_bump t pa =
  let p = pa lsr Addr.page_shift in
  let g = t.bgen in
  Array.unsafe_set g p (Array.unsafe_get g p + 1)
let bgen_bump_range t pa len = Uop.Gens.bump_range t.bgen pa len

let read_phys_u32 t pa =
  Int32.to_int (Bytes.get_int32_le t.mem pa) land 0xFFFFFFFF

let write_phys_u32 t pa v =
  Bytes.set_int32_le t.mem pa (Int32.of_int (v land 0xFFFFFFFF));
  Bytes.set t.dec_valid (pa lsr 2) '\000';
  bgen_bump t pa

let read_phys_u16 t pa = Bytes.get_uint16_le t.mem pa
let read_phys_u8 t pa = Bytes.get_uint8 t.mem pa

let write_phys_u16 t pa v =
  Bytes.set_uint16_le t.mem pa (v land 0xFFFF);
  Bytes.set t.dec_valid (pa lsr 2) '\000';
  bgen_bump t pa

let write_phys_u8 t pa v =
  Bytes.set_uint8 t.mem pa (v land 0xFF);
  Bytes.set t.dec_valid (pa lsr 2) '\000';
  bgen_bump t pa

let write_phys_bytes t pa s =
  Bytes.blit_string s 0 t.mem pa (String.length s);
  for w = pa lsr 2 to (pa + String.length s - 1) lsr 2 do
    Bytes.set t.dec_valid w '\000'
  done;
  bgen_bump_range t pa (String.length s)

let read_phys_bytes t pa len = Bytes.sub_string t.mem pa len

(* ------------------------------------------------------------------ *)
(* Address translation                                                 *)

(* Full translation walk: segment checks plus TLB lookup.  Returns
   (pa, cached); raises [Trap] on failure.  This is the micro-cache-free
   oracle the fast [translate] below must agree with. *)
let translate_walk t va ~write:w ~fetch =
  match Addr.segment va with
  | Addr.Kseg0 ->
    if user_mode t then
      trap ~badva:va (if w then Exc.ades else Exc.adel)
    else (Addr.kseg0_pa va, true)
  | Addr.Kseg1 ->
    if user_mode t then
      trap ~badva:va (if w then Exc.ades else Exc.adel)
    else (Addr.kseg1_pa va, false)
  | Addr.Kuseg | Addr.Kseg2 -> (
    if Addr.segment va = Addr.Kseg2 && user_mode t then
      trap ~badva:va (if w then Exc.ades else Exc.adel);
    let vpn = Addr.vpn va in
    match Tlb.lookup t.tlb ~vpn ~asid:(asid t) ~write:w with
    | Tlb.Hit { pfn; noncacheable; _ } ->
      ((pfn lsl Addr.page_shift) lor Addr.page_offset va, not noncacheable)
    | Tlb.Miss ->
      if va < Addr.kuseg_limit then t.c.utlb_misses <- t.c.utlb_misses + 1
      else t.c.ktlb_misses <- t.c.ktlb_misses + 1;
      ignore fetch;
      trap ~badva:va ~refill:true (if w then Exc.tlbs else Exc.tlbl)
    | Tlb.Invalid ->
      t.c.tlb_invalid <- t.c.tlb_invalid + 1;
      trap ~badva:va (if w then Exc.tlbs else Exc.tlbl)
    | Tlb.Modified ->
      t.c.tlb_mod <- t.c.tlb_mod + 1;
      trap ~badva:va Exc.tlb_mod)

let tcache_flush t =
  let tc = t.tc in
  tc.f_vpn <- -1;
  tc.r_vpn <- -1;
  tc.w_vpn <- -1

(* Translation with the last-translation micro-cache in front of the full
   walk: the common in-page access reuses the previous page frame without
   re-checking segment permissions or walking the TLB.  Failed walks trap
   before the cache is filled, so misses, invalid entries and modified
   faults behave (and count) exactly as in [translate_walk].

   [translate_i] returns the physical address and leaves cacheability in
   [t.tr_cached] — the hot paths (fetch, load, store, block entry) read
   it from there, so a translation costs no tuple allocation.  The tuple
   API [translate] is a thin wrapper kept for the oracle comparisons and
   external callers. *)
let translate_i t va ~write:w ~fetch =
  let tc = t.tc in
  let vpn = va lsr Addr.page_shift in
  if fetch && vpn = tc.f_vpn then begin
    t.tr_cached <- tc.f_cached;
    tc.f_frame lor (va land Addr.page_mask)
  end
  else if (not fetch) && (not w) && vpn = tc.r_vpn then begin
    t.tr_cached <- tc.r_cached;
    tc.r_frame lor (va land Addr.page_mask)
  end
  else if (not fetch) && w && vpn = tc.w_vpn then begin
    t.tr_cached <- tc.w_cached;
    tc.w_frame lor (va land Addr.page_mask)
  end
  else begin
    let pa, cached = translate_walk t va ~write:w ~fetch in
    if Uop.tcache_enabled t.cfg.tier then begin
      let frame = pa land lnot Addr.page_mask in
      if fetch then begin
        tc.f_vpn <- vpn; tc.f_frame <- frame; tc.f_cached <- cached
      end
      else if w then begin
        tc.w_vpn <- vpn; tc.w_frame <- frame; tc.w_cached <- cached
      end
      else begin
        tc.r_vpn <- vpn; tc.r_frame <- frame; tc.r_cached <- cached
      end
    end;
    t.tr_cached <- cached;
    pa
  end

let translate t va ~write ~fetch =
  let pa = translate_i t va ~write ~fetch in
  (pa, t.tr_cached)

(* ------------------------------------------------------------------ *)
(* Devices                                                             *)

let raise_irq t line = t.ip <- t.ip lor (1 lsl line)
let clear_irq t line = t.ip <- t.ip land lnot (1 lsl line)

let disk_refresh_irq t =
  if Disk.has_done t.disk then raise_irq t Addr.irq_disk
  else clear_irq t Addr.irq_disk

let poll_devices t =
  if t.cycles >= t.next_clock then begin
    t.c.clock_ticks <- t.c.clock_ticks + 1;
    raise_irq t Addr.irq_clock;
    t.next_clock <-
      (if t.clock_interval > 0 then t.cycles + t.clock_interval else max_int)
  end;
  if Disk.next_event t.disk <= t.cycles then begin
    let n =
      Disk.poll t.disk ~now:t.cycles ~mem:t.mem ~on_dma:(fun ~paddr ~len ->
          (* DMA'd memory may hold instructions: invalidate the decode
             cache and the basic blocks built over it. *)
          for w = paddr lsr 2 to (paddr + len - 1) lsr 2 do
            Bytes.set t.dec_valid w '\000'
          done;
          bgen_bump_range t paddr len)
    in
    if n > 0 then disk_refresh_irq t
  end

let device_read t pa =
  let off = pa - Addr.device_base_pa in
  if off = Addr.dev_clock_interval then t.clock_interval
  else if off = Addr.dev_disk_status then (if Disk.busy t.disk then 1 else 0)
  else if off = Addr.dev_disk_done_block then Disk.done_block t.disk land 0xFFFFFFFF
  else if off = Addr.dev_cycle_lo then t.cycles land 0xFFFFFFFF
  else if off = Addr.dev_cycle_hi then (t.cycles lsr 32) land 0xFFFFFFFF
  else 0

let device_write t pa v =
  let off = pa - Addr.device_base_pa in
  if off = Addr.dev_console_tx then Buffer.add_char t.console (Char.chr (v land 0xFF))
  else if off = Addr.dev_clock_interval then begin
    t.clock_interval <- v;
    t.next_clock <- (if v > 0 then t.cycles + v else max_int)
  end
  else if off = Addr.dev_clock_ack then clear_irq t Addr.irq_clock
  else if off = Addr.dev_disk_block then t.disk.Disk.reg_block <- v
  else if off = Addr.dev_disk_addr then t.disk.Disk.reg_addr <- v
  else if off = Addr.dev_disk_count then t.disk.Disk.reg_count <- v
  else if off = Addr.dev_disk_cmd then
    ignore (Disk.submit t.disk ~now:t.cycles ~is_write:(v = 2))
  else if off = Addr.dev_disk_ack then begin
    Disk.ack t.disk;
    disk_refresh_irq t
  end

let is_device_pa pa =
  pa >= Addr.device_base_pa && pa < Addr.device_base_pa + Addr.dev_limit

(* ------------------------------------------------------------------ *)
(* Timed memory access                                                 *)

let load_word_timed t va =
  if va land 3 <> 0 then trap ~badva:va Exc.adel;
  let pa = translate_i t va ~write:false ~fetch:false in
  let cached = t.tr_cached in
  if is_device_pa pa then begin
    t.cycles <- t.cycles + t.cfg.uncached_penalty;
    t.c.uncached_reads <- t.c.uncached_reads + 1;
    device_read t pa
  end
  else begin
    if not (phys_ok t pa 4) then trap ~badva:va Exc.adel;
    if cached then begin
      if not (Cache.read t.dcache pa) then
        t.cycles <- t.cycles + t.cfg.read_miss_penalty
    end
    else begin
      t.c.uncached_reads <- t.c.uncached_reads + 1;
      t.cycles <- t.cycles + t.cfg.uncached_penalty
    end;
    read_phys_u32 t pa
  end

let load_timed t va bytes =
  match bytes with
  | 4 -> load_word_timed t va
  | 2 ->
    if va land 1 <> 0 then trap ~badva:va Exc.adel;
    let pa = translate_i t va ~write:false ~fetch:false in
    let cached = t.tr_cached in
    if not (phys_ok t pa 2) then trap ~badva:va Exc.adel;
    if cached then begin
      if not (Cache.read t.dcache pa) then
        t.cycles <- t.cycles + t.cfg.read_miss_penalty
    end
    else begin
      t.c.uncached_reads <- t.c.uncached_reads + 1;
      t.cycles <- t.cycles + t.cfg.uncached_penalty
    end;
    read_phys_u16 t pa
  | 1 ->
    let pa = translate_i t va ~write:false ~fetch:false in
    let cached = t.tr_cached in
    if not (phys_ok t pa 1) then trap ~badva:va Exc.adel;
    if cached then begin
      if not (Cache.read t.dcache pa) then
        t.cycles <- t.cycles + t.cfg.read_miss_penalty
    end
    else begin
      t.c.uncached_reads <- t.c.uncached_reads + 1;
      t.cycles <- t.cycles + t.cfg.uncached_penalty
    end;
    read_phys_u8 t pa
  | _ -> assert false

let store_timed t va bytes v =
  (match bytes with
  | 4 -> if va land 3 <> 0 then trap ~badva:va Exc.ades
  | 2 -> if va land 1 <> 0 then trap ~badva:va Exc.ades
  | _ -> ());
  let pa = translate_i t va ~write:true ~fetch:false in
  let cached = t.tr_cached in
  if is_device_pa pa then begin
    t.bb_dev <- true;
    t.cycles <- t.cycles + t.cfg.uncached_penalty;
    device_write t pa v
  end
  else begin
    if not (phys_ok t pa bytes) then trap ~badva:va Exc.ades;
    if cached then ignore (Cache.write t.dcache pa);
    t.cycles <- t.cycles + Write_buffer.store t.wb ~now:t.cycles;
    (match bytes with
    | 4 -> write_phys_u32 t pa v
    | 2 -> write_phys_u16 t pa v
    | 1 -> write_phys_u8 t pa v
    | _ -> assert false);
    match t.watchpoint with
    | Some f ->
      t.bb_dev <- true;
      f va v
    | None -> ()
  end

let load_double_timed t va =
  if va land 7 <> 0 then trap ~badva:va Exc.adel;
  let pa = translate_i t va ~write:false ~fetch:false in
  let cached = t.tr_cached in
  if not (phys_ok t pa 8) then trap ~badva:va Exc.adel;
  if cached then begin
    if not (Cache.read t.dcache pa) then
      t.cycles <- t.cycles + t.cfg.read_miss_penalty
  end
  else begin
    t.c.uncached_reads <- t.c.uncached_reads + 1;
    t.cycles <- t.cycles + t.cfg.uncached_penalty
  end;
  Int64.float_of_bits (Bytes.get_int64_le t.mem pa)

let store_double_timed t va f =
  if va land 7 <> 0 then trap ~badva:va Exc.ades;
  let pa = translate_i t va ~write:true ~fetch:false in
  let cached = t.tr_cached in
  if not (phys_ok t pa 8) then trap ~badva:va Exc.ades;
  if cached then ignore (Cache.write t.dcache pa);
  (* A double store occupies two write-buffer slots. *)
  t.cycles <- t.cycles + Write_buffer.store t.wb ~now:t.cycles;
  t.cycles <- t.cycles + Write_buffer.store t.wb ~now:t.cycles;
  Bytes.set_int64_le t.mem pa (Int64.bits_of_float f);
  Bytes.set t.dec_valid (pa lsr 2) '\000';
  Bytes.set t.dec_valid ((pa lsr 2) + 1) '\000';
  (* 8-byte aligned, so both words share one page *)
  bgen_bump t pa

(* Instruction fetch with decode caching. *)
let fetch_timed t va =
  if va land 3 <> 0 then trap ~badva:va Exc.adel;
  let pa = translate_i t va ~write:false ~fetch:true in
  let cached = t.tr_cached in
  if not (phys_ok t pa 4) then trap ~badva:va Exc.adel;
  if cached then begin
    if not (Cache.read t.icache pa) then
      t.cycles <- t.cycles + t.cfg.read_miss_penalty
  end
  else begin
    t.c.uncached_ifetches <- t.c.uncached_ifetches + 1;
    t.cycles <- t.cycles + t.cfg.uncached_penalty
  end;
  let w = pa lsr 2 in
  if Bytes.get t.dec_valid w = '\001' then t.dec.(w)
  else begin
    let insn = Encode.decode ~pc:va (read_phys_u32 t pa) in
    t.dec.(w) <- insn;
    Bytes.set t.dec_valid w '\001';
    insn
  end

(* ------------------------------------------------------------------ *)
(* 32-bit arithmetic helpers                                           *)

let u32 v = v land 0xFFFFFFFF
let s32 v = let v = u32 v in if v >= 0x80000000 then v - 0x100000000 else v

(* ------------------------------------------------------------------ *)
(* Exception entry                                                     *)

let enter_exception t ~code ~badva ~refill ~cur ~in_delay =
  t.c.exceptions <- t.c.exceptions + 1;
  if code = Exc.interrupt then t.c.interrupts <- t.c.interrupts + 1;
  if code = Exc.syscall then t.c.syscalls <- t.c.syscalls + 1;
  t.epc <- (if in_delay then cur - 4 else cur);
  t.cause <-
    (code lsl 2)
    lor (if in_delay then 0x80000000 else 0)
    lor (t.ip lsl 8 land 0xFF00);
  if badva >= 0 then begin
    t.badvaddr <- badva;
    if code = Exc.tlbl || code = Exc.tlbs || code = Exc.tlb_mod then begin
      t.entryhi <-
        Tlb.make_entryhi ~vpn:(Addr.vpn badva) ~asid:(asid t);
      t.context_badvpn <- Addr.vpn badva
    end
  end;
  (* Push the KU/IE stack: old <- prev <- current <- (kernel, disabled). *)
  t.status <- (t.status land lnot 0x3F) lor ((t.status lsl 2) land 0x3C);
  let vector =
    if refill && badva >= 0 && badva < Addr.kuseg_limit then Addr.utlb_vector
    else Addr.general_vector
  in
  t.pc <- vector;
  t.npc <- vector + 4;
  t.next_is_delay <- false;
  (* Status and EntryHi both changed above. *)
  tcache_flush t

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)

(* Register numbers come from 5-bit decode fields (or [Reg] constants),
   so they are always in [0, 31]. *)
let reg_get t r = Array.unsafe_get t.regs r
let reg_set t r v = if r <> 0 then Array.unsafe_set t.regs r (u32 v)

let exec_alu t op rd rs rt =
  let a = reg_get t rs and b = reg_get t rt in
  let v =
    match (op : Insn.alu) with
    | ADD | ADDU -> a + b
    | SUB | SUBU -> a - b
    | AND -> a land b
    | OR -> a lor b
    | XOR -> a lxor b
    | NOR -> lnot (a lor b)
    | SLT -> if s32 a < s32 b then 1 else 0
    | SLTU -> if a < b then 1 else 0
    | SLLV -> a lsl (b land 31)
    | SRLV -> a lsr (b land 31)
    | SRAV -> s32 a asr (b land 31)
    | MUL -> s32 a * s32 b
    | MULH ->
      Int64.to_int
        (Int64.shift_right
           (Int64.mul (Int64.of_int (s32 a)) (Int64.of_int (s32 b)))
           32)
    | DIV -> if s32 b = 0 then 0 else s32 a / s32 b
    | REM -> if s32 b = 0 then 0 else Stdlib.Int.rem (s32 a) (s32 b)
  in
  reg_set t rd v

let exec_alui t op rt rs imm =
  let a = reg_get t rs in
  let v =
    match (op : Insn.alui) with
    | ADDI | ADDIU -> a + imm
    | SLTI -> if s32 a < imm then 1 else 0
    | SLTIU -> if a < u32 imm then 1 else 0
    | ANDI -> a land imm
    | ORI -> a lor imm
    | XORI -> a lxor imm
  in
  reg_set t rt v

let cp0_read t (c : Insn.cp0) =
  match c with
  | C0_index -> t.index_reg
  | C0_random -> Tlb.random_index ~cycle:t.cycles lsl 8
  | C0_entrylo -> t.entrylo
  | C0_context ->
    (t.context_base land 0xFFE00000) lor ((t.context_badvpn lsl 2) land 0x1FFFFC)
  | C0_badvaddr -> t.badvaddr
  | C0_count -> t.cycles land 0xFFFFFFFF
  | C0_entryhi -> t.entryhi
  | C0_status -> t.status
  | C0_cause -> (t.cause land lnot 0xFF00) lor ((t.ip lsl 8) land 0xFF00)
  | C0_epc -> t.epc
  | C0_prid -> 0x0230 (* R3000-ish *)

let cp0_write t (c : Insn.cp0) v =
  match c with
  | C0_index -> t.index_reg <- v land 0x3F00
  | C0_random -> ()
  | C0_entrylo -> t.entrylo <- v
  | C0_context ->
    t.context_base <- v land 0xFFE00000;
    tcache_flush t
  | C0_badvaddr -> ()
  | C0_count -> ()
  | C0_entryhi ->
    (* ASID lives here: a change retargets every mapped translation. *)
    t.entryhi <- v;
    tcache_flush t
  | C0_status ->
    (* KU/IE bits gate segment permissions. *)
    t.status <- v;
    tcache_flush t
  | C0_cause -> t.cause <- v
  | C0_epc -> t.epc <- v
  | C0_prid -> ()

let privileged t =
  if user_mode t then trap Exc.reserved

let exec t cur insn =
  let target = function
    | Insn.Abs a -> a
    | Insn.Sym s -> failwith ("unresolved symbol at runtime: " ^ s)
  in
  let imm_value = function
    | Insn.Imm n -> n
    | Insn.Lo s | Insn.Hi s ->
      failwith ("unresolved immediate at runtime: " ^ s)
  in
  let branch cond tgt =
    t.next_is_delay <- true;
    if cond then t.npc <- target tgt
  in
  match (insn : Insn.t) with
  | Alu (op, rd, rs, rt) -> exec_alu t op rd rs rt
  | Alui (op, rt, rs, imm) -> exec_alui t op rt rs (imm_value imm)
  | Shift (op, rd, rt, sa) ->
    let v = reg_get t rt in
    reg_set t rd
      (match op with
      | SLL -> v lsl sa
      | SRL -> v lsr sa
      | SRA -> s32 v asr sa)
  | Lui (rt, imm) -> reg_set t rt (imm_value imm lsl 16)
  | Load (w, rt, base, off) ->
    let va = u32 (reg_get t base + imm_value off) in
    let v =
      match w with
      | W -> load_timed t va 4
      | H ->
        let v = load_timed t va 2 in
        if v >= 0x8000 then v - 0x10000 else v
      | HU -> load_timed t va 2
      | B ->
        let v = load_timed t va 1 in
        if v >= 0x80 then v - 0x100 else v
      | BU -> load_timed t va 1
    in
    ref_trace t 1 va;
    reg_set t rt v
  | Store (w, rt, base, off) ->
    let va = u32 (reg_get t base + imm_value off) in
    let bytes = match w with W -> 4 | H | HU -> 2 | B | BU -> 1 in
    store_timed t va bytes (reg_get t rt);
    ref_trace t 2 va
  | Fload (ft, base, off) ->
    let va = u32 (reg_get t base + imm_value off) in
    let v = load_double_timed t va in
    ref_trace t 1 va;
    t.fregs.(ft) <- v;
    Fpu.set_ready t.fpu ~now:t.cycles ft
  | Fstore (ft, base, off) ->
    let va = u32 (reg_get t base + imm_value off) in
    t.cycles <- t.cycles + Fpu.wait_regs t.fpu ~now:t.cycles [ ft ];
    store_double_timed t va t.fregs.(ft);
    ref_trace t 2 va
  | Beq (rs, rt, tg) -> branch (reg_get t rs = reg_get t rt) tg
  | Bne (rs, rt, tg) -> branch (reg_get t rs <> reg_get t rt) tg
  | Blez (rs, tg) -> branch (s32 (reg_get t rs) <= 0) tg
  | Bgtz (rs, tg) -> branch (s32 (reg_get t rs) > 0) tg
  | Bltz (rs, tg) -> branch (s32 (reg_get t rs) < 0) tg
  | Bgez (rs, tg) -> branch (s32 (reg_get t rs) >= 0) tg
  | J tg -> branch true tg
  | Jal tg ->
    reg_set t Reg.ra (cur + 8);
    branch true tg
  | Jr rs ->
    t.next_is_delay <- true;
    t.npc <- reg_get t rs
  | Jalr (rd, rs) ->
    let dest = reg_get t rs in
    reg_set t rd (cur + 8);
    t.next_is_delay <- true;
    t.npc <- dest
  | Syscall -> trap Exc.syscall
  | Break _ -> trap Exc.breakpoint
  | Mfc0 (rt, c) ->
    privileged t;
    reg_set t rt (cp0_read t c)
  | Mtc0 (rt, c) ->
    privileged t;
    cp0_write t c (reg_get t rt)
  | Tlbr ->
    privileged t;
    let hi, lo = Tlb.read t.tlb ((t.index_reg lsr 8) land 0x3F) in
    t.entryhi <- hi;
    t.entrylo <- lo
  | Tlbwi ->
    privileged t;
    Tlb.write t.tlb ((t.index_reg lsr 8) land 0x3F) ~hi:t.entryhi ~lo:t.entrylo;
    tcache_flush t
  | Tlbwr ->
    privileged t;
    Tlb.write t.tlb (Tlb.random_index ~cycle:t.cycles) ~hi:t.entryhi
      ~lo:t.entrylo;
    tcache_flush t
  | Tlbp ->
    privileged t;
    (match
       Tlb.probe t.tlb ~vpn:(t.entryhi lsr 12) ~asid:((t.entryhi lsr 6) land 0x3F)
     with
    | Some k -> t.index_reg <- k lsl 8
    | None -> t.index_reg <- 0x80000000)
  | Rfe ->
    privileged t;
    t.status <- (t.status land lnot 0xF) lor ((t.status lsr 2) land 0xF);
    tcache_flush t
  | Mfc1 (rt, fs) ->
    t.cycles <- t.cycles + Fpu.wait_regs t.fpu ~now:t.cycles [ fs ];
    reg_set t rt (int_of_float t.fregs.(fs))
  | Mtc1 (rt, fs) ->
    t.fregs.(fs) <- float_of_int (s32 (reg_get t rt));
    Fpu.set_ready t.fpu ~now:t.cycles fs
  | Fop (op, fd, fs, ft) ->
    let srcs = match op with FADD | FSUB | FMUL | FDIV -> [ fs; ft ] | _ -> [ fs ] in
    t.cycles <- t.cycles + Fpu.wait_regs t.fpu ~now:t.cycles srcs;
    t.cycles <- t.cycles + Fpu.issue t.fpu ~now:t.cycles ~op ~dst:fd;
    let a = t.fregs.(fs) and b = t.fregs.(ft) in
    t.fregs.(fd) <-
      (match op with
      | FADD -> a +. b
      | FSUB -> a -. b
      | FMUL -> a *. b
      | FDIV -> a /. b
      | FABS -> abs_float a
      | FNEG -> -.a
      | FMOV -> a
      | CVTDW -> a
      | TRUNCWD -> Float.of_int (int_of_float a))
  | Fcmp (c, fs, ft) ->
    t.cycles <- t.cycles + Fpu.wait_regs t.fpu ~now:t.cycles [ fs; ft ];
    t.cycles <- t.cycles + Fpu.issue_compare t.fpu ~now:t.cycles;
    let a = t.fregs.(fs) and b = t.fregs.(ft) in
    t.fcc <- (match c with FEQ -> a = b | FLT -> a < b | FLE -> a <= b)
  | Bc1t tg -> branch t.fcc tg
  | Bc1f tg -> branch (not t.fcc) tg
  | Cache (op, base, off) ->
    privileged t;
    let va = u32 (reg_get t base + imm_value off) in
    let pa, _ = translate t va ~write:false ~fetch:false in
    if op = 0 then Cache.invalidate t.icache pa
    else Cache.invalidate t.dcache pa
  | Hcall code -> (
    privileged t;
    match t.hcall_handler with
    | Some f -> f t code
    | None -> failwith (Printf.sprintf "hcall %d with no handler" code))

(* ------------------------------------------------------------------ *)
(* Stepping                                                            *)

let interrupt_pending t =
  t.status land 1 <> 0 && t.ip land ((t.status lsr 8) land 0xFF) <> 0

let step t =
  if t.halted then raise Halted;
  poll_devices t;
  if (not t.next_is_delay) && interrupt_pending t then
    enter_exception t ~code:Exc.interrupt ~badva:(-1) ~refill:false ~cur:t.pc
      ~in_delay:false
  else begin
    let cur = t.pc in
    let in_delay = t.next_is_delay in
    match fetch_timed t cur with
    | insn ->
      ref_trace t 0 cur;
      t.next_is_delay <- false;
      t.pc <- t.npc;
      t.npc <- t.npc + 4;
      (try
         exec t cur insn;
         t.cycles <- t.cycles + 1;
         t.c.instructions <- t.c.instructions + 1;
         if user_mode t then
           t.c.user_instructions <- t.c.user_instructions + 1
         else begin
           t.c.kernel_instructions <- t.c.kernel_instructions + 1;
           if cur >= t.idle_lo && cur < t.idle_hi then
             t.c.idle_instructions <- t.c.idle_instructions + 1
         end;
         if t.cfg.count_exec then begin
           (* Count by physical word so kernel and user text both work. *)
           match translate_i t cur ~write:false ~fetch:true with
           | pa when pa lsr 2 < Array.length t.exec_counts ->
             t.exec_counts.(pa lsr 2) <- t.exec_counts.(pa lsr 2) + 1
           | _ -> ()
           | exception Trap _ -> ()
         end
       with Trap { code; badva; refill } ->
         (* The faulting instruction consumed a cycle. *)
         t.cycles <- t.cycles + 1;
         enter_exception t ~code ~badva ~refill ~cur ~in_delay)
    | exception Trap { code; badva; refill } ->
      t.cycles <- t.cycles + 1;
      enter_exception t ~code ~badva ~refill ~cur ~in_delay
  end

(* ------------------------------------------------------------------ *)
(* Basic-block execution cache (the Bcache and Super tiers)            *)

(* The block executor must be state-identical to [step] — [step] stays in
   as the qcheck oracle — so everything observable is kept per
   instruction: device polling, interrupt sampling, icache fetch timing,
   the reference-tracer callbacks, cycle/instruction counters (several
   device and stall models consult [t.cycles] mid-block), and trap entry.
   What a block amortises is only the work with no observable effect:
   the per-fetch alignment check, translation, bounds check, decode-cache
   probe, and the interpreter's per-[exec] closure allocations. *)

(* Decode one word through the same per-word cache [fetch_timed] uses —
   the shared cache is what keeps block-mode and step-mode byte-identical
   even in the aliased-mapping corner where a cached entry was decoded at
   a different va. *)
let bb_decode t ~va ~pa =
  let w = pa lsr 2 in
  if Bytes.get t.dec_valid w = '\001' then t.dec.(w)
  else begin
    let insn = Encode.decode ~pc:va (read_phys_u32 t pa) in
    t.dec.(w) <- insn;
    Bytes.set t.dec_valid w '\001';
    insn
  end

let bb_lookup t ~va ~pa ~cached =
  let slot = (pa lsr 2) land (bcache_slots - 1) in
  let b = Array.unsafe_get t.bcache_tab slot in
  if
    b.bb_pa = pa && b.bb_va = va && b.bb_cached = cached
    && b.bb_gen = t.bgen.(pa lsr Addr.page_shift)
  then b
  else begin
    let b =
      Uop.build
        ~decode:(fun ~va ~pa -> bb_decode t ~va ~pa)
        ~va ~pa ~cached
        ~gen:(t.bgen.(pa lsr Addr.page_shift))
        ~fuse:(Uop.fusion_enabled t.cfg.tier)
    in
    Array.unsafe_set t.bcache_tab slot b;
    b
  end

(* Event horizon: the earliest cycle at which [poll_devices] could do
   anything (clock tick or disk completion).  While [t.cycles] stays
   below it the per-instruction poll is a provable no-op, and neither
   the interrupt lines nor any page generation can have moved either —
   inside a block only stores and [U_other] reach devices or memory, and
   those take the full recheck (see the [bb_fin_*] classes). *)
let bb_horizon t =
  let d = Disk.next_event t.disk in
  if t.next_clock < d then t.next_clock else d

(* Credit uops [t.bb_kf, k) of block [b] — all executed in mode [um] —
   to the instruction counters.  The span is contiguous in va, so the
   idle-range attribution is the interval overlap instead of a per-
   instruction compare. *)
let bb_flush t b k =
  let kf = t.bb_kf in
  let n = k - kf in
  if n > 0 then begin
    let c = t.c in
    c.instructions <- c.instructions + n;
    if t.bb_um then c.user_instructions <- c.user_instructions + n
    else begin
      c.kernel_instructions <- c.kernel_instructions + n;
      let lo0 = b.bb_va + (kf * 4) and hi0 = b.bb_va + (k * 4) in
      let lo = if lo0 > t.idle_lo then lo0 else t.idle_lo in
      let hi = if hi0 < t.idle_hi then hi0 else t.idle_hi in
      if hi > lo then
        c.idle_instructions <- c.idle_instructions + ((hi - lo) lsr 2)
    end
  end;
  t.bb_kf <- k

(* Per-word execution counting (cfg.count_exec), as [step] does it. *)
let bb_count t cur =
  match translate_i t cur ~write:false ~fetch:true with
  | cpa when cpa lsr 2 < Array.length t.exec_counts ->
    t.exec_counts.(cpa lsr 2) <- t.exec_counts.(cpa lsr 2) + 1
  | _ -> ()
  | exception Trap _ -> ()

(* Icache probe for a sequential fetch that left the memoized line. *)
let bb_fetch_probe t tg =
  let ic = t.icache in
  let idx = tg land (ic.Cache.nlines - 1) in
  if Array.unsafe_get ic.Cache.tags idx = tg then
    ic.Cache.hits <- ic.Cache.hits + 1
  else begin
    ic.Cache.misses <- ic.Cache.misses + 1;
    Array.unsafe_set ic.Cache.tags idx tg;
    t.cycles <- t.cycles + t.cfg.read_miss_penalty
  end

(* Seam prologue for the second/third element of a fused run: the fetch
   timing, tracer callback and pc advance of the generic dispatch,
   specialised on a cached fetch mapping (only cacheable text is ever
   fused).  Returns the new resident line tag. *)
let[@inline always] bb_seam t pa cur ptag =
  let tg = pa lsr t.icache.Cache.line_shift in
  if tg = ptag then t.icache.Cache.hits <- t.icache.Cache.hits + 1
  else bb_fetch_probe t tg;
  (match t.ref_tracer with Some f -> f 0 cur | None -> ());
  t.pc <- t.npc;
  t.npc <- t.npc + 4;
  tg

(* Cached, in-RAM word load/store bodies shared by the scalar
   [U_lw]/[U_sw] arms and the fused uops: micro-cache hit +
   direct-mapped d-cache probe + raw access (write-through no-allocate
   on the store side, so only the write buffer, memory, decode cache and
   page generation are touched), falling back to the timed helpers for
   every other case (unaligned, micro-cache miss, uncached, device, out
   of range). *)
let[@inline always] bb_load_word t rt va =
  let tcc = t.tc in
  if va land 3 = 0 && va lsr Addr.page_shift = tcc.r_vpn && tcc.r_cached
  then begin
    let pa = tcc.r_frame lor (va land Addr.page_mask) in
    if pa + 4 <= t.cfg.mem_bytes && not (is_device_pa pa) then begin
      let dc = t.dcache in
      let tg = pa lsr dc.Cache.line_shift in
      let idx = tg land (dc.Cache.nlines - 1) in
      if Array.unsafe_get dc.Cache.tags idx = tg then
        dc.Cache.hits <- dc.Cache.hits + 1
      else begin
        dc.Cache.misses <- dc.Cache.misses + 1;
        Array.unsafe_set dc.Cache.tags idx tg;
        t.cycles <- t.cycles + t.cfg.read_miss_penalty
      end;
      let v = Int32.to_int (Bytes.get_int32_le t.mem pa) land 0xFFFFFFFF in
      (match t.ref_tracer with Some f -> f 1 va | None -> ());
      reg_set t rt v
    end
    else begin
      let v = load_word_timed t va in
      (match t.ref_tracer with Some f -> f 1 va | None -> ());
      reg_set t rt v
    end
  end
  else begin
    let v = load_word_timed t va in
    (match t.ref_tracer with Some f -> f 1 va | None -> ());
    reg_set t rt v
  end

let[@inline always] bb_store_word t v va =
  let tcc = t.tc in
  if va land 3 = 0 && va lsr Addr.page_shift = tcc.w_vpn && tcc.w_cached
  then begin
    let pa = tcc.w_frame lor (va land Addr.page_mask) in
    if pa + 4 <= t.cfg.mem_bytes && not (is_device_pa pa) then begin
      t.cycles <- t.cycles + Write_buffer.store t.wb ~now:t.cycles;
      Bytes.set_int32_le t.mem pa (Int32.of_int (v land 0xFFFFFFFF));
      Bytes.set t.dec_valid (pa lsr 2) '\000';
      bgen_bump t pa;
      (match t.watchpoint with
      | Some f ->
        t.bb_dev <- true;
        f va v
      | None -> ());
      (match t.ref_tracer with Some f -> f 2 va | None -> ())
    end
    else begin
      store_timed t va 4 v;
      (match t.ref_tracer with Some f -> f 2 va | None -> ())
    end
  end
  else begin
    store_timed t va 4 v;
    (match t.ref_tracer with Some f -> f 2 va | None -> ())
  end

(* ------------------------------------------------------------------ *)
(* Trace-superblock support (Trace tier).  A trace pass replays a hot
   chain of blocks with the budget / event-horizon / watchpoint /
   store-generation / icache-residency checks done once up front
   ([bb_trace_ready]), so the per-element seam re-tests of the Super
   tier disappear, and with the hottest registers ([tr_regs]) threaded
   through the pass as OCaml locals.  The register cache and the
   threaded cycle count are spilled to architectural state at every
   point a trap or an observer could see them: before any may-fault
   memory slow path, at every side exit, and at trace end. *)

(* First invalidation deopts the head to plain Super dispatch (one rung
   down the ladder, never to [step]); resetting the heat lets a stable
   successor path re-form later. *)
let bb_trace_invalidate (tr : Uop.trace) =
  tr.tr_live <- false;
  let h = tr.tr_blocks.(0) in
  h.bb_trace <- None;
  h.bb_hot <- 0

(* All spanned text pages still at their formation-time generation?
   Checked up front and re-checked after every store inside a pass, so a
   trace never runs across a store-generation bump. *)
let bb_trc_gens_ok t (tr : Uop.trace) =
  let pages = tr.tr_pages and gens = tr.tr_gens in
  let n = Array.length pages in
  let rec go i =
    i = n
    || (Array.unsafe_get t.bgen (Array.unsafe_get pages i)
          = Array.unsafe_get gens i
       && go (i + 1))
  in
  go 0

let bb_trace_ready t (tr : Uop.trace) budget next_ev =
  budget >= tr.tr_insns
  && t.cycles + tr.tr_wc < next_ev
  && (match t.watchpoint with None -> true | Some _ -> false)
  (* per-instruction observers (reference tracer, per-word execution
     counts) want every fetch/ref surfaced one at a time: those runs take
     the Super path, where the generic prologue does it *)
  && (match t.ref_tracer with None -> true | Some _ -> false)
  && not t.cfg.count_exec
  (* counter credits are batched per block, which loses the per-uop va
     ranges the kernel idle-window classifier needs: idle accounting
     runs take the Super path *)
  && (t.status land 0x2 <> 0 || t.idle_hi <= t.idle_lo)
  && (bb_trc_gens_ok t tr
     ||
     (* stale text: kill the trace now so the block path rebuilds heat *)
     (bb_trace_invalidate tr;
      false))
  && (let lines = tr.tr_lines in
      let ic = t.icache in
      let tags = ic.Cache.tags in
      let mask = ic.Cache.nlines - 1 in
      let ok = ref true in
      for i = 0 to Array.length lines - 1 do
        let tg = Array.unsafe_get lines i in
        if Array.unsafe_get tags (tg land mask) <> tg then ok := false
      done;
      (* Resident + distinct indexes (a formation invariant) means no
         fetch in the pass can evict a line another fetch needs: every
         fetch is a hit, so fetch-hit accounting batches per flush. *)
      !ok)

(* Counter flush for a trace pass: the batched icache fetch hits for
   uops [bb_kf, k) land together with the instruction counters. *)
let bb_trc_flush t b k =
  let acc = t.bb_tacc in
  t.bb_tacc <- 0;
  let h = acc + k - t.bb_kf in
  if h > 0 then t.icache.Cache.hits <- t.icache.Cache.hits + h;
  (* fold the deferred whole-block credits into the span [bb_flush]
     counts; the offset is sound because the idle-window classification
     is vacuous during a pass ([bb_trace_ready] excludes kernel runs
     with a live idle window) *)
  t.bb_kf <- t.bb_kf - acc;
  bb_flush t b k

(* Side exit: spill the register cache and threaded pc/npc/cycles and
   fall back to the generic loop, which re-runs the poll / interrupt
   sample / fetch checks for the new pc.  The caller has already
   flushed the counters for the completed prefix; a cached register
   never survives past this point. *)
let bb_trc_exit t pc npc cyc c0 c1 r0 r1 =
  t.bb_trc <- false;
  if r0 >= 0 then Array.unsafe_set t.regs r0 c0;
  if r1 >= 0 then Array.unsafe_set t.regs r1 c1;
  t.pc <- pc;
  t.npc <- npc;
  t.cycles <- cyc

(* Spill before a may-fault memory access: if the generic helper traps,
   the unwound architectural state (registers, cycle count) must be
   exactly what [step] would show at the faulting instruction. *)
let bb_trc_spill t cyc c0 c1 r0 r1 =
  if r0 >= 0 then Array.unsafe_set t.regs r0 c0;
  if r1 >= 0 then Array.unsafe_set t.regs r1 c1;
  t.cycles <- cyc

let bb_trc_load_slow t rt va cyc c0 c1 r0 r1 =
  bb_trc_spill t cyc c0 c1 r0 r1;
  let v = load_word_timed t va in
  (match t.ref_tracer with Some f -> f 1 va | None -> ());
  reg_set t rt v

let bb_trc_store_slow t va v cyc c0 c1 r0 r1 =
  bb_trc_spill t cyc c0 c1 r0 r1;
  store_timed t va 4 v;
  ref_trace t 2 va

(* The replay loop, as a self-tail-recursive toplevel function: it
   compiles to a loop with the state in registers and allocates nothing
   (a closure inside [exec_block] would be rebuilt per block entry).
   Traps are caught once per [exec_block] call: [t.bb_blk]/[t.bb_k]
   track the executing uop (written only by uops that can trap) so the
   handler can reconstruct the faulting pc and delay-slot flag.  [ptag]
   is the icache line tag of the previous fetch (or -1): sequential
   fetches from a line just probed are hits by construction, so a tag
   compare replaces the probe.  [budget]/[lim]: instructions the caller
   still allows / how many fall in this block; a block completing on a
   sequential pc with budget left chains straight into its successor. *)
let rec bb_go t b lim budget k pa cur ce next_ev ptag =
    (* per-instruction fetch timing, as [fetch_timed] charges it *)
    let ptag =
      if b.bb_cached then begin
        let ic = t.icache in
        let tg = pa lsr ic.Cache.line_shift in
        if tg = ptag then ic.Cache.hits <- ic.Cache.hits + 1
        else begin
          let idx = tg land (ic.Cache.nlines - 1) in
          if Array.unsafe_get ic.Cache.tags idx = tg then
            ic.Cache.hits <- ic.Cache.hits + 1
          else begin
            ic.Cache.misses <- ic.Cache.misses + 1;
            Array.unsafe_set ic.Cache.tags idx tg;
            t.cycles <- t.cycles + t.cfg.read_miss_penalty
          end
        end;
        tg
      end
      else begin
        t.c.uncached_ifetches <- t.c.uncached_ifetches + 1;
        t.cycles <- t.cycles + t.cfg.uncached_penalty;
        -1
      end
    in
    (match t.ref_tracer with Some f -> f 0 cur | None -> ());
    (* [t.next_is_delay] is false here: branch uops set it and the
       between-instruction paths below clear it when they consume it, so
       no per-instruction clear is needed. *)
    t.pc <- t.npc;
    t.npc <- t.npc + 4;
    let u = Array.unsafe_get b.bb_uops k in
    (* Execute the pre-decoded instruction, then tail into the epilogue
       of its between-check class ([bb_fin] / [bb_fin_store] /
       [bb_fin_other]; [_nc] when the base cycle was already charged).
       Bodies mirror [exec] exactly; register indices come from the
       5-bit fields of [Encode.decode], hence the unsafe reads.  The
       fused arms ([U_li] and friends, Super tier only) execute 2–3
       elements per dispatch, re-checking budget and event horizon at
       each seam and bailing out to the scalar tail (covered slots keep
       their original uops) whenever the next seam could be observable. *)
    match u with
       | U_alu (op, rd, rs, rt) ->
         let a = Array.unsafe_get t.regs rs
         and bv = Array.unsafe_get t.regs rt in
         let v =
           match (op : Insn.alu) with
           | ADD | ADDU -> a + bv
           | SUB | SUBU -> a - bv
           | AND -> a land bv
           | OR -> a lor bv
           | XOR -> a lxor bv
           | NOR -> lnot (a lor bv)
           | SLT -> if s32 a < s32 bv then 1 else 0
           | SLTU -> if a < bv then 1 else 0
           | SLLV -> a lsl (bv land 31)
           | SRLV -> a lsr (bv land 31)
           | SRAV -> s32 a asr (bv land 31)
           | MUL -> s32 a * s32 bv
           | MULH ->
             Int64.to_int
               (Int64.shift_right
                  (Int64.mul (Int64.of_int (s32 a)) (Int64.of_int (s32 bv)))
                  32)
           | DIV -> if s32 bv = 0 then 0 else s32 a / s32 bv
           | REM -> if s32 bv = 0 then 0 else Stdlib.Int.rem (s32 a) (s32 bv)
         in
         reg_set t rd v;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_alui (op, rt, rs, imm) ->
         let a = Array.unsafe_get t.regs rs in
         let v =
           match (op : Insn.alui) with
           | ADDI | ADDIU -> a + imm
           | SLTI -> if s32 a < imm then 1 else 0
           | SLTIU -> if a < u32 imm then 1 else 0
           | ANDI -> a land imm
           | ORI -> a lor imm
           | XORI -> a lxor imm
         in
         reg_set t rt v;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_shift (op, rd, rt, sa) ->
         let v = Array.unsafe_get t.regs rt in
         reg_set t rd
           (match op with
           | SLL -> v lsl sa
           | SRL -> v lsr sa
           | SRA -> s32 v asr sa);
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_lui (rt, imm) ->
         reg_set t rt (imm lsl 16);
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_lw (rt, base, off) ->
         t.bb_k <- k;
         bb_load_word t rt (u32 (Array.unsafe_get t.regs base + off));
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_lh (rt, base, off) ->
         t.bb_k <- k;
         let va = u32 (Array.unsafe_get t.regs base + off) in
         let v = load_timed t va 2 in
         let v = if v >= 0x8000 then v - 0x10000 else v in
         ref_trace t 1 va;
         reg_set t rt v;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_lhu (rt, base, off) ->
         t.bb_k <- k;
         let va = u32 (Array.unsafe_get t.regs base + off) in
         let v = load_timed t va 2 in
         ref_trace t 1 va;
         reg_set t rt v;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_lb (rt, base, off) ->
         t.bb_k <- k;
         let va = u32 (Array.unsafe_get t.regs base + off) in
         let v = load_timed t va 1 in
         let v = if v >= 0x80 then v - 0x100 else v in
         ref_trace t 1 va;
         reg_set t rt v;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_lbu (rt, base, off) ->
         t.bb_k <- k;
         let va = u32 (Array.unsafe_get t.regs base + off) in
         let v = load_timed t va 1 in
         ref_trace t 1 va;
         reg_set t rt v;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_sw (rt, base, off) ->
         t.bb_k <- k;
         bb_store_word t
           (Array.unsafe_get t.regs rt)
           (u32 (Array.unsafe_get t.regs base + off));
         bb_fin_store t b lim budget k pa cur ce next_ev ptag
       | U_sh (rt, base, off) ->
         t.bb_k <- k;
         let va = u32 (Array.unsafe_get t.regs base + off) in
         store_timed t va 2 (Array.unsafe_get t.regs rt);
         ref_trace t 2 va;
         bb_fin_store t b lim budget k pa cur ce next_ev ptag
       | U_sb (rt, base, off) ->
         t.bb_k <- k;
         let va = u32 (Array.unsafe_get t.regs base + off) in
         store_timed t va 1 (Array.unsafe_get t.regs rt);
         ref_trace t 2 va;
         bb_fin_store t b lim budget k pa cur ce next_ev ptag
       | U_beq (rs, rt, a) ->
         t.next_is_delay <- true;
         if Array.unsafe_get t.regs rs = Array.unsafe_get t.regs rt then
           t.npc <- a;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_bne (rs, rt, a) ->
         t.next_is_delay <- true;
         if Array.unsafe_get t.regs rs <> Array.unsafe_get t.regs rt then
           t.npc <- a;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_blez (rs, a) ->
         t.next_is_delay <- true;
         if s32 (Array.unsafe_get t.regs rs) <= 0 then t.npc <- a;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_bgtz (rs, a) ->
         t.next_is_delay <- true;
         if s32 (Array.unsafe_get t.regs rs) > 0 then t.npc <- a;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_bltz (rs, a) ->
         t.next_is_delay <- true;
         if s32 (Array.unsafe_get t.regs rs) < 0 then t.npc <- a;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_bgez (rs, a) ->
         t.next_is_delay <- true;
         if s32 (Array.unsafe_get t.regs rs) >= 0 then t.npc <- a;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_bc1t a ->
         t.next_is_delay <- true;
         if t.fcc then t.npc <- a;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_bc1f a ->
         t.next_is_delay <- true;
         if not t.fcc then t.npc <- a;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_j a ->
         t.next_is_delay <- true;
         t.npc <- a;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_jal a ->
         reg_set t Reg.ra (cur + 8);
         t.next_is_delay <- true;
         t.npc <- a;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_jr rs ->
         t.next_is_delay <- true;
         t.npc <- Array.unsafe_get t.regs rs;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_jalr (rd, rs) ->
         let dest = Array.unsafe_get t.regs rs in
         reg_set t rd (cur + 8);
         t.next_is_delay <- true;
         t.npc <- dest;
         bb_fin t b lim budget k pa cur ce next_ev ptag
       | U_li (rt, imm) ->
         (* lui+ori collapsed to one write; the bail-out path
            materialises the architectural intermediate (high half) and
            lets the scalar ori at the covered slot run. *)
         t.cycles <- t.cycles + 1;
         if ce then bb_count t cur;
         if k + 2 <= lim && t.cycles < next_ev then begin
           let cur = cur + 4 and pa = pa + 4 in
           let ptag = bb_seam t pa cur ptag in
           reg_set t rt imm;
           bb_fin t b lim budget (k + 1) pa cur ce next_ev ptag
         end
         else begin
           reg_set t rt (imm land 0xFFFF0000);
           bb_fin_nc t b lim budget k pa cur ce next_ev ptag
         end
       | U_addiu2 (rt1, rs1, i1, rt2, rs2, i2) ->
         reg_set t rt1 (Array.unsafe_get t.regs rs1 + i1);
         t.cycles <- t.cycles + 1;
         if ce then bb_count t cur;
         if k + 2 <= lim && t.cycles < next_ev then begin
           let cur = cur + 4 and pa = pa + 4 in
           let ptag = bb_seam t pa cur ptag in
           reg_set t rt2 (Array.unsafe_get t.regs rs2 + i2);
           bb_fin t b lim budget (k + 1) pa cur ce next_ev ptag
         end
         else bb_fin_nc t b lim budget k pa cur ce next_ev ptag
       | U_slt_b (unsigned, rd, rs, rt, on_ne, a) ->
         (* compare+branch: the compare result stays in an OCaml local
            for the branch decision, so the branch never reloads it. *)
         let x = Array.unsafe_get t.regs rs
         and y = Array.unsafe_get t.regs rt in
         let v =
           if unsigned then (if x < y then 1 else 0)
           else if s32 x < s32 y then 1
           else 0
         in
         reg_set t rd v;
         t.cycles <- t.cycles + 1;
         if ce then bb_count t cur;
         if k + 2 <= lim && t.cycles < next_ev then begin
           let cur = cur + 4 and pa = pa + 4 in
           let ptag = bb_seam t pa cur ptag in
           t.next_is_delay <- true;
           if (v <> 0) = on_ne then t.npc <- a;
           bb_fin t b lim budget (k + 1) pa cur ce next_ev ptag
         end
         else bb_fin_nc t b lim budget k pa cur ce next_ev ptag
       | U_lw_addiu (rt, base, off, rt2, rs2, i2) ->
         (* load+use: the dependent addiu issues in the same dispatch *)
         t.bb_k <- k;
         bb_load_word t rt (u32 (Array.unsafe_get t.regs base + off));
         t.cycles <- t.cycles + 1;
         if ce then bb_count t cur;
         if k + 2 <= lim && t.cycles < next_ev then begin
           let cur = cur + 4 and pa = pa + 4 in
           let ptag = bb_seam t pa cur ptag in
           reg_set t rt2 (Array.unsafe_get t.regs rs2 + i2);
           bb_fin t b lim budget (k + 1) pa cur ce next_ev ptag
         end
         else bb_fin_nc t b lim budget k pa cur ce next_ev ptag
       | U_lmw (rt, base, off, rt2, rs2, i2, rt3, base3, off3) ->
         (* load-modify-store; the store is final, so [bb_fin_store]'s
            generation recheck runs right after the dispatch — a fused
            run never crosses a generation bump. *)
         t.bb_k <- k;
         bb_load_word t rt (u32 (Array.unsafe_get t.regs base + off));
         t.cycles <- t.cycles + 1;
         if ce then bb_count t cur;
         if k + 2 <= lim && t.cycles < next_ev then begin
           let cur = cur + 4 and pa = pa + 4 in
           let ptag = bb_seam t pa cur ptag in
           reg_set t rt2 (Array.unsafe_get t.regs rs2 + i2);
           t.cycles <- t.cycles + 1;
           if ce then bb_count t cur;
           if k + 3 <= lim && t.cycles < next_ev then begin
             let cur = cur + 4 and pa = pa + 4 in
             let ptag = bb_seam t pa cur ptag in
             t.bb_k <- k + 2;
             bb_store_word t
               (Array.unsafe_get t.regs rt3)
               (u32 (Array.unsafe_get t.regs base3 + off3));
             bb_fin_store t b lim budget (k + 2) pa cur ce next_ev ptag
           end
           else bb_fin_nc t b lim budget (k + 1) pa cur ce next_ev ptag
         end
         else bb_fin_nc t b lim budget k pa cur ce next_ev ptag
       | U_j_nop a ->
         (* j + empty delay slot: under the seam precondition the
            delay-slot bookkeeping is unobservable, so the fast path
            never materialises [next_is_delay]. *)
         t.npc <- a;
         t.cycles <- t.cycles + 1;
         if ce then bb_count t cur;
         if k + 2 <= lim && t.cycles < next_ev then begin
           let cur = cur + 4 and pa = pa + 4 in
           let ptag = bb_seam t pa cur ptag in
           (* the delay slot is a nop: no body *)
           bb_fin t b lim budget (k + 1) pa cur ce next_ev ptag
         end
         else begin
           t.next_is_delay <- true;
           bb_fin_nc t b lim budget k pa cur ce next_ev ptag
         end
       | U_other insn ->
         t.bb_k <- k;
         (* [exec] (an hcall handler in particular) may observe the
            counters: close the pending span first *)
         bb_flush t b k;
         exec t cur insn;
         (* the mode may have flipped; [exec] flushed up to this uop, so
            the new span (starting with this uop) carries the new mode *)
         t.bb_um <- t.status land 0x2 <> 0;
         bb_fin_other t b lim budget k pa cur ce

(* Per-uop epilogue, split by between-check class: charge the base
   cycle, count, then exactly the between-instruction checks of the
   [run]+[step] loop for that class (halt, budget, device poll,
   interrupt sample, text-page staleness).  The [_nc] variant skips the
   charge — the fused arms charge each element before testing the seam
   precondition. *)
and bb_fin t b lim budget k pa cur ce next_ev ptag =
  t.cycles <- t.cycles + 1;
  if ce then bb_count t cur;
  bb_fin_nc t b lim budget k pa cur ce next_ev ptag

(* Default class (ALU/shift/load/branch): only the event horizon can
   have expired; [next_is_delay] set by a branch is consumed on the next
   iteration (the whole block was decoded, so the delay slot is there). *)
and bb_fin_nc t b lim budget k pa cur ce next_ev ptag =
  let k = k + 1 in
  if k < lim then begin
    (* no halted check: only [U_other] and device stores can halt, and
       their classes ([bb_fin_other]/[bb_fin_store]) test it *)
    if t.cycles >= next_ev then begin
      bb_flush t b k;
      poll_devices t;
      if Array.unsafe_get t.bgen (b.bb_pa lsr Addr.page_shift) = b.bb_gen
      then begin
        if t.next_is_delay then begin
          (* The poll may have raised an irq line whose delivery is
             deferred past the delay slot (exactly as in [step]); a zero
             horizon forces the post-delay-slot boundary through the
             slow path, where the deferred sample runs. *)
          t.next_is_delay <- false;
          bb_go t b lim budget k (pa + 4) (cur + 4) ce 0 ptag
        end
        else if interrupt_pending t then
          enter_exception t ~code:Exc.interrupt ~badva:(-1) ~refill:false
            ~cur:t.pc ~in_delay:false
        else bb_go t b lim budget k (pa + 4) (cur + 4) ce (bb_horizon t) ptag
      end
    end
    else begin
      if t.next_is_delay then t.next_is_delay <- false;
      bb_go t b lim budget k (pa + 4) (cur + 4) ce next_ev ptag
    end
  end
  else bb_end t b lim budget k (t.cycles >= next_ev) next_ev ptag

(* Store class.  A store to RAM cannot reach a device: the interrupt
   lines and the event horizon are unchanged, so only the block's own
   text page needs re-validating (the store may have hit it).  A device
   store or a watchpoint callback sets [bb_dev] and takes the full
   poll + interrupt recheck.  Stores never set [next_is_delay]. *)
and bb_fin_store t b lim budget k pa cur ce next_ev ptag =
  t.cycles <- t.cycles + 1;
  if ce then bb_count t cur;
  let k = k + 1 in
  if k < lim then begin
    if t.halted then bb_flush t b k
    else if t.bb_dev || t.cycles >= next_ev then begin
      t.bb_dev <- false;
      bb_flush t b k;
      poll_devices t;
      if Array.unsafe_get t.bgen (b.bb_pa lsr Addr.page_shift) = b.bb_gen
      then begin
        if interrupt_pending t then
          enter_exception t ~code:Exc.interrupt ~badva:(-1) ~refill:false
            ~cur:t.pc ~in_delay:false
        else bb_go t b lim budget k (pa + 4) (cur + 4) ce (bb_horizon t) ptag
      end
    end
    else if Array.unsafe_get t.bgen (b.bb_pa lsr Addr.page_shift) = b.bb_gen
    then bb_go t b lim budget k (pa + 4) (cur + 4) ce next_ev ptag
    else bb_flush t b k
  end
  else bb_end t b lim budget k (t.bb_dev || t.cycles >= next_ev) next_ev ptag

(* [U_other] may have done anything (CP0, hcall, devices, the icache):
   full recheck, and forget the resident fetch line (ptag := -1). *)
and bb_fin_other t b lim budget k pa cur ce =
  t.cycles <- t.cycles + 1;
  if ce then bb_count t cur;
  let k = k + 1 in
  if k < lim then begin
    if t.halted then bb_flush t b k
    else begin
      bb_flush t b k;
      t.bb_dev <- false;
      poll_devices t;
      if Array.unsafe_get t.bgen (b.bb_pa lsr Addr.page_shift) = b.bb_gen
      then begin
        if t.next_is_delay then begin
          (* deferred-interrupt case: see [bb_fin_nc] *)
          t.next_is_delay <- false;
          bb_go t b lim budget k (pa + 4) (cur + 4) ce 0 (-1)
        end
        else if interrupt_pending t then
          enter_exception t ~code:Exc.interrupt ~badva:(-1) ~refill:false
            ~cur:t.pc ~in_delay:false
        else bb_go t b lim budget k (pa + 4) (cur + 4) ce (bb_horizon t) (-1)
      end
    end
  end
  else bb_end t b lim budget k true 0 (-1)

(* Block complete on a sequential pc with budget left: chain into the
   successor block directly.  [budget > lim] implies the block ran to its
   real end ([lim] = block length), so exactly [lim] instructions were
   executed here.  [slow] carries the class-specific recheck condition,
   then the fetch checks of [bb_step] run for the new pc. *)
and bb_end t b lim budget k slow next_ev ptag =
  if
    budget > lim && (not t.halted) && (not t.next_is_delay)
    && t.npc = t.pc + 4
  then begin
    bb_flush t b k;
    if slow then begin
      t.bb_dev <- false;
      poll_devices t;
      if interrupt_pending t then
        enter_exception t ~code:Exc.interrupt ~badva:(-1) ~refill:false
          ~cur:t.pc ~in_delay:false
      else bb_chain t b (budget - lim) (bb_horizon t) ptag
    end
    else bb_chain t b (budget - lim) next_ev ptag
  end
  else bb_flush t b k

(* Enter the block at [t.pc]: the fetch checks of [bb_step], then replay.
   Tail-called from [bb_go] when chaining, so the fetch-trap handler here
   must not wrap the replay itself.

   [bprev] is the block just replayed; its [bb_next] memoizes the block
   last entered from here.  The memo is valid only if the fetch
   micro-cache would translate [t.pc] to the memoized block's entry (the
   exact hit condition of [translate_i], which has no counter side
   effects) and the block's text page generation still matches —
   otherwise the full fetch-check + table-probe path runs and re-memoizes
   whatever it finds.  [bb_va = t.pc] implies alignment (blocks are only
   built at aligned pcs), and the bounds check held at build time for the
   same physical address. *)
and bb_chain t bprev budget next_ev ptag =
  let va = t.pc in
  let nb = bprev.bb_next in
  let tcc = t.tc in
  if
    nb.bb_va = va
    && tcc.f_vpn = va lsr Addr.page_shift
    && tcc.f_frame lor (va land Addr.page_mask) = nb.bb_pa
    && tcc.f_cached = nb.bb_cached
    && Array.unsafe_get t.bgen (nb.bb_pa lsr Addr.page_shift) = nb.bb_gen
  then begin
    t.tr_cached <- tcc.f_cached;
    (* [t.bb_um] is still current: nothing between the previous block's
       flush and this entry executes or touches CP0 status. *)
    if Uop.trace_enabled t.cfg.tier then bb_chain_trace t nb budget next_ev ptag
    else bb_block_enter t nb budget next_ev ptag
  end
  else
    match
      (if va land 3 <> 0 then trap ~badva:va Exc.adel;
       let pa = translate_i t va ~write:false ~fetch:true in
       if not (phys_ok t pa 4) then trap ~badva:va Exc.adel;
       pa)
    with
    | exception Trap { code; badva; refill } ->
      t.cycles <- t.cycles + 1;
      enter_exception t ~code ~badva ~refill ~cur:va ~in_delay:false
    | pa ->
      let b = bb_lookup t ~va ~pa ~cached:t.tr_cached in
      bprev.bb_next <- b;
      t.bb_blk <- b;
      t.bb_kf <- 0;
      t.bb_um <- t.status land 0x2 <> 0;
      let n = Array.length b.bb_uops in
      let lim = if budget < n then budget else n in
      bb_go t b lim budget 0 pa va t.cfg.count_exec next_ev ptag

(* Generic entry into a memo-validated block (shared by the Super path
   and every Trace-tier fallback). *)
and bb_block_enter t nb budget next_ev ptag =
  t.bb_blk <- nb;
  t.bb_kf <- 0;
  let n = Array.length nb.bb_uops in
  let lim = if budget < n then budget else n in
  bb_go t nb lim budget 0 nb.bb_pa nb.bb_va t.cfg.count_exec next_ev ptag

(* Trace-tier memo-chain entry: dispatch the block's trace superblock if
   it has one and the up-front check passes; otherwise count heat, try
   formation once at the threshold, and run the plain Super path. *)
and bb_chain_trace t nb budget next_ev ptag =
  match nb.bb_trace with
  | Some tr when tr.tr_live ->
    if bb_trace_ready t tr budget next_ev then bb_trace_run t tr budget next_ev
    else bb_block_enter t nb budget next_ev ptag
  | _ ->
    let h = nb.bb_hot + 1 in
    nb.bb_hot <- h;
    if h = Uop.trace_hot_threshold then
      nb.bb_trace <-
        Uop.form_trace ~head:nb ~max_blocks:t.cfg.trace_len
          ~wc_load:(max t.cfg.read_miss_penalty t.cfg.uncached_penalty)
          ~wc_store:
            (max (t.cfg.wb_depth * t.cfg.wb_drain) t.cfg.uncached_penalty)
          ~line_shift:t.icache.Cache.line_shift ~nlines:t.icache.Cache.nlines;
    bb_block_enter t nb budget next_ev ptag

(* One trace-superblock pass.  Preconditions ([bb_trace_ready] + the
   memo-chain check that got us here): pc = head va, npc sequential,
   no pending delay slot, not halted, no watchpoint, no reference tracer,
   no per-word execution counting, every spanned page at its snapshot
   generation, every spanned icache line resident (and, by formation, on
   distinct indexes), and the worst-case cycle cost fits under the event
   horizon.  The pass threads pc/npc/cycles and the two hottest registers
   as OCaml locals; rarely-read pass state (trace, block index, budget,
   horizon) lives in [bb_tr]/[bb_tbi]/[bb_tbudget]/[bb_tnext] so the
   per-slot loop fits its arguments in registers.
   [t.bb_blk]/[t.bb_k]/[t.bb_kf] stay maintained so the [exec_block]
   trap handler recovers exactly. *)
and bb_trace_run t (tr : Uop.trace) budget next_ev =
  t.bb_trc <- true;
  t.bb_tr <- tr;
  t.bb_tbi <- 0;
  t.bb_tbudget <- budget;
  t.bb_tnext <- next_ev;
  t.bb_tacc <- 0;
  let head = Array.unsafe_get tr.tr_blocks 0 in
  t.bb_blk <- head;
  t.bb_kf <- 0;
  let tregs = tr.tr_regs in
  let nr = Array.length tregs in
  let r0 = if nr > 0 then Array.unsafe_get tregs 0 else -1 in
  let r1 = if nr > 1 then Array.unsafe_get tregs 1 else -1 in
  let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0 in
  let c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
  bb_trc_go t head 0 t.pc t.npc t.cycles c0 c1 r0 r1

(* The trace dispatch loop.  Compared with [bb_go]: no per-element fetch
   probe (hits are batched at flush points), no budget / event-horizon /
   halted seam tests, no [next_is_delay] traffic (every branch's delay
   slot is in-block and no poll can run mid-pass), pc/npc/cycles are
   locals, and reads/writes of the two cached registers are
   compare-select chains instead of array traffic.  [pc]/[npc] are the
   CURRENT slot's fetch state: a slot's continuation passes
   (npc, npc + 4) — which is the delay-slot-correct advance, since npc
   already holds the branch target when the current slot is a delay
   slot. *)
and bb_trc_go t b k pc npc cyc c0 c1 r0 r1 =
  if k = Array.length b.bb_uops then begin
    let tr = t.bb_tr in
    let bi = t.bb_tbi + 1 in
    if bi = Array.length tr.tr_blocks then begin
      bb_trc_flush t b k;
      (* trace end: spill, then chain exactly as [bb_end] would *)
      t.bb_trc <- false;
      if r0 >= 0 then Array.unsafe_set t.regs r0 c0;
      if r1 >= 0 then Array.unsafe_set t.regs r1 c1;
      t.pc <- pc;
      t.npc <- npc;
      t.cycles <- cyc;
      let budget = t.bb_tbudget in
      if (not t.halted) && npc = pc + 4 && budget > tr.tr_insns then
        bb_chain t b (budget - tr.tr_insns) t.bb_tnext
          ((b.bb_pa + ((k - 1) * 4)) lsr t.icache.Cache.line_shift)
    end
    else begin
      let nb = Array.unsafe_get tr.tr_blocks bi in
      let tcc = t.tc in
      if
        pc = nb.bb_va
        && npc = pc + 4
        && (not t.halted)
        && tcc.f_vpn = pc lsr Addr.page_shift
        && tcc.f_frame lor (pc land Addr.page_mask) = nb.bb_pa
        && tcc.f_cached
      then begin
        (* whole completed block in one deferred credit ([bb_kf] stays
           0 across internal seams) *)
        t.bb_tacc <- t.bb_tacc + k;
        t.bb_tbi <- bi;
        t.bb_blk <- nb;
        bb_trc_go t nb 0 pc npc cyc c0 c1 r0 r1
      end
      else begin
        (* recorded path diverged (or crossed a page): side exit *)
        bb_trc_flush t b k;
        bb_trc_exit t pc npc cyc c0 c1 r0 r1
      end
    end
  end
  else
    match Array.unsafe_get b.bb_uops k with
    | U_alu (op, rd, rs, rt) ->
      let a = if rs = r0 then c0 else if rs = r1 then c1 else Array.unsafe_get t.regs rs
      and bv = if rt = r0 then c0 else if rt = r1 then c1 else Array.unsafe_get t.regs rt in
      let v =
        match (op : Insn.alu) with
        | ADD | ADDU -> a + bv
        | SUB | SUBU -> a - bv
        | AND -> a land bv
        | OR -> a lor bv
        | XOR -> a lxor bv
        | NOR -> lnot (a lor bv)
        | SLT -> if s32 a < s32 bv then 1 else 0
        | SLTU -> if a < bv then 1 else 0
        | SLLV -> a lsl (bv land 31)
        | SRLV -> a lsr (bv land 31)
        | SRAV -> s32 a asr (bv land 31)
        | MUL -> s32 a * s32 bv
        | MULH ->
          Int64.to_int
            (Int64.shift_right
               (Int64.mul (Int64.of_int (s32 a)) (Int64.of_int (s32 bv)))
               32)
        | DIV -> if s32 bv = 0 then 0 else s32 a / s32 bv
        | REM -> if s32 bv = 0 then 0 else Stdlib.Int.rem (s32 a) (s32 bv)
      in
      let v = u32 v in
      let c0 = if rd = r0 then v else c0 and c1 = if rd = r1 then v else c1 in
      if rd <> r0 && rd <> r1 && rd <> 0 then Array.unsafe_set t.regs rd v;
      bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_alui (op, rt, rs, imm) ->
      let a = if rs = r0 then c0 else if rs = r1 then c1 else Array.unsafe_get t.regs rs in
      let v =
        match (op : Insn.alui) with
        | ADDI | ADDIU -> a + imm
        | SLTI -> if s32 a < imm then 1 else 0
        | SLTIU -> if a < u32 imm then 1 else 0
        | ANDI -> a land imm
        | ORI -> a lor imm
        | XORI -> a lxor imm
      in
      let v = u32 v in
      let c0 = if rt = r0 then v else c0 and c1 = if rt = r1 then v else c1 in
      if rt <> r0 && rt <> r1 && rt <> 0 then Array.unsafe_set t.regs rt v;
      bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_shift (op, rd, rt, sa) ->
      let a = if rt = r0 then c0 else if rt = r1 then c1 else Array.unsafe_get t.regs rt in
      let v =
        match (op : Insn.shift) with
        | SLL -> a lsl sa
        | SRL -> a lsr sa
        | SRA -> s32 a asr sa
      in
      let v = u32 v in
      let c0 = if rd = r0 then v else c0 and c1 = if rd = r1 then v else c1 in
      if rd <> r0 && rd <> r1 && rd <> 0 then Array.unsafe_set t.regs rd v;
      bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_lui (rt, imm) ->
      let v = u32 (imm lsl 16) in
      let c0 = if rt = r0 then v else c0 and c1 = if rt = r1 then v else c1 in
      if rt <> r0 && rt <> r1 && rt <> 0 then Array.unsafe_set t.regs rt v;
      bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_lw (rt, base, off) ->
      let a = if base = r0 then c0 else if base = r1 then c1 else Array.unsafe_get t.regs base in
      let va = u32 (a + off) in
      let tcc = t.tc in
      let lpa = tcc.r_frame lor (va land Addr.page_mask) in
      if
        va land 3 = 0
        && va lsr Addr.page_shift = tcc.r_vpn
        && tcc.r_cached
        && lpa + 4 <= t.cfg.mem_bytes
        && not (is_device_pa lpa)
      then begin
        let dc = t.dcache in
        let tg = lpa lsr dc.Cache.line_shift in
        let idx = tg land (dc.Cache.nlines - 1) in
        let cyc =
          if Array.unsafe_get dc.Cache.tags idx = tg then begin
            dc.Cache.hits <- dc.Cache.hits + 1;
            cyc
          end
          else begin
            dc.Cache.misses <- dc.Cache.misses + 1;
            Array.unsafe_set dc.Cache.tags idx tg;
            cyc + t.cfg.read_miss_penalty
          end
        in
        let v = Int32.to_int (Bytes.get_int32_le t.mem lpa) land 0xFFFFFFFF in
        let c0 = if rt = r0 then v else c0 and c1 = if rt = r1 then v else c1 in
        if rt <> r0 && rt <> r1 && rt <> 0 then Array.unsafe_set t.regs rt v;
        bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
      end
      else begin
        t.bb_k <- k;
        bb_trc_load_slow t rt va cyc c0 c1 r0 r1;
        let cyc = t.cycles in
        let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0
        and c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
        bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
      end
    | U_lh (rt, base, off) ->
      t.bb_k <- k;
      let a = if base = r0 then c0 else if base = r1 then c1 else Array.unsafe_get t.regs base in
      let va = u32 (a + off) in
      bb_trc_spill t cyc c0 c1 r0 r1;
      let v = load_timed t va 2 in
      let v = if v >= 0x8000 then v - 0x10000 else v in
      reg_set t rt v;
      let cyc = t.cycles in
      let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0
      and c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
      bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_lhu (rt, base, off) ->
      t.bb_k <- k;
      let a = if base = r0 then c0 else if base = r1 then c1 else Array.unsafe_get t.regs base in
      let va = u32 (a + off) in
      bb_trc_spill t cyc c0 c1 r0 r1;
      let v = load_timed t va 2 in
      reg_set t rt v;
      let cyc = t.cycles in
      let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0
      and c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
      bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_lb (rt, base, off) ->
      t.bb_k <- k;
      let a = if base = r0 then c0 else if base = r1 then c1 else Array.unsafe_get t.regs base in
      let va = u32 (a + off) in
      bb_trc_spill t cyc c0 c1 r0 r1;
      let v = load_timed t va 1 in
      let v = if v >= 0x80 then v - 0x100 else v in
      reg_set t rt v;
      let cyc = t.cycles in
      let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0
      and c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
      bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_lbu (rt, base, off) ->
      t.bb_k <- k;
      let a = if base = r0 then c0 else if base = r1 then c1 else Array.unsafe_get t.regs base in
      let va = u32 (a + off) in
      bb_trc_spill t cyc c0 c1 r0 r1;
      let v = load_timed t va 1 in
      reg_set t rt v;
      let cyc = t.cycles in
      let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0
      and c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
      bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_sw (rt, base, off) ->
      let sv = if rt = r0 then c0 else if rt = r1 then c1 else Array.unsafe_get t.regs rt in
      let a = if base = r0 then c0 else if base = r1 then c1 else Array.unsafe_get t.regs base in
      let va = u32 (a + off) in
      let tcc = t.tc in
      let spa = tcc.w_frame lor (va land Addr.page_mask) in
      if
        va land 3 = 0
        && va lsr Addr.page_shift = tcc.w_vpn
        && tcc.w_cached
        && spa + 4 <= t.cfg.mem_bytes
        && not (is_device_pa spa)
      then begin
        (* watchpoint is None for the whole pass ([bb_trace_ready]) *)
        (* [Write_buffer.store], free-slot case hand-inlined: the ring
           fields are public for exactly this (the call dominated the trace
           store fast path); a full buffer takes the out-of-line stall path *)
        let wb = t.wb in
        while
          wb.Write_buffer.count > 0
          && Array.unsafe_get wb.Write_buffer.ring wb.Write_buffer.head <= cyc
        do
          let ix = wb.Write_buffer.head + 1 in
          wb.Write_buffer.head <-
            (if ix >= wb.Write_buffer.depth then ix - wb.Write_buffer.depth else ix);
          wb.Write_buffer.count <- wb.Write_buffer.count - 1
        done;
        let cyc =
          let cnt = wb.Write_buffer.count in
          if cnt < wb.Write_buffer.depth then begin
            wb.Write_buffer.stores <- wb.Write_buffer.stores + 1;
            let hd = wb.Write_buffer.head and dep = wb.Write_buffer.depth in
            let last =
              if cnt = 0 then cyc
              else
                Array.unsafe_get wb.Write_buffer.ring
                  (let ix = hd + cnt - 1 in if ix >= dep then ix - dep else ix)
            in
            let retire =
              (if cyc > last then cyc else last) + wb.Write_buffer.drain_cycles
            in
            Array.unsafe_set wb.Write_buffer.ring
              (let ix = hd + cnt in if ix >= dep then ix - dep else ix)
              retire;
            wb.Write_buffer.count <- cnt + 1;
            cyc
          end
          else cyc + Write_buffer.store wb ~now:cyc
        in
        Bytes.set_int32_le t.mem spa (Int32.of_int (sv land 0xFFFFFFFF));
        Bytes.set t.dec_valid (spa lsr 2) '\000';
        let pg = spa lsr Addr.page_shift in
        let g = t.bgen in
        Array.unsafe_set g pg (Array.unsafe_get g pg + 1);
        let tr = t.bb_tr in
        if pg < tr.tr_pg_lo || pg > tr.tr_pg_hi || bb_trc_gens_ok t tr then
          bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
        else begin
          (* the store hit a spanned text page: a trace never runs
             across a store-generation bump *)
          bb_trace_invalidate t.bb_tr;
          bb_trc_flush t b (k + 1);
          bb_trc_exit t npc (npc + 4) (cyc + 1) c0 c1 r0 r1
        end
      end
      else begin
        t.bb_k <- k;
        bb_trc_store_slow t va sv cyc c0 c1 r0 r1;
        let cyc = t.cycles in
        let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0
        and c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
        if t.halted || t.bb_dev then begin
          t.bb_dev <- false;
          bb_trc_flush t b (k + 1);
          bb_trc_exit t npc (npc + 4) (cyc + 1) c0 c1 r0 r1
        end
        else if bb_trc_gens_ok t t.bb_tr then
          bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
        else begin
          bb_trace_invalidate t.bb_tr;
          bb_trc_flush t b (k + 1);
          bb_trc_exit t npc (npc + 4) (cyc + 1) c0 c1 r0 r1
        end
      end
    | U_sh (rt, base, off) ->
      t.bb_k <- k;
      let sv = if rt = r0 then c0 else if rt = r1 then c1 else Array.unsafe_get t.regs rt in
      let a = if base = r0 then c0 else if base = r1 then c1 else Array.unsafe_get t.regs base in
      let va = u32 (a + off) in
      bb_trc_spill t cyc c0 c1 r0 r1;
      store_timed t va 2 sv;
      let cyc = t.cycles in
      let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0
      and c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
      if t.halted || t.bb_dev then begin
        t.bb_dev <- false;
        bb_trc_flush t b (k + 1);
        bb_trc_exit t npc (npc + 4) (cyc + 1) c0 c1 r0 r1
      end
      else if bb_trc_gens_ok t t.bb_tr then
        bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
      else begin
        bb_trace_invalidate t.bb_tr;
        bb_trc_flush t b (k + 1);
        bb_trc_exit t npc (npc + 4) (cyc + 1) c0 c1 r0 r1
      end
    | U_sb (rt, base, off) ->
      t.bb_k <- k;
      let sv = if rt = r0 then c0 else if rt = r1 then c1 else Array.unsafe_get t.regs rt in
      let a = if base = r0 then c0 else if base = r1 then c1 else Array.unsafe_get t.regs base in
      let va = u32 (a + off) in
      bb_trc_spill t cyc c0 c1 r0 r1;
      store_timed t va 1 sv;
      let cyc = t.cycles in
      let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0
      and c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
      if t.halted || t.bb_dev then begin
        t.bb_dev <- false;
        bb_trc_flush t b (k + 1);
        bb_trc_exit t npc (npc + 4) (cyc + 1) c0 c1 r0 r1
      end
      else if bb_trc_gens_ok t t.bb_tr then
        bb_trc_go t b (k + 1) npc (npc + 4) (cyc + 1) c0 c1 r0 r1
      else begin
        bb_trace_invalidate t.bb_tr;
        bb_trc_flush t b (k + 1);
        bb_trc_exit t npc (npc + 4) (cyc + 1) c0 c1 r0 r1
      end
    | U_beq (rs, rt, a) ->
      let x = if rs = r0 then c0 else if rs = r1 then c1 else Array.unsafe_get t.regs rs
      and y = if rt = r0 then c0 else if rt = r1 then c1 else Array.unsafe_get t.regs rt in
      bb_trc_go t b (k + 1) npc (if x = y then a else npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_bne (rs, rt, a) ->
      let x = if rs = r0 then c0 else if rs = r1 then c1 else Array.unsafe_get t.regs rs
      and y = if rt = r0 then c0 else if rt = r1 then c1 else Array.unsafe_get t.regs rt in
      bb_trc_go t b (k + 1) npc (if x <> y then a else npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_blez (rs, a) ->
      let x = if rs = r0 then c0 else if rs = r1 then c1 else Array.unsafe_get t.regs rs in
      bb_trc_go t b (k + 1) npc (if s32 x <= 0 then a else npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_bgtz (rs, a) ->
      let x = if rs = r0 then c0 else if rs = r1 then c1 else Array.unsafe_get t.regs rs in
      bb_trc_go t b (k + 1) npc (if s32 x > 0 then a else npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_bltz (rs, a) ->
      let x = if rs = r0 then c0 else if rs = r1 then c1 else Array.unsafe_get t.regs rs in
      bb_trc_go t b (k + 1) npc (if s32 x < 0 then a else npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_bgez (rs, a) ->
      let x = if rs = r0 then c0 else if rs = r1 then c1 else Array.unsafe_get t.regs rs in
      bb_trc_go t b (k + 1) npc (if s32 x >= 0 then a else npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_bc1t a ->
      bb_trc_go t b (k + 1) npc (if t.fcc then a else npc + 4) (cyc + 1) c0 c1 r0 r1
    | U_bc1f a ->
      bb_trc_go t b (k + 1) npc (if t.fcc then npc + 4 else a) (cyc + 1) c0 c1 r0 r1
    | U_j a -> bb_trc_go t b (k + 1) npc a (cyc + 1) c0 c1 r0 r1
    | U_jal a ->
      let v = u32 (pc + 8) in
      let c0 = if r0 = 31 then v else c0 and c1 = if r1 = 31 then v else c1 in
      if r0 <> 31 && r1 <> 31 then Array.unsafe_set t.regs 31 v;
      bb_trc_go t b (k + 1) npc a (cyc + 1) c0 c1 r0 r1
    | U_jr rs ->
      let dest = if rs = r0 then c0 else if rs = r1 then c1 else Array.unsafe_get t.regs rs in
      bb_trc_go t b (k + 1) npc dest (cyc + 1) c0 c1 r0 r1
    | U_jalr (rd, rs) ->
      let dest = if rs = r0 then c0 else if rs = r1 then c1 else Array.unsafe_get t.regs rs in
      let v = u32 (pc + 8) in
      let c0 = if rd = r0 then v else c0 and c1 = if rd = r1 then v else c1 in
      if rd <> r0 && rd <> r1 && rd <> 0 then Array.unsafe_set t.regs rd v;
      bb_trc_go t b (k + 1) npc dest (cyc + 1) c0 c1 r0 r1
    | U_li (rt, imm) ->
      let c0 = if rt = r0 then imm else c0
      and c1 = if rt = r1 then imm else c1 in
      if rt <> r0 && rt <> r1 && rt <> 0 then Array.unsafe_set t.regs rt imm;
      bb_trc_go t b (k + 2) (npc + 4) (npc + 8) (cyc + 2) c0 c1 r0 r1
    | U_addiu2 (rt1, rs1, i1, rt2, rs2, i2) ->
      let a = if rs1 = r0 then c0 else if rs1 = r1 then c1 else Array.unsafe_get t.regs rs1 in
      let v = u32 (a + i1) in
      let c0 = if rt1 = r0 then v else c0 and c1 = if rt1 = r1 then v else c1 in
      if rt1 <> r0 && rt1 <> r1 && rt1 <> 0 then Array.unsafe_set t.regs rt1 v;
      let a2 = if rs2 = r0 then c0 else if rs2 = r1 then c1 else Array.unsafe_get t.regs rs2 in
      let v2 = u32 (a2 + i2) in
      let c0 = if rt2 = r0 then v2 else c0
      and c1 = if rt2 = r1 then v2 else c1 in
      if rt2 <> r0 && rt2 <> r1 && rt2 <> 0 then Array.unsafe_set t.regs rt2 v2;
      bb_trc_go t b (k + 2) (npc + 4) (npc + 8) (cyc + 2) c0 c1 r0 r1
    | U_slt_b (unsigned, rd, rs, rt, on_ne, a) ->
      let x = if rs = r0 then c0 else if rs = r1 then c1 else Array.unsafe_get t.regs rs
      and y = if rt = r0 then c0 else if rt = r1 then c1 else Array.unsafe_get t.regs rt in
      let v =
        if unsigned then (if x < y then 1 else 0)
        else if s32 x < s32 y then 1
        else 0
      in
      let c0 = if rd = r0 then v else c0 and c1 = if rd = r1 then v else c1 in
      if rd <> r0 && rd <> r1 && rd <> 0 then Array.unsafe_set t.regs rd v;
      bb_trc_go t b (k + 2) (npc + 4)
        (if (v <> 0) = on_ne then a else npc + 8)
        (cyc + 2) c0 c1 r0 r1
    | U_lw_addiu (rt, base, off, rt2, rs2, i2) ->
      let a = if base = r0 then c0 else if base = r1 then c1 else Array.unsafe_get t.regs base in
      let va = u32 (a + off) in
      let tcc = t.tc in
      let lpa = tcc.r_frame lor (va land Addr.page_mask) in
      if
        va land 3 = 0
        && va lsr Addr.page_shift = tcc.r_vpn
        && tcc.r_cached
        && lpa + 4 <= t.cfg.mem_bytes
        && not (is_device_pa lpa)
      then begin
        let dc = t.dcache in
        let tg = lpa lsr dc.Cache.line_shift in
        let idx = tg land (dc.Cache.nlines - 1) in
        let cyc =
          if Array.unsafe_get dc.Cache.tags idx = tg then begin
            dc.Cache.hits <- dc.Cache.hits + 1;
            cyc
          end
          else begin
            dc.Cache.misses <- dc.Cache.misses + 1;
            Array.unsafe_set dc.Cache.tags idx tg;
            cyc + t.cfg.read_miss_penalty
          end
        in
        let v = Int32.to_int (Bytes.get_int32_le t.mem lpa) land 0xFFFFFFFF in
        let c0 = if rt = r0 then v else c0 and c1 = if rt = r1 then v else c1 in
        if rt <> r0 && rt <> r1 && rt <> 0 then Array.unsafe_set t.regs rt v;
        let a2 = if rs2 = r0 then c0 else if rs2 = r1 then c1 else Array.unsafe_get t.regs rs2 in
        let v2 = u32 (a2 + i2) in
        let c0 = if rt2 = r0 then v2 else c0
        and c1 = if rt2 = r1 then v2 else c1 in
        if rt2 <> r0 && rt2 <> r1 && rt2 <> 0 then
          Array.unsafe_set t.regs rt2 v2;
        bb_trc_go t b (k + 2) (npc + 4) (npc + 8) (cyc + 2) c0 c1 r0 r1
      end
      else begin
        t.bb_k <- k;
        bb_trc_load_slow t rt va cyc c0 c1 r0 r1;
        let cyc = t.cycles in
        let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0
        and c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
        let a2 = if rs2 = r0 then c0 else if rs2 = r1 then c1 else Array.unsafe_get t.regs rs2 in
        let v2 = u32 (a2 + i2) in
        let c0 = if rt2 = r0 then v2 else c0
        and c1 = if rt2 = r1 then v2 else c1 in
        if rt2 <> r0 && rt2 <> r1 && rt2 <> 0 then
          Array.unsafe_set t.regs rt2 v2;
        bb_trc_go t b (k + 2) (npc + 4) (npc + 8) (cyc + 2) c0 c1 r0 r1
      end
    | U_lmw (rt, base, off, rt2, rs2, i2, rt3, base3, off3) ->
      let a = if base = r0 then c0 else if base = r1 then c1 else Array.unsafe_get t.regs base in
      let va = u32 (a + off) in
      let tcc = t.tc in
      let lpa = tcc.r_frame lor (va land Addr.page_mask) in
      if
        va land 3 = 0
        && va lsr Addr.page_shift = tcc.r_vpn
        && tcc.r_cached
        && lpa + 4 <= t.cfg.mem_bytes
        && not (is_device_pa lpa)
      then begin
        let dc = t.dcache in
        let tg = lpa lsr dc.Cache.line_shift in
        let idx = tg land (dc.Cache.nlines - 1) in
        let cyc =
          if Array.unsafe_get dc.Cache.tags idx = tg then begin
            dc.Cache.hits <- dc.Cache.hits + 1;
            cyc
          end
          else begin
            dc.Cache.misses <- dc.Cache.misses + 1;
            Array.unsafe_set dc.Cache.tags idx tg;
            cyc + t.cfg.read_miss_penalty
          end
        in
        let v = Int32.to_int (Bytes.get_int32_le t.mem lpa) land 0xFFFFFFFF in
        let c0 = if rt = r0 then v else c0 and c1 = if rt = r1 then v else c1 in
        if rt <> r0 && rt <> r1 && rt <> 0 then Array.unsafe_set t.regs rt v;
        let cyc = cyc + 1 in
              let a2 = if rs2 = r0 then c0 else if rs2 = r1 then c1 else Array.unsafe_get t.regs rs2 in
        let v2 = u32 (a2 + i2) in
        let c0 = if rt2 = r0 then v2 else c0 and c1 = if rt2 = r1 then v2 else c1 in
        if rt2 <> r0 && rt2 <> r1 && rt2 <> 0 then Array.unsafe_set t.regs rt2 v2;
        let cyc = cyc + 1 in
        let sv = if rt3 = r0 then c0 else if rt3 = r1 then c1 else Array.unsafe_get t.regs rt3 in
        let a3 = if base3 = r0 then c0 else if base3 = r1 then c1 else Array.unsafe_get t.regs base3 in
        let sva = u32 (a3 + off3) in
        let spa = tcc.w_frame lor (sva land Addr.page_mask) in
        if
          sva land 3 = 0
          && sva lsr Addr.page_shift = tcc.w_vpn
          && tcc.w_cached
          && spa + 4 <= t.cfg.mem_bytes
          && not (is_device_pa spa)
        then begin
          (* [Write_buffer.store], free-slot case hand-inlined: the ring
             fields are public for exactly this (the call dominated the trace
             store fast path); a full buffer takes the out-of-line stall path *)
          let wb = t.wb in
          while
            wb.Write_buffer.count > 0
            && Array.unsafe_get wb.Write_buffer.ring wb.Write_buffer.head <= cyc
          do
            let ix = wb.Write_buffer.head + 1 in
            wb.Write_buffer.head <-
              (if ix >= wb.Write_buffer.depth then ix - wb.Write_buffer.depth else ix);
            wb.Write_buffer.count <- wb.Write_buffer.count - 1
          done;
          let cyc =
            let cnt = wb.Write_buffer.count in
            if cnt < wb.Write_buffer.depth then begin
              wb.Write_buffer.stores <- wb.Write_buffer.stores + 1;
              let hd = wb.Write_buffer.head and dep = wb.Write_buffer.depth in
              let last =
                if cnt = 0 then cyc
                else
                  Array.unsafe_get wb.Write_buffer.ring
                    (let ix = hd + cnt - 1 in if ix >= dep then ix - dep else ix)
              in
              let retire =
                (if cyc > last then cyc else last) + wb.Write_buffer.drain_cycles
              in
              Array.unsafe_set wb.Write_buffer.ring
                (let ix = hd + cnt in if ix >= dep then ix - dep else ix)
                retire;
              wb.Write_buffer.count <- cnt + 1;
              cyc
            end
            else cyc + Write_buffer.store wb ~now:cyc
          in
          Bytes.set_int32_le t.mem spa (Int32.of_int (sv land 0xFFFFFFFF));
          Bytes.set t.dec_valid (spa lsr 2) '\000';
          let pg = spa lsr Addr.page_shift in
          let g = t.bgen in
          Array.unsafe_set g pg (Array.unsafe_get g pg + 1);
          let tr = t.bb_tr in
          if pg < tr.tr_pg_lo || pg > tr.tr_pg_hi || bb_trc_gens_ok t tr then
            bb_trc_go t b (k + 3) (npc + 8) (npc + 12) (cyc + 1) c0 c1 r0 r1
          else begin
            bb_trace_invalidate t.bb_tr;
            bb_trc_flush t b (k + 3);
            bb_trc_exit t (npc + 8) (npc + 12) (cyc + 1) c0 c1 r0 r1
          end
        end
        else begin
          t.bb_k <- k + 2;
          bb_trc_store_slow t sva sv cyc c0 c1 r0 r1;
          let cyc = t.cycles in
          let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0
          and c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
          if t.halted || t.bb_dev then begin
            t.bb_dev <- false;
            bb_trc_flush t b (k + 3);
            bb_trc_exit t (npc + 8) (npc + 12) (cyc + 1) c0 c1 r0 r1
          end
          else if bb_trc_gens_ok t t.bb_tr then
            bb_trc_go t b (k + 3) (npc + 8) (npc + 12) (cyc + 1) c0 c1 r0 r1
          else begin
            bb_trace_invalidate t.bb_tr;
            bb_trc_flush t b (k + 3);
            bb_trc_exit t (npc + 8) (npc + 12) (cyc + 1) c0 c1 r0 r1
          end
        end
      end
      else begin
        t.bb_k <- k;
        bb_trc_load_slow t rt va cyc c0 c1 r0 r1;
        let cyc = t.cycles in
        let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0
        and c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
        let cyc = cyc + 1 in
              let a2 = if rs2 = r0 then c0 else if rs2 = r1 then c1 else Array.unsafe_get t.regs rs2 in
        let v2 = u32 (a2 + i2) in
        let c0 = if rt2 = r0 then v2 else c0 and c1 = if rt2 = r1 then v2 else c1 in
        if rt2 <> r0 && rt2 <> r1 && rt2 <> 0 then Array.unsafe_set t.regs rt2 v2;
        let cyc = cyc + 1 in
        let sv = if rt3 = r0 then c0 else if rt3 = r1 then c1 else Array.unsafe_get t.regs rt3 in
        let a3 = if base3 = r0 then c0 else if base3 = r1 then c1 else Array.unsafe_get t.regs base3 in
        let sva = u32 (a3 + off3) in
        let spa = tcc.w_frame lor (sva land Addr.page_mask) in
        if
          sva land 3 = 0
          && sva lsr Addr.page_shift = tcc.w_vpn
          && tcc.w_cached
          && spa + 4 <= t.cfg.mem_bytes
          && not (is_device_pa spa)
        then begin
          (* [Write_buffer.store], free-slot case hand-inlined: the ring
             fields are public for exactly this (the call dominated the trace
             store fast path); a full buffer takes the out-of-line stall path *)
          let wb = t.wb in
          while
            wb.Write_buffer.count > 0
            && Array.unsafe_get wb.Write_buffer.ring wb.Write_buffer.head <= cyc
          do
            let ix = wb.Write_buffer.head + 1 in
            wb.Write_buffer.head <-
              (if ix >= wb.Write_buffer.depth then ix - wb.Write_buffer.depth else ix);
            wb.Write_buffer.count <- wb.Write_buffer.count - 1
          done;
          let cyc =
            let cnt = wb.Write_buffer.count in
            if cnt < wb.Write_buffer.depth then begin
              wb.Write_buffer.stores <- wb.Write_buffer.stores + 1;
              let hd = wb.Write_buffer.head and dep = wb.Write_buffer.depth in
              let last =
                if cnt = 0 then cyc
                else
                  Array.unsafe_get wb.Write_buffer.ring
                    (let ix = hd + cnt - 1 in if ix >= dep then ix - dep else ix)
              in
              let retire =
                (if cyc > last then cyc else last) + wb.Write_buffer.drain_cycles
              in
              Array.unsafe_set wb.Write_buffer.ring
                (let ix = hd + cnt in if ix >= dep then ix - dep else ix)
                retire;
              wb.Write_buffer.count <- cnt + 1;
              cyc
            end
            else cyc + Write_buffer.store wb ~now:cyc
          in
          Bytes.set_int32_le t.mem spa (Int32.of_int (sv land 0xFFFFFFFF));
          Bytes.set t.dec_valid (spa lsr 2) '\000';
          let pg = spa lsr Addr.page_shift in
          let g = t.bgen in
          Array.unsafe_set g pg (Array.unsafe_get g pg + 1);
          let tr = t.bb_tr in
          if pg < tr.tr_pg_lo || pg > tr.tr_pg_hi || bb_trc_gens_ok t tr then
            bb_trc_go t b (k + 3) (npc + 8) (npc + 12) (cyc + 1) c0 c1 r0 r1
          else begin
            bb_trace_invalidate t.bb_tr;
            bb_trc_flush t b (k + 3);
            bb_trc_exit t (npc + 8) (npc + 12) (cyc + 1) c0 c1 r0 r1
          end
        end
        else begin
          t.bb_k <- k + 2;
          bb_trc_store_slow t sva sv cyc c0 c1 r0 r1;
          let cyc = t.cycles in
          let c0 = if r0 >= 0 then Array.unsafe_get t.regs r0 else 0
          and c1 = if r1 >= 0 then Array.unsafe_get t.regs r1 else 0 in
          if t.halted || t.bb_dev then begin
            t.bb_dev <- false;
            bb_trc_flush t b (k + 3);
            bb_trc_exit t (npc + 8) (npc + 12) (cyc + 1) c0 c1 r0 r1
          end
          else if bb_trc_gens_ok t t.bb_tr then
            bb_trc_go t b (k + 3) (npc + 8) (npc + 12) (cyc + 1) c0 c1 r0 r1
          else begin
            bb_trace_invalidate t.bb_tr;
            bb_trc_flush t b (k + 3);
            bb_trc_exit t (npc + 8) (npc + 12) (cyc + 1) c0 c1 r0 r1
          end
        end
      end
    | U_j_nop a -> bb_trc_go t b (k + 2) a (a + 4) (cyc + 2) c0 c1 r0 r1
    | U_other _ ->
      (* [trace_eligible] excludes U_other from every trace block *)
      assert false

let exec_block t b ~budget =
  let n = Array.length b.bb_uops in
  let lim = if budget < n then budget else n in
  t.bb_blk <- b;
  t.bb_kf <- 0;
  t.bb_um <- t.status land 0x2 <> 0;
  match
    bb_go t b lim budget 0 b.bb_pa t.pc t.cfg.count_exec (bb_horizon t) (-1)
  with
  | () -> ()
  | exception Trap { code; badva; refill } ->
    t.cycles <- t.cycles + 1;
    let blk = t.bb_blk in
    let k = t.bb_k in
    (* uops [bb_kf, k) completed before the fault; uop k itself is not
       counted, exactly as in step mode *)
    if t.bb_trc then begin
      (* trace pass: fetch hits were batched; the faulting slot's fetch
         did hit (residency was checked up front) even though its
         instruction doesn't count, hence the +1 *)
      t.bb_trc <- false;
      let acc = t.bb_tacc in
      t.bb_tacc <- 0;
      t.icache.Cache.hits <- t.icache.Cache.hits + acc + (k - t.bb_kf) + 1;
      t.bb_kf <- t.bb_kf - acc
    end;
    bb_flush t blk k;
    let cur = blk.bb_va + (k * 4) in
    let in_delay =
      k > 0
      && (match Array.unsafe_get blk.bb_uops (k - 1) with
         | U_beq _ | U_bne _ | U_blez _ | U_bgtz _ | U_bltz _ | U_bgez _
         | U_bc1t _ | U_bc1f _ | U_j _ | U_jal _ | U_jr _ | U_jalr _
         (* a fused [j]+nop that bailed after the jump: the next slot is
            its delay slot *)
         | U_j_nop _ -> true
         | U_other i -> Insn.is_control i
         | _ -> false)
    in
    enter_exception t ~code ~badva ~refill ~cur ~in_delay

(* Block-mode counterpart of [step]: at a block entry the fetch checks run
   once (alignment, translation, bounds), then the cached block replays.
   Replays chain — a block ending in a taken jump whose target starts a
   fresh sequential pc re-enters directly, performing exactly the checks
   the [run]+[step] loop would (poll, interrupt sample, fresh fetch
   translation) without bouncing through [run].  Only called with
   [next_is_delay] false and [budget >= 1]. *)
let bb_step t ~budget =
  if t.npc <> t.pc + 4 then
    (* The harness set pc/npc out of line; the one-instruction path
       handles any pc/npc pair, so let the oracle run it. *)
    step t
  else begin
    let c = t.c in
    let start = c.instructions in
    let rec loop () =
      if t.cycles >= t.next_clock || Disk.next_event t.disk <= t.cycles then
        poll_devices t;
      if interrupt_pending t then
        enter_exception t ~code:Exc.interrupt ~badva:(-1) ~refill:false
          ~cur:t.pc ~in_delay:false
      else begin
        let va = t.pc in
        match
          (if va land 3 <> 0 then trap ~badva:va Exc.adel;
           let pa = translate_i t va ~write:false ~fetch:true in
           if not (phys_ok t pa 4) then trap ~badva:va Exc.adel;
           pa)
        with
        | pa ->
          let cached = t.tr_cached in
          exec_block t
            (bb_lookup t ~va ~pa ~cached)
            ~budget:(budget - (c.instructions - start));
          if
            (not t.halted)
            && (not t.next_is_delay)
            && c.instructions - start < budget
            && t.npc = t.pc + 4
          then loop ()
        | exception Trap { code; badva; refill } ->
          t.cycles <- t.cycles + 1;
          enter_exception t ~code ~badva ~refill ~cur:va ~in_delay:false
      end
    in
    loop ()
  end

type stop_reason = Halt | Limit

let run t ~max_insns =
  let start = t.c.instructions in
  if Uop.bcache_enabled t.cfg.tier then
    let rec go () =
      if t.halted then Halt
      else begin
        let executed = t.c.instructions - start in
        if executed >= max_insns then Limit
        else begin
          (* a pending delay slot (branch target unknown until it runs, or
             a branch straddling a page end) takes the one-instruction
             path *)
          if t.next_is_delay then step t
          else bb_step t ~budget:(max_insns - executed);
          go ()
        end
      end
    in
    go ()
  else
    let rec go () =
      if t.halted then Halt
      else if t.c.instructions - start >= max_insns then Limit
      else begin
        step t;
        go ()
      end
    in
    go ()

let halt t = t.halted <- true

(* ------------------------------------------------------------------ *)
(* Loading and inspection                                              *)

(* Copy an executable into physical memory at [pa_of] applied to its
   segment bases (identity for kernel images loaded via kseg0). *)
let load_exe_phys t (exe : Exe.t) ~text_pa ~data_pa =
  Array.iteri
    (fun idx w -> write_phys_u32 t (text_pa + (idx * 4)) w)
    exe.Exe.text;
  write_phys_bytes t data_pa (Bytes.to_string exe.Exe.data)

let console_contents t = Buffer.contents t.console

let cached_blocks t =
  Array.fold_left
    (fun acc (b : Uop.block) -> if b.bb_pa >= 0 then b :: acc else acc)
    [] t.bcache_tab

let cached_traces t =
  Array.fold_left
    (fun acc (b : Uop.block) ->
      match b.bb_trace with
      | Some tr when b.bb_pa >= 0 && tr.Uop.tr_live -> tr :: acc
      | _ -> acc)
    [] t.bcache_tab

let arith_stalls t = t.fpu.Fpu.arith_stalls
let wb_stalls t = t.wb.Write_buffer.stall_cycles
let icache_misses t = t.icache.Cache.misses
let dcache_misses t = t.dcache.Cache.misses
