(* The simulated machine: CPU interpreter with branch delay slots, CP0
   system coprocessor, TLB, caches, write buffer, FP latency model, and the
   devices (console, line clock, disk).

   This is the "hardware" of the reproduction.  It keeps ground-truth event
   counters (cycles, cache misses, TLB misses, idle-loop instructions) that
   play the role of the paper's direct measurements of the uninstrumented
   DECstation: the validation harness compares these against predictions
   made from software-collected traces.

   Deliberately, nothing in this module knows about tracing: address traces
   are generated purely by instrumented code running on the machine. *)

open Systrace_isa

exception Halted

(* R3000 exception codes. *)
module Exc = struct
  let interrupt = 0
  let tlb_mod = 1
  let tlbl = 2
  let tlbs = 3
  let adel = 4
  let ades = 5
  let syscall = 8
  let breakpoint = 9
  let reserved = 10
end

exception Trap of { code : int; badva : int; refill : bool }

let trap ?(badva = -1) ?(refill = false) code =
  raise (Trap { code; badva; refill })

type config = {
  mem_bytes : int;
  icache_bytes : int;
  icache_line : int;
  dcache_bytes : int;
  dcache_line : int;
  read_miss_penalty : int;     (* cycles per cached read miss *)
  uncached_penalty : int;      (* cycles per uncached access *)
  wb_depth : int;
  wb_drain : int;
  disk_blocks : int;
  disk_seek : int;
  disk_per_block : int;
  count_exec : bool;           (* per-instruction-word execution counts *)
  tcache : bool;               (* last-translation micro-cache *)
}

let default_config =
  {
    mem_bytes = 16 * 1024 * 1024;
    icache_bytes = 16384;
    icache_line = 16;
    dcache_bytes = 16384;
    dcache_line = 4;
    read_miss_penalty = 15;
    uncached_penalty = 15;
    wb_depth = 4;
    wb_drain = 6;
    disk_blocks = 2048;
    disk_seek = 20000;
    disk_per_block = 4000;
    count_exec = false;
    tcache = true;
  }

type counters = {
  mutable instructions : int;
  mutable user_instructions : int;
  mutable kernel_instructions : int;
  mutable idle_instructions : int;
  mutable uncached_ifetches : int;
  mutable uncached_reads : int;
  mutable utlb_misses : int;          (* refill misses on kuseg *)
  mutable ktlb_misses : int;          (* refill misses on kseg2 *)
  mutable tlb_invalid : int;
  mutable tlb_mod : int;
  mutable exceptions : int;
  mutable interrupts : int;
  mutable syscalls : int;
  mutable clock_ticks : int;
}

let fresh_counters () =
  {
    instructions = 0;
    user_instructions = 0;
    kernel_instructions = 0;
    idle_instructions = 0;
    uncached_ifetches = 0;
    uncached_reads = 0;
    utlb_misses = 0;
    ktlb_misses = 0;
    tlb_invalid = 0;
    tlb_mod = 0;
    exceptions = 0;
    interrupts = 0;
    syscalls = 0;
    clock_ticks = 0;
  }

(* Last-translation micro-cache: one (vpn -> page frame) entry per access
   class (fetch / load / store), the way the R3000 pipeline held the last
   TLB match.  Only successful translations are cached, so the exception
   and counter behaviour of the full walk is preserved exactly; the cache
   is flushed on every event that can change a translation (TLB writes,
   CP0 status/mode changes, ASID/context updates). *)
type tcache = {
  mutable f_vpn : int;  mutable f_frame : int;  mutable f_cached : bool;
  mutable r_vpn : int;  mutable r_frame : int;  mutable r_cached : bool;
  mutable w_vpn : int;  mutable w_frame : int;  mutable w_cached : bool;
}

type t = {
  cfg : config;
  mem : Bytes.t;
  (* Decoded-instruction cache: one slot per physical word, invalidated on
     stores. *)
  dec : Insn.t array;
  dec_valid : Bytes.t;
  regs : int array;              (* 32-bit values as 0..2^32-1 *)
  fregs : float array;
  mutable fcc : bool;
  mutable pc : int;
  mutable npc : int;
  mutable next_is_delay : bool;
  (* CP0 *)
  mutable status : int;
  mutable cause : int;
  mutable epc : int;
  mutable badvaddr : int;
  mutable entryhi : int;
  mutable entrylo : int;
  mutable index_reg : int;
  mutable context_base : int;    (* PTEBase, bits 21.. *)
  mutable context_badvpn : int;
  tlb : Tlb.t;
  tc : tcache;
  icache : Cache.t;
  dcache : Cache.t;
  wb : Write_buffer.t;
  fpu : Fpu.t;
  disk : Disk.t;
  mutable clock_interval : int;  (* 0 = disabled *)
  mutable next_clock : int;
  mutable ip : int;              (* pending interrupt lines, bit positions *)
  mutable cycles : int;
  mutable halted : bool;
  console : Buffer.t;
  c : counters;
  mutable idle_lo : int;         (* kernel idle-loop pc range, for ground *)
  mutable idle_hi : int;         (* truth idle instruction counting *)
  mutable hcall_handler : (t -> int -> unit) option;
  exec_counts : int array;       (* per physical word; empty if disabled *)
  (* Set by the harness to observe stores (used by tests). *)
  mutable watchpoint : (int -> int -> unit) option;
  (* Reference tracer: called with (kind, virtual address) for every
     instruction fetch (0), load (1) and store (2).  This is the
     "independently developed CPU simulator" trace the paper validates
     epoxie against (§4.3). *)
  mutable ref_tracer : (int -> int -> unit) option;
}

let create ?(cfg = default_config) () =
  let words = cfg.mem_bytes / 4 in
  {
    cfg;
    mem = Bytes.make cfg.mem_bytes '\000';
    dec = Array.make words Insn.nop;
    dec_valid = Bytes.make words '\000';
    regs = Array.make 32 0;
    fregs = Array.make Reg.nfregs 0.0;
    fcc = false;
    pc = 0;
    npc = 4;
    next_is_delay = false;
    status = 0;
    cause = 0;
    epc = 0;
    badvaddr = 0;
    entryhi = 0;
    entrylo = 0;
    index_reg = 0;
    context_base = 0;
    context_badvpn = 0;
    tlb =
      (let tlb = Tlb.create () in
       Tlb.reset tlb;
       tlb);
    tc =
      {
        f_vpn = -1; f_frame = 0; f_cached = false;
        r_vpn = -1; r_frame = 0; r_cached = false;
        w_vpn = -1; w_frame = 0; w_cached = false;
      };
    icache = Cache.create ~size_bytes:cfg.icache_bytes ~line_bytes:cfg.icache_line;
    dcache = Cache.create ~size_bytes:cfg.dcache_bytes ~line_bytes:cfg.dcache_line;
    wb = Write_buffer.create ~depth:cfg.wb_depth ~drain_cycles:cfg.wb_drain ();
    fpu = Fpu.create ();
    disk =
      Disk.create ~blocks:cfg.disk_blocks ~seek_cycles:cfg.disk_seek
        ~per_block_cycles:cfg.disk_per_block ();
    clock_interval = 0;
    next_clock = max_int;
    ip = 0;
    cycles = 0;
    halted = false;
    console = Buffer.create 256;
    c = fresh_counters ();
    idle_lo = 0;
    idle_hi = 0;
    hcall_handler = None;
    exec_counts = (if cfg.count_exec then Array.make words 0 else [||]);
    watchpoint = None;
    ref_tracer = None;
  }

let ref_trace t kind addr =
  match t.ref_tracer with Some f -> f kind addr | None -> ()

let user_mode t = t.status land 0x2 <> 0
let asid t = (t.entryhi lsr 6) land 0x3F

(* ------------------------------------------------------------------ *)
(* Raw physical memory access (host-side too)                          *)

let phys_ok t pa len = pa >= 0 && pa + len <= t.cfg.mem_bytes

let read_phys_u32 t pa =
  Int32.to_int (Bytes.get_int32_le t.mem pa) land 0xFFFFFFFF

let write_phys_u32 t pa v =
  Bytes.set_int32_le t.mem pa (Int32.of_int (v land 0xFFFFFFFF));
  Bytes.set t.dec_valid (pa lsr 2) '\000'

let read_phys_u16 t pa = Bytes.get_uint16_le t.mem pa
let read_phys_u8 t pa = Bytes.get_uint8 t.mem pa

let write_phys_u16 t pa v =
  Bytes.set_uint16_le t.mem pa (v land 0xFFFF);
  Bytes.set t.dec_valid (pa lsr 2) '\000'

let write_phys_u8 t pa v =
  Bytes.set_uint8 t.mem pa (v land 0xFF);
  Bytes.set t.dec_valid (pa lsr 2) '\000'

let write_phys_bytes t pa s =
  Bytes.blit_string s 0 t.mem pa (String.length s);
  for w = pa lsr 2 to (pa + String.length s - 1) lsr 2 do
    Bytes.set t.dec_valid w '\000'
  done

let read_phys_bytes t pa len = Bytes.sub_string t.mem pa len

(* ------------------------------------------------------------------ *)
(* Address translation                                                 *)

(* Full translation walk: segment checks plus TLB lookup.  Returns
   (pa, cached); raises [Trap] on failure.  This is the micro-cache-free
   oracle the fast [translate] below must agree with. *)
let translate_walk t va ~write:w ~fetch =
  match Addr.segment va with
  | Addr.Kseg0 ->
    if user_mode t then
      trap ~badva:va (if w then Exc.ades else Exc.adel)
    else (Addr.kseg0_pa va, true)
  | Addr.Kseg1 ->
    if user_mode t then
      trap ~badva:va (if w then Exc.ades else Exc.adel)
    else (Addr.kseg1_pa va, false)
  | Addr.Kuseg | Addr.Kseg2 -> (
    if Addr.segment va = Addr.Kseg2 && user_mode t then
      trap ~badva:va (if w then Exc.ades else Exc.adel);
    let vpn = Addr.vpn va in
    match Tlb.lookup t.tlb ~vpn ~asid:(asid t) ~write:w with
    | Tlb.Hit { pfn; noncacheable; _ } ->
      ((pfn lsl Addr.page_shift) lor Addr.page_offset va, not noncacheable)
    | Tlb.Miss ->
      if va < Addr.kuseg_limit then t.c.utlb_misses <- t.c.utlb_misses + 1
      else t.c.ktlb_misses <- t.c.ktlb_misses + 1;
      ignore fetch;
      trap ~badva:va ~refill:true (if w then Exc.tlbs else Exc.tlbl)
    | Tlb.Invalid ->
      t.c.tlb_invalid <- t.c.tlb_invalid + 1;
      trap ~badva:va (if w then Exc.tlbs else Exc.tlbl)
    | Tlb.Modified ->
      t.c.tlb_mod <- t.c.tlb_mod + 1;
      trap ~badva:va Exc.tlb_mod)

let tcache_flush t =
  let tc = t.tc in
  tc.f_vpn <- -1;
  tc.r_vpn <- -1;
  tc.w_vpn <- -1

(* Translation with the last-translation micro-cache in front of the full
   walk: the common in-page access reuses the previous page frame without
   re-checking segment permissions or walking the TLB.  Failed walks trap
   before the cache is filled, so misses, invalid entries and modified
   faults behave (and count) exactly as in [translate_walk]. *)
let translate t va ~write:w ~fetch =
  let tc = t.tc in
  let vpn = va lsr Addr.page_shift in
  if fetch && vpn = tc.f_vpn then
    ((tc.f_frame lor (va land Addr.page_mask)), tc.f_cached)
  else if (not fetch) && (not w) && vpn = tc.r_vpn then
    ((tc.r_frame lor (va land Addr.page_mask)), tc.r_cached)
  else if (not fetch) && w && vpn = tc.w_vpn then
    ((tc.w_frame lor (va land Addr.page_mask)), tc.w_cached)
  else begin
    let pa, cached = translate_walk t va ~write:w ~fetch in
    if t.cfg.tcache then begin
      let frame = pa land lnot Addr.page_mask in
      if fetch then begin
        tc.f_vpn <- vpn; tc.f_frame <- frame; tc.f_cached <- cached
      end
      else if w then begin
        tc.w_vpn <- vpn; tc.w_frame <- frame; tc.w_cached <- cached
      end
      else begin
        tc.r_vpn <- vpn; tc.r_frame <- frame; tc.r_cached <- cached
      end
    end;
    (pa, cached)
  end

(* ------------------------------------------------------------------ *)
(* Devices                                                             *)

let raise_irq t line = t.ip <- t.ip lor (1 lsl line)
let clear_irq t line = t.ip <- t.ip land lnot (1 lsl line)

let disk_refresh_irq t =
  if Disk.has_done t.disk then raise_irq t Addr.irq_disk
  else clear_irq t Addr.irq_disk

let poll_devices t =
  if t.cycles >= t.next_clock then begin
    t.c.clock_ticks <- t.c.clock_ticks + 1;
    raise_irq t Addr.irq_clock;
    t.next_clock <-
      (if t.clock_interval > 0 then t.cycles + t.clock_interval else max_int)
  end;
  if Disk.next_event t.disk <= t.cycles then begin
    let n =
      Disk.poll t.disk ~now:t.cycles ~mem:t.mem ~on_dma:(fun ~paddr ~len ->
          (* DMA'd memory may hold instructions: invalidate decode cache. *)
          for w = paddr lsr 2 to (paddr + len - 1) lsr 2 do
            Bytes.set t.dec_valid w '\000'
          done)
    in
    if n > 0 then disk_refresh_irq t
  end

let device_read t pa =
  let off = pa - Addr.device_base_pa in
  if off = Addr.dev_clock_interval then t.clock_interval
  else if off = Addr.dev_disk_status then (if Disk.busy t.disk then 1 else 0)
  else if off = Addr.dev_disk_done_block then Disk.done_block t.disk land 0xFFFFFFFF
  else if off = Addr.dev_cycle_lo then t.cycles land 0xFFFFFFFF
  else if off = Addr.dev_cycle_hi then (t.cycles lsr 32) land 0xFFFFFFFF
  else 0

let device_write t pa v =
  let off = pa - Addr.device_base_pa in
  if off = Addr.dev_console_tx then Buffer.add_char t.console (Char.chr (v land 0xFF))
  else if off = Addr.dev_clock_interval then begin
    t.clock_interval <- v;
    t.next_clock <- (if v > 0 then t.cycles + v else max_int)
  end
  else if off = Addr.dev_clock_ack then clear_irq t Addr.irq_clock
  else if off = Addr.dev_disk_block then t.disk.Disk.reg_block <- v
  else if off = Addr.dev_disk_addr then t.disk.Disk.reg_addr <- v
  else if off = Addr.dev_disk_count then t.disk.Disk.reg_count <- v
  else if off = Addr.dev_disk_cmd then
    ignore (Disk.submit t.disk ~now:t.cycles ~is_write:(v = 2))
  else if off = Addr.dev_disk_ack then begin
    Disk.ack t.disk;
    disk_refresh_irq t
  end

let is_device_pa pa =
  pa >= Addr.device_base_pa && pa < Addr.device_base_pa + Addr.dev_limit

(* ------------------------------------------------------------------ *)
(* Timed memory access                                                 *)

let load_word_timed t va =
  if va land 3 <> 0 then trap ~badva:va Exc.adel;
  let pa, cached = translate t va ~write:false ~fetch:false in
  if is_device_pa pa then begin
    t.cycles <- t.cycles + t.cfg.uncached_penalty;
    t.c.uncached_reads <- t.c.uncached_reads + 1;
    device_read t pa
  end
  else begin
    if not (phys_ok t pa 4) then trap ~badva:va Exc.adel;
    if cached then begin
      if not (Cache.read t.dcache pa) then
        t.cycles <- t.cycles + t.cfg.read_miss_penalty
    end
    else begin
      t.c.uncached_reads <- t.c.uncached_reads + 1;
      t.cycles <- t.cycles + t.cfg.uncached_penalty
    end;
    read_phys_u32 t pa
  end

let load_timed t va bytes =
  match bytes with
  | 4 -> load_word_timed t va
  | 2 ->
    if va land 1 <> 0 then trap ~badva:va Exc.adel;
    let pa, cached = translate t va ~write:false ~fetch:false in
    if not (phys_ok t pa 2) then trap ~badva:va Exc.adel;
    if cached then begin
      if not (Cache.read t.dcache pa) then
        t.cycles <- t.cycles + t.cfg.read_miss_penalty
    end
    else begin
      t.c.uncached_reads <- t.c.uncached_reads + 1;
      t.cycles <- t.cycles + t.cfg.uncached_penalty
    end;
    read_phys_u16 t pa
  | 1 ->
    let pa, cached = translate t va ~write:false ~fetch:false in
    if not (phys_ok t pa 1) then trap ~badva:va Exc.adel;
    if cached then begin
      if not (Cache.read t.dcache pa) then
        t.cycles <- t.cycles + t.cfg.read_miss_penalty
    end
    else begin
      t.c.uncached_reads <- t.c.uncached_reads + 1;
      t.cycles <- t.cycles + t.cfg.uncached_penalty
    end;
    read_phys_u8 t pa
  | _ -> assert false

let store_timed t va bytes v =
  (match bytes with
  | 4 -> if va land 3 <> 0 then trap ~badva:va Exc.ades
  | 2 -> if va land 1 <> 0 then trap ~badva:va Exc.ades
  | _ -> ());
  let pa, cached = translate t va ~write:true ~fetch:false in
  if is_device_pa pa then begin
    t.cycles <- t.cycles + t.cfg.uncached_penalty;
    device_write t pa v
  end
  else begin
    if not (phys_ok t pa bytes) then trap ~badva:va Exc.ades;
    if cached then ignore (Cache.write t.dcache pa);
    t.cycles <- t.cycles + Write_buffer.store t.wb ~now:t.cycles;
    (match bytes with
    | 4 -> write_phys_u32 t pa v
    | 2 -> write_phys_u16 t pa v
    | 1 -> write_phys_u8 t pa v
    | _ -> assert false);
    match t.watchpoint with Some f -> f va v | None -> ()
  end

let load_double_timed t va =
  if va land 7 <> 0 then trap ~badva:va Exc.adel;
  let pa, cached = translate t va ~write:false ~fetch:false in
  if not (phys_ok t pa 8) then trap ~badva:va Exc.adel;
  if cached then begin
    if not (Cache.read t.dcache pa) then
      t.cycles <- t.cycles + t.cfg.read_miss_penalty
  end
  else begin
    t.c.uncached_reads <- t.c.uncached_reads + 1;
    t.cycles <- t.cycles + t.cfg.uncached_penalty
  end;
  Int64.float_of_bits (Bytes.get_int64_le t.mem pa)

let store_double_timed t va f =
  if va land 7 <> 0 then trap ~badva:va Exc.ades;
  let pa, cached = translate t va ~write:true ~fetch:false in
  if not (phys_ok t pa 8) then trap ~badva:va Exc.ades;
  if cached then ignore (Cache.write t.dcache pa);
  (* A double store occupies two write-buffer slots. *)
  t.cycles <- t.cycles + Write_buffer.store t.wb ~now:t.cycles;
  t.cycles <- t.cycles + Write_buffer.store t.wb ~now:t.cycles;
  Bytes.set_int64_le t.mem pa (Int64.bits_of_float f);
  Bytes.set t.dec_valid (pa lsr 2) '\000';
  Bytes.set t.dec_valid ((pa lsr 2) + 1) '\000'

(* Instruction fetch with decode caching. *)
let fetch_timed t va =
  if va land 3 <> 0 then trap ~badva:va Exc.adel;
  let pa, cached = translate t va ~write:false ~fetch:true in
  if not (phys_ok t pa 4) then trap ~badva:va Exc.adel;
  if cached then begin
    if not (Cache.read t.icache pa) then
      t.cycles <- t.cycles + t.cfg.read_miss_penalty
  end
  else begin
    t.c.uncached_ifetches <- t.c.uncached_ifetches + 1;
    t.cycles <- t.cycles + t.cfg.uncached_penalty
  end;
  let w = pa lsr 2 in
  if Bytes.get t.dec_valid w = '\001' then t.dec.(w)
  else begin
    let insn = Encode.decode ~pc:va (read_phys_u32 t pa) in
    t.dec.(w) <- insn;
    Bytes.set t.dec_valid w '\001';
    insn
  end

(* ------------------------------------------------------------------ *)
(* 32-bit arithmetic helpers                                           *)

let u32 v = v land 0xFFFFFFFF
let s32 v = let v = u32 v in if v >= 0x80000000 then v - 0x100000000 else v

(* ------------------------------------------------------------------ *)
(* Exception entry                                                     *)

let enter_exception t ~code ~badva ~refill ~cur ~in_delay =
  t.c.exceptions <- t.c.exceptions + 1;
  if code = Exc.interrupt then t.c.interrupts <- t.c.interrupts + 1;
  if code = Exc.syscall then t.c.syscalls <- t.c.syscalls + 1;
  t.epc <- (if in_delay then cur - 4 else cur);
  t.cause <-
    (code lsl 2)
    lor (if in_delay then 0x80000000 else 0)
    lor (t.ip lsl 8 land 0xFF00);
  if badva >= 0 then begin
    t.badvaddr <- badva;
    if code = Exc.tlbl || code = Exc.tlbs || code = Exc.tlb_mod then begin
      t.entryhi <-
        Tlb.make_entryhi ~vpn:(Addr.vpn badva) ~asid:(asid t);
      t.context_badvpn <- Addr.vpn badva
    end
  end;
  (* Push the KU/IE stack: old <- prev <- current <- (kernel, disabled). *)
  t.status <- (t.status land lnot 0x3F) lor ((t.status lsl 2) land 0x3C);
  let vector =
    if refill && badva >= 0 && badva < Addr.kuseg_limit then Addr.utlb_vector
    else Addr.general_vector
  in
  t.pc <- vector;
  t.npc <- vector + 4;
  t.next_is_delay <- false;
  (* Status and EntryHi both changed above. *)
  tcache_flush t

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)

let reg_get t r = t.regs.(r)
let reg_set t r v = if r <> 0 then t.regs.(r) <- u32 v

let exec_alu t op rd rs rt =
  let a = reg_get t rs and b = reg_get t rt in
  let v =
    match (op : Insn.alu) with
    | ADD | ADDU -> a + b
    | SUB | SUBU -> a - b
    | AND -> a land b
    | OR -> a lor b
    | XOR -> a lxor b
    | NOR -> lnot (a lor b)
    | SLT -> if s32 a < s32 b then 1 else 0
    | SLTU -> if a < b then 1 else 0
    | SLLV -> a lsl (b land 31)
    | SRLV -> a lsr (b land 31)
    | SRAV -> s32 a asr (b land 31)
    | MUL -> s32 a * s32 b
    | MULH ->
      Int64.to_int
        (Int64.shift_right
           (Int64.mul (Int64.of_int (s32 a)) (Int64.of_int (s32 b)))
           32)
    | DIV -> if s32 b = 0 then 0 else s32 a / s32 b
    | REM -> if s32 b = 0 then 0 else Stdlib.Int.rem (s32 a) (s32 b)
  in
  reg_set t rd v

let exec_alui t op rt rs imm =
  let a = reg_get t rs in
  let v =
    match (op : Insn.alui) with
    | ADDI | ADDIU -> a + imm
    | SLTI -> if s32 a < imm then 1 else 0
    | SLTIU -> if a < u32 imm then 1 else 0
    | ANDI -> a land imm
    | ORI -> a lor imm
    | XORI -> a lxor imm
  in
  reg_set t rt v

let cp0_read t (c : Insn.cp0) =
  match c with
  | C0_index -> t.index_reg
  | C0_random -> Tlb.random_index ~cycle:t.cycles lsl 8
  | C0_entrylo -> t.entrylo
  | C0_context ->
    (t.context_base land 0xFFE00000) lor ((t.context_badvpn lsl 2) land 0x1FFFFC)
  | C0_badvaddr -> t.badvaddr
  | C0_count -> t.cycles land 0xFFFFFFFF
  | C0_entryhi -> t.entryhi
  | C0_status -> t.status
  | C0_cause -> (t.cause land lnot 0xFF00) lor ((t.ip lsl 8) land 0xFF00)
  | C0_epc -> t.epc
  | C0_prid -> 0x0230 (* R3000-ish *)

let cp0_write t (c : Insn.cp0) v =
  match c with
  | C0_index -> t.index_reg <- v land 0x3F00
  | C0_random -> ()
  | C0_entrylo -> t.entrylo <- v
  | C0_context ->
    t.context_base <- v land 0xFFE00000;
    tcache_flush t
  | C0_badvaddr -> ()
  | C0_count -> ()
  | C0_entryhi ->
    (* ASID lives here: a change retargets every mapped translation. *)
    t.entryhi <- v;
    tcache_flush t
  | C0_status ->
    (* KU/IE bits gate segment permissions. *)
    t.status <- v;
    tcache_flush t
  | C0_cause -> t.cause <- v
  | C0_epc -> t.epc <- v
  | C0_prid -> ()

let privileged t =
  if user_mode t then trap Exc.reserved

let exec t cur insn =
  let target = function
    | Insn.Abs a -> a
    | Insn.Sym s -> failwith ("unresolved symbol at runtime: " ^ s)
  in
  let imm_value = function
    | Insn.Imm n -> n
    | Insn.Lo s | Insn.Hi s ->
      failwith ("unresolved immediate at runtime: " ^ s)
  in
  let branch cond tgt =
    t.next_is_delay <- true;
    if cond then t.npc <- target tgt
  in
  match (insn : Insn.t) with
  | Alu (op, rd, rs, rt) -> exec_alu t op rd rs rt
  | Alui (op, rt, rs, imm) -> exec_alui t op rt rs (imm_value imm)
  | Shift (op, rd, rt, sa) ->
    let v = reg_get t rt in
    reg_set t rd
      (match op with
      | SLL -> v lsl sa
      | SRL -> v lsr sa
      | SRA -> s32 v asr sa)
  | Lui (rt, imm) -> reg_set t rt (imm_value imm lsl 16)
  | Load (w, rt, base, off) ->
    let va = u32 (reg_get t base + imm_value off) in
    let v =
      match w with
      | W -> load_timed t va 4
      | H ->
        let v = load_timed t va 2 in
        if v >= 0x8000 then v - 0x10000 else v
      | HU -> load_timed t va 2
      | B ->
        let v = load_timed t va 1 in
        if v >= 0x80 then v - 0x100 else v
      | BU -> load_timed t va 1
    in
    ref_trace t 1 va;
    reg_set t rt v
  | Store (w, rt, base, off) ->
    let va = u32 (reg_get t base + imm_value off) in
    let bytes = match w with W -> 4 | H | HU -> 2 | B | BU -> 1 in
    store_timed t va bytes (reg_get t rt);
    ref_trace t 2 va
  | Fload (ft, base, off) ->
    let va = u32 (reg_get t base + imm_value off) in
    let v = load_double_timed t va in
    ref_trace t 1 va;
    t.fregs.(ft) <- v;
    Fpu.set_ready t.fpu ~now:t.cycles ft
  | Fstore (ft, base, off) ->
    let va = u32 (reg_get t base + imm_value off) in
    t.cycles <- t.cycles + Fpu.wait_regs t.fpu ~now:t.cycles [ ft ];
    store_double_timed t va t.fregs.(ft);
    ref_trace t 2 va
  | Beq (rs, rt, tg) -> branch (reg_get t rs = reg_get t rt) tg
  | Bne (rs, rt, tg) -> branch (reg_get t rs <> reg_get t rt) tg
  | Blez (rs, tg) -> branch (s32 (reg_get t rs) <= 0) tg
  | Bgtz (rs, tg) -> branch (s32 (reg_get t rs) > 0) tg
  | Bltz (rs, tg) -> branch (s32 (reg_get t rs) < 0) tg
  | Bgez (rs, tg) -> branch (s32 (reg_get t rs) >= 0) tg
  | J tg -> branch true tg
  | Jal tg ->
    reg_set t Reg.ra (cur + 8);
    branch true tg
  | Jr rs ->
    t.next_is_delay <- true;
    t.npc <- reg_get t rs
  | Jalr (rd, rs) ->
    let dest = reg_get t rs in
    reg_set t rd (cur + 8);
    t.next_is_delay <- true;
    t.npc <- dest
  | Syscall -> trap Exc.syscall
  | Break _ -> trap Exc.breakpoint
  | Mfc0 (rt, c) ->
    privileged t;
    reg_set t rt (cp0_read t c)
  | Mtc0 (rt, c) ->
    privileged t;
    cp0_write t c (reg_get t rt)
  | Tlbr ->
    privileged t;
    let hi, lo = Tlb.read t.tlb ((t.index_reg lsr 8) land 0x3F) in
    t.entryhi <- hi;
    t.entrylo <- lo
  | Tlbwi ->
    privileged t;
    Tlb.write t.tlb ((t.index_reg lsr 8) land 0x3F) ~hi:t.entryhi ~lo:t.entrylo;
    tcache_flush t
  | Tlbwr ->
    privileged t;
    Tlb.write t.tlb (Tlb.random_index ~cycle:t.cycles) ~hi:t.entryhi
      ~lo:t.entrylo;
    tcache_flush t
  | Tlbp ->
    privileged t;
    (match
       Tlb.probe t.tlb ~vpn:(t.entryhi lsr 12) ~asid:((t.entryhi lsr 6) land 0x3F)
     with
    | Some k -> t.index_reg <- k lsl 8
    | None -> t.index_reg <- 0x80000000)
  | Rfe ->
    privileged t;
    t.status <- (t.status land lnot 0xF) lor ((t.status lsr 2) land 0xF);
    tcache_flush t
  | Mfc1 (rt, fs) ->
    t.cycles <- t.cycles + Fpu.wait_regs t.fpu ~now:t.cycles [ fs ];
    reg_set t rt (int_of_float t.fregs.(fs))
  | Mtc1 (rt, fs) ->
    t.fregs.(fs) <- float_of_int (s32 (reg_get t rt));
    Fpu.set_ready t.fpu ~now:t.cycles fs
  | Fop (op, fd, fs, ft) ->
    let srcs = match op with FADD | FSUB | FMUL | FDIV -> [ fs; ft ] | _ -> [ fs ] in
    t.cycles <- t.cycles + Fpu.wait_regs t.fpu ~now:t.cycles srcs;
    t.cycles <- t.cycles + Fpu.issue t.fpu ~now:t.cycles ~op ~dst:fd;
    let a = t.fregs.(fs) and b = t.fregs.(ft) in
    t.fregs.(fd) <-
      (match op with
      | FADD -> a +. b
      | FSUB -> a -. b
      | FMUL -> a *. b
      | FDIV -> a /. b
      | FABS -> abs_float a
      | FNEG -> -.a
      | FMOV -> a
      | CVTDW -> a
      | TRUNCWD -> Float.of_int (int_of_float a))
  | Fcmp (c, fs, ft) ->
    t.cycles <- t.cycles + Fpu.wait_regs t.fpu ~now:t.cycles [ fs; ft ];
    t.cycles <- t.cycles + Fpu.issue_compare t.fpu ~now:t.cycles;
    let a = t.fregs.(fs) and b = t.fregs.(ft) in
    t.fcc <- (match c with FEQ -> a = b | FLT -> a < b | FLE -> a <= b)
  | Bc1t tg -> branch t.fcc tg
  | Bc1f tg -> branch (not t.fcc) tg
  | Cache (op, base, off) ->
    privileged t;
    let va = u32 (reg_get t base + imm_value off) in
    let pa, _ = translate t va ~write:false ~fetch:false in
    if op = 0 then Cache.invalidate t.icache pa
    else Cache.invalidate t.dcache pa
  | Hcall code -> (
    privileged t;
    match t.hcall_handler with
    | Some f -> f t code
    | None -> failwith (Printf.sprintf "hcall %d with no handler" code))

(* ------------------------------------------------------------------ *)
(* Stepping                                                            *)

let interrupt_pending t =
  t.status land 1 <> 0 && t.ip land ((t.status lsr 8) land 0xFF) <> 0

let step t =
  if t.halted then raise Halted;
  poll_devices t;
  if (not t.next_is_delay) && interrupt_pending t then
    enter_exception t ~code:Exc.interrupt ~badva:(-1) ~refill:false ~cur:t.pc
      ~in_delay:false
  else begin
    let cur = t.pc in
    let in_delay = t.next_is_delay in
    match fetch_timed t cur with
    | insn ->
      ref_trace t 0 cur;
      t.next_is_delay <- false;
      t.pc <- t.npc;
      t.npc <- t.npc + 4;
      (try
         exec t cur insn;
         t.cycles <- t.cycles + 1;
         t.c.instructions <- t.c.instructions + 1;
         if user_mode t then
           t.c.user_instructions <- t.c.user_instructions + 1
         else begin
           t.c.kernel_instructions <- t.c.kernel_instructions + 1;
           if cur >= t.idle_lo && cur < t.idle_hi then
             t.c.idle_instructions <- t.c.idle_instructions + 1
         end;
         if t.cfg.count_exec then begin
           (* Count by physical word so kernel and user text both work. *)
           match translate t cur ~write:false ~fetch:true with
           | pa, _ when pa lsr 2 < Array.length t.exec_counts ->
             t.exec_counts.(pa lsr 2) <- t.exec_counts.(pa lsr 2) + 1
           | _ -> ()
           | exception Trap _ -> ()
         end
       with Trap { code; badva; refill } ->
         (* The faulting instruction consumed a cycle. *)
         t.cycles <- t.cycles + 1;
         enter_exception t ~code ~badva ~refill ~cur ~in_delay)
    | exception Trap { code; badva; refill } ->
      t.cycles <- t.cycles + 1;
      enter_exception t ~code ~badva ~refill ~cur ~in_delay
  end

type stop_reason = Halt | Limit

let run t ~max_insns =
  let start = t.c.instructions in
  let rec go () =
    if t.halted then Halt
    else if t.c.instructions - start >= max_insns then Limit
    else begin
      step t;
      go ()
    end
  in
  go ()

let halt t = t.halted <- true

(* ------------------------------------------------------------------ *)
(* Loading and inspection                                              *)

(* Copy an executable into physical memory at [pa_of] applied to its
   segment bases (identity for kernel images loaded via kseg0). *)
let load_exe_phys t (exe : Exe.t) ~text_pa ~data_pa =
  Array.iteri
    (fun idx w -> write_phys_u32 t (text_pa + (idx * 4)) w)
    exe.Exe.text;
  write_phys_bytes t data_pa (Bytes.to_string exe.Exe.data)

let console_contents t = Buffer.contents t.console

let arith_stalls t = t.fpu.Fpu.arith_stalls
let wb_stalls t = t.wb.Write_buffer.stall_cycles
let icache_misses t = t.icache.Cache.misses
let dcache_misses t = t.dcache.Cache.misses
