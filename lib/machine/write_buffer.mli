(** The machine's 4-entry write buffer: entries retire to memory in order,
    one per [drain_cycles]; a store with all entries occupied stalls the
    CPU.  Retirement times are absolute cycles, so drains naturally
    overlap with FP latency in the machine model — the overlap the
    trace-driven predictor deliberately lacks. *)

type t = {
  depth : int;
  drain_cycles : int;
  ring : int array;            (** absolute retire cycles, ascending *)
  mutable head : int;          (** index of the oldest entry *)
  mutable count : int;
  mutable stall_cycles : int;
  mutable stores : int;
}

val create : ?depth:int -> ?drain_cycles:int -> unit -> t
val reset : t -> unit

val store : t -> now:int -> int
(** Issue a store at absolute cycle [now]; returns the stall suffered. *)

val drain_time : t -> now:int -> int
val pending : t -> now:int -> int
