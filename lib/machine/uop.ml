(* The uop IR of the execution engine: decode-to-uop lowering, block
   formation, superblock peephole fusion, tier selection, and the
   per-page store-generation invalidation contract.  See uop.mli for the
   contracts; Machine owns the architectural state and the replay loop. *)

open Systrace_isa

type tier = Step | Tcache | Bcache | Super

let all_tiers = [ Step; Tcache; Bcache; Super ]

let tier_name = function
  | Step -> "step"
  | Tcache -> "tcache"
  | Bcache -> "bcache"
  | Super -> "super"

let tier_of_string = function
  | "step" -> Some Step
  | "tcache" -> Some Tcache
  | "bcache" -> Some Bcache
  | "super" -> Some Super
  | _ -> None

let tcache_enabled = function Step -> false | Tcache | Bcache | Super -> true
let bcache_enabled = function Step | Tcache -> false | Bcache | Super -> true
let fusion_enabled = function Step | Tcache | Bcache -> false | Super -> true

(* Pre-decoded instruction for the basic-block execution cache: operands
   are resolved to plain ints at block-build time (immediates applied,
   branch targets absolute) and dispatch is one flat match, so replaying
   a block does no decode-cache probing and allocates nothing.
   DESIGN.md §5e records the micro-bench against the closure-threaded
   alternative; §5h the fused constructors.  Anything without a
   specialised executor falls back to [U_other] and the full interpreter
   dispatch. *)
type t =
  | U_alu of Insn.alu * int * int * int    (* rd, rs, rt *)
  | U_alui of Insn.alui * int * int * int  (* rt, rs, imm *)
  | U_shift of Insn.shift * int * int * int
  | U_lui of int * int
  | U_lw of int * int * int                (* rt, base, off *)
  | U_lh of int * int * int
  | U_lhu of int * int * int
  | U_lb of int * int * int
  | U_lbu of int * int * int
  | U_sw of int * int * int
  | U_sh of int * int * int
  | U_sb of int * int * int
  | U_beq of int * int * int               (* rs, rt, absolute target *)
  | U_bne of int * int * int
  | U_blez of int * int
  | U_bgtz of int * int
  | U_bltz of int * int
  | U_bgez of int * int
  | U_bc1t of int
  | U_bc1f of int
  | U_j of int
  | U_jal of int
  | U_jr of int
  | U_jalr of int * int
  | U_li of int * int
  | U_addiu2 of int * int * int * int * int * int
  | U_slt_b of bool * int * int * int * bool * int
  | U_lw_addiu of int * int * int * int * int * int
  | U_lmw of int * int * int * int * int * int * int * int * int
  | U_j_nop of int
  | U_other of Insn.t                      (* full interpreter dispatch *)

let of_insn (insn : Insn.t) : t =
  match insn with
  | Alu (op, rd, rs, rt) -> U_alu (op, rd, rs, rt)
  | Alui (op, rt, rs, Imm imm) -> U_alui (op, rt, rs, imm)
  | Shift (op, rd, rt, sa) -> U_shift (op, rd, rt, sa)
  | Lui (rt, Imm imm) -> U_lui (rt, imm)
  | Load (W, rt, base, Imm off) -> U_lw (rt, base, off)
  | Load (H, rt, base, Imm off) -> U_lh (rt, base, off)
  | Load (HU, rt, base, Imm off) -> U_lhu (rt, base, off)
  | Load (B, rt, base, Imm off) -> U_lb (rt, base, off)
  | Load (BU, rt, base, Imm off) -> U_lbu (rt, base, off)
  | Store (W, rt, base, Imm off) -> U_sw (rt, base, off)
  | Store ((H | HU), rt, base, Imm off) -> U_sh (rt, base, off)
  | Store ((B | BU), rt, base, Imm off) -> U_sb (rt, base, off)
  | Beq (rs, rt, Abs a) -> U_beq (rs, rt, a)
  | Bne (rs, rt, Abs a) -> U_bne (rs, rt, a)
  | Blez (rs, Abs a) -> U_blez (rs, a)
  | Bgtz (rs, Abs a) -> U_bgtz (rs, a)
  | Bltz (rs, Abs a) -> U_bltz (rs, a)
  | Bgez (rs, Abs a) -> U_bgez (rs, a)
  | Bc1t (Abs a) -> U_bc1t a
  | Bc1f (Abs a) -> U_bc1f a
  | J (Abs a) -> U_j a
  | Jal (Abs a) -> U_jal a
  | Jr rs -> U_jr rs
  | Jalr (rd, rs) -> U_jalr (rd, rs)
  | _ -> U_other insn

(* Instructions that can change fetch semantics for their successors
   (mode, ASID, TLB contents, arbitrary host effects) end a block, so the
   next instruction re-enters through a fresh translation.  [Tlbp] and
   [Mfc0] only write the index register / a GPR; [Cache] only changes
   timing, which is already charged per instruction. *)
let barrier (insn : Insn.t) =
  match insn with
  | Syscall | Break _ | Mtc0 _ | Tlbr | Tlbwi | Tlbwr | Rfe | Hcall _ -> true
  | _ -> false

let width = function
  | U_lmw _ -> 3
  | U_li _ | U_addiu2 _ | U_slt_b _ | U_lw_addiu _ | U_j_nop _ -> 2
  | _ -> 1

let is_fused u = width u > 1

(* Greedy left-to-right peephole pass, widest pattern first at each slot.
   A fused constructor replaces the slot of its first instruction; the
   covered slots keep their scalar originals so replay can resume there
   after executing only a prefix of a fused run.

   The structural invariants (qcheck-enforced in test_machine):
   - a store only appears as the final element ([U_lmw]), so no fused
     run crosses a store-generation bump;
   - a branch only as the final element ([U_slt_b]) or with its own
     empty delay slot ([U_j_nop]);
   - never a barrier or [U_other] (none of the patterns match one);
   - runs never overlap (the scan advances by the fused width).

   A delay slot can never be silently swallowed: a slot is a delay slot
   only when the previous slot is a control transfer, and no pattern has
   a control transfer in a non-final position except [U_j_nop], which
   exists to cover exactly its own nop delay slot. *)
let fuse (uops : t array) : t array =
  let n = Array.length uops in
  let out = Array.copy uops in
  let i = ref 0 in
  while !i + 1 < n do
    let w =
      match (uops.(!i), uops.(!i + 1)) with
      | U_lw (rt, base, off), U_alui (Insn.ADDIU, rt2, rs2, i2) ->
        (match if !i + 2 < n then uops.(!i + 2) else U_other Insn.nop with
        | U_sw (rt3, base3, off3) ->
          out.(!i) <- U_lmw (rt, base, off, rt2, rs2, i2, rt3, base3, off3);
          3
        | _ ->
          out.(!i) <- U_lw_addiu (rt, base, off, rt2, rs2, i2);
          2)
      | U_lui (rt, hi), U_alui (Insn.ORI, rt2, rs2, lo)
        when rt <> 0 && rt2 = rt && rs2 = rt ->
        out.(!i) <- U_li (rt, ((hi lsl 16) lor (lo land 0xFFFF)) land 0xFFFFFFFF);
        2
      | U_alui (Insn.ADDIU, rt1, rs1, i1), U_alui (Insn.ADDIU, rt2, rs2, i2) ->
        out.(!i) <- U_addiu2 (rt1, rs1, i1, rt2, rs2, i2);
        2
      | U_alu ((Insn.SLT | Insn.SLTU) as op, rd, rs, rt), U_bne (bs, 0, tgt)
        when rd <> 0 && bs = rd ->
        out.(!i) <- U_slt_b (op = Insn.SLTU, rd, rs, rt, true, tgt);
        2
      | U_alu ((Insn.SLT | Insn.SLTU) as op, rd, rs, rt), U_beq (bs, 0, tgt)
        when rd <> 0 && bs = rd ->
        out.(!i) <- U_slt_b (op = Insn.SLTU, rd, rs, rt, false, tgt);
        2
      | U_j tgt, U_shift (Insn.SLL, 0, 0, 0) ->
        out.(!i) <- U_j_nop tgt;
        2
      | _ -> 1
    in
    i := !i + w
  done;
  out

(* ------------------------------------------------------------------ *)
(* Blocks                                                              *)

type block = {
  bb_pa : int;
  bb_va : int;
  bb_cached : bool;
  bb_gen : int;
  bb_uops : t array;
  mutable bb_next : block;
}

let rec dummy_block =
  {
    bb_pa = -1;
    bb_va = -1;
    bb_cached = false;
    bb_gen = -1;
    bb_uops = [||];
    bb_next = dummy_block;
  }

let max_block_insns = 256

let build ~decode ~va ~pa ~cached ~gen ~fuse:do_fuse =
  let max_words =
    let to_page_end = ((Addr.page_mask - (pa land Addr.page_mask)) lsr 2) + 1 in
    if to_page_end < max_block_insns then to_page_end else max_block_insns
  in
  let buf = Array.make max_words (U_other Insn.nop) in
  let n = ref 0 in
  let in_delay = ref false in
  let stop = ref false in
  while (not !stop) && !n < max_words do
    match decode ~va:(va + (!n * 4)) ~pa:(pa + (!n * 4)) with
    | insn ->
      buf.(!n) <- of_insn insn;
      incr n;
      if !in_delay then stop := true
      else if Insn.is_control insn then in_delay := true
      else if barrier insn then stop := true
    | exception e ->
      (* Decode failure past the entry word: end the block before it, so
         the bad word raises exactly when step-at-a-time would reach
         it.  At the entry word itself, raise now — [step] would too. *)
      if !n = 0 then raise e;
      stop := true
  done;
  let uops = if !n = max_words then buf else Array.sub buf 0 !n in
  (* Cacheability specialization: fused bodies assume a cached fetch
     mapping, so only cacheable text is ever fused. *)
  let uops = if do_fuse && cached then fuse uops else uops in
  {
    bb_pa = pa;
    bb_va = va;
    bb_cached = cached;
    bb_gen = gen;
    bb_uops = uops;
    bb_next = dummy_block;
  }

(* ------------------------------------------------------------------ *)
(* Store-generation invalidation (see the mli for the contract)        *)

module Gens = struct
  type t = int array

  let create ~mem_bytes =
    Array.make (max 1 ((mem_bytes + Addr.page_mask) lsr Addr.page_shift)) 0

  let bump (g : t) pa =
    let p = pa lsr Addr.page_shift in
    g.(p) <- g.(p) + 1

  let bump_range (g : t) pa len =
    if len > 0 then
      for p = pa lsr Addr.page_shift to (pa + len - 1) lsr Addr.page_shift do
        g.(p) <- g.(p) + 1
      done

  let get (g : t) pa = g.(pa lsr Addr.page_shift)
end
