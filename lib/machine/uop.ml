(* The uop IR of the execution engine: decode-to-uop lowering, block
   formation, superblock peephole fusion, tier selection, and the
   per-page store-generation invalidation contract.  See uop.mli for the
   contracts; Machine owns the architectural state and the replay loop. *)

open Systrace_isa

type tier = Step | Tcache | Bcache | Super | Trace

let all_tiers = [ Step; Tcache; Bcache; Super; Trace ]

let tier_name = function
  | Step -> "step"
  | Tcache -> "tcache"
  | Bcache -> "bcache"
  | Super -> "super"
  | Trace -> "trace"

let tier_of_string = function
  | "step" -> Some Step
  | "tcache" -> Some Tcache
  | "bcache" -> Some Bcache
  | "super" -> Some Super
  | "trace" -> Some Trace
  | _ -> None

let tcache_enabled = function
  | Step -> false
  | Tcache | Bcache | Super | Trace -> true

let bcache_enabled = function
  | Step | Tcache -> false
  | Bcache | Super | Trace -> true

let fusion_enabled = function
  | Step | Tcache | Bcache -> false
  | Super | Trace -> true

let trace_enabled = function
  | Step | Tcache | Bcache | Super -> false
  | Trace -> true

(* CLI tier resolution, shared with the deprecated [--no-bcache] alias.
   Combining the alias with an explicit tier used to resolve silently in
   favour of [--interp-tier]; now it is a hard error, so scripts cannot
   keep passing both and believe the alias still means something. *)
let tier_of_cli ~tier ~no_bcache =
  match (tier, no_bcache) with
  | Some _, true ->
    Error
      "--no-bcache is a deprecated alias for --interp-tier tcache and \
       cannot be combined with an explicit --interp-tier"
  | Some t, false -> Ok t
  | None, true -> Ok Tcache
  | None, false -> Ok Super

(* Pre-decoded instruction for the basic-block execution cache: operands
   are resolved to plain ints at block-build time (immediates applied,
   branch targets absolute) and dispatch is one flat match, so replaying
   a block does no decode-cache probing and allocates nothing.
   DESIGN.md §5e records the micro-bench against the closure-threaded
   alternative; §5h the fused constructors.  Anything without a
   specialised executor falls back to [U_other] and the full interpreter
   dispatch. *)
type t =
  | U_alu of Insn.alu * int * int * int    (* rd, rs, rt *)
  | U_alui of Insn.alui * int * int * int  (* rt, rs, imm *)
  | U_shift of Insn.shift * int * int * int
  | U_lui of int * int
  | U_lw of int * int * int                (* rt, base, off *)
  | U_lh of int * int * int
  | U_lhu of int * int * int
  | U_lb of int * int * int
  | U_lbu of int * int * int
  | U_sw of int * int * int
  | U_sh of int * int * int
  | U_sb of int * int * int
  | U_beq of int * int * int               (* rs, rt, absolute target *)
  | U_bne of int * int * int
  | U_blez of int * int
  | U_bgtz of int * int
  | U_bltz of int * int
  | U_bgez of int * int
  | U_bc1t of int
  | U_bc1f of int
  | U_j of int
  | U_jal of int
  | U_jr of int
  | U_jalr of int * int
  | U_li of int * int
  | U_addiu2 of int * int * int * int * int * int
  | U_slt_b of bool * int * int * int * bool * int
  | U_lw_addiu of int * int * int * int * int * int
  | U_lmw of int * int * int * int * int * int * int * int * int
  | U_j_nop of int
  | U_other of Insn.t                      (* full interpreter dispatch *)

let of_insn (insn : Insn.t) : t =
  match insn with
  | Alu (op, rd, rs, rt) -> U_alu (op, rd, rs, rt)
  | Alui (op, rt, rs, Imm imm) -> U_alui (op, rt, rs, imm)
  | Shift (op, rd, rt, sa) -> U_shift (op, rd, rt, sa)
  | Lui (rt, Imm imm) -> U_lui (rt, imm)
  | Load (W, rt, base, Imm off) -> U_lw (rt, base, off)
  | Load (H, rt, base, Imm off) -> U_lh (rt, base, off)
  | Load (HU, rt, base, Imm off) -> U_lhu (rt, base, off)
  | Load (B, rt, base, Imm off) -> U_lb (rt, base, off)
  | Load (BU, rt, base, Imm off) -> U_lbu (rt, base, off)
  | Store (W, rt, base, Imm off) -> U_sw (rt, base, off)
  | Store ((H | HU), rt, base, Imm off) -> U_sh (rt, base, off)
  | Store ((B | BU), rt, base, Imm off) -> U_sb (rt, base, off)
  | Beq (rs, rt, Abs a) -> U_beq (rs, rt, a)
  | Bne (rs, rt, Abs a) -> U_bne (rs, rt, a)
  | Blez (rs, Abs a) -> U_blez (rs, a)
  | Bgtz (rs, Abs a) -> U_bgtz (rs, a)
  | Bltz (rs, Abs a) -> U_bltz (rs, a)
  | Bgez (rs, Abs a) -> U_bgez (rs, a)
  | Bc1t (Abs a) -> U_bc1t a
  | Bc1f (Abs a) -> U_bc1f a
  | J (Abs a) -> U_j a
  | Jal (Abs a) -> U_jal a
  | Jr rs -> U_jr rs
  | Jalr (rd, rs) -> U_jalr (rd, rs)
  | _ -> U_other insn

(* Instructions that can change fetch semantics for their successors
   (mode, ASID, TLB contents, arbitrary host effects) end a block, so the
   next instruction re-enters through a fresh translation.  [Tlbp] and
   [Mfc0] only write the index register / a GPR; [Cache] only changes
   timing, which is already charged per instruction. *)
let barrier (insn : Insn.t) =
  match insn with
  | Syscall | Break _ | Mtc0 _ | Tlbr | Tlbwi | Tlbwr | Rfe | Hcall _ -> true
  | _ -> false

let width = function
  | U_lmw _ -> 3
  | U_li _ | U_addiu2 _ | U_slt_b _ | U_lw_addiu _ | U_j_nop _ -> 2
  | _ -> 1

let is_fused u = width u > 1

(* Greedy left-to-right peephole pass, widest pattern first at each slot.
   A fused constructor replaces the slot of its first instruction; the
   covered slots keep their scalar originals so replay can resume there
   after executing only a prefix of a fused run.

   The structural invariants (qcheck-enforced in test_machine):
   - a store only appears as the final element ([U_lmw]), so no fused
     run crosses a store-generation bump;
   - a branch only as the final element ([U_slt_b]) or with its own
     empty delay slot ([U_j_nop]);
   - never a barrier or [U_other] (none of the patterns match one);
   - runs never overlap (the scan advances by the fused width).

   A delay slot can never be silently swallowed: a slot is a delay slot
   only when the previous slot is a control transfer, and no pattern has
   a control transfer in a non-final position except [U_j_nop], which
   exists to cover exactly its own nop delay slot. *)
let fuse (uops : t array) : t array =
  let n = Array.length uops in
  let out = Array.copy uops in
  let i = ref 0 in
  while !i + 1 < n do
    let w =
      match (uops.(!i), uops.(!i + 1)) with
      | U_lw (rt, base, off), U_alui (Insn.ADDIU, rt2, rs2, i2) ->
        (match if !i + 2 < n then uops.(!i + 2) else U_other Insn.nop with
        | U_sw (rt3, base3, off3) ->
          out.(!i) <- U_lmw (rt, base, off, rt2, rs2, i2, rt3, base3, off3);
          3
        | _ ->
          out.(!i) <- U_lw_addiu (rt, base, off, rt2, rs2, i2);
          2)
      | U_lui (rt, hi), U_alui (Insn.ORI, rt2, rs2, lo)
        when rt <> 0 && rt2 = rt && rs2 = rt ->
        out.(!i) <- U_li (rt, ((hi lsl 16) lor (lo land 0xFFFF)) land 0xFFFFFFFF);
        2
      | U_alui (Insn.ADDIU, rt1, rs1, i1), U_alui (Insn.ADDIU, rt2, rs2, i2) ->
        out.(!i) <- U_addiu2 (rt1, rs1, i1, rt2, rs2, i2);
        2
      | U_alu ((Insn.SLT | Insn.SLTU) as op, rd, rs, rt), U_bne (bs, 0, tgt)
        when rd <> 0 && bs = rd ->
        out.(!i) <- U_slt_b (op = Insn.SLTU, rd, rs, rt, true, tgt);
        2
      | U_alu ((Insn.SLT | Insn.SLTU) as op, rd, rs, rt), U_beq (bs, 0, tgt)
        when rd <> 0 && bs = rd ->
        out.(!i) <- U_slt_b (op = Insn.SLTU, rd, rs, rt, false, tgt);
        2
      | U_j tgt, U_shift (Insn.SLL, 0, 0, 0) ->
        out.(!i) <- U_j_nop tgt;
        2
      | _ -> 1
    in
    i := !i + w
  done;
  out

(* ------------------------------------------------------------------ *)
(* Blocks                                                              *)

type block = {
  bb_pa : int;
  bb_va : int;
  bb_cached : bool;
  bb_gen : int;
  bb_uops : t array;
  mutable bb_next : block;
  mutable bb_hot : int;
  mutable bb_trace : trace option;
}

(* A trace superblock: a hot path of chained blocks replayed with one
   up-front budget/event-horizon/generation/residency check instead of
   per-element re-tests, and with the hottest registers cached in OCaml
   locals across the internal seams.  See the mli for the contract. *)
and trace = {
  tr_blocks : block array;
  tr_insns : int;
  tr_wc : int;
  tr_pages : int array;
  tr_gens : int array;
  tr_pg_lo : int;
  tr_pg_hi : int;
  tr_lines : int array;
  tr_regs : int array;
  mutable tr_live : bool;
}

let rec dummy_block =
  {
    bb_pa = -1;
    bb_va = -1;
    bb_cached = false;
    bb_gen = -1;
    bb_uops = [||];
    bb_next = dummy_block;
    bb_hot = 0;
    bb_trace = None;
  }

(* Placeholder for the dispatcher's current-trace slot (never dispatched:
   [tr_live] is false and it spans no blocks). *)
let dummy_trace =
  {
    tr_blocks = [| dummy_block |];
    tr_insns = 0;
    tr_wc = 0;
    tr_pages = [||];
    tr_gens = [||];
    tr_pg_lo = 1;
    tr_pg_hi = 0;
    tr_lines = [||];
    tr_regs = [||];
    tr_live = false;
  }

let max_block_insns = 256

let build ~decode ~va ~pa ~cached ~gen ~fuse:do_fuse =
  let max_words =
    let to_page_end = ((Addr.page_mask - (pa land Addr.page_mask)) lsr 2) + 1 in
    if to_page_end < max_block_insns then to_page_end else max_block_insns
  in
  let buf = Array.make max_words (U_other Insn.nop) in
  let n = ref 0 in
  let in_delay = ref false in
  let stop = ref false in
  while (not !stop) && !n < max_words do
    match decode ~va:(va + (!n * 4)) ~pa:(pa + (!n * 4)) with
    | insn ->
      buf.(!n) <- of_insn insn;
      incr n;
      if !in_delay then stop := true
      else if Insn.is_control insn then in_delay := true
      else if barrier insn then stop := true
    | exception e ->
      (* Decode failure past the entry word: end the block before it, so
         the bad word raises exactly when step-at-a-time would reach
         it.  At the entry word itself, raise now — [step] would too. *)
      if !n = 0 then raise e;
      stop := true
  done;
  let uops = if !n = max_words then buf else Array.sub buf 0 !n in
  (* Cacheability specialization: fused bodies assume a cached fetch
     mapping, so only cacheable text is ever fused. *)
  let uops = if do_fuse && cached then fuse uops else uops in
  {
    bb_pa = pa;
    bb_va = va;
    bb_cached = cached;
    bb_gen = gen;
    bb_uops = uops;
    bb_next = dummy_block;
    bb_hot = 0;
    bb_trace = None;
  }

(* ------------------------------------------------------------------ *)
(* Trace superblocks                                                   *)

let trace_hot_threshold = 8
let trace_max_insns = 512

(* A block can join a trace when replaying it cannot change fetch or
   translation state mid-trace and cannot leave a control transfer
   pending at the end:
   - cached RAM text only (no device fetch, no uncached specialization);
   - no [U_other] (excludes barriers, FP, hcalls — anything that could
     switch mode, rewrite the TLB, or run arbitrary host effects);
   - the final uop must not be an open control transfer, i.e. one whose
     delay slot fell past the page-end clamp ([U_j_nop] carries its own
     delay slot and is fine). *)
let ends_open = function
  | U_beq _ | U_bne _ | U_blez _ | U_bgtz _ | U_bltz _ | U_bgez _
  | U_bc1t _ | U_bc1f _ | U_j _ | U_jal _ | U_jr _ | U_jalr _ | U_slt_b _ ->
    true
  | _ -> false

let trace_eligible b =
  let n = Array.length b.bb_uops in
  b.bb_pa >= 0 && b.bb_cached && n > 0
  && (not (ends_open b.bb_uops.(n - 1)))
  && Array.for_all (function U_other _ -> false | _ -> true) b.bb_uops

(* Def/use accounting for the cross-seam register cache: every register
   operand read or written bumps its count.  Register 0 is never a
   candidate (it must stay hardwired zero). *)
let count_regs counts u =
  let bump r = if r > 0 then counts.(r) <- counts.(r) + 1 in
  match u with
  | U_alu (_, rd, rs, rt) -> bump rd; bump rs; bump rt
  | U_alui (_, rt, rs, _) -> bump rt; bump rs
  | U_shift (_, rd, rt, _) -> bump rd; bump rt
  | U_lui (rt, _) | U_li (rt, _) -> bump rt
  | U_lw (rt, base, _) | U_lh (rt, base, _) | U_lhu (rt, base, _)
  | U_lb (rt, base, _) | U_lbu (rt, base, _)
  | U_sw (rt, base, _) | U_sh (rt, base, _) | U_sb (rt, base, _) ->
    bump rt; bump base
  | U_beq (rs, rt, _) | U_bne (rs, rt, _) -> bump rs; bump rt
  | U_blez (rs, _) | U_bgtz (rs, _) | U_bltz (rs, _) | U_bgez (rs, _)
  | U_jr rs ->
    bump rs
  | U_bc1t _ | U_bc1f _ | U_j _ | U_j_nop _ -> ()
  | U_jal _ -> bump 31
  | U_jalr (rd, rs) -> bump rd; bump rs
  | U_addiu2 (rt1, rs1, _, rt2, rs2, _) ->
    bump rt1; bump rs1; bump rt2; bump rs2
  | U_slt_b (_, rd, rs, rt, _, _) -> bump rd; bump rs; bump rt
  | U_lw_addiu (rt, base, _, rt2, rs2, _) ->
    bump rt; bump base; bump rt2; bump rs2
  | U_lmw (rt, base, _, rt2, rs2, _, rt3, base3, _) ->
    bump rt; bump base; bump rt2; bump rs2; bump rt3; bump base3
  | U_other _ -> ()

(* Worst-case cycle cost of one slot (scalar view), used for the single
   up-front event-horizon test: base 1 cycle per instruction plus the
   machine-supplied worst memory stall for loads and stores. *)
let wc_of_uop ~wc_load ~wc_store = function
  | U_lmw _ -> 3 + wc_load + wc_store
  | U_lw_addiu _ -> 2 + wc_load
  | U_li _ | U_addiu2 _ | U_slt_b _ | U_j_nop _ -> 2
  | U_lw _ | U_lh _ | U_lhu _ | U_lb _ | U_lbu _ -> 1 + wc_load
  | U_sw _ | U_sh _ | U_sb _ -> 1 + wc_store
  | _ -> 1

let form_trace ~head ~max_blocks ~wc_load ~wc_store ~line_shift ~nlines =
  if not (trace_eligible head) then None
  else begin
    (* Walk the successor memo greedily; a self-loop naturally unrolls
       the loop body up to [max_blocks] times. *)
    let rev = ref [ head ] in
    let nb = ref 1 in
    let insns = ref (Array.length head.bb_uops) in
    let cur = ref head in
    let go = ref true in
    while !go && !nb < max_blocks do
      let nxt = !cur.bb_next in
      if
        nxt != dummy_block && trace_eligible nxt
        && !insns + Array.length nxt.bb_uops <= trace_max_insns
      then begin
        rev := nxt :: !rev;
        incr nb;
        insns := !insns + Array.length nxt.bb_uops;
        cur := nxt
      end
      else go := false
    done;
    if !nb < 2 then None
    else begin
      let blocks = Array.of_list (List.rev !rev) in
      (* Distinct text pages with a consistent generation snapshot, and
         distinct icache lines that must map to distinct indexes so an
         all-resident entry check guarantees every fetch hits. *)
      let pages = ref [] and gens_ok = ref true in
      let lines = ref [] in
      let counts = Array.make 32 0 in
      let wc = ref 0 in
      Array.iter
        (fun b ->
          let p = b.bb_pa lsr Addr.page_shift in
          (match List.assoc_opt p !pages with
          | None -> pages := (p, b.bb_gen) :: !pages
          | Some g -> if g <> b.bb_gen then gens_ok := false);
          let n = Array.length b.bb_uops in
          let t0 = b.bb_pa lsr line_shift in
          let t1 = (b.bb_pa + ((n - 1) * 4)) lsr line_shift in
          for tg = t0 to t1 do
            if not (List.mem tg !lines) then lines := tg :: !lines
          done;
          let k = ref 0 in
          while !k < n do
            let u = b.bb_uops.(!k) in
            count_regs counts u;
            wc := !wc + wc_of_uop ~wc_load ~wc_store u;
            k := !k + width u
          done)
        blocks;
      let lines = !lines in
      let mask = nlines - 1 in
      let idx_distinct =
        let seen = Array.make nlines false in
        List.for_all
          (fun tg ->
            let i = tg land mask in
            if seen.(i) then false
            else begin
              seen.(i) <- true;
              true
            end)
          lines
      in
      if (not !gens_ok) || not idx_distinct then None
      else begin
        (* The <=4 hottest registers by def/use count; the executor pins
           the top of this list in OCaml locals across internal seams. *)
        let regs = ref [] in
        for _ = 1 to 4 do
          let best = ref 0 in
          for r = 1 to 31 do
            if counts.(r) > counts.(!best) then best := r
          done;
          if !best > 0 && counts.(!best) > 0 then begin
            regs := !best :: !regs;
            counts.(!best) <- 0
          end
        done;
        Some
          {
            tr_blocks = blocks;
            tr_insns = !insns;
            tr_wc = !wc;
            tr_pages = Array.of_list (List.map fst !pages);
            tr_gens = Array.of_list (List.map snd !pages);
            tr_pg_lo = List.fold_left (fun a (p, _) -> min a p) max_int !pages;
            tr_pg_hi = List.fold_left (fun a (p, _) -> max a p) (-1) !pages;
            tr_lines = Array.of_list lines;
            tr_regs = Array.of_list (List.rev !regs);
            tr_live = true;
          }
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Store-generation invalidation (see the mli for the contract)        *)

module Gens = struct
  type t = int array

  let create ~mem_bytes =
    Array.make (max 1 ((mem_bytes + Addr.page_mask) lsr Addr.page_shift)) 0

  let bump (g : t) pa =
    let p = pa lsr Addr.page_shift in
    g.(p) <- g.(p) + 1

  let bump_range (g : t) pa len =
    if len > 0 then
      for p = pa lsr Addr.page_shift to (pa + len - 1) lsr Addr.page_shift do
        g.(p) <- g.(p) + 1
      done

  let get (g : t) pa = g.(pa lsr Addr.page_shift)
end
