(** Mattson-style LRU stack simulating a whole family of nested cache
    geometries — same line size, same set count, ascending associativity —
    in one state update per reference.  Valid only for read-only streams
    (instruction fetches): the no-write-allocate write path breaks the
    inclusion property the stack relies on (DESIGN.md 5f).

    A family member with associativity W behaves reference-for-reference
    like an independent {!Sim_cache_assoc} of W ways over the same sets (a
    qcheck property in the test suite holds them together). *)

type t

val create : line_bytes:int -> nsets:int -> ways:int array -> t
(** [ways] is the family's associativities, strictly ascending.
    @raise Invalid_argument on a non-ascending family or degenerate
    geometry. *)

val read : t -> int -> int
(** [read t pa] simulates one read in every member; returns a bitmask
    with bit [i] set iff member [i] (in [ways] order) missed. *)

val reset : t -> unit
