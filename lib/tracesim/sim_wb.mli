(** Write-buffer model for the trace-driven simulator: deliberately
    simpler than the machine's — no overlap with floating-point latency,
    the gap behind liv's Figure 3 error. *)

type t = {
  depth : int;
  drain_cycles : int;
  mutable clock : int;
  mutable retire : int list;
  mutable stall_cycles : int;
  mutable stores : int;
}

val create : ?depth:int -> ?drain_cycles:int -> unit -> t
val reset : t -> unit

val tick : t -> int -> unit
(** Advance the local reference clock. *)

val store : t -> int
(** Issue a store; returns the stall charged (0 if a slot was free). *)

(** Absolute-clock variant for the multi-configuration sweep: the caller
    derives the reference clock from shared event counters instead of
    ticking eagerly, so a buffer that sees no store costs nothing.  Given
    the same clock values a [store]/[tick] sequence would have produced,
    [ring_store] returns the same stalls (a qcheck property in the test
    suite holds the two together).  After a stall the caller must advance
    its derived clock by the returned stall, as [store] advances
    [t.clock]. *)
type ring

val ring_create : depth:int -> drain_cycles:int -> ring
val ring_store : ring -> clock:int -> int
val ring_reset : ring -> unit
