(** Trace-driven memory-system simulator (paper §5).

    Consumes the reconstructed reference stream from the trace parsing
    library and drives independent cache/TLB/write-buffer models.  Caches
    are physically indexed through the page map extracted from the running
    system; UTLB misses synthesize the (untraced) refill handler's
    references; the kernel's explicit TLB writes are invisible; and
    write-buffer stalls never overlap with anything — the modelling gaps
    behind Table 3 and Figure 3 are reproduced on purpose. *)

type config = {
  icache_bytes : int;
  icache_line : int;
  icache_ways : int;
      (** associativity (LRU); 1 = the DECstation's direct-mapped caches *)
  dcache_bytes : int;
  dcache_line : int;
  dcache_ways : int;
  read_miss_penalty : int;
  uncached_penalty : int;
  wb_depth : int;
  wb_drain : int;
  pagemap : int -> int -> int option;
      (** [pagemap pid va]: physical translation of a mapped address. *)
  pt_base : int -> int;
      (** kseg2 linear page-table base per pid (UTLB synthesis). *)
  utlb_handler_insns : int;
  ktlb_handler_insns : int;
  tlb_entries : int;
}

type stats = {
  mutable insts : int;
  mutable datas : int;
  mutable kernel_insts : int;
  mutable user_insts : int;
  mutable kernel_stall : int;
  mutable user_stall : int;
  mutable synth_insts : int;
  mutable icache_misses : int;
  mutable dcache_read_misses : int;
  mutable uncached_reads : int;
  mutable uncached_writes : int;
  mutable wb_stalls : int;
  mutable utlb_misses : int;
  mutable ktlb_misses : int;
  mutable unmapped : int;
}

type t

val create : config -> t
val stats : t -> stats

val on_inst : t -> int -> int -> bool -> unit
val on_data : t -> int -> int -> bool -> bool -> int -> unit

val handlers : t -> Systrace_tracing.Parser.handlers
(** Plug directly into the trace parser. *)

val sink : ?live:int list -> t -> Systrace_tracing.Parser.t -> Systrace_tracing.Sink.t
(** [sink t parser] attaches {!handlers} to [parser] and wraps it as a
    streaming word consumer ([Sink.to_parser ?live]): feed it raw trace
    chunks and the simulation runs online, during generation — peak
    resident words stay O(chunk) instead of O(trace). *)

(** {2 Single-pass multi-configuration sweep}

    [sweep cfgs] evaluates every configuration in one trace pass: word
    decode, reference classification and page-map translation happen once
    per reference; configurations sharing TLB parameters share one TLB
    and one synthesized-handler stream; distinct cache geometries within
    such a group are simulated once each, with nesting icache families
    (same line size and set count, ascending ways) collapsed into a
    single Mattson LRU stack ({!Sim_stack}).  [sweep_stats] returns, per
    configuration and in list order, {b byte-identical} stats to an
    independent {!create}/{!sink} run over the same trace (qcheck
    properties in the test suite enforce this). *)

type sweep

val sweep : config list -> sweep
(** @raise Invalid_argument on an empty list, a degenerate cache
    geometry, or configurations that do not share (physically, [==]) the
    same [pagemap] and [pt_base] — translation is done once per
    reference, so per-configuration page maps cannot be honoured. *)

val sweep_stats : sweep -> stats array
(** Per-configuration stats, in the order the configs were given. *)

val sweep_accesses : sweep -> (int * int) array
(** Per-configuration [(icache_accesses, dcache_read_accesses)] —
    the denominators for miss-ratio tables. *)

val sweep_on_inst : sweep -> int -> int -> bool -> unit
val sweep_on_data : sweep -> int -> int -> bool -> bool -> int -> unit

val sweep_handlers : sweep -> Systrace_tracing.Parser.handlers

val sweep_sink :
  ?live:int list -> sweep -> Systrace_tracing.Parser.t -> Systrace_tracing.Sink.t
(** Streaming multi-configuration consumer; the sweep analogue of
    {!sink}. *)

val grid :
  ?nested:bool ->
  base:config ->
  sizes:int list ->
  lines:int list ->
  tlb_entries:int list ->
  wb_depths:int list ->
  unit ->
  (string * config) list
(** A labelled (cache size x line size x TLB entries x write-buffer
    depth) geometry grid over [base], both caches varied together.  With
    [nested] (default) associativity grows with size at a fixed set
    count — ways = size / min size — so each size axis forms a nesting
    family the sweep simulates as one LRU stack; with [~nested:false]
    every point is direct-mapped. *)
