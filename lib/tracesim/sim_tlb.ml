(* TLB model for the trace-driven simulator.

   64 entries, fully associative, random replacement.  The replacement
   index is driven by a reference counter rather than the machine's cycle
   counter, so the simulated TLB's eviction decisions diverge from the
   hardware's — one of the acknowledged sources of error in the paper's
   Table 3 ("the TLB uses a random replacement policy; the miss rates
   predicted by the simulator demonstrate a certain amount of error").

   The simulator does not see the kernel's explicit TLB writes
   (tlbdropin / tlb_map_random): "in the simulator, which does not know
   about these writes, all TLB fills are caused by TLB misses" — the other
   Table 3 error source, reproduced simply by not modelling them. *)

type t = {
  size : int;
  wired : int;
  vpns : int array;       (* vpn of each entry, -1 invalid *)
  asids : int array;
  globals : bool array;
  (* A small positive memo over [find]: slot [vpn land memo_mask] records
     a (vpn, asid) pair known to match some entry.  TLB content only
     changes on a refill, and every refill clears the memo, so a memo hit
     is always a true hit and the hit/miss/replacement sequence is
     bit-identical to the plain scan.  This matters because the
     fully-associative scan is the top per-reference cost once the
     multi-configuration sweep keeps several TLB models hot at once. *)
  memo_vpns : int array;
  memo_asids : int array;
  mutable refcount : int;
  mutable user_misses : int;
  mutable kernel_misses : int;  (* kseg2 *)
  mutable hits : int;
}

let memo_slots = 4
let memo_mask = memo_slots - 1

let create ?(size = 64) ?(wired = 8) () =
  if size <= wired then invalid_arg "Sim_tlb.create: size <= wired";
  {
    size;
    wired;
    vpns = Array.make size (-1);
    asids = Array.make size 0;
    globals = Array.make size false;
    memo_vpns = Array.make memo_slots (-1);
    memo_asids = Array.make memo_slots 0;
    refcount = 0;
    user_misses = 0;
    kernel_misses = 0;
    hits = 0;
  }

let reset t =
  Array.fill t.vpns 0 t.size (-1);
  Array.fill t.memo_vpns 0 memo_slots (-1);
  t.refcount <- 0;
  t.user_misses <- 0;
  t.kernel_misses <- 0;
  t.hits <- 0

let find t ~vpn ~asid =
  let rec go i =
    if i >= t.size then -1
    else if t.vpns.(i) = vpn && (t.globals.(i) || t.asids.(i) = asid) then i
    else go (i + 1)
  in
  go 0

(* Access a mapped address; refills on miss (the software handler always
   refills exactly one entry). Returns [true] on hit. *)
let access t ~vpn ~asid ~global ~user =
  t.refcount <- t.refcount + 1;
  let m = vpn land memo_mask in
  if
    Array.unsafe_get t.memo_vpns m = vpn
    && Array.unsafe_get t.memo_asids m = asid
  then begin
    t.hits <- t.hits + 1;
    true
  end
  else if find t ~vpn ~asid >= 0 then begin
    t.hits <- t.hits + 1;
    Array.unsafe_set t.memo_vpns m vpn;
    Array.unsafe_set t.memo_asids m asid;
    true
  end
  else begin
    if user then t.user_misses <- t.user_misses + 1
    else t.kernel_misses <- t.kernel_misses + 1;
    let slot = t.wired + (t.refcount mod (t.size - t.wired)) in
    t.vpns.(slot) <- vpn;
    t.asids.(slot) <- asid;
    t.globals.(slot) <- global;
    (* the refill may overwrite the entry behind any memoed pair *)
    Array.fill t.memo_vpns 0 memo_slots (-1);
    false
  end
