(* Mattson-style LRU stack for a family of nested cache geometries.

   A read-only reference stream through N set-associative LRU caches that
   share a line size and a set count — differing only in associativity —
   obeys the stack inclusion property: the content of the W-way cache's
   set is exactly the W most-recently-used lines of that set.  One stack
   of max(W) entries per set therefore simulates the whole family: the
   depth at which a line is found decides, for every member at once,
   whether that member hit (depth < ways) or missed.

   The inclusion argument needs every access to move its line to the top
   of the stack in every member — true for reads (hit: LRU touch; miss:
   fill at MRU) but NOT for the write-through/no-write-allocate write
   path, where a write hit touches the line in members that hold it while
   members that miss do not allocate.  After such a write the members'
   contents are no longer nested (DESIGN.md 5f gives a counterexample),
   so this fast path is only used for instruction caches, whose stream is
   read-only by construction. *)

type t = {
  line_shift : int;
  nsets : int;
  set_mask : int;             (* nsets - 1 when a power of two, else -1 *)
  maxw : int;                 (* stack capacity = largest member's ways *)
  stacks : int array;         (* nsets * maxw line numbers, MRU first; -1 empty *)
  miss_at : int array;        (* depth -> bitmask of members that miss there *)
  all_miss : int;             (* bitmask when the line is absent entirely *)
}

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1)

let create ~line_bytes ~nsets ~ways =
  let n = Array.length ways in
  if line_bytes <= 0 || nsets <= 0 || n = 0 || n > Sys.int_size - 2 then
    invalid_arg "Sim_stack.create";
  Array.iteri
    (fun i w ->
      if w <= 0 || (i > 0 && ways.(i - 1) >= w) then
        invalid_arg "Sim_stack.create: ways must be ascending")
    ways;
  let maxw = ways.(n - 1) in
  (* a line found at 0-based depth d has d more-recent lines above it:
     member i hits iff its associativity exceeds d *)
  let miss_at =
    Array.init maxw (fun d ->
        let m = ref 0 in
        Array.iteri (fun i w -> if w <= d then m := !m lor (1 lsl i)) ways;
        !m)
  in
  {
    line_shift = log2 line_bytes;
    nsets;
    set_mask = (if nsets land (nsets - 1) = 0 then nsets - 1 else -1);
    maxw;
    stacks = Array.make (nsets * maxw) (-1);
    miss_at;
    all_miss = (1 lsl n) - 1;
  }

(* One read by the whole family: returns the miss bitmask (bit i set =
   member i, in [ways] order, missed).  The line moves to the stack top,
   which is simultaneously the LRU touch of every hitting member and the
   MRU fill of every missing one. *)
let read t pa =
  let ln = pa lsr t.line_shift in
  let set = if t.set_mask >= 0 then ln land t.set_mask else ln mod t.nsets in
  let base = set * t.maxw in
  let rec find d =
    if d >= t.maxw then -1
    else if Array.unsafe_get t.stacks (base + d) = ln then d
    else find (d + 1)
  in
  let d = find 0 in
  if d = 0 then 0
  else begin
    let stop = if d < 0 then t.maxw - 1 else d in
    for k = stop downto 1 do
      Array.unsafe_set t.stacks (base + k)
        (Array.unsafe_get t.stacks (base + k - 1))
    done;
    Array.unsafe_set t.stacks base ln;
    if d < 0 then t.all_miss else Array.unsafe_get t.miss_at d
  end

let reset t = Array.fill t.stacks 0 (Array.length t.stacks) (-1)
