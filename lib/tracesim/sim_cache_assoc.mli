(** N-way set-associative, true-LRU cache model for trace-replay studies —
    the associativity and write-policy sweeps the system traces were
    collected to enable (companion study [7]).  The default
    [Write_through] policy matches the host machine, so a 1-way instance
    behaves identically to {!Sim_cache} (held together by a qcheck
    property); [Write_back] adds write-allocate and dirty-eviction
    accounting. *)

type policy =
  | Write_through  (** no write-allocate; the DECstation's organization *)
  | Write_back     (** write-allocate; dirty evictions count as
                       [writebacks] *)

type t = {
  line_bytes : int;
  line_shift : int;  (** log2 [line_bytes], cached off the hot path *)
  ways : int;
  nsets : int;
  set_mask : int;    (** [nsets - 1] when a power of two, else -1 *)
  policy : policy;
  tags : int array;
  stamps : int array;
  dirty : bool array;
  mutable clock : int;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable write_hits : int;
  mutable write_misses : int;
  mutable writebacks : int;  (** dirty lines evicted (write-back only) *)
}

val create :
  ?policy:policy -> size_bytes:int -> line_bytes:int -> ways:int -> unit -> t
(** [size_bytes] must be a multiple of [line_bytes * ways]. *)

val read : t -> int -> bool
(** [true] on hit; misses fill the LRU way of the set (writing back a
    dirty victim under [Write_back]). *)

val write : t -> int -> bool
(** [true] on hit. [Write_through]: state changes only on hit.
    [Write_back]: a miss allocates; hits and allocations dirty the line. *)

val reset : t -> unit
