(* Set-associative cache model for trace-replay studies.

   The DECstation 5000/200 the paper traces has direct-mapped caches, and
   the validation models ({!Sim_cache}) match it.  But the point of
   collecting complete system traces was to drive studies of memory
   systems *other* than the host's — the companion work ([7], Chen &
   Bershad SOSP'93) replays these traces over associative organizations to
   separate conflict from capacity misses.  This model supports those
   studies: N-way set-associative, true-LRU replacement, the same
   write-through/no-write-allocate policy as the host so that a 1-way
   instance is reference-equal to {!Sim_cache} (a qcheck property in the
   test suite holds them together).

   LRU is tracked with a per-access monotonic stamp: sets are small (the
   interesting design space is 1-8 ways) so a linear scan of the set is
   both simplest and fastest here. *)

(* Write policy: the DECstation (and the validation models) are
   write-through/no-write-allocate; Write_back/write-allocate is the other
   classic organization these traces were collected to study — stores
   allocate and dirty the line, and the memory traffic is the dirty
   evictions ([writebacks]) rather than every store. *)
type policy = Write_through | Write_back

type t = {
  line_bytes : int;
  line_shift : int;   (* log2 line_bytes, cached off the hot path *)
  ways : int;
  nsets : int;
  set_mask : int;     (* nsets - 1 when nsets is a power of two, else -1 *)
  policy : policy;
  tags : int array;   (* nsets * ways, -1 = invalid *)
  stamps : int array; (* nsets * ways, last-use time *)
  dirty : bool array; (* nsets * ways (write-back only) *)
  mutable clock : int;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable write_hits : int;
  mutable write_misses : int;
  mutable writebacks : int;
}

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1)

let create ?(policy = Write_through) ~size_bytes ~line_bytes ~ways () =
  if
    size_bytes <= 0 || line_bytes <= 0 || ways <= 0
    || size_bytes mod (line_bytes * ways) <> 0
  then invalid_arg "Sim_cache_assoc.create";
  let nsets = size_bytes / (line_bytes * ways) in
  {
    line_bytes;
    line_shift = log2 line_bytes;
    ways;
    nsets;
    set_mask = (if nsets land (nsets - 1) = 0 then nsets - 1 else -1);
    policy;
    tags = Array.make (nsets * ways) (-1);
    stamps = Array.make (nsets * ways) 0;
    dirty = Array.make (nsets * ways) false;
    clock = 0;
    read_hits = 0;
    read_misses = 0;
    write_hits = 0;
    write_misses = 0;
    writebacks = 0;
  }

(* The per-access index arithmetic: a shift for the line number and —
   for the universal power-of-two set count — a mask instead of a
   hardware divide, which showed up as a top cost of the
   multi-configuration sweep's fan-out. *)
let set_of t ln = if t.set_mask >= 0 then ln land t.set_mask else ln mod t.nsets

(* Scan the set for [ln]; returns the way index on hit, or the LRU way
   negated-minus-one on miss (so callers distinguish without allocation).
   Tags are unique within a set (a fill only happens when the line is
   absent), so the scan can stop at the first match and leave the stamps
   untouched; only a miss pays the LRU scan.  Hits dominate, and with the
   sweep fanning every reference out to a dozen cache units the saved
   stamp traffic is a measured win. *)
let probe t set ln =
  let base = set * t.ways in
  let rec find w =
    if w >= t.ways then begin
      let lru = ref 0 in
      let lru_stamp = ref max_int in
      for w = 0 to t.ways - 1 do
        let s = Array.unsafe_get t.stamps (base + w) in
        if s < !lru_stamp then begin
          lru_stamp := s;
          lru := w
        end
      done;
      -1 - !lru
    end
    else if Array.unsafe_get t.tags (base + w) = ln then w
    else find (w + 1)
  in
  find 0

let touch t set w =
  t.clock <- t.clock + 1;
  t.stamps.((set * t.ways) + w) <- t.clock

(* Replace the victim way with [ln]; a dirty victim is a writeback. *)
let fill t set w ln =
  let i = (set * t.ways) + w in
  if t.dirty.(i) && t.tags.(i) >= 0 then begin
    t.writebacks <- t.writebacks + 1;
    t.dirty.(i) <- false
  end;
  t.tags.(i) <- ln

let read t pa =
  let ln = pa lsr t.line_shift in
  let set = set_of t ln in
  match probe t set ln with
  | w when w >= 0 ->
    t.read_hits <- t.read_hits + 1;
    touch t set w;
    true
  | miss ->
    let w = -1 - miss in
    t.read_misses <- t.read_misses + 1;
    fill t set w ln;
    touch t set w;
    false

(* Write_through: no write-allocate, state changes only on hit — matching
   the host machine and {!Sim_cache} so 1-way instances are equivalent.
   Write_back: write-allocate; the line is dirtied and a dirty victim on
   any later fill counts as a writeback. *)
let write t pa =
  let ln = pa lsr t.line_shift in
  let set = set_of t ln in
  match probe t set ln with
  | w when w >= 0 ->
    t.write_hits <- t.write_hits + 1;
    touch t set w;
    if t.policy = Write_back then t.dirty.((set * t.ways) + w) <- true;
    true
  | miss ->
    t.write_misses <- t.write_misses + 1;
    (if t.policy = Write_back then begin
       let w = -1 - miss in
       fill t set w ln;
       touch t set w;
       t.dirty.((set * t.ways) + w) <- true
     end);
    false

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  t.clock <- 0;
  t.read_hits <- 0;
  t.read_misses <- 0;
  t.write_hits <- 0;
  t.write_misses <- 0;
  t.writebacks <- 0
