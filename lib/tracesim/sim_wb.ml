(* Write-buffer model for the trace-driven simulator.

   Deliberately simpler than the machine's: it advances its own local
   clock by one cycle per reference and by the full penalty on every
   stall, with no notion of overlap with floating-point latency.  The
   missing overlap is exactly the modelling gap the paper identifies for
   liv: "the prediction error is caused by the overlapping of write buffer
   and floating point activity that is not modeled in the simulator". *)

type t = {
  depth : int;
  drain_cycles : int;
  mutable clock : int;            (* local reference clock *)
  mutable retire : int list;      (* ascending retirement times *)
  mutable stall_cycles : int;
  mutable stores : int;
}

let create ?(depth = 4) ?(drain_cycles = 6) () =
  { depth; drain_cycles; clock = 0; retire = []; stall_cycles = 0; stores = 0 }

let reset t =
  t.clock <- 0;
  t.retire <- [];
  t.stall_cycles <- 0;
  t.stores <- 0

(* Advance local time: every reference costs a cycle; read misses freeze
   the CPU (and drain time passes). *)
let tick t n = t.clock <- t.clock + n

let store t =
  t.stores <- t.stores + 1;
  t.retire <- List.filter (fun r -> r > t.clock) t.retire;
  let stall =
    if List.length t.retire < t.depth then 0
    else
      match t.retire with
      | oldest :: rest ->
        let s = oldest - t.clock in
        t.retire <- rest;
        t.clock <- oldest;
        s
      | [] -> assert false
  in
  let last = match List.rev t.retire with l :: _ -> l | [] -> t.clock in
  t.retire <- t.retire @ [ max t.clock last + t.drain_cycles ];
  t.stall_cycles <- t.stall_cycles + stall;
  stall

(* Absolute-clock variant for the multi-configuration sweep: the caller
   owns the reference clock (derived lazily from shared event counters
   instead of eagerly ticked), so between stores the buffer costs nothing.
   Entries live in a fixed ring — the retire list never exceeds [depth] —
   and the retire/stall/refill decisions are the same as [store]'s, with
   [clock] standing in for the eagerly-advanced [t.clock].  The stall is
   returned; the caller must fold it into later derived clocks exactly as
   [store] folds it into [t.clock]. *)
type ring = {
  rdepth : int;
  rdrain : int;
  rbuf : int array;           (* circular, ascending retirement times *)
  mutable rhead : int;
  mutable rcount : int;
}

let ring_create ~depth ~drain_cycles =
  if depth <= 0 then invalid_arg "Sim_wb.ring_create";
  { rdepth = depth; rdrain = drain_cycles; rbuf = Array.make depth 0;
    rhead = 0; rcount = 0 }

let ring_store r ~clock =
  (* entries at or before [clock] have retired *)
  while r.rcount > 0 && r.rbuf.(r.rhead) <= clock do
    r.rhead <- (r.rhead + 1) mod r.rdepth;
    r.rcount <- r.rcount - 1
  done;
  let stall, clock =
    if r.rcount < r.rdepth then (0, clock)
    else begin
      let oldest = r.rbuf.(r.rhead) in
      r.rhead <- (r.rhead + 1) mod r.rdepth;
      r.rcount <- r.rcount - 1;
      (oldest - clock, oldest)
    end
  in
  let last =
    if r.rcount > 0 then r.rbuf.((r.rhead + r.rcount - 1) mod r.rdepth)
    else clock
  in
  r.rbuf.((r.rhead + r.rcount) mod r.rdepth) <- max clock last + r.rdrain;
  r.rcount <- r.rcount + 1;
  stall

let ring_reset r =
  r.rhead <- 0;
  r.rcount <- 0
