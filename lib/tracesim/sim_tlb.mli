(** TLB model for the trace-driven simulator: fully associative, random
    replacement driven by a reference counter (diverging from the
    hardware's cycle-driven point — one of Table 3's acknowledged error
    sources).  The kernel's explicit TLB writes are invisible here. *)

type t = {
  size : int;
  wired : int;
  vpns : int array;
  asids : int array;
  globals : bool array;
  memo_vpns : int array;
      (** positive lookup memo, cleared on every refill — a pure
          fast path over the associative scan *)
  memo_asids : int array;
  mutable refcount : int;
  mutable user_misses : int;
  mutable kernel_misses : int;
  mutable hits : int;
}

val create : ?size:int -> ?wired:int -> unit -> t
(** Defaults: 64 entries, 8 wired (the DECstation's R3000). *)

val reset : t -> unit

val access : t -> vpn:int -> asid:int -> global:bool -> user:bool -> bool
(** [true] on hit; misses refill one entry at the random point. *)
