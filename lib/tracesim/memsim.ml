(* Trace-driven memory-system simulator.

   Consumes the reconstructed reference stream from the trace parsing
   library and drives the independent cache/TLB/write-buffer models.  The
   paper's key modelling decisions are reproduced:

   - Caches are physically indexed: virtual addresses are translated
     through the page map extracted from the running system (§4.2).
   - The user TLB miss handler is NOT in the trace (its behaviour under
     the doubled traced text would be unrepresentative); instead, a miss
     in the simulated TLB synthesizes the handler's activity — its
     instruction fetches at the UTLB vector and its page-table entry load
     (§4.1).  KTLB misses synthesize the general-vector fast path the same
     way.
   - The kernel's explicit TLB writes are invisible, and the replacement
     point differs from the hardware's, giving Table 3's error modes.
   - Write-buffer stalls never overlap with anything (Figure 3 / liv). *)

open Systrace_tracing

type config = {
  icache_bytes : int;
  icache_line : int;
  icache_ways : int;  (* 1 = the DECstation's direct-mapped caches *)
  dcache_bytes : int;
  dcache_line : int;
  dcache_ways : int;
  read_miss_penalty : int;
  uncached_penalty : int;
  wb_depth : int;
  wb_drain : int;
  (* Address-space knowledge: translate a mapped VA for [pid]; [None] for
     an unmapped page (counted, treated as identity). *)
  pagemap : int -> int -> int option;
  (* kseg2 linear page-table base for each pid, for synthesizing the UTLB
     handler's PTE load. *)
  pt_base : int -> int;
  utlb_handler_insns : int;  (* instructions synthesized per UTLB miss *)
  ktlb_handler_insns : int;
  tlb_entries : int;         (* 64 on the DECstation *)
}

type stats = {
  mutable insts : int;              (* from the trace *)
  mutable datas : int;
  (* per-mode split, for kernel-vs-user CPI (paper, §3.4) *)
  mutable kernel_insts : int;
  mutable user_insts : int;
  mutable kernel_stall : int;
  mutable user_stall : int;
  mutable synth_insts : int;        (* synthesized handler instructions *)
  mutable icache_misses : int;
  mutable dcache_read_misses : int;
  mutable uncached_reads : int;
  mutable uncached_writes : int;
  mutable wb_stalls : int;
  mutable utlb_misses : int;
  mutable ktlb_misses : int;
  mutable unmapped : int;
}

type t = {
  cfg : config;
  (* the associative model; 1-way is qcheck-proven identical to the
     direct-mapped Sim_cache, so the default replays are unchanged *)
  icache : Sim_cache_assoc.t;
  dcache : Sim_cache_assoc.t;
  tlb : Sim_tlb.t;
  wb : Sim_wb.t;
  s : stats;
}

let create cfg =
  {
    cfg;
    icache =
      Sim_cache_assoc.create ~size_bytes:cfg.icache_bytes
        ~line_bytes:cfg.icache_line ~ways:cfg.icache_ways ();
    dcache =
      Sim_cache_assoc.create ~size_bytes:cfg.dcache_bytes
        ~line_bytes:cfg.dcache_line ~ways:cfg.dcache_ways ();
    tlb = Sim_tlb.create ~size:cfg.tlb_entries ();
    wb = Sim_wb.create ~depth:cfg.wb_depth ~drain_cycles:cfg.wb_drain ();
    s =
      {
        insts = 0;
        datas = 0;
        kernel_insts = 0;
        user_insts = 0;
        kernel_stall = 0;
        user_stall = 0;
        synth_insts = 0;
        icache_misses = 0;
        dcache_read_misses = 0;
        uncached_reads = 0;
        uncached_writes = 0;
        wb_stalls = 0;
        utlb_misses = 0;
        ktlb_misses = 0;
        unmapped = 0;
      };
  }

let stats t = t.s

let kuseg_limit = 0x80000000
let kseg1_base = 0xA0000000
let kseg2_base = 0xC0000000

let asid_of_pid pid = pid + 1

let translate t ~pid va =
  match t.cfg.pagemap pid va with
  | Some pa -> pa
  | None ->
    t.s.unmapped <- t.s.unmapped + 1;
    va land 0x00FFFFFF

(* Synthesize the KTLB refill fast path: ifetches at the general vector
   plus the root-table load (kseg0: cached). *)
let synth_ktlb t =
  t.s.ktlb_misses <- t.s.ktlb_misses + 1;
  for k = 0 to t.cfg.ktlb_handler_insns - 1 do
    t.s.synth_insts <- t.s.synth_insts + 1;
    Sim_wb.tick t.wb 1;
    if not (Sim_cache_assoc.read t.icache (0x80 + (k * 4))) then begin
      t.s.icache_misses <- t.s.icache_misses + 1;
      Sim_wb.tick t.wb t.cfg.read_miss_penalty
    end
  done;
  (* root-table load (kernel data, kseg0-resident; approximate with a
     fixed address) *)
  Sim_wb.tick t.wb 1;
  if not (Sim_cache_assoc.read t.dcache 0x9000) then begin
    t.s.dcache_read_misses <- t.s.dcache_read_misses + 1;
    Sim_wb.tick t.wb t.cfg.read_miss_penalty
  end

(* kseg2 access (page-table pages): through the TLB as a global mapping. *)
let kseg2_access t ~pid ~is_load va =
  let vpn = va lsr 12 in
  if not (Sim_tlb.access t.tlb ~vpn ~asid:0 ~global:true ~user:false) then
    synth_ktlb t;
  let pa = translate t ~pid va in
  if is_load then begin
    if not (Sim_cache_assoc.read t.dcache pa) then begin
      t.s.dcache_read_misses <- t.s.dcache_read_misses + 1;
      Sim_wb.tick t.wb t.cfg.read_miss_penalty
    end
  end
  else begin
    ignore (Sim_cache_assoc.write t.dcache pa);
    t.s.wb_stalls <- t.s.wb_stalls + Sim_wb.store t.wb
  end

(* Synthesize the UTLB refill handler: its ifetches at the UTLB vector and
   its PTE load from the faulting process's linear page table in kseg2
   (which can itself take a KTLB miss). *)
let synth_utlb t ~pid ~vpn =
  t.s.utlb_misses <- t.s.utlb_misses + 1;
  for k = 0 to t.cfg.utlb_handler_insns - 1 do
    t.s.synth_insts <- t.s.synth_insts + 1;
    Sim_wb.tick t.wb 1;
    if not (Sim_cache_assoc.read t.icache (k * 4)) then begin
      t.s.icache_misses <- t.s.icache_misses + 1;
      Sim_wb.tick t.wb t.cfg.read_miss_penalty
    end
  done;
  let pte_va = t.cfg.pt_base pid + (vpn * 4) in
  kseg2_access t ~pid ~is_load:true pte_va

(* Map a virtual reference to a physical one, charging TLB behaviour. *)
let to_phys t ~pid va =
  if va < kuseg_limit then begin
    let vpn = va lsr 12 in
    if
      not
        (Sim_tlb.access t.tlb ~vpn ~asid:(asid_of_pid pid) ~global:false
           ~user:true)
    then synth_utlb t ~pid ~vpn;
    `Cached (translate t ~pid va)
  end
  else if va < kseg1_base then `Cached (va - 0x80000000)
  else if va < kseg2_base then `Uncached
  else begin
    let vpn = va lsr 12 in
    if not (Sim_tlb.access t.tlb ~vpn ~asid:0 ~global:true ~user:false) then
      synth_ktlb t;
    `Cached (translate t ~pid va)
  end

let charge t ~kernel stall =
  if kernel then t.s.kernel_stall <- t.s.kernel_stall + stall
  else t.s.user_stall <- t.s.user_stall + stall

let on_inst t addr pid kernel =
  t.s.insts <- t.s.insts + 1;
  if kernel then t.s.kernel_insts <- t.s.kernel_insts + 1
  else t.s.user_insts <- t.s.user_insts + 1;
  Sim_wb.tick t.wb 1;
  match to_phys t ~pid addr with
  | `Cached pa ->
    if not (Sim_cache_assoc.read t.icache pa) then begin
      t.s.icache_misses <- t.s.icache_misses + 1;
      charge t ~kernel t.cfg.read_miss_penalty;
      Sim_wb.tick t.wb t.cfg.read_miss_penalty
    end
  | `Uncached ->
    t.s.uncached_reads <- t.s.uncached_reads + 1;
    charge t ~kernel t.cfg.uncached_penalty;
    Sim_wb.tick t.wb t.cfg.uncached_penalty

let on_data t addr pid kernel is_load _bytes =
  t.s.datas <- t.s.datas + 1;
  match to_phys t ~pid addr with
  | `Cached pa ->
    if is_load then begin
      if not (Sim_cache_assoc.read t.dcache pa) then begin
        t.s.dcache_read_misses <- t.s.dcache_read_misses + 1;
        charge t ~kernel t.cfg.read_miss_penalty;
        Sim_wb.tick t.wb t.cfg.read_miss_penalty
      end
    end
    else begin
      ignore (Sim_cache_assoc.write t.dcache pa);
      let stall = Sim_wb.store t.wb in
      charge t ~kernel stall;
      t.s.wb_stalls <- t.s.wb_stalls + stall
    end
  | `Uncached ->
    charge t ~kernel t.cfg.uncached_penalty;
    if is_load then begin
      t.s.uncached_reads <- t.s.uncached_reads + 1;
      Sim_wb.tick t.wb t.cfg.uncached_penalty
    end
    else begin
      t.s.uncached_writes <- t.s.uncached_writes + 1;
      Sim_wb.tick t.wb t.cfg.uncached_penalty
    end

let handlers t : Parser.handlers =
  {
    Parser.on_inst = (fun addr pid kernel -> on_inst t addr pid kernel);
    on_data =
      (fun addr pid kernel is_load bytes ->
        on_data t addr pid kernel is_load bytes);
  }

let sink ?live t parser : Sink.t =
  Parser.set_handlers parser (handlers t);
  Sink.to_parser ?live parser
