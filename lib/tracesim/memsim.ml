(* Trace-driven memory-system simulator.

   Consumes the reconstructed reference stream from the trace parsing
   library and drives the independent cache/TLB/write-buffer models.  The
   paper's key modelling decisions are reproduced:

   - Caches are physically indexed: virtual addresses are translated
     through the page map extracted from the running system (§4.2).
   - The user TLB miss handler is NOT in the trace (its behaviour under
     the doubled traced text would be unrepresentative); instead, a miss
     in the simulated TLB synthesizes the handler's activity — its
     instruction fetches at the UTLB vector and its page-table entry load
     (§4.1).  KTLB misses synthesize the general-vector fast path the same
     way.
   - The kernel's explicit TLB writes are invisible, and the replacement
     point differs from the hardware's, giving Table 3's error modes.
   - Write-buffer stalls never overlap with anything (Figure 3 / liv). *)

open Systrace_tracing

type config = {
  icache_bytes : int;
  icache_line : int;
  icache_ways : int;  (* 1 = the DECstation's direct-mapped caches *)
  dcache_bytes : int;
  dcache_line : int;
  dcache_ways : int;
  read_miss_penalty : int;
  uncached_penalty : int;
  wb_depth : int;
  wb_drain : int;
  (* Address-space knowledge: translate a mapped VA for [pid]; [None] for
     an unmapped page (counted, treated as identity). *)
  pagemap : int -> int -> int option;
  (* kseg2 linear page-table base for each pid, for synthesizing the UTLB
     handler's PTE load. *)
  pt_base : int -> int;
  utlb_handler_insns : int;  (* instructions synthesized per UTLB miss *)
  ktlb_handler_insns : int;
  tlb_entries : int;         (* 64 on the DECstation *)
}

type stats = {
  mutable insts : int;              (* from the trace *)
  mutable datas : int;
  (* per-mode split, for kernel-vs-user CPI (paper, §3.4) *)
  mutable kernel_insts : int;
  mutable user_insts : int;
  mutable kernel_stall : int;
  mutable user_stall : int;
  mutable synth_insts : int;        (* synthesized handler instructions *)
  mutable icache_misses : int;
  mutable dcache_read_misses : int;
  mutable uncached_reads : int;
  mutable uncached_writes : int;
  mutable wb_stalls : int;
  mutable utlb_misses : int;
  mutable ktlb_misses : int;
  mutable unmapped : int;
}

type t = {
  cfg : config;
  (* the associative model; 1-way is qcheck-proven identical to the
     direct-mapped Sim_cache, so the default replays are unchanged *)
  icache : Sim_cache_assoc.t;
  dcache : Sim_cache_assoc.t;
  tlb : Sim_tlb.t;
  wb : Sim_wb.t;
  s : stats;
}

let create cfg =
  {
    cfg;
    icache =
      Sim_cache_assoc.create ~size_bytes:cfg.icache_bytes
        ~line_bytes:cfg.icache_line ~ways:cfg.icache_ways ();
    dcache =
      Sim_cache_assoc.create ~size_bytes:cfg.dcache_bytes
        ~line_bytes:cfg.dcache_line ~ways:cfg.dcache_ways ();
    tlb = Sim_tlb.create ~size:cfg.tlb_entries ();
    wb = Sim_wb.create ~depth:cfg.wb_depth ~drain_cycles:cfg.wb_drain ();
    s =
      {
        insts = 0;
        datas = 0;
        kernel_insts = 0;
        user_insts = 0;
        kernel_stall = 0;
        user_stall = 0;
        synth_insts = 0;
        icache_misses = 0;
        dcache_read_misses = 0;
        uncached_reads = 0;
        uncached_writes = 0;
        wb_stalls = 0;
        utlb_misses = 0;
        ktlb_misses = 0;
        unmapped = 0;
      };
  }

let stats t = t.s

let kuseg_limit = 0x80000000
let kseg1_base = 0xA0000000
let kseg2_base = 0xC0000000

let asid_of_pid pid = pid + 1

let translate t ~pid va =
  match t.cfg.pagemap pid va with
  | Some pa -> pa
  | None ->
    t.s.unmapped <- t.s.unmapped + 1;
    va land 0x00FFFFFF

(* Synthesize the KTLB refill fast path: ifetches at the general vector
   plus the root-table load (kseg0: cached). *)
let synth_ktlb t =
  t.s.ktlb_misses <- t.s.ktlb_misses + 1;
  for k = 0 to t.cfg.ktlb_handler_insns - 1 do
    t.s.synth_insts <- t.s.synth_insts + 1;
    Sim_wb.tick t.wb 1;
    if not (Sim_cache_assoc.read t.icache (0x80 + (k * 4))) then begin
      t.s.icache_misses <- t.s.icache_misses + 1;
      Sim_wb.tick t.wb t.cfg.read_miss_penalty
    end
  done;
  (* root-table load (kernel data, kseg0-resident; approximate with a
     fixed address) *)
  Sim_wb.tick t.wb 1;
  if not (Sim_cache_assoc.read t.dcache 0x9000) then begin
    t.s.dcache_read_misses <- t.s.dcache_read_misses + 1;
    Sim_wb.tick t.wb t.cfg.read_miss_penalty
  end

(* kseg2 access (page-table pages): through the TLB as a global mapping. *)
let kseg2_access t ~pid ~is_load va =
  let vpn = va lsr 12 in
  if not (Sim_tlb.access t.tlb ~vpn ~asid:0 ~global:true ~user:false) then
    synth_ktlb t;
  let pa = translate t ~pid va in
  if is_load then begin
    if not (Sim_cache_assoc.read t.dcache pa) then begin
      t.s.dcache_read_misses <- t.s.dcache_read_misses + 1;
      Sim_wb.tick t.wb t.cfg.read_miss_penalty
    end
  end
  else begin
    (* write-through/no-allocate: the returned hit/miss only moves the
       cache's own write counters, which a qcheck property ties to it *)
    let (_hit : bool) = Sim_cache_assoc.write t.dcache pa in
    t.s.wb_stalls <- t.s.wb_stalls + Sim_wb.store t.wb
  end

(* Synthesize the UTLB refill handler: its ifetches at the UTLB vector and
   its PTE load from the faulting process's linear page table in kseg2
   (which can itself take a KTLB miss). *)
let synth_utlb t ~pid ~vpn =
  t.s.utlb_misses <- t.s.utlb_misses + 1;
  for k = 0 to t.cfg.utlb_handler_insns - 1 do
    t.s.synth_insts <- t.s.synth_insts + 1;
    Sim_wb.tick t.wb 1;
    if not (Sim_cache_assoc.read t.icache (k * 4)) then begin
      t.s.icache_misses <- t.s.icache_misses + 1;
      Sim_wb.tick t.wb t.cfg.read_miss_penalty
    end
  done;
  let pte_va = t.cfg.pt_base pid + (vpn * 4) in
  kseg2_access t ~pid ~is_load:true pte_va

(* Map a virtual reference to a physical one, charging TLB behaviour. *)
let to_phys t ~pid va =
  if va < kuseg_limit then begin
    let vpn = va lsr 12 in
    if
      not
        (Sim_tlb.access t.tlb ~vpn ~asid:(asid_of_pid pid) ~global:false
           ~user:true)
    then synth_utlb t ~pid ~vpn;
    `Cached (translate t ~pid va)
  end
  else if va < kseg1_base then `Cached (va - 0x80000000)
  else if va < kseg2_base then `Uncached
  else begin
    let vpn = va lsr 12 in
    if not (Sim_tlb.access t.tlb ~vpn ~asid:0 ~global:true ~user:false) then
      synth_ktlb t;
    `Cached (translate t ~pid va)
  end

let charge t ~kernel stall =
  if kernel then t.s.kernel_stall <- t.s.kernel_stall + stall
  else t.s.user_stall <- t.s.user_stall + stall

let on_inst t addr pid kernel =
  t.s.insts <- t.s.insts + 1;
  if kernel then t.s.kernel_insts <- t.s.kernel_insts + 1
  else t.s.user_insts <- t.s.user_insts + 1;
  Sim_wb.tick t.wb 1;
  match to_phys t ~pid addr with
  | `Cached pa ->
    if not (Sim_cache_assoc.read t.icache pa) then begin
      t.s.icache_misses <- t.s.icache_misses + 1;
      charge t ~kernel t.cfg.read_miss_penalty;
      Sim_wb.tick t.wb t.cfg.read_miss_penalty
    end
  | `Uncached ->
    t.s.uncached_reads <- t.s.uncached_reads + 1;
    charge t ~kernel t.cfg.uncached_penalty;
    Sim_wb.tick t.wb t.cfg.uncached_penalty

let on_data t addr pid kernel is_load _bytes =
  t.s.datas <- t.s.datas + 1;
  match to_phys t ~pid addr with
  | `Cached pa ->
    if is_load then begin
      if not (Sim_cache_assoc.read t.dcache pa) then begin
        t.s.dcache_read_misses <- t.s.dcache_read_misses + 1;
        charge t ~kernel t.cfg.read_miss_penalty;
        Sim_wb.tick t.wb t.cfg.read_miss_penalty
      end
    end
    else begin
      let (_hit : bool) = Sim_cache_assoc.write t.dcache pa in
      let stall = Sim_wb.store t.wb in
      charge t ~kernel stall;
      t.s.wb_stalls <- t.s.wb_stalls + stall
    end
  | `Uncached ->
    charge t ~kernel t.cfg.uncached_penalty;
    if is_load then begin
      t.s.uncached_reads <- t.s.uncached_reads + 1;
      Sim_wb.tick t.wb t.cfg.uncached_penalty
    end
    else begin
      t.s.uncached_writes <- t.s.uncached_writes + 1;
      Sim_wb.tick t.wb t.cfg.uncached_penalty
    end

let handlers t : Parser.handlers =
  {
    Parser.on_inst = (fun addr pid kernel -> on_inst t addr pid kernel);
    on_data =
      (fun addr pid kernel is_load bytes ->
        on_data t addr pid kernel is_load bytes);
  }

let sink ?live t parser : Sink.t =
  Parser.set_handlers parser (handlers t);
  Sink.to_parser ?live parser

(* ================================================================== *)
(* Single-pass multi-configuration sweep.

   Evaluating K configurations by K independent replays decodes and
   translates the same trace K times; this sink does the shared work once
   per reference and keeps only the per-configuration state that actually
   differs.  The decomposition follows the dependence structure of the
   single-configuration simulator above:

   - Reference classification (kuseg/kseg0/kseg1/kseg2), the page-map
     lookup and the per-mode instruction counts depend only on the trace:
     they are computed once, globally.
   - The TLB access stream — including the synthesized handler references
     a miss injects — depends only on the trace and the TLB parameters,
     so configurations sharing (tlb_entries, handler lengths) share one
     TLB and one synthesized stream ("groups" below).
   - Cache contents depend on the trace and the group's synthesized
     stream; within a group, distinct geometries are simulated once each,
     shared by every configuration that names them — and icache families
     that nest (same line size and set count, ascending ways) collapse
     into a single Mattson LRU stack ({!Sim_stack}), one state update for
     the whole family.  The dcache's write-through/no-allocate write path
     breaks the stack's inclusion property (DESIGN.md 5f), so dcache
     geometries stay one unit each.
   - The write buffer depends on everything above plus the penalties, but
     its clock is a pure sum of counted events: rather than ticking every
     lane's buffer on every reference, each lane derives its clock from
     the shared counters on demand and only pays per store
     ({!Sim_wb.ring_store}).

   Per-configuration [stats] are assembled at the end as arithmetic over
   the unit counters; a qcheck property in the test suite holds them
   byte-identical to K independent {!create}/{!sink} runs. *)

(* miss counters split by what the single-config simulator would have
   charged: synthesized-handler references are never charged to
   kernel/user stall, trace references are charged by mode *)
type miss_ctr = {
  mutable c_synth : int;
  mutable c_kernel : int;
  mutable c_user : int;
}

let ctr () = { c_synth = 0; c_kernel = 0; c_user = 0 }
let ctr_total m = m.c_synth + m.c_kernel + m.c_user

let ctx_synth = 0

let bump m ctx =
  if ctx = 0 then m.c_synth <- m.c_synth + 1
  else if ctx = 1 then m.c_kernel <- m.c_kernel + 1
  else m.c_user <- m.c_user + 1

type ic_unit =
  | Ic_plain of Sim_cache_assoc.t * miss_ctr
  | Ic_stack of Sim_stack.t * miss_ctr array  (* counters in ways order *)

type dc_unit = { du_cache : Sim_cache_assoc.t; du_ctr : miss_ctr }

(* configurations whose TLB parameters agree see the same reference
   stream (trace + synthesized handlers) and share everything below *)
type group = {
  gr_tlb : Sim_tlb.t;
  gr_utlb_insns : int;
  gr_ktlb_insns : int;
  gr_ic : ic_unit array;
  gr_dc : dc_unit array;
  mutable gr_utlb : int;
  mutable gr_ktlb : int;
  mutable gr_synth : int;
  mutable gr_unmapped : int;
}

(* one configuration's view: its group, its cache-unit counters, and its
   own write buffer (the only state no two distinct configs can share) *)
type lane = {
  la_cfg : config;
  la_group : group;
  la_ic : miss_ctr;
  la_dc : miss_ctr;
  la_ring : Sim_wb.ring;
  mutable la_stall_k : int;
  mutable la_stall_u : int;
}

type sweep = {
  sw_groups : group array;
  sw_lanes : lane array;
  sw_pagemap : int -> int -> int option;
  sw_pt_base : int -> int;
  (* trace-only counters, identical for every configuration *)
  mutable sv_insts : int;
  mutable sv_datas : int;
  mutable sv_kernel_insts : int;
  mutable sv_user_insts : int;
  mutable sv_unc_ifetch : int;
  mutable sv_unc_dload : int;
  mutable sv_unc_dstore : int;
  mutable sv_unc_kernel : int;  (* uncached events, by mode, for charging *)
  mutable sv_unc_user : int;
  mutable sv_dloads_cached : int;
}

let nsets_of ~what ~bytes ~line ~ways =
  if bytes <= 0 || line <= 0 || ways <= 0 || bytes mod (line * ways) <> 0
  then invalid_arg ("Memsim.sweep: bad " ^ what ^ " geometry")
  else bytes / (line * ways)

let sweep cfg_list : sweep =
  let cfgs = Array.of_list cfg_list in
  if Array.length cfgs = 0 then invalid_arg "Memsim.sweep: no configurations";
  let c0 = cfgs.(0) in
  Array.iter
    (fun c ->
      if c.pagemap != c0.pagemap || c.pt_base != c0.pt_base then
        invalid_arg
          "Memsim.sweep: all configurations must share pagemap and pt_base \
           (translation is done once per reference)")
    cfgs;
  let gkey c = (c.tlb_entries, c.utlb_handler_insns, c.ktlb_handler_insns) in
  let ic_geom c =
    ( c.icache_line,
      nsets_of ~what:"icache" ~bytes:c.icache_bytes ~line:c.icache_line
        ~ways:c.icache_ways,
      c.icache_ways )
  in
  let dc_geom c =
    ( c.dcache_line,
      nsets_of ~what:"dcache" ~bytes:c.dcache_bytes ~line:c.dcache_line
        ~ways:c.dcache_ways,
      c.dcache_ways )
  in
  let distinct l =
    List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l
    |> List.rev
  in
  let keys = distinct (Array.to_list (Array.map gkey cfgs)) in
  (* per group: the shared state plus lookup tables from a lane's cache
     geometry to its member counter / unit *)
  let built =
    List.map
      (fun ((tlb_entries, uh, kh) as key) ->
        let members =
          List.filter (fun c -> gkey c = key) (Array.to_list cfgs)
        in
        let dc_units =
          List.map
            (fun ((line, nsets, ways) as g) ->
              ( g,
                {
                  du_cache =
                    Sim_cache_assoc.create ~size_bytes:(line * nsets * ways)
                      ~line_bytes:line ~ways ();
                  du_ctr = ctr ();
                } ))
            (distinct (List.map dc_geom members))
        in
        (* icache units: nesting families (same line, same nsets, several
           associativities) collapse into one LRU stack *)
        let ic_geoms = distinct (List.map ic_geom members) in
        let fam_keys =
          distinct (List.map (fun (line, nsets, _) -> (line, nsets)) ic_geoms)
        in
        let ic_units =
          List.map
            (fun (line, nsets) ->
              let ways =
                List.sort compare
                  (List.filter_map
                     (fun (l, n, w) ->
                       if l = line && n = nsets then Some w else None)
                     ic_geoms)
              in
              match ways with
              | [ w ] ->
                let m = ctr () in
                ( Ic_plain
                    ( Sim_cache_assoc.create ~size_bytes:(line * nsets * w)
                        ~line_bytes:line ~ways:w (),
                      m ),
                  [ ((line, nsets, w), m) ] )
              | ways ->
                let ms = Array.of_list (List.map (fun _ -> ctr ()) ways) in
                ( Ic_stack
                    ( Sim_stack.create ~line_bytes:line ~nsets
                        ~ways:(Array.of_list ways),
                      ms ),
                  List.mapi (fun i w -> ((line, nsets, w), ms.(i))) ways ))
            fam_keys
        in
        let g =
          {
            gr_tlb = Sim_tlb.create ~size:tlb_entries ();
            gr_utlb_insns = uh;
            gr_ktlb_insns = kh;
            gr_ic = Array.of_list (List.map fst ic_units);
            gr_dc = Array.of_list (List.map snd dc_units);
            gr_utlb = 0;
            gr_ktlb = 0;
            gr_synth = 0;
            gr_unmapped = 0;
          }
        in
        (key, (g, List.concat_map snd ic_units, dc_units)))
      keys
  in
  let lanes =
    Array.map
      (fun c ->
        let g, ic_lookup, dc_lookup = List.assoc (gkey c) built in
        {
          la_cfg = c;
          la_group = g;
          la_ic = List.assoc (ic_geom c) ic_lookup;
          la_dc = (List.assoc (dc_geom c) dc_lookup).du_ctr;
          la_ring =
            Sim_wb.ring_create ~depth:c.wb_depth ~drain_cycles:c.wb_drain;
          la_stall_k = 0;
          la_stall_u = 0;
        })
      cfgs
  in
  {
    sw_groups = Array.of_list (List.map (fun (_, (g, _, _)) -> g) built);
    sw_lanes = lanes;
    sw_pagemap = c0.pagemap;
    sw_pt_base = c0.pt_base;
    sv_insts = 0;
    sv_datas = 0;
    sv_kernel_insts = 0;
    sv_user_insts = 0;
    sv_unc_ifetch = 0;
    sv_unc_dload = 0;
    sv_unc_dstore = 0;
    sv_unc_kernel = 0;
    sv_unc_user = 0;
    sv_dloads_cached = 0;
  }

(* one icache read by every unit of a group.  These inner loops run once
   per group per trace reference: plain [for] loops, not [Array.iter],
   because an iter closure would capture [pa]/[ctx] and heap-allocate on
   every reference. *)
let g_ic_read g pa ctx =
  let units = g.gr_ic in
  for i = 0 to Array.length units - 1 do
    match Array.unsafe_get units i with
    | Ic_plain (c, m) -> if not (Sim_cache_assoc.read c pa) then bump m ctx
    | Ic_stack (st, ms) ->
      let mask = Sim_stack.read st pa in
      if mask <> 0 then begin
        let rec go i mask =
          if mask <> 0 then begin
            if mask land 1 = 1 then bump ms.(i) ctx;
            go (i + 1) (mask lsr 1)
          end
        in
        go 0 mask
      end
  done

let g_dc_read g pa ctx =
  let units = g.gr_dc in
  for i = 0 to Array.length units - 1 do
    let u = Array.unsafe_get units i in
    if not (Sim_cache_assoc.read u.du_cache pa) then bump u.du_ctr ctx
  done

let g_translate sw g pid va =
  match sw.sw_pagemap pid va with
  | Some pa -> pa
  | None ->
    g.gr_unmapped <- g.gr_unmapped + 1;
    va land 0x00FFFFFF

(* the synthesized handler paths, exactly mirroring [synth_ktlb],
   [kseg2_access ~is_load:true] and [synth_utlb] above, minus the eager
   write-buffer ticks (derived from these same counters at store time) *)
let g_synth_ktlb g =
  g.gr_ktlb <- g.gr_ktlb + 1;
  for k = 0 to g.gr_ktlb_insns - 1 do
    g.gr_synth <- g.gr_synth + 1;
    g_ic_read g (0x80 + (k * 4)) ctx_synth
  done;
  g_dc_read g 0x9000 ctx_synth

let g_kseg2_load sw g pid va =
  let vpn = va lsr 12 in
  if not (Sim_tlb.access g.gr_tlb ~vpn ~asid:0 ~global:true ~user:false) then
    g_synth_ktlb g;
  let pa = g_translate sw g pid va in
  g_dc_read g pa ctx_synth

let g_synth_utlb sw g pid vpn =
  g.gr_utlb <- g.gr_utlb + 1;
  for k = 0 to g.gr_utlb_insns - 1 do
    g.gr_synth <- g.gr_synth + 1;
    g_ic_read g (k * 4) ctx_synth
  done;
  g_kseg2_load sw g pid (sw.sw_pt_base pid + (vpn * 4))

(* A lane's write-buffer clock, derived on demand.  The eager simulator
   ticks 1 per instruction (trace and synthesized, plus one extra before
   each KTLB root-table load), the uncached penalty per uncached event,
   and the read-miss penalty per cache read miss; stalls advance the
   clock too.  All of those are already counted, so the clock is a sum. *)
let lane_clock sw l =
  let g = l.la_group in
  sw.sv_insts + g.gr_synth + g.gr_ktlb
  + ((sw.sv_unc_ifetch + sw.sv_unc_dload + sw.sv_unc_dstore)
     * l.la_cfg.uncached_penalty)
  + ((ctr_total l.la_ic + ctr_total l.la_dc) * l.la_cfg.read_miss_penalty)
  + l.la_stall_k + l.la_stall_u

let sweep_on_inst sw addr pid kernel =
  sw.sv_insts <- sw.sv_insts + 1;
  if kernel then sw.sv_kernel_insts <- sw.sv_kernel_insts + 1
  else sw.sv_user_insts <- sw.sv_user_insts + 1;
  let ctx = if kernel then 1 else 2 in
  let groups = sw.sw_groups in
  if addr < kuseg_limit then begin
    let vpn = addr lsr 12 in
    let asid = asid_of_pid pid in
    let pa_opt = sw.sw_pagemap pid addr in
    for i = 0 to Array.length groups - 1 do
      let g = Array.unsafe_get groups i in
      if not (Sim_tlb.access g.gr_tlb ~vpn ~asid ~global:false ~user:true)
      then g_synth_utlb sw g pid vpn;
      let pa =
        match pa_opt with
        | Some pa -> pa
        | None ->
          g.gr_unmapped <- g.gr_unmapped + 1;
          addr land 0x00FFFFFF
      in
      g_ic_read g pa ctx
    done
  end
  else if addr < kseg1_base then begin
    let pa = addr - 0x80000000 in
    for i = 0 to Array.length groups - 1 do
      g_ic_read (Array.unsafe_get groups i) pa ctx
    done
  end
  else if addr < kseg2_base then begin
    sw.sv_unc_ifetch <- sw.sv_unc_ifetch + 1;
    if kernel then sw.sv_unc_kernel <- sw.sv_unc_kernel + 1
    else sw.sv_unc_user <- sw.sv_unc_user + 1
  end
  else begin
    let vpn = addr lsr 12 in
    let pa_opt = sw.sw_pagemap pid addr in
    for i = 0 to Array.length groups - 1 do
      let g = Array.unsafe_get groups i in
      if not (Sim_tlb.access g.gr_tlb ~vpn ~asid:0 ~global:true ~user:false)
      then g_synth_ktlb g;
      let pa =
        match pa_opt with
        | Some pa -> pa
        | None ->
          g.gr_unmapped <- g.gr_unmapped + 1;
          addr land 0x00FFFFFF
      in
      g_ic_read g pa ctx
    done
  end

let sweep_on_data sw addr pid kernel is_load _bytes =
  sw.sv_datas <- sw.sv_datas + 1;
  if addr >= kseg1_base && addr < kseg2_base then begin
    (* uncached: classification and charge are trace-only, no per-group
       state is touched (matching [to_phys]'s `Uncached path) *)
    if is_load then sw.sv_unc_dload <- sw.sv_unc_dload + 1
    else sw.sv_unc_dstore <- sw.sv_unc_dstore + 1;
    if kernel then sw.sv_unc_kernel <- sw.sv_unc_kernel + 1
    else sw.sv_unc_user <- sw.sv_unc_user + 1
  end
  else begin
    let ctx = if kernel then 1 else 2 in
    if is_load then sw.sv_dloads_cached <- sw.sv_dloads_cached + 1;
    let kuseg = addr < kuseg_limit in
    let kseg2 = addr >= kseg2_base in
    let pa_opt =
      if kuseg || kseg2 then sw.sw_pagemap pid addr else None
    in
    let groups = sw.sw_groups in
    for i = 0 to Array.length groups - 1 do
      let g = Array.unsafe_get groups i in
      (if kuseg then begin
         let vpn = addr lsr 12 in
         if
           not
             (Sim_tlb.access g.gr_tlb ~vpn ~asid:(asid_of_pid pid)
                ~global:false ~user:true)
         then g_synth_utlb sw g pid vpn
       end
       else if kseg2 then begin
         let vpn = addr lsr 12 in
         if
           not (Sim_tlb.access g.gr_tlb ~vpn ~asid:0 ~global:true ~user:false)
         then g_synth_ktlb g
       end);
      let pa =
        if kuseg || kseg2 then
          match pa_opt with
          | Some pa -> pa
          | None ->
            g.gr_unmapped <- g.gr_unmapped + 1;
            addr land 0x00FFFFFF
        else addr - 0x80000000
      in
      if is_load then g_dc_read g pa ctx
      else begin
        let units = g.gr_dc in
        for j = 0 to Array.length units - 1 do
          let u = Array.unsafe_get units j in
          let (_hit : bool) = Sim_cache_assoc.write u.du_cache pa in
          ()
        done
      end
    done;
    (* stores issue to every lane's buffer after its group's TLB/cache
       state (and hence its derived clock) is current for this event *)
    if not is_load then begin
      let lanes = sw.sw_lanes in
      for i = 0 to Array.length lanes - 1 do
        let l = Array.unsafe_get lanes i in
        let stall = Sim_wb.ring_store l.la_ring ~clock:(lane_clock sw l) in
        if kernel then l.la_stall_k <- l.la_stall_k + stall
        else l.la_stall_u <- l.la_stall_u + stall
      done
    end
  end

let sweep_stats sw =
  Array.map
    (fun l ->
      let g = l.la_group and c = l.la_cfg in
      let rmp = c.read_miss_penalty and up = c.uncached_penalty in
      {
        insts = sw.sv_insts;
        datas = sw.sv_datas;
        kernel_insts = sw.sv_kernel_insts;
        user_insts = sw.sv_user_insts;
        kernel_stall =
          ((l.la_ic.c_kernel + l.la_dc.c_kernel) * rmp)
          + (sw.sv_unc_kernel * up) + l.la_stall_k;
        user_stall =
          ((l.la_ic.c_user + l.la_dc.c_user) * rmp)
          + (sw.sv_unc_user * up) + l.la_stall_u;
        synth_insts = g.gr_synth;
        icache_misses = ctr_total l.la_ic;
        dcache_read_misses = ctr_total l.la_dc;
        uncached_reads = sw.sv_unc_ifetch + sw.sv_unc_dload;
        uncached_writes = sw.sv_unc_dstore;
        wb_stalls = l.la_stall_k + l.la_stall_u;
        utlb_misses = g.gr_utlb;
        ktlb_misses = g.gr_ktlb;
        unmapped = g.gr_unmapped;
      })
    sw.sw_lanes

let sweep_accesses sw =
  Array.map
    (fun l ->
      let g = l.la_group in
      ( sw.sv_insts - sw.sv_unc_ifetch + g.gr_synth,
        sw.sv_dloads_cached + g.gr_utlb + g.gr_ktlb ))
    sw.sw_lanes

let sweep_handlers sw : Parser.handlers =
  {
    Parser.on_inst = (fun addr pid kernel -> sweep_on_inst sw addr pid kernel);
    on_data =
      (fun addr pid kernel is_load bytes ->
        sweep_on_data sw addr pid kernel is_load bytes);
  }

let sweep_sink ?live sw parser : Sink.t =
  Parser.set_handlers parser (sweep_handlers sw);
  Sink.to_parser ?live parser

(* A (size x line x TLB entries x WB depth) geometry grid over [base].
   With [nested] (the default) associativity scales with size at a fixed
   set count — ways = size / min size — so each (line, TLB) family of
   sizes nests and the sweep's icache stack fast path covers the whole
   size axis in one unit.  With [~nested:false] every size is
   direct-mapped (set counts differ, nothing nests: one cache unit per
   geometry). *)
let grid ?(nested = true) ~base ~sizes ~lines ~tlb_entries ~wb_depths () :
    (string * config) list =
  if sizes = [] || lines = [] || tlb_entries = [] || wb_depths = [] then
    invalid_arg "Memsim.grid: empty axis";
  let min_size = List.fold_left min max_int sizes in
  List.concat_map
    (fun size ->
      let ways =
        if not nested then 1
        else if size mod min_size <> 0 then
          invalid_arg "Memsim.grid: nested sizes must be multiples of the \
                       smallest"
        else size / min_size
      in
      List.concat_map
        (fun line ->
          List.concat_map
            (fun tlb ->
              List.map
                (fun wb ->
                  ( Printf.sprintf "%dK/%dB/%dw tlb%d wb%d" (size / 1024) line
                      ways tlb wb,
                    {
                      base with
                      icache_bytes = size;
                      icache_line = line;
                      icache_ways = ways;
                      dcache_bytes = size;
                      dcache_line = line;
                      dcache_ways = ways;
                      tlb_entries = tlb;
                      wb_depth = wb;
                    } ))
                wb_depths)
            tlb_entries)
        lines)
    sizes
