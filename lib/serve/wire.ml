(* Wire framing for trace streams over a socket.

   Everything on the wire is a 4-byte little-endian unit (magic, frame
   headers, trace words), so the incremental decoder only ever has to
   carry at most 3 bytes of a split unit between feeds.  The hot path is
   the bulk word copy: while inside a frame with no partial unit pending,
   words go straight from the read buffer into the caller's destination
   array with one [Bytes.get_int32_le] per word — no intermediate
   allocation, whatever the socket read chunking was. *)

let magic = 0x31565253 (* "SRV1" little-endian *)
let max_frame_words = (1 lsl 24) - 1
let kind_words = 0
let kind_end = 1

type error = { at : int; state : string; message : string }

let describe e =
  Printf.sprintf "byte %d: %s: %s" e.at e.state e.message

type status =
  | Need_more
  | Dst_full
  | Frame_end
  | Stream_end
  | Fault of error

(* phase: 0 = expecting magic, 1 = expecting a frame header, 2 = inside a
   words frame, 3 = ended (END frame seen), 4 = faulted (sticky). *)
type decoder = {
  mutable phase : int;
  mutable part : int;  (* partial little-endian unit, low bytes first *)
  mutable part_have : int;  (* bytes of [part] received, 0..3 *)
  mutable remaining : int;  (* words left in the current frame *)
  mutable bytes_in : int;
  mutable frames_in : int;
  mutable words_in : int;
  mutable flt : error option;
}

let decoder () =
  {
    phase = 0;
    part = 0;
    part_have = 0;
    remaining = 0;
    bytes_in = 0;
    frames_in = 0;
    words_in = 0;
    flt = None;
  }

let words d = d.words_in
let frames d = d.frames_in
let bytes d = d.bytes_in
let ended d = d.phase = 3
let fault d = d.flt

let fail d state message =
  let e = { at = d.bytes_in; state; message } in
  d.phase <- 4;
  d.flt <- Some e;
  Fault e

(* Pull bytes into the partial-unit accumulator; true when complete. *)
let gather d src src_pos src_len =
  while d.part_have < 4 && !src_pos < src_len do
    d.part <-
      d.part lor (Char.code (Bytes.unsafe_get src !src_pos) lsl (8 * d.part_have));
    d.part_have <- d.part_have + 1;
    incr src_pos;
    d.bytes_in <- d.bytes_in + 1
  done;
  d.part_have = 4

let take_unit d =
  let u = d.part in
  d.part <- 0;
  d.part_have <- 0;
  u

let decode d ~src ~src_pos ~src_len ~dst ~dst_pos ~dst_len =
  let rec go () =
    match d.phase with
    | 4 -> Fault (Option.get d.flt)
    | 3 ->
      if !src_pos < src_len then begin
        let extra = src_len - !src_pos in
        src_pos := src_len;
        fail d "after END"
          (Printf.sprintf "%d trailing byte(s) after the END frame" extra)
      end
      else Stream_end
    | 2 ->
      (* frame payload *)
      if d.part_have > 0 then
        (* finish a word split across reads *)
        if !dst_pos >= dst_len then Dst_full
        else if not (gather d src src_pos src_len) then Need_more
        else begin
          Array.unsafe_set dst !dst_pos (take_unit d);
          incr dst_pos;
          d.words_in <- d.words_in + 1;
          d.remaining <- d.remaining - 1;
          if d.remaining = 0 then begin
            d.phase <- 1;
            d.frames_in <- d.frames_in + 1;
            Frame_end
          end
          else go ()
        end
      else begin
        let src_words = (src_len - !src_pos) / 4 in
        let k = min d.remaining (min src_words (dst_len - !dst_pos)) in
        if k > 0 then begin
          let sp = !src_pos and dp = !dst_pos in
          for i = 0 to k - 1 do
            Array.unsafe_set dst (dp + i)
              (Int32.to_int (Bytes.get_int32_le src (sp + (4 * i)))
              land 0xFFFFFFFF)
          done;
          src_pos := sp + (4 * k);
          dst_pos := dp + k;
          d.bytes_in <- d.bytes_in + (4 * k);
          d.words_in <- d.words_in + k;
          d.remaining <- d.remaining - k
        end;
        if d.remaining = 0 then begin
          d.phase <- 1;
          d.frames_in <- d.frames_in + 1;
          Frame_end
        end
        else if !dst_pos >= dst_len then Dst_full
        else begin
          (* fewer than 4 source bytes left: stash them *)
          ignore (gather d src src_pos src_len : bool);
          Need_more
        end
      end
    | _ ->
      (* 0 (magic) or 1 (frame header): need one whole unit *)
      if not (gather d src src_pos src_len) then Need_more
      else begin
        let u = take_unit d in
        if d.phase = 0 then
          if u = magic then begin
            d.phase <- 1;
            go ()
          end
          else
            fail d "stream header"
              (Printf.sprintf "bad magic 0x%08x (want 0x%08x)" u magic)
        else begin
          let kind = (u lsr 24) land 0xFF and n = u land 0xFFFFFF in
          if kind = kind_words then
            if n = 0 then begin
              (* an empty drain is legal, just pointless *)
              d.frames_in <- d.frames_in + 1;
              Frame_end
            end
            else begin
              d.remaining <- n;
              d.phase <- 2;
              go ()
            end
          else if kind = kind_end then
            if n <> 0 then
              fail d "END frame"
                (Printf.sprintf "END frame carries count %d (want 0)" n)
            else begin
              d.phase <- 3;
              Stream_end
            end
          else fail d "frame header" (Printf.sprintf "unknown frame kind %d" kind)
        end
      end
  in
  go ()

let eof_error d =
  match d.phase with
  | 3 -> None
  | 4 -> d.flt
  | 0 ->
    Some
      {
        at = d.bytes_in;
        state = "stream header";
        message =
          (if d.bytes_in = 0 then "connection closed before the stream magic"
           else "connection closed inside the stream magic");
      }
  | 1 ->
    Some
      {
        at = d.bytes_in;
        state = "frame header";
        message =
          (if d.part_have = 0 then
             "connection closed between frames without an END frame"
           else "connection closed inside a frame header");
      }
  | _ ->
    Some
      {
        at = d.bytes_in;
        state = "frame payload";
        message =
          Printf.sprintf "connection cut mid-frame: %d word(s) short"
            d.remaining;
      }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let put_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let put_magic b = put_u32 b magic

let put_frame_header b n =
  if n < 0 || n > max_frame_words then
    invalid_arg (Printf.sprintf "Wire.put_frame_header: %d words" n);
  put_u32 b ((kind_words lsl 24) lor n)

let put_words b ws ~off ~len =
  for i = off to off + len - 1 do
    let w = ws.(i) in
    if w < 0 || w > 0xFFFFFFFF then
      invalid_arg
        (Printf.sprintf "Wire.put_words: word %d = 0x%x outside 32-bit range" i
           w);
    put_u32 b w
  done

let put_end b = put_u32 b (kind_end lsl 24)

let encode ?(frame_words = 65536) ws =
  if frame_words < 1 || frame_words > max_frame_words then
    invalid_arg (Printf.sprintf "Wire.encode: frame_words %d" frame_words);
  let n = Array.length ws in
  let b = Buffer.create ((4 * n) + 16) in
  put_magic b;
  let off = ref 0 in
  while !off < n do
    let len = min frame_words (n - !off) in
    put_frame_header b len;
    put_words b ws ~off:!off ~len;
    off := !off + len
  done;
  put_end b;
  Buffer.contents b
