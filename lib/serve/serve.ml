(* The trace-ingest daemon: acceptor domain + worker domains, each
   worker running a select loop over the connections it owns.  Per
   connection the hot path is: one batched [read] into a reused byte
   buffer, [Wire.decode] straight into the bounded queue's open slot
   (no intermediate array), then pop-and-drain each queued chunk
   through the stream's sink pipeline.  See serve.mli for the flow
   control story. *)

module Sink = Systrace_tracing.Sink
module Parser = Systrace_tracing.Parser

type pipeline = { sink : Sink.t; diagnoses : unit -> int }
type pipeline_factory = unit -> pipeline

let null_pipeline () = { sink = Sink.null; diagnoses = (fun () -> 0) }

let scan_pipeline () =
  let sc = Parser.scanner () in
  let diag = ref 0 in
  let sink =
    Sink.make
      ~finish:(fun () -> diag := List.length (Parser.scan_finish sc))
      (fun ws ~len -> Parser.scan_feed sc ws ~len)
  in
  { sink; diagnoses = (fun () -> !diag) }

let to_parser_pipeline mk () =
  let p = mk () in
  let inner = Sink.to_parser p in
  let diag = ref 0 in
  let sink =
    Sink.make
      ~finish:(fun () ->
        inner.Sink.finish ();
        diag := (Parser.stats p).Parser.parse_errors)
      (fun ws ~len -> inner.Sink.on_words ws ~len)
  in
  { sink; diagnoses = (fun () -> !diag) }

type config = {
  unix_path : string option;
  tcp : (string * int) option;
  ctl_path : string option;
  workers : int;
  queue_slots : int;
  slot_words : int;
  lossy : bool;
  batch_bytes : int;
  pipeline : pipeline_factory;
}

let default_config pipeline =
  {
    unix_path = None;
    tcp = None;
    ctl_path = None;
    workers = 2;
    queue_slots = 4;
    slot_words = 16384;
    lossy = false;
    batch_bytes = 1 lsl 18;
    pipeline;
  }

type snapshot = {
  streams_total : int;
  streams_active : int;
  streams_faulted : int;
  words_in : int;
  words_analyzed : int;
  words_dropped : int;
  frames_in : int;
  frames_dropped : int;
  diagnoses : int;
  peak_resident_words : int;
  drains : int;
  drain_p50 : float;
  drain_p99 : float;
  drain_max : float;
}

let render s =
  String.concat ""
    [
      Printf.sprintf "streams_total %d\n" s.streams_total;
      Printf.sprintf "streams_active %d\n" s.streams_active;
      Printf.sprintf "streams_faulted %d\n" s.streams_faulted;
      Printf.sprintf "words_in %d\n" s.words_in;
      Printf.sprintf "words_analyzed %d\n" s.words_analyzed;
      Printf.sprintf "words_dropped %d\n" s.words_dropped;
      Printf.sprintf "frames_in %d\n" s.frames_in;
      Printf.sprintf "frames_dropped %d\n" s.frames_dropped;
      Printf.sprintf "diagnoses %d\n" s.diagnoses;
      Printf.sprintf "peak_resident_words %d\n" s.peak_resident_words;
      Printf.sprintf "drains %d\n" s.drains;
      Printf.sprintf "drain_p50_s %.9f\n" s.drain_p50;
      Printf.sprintf "drain_p99_s %.9f\n" s.drain_p99;
      Printf.sprintf "drain_max_s %.9f\n" s.drain_max;
    ]

(* ------------------------------------------------------------------ *)
(* Aggregated counters (shared across domains, mutex-protected).       *)

let lat_cap = 65536

type totals = {
  mu : Mutex.t;
  mutable streams_total : int;
  mutable streams_active : int;
  mutable streams_faulted : int;
  mutable words_in : int;
  mutable words_analyzed : int;
  mutable words_dropped : int;
  mutable frames_in : int;
  mutable frames_dropped : int;
  mutable diagnoses : int;
  mutable peak_resident : int;
  mutable drains : int;
  lat : float array;  (* ring of recent drain latencies, seconds *)
  mutable lat_n : int;  (* total ever recorded *)
  mutable lat_max : float;
}

let totals () =
  {
    mu = Mutex.create ();
    streams_total = 0;
    streams_active = 0;
    streams_faulted = 0;
    words_in = 0;
    words_analyzed = 0;
    words_dropped = 0;
    frames_in = 0;
    frames_dropped = 0;
    diagnoses = 0;
    peak_resident = 0;
    drains = 0;
    lat = Array.make lat_cap 0.0;
    lat_n = 0;
    lat_max = 0.0;
  }

let record_drain g dt =
  Mutex.lock g.mu;
  g.drains <- g.drains + 1;
  g.lat.(g.lat_n mod lat_cap) <- dt;
  g.lat_n <- g.lat_n + 1;
  if dt > g.lat_max then g.lat_max <- dt;
  Mutex.unlock g.mu

(* ------------------------------------------------------------------ *)
(* Per-connection state (owned by exactly one worker domain).          *)

type conn = {
  fd : Unix.file_descr;
  dec : Wire.decoder;
  q : Bqueue.t;
  pipe : pipeline;
  rbuf : Bytes.t;
  mutable rpos : int;
  mutable rlen : int;
  mutable eof : bool;
  scratch : int array;  (* lossy-mode decode target when the queue is full *)
  mutable frame_had_drop : bool;
  mutable dropped_words : int;
  mutable dropped_frames : int;
  mutable analyzed : int;
  mutable sink_exn : bool;  (* a pipeline raised: counted as a diagnosis *)
}

type worker = {
  amu : Mutex.t;
  incoming : Unix.file_descr Queue.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable dom : unit Domain.t option;
}

type t = {
  cfg : config;
  g : totals;
  stop_flag : bool Atomic.t;
  listeners : Unix.file_descr list;
  unlink_paths : string list;
  ctl_fd : Unix.file_descr option;
  port : int option;
  ws : worker array;
  mutable acceptor : unit Domain.t option;
}

let tcp_port t = t.port

let wire_done c = Wire.ended c.dec || Wire.fault c.dec <> None

let wake w =
  try ignore (Unix.write_substring w.wake_w "x" 0 1) with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error _ -> ()

(* Write a short (reply-sized) string on a nonblocking fd, waiting for
   writability between partial writes; gives up quietly if the peer is
   gone or unresponsive — a dying client must not wedge its worker. *)
let write_reply fd s =
  let len = String.length s in
  let pos = ref 0 and tries = ref 0 in
  (try
     while !pos < len && !tries < 50 do
       incr tries;
       match Unix.write_substring fd s !pos (len - !pos) with
       | n -> pos := !pos + n
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
         ignore (Unix.select [] [ fd ] [] 0.1)
     done
   with Unix.Unix_error _ -> ())

(* ---- decode: rbuf bytes -> bounded queue (or scratch when lossy) --- *)

let on_frame_end c =
  if c.frame_had_drop then c.dropped_frames <- c.dropped_frames + 1;
  c.frame_had_drop <- false

let decode_pending t c =
  let src_pos = ref c.rpos in
  let continue = ref true in
  while !continue && !src_pos < c.rlen && Wire.fault c.dec = None do
    match Bqueue.reserve c.q with
    | Some (buf, off, space) ->
      let dst_pos = ref off in
      let st =
        Wire.decode c.dec ~src:c.rbuf ~src_pos ~src_len:c.rlen ~dst:buf
          ~dst_pos ~dst_len:(off + space)
      in
      Bqueue.commit c.q (!dst_pos - off);
      (match st with
      | Wire.Need_more -> continue := false
      | Wire.Dst_full -> () (* slot closed by commit; reserve the next *)
      | Wire.Frame_end -> on_frame_end c
      | Wire.Stream_end | Wire.Fault _ -> ())
    | None ->
      if t.cfg.lossy then begin
        (* Queue full and the client keeps sending: the paper's lost
           references, one level up — decode to scratch and count. *)
        let dst_pos = ref 0 in
        let st =
          Wire.decode c.dec ~src:c.rbuf ~src_pos ~src_len:c.rlen
            ~dst:c.scratch ~dst_pos ~dst_len:(Array.length c.scratch)
        in
        if !dst_pos > 0 then begin
          c.dropped_words <- c.dropped_words + !dst_pos;
          c.frame_had_drop <- true
        end;
        (match st with
        | Wire.Need_more -> continue := false
        | Wire.Frame_end -> on_frame_end c
        | Wire.Dst_full | Wire.Stream_end | Wire.Fault _ -> ())
      end
      else
        (* Lossless backpressure: stop decoding; unread bytes pile up in
           the kernel socket buffer and the client blocks. *)
        continue := false
  done;
  c.rpos <- !src_pos

let drain_all t c =
  let rec go () =
    match Bqueue.pop c.q with
    | None -> ()
    | Some (buf, len) ->
      let t0 = Unix.gettimeofday () in
      (try c.pipe.sink.Sink.on_words buf ~len with _ -> c.sink_exn <- true);
      record_drain t.g (Unix.gettimeofday () -. t0);
      c.analyzed <- c.analyzed + len;
      go ()
  in
  go ()

(* Decode what we have, drain what we queued; loop because a drained
   queue reopens space for the lossless decoder.  Terminates: every
   iteration consumes source bytes (the queue is empty after drain, so
   reserve always succeeds) or ends the stream. *)
let service_io t c =
  let continue = ref true in
  while !continue do
    decode_pending t c;
    if wire_done c then c.rpos <- c.rlen (* residue after END/fault *);
    if c.rpos >= c.rlen then begin
      Bqueue.flush c.q;
      continue := false
    end;
    drain_all t c
  done

let finish_conn t c =
  (try c.pipe.sink.Sink.finish () with _ -> c.sink_exn <- true);
  let wire_diag =
    match Wire.fault c.dec with
    | Some _ as f -> f
    | None -> if Wire.ended c.dec then None else Wire.eof_error c.dec
  in
  let ndiag =
    (try c.pipe.diagnoses () with _ -> 0)
    + (match wire_diag with Some _ -> 1 | None -> 0)
    + (if c.sink_exn then 1 else 0)
  in
  (match wire_diag with
  | None ->
    write_reply c.fd
      (Printf.sprintf
         "ok words=%d frames=%d dropped_words=%d dropped_frames=%d \
          diagnoses=%d\n"
         (Wire.words c.dec) (Wire.frames c.dec) c.dropped_words
         c.dropped_frames ndiag)
  | Some e -> write_reply c.fd (Printf.sprintf "err %s\n" (Wire.describe e)));
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  let g = t.g in
  Mutex.lock g.mu;
  g.streams_active <- g.streams_active - 1;
  if wire_diag <> None then g.streams_faulted <- g.streams_faulted + 1;
  g.words_in <- g.words_in + Wire.words c.dec;
  g.words_analyzed <- g.words_analyzed + c.analyzed;
  g.words_dropped <- g.words_dropped + c.dropped_words;
  g.frames_in <- g.frames_in + Wire.frames c.dec;
  g.frames_dropped <- g.frames_dropped + c.dropped_frames;
  g.diagnoses <- g.diagnoses + ndiag;
  let pk = Bqueue.peak_words c.q in
  if pk > g.peak_resident then g.peak_resident <- pk;
  Mutex.unlock g.mu

(* Returns true when the connection is finished and closed. *)
let service t c =
  service_io t c;
  if (c.eof || wire_done c) && c.rpos >= c.rlen && Bqueue.is_empty c.q then begin
    finish_conn t c;
    true
  end
  else false

let read_conn c =
  if (not c.eof) && c.rpos >= c.rlen then
    match Unix.read c.fd c.rbuf 0 (Bytes.length c.rbuf) with
    | 0 -> c.eof <- true
    | n ->
      c.rpos <- 0;
      c.rlen <- n
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> c.eof <- true

let make_conn t fd =
  {
    fd;
    dec = Wire.decoder ();
    q = Bqueue.create ~slots:t.cfg.queue_slots ~slot_words:t.cfg.slot_words;
    pipe = t.cfg.pipeline ();
    rbuf = Bytes.create t.cfg.batch_bytes;
    rpos = 0;
    rlen = 0;
    eof = false;
    scratch = Array.make t.cfg.slot_words 0;
    frame_had_drop = false;
    dropped_words = 0;
    dropped_frames = 0;
    analyzed = 0;
    sink_exn = false;
  }

let worker_loop t w =
  let conns = ref [] in
  let drain_wake () =
    let b = Bytes.create 64 in
    try
      while Unix.read w.wake_r b 0 64 > 0 do
        ()
      done
    with Unix.Unix_error _ -> ()
  in
  let intake () =
    Mutex.lock w.amu;
    let fresh = ref [] in
    while not (Queue.is_empty w.incoming) do
      fresh := Queue.pop w.incoming :: !fresh
    done;
    Mutex.unlock w.amu;
    List.iter (fun fd -> conns := make_conn t fd :: !conns) !fresh
  in
  let running = ref true in
  while !running do
    intake ();
    let rfds =
      w.wake_r
      :: List.filter_map (fun c -> if c.eof then None else Some c.fd) !conns
    in
    (match Unix.select rfds [] [] 0.05 with
    | readable, _, _ ->
      if List.memq w.wake_r readable then drain_wake ();
      List.iter (fun c -> if List.memq c.fd readable then read_conn c) !conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    conns := List.filter (fun c -> not (service t c)) !conns;
    if Atomic.get t.stop_flag && !conns = [] then begin
      Mutex.lock w.amu;
      let idle = Queue.is_empty w.incoming in
      Mutex.unlock w.amu;
      if idle then running := false
    end
  done

(* ---- acceptor: listeners + control socket ------------------------- *)

let snapshot_of t =
  let g = t.g in
  Mutex.lock g.mu;
  let n = min g.lat_n lat_cap in
  let a = Array.sub g.lat 0 n in
  let s =
    {
      streams_total = g.streams_total;
      streams_active = g.streams_active;
      streams_faulted = g.streams_faulted;
      words_in = g.words_in;
      words_analyzed = g.words_analyzed;
      words_dropped = g.words_dropped;
      frames_in = g.frames_in;
      frames_dropped = g.frames_dropped;
      diagnoses = g.diagnoses;
      peak_resident_words = g.peak_resident;
      drains = g.drains;
      drain_p50 = 0.0;
      drain_p99 = 0.0;
      drain_max = g.lat_max;
    }
  in
  Mutex.unlock g.mu;
  Array.sort compare a;
  let pct p =
    if n = 0 then 0.0
    else a.(min (n - 1) (int_of_float ((float_of_int (n - 1) *. p) +. 0.5)))
  in
  { s with drain_p50 = pct 0.50; drain_p99 = pct 0.99 }

let stats t = snapshot_of t

let handle_ctl t cfd =
  (* The control protocol is one short request line, one reply; handled
     synchronously in the acceptor — control traffic is rare and tiny. *)
  (try
     match Unix.select [ cfd ] [] [] 2.0 with
     | [], _, _ -> ()
     | _ ->
       let b = Bytes.create 256 in
       let n = try Unix.read cfd b 0 256 with Unix.Unix_error _ -> 0 in
       let line = String.trim (Bytes.sub_string b 0 n) in
       (match line with
       | "stats" -> write_reply cfd (render (snapshot_of t))
       | "shutdown" ->
         write_reply cfd "ok\n";
         Atomic.set t.stop_flag true;
         Array.iter wake t.ws
       | _ -> write_reply cfd "err unknown command\n")
   with Unix.Unix_error _ -> ());
  try Unix.close cfd with Unix.Unix_error _ -> ()

let accept_all t rr fd =
  let more = ref true in
  while !more do
    match Unix.accept ~cloexec:true fd with
    | cfd, _ ->
      Unix.set_nonblock cfd;
      Mutex.lock t.g.mu;
      t.g.streams_total <- t.g.streams_total + 1;
      t.g.streams_active <- t.g.streams_active + 1;
      Mutex.unlock t.g.mu;
      let w = t.ws.(!rr mod Array.length t.ws) in
      incr rr;
      Mutex.lock w.amu;
      Queue.push cfd w.incoming;
      Mutex.unlock w.amu;
      wake w
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      more := false
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()
    | exception Unix.Unix_error _ -> more := false
  done

let acceptor_loop t =
  let rr = ref 0 in
  let fds =
    t.listeners @ match t.ctl_fd with Some fd -> [ fd ] | None -> []
  in
  while not (Atomic.get t.stop_flag) do
    match Unix.select fds [] [] 0.1 with
    | readable, _, _ ->
      List.iter
        (fun fd ->
          match t.ctl_fd with
          | Some ctl when fd = ctl -> (
            match Unix.accept ~cloexec:true ctl with
            | cfd, _ -> handle_ctl t cfd
            | exception Unix.Unix_error _ -> ())
          | _ -> accept_all t rr fd)
        readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ---- lifecycle ---------------------------------------------------- *)

let bind_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let bind_tcp host port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, bound)

let start cfg =
  if cfg.unix_path = None && cfg.tcp = None then
    invalid_arg "Serve.start: no listener configured";
  if cfg.queue_slots < 2 then invalid_arg "Serve.start: queue_slots < 2";
  if cfg.slot_words < 1 then invalid_arg "Serve.start: slot_words < 1";
  if cfg.batch_bytes < 8 then invalid_arg "Serve.start: batch_bytes < 8";
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let unlink_paths = ref [] in
  let listeners = ref [] in
  (match cfg.unix_path with
  | Some p ->
    listeners := [ bind_unix p ];
    unlink_paths := [ p ]
  | None -> ());
  let port = ref None in
  (match cfg.tcp with
  | Some (host, p) ->
    let fd, bound = bind_tcp host p in
    listeners := !listeners @ [ fd ];
    port := Some bound
  | None -> ());
  let ctl_fd =
    match cfg.ctl_path with
    | Some p ->
      unlink_paths := p :: !unlink_paths;
      Some (bind_unix p)
    | None -> None
  in
  let nw = max 1 cfg.workers in
  let ws =
    Array.init nw (fun _ ->
        let r, wr = Unix.pipe ~cloexec:true () in
        Unix.set_nonblock r;
        Unix.set_nonblock wr;
        { amu = Mutex.create (); incoming = Queue.create (); wake_r = r;
          wake_w = wr; dom = None })
  in
  let t =
    {
      cfg;
      g = totals ();
      stop_flag = Atomic.make false;
      listeners = !listeners;
      unlink_paths = !unlink_paths;
      ctl_fd;
      port = !port;
      ws;
      acceptor = None;
    }
  in
  Array.iter (fun w -> w.dom <- Some (Domain.spawn (fun () -> worker_loop t w))) ws;
  t.acceptor <- Some (Domain.spawn (fun () -> acceptor_loop t));
  t

let request_stop t =
  Atomic.set t.stop_flag true;
  Array.iter wake t.ws

let wait t =
  (match t.acceptor with
  | Some d ->
    Domain.join d;
    t.acceptor <- None
  | None -> ());
  Array.iter
    (fun w ->
      match w.dom with
      | Some d ->
        Domain.join d;
        w.dom <- None
      | None -> ())
    t.ws;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  (match t.ctl_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  Array.iter
    (fun w ->
      (try Unix.close w.wake_r with Unix.Unix_error _ -> ());
      try Unix.close w.wake_w with Unix.Unix_error _ -> ())
    t.ws;
  List.iter
    (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
    t.unlink_paths

let stop t =
  request_stop t;
  wait t
