(** The trace-ingest daemon behind `systrace serve`.

    The paper's §4 bargain — analysis must keep pace with generation or
    references are lost — restated as a serving problem: many producers
    stream trace words at one daemon, which runs a per-connection
    analysis pipeline ({!Systrace_tracing.Sink}) online.  The server
    accepts streams over Unix-domain and loopback TCP sockets, spreads
    connections across worker domains, and per connection decodes
    batched socket reads straight into a bounded {!Bqueue} — no
    intermediate copies ({!Wire}) — then drains queued chunks through
    the pipeline.

    Flow control is the paper's, one level up.  Lossless (default): when
    a client outruns its pipeline the bounded queue fills and the server
    simply reads that socket more slowly — kernel socket buffers fill
    and the client blocks, exactly the generation phase suspending until
    ANALYZE catches up.  [lossy]: the server never stalls the client;
    words arriving against a full queue are discarded and counted
    per-stream (dropped words and dropped drains), the lost-reference
    accounting of paper §4.2.

    A control socket answers [stats] with aggregated counters — streams,
    per-stream loss, peak resident words, fault diagnoses, drain-latency
    percentiles — and [shutdown] with a graceful stop. *)

(** One connection's analysis side: a sink fed the decoded word chunks,
    and a count of pipeline-level diagnoses to fold into the stream's
    reply (stable once the sink's [finish] has run). *)
type pipeline = {
  sink : Systrace_tracing.Sink.t;
  diagnoses : unit -> int;
}

type pipeline_factory = unit -> pipeline
(** Called once per accepted stream, on that stream's worker domain.
    Anything shared across factory results must be domain-safe. *)

val null_pipeline : pipeline_factory
(** Ingest and discard — the decode/queue plumbing at full speed. *)

val scan_pipeline : pipeline_factory
(** Structural trace check: {!Systrace_tracing.Parser.scanner} per
    stream; diagnoses are the scan's end-of-stream error count. *)

val to_parser_pipeline :
  (unit -> Systrace_tracing.Parser.t) -> pipeline_factory
(** Full parse per stream; diagnoses are the parser's [parse_errors]
    after [finish].  The argument builds each stream's parser (recover
    mode recommended — a strict parser's exception faults the stream). *)

type config = {
  unix_path : string option;  (** Unix-domain listener (unlinked first) *)
  tcp : (string * int) option;  (** TCP listener; port 0 = ephemeral *)
  ctl_path : string option;  (** control socket ([stats] / [shutdown]) *)
  workers : int;  (** worker domains (clamped to at least 1) *)
  queue_slots : int;  (** bounded-queue ring slots per connection *)
  slot_words : int;  (** words per slot; queue capacity = slots*words *)
  lossy : bool;  (** drop-and-count instead of backpressure *)
  batch_bytes : int;  (** socket read size (one batched [read]) *)
  pipeline : pipeline_factory;
}

val default_config : pipeline_factory -> config
(** No listeners configured (set at least one); 2 workers, 4 slots of
    16384 words (one v3 block resident per full queue), lossless,
    256 KiB reads. *)

(** Aggregated counters, as served on the control socket. *)
type snapshot = {
  streams_total : int;
  streams_active : int;
  streams_faulted : int;  (** wire fault or cut before END *)
  words_in : int;  (** decoded off the wire, dropped ones included *)
  words_analyzed : int;  (** delivered to pipelines *)
  words_dropped : int;  (** lossy mode: lost-reference count *)
  frames_in : int;
  frames_dropped : int;  (** frames that lost at least one word *)
  diagnoses : int;  (** wire + eof + pipeline diagnoses *)
  peak_resident_words : int;  (** max over streams of queue high-water *)
  drains : int;  (** chunk deliveries to pipelines *)
  drain_p50 : float;  (** seconds in the pipeline per delivery *)
  drain_p99 : float;
  drain_max : float;
}

val render : snapshot -> string
(** One [key value] line per field — the [stats] reply text. *)

type t

val start : config -> t
(** Bind the configured listeners, spawn the acceptor and worker
    domains, and return immediately.  Ignores [SIGPIPE] process-wide (a
    dying client must not kill the daemon).
    @raise Invalid_argument if no listener is configured.
    @raise Unix.Unix_error if a bind fails (e.g. path in use). *)

val tcp_port : t -> int option
(** The bound TCP port — the actual one when the config said 0. *)

val stats : t -> snapshot

val request_stop : t -> unit
(** Ask every domain to finish in-flight streams and exit; returns
    immediately.  Listeners stop accepting at once. *)

val wait : t -> unit
(** Join all domains (after {!request_stop} or a control-socket
    [shutdown]), then close listeners and unlink socket paths. *)

val stop : t -> unit
(** {!request_stop} then {!wait}. *)
