(* Client side of the serve protocol: blocking sockets, words buffered
   into frames in a Buffer and flushed in ~1 MiB writes so a stream of
   many small sends still hits the kernel in large batches. *)

module Tracefile = Systrace_tracing.Tracefile

type addr = Unix_path of string | Tcp of string * int

let connect = function
  | Unix_path p ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX p)
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    fd

let rec write_all fd s pos len =
  if len > 0 then begin
    match Unix.write_substring fd s pos len with
    | n -> write_all fd s (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s pos len
  end

type stream = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  frame_words : int;
  flush_bytes : int;
}

let flush st =
  if Buffer.length st.buf > 0 then begin
    write_all st.fd (Buffer.contents st.buf) 0 (Buffer.length st.buf);
    Buffer.clear st.buf
  end

let start ?(frame_words = 65536) fd =
  if frame_words < 1 || frame_words > Wire.max_frame_words then
    invalid_arg "Client.start: frame_words";
  let st = { fd; buf = Buffer.create (1 lsl 20); frame_words;
             flush_bytes = 1 lsl 20 } in
  Wire.put_magic st.buf;
  st

let send st ws ~off ~len =
  let sent = ref 0 in
  while !sent < len do
    let k = min st.frame_words (len - !sent) in
    Wire.put_frame_header st.buf k;
    Wire.put_words st.buf ws ~off:(off + !sent) ~len:k;
    sent := !sent + k;
    if Buffer.length st.buf >= st.flush_bytes then flush st
  done

type reply = {
  r_words : int;
  r_frames : int;
  r_dropped_words : int;
  r_dropped_frames : int;
  r_diagnoses : int;
}

let read_line_close fd =
  let b = Buffer.create 128 in
  let one = Bytes.create 256 in
  let rec go () =
    match Unix.read fd one 0 256 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b one 0 n;
      if not (String.contains (Bytes.sub_string one 0 n) '\n') then go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match Buffer.contents b with "" -> None | s -> Some (String.trim s)

let parse_reply line =
  try
    Scanf.sscanf line
      "ok words=%d frames=%d dropped_words=%d dropped_frames=%d diagnoses=%d"
      (fun w f dw df dg ->
        Some
          {
            r_words = w;
            r_frames = f;
            r_dropped_words = dw;
            r_dropped_frames = df;
            r_diagnoses = dg;
          })
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let finish_stream st =
  Wire.put_end st.buf;
  match flush st with
  | () ->
    (try Unix.shutdown st.fd Unix.SHUTDOWN_SEND
     with Unix.Unix_error _ -> ());
    Option.bind (read_line_close st.fd) parse_reply
  | exception e ->
    (try Unix.close st.fd with Unix.Unix_error _ -> ());
    raise e

let run addr ws =
  let st = start (connect addr) in
  send st ws ~off:0 ~len:(Array.length ws);
  finish_stream st

let run_file addr file =
  let st = start (connect addr) in
  let () =
    Tracefile.fold_words file ~init:() ~f:(fun () ws ~len ->
        send st ws ~off:0 ~len)
  in
  finish_stream st

let send_raw addr bytes =
  let fd = connect addr in
  (try write_all fd bytes 0 (String.length bytes)
   with Unix.Unix_error _ -> ());
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  read_line_close fd
