(** Bounded chunk queue: the per-connection backpressure buffer of
    `systrace serve`.

    A ring of preallocated word-array slots sits between a connection's
    wire decoder (producer) and its analysis pipeline (consumer).  The
    producer decodes socket bytes straight into the open tail slot
    ({!reserve}/{!commit} — no intermediate array); when a slot fills it
    is queued and the next one opens; when every slot is queued the ring
    is full and {!reserve} returns [None] — the server stops reading
    that socket and the client feels TCP backpressure (or, in lossy
    mode, the server drops and counts, the paper's lost-reference
    accounting).  The consumer {!pop}s whole slots in FIFO order.

    Resident trace words are therefore bounded by
    [slots * slot_words] ({!capacity_words}) however fast the client
    sends, and the queued word sequence is exactly the decoded sequence
    — nothing reordered, nothing silently dropped ({!peak_words} and the
    test suite's qcheck property pin both).

    Single-owner discipline: a queue belongs to the one worker domain
    that owns its connection; operations are not thread-safe.  A popped
    slot's array is borrowed — it is reused by the producer once the
    tail wraps back around — so the consumer must finish with it (or
    copy) before the next {!reserve}/{!commit}, which is exactly the
    {!Systrace_tracing.Sink} borrowing contract. *)

type t

val create : slots:int -> slot_words:int -> t
(** @raise Invalid_argument unless [slots >= 2] and [slot_words >= 1]
    (one slot could never queue while filling). *)

val capacity_words : t -> int
val slot_words : t -> int

val reserve : t -> (int array * int * int) option
(** [reserve q] is [Some (buf, off, space)] — write decoded words to
    [buf.(off .. off+space-1)] then {!commit} how many — or [None] when
    the ring is full (backpressure point). *)

val commit : t -> int -> unit
(** Account [n] words just written at the reserved position.  When the
    tail slot reaches [slot_words] it is queued for the consumer.
    @raise Invalid_argument if [n] exceeds the reserved space. *)

val flush : t -> unit
(** Queue the partially-filled tail slot, if any — called when the
    producer has nothing pending, so trickling input reaches analysis
    without waiting for a full slot.  No-op on an empty tail.  Never
    fails: a non-empty tail implies a free ring position. *)

val pop : t -> (int array * int) option
(** Oldest queued slot as [(buf, len)], or [None] if nothing is queued
    (a partial tail is not visible until {!flush}).  The array is
    borrowed until the producer's next {!reserve}/{!commit}. *)

val queued : t -> int
(** Slots queued for the consumer. *)

val is_empty : t -> bool
(** No queued slot and an empty tail: every committed word was popped. *)

val resident_words : t -> int
(** Words currently resident (queued + open tail). *)

val peak_words : t -> int
(** High-water mark of {!resident_words} — the per-stream "peak resident
    words" counter served by the stats endpoint. *)
