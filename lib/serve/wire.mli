(** Wire framing for trace streams over a socket (`systrace serve`).

    A stream is a 4-byte magic followed by frames; every unit on the wire
    is a 4-byte little-endian word, so the decoder never has to reframe
    at odd granularities.  A frame is one header word — kind in the top
    byte, word count in the low 24 bits — followed by that many trace
    words.  Kind 0 carries words (a client-side drain, the serving analog
    of one ANALYZE phase); kind 1 with count 0 is the END frame, after
    which the server drains its queue and replies with a summary line.

    The decoder is incremental and copy-free: {!decode} consumes raw
    socket bytes and writes trace words straight into a caller-supplied
    destination — in the server, the bounded queue's current slot — so a
    batched read becomes queued chunk words with no intermediate array.
    Partial words and headers split across reads are carried in the
    decoder (at most 3 bytes), so feeding any byte-level re-chunking of a
    stream decodes to the identical word sequence.

    Malformed input never raises: protocol violations surface as a sticky
    {!error} ({!status} [Fault]), and a connection cut at an arbitrary
    byte boundary is classified after the fact by {!eof_error} — the
    defensive-tracing stance of paper §4.3 applied to the serving seam. *)

val magic : int
(** Stream magic, sent as one little-endian word ("SRV1"). *)

val max_frame_words : int
(** Largest word count one frame can carry (2^24 - 1). *)

(** One structured wire diagnosis. *)
type error = {
  at : int;  (** byte offset in the stream where the violation fired *)
  state : string;  (** what the decoder was reading *)
  message : string;
}

val describe : error -> string

type status =
  | Need_more  (** source exhausted mid-stream; feed more bytes *)
  | Dst_full  (** destination filled; provide fresh space and continue *)
  | Frame_end
      (** a words frame just completed (the caller sees every frame
          boundary, so lossy-mode drain accounting can be exact) *)
  | Stream_end  (** the END frame was decoded; the stream is complete *)
  | Fault of error  (** protocol violation; sticky — decoding is over *)

type decoder

val decoder : unit -> decoder

val decode :
  decoder ->
  src:Bytes.t ->
  src_pos:int ref ->
  src_len:int ->
  dst:int array ->
  dst_pos:int ref ->
  dst_len:int ->
  status
(** Consume bytes [src.(!src_pos .. src_len-1)] (advancing [src_pos]) and
    write decoded trace words to [dst.(!dst_pos .. dst_len-1)] (advancing
    [dst_pos]), stopping at the first of: source exhausted, destination
    full, a frame boundary, the END frame, or a protocol fault.  Total on
    any byte sequence; never raises.  After [Stream_end], further bytes
    are themselves a fault (trailing garbage).  Words are the full 32-bit
    range; the decoder applies no trace-format interpretation — that is
    the downstream pipeline's job. *)

val words : decoder -> int
(** Trace words decoded so far (delivered to any destination). *)

val frames : decoder -> int
(** Words frames completed so far (the END frame is not counted). *)

val bytes : decoder -> int
(** Bytes consumed so far. *)

val ended : decoder -> bool
(** The END frame was seen. *)

val fault : decoder -> error option
(** The sticky fault, if any. *)

val eof_error : decoder -> error option
(** Classify end-of-input: [None] after a clean END frame, otherwise the
    structured diagnosis for the cut — before/inside the magic, inside a
    frame header (or: closed without an END frame), or mid-frame with the
    word shortfall.  Use when the peer closes the connection. *)

(** {1 Encoding} — the client side writes with these. *)

val put_magic : Buffer.t -> unit

val put_frame_header : Buffer.t -> int -> unit
(** [put_frame_header b n] starts a words frame of [n] words.
    @raise Invalid_argument if [n] is outside [0, {!max_frame_words}]. *)

val put_words : Buffer.t -> int array -> off:int -> len:int -> unit
(** Append [len] words as little-endian units (no header).
    @raise Invalid_argument on a word outside the 32-bit range, naming
    its index — a corrupt in-memory buffer must not leave the machine
    looking valid. *)

val put_end : Buffer.t -> unit
(** Append the END frame. *)

val encode : ?frame_words:int -> int array -> string
(** A whole stream — magic, frames of at most [frame_words] (default
    65536), END — as one string.  For tests and fault-injection clients
    that need byte-level control (e.g. cutting the stream at an arbitrary
    offset). *)
