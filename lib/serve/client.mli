(** Client side of the serve wire protocol: stream trace words at a
    daemon and read back its summary reply.  Used by the CLI's
    [--send] mode, the loopback load-generator bench, and the
    fault-injection test suite ({!send_raw} gives byte-level control
    for torn-frame experiments). *)

type addr = Unix_path of string | Tcp of string * int

val connect : addr -> Unix.file_descr
(** A connected blocking socket.  @raise Unix.Unix_error on refusal. *)

(** An open outgoing stream: magic already sent, words buffered into
    frames and flushed in large writes. *)
type stream

val start : ?frame_words:int -> Unix.file_descr -> stream
(** Begin a stream on a connected socket.  [frame_words] (default
    65536) is the largest frame one {!send} range is split into. *)

val send : stream -> int array -> off:int -> len:int -> unit
(** Stream [len] words as one or more frames — the client-side drain. *)

(** The server's end-of-stream summary line, parsed. *)
type reply = {
  r_words : int;
  r_frames : int;
  r_dropped_words : int;
  r_dropped_frames : int;
  r_diagnoses : int;
}

val finish_stream : stream -> reply option
(** Flush, send END, half-close the write side, and read the reply:
    [Some r] on an [ok] line, [None] if the server reported a wire
    fault or the connection died first.  Closes the socket. *)

val run : addr -> int array -> reply option
(** Connect, stream the whole array, finish.  One bench client. *)

val run_file : addr -> string -> reply option
(** {!run} with the words of a trace file ({!Systrace_tracing.Tracefile}
    load — any version), streamed chunk by chunk without materializing
    more than one block beyond the frame buffer. *)

val send_raw : addr -> string -> string option
(** Fault-injection client: connect, write exactly these bytes (any
    prefix/mangling of a valid stream), half-close, and return the
    server's raw reply line if one comes back.  Closes the socket. *)
