(* Bounded chunk ring between a connection's wire decoder and its sink
   pipeline.  All slot arrays are allocated once at [create]; the steady
   state allocates nothing — the decoder writes into the open tail slot
   in place and the consumer borrows queued slots. *)

type t = {
  slots : int array array;  (* ring of preallocated word buffers *)
  lens : int array;  (* committed length of each queued slot *)
  slot_words : int;
  mutable head : int;  (* oldest queued slot index *)
  mutable queued : int;  (* closed slots awaiting pop *)
  mutable tail_fill : int;  (* words committed to the open tail slot *)
  mutable resident : int;  (* queued words + tail_fill *)
  mutable peak : int;
}

let create ~slots ~slot_words =
  if slots < 2 then invalid_arg "Bqueue.create: need at least 2 slots";
  if slot_words < 1 then invalid_arg "Bqueue.create: need at least 1 word/slot";
  {
    slots = Array.init slots (fun _ -> Array.make slot_words 0);
    lens = Array.make slots 0;
    slot_words;
    head = 0;
    queued = 0;
    tail_fill = 0;
    resident = 0;
    peak = 0;
  }

let nslots q = Array.length q.slots
let capacity_words q = nslots q * q.slot_words
let slot_words q = q.slot_words
let queued q = q.queued
let is_empty q = q.queued = 0 && q.tail_fill = 0
let resident_words q = q.resident
let peak_words q = q.peak

(* The open tail slot sits just past the queued region of the ring. *)
let tail_index q = (q.head + q.queued) mod nslots q

let reserve q =
  (* Full means every slot is queued; while queued < slots the tail
     position is free and [commit] keeps tail_fill < slot_words, so the
     offered space is always positive. *)
  if q.queued >= nslots q then None
  else
    let ti = tail_index q in
    Some (q.slots.(ti), q.tail_fill, q.slot_words - q.tail_fill)

let close_tail q =
  let ti = tail_index q in
  q.lens.(ti) <- q.tail_fill;
  q.queued <- q.queued + 1;
  q.tail_fill <- 0

let commit q n =
  if n < 0 || n > q.slot_words - q.tail_fill then
    invalid_arg "Bqueue.commit: more words than reserved";
  q.tail_fill <- q.tail_fill + n;
  q.resident <- q.resident + n;
  if q.resident > q.peak then q.peak <- q.resident;
  if q.tail_fill = q.slot_words then close_tail q

let flush q = if q.tail_fill > 0 then close_tail q

let pop q =
  if q.queued = 0 then None
  else begin
    let h = q.head in
    let buf = q.slots.(h) and len = q.lens.(h) in
    q.head <- (h + 1) mod nslots q;
    q.queued <- q.queued - 1;
    q.resident <- q.resident - len;
    Some (buf, len)
  end
