(** Systrace: software methods for system address tracing.

    A full reimplementation of the WRL/CMU software tracing systems
    (Chen, Wall, Borg: "Software Methods for System Address Tracing",
    HotOS 1993 / WRL Research Report 94/6): link-time instrumentation
    (epoxie), traced Ultrix- and Mach-style kernels running on a simulated
    DECstation-class machine, the one-word trace format with its parsing
    library, and the trace-driven memory-system simulation used to
    validate the traces against direct measurement.

    Layering (bottom up):
    - {!Isa}: instruction set, assembler eDSL, object files, linker.
    - {!Machine}: the simulated hardware (CPU, TLB, caches, devices).
    - {!Tracing}: trace format, buffers ABI, parsing library.
    - {!Epoxie}: link-time instrumentation and the pixie baseline.
    - {!Kernel}: the traced operating system and its boot builder.
    - {!Tracesim}: trace-driven memory-system simulation and prediction.
    - {!Workloads}: the Table 1 workload suite.
    - {!Validate}: measured-vs-predicted experiment harness.

    The functions at the top of this module cover the common journeys:
    run a program under a traced system and consume its address trace. *)

module Isa = struct
  module Reg = Systrace_isa.Reg
  module Insn = Systrace_isa.Insn
  module Encode = Systrace_isa.Encode
  module Asm = Systrace_isa.Asm
  module Objfile = Systrace_isa.Objfile
  module Bb = Systrace_isa.Bb
  module Link = Systrace_isa.Link
  module Exe = Systrace_isa.Exe
end

module Machine = struct
  module Addr = Systrace_machine.Addr
  module Machine = Systrace_machine.Machine
  module Uop = Systrace_machine.Uop
  module Tlb = Systrace_machine.Tlb
  module Cache = Systrace_machine.Cache
  module Disk = Systrace_machine.Disk
end

module Tracing = struct
  module Abi = Systrace_tracing.Abi
  module Format = Systrace_tracing.Format_
  module Bbtable = Systrace_tracing.Bbtable
  module Parser = Systrace_tracing.Parser
  module Sink = Systrace_tracing.Sink
  module Tracefile = Systrace_tracing.Tracefile
  module Compress = Systrace_tracing.Compress
  module Faults = Systrace_tracing.Faults
end

module Epoxie = struct
  module Epoxie = Systrace_epoxie.Epoxie
  module Runtime = Systrace_epoxie.Runtime
  module Bbmap = Systrace_epoxie.Bbmap
  module Pixie = Systrace_epoxie.Pixie
  module Rewrite = Systrace_epoxie.Rewrite
end

module Kernel = struct
  module Kcfg = Systrace_kernel.Kcfg
  module Builder = Systrace_kernel.Builder
end

module Tracesim = struct
  module Memsim = Systrace_tracesim.Memsim
  module Predict = Systrace_tracesim.Predict
  module Sim_cache = Systrace_tracesim.Sim_cache
  module Sim_cache_assoc = Systrace_tracesim.Sim_cache_assoc
  module Sim_tlb = Systrace_tracesim.Sim_tlb
  module Sim_wb = Systrace_tracesim.Sim_wb
  module Sim_stack = Systrace_tracesim.Sim_stack
end

module Workloads = struct
  module Suite = Systrace_workloads.Suite
  module Userlib = Systrace_workloads.Userlib
  module Ux_server = Systrace_workloads.Ux_server
end

module Serve = struct
  module Wire = Systrace_serve.Wire
  module Bqueue = Systrace_serve.Bqueue
  module Server = Systrace_serve.Serve
  module Client = Systrace_serve.Client
end

module Validate = Systrace_validate.Validate
module Experiments = Systrace_validate.Experiments

(* ------------------------------------------------------------------ *)

type os = Validate.os = Ultrix | Mach

(** One parsed reference from a system trace, in the original binary's
    address space. *)
type event =
  | Inst of { addr : int; pid : int; kernel : bool }
  | Data of { addr : int; pid : int; kernel : bool; is_load : bool; bytes : int }

type traced_run = {
  console : string;                       (** program console output *)
  parse_stats : Systrace_tracing.Parser.stats; (** trace inventory *)
  machine : Systrace_machine.Machine.t;   (** the halted traced machine *)
  system : Systrace_kernel.Builder.t;     (** the whole booted system *)
}

(** [run_traced ~os ~on_event programs files] boots a traced system with
    the given user programs (instrumenting them and the kernel with
    epoxie), runs it to completion, and streams every reconstructed
    instruction and data reference of the original binaries to
    [on_event] — exactly the analysis-program position of Figure 1.

    Programs are built from the assembler eDSL ({!Isa.Asm}); link them
    against {!Workloads.Userlib} for the system-call wrappers.

    [?sink] attaches a streaming consumer ({!Tracing.Sink}) to the raw
    word stream: it receives each ANALYZE phase's chunk before the
    parser does, and its [finish] runs after the final drain — so a
    whole run can be counted, written to disk, or fed to a second
    analysis online, in O(chunk) memory.  [?on_words] is the bare
    callback form of the same hook. *)
let run_traced ?(os = Ultrix) ?(seed = 1) ?(on_event = fun (_ : event) -> ())
    ?(on_words = fun (_ : int array) (_ : int) -> ())
    ?(sink = Systrace_tracing.Sink.null)
    ?(config = Systrace_kernel.Builder.default_config)
    (programs : Systrace_kernel.Builder.program list)
    (files : Systrace_kernel.Builder.file_spec list) : traced_run =
  let open Systrace_kernel in
  let cfg =
    {
      config with
      Builder.traced = true;
      seed;
      personality = (match os with Ultrix -> Kcfg.Ultrix | Mach -> Kcfg.Mach);
      pagemap = (match os with Ultrix -> Kcfg.Careful | Mach -> Kcfg.Random);
    }
  in
  let programs =
    match os with
    | Ultrix -> programs
    | Mach ->
      {
        Builder.pname = "uxserver";
        modules =
          [
            Systrace_workloads.Ux_server.make
              ~file_plan:(Builder.file_plan files) ();
            Systrace_workloads.Userlib.make ();
          ];
        heap_pages = 4;
        is_server = true;
        notrace = false;
      }
      :: programs
  in
  let t = Builder.build ~cfg ~programs ~files () in
  let parser =
    Systrace_tracing.Parser.create ~kernel_bbs:(Option.get t.Builder.kernel_bbs) ()
  in
  List.iter
    (fun (pi : Builder.proc_info) ->
      Systrace_tracing.Parser.register_pid parser ~pid:pi.pid
        (Option.get pi.bbs))
    t.Builder.procs;
  Systrace_tracing.Parser.set_handlers parser
    {
      Systrace_tracing.Parser.on_inst =
        (fun addr pid kernel -> on_event (Inst { addr; pid; kernel }));
      on_data =
        (fun addr pid kernel is_load bytes ->
          on_event (Data { addr; pid; kernel; is_load; bytes }));
    };
  t.Builder.trace_sink <-
    Some
      (fun words len ->
        on_words words len;
        sink.Systrace_tracing.Sink.on_words words ~len;
        Systrace_tracing.Parser.feed parser words ~len);
  (match Builder.run t ~max_insns:2_000_000_000 with
  | Systrace_machine.Machine.Halt -> ()
  | Systrace_machine.Machine.Limit -> failwith "Systrace.run_traced: no halt");
  Builder.drain_final t;
  sink.Systrace_tracing.Sink.finish ();
  let live =
    List.filter_map
      (fun (pi : Builder.proc_info) ->
        if pi.prog.Builder.is_server then Some pi.pid else None)
      t.Builder.procs
  in
  Systrace_tracing.Parser.finish ~live parser;
  {
    console = Builder.console t;
    parse_stats = Systrace_tracing.Parser.stats parser;
    machine = t.Builder.machine;
    system = t;
  }

(** [run_measured] boots the same system untraced and returns it after
    completion; the machine's ground-truth counters are the "direct
    measurement" side of the paper's validation. *)
let run_measured ?(os = Ultrix) ?(seed = 1)
    ?(config = Systrace_kernel.Builder.default_config)
    (programs : Systrace_kernel.Builder.program list)
    (files : Systrace_kernel.Builder.file_spec list) :
    Systrace_kernel.Builder.t =
  let open Systrace_kernel in
  let cfg =
    {
      config with
      Builder.traced = false;
      seed;
      personality = (match os with Ultrix -> Kcfg.Ultrix | Mach -> Kcfg.Mach);
      pagemap = (match os with Ultrix -> Kcfg.Careful | Mach -> Kcfg.Random);
    }
  in
  let programs =
    match os with
    | Ultrix -> programs
    | Mach ->
      {
        Builder.pname = "uxserver";
        modules =
          [
            Systrace_workloads.Ux_server.make
              ~file_plan:(Builder.file_plan files) ();
            Systrace_workloads.Userlib.make ();
          ];
        heap_pages = 4;
        is_server = true;
        notrace = false;
      }
      :: programs
  in
  let t = Builder.build ~cfg ~programs ~files () in
  (match Builder.run t ~max_insns:2_000_000_000 with
  | Systrace_machine.Machine.Halt -> ()
  | Systrace_machine.Machine.Limit -> failwith "Systrace.run_measured: no halt");
  t

(** Capture a traced run's raw in-kernel trace words as well as parsing
    them — useful for replaying one trace through several memory-system
    configurations, the paper's core use case ("trace analysis that must
    be done off-line against stored traces is unacceptable" for the
    authors' 64MB-class traces, but replay is exactly what the analysis
    program does with each buffer-full). *)
let capture_trace ?os ?seed ?config programs files : int array * traced_run =
  let sink, trace = Systrace_tracing.Sink.to_array () in
  let run = run_traced ?os ?seed ?config ~sink programs files in
  (trace (), run)

(** Build the {!replay} machinery — a fresh parser over [system]'s block
    tables driving a fresh {!Tracesim.Memsim} — as a streaming sink, so
    any chunk producer ([run_traced ~sink], {!Tracing.Tracefile.fold_words})
    can feed it in bounded memory.  The sink's [finish] is a no-op: a
    replay observes whatever prefix it is given (stored traces may lack
    the liveness information [Parser.finish] needs).  Read the results
    off the second component when done. *)
let replay_sink ~(system : Systrace_kernel.Builder.t)
    ~(memsim_cfg : Systrace_tracesim.Memsim.config) () :
    Systrace_tracing.Sink.t
    * (unit -> Systrace_tracesim.Memsim.stats * Systrace_tracing.Parser.stats)
    =
  let open Systrace_kernel in
  let parser =
    Systrace_tracing.Parser.create
      ~kernel_bbs:(Option.get system.Builder.kernel_bbs) ()
  in
  List.iter
    (fun (pi : Builder.proc_info) ->
      Systrace_tracing.Parser.register_pid parser ~pid:pi.pid
        (Option.get pi.bbs))
    system.Builder.procs;
  let sim = Systrace_tracesim.Memsim.create memsim_cfg in
  Systrace_tracing.Parser.set_handlers parser
    (Systrace_tracesim.Memsim.handlers sim);
  ( Systrace_tracing.Sink.make (fun words ~len ->
        Systrace_tracing.Parser.feed parser words ~len),
    fun () ->
      (Systrace_tracesim.Memsim.stats sim, Systrace_tracing.Parser.stats parser)
  )

(** Replay a captured trace through a fresh trace-driven memory-system
    simulation (see {!Tracesim.Memsim}) — the mechanism behind the cache
    and TLB studies the traces were built for. *)
let replay ~(system : Systrace_kernel.Builder.t) ~(memsim_cfg : Systrace_tracesim.Memsim.config)
    (words : int array) : Systrace_tracesim.Memsim.stats * Systrace_tracing.Parser.stats =
  let sink, result = replay_sink ~system ~memsim_cfg () in
  sink.Systrace_tracing.Sink.on_words words ~len:(Array.length words);
  result ()

(** {!replay} straight off a stored trace file: the words stream from
    disk through {!Tracing.Tracefile.fold_words} into the simulation
    chunk by chunk, so a trace much larger than memory replays in
    O(chunk) space.
    @raise Tracing.Tracefile.Bad_file as [fold_words]. *)
let replay_file ~(system : Systrace_kernel.Builder.t)
    ~(memsim_cfg : Systrace_tracesim.Memsim.config) path :
    Systrace_tracesim.Memsim.stats * Systrace_tracing.Parser.stats =
  let sink, result = replay_sink ~system ~memsim_cfg () in
  Systrace_tracing.Tracefile.fold_words path ~init:() ~f:(fun () words ~len ->
      sink.Systrace_tracing.Sink.on_words words ~len);
  result ()

(** Multi-configuration {!replay_sink}: one parser pass drives a
    {!Tracesim.Memsim.sweep} over every configuration at once, so
    replaying a trace through K memory systems costs roughly one replay,
    not K (geometry and TLB state that can be shared or nested is).
    Results come back in [memsim_cfgs] order, byte-identical to K
    separate {!replay_sink} runs. *)
let replay_sweep_sink ~(system : Systrace_kernel.Builder.t)
    ~(memsim_cfgs : Systrace_tracesim.Memsim.config list) () :
    Systrace_tracing.Sink.t
    * (unit ->
      Systrace_tracesim.Memsim.stats array
      * (int * int) array
      * Systrace_tracing.Parser.stats) =
  let open Systrace_kernel in
  let parser =
    Systrace_tracing.Parser.create
      ~kernel_bbs:(Option.get system.Builder.kernel_bbs) ()
  in
  List.iter
    (fun (pi : Builder.proc_info) ->
      Systrace_tracing.Parser.register_pid parser ~pid:pi.pid
        (Option.get pi.bbs))
    system.Builder.procs;
  let sw = Systrace_tracesim.Memsim.sweep memsim_cfgs in
  Systrace_tracing.Parser.set_handlers parser
    (Systrace_tracesim.Memsim.sweep_handlers sw);
  ( Systrace_tracing.Sink.make (fun words ~len ->
        Systrace_tracing.Parser.feed parser words ~len),
    fun () ->
      ( Systrace_tracesim.Memsim.sweep_stats sw,
        Systrace_tracesim.Memsim.sweep_accesses sw,
        Systrace_tracing.Parser.stats parser ) )

(** {!replay} across many configurations in one pass.  Returns, in
    [memsim_cfgs] order, each configuration's stats and its
    (icache, dcache-read) access counts — the miss-ratio denominators —
    plus the shared parse stats. *)
let replay_sweep ~(system : Systrace_kernel.Builder.t)
    ~(memsim_cfgs : Systrace_tracesim.Memsim.config list) (words : int array) :
    Systrace_tracesim.Memsim.stats array
    * (int * int) array
    * Systrace_tracing.Parser.stats =
  let sink, result = replay_sweep_sink ~system ~memsim_cfgs () in
  sink.Systrace_tracing.Sink.on_words words ~len:(Array.length words);
  result ()

(** {!replay_file} across many configurations in one pass: the stored
    trace streams from disk once, in O(chunk) space, whatever the number
    of configurations.  With [?jobs], a version-3 trace's blocks are
    decoded concurrently on the domain pool
    ({!Tracing.Tracefile.fold_blocks_parallel}); the simulation itself
    still runs on the calling domain in stream order, so results are
    identical to the sequential read — decode just stops being the
    bottleneck.  Other formats fall back to the sequential reader. *)
let replay_sweep_file ?jobs ~(system : Systrace_kernel.Builder.t)
    ~(memsim_cfgs : Systrace_tracesim.Memsim.config list) path :
    Systrace_tracesim.Memsim.stats array
    * (int * int) array
    * Systrace_tracing.Parser.stats =
  let sink, result = replay_sweep_sink ~system ~memsim_cfgs () in
  (match jobs with
  | Some jobs when jobs > 1 ->
    Systrace_tracing.Tracefile.fold_blocks_parallel ~jobs path ~init:()
      ~f:(fun () words ~len -> sink.Systrace_tracing.Sink.on_words words ~len)
  | _ ->
    Systrace_tracing.Tracefile.fold_words path ~init:()
      ~f:(fun () words ~len -> sink.Systrace_tracing.Sink.on_words words ~len));
  result ()

(** The memory-system configuration of the simulated DECstation, for
    {!replay} studies that vary one parameter at a time. *)
let default_memsim_cfg ~(system : Systrace_kernel.Builder.t) :
    Systrace_tracesim.Memsim.config =
  let mcfg = system.Systrace_kernel.Builder.cfg.Systrace_kernel.Builder.machine_cfg in
  {
    Systrace_tracesim.Memsim.icache_bytes =
      mcfg.Systrace_machine.Machine.icache_bytes;
    icache_line = mcfg.Systrace_machine.Machine.icache_line;
    icache_ways = 1;
    dcache_bytes = mcfg.Systrace_machine.Machine.dcache_bytes;
    dcache_line = mcfg.Systrace_machine.Machine.dcache_line;
    dcache_ways = 1;
    read_miss_penalty = mcfg.Systrace_machine.Machine.read_miss_penalty;
    uncached_penalty = mcfg.Systrace_machine.Machine.uncached_penalty;
    wb_depth = mcfg.Systrace_machine.Machine.wb_depth;
    wb_drain = mcfg.Systrace_machine.Machine.wb_drain;
    pagemap = Systrace_kernel.Builder.extract_pagemap system;
    pt_base = Systrace_kernel.Kcfg.pt_base_va;
    utlb_handler_insns = 8;
    ktlb_handler_insns = 24;
    tlb_entries = 64;
  }
