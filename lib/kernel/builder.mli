(** Host-side system builder: assembles and links the kernel (instrumented
    or not), loads it and the user programs into the machine, and plays
    the role of boot firmware — initialising kernel data structures, page
    tables (honouring the page-mapping policy) and the disk directly in
    the loaded image.

    It also implements the kernel→host hypercalls, including the ANALYZE
    protocol through which the in-kernel trace buffer is handed to the
    host-side analysis program in chunks during trace-analysis mode (the
    host stands in for the user-level analysis program of Figure 1). *)

open Systrace_isa
open Systrace_machine
open Systrace_tracing

type program = {
  pname : string;
  modules : Objfile.t list;
  heap_pages : int;
  is_server : bool;  (** the Mach UX server *)
  notrace : bool;
      (** run uninstrumented even on a traced system (§3.1: "pick and
          choose the processes to be traced") *)
}

val program :
  ?heap_pages:int ->
  ?is_server:bool ->
  ?notrace:bool ->
  string ->
  Objfile.t list ->
  program

type file_spec = {
  fname : string;
  data : string;
  writable_bytes : int;
}

type config = {
  personality : Kcfg.personality;
  pagemap : Kcfg.pagemap;
  traced : bool;
  trace_buf_bytes : int;
  trace_slack_bytes : int;
  user_buf_pages : int;
  clock_interval : int;
  machine_cfg : Machine.config;
  seed : int;
  analysis_chunk : int;
  analysis_cycles_per_word : int;
  drain_on_entry : bool;
      (** drain user trace buffers on every kernel entry (the paper's
          design, preserving the global interleaving); [false] is the
          flush-only-when-full ablation — the kernel counts the words each
          skipped drain leaves behind in [kstat_displaced] *)
}

val default_config : config

type proc_info = {
  pid : int;
  prog : program;
  exe : Exe.t;
  orig_exe : Exe.t;
  bbs : Bbtable.t option;
}

type t = {
  cfg : config;
  machine : Machine.t;
  kernel_exe : Exe.t;
  kernel_orig : Exe.t;
  kernel_bbs : Bbtable.t option;
  mutable procs : proc_info list;
  mutable trace_sink : (int array -> int -> unit) option;
      (** Receives each analysis-phase chunk of the in-kernel buffer.
          The chunk array is a scratch buffer reused across phases
          (borrowed for the call, as in [Sink.t]): copy what you keep. *)
  mutable consumed : int;
  mutable panic : string option;
  mutable frame_next : int;
  free_frames : int list array;
  ncolors : int;
  rng : Systrace_util.Rng.t;
  mutable next_block : int;
  mutable analyze_calls : int;
  mutable scratch : int array;
}

exception Panic of string

val file_plan : file_spec list -> (string * int * int) list
(** Deterministic disk layout (name, start block, size) — shared with
    programs that need it baked in, like the UX server. *)

val build :
  ?cfg:config -> programs:program list -> files:file_spec list -> unit -> t

val run : t -> max_insns:int -> Machine.stop_reason
(** Raises {!Panic} if the kernel panicked. *)

val drain_final : t -> unit
(** Hand any trace remaining in the in-kernel buffer to the sink. *)

val extract_pagemap : t -> int -> int -> int option
(** The virtual-to-physical page map of the running system (§4.2), as a
    translation function for the trace-driven simulator. *)

val console : t -> string
val proc : t -> int -> proc_info
val tlbdropins : t -> int
val ticks : t -> int

val poke : t -> string -> int -> unit
(** Write a word at a kernel data symbol (boot-firmware style). *)

val poke_off : t -> string -> int -> int -> unit
val peek : t -> string -> int
val peek_off : t -> string -> int -> int

val crt0 : traced:bool -> user_buf_pages:int -> Objfile.t
(** The user-side C runtime: program entry (initialising the stolen
    registers on traced systems) and the Mach thread trampoline. *)
