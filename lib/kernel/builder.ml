(* Host-side system builder: assembles and links the kernel (instrumented
   or not), loads it and the workload programs into the machine, and plays
   the role of boot firmware by initialising kernel data structures, page
   tables and the disk directly in the loaded image.

   It also implements the kernel->host hypercalls: EXIT_ALL/PANIC, and the
   ANALYZE protocol through which the in-kernel trace buffer is handed to
   the host-side analysis program in chunks during trace-analysis mode
   (the host stands in for the user-level analysis program of Figure 1;
   the kernel keeps running — and keeps taking device interrupts, whose
   lost trace is the "dirt" of §4.3). *)

open Systrace_isa
open Systrace_machine
open Systrace_tracing
open Systrace_epoxie

type program = {
  pname : string;
  modules : Objfile.t list;
  heap_pages : int;
  is_server : bool;
  notrace : bool;
      (* run uninstrumented even on a traced system: the paper's "pick and
         choose the processes to be traced" (§3.1) *)
}

(* Convenience constructor with the common defaults. *)
let program ?(heap_pages = 4) ?(is_server = false) ?(notrace = false) pname
    modules =
  { pname; modules; heap_pages; is_server; notrace }

type file_spec = {
  fname : string;
  data : string;
  writable_bytes : int; (* extra zero-filled space after [data] *)
}

type config = {
  personality : Kcfg.personality;
  pagemap : Kcfg.pagemap;
  traced : bool;
  trace_buf_bytes : int;
  trace_slack_bytes : int;
  user_buf_pages : int;
  clock_interval : int;
  machine_cfg : Machine.config;
  seed : int;
  analysis_chunk : int;
  analysis_cycles_per_word : int;
  drain_on_entry : bool;
      (* drain user trace buffers on every kernel entry (the paper's
         design, preserves interleaving); false = flush-only-when-full
         ablation *)
}

let default_config =
  {
    personality = Kcfg.Ultrix;
    pagemap = Kcfg.Careful;
    traced = false;
    trace_buf_bytes = Kcfg.ktrace_buf_bytes_default;
    trace_slack_bytes = Kcfg.ktrace_slack_bytes;
    user_buf_pages = Abi.user_buf_pages_default;
    clock_interval = Kcfg.clock_interval_default;
    machine_cfg = Machine.default_config;
    seed = 1;
    analysis_chunk = 65536;
    analysis_cycles_per_word = 2;
    drain_on_entry = true;
  }

type proc_info = {
  pid : int;
  prog : program;
  exe : Exe.t;            (* the loaded binary *)
  orig_exe : Exe.t;       (* uninstrumented twin (same when untraced) *)
  bbs : Bbtable.t option;
}

type t = {
  cfg : config;
  machine : Machine.t;
  kernel_exe : Exe.t;
  kernel_orig : Exe.t;
  kernel_bbs : Bbtable.t option;
  mutable procs : proc_info list;
  mutable trace_sink : (int array -> int -> unit) option;
  mutable consumed : int; (* analysis progress, in words *)
  mutable panic : string option;
  mutable frame_next : int; (* physical frame allocator (pfn) *)
  free_frames : int list array; (* per colour *)
  ncolors : int;
  rng : Systrace_util.Rng.t;
  mutable next_block : int; (* disk block allocator *)
  mutable analyze_calls : int;
  mutable scratch : int array;
      (* chunk buffer reused across ANALYZE phases; sinks borrow it *)
}

exception Panic of string

(* ------------------------------------------------------------------ *)
(* User-side C runtime                                                  *)

let crt0 ~traced ~user_buf_pages : Objfile.t =
  let a = Asm.create ~no_instrument:true "crt0" in
  let open Asm in
  global a "_start";
  label a "_start";
  if traced then begin
    li a Abi.xreg_book Abi.user_book_va;
    li a Abi.xreg_cursor Abi.user_buf_va;
    li a Abi.xreg_limit (Abi.user_buf_va + (user_buf_pages * 4096) - 256)
  end;
  jal a "main";
  move a Reg.a0 Reg.v0;
  li a Reg.v0 Abi.sys_exit;
  syscall a;
  label a "$crt_hang";
  j_ a "$crt_hang";
  (* Thread entry trampoline (Mach, paper §3.6): initialise the stolen
     registers before any instrumented code runs, then call the real
     entry function (passed by the kernel in $a0, with the thread argument
     behind it untouched). *)
  global a "_thread_start";
  label a "_thread_start";
  if traced then begin
    li a Abi.xreg_book Abi.user_book_va;
    li a Abi.xreg_cursor Abi.user_buf_va;
    li a Abi.xreg_limit (Abi.user_buf_va + (user_buf_pages * 4096) - 256)
  end;
  jalr a Reg.a0;
  li a Reg.v0 Abi.sys_exit;
  move a Reg.a0 Reg.zero;
  syscall a;
  label a "$crt_thang";
  j_ a "$crt_thang";
  to_obj a

(* ------------------------------------------------------------------ *)
(* Kernel construction                                                  *)

let kernel_data_va = 0x8008_0000

let kernel_modules ~nbufs ~traced ~clock_interval ~drain_on_entry =
  [
    Kstubs.make ~traced;
    Ksched.make_boot ~traced ~clock_interval ();
    Kdata.make ~nbufs;
    Ktraceops.make ~drain_on_entry ();
    Khandlers.make ();
    Kbufcache.make ();
    Ksched.make ();
  ]

let link_kernel cfg =
  let clock_interval =
    if cfg.traced then cfg.clock_interval * Kcfg.time_dilation
    else cfg.clock_interval
  in
  let mods =
    kernel_modules ~nbufs:Kcfg.nbufs ~traced:cfg.traced ~clock_interval
      ~drain_on_entry:cfg.drain_on_entry
  in
  let orig =
    Link.link ~name:"kernel" ~text_base:Kcfg.kernel_text_va
      ~data_base:kernel_data_va ~entry:"_kboot" mods
  in
  if not cfg.traced then (orig, orig, None)
  else begin
    let imods, descs = Epoxie.instrument_modules mods in
    let instr =
      Link.link ~name:"kernel" ~text_base:Kcfg.kernel_text_va
        ~data_base:kernel_data_va ~entry:"_kboot"
        (imods @ [ Runtime.make Runtime.Kernel ])
    in
    let bbs = Bbmap.build ~instrumented:instr ~original:orig descs in
    (* Flag the idle loop's blocks (by original address) so the parser's
       idle-instruction counter works. *)
    Bbtable.flag_orig_range bbs
      ~lo:(Exe.symbol orig "kidle_loop")
      ~hi:(Exe.symbol orig "kidle_end")
      Bbtable.flag_idle;
    (instr, orig, Some bbs)
  end

let link_program cfg (p : program) =
  let crt_plain = crt0 ~traced:false ~user_buf_pages:cfg.user_buf_pages in
  let orig =
    Link.link ~name:p.pname ~text_base:Kcfg.user_text_va
      ~data_base:Kcfg.user_data_va ~entry:"_start"
      (crt_plain :: p.modules)
  in
  if (not cfg.traced) || p.notrace then (orig, orig, None)
  else begin
    let imods, descs = Epoxie.instrument_modules p.modules in
    let crt_traced = crt0 ~traced:true ~user_buf_pages:cfg.user_buf_pages in
    let instr =
      Link.link ~name:p.pname ~text_base:Kcfg.user_text_va
        ~data_base:Kcfg.user_data_va ~entry:"_start" ~traced:true
        ((crt_traced :: imods) @ [ Runtime.make Runtime.User ])
    in
    let bbs = Bbmap.build ~instrumented:instr ~original:orig descs in
    (instr, orig, Some bbs)
  end

(* ------------------------------------------------------------------ *)
(* Boot-time memory initialisation                                      *)

let kseg0 pa = pa + 0x8000_0000

let poke t sym_name v =
  let va = Exe.symbol t.kernel_exe sym_name in
  Machine.write_phys_u32 t.machine (Addr.kseg0_pa va) v

let poke_off t sym_name off v =
  let va = Exe.symbol t.kernel_exe sym_name + off in
  Machine.write_phys_u32 t.machine (Addr.kseg0_pa va) v

let peek t sym_name =
  let va = Exe.symbol t.kernel_exe sym_name in
  Machine.read_phys_u32 t.machine (Addr.kseg0_pa va)

let peek_off t sym_name off =
  let va = Exe.symbol t.kernel_exe sym_name + off in
  Machine.read_phys_u32 t.machine (Addr.kseg0_pa va)

(* Frame allocation honouring the page-mapping policy (paper §4.2): the
   careful policy colours frames against the (physically indexed) cache;
   the random policy picks any free frame. *)
let alloc_frame t ~vpn =
  match t.cfg.pagemap with
  | Kcfg.Careful -> (
    let color = vpn mod t.ncolors in
    match t.free_frames.(color) with
    | f :: rest ->
      t.free_frames.(color) <- rest;
      f
    | [] -> failwith "alloc_frame: out of coloured frames")
  | Kcfg.Random ->
    let color = Systrace_util.Rng.int t.rng t.ncolors in
    let rec steal c tries =
      if tries = 0 then failwith "alloc_frame: out of frames"
      else
        match t.free_frames.(c) with
        | f :: rest ->
          t.free_frames.(c) <- rest;
          f
        | [] -> steal ((c + 1) mod t.ncolors) (tries - 1)
    in
    steal color t.ncolors

(* A page-table write: PTs live in physical frames recorded per pid. *)
let pte_word ?(valid = true) ?(global = false) pfn =
  (pfn lsl 12)
  lor (if valid then 0x600 else 0)
  lor if global then 0x100 else 0

(* ------------------------------------------------------------------ *)

let load_program t (pi : proc_info) ~heap_pages =
  let m = t.machine in
  let pid = pi.pid in
  let exe = pi.exe in
  (* Page-table pages for this process, lazily created. *)
  let pt_frames : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let pt_base = Kcfg.pt_base_va pid in
  let pt_frame_for vpn =
    let ptpage = vpn lsr 10 in
    match Hashtbl.find_opt pt_frames ptpage with
    | Some f -> f
    | None ->
      let f = t.frame_next in
      t.frame_next <- t.frame_next + 1;
      Hashtbl.add pt_frames ptpage f;
      (* root entry for this PT page (global mapping) *)
      let pt_va = pt_base + (ptpage lsl 12) in
      let root_idx = (pt_va - 0xC000_0000) lsr 12 in
      poke_off t "kroot" (root_idx * 4) (pte_word ~global:true f);
      f
  in
  let set_pte vpn w =
    let f = pt_frame_for vpn in
    let slot_pa = (f lsl 12) + ((vpn land 0x3FF) * 4) in
    Machine.write_phys_u32 m slot_pa w
  in
  (* Map [npages] pages at [va]; returns the first frame's pfn. *)
  let map_region va npages =
    let first = ref (-1) in
    for k = 0 to npages - 1 do
      let vpn = Addr.vpn va + k in
      let pfn = alloc_frame t ~vpn in
      if !first < 0 then first := pfn;
      set_pte vpn (pte_word pfn)
    done;
    !first
  in
  let pages_for bytes = (bytes + Addr.page_mask) / Addr.page_size in
  (* Text *)
  let text_pages = pages_for (Exe.text_size_bytes exe) in
  ignore (map_region exe.Exe.text_base text_pages);
  (* copy text page by page through the page table *)
  let copy_bytes va (s : string) =
    String.iteri
      (fun i c ->
        let vpn = Addr.vpn (va + i) in
        let f = pt_frame_for vpn in
        let slot_pa = (f lsl 12) + ((vpn land 0x3FF) * 4) in
        let pte = Machine.read_phys_u32 m slot_pa in
        let pa = ((pte lsr 12) lsl 12) lor Addr.page_offset (va + i) in
        Machine.write_phys_u8 m pa (Char.code c))
      s
  in
  let text_bytes = Buffer.create 4096 in
  Array.iter
    (fun w ->
      Buffer.add_char text_bytes (Char.chr (w land 0xFF));
      Buffer.add_char text_bytes (Char.chr ((w lsr 8) land 0xFF));
      Buffer.add_char text_bytes (Char.chr ((w lsr 16) land 0xFF));
      Buffer.add_char text_bytes (Char.chr ((w lsr 24) land 0xFF)))
    exe.Exe.text;
  copy_bytes exe.Exe.text_base (Buffer.contents text_bytes);
  (* Data + heap *)
  let data_pages = pages_for (Bytes.length exe.Exe.data) + heap_pages in
  ignore (map_region exe.Exe.data_base (max data_pages 1));
  copy_bytes exe.Exe.data_base (Bytes.to_string exe.Exe.data);
  let heap_start =
    exe.Exe.data_base
    + (pages_for (Bytes.length exe.Exe.data) * Addr.page_size)
  in
  (* Stack *)
  ignore
    (map_region
       (Kcfg.user_stack_top - (Kcfg.user_stack_pages * Addr.page_size))
       Kcfg.user_stack_pages);
  (* Trace pages: premapped for Ultrix traced programs (flag in the
     executable); Mach maps them on first touch. *)
  let traced_now =
    t.cfg.traced && exe.Exe.traced && t.cfg.personality = Kcfg.Ultrix
  in
  if traced_now then
    ignore (map_region Abi.user_book_va (1 + t.cfg.user_buf_pages));
  (* Make sure PT pages exist for the trace region and heap under Mach
     (PTEs stay invalid; the fault path fills them). *)
  if t.cfg.traced && t.cfg.personality = Kcfg.Mach then
    ignore (pt_frame_for (Addr.vpn Abi.user_book_va));
  (* PCB *)
  let pcb_off = pid * Kcfg.pcb_size in
  let pcb fld v = poke_off t "pcbs" (pcb_off + fld) v in
  pcb (Kcfg.pcb_reg Reg.sp) (Kcfg.user_stack_top - 16);
  pcb Kcfg.pcb_epc exe.Exe.entry;
  pcb Kcfg.pcb_status
    (0xC lor (1 lsl (8 + Addr.irq_clock)) lor (1 lsl (8 + Addr.irq_disk)));
  pcb Kcfg.pcb_state 1;
  pcb Kcfg.pcb_traced (if traced_now then 1 else 0);
  pcb Kcfg.pcb_waitchan (-1);
  pcb Kcfg.pcb_brk heap_start;
  pcb Kcfg.pcb_context pt_base;
  pcb Kcfg.pcb_asid (pid + 1);
  (match Exe.symbol_opt exe "trt::$text_start" with
  | Some lo ->
    pcb Kcfg.pcb_trt_lo lo;
    pcb Kcfg.pcb_trt_hi (Exe.text_limit exe)
  | None ->
    pcb Kcfg.pcb_trt_lo 0;
    pcb Kcfg.pcb_trt_hi 0);
  (* Under Ultrix this area is the fd table (-1 = free slot); under Mach
     fds live in the UX server and the same words hold the per-thread
     trace-page PTEs, which must start invalid (0). *)
  (match t.cfg.personality with
  | Kcfg.Ultrix | Kcfg.Tunix ->
    for fd = 0 to Kcfg.max_fds - 1 do
      pcb (Kcfg.pcb_fds + (fd * Kcfg.pcb_fd_stride)) 0xFFFFFFFF
    done
  | Kcfg.Mach ->
    for k = 0 to (Kcfg.max_fds * Kcfg.pcb_fd_stride / 4) - 1 do
      pcb (Kcfg.pcb_fds + (k * 4)) 0
    done);
  if pi.prog.is_server then poke t "kserver_pid" pid

(* Deterministic file layout, shared with programs (e.g. the UX server)
   that need the disk plan baked in at build time. *)
let file_plan (files : file_spec list) =
  let next = ref 1 in
  List.map
    (fun f ->
      let total = String.length f.data + f.writable_bytes in
      let blocks = max 1 ((total + Disk.block_bytes - 1) / Disk.block_bytes) in
      let start = !next in
      next := !next + blocks;
      (f.fname, start, total))
    files

(* ------------------------------------------------------------------ *)

let add_file t (f : file_spec) ~index =
  let total = String.length f.data + f.writable_bytes in
  let blocks = max 1 ((total + Disk.block_bytes - 1) / Disk.block_bytes) in
  let start = t.next_block in
  t.next_block <- t.next_block + blocks;
  Disk.write_image t.machine.Machine.disk ~block:start ~off:0 f.data;
  (* filetab entry *)
  let off = index * Kcfg.file_entry_size in
  let name16 =
    let b = Bytes.make 16 '\000' in
    String.iteri (fun i c -> if i < 15 then Bytes.set b i c) f.fname;
    Bytes.to_string b
  in
  let base = Exe.symbol t.kernel_exe "filetab" + off in
  Machine.write_phys_bytes t.machine (Addr.kseg0_pa base) name16;
  poke_off t "filetab" (off + Kcfg.file_start_block) start;
  poke_off t "filetab" (off + Kcfg.file_size_bytes) total

(* ------------------------------------------------------------------ *)

(* Read [chunk] trace words starting at physical address [pa] into a
   scratch array reused across every ANALYZE phase and final drain.  The
   sink contract (Sink.t) is that chunk arrays are borrowed for the call,
   so a streamed run allocates one chunk buffer total, not one per phase. *)
let read_chunk t pa chunk =
  if Array.length t.scratch < chunk then
    t.scratch <- Array.make (max chunk t.cfg.analysis_chunk) 0;
  let words = t.scratch in
  let m = t.machine in
  for k = 0 to chunk - 1 do
    Array.unsafe_set words k (Machine.read_phys_u32 m (pa + (k * 4)))
  done;
  words

let hcall_handler t (m : Machine.t) code =
  if code = Abi.hc_halt || code = Abi.hc_exit_all then begin
    (* The cursor is parked to ktrace_cursor_home only on return to user,
       so the final kernel entry's records (and any exit-time drain) still
       sit between the parked value and the live register.  Park it one
       last time so drain_final captures the whole tail. *)
    if t.cfg.traced && peek t "ktrace_on" = 1 then
      poke t "ktrace_cursor_home" m.Machine.regs.(Abi.xreg_cursor);
    Machine.halt m
  end
  else if code = Abi.hc_panic then begin
    let msg =
      Printf.sprintf
        "kernel panic: a0=%d a1=0x%x epc=0x%x cause=0x%x badva=0x%x \
         curpid=%d cycles=%d"
        m.Machine.regs.(Reg.a0) m.Machine.regs.(Reg.a1) m.Machine.epc
        m.Machine.cause m.Machine.badvaddr (peek t "curpid")
        m.Machine.cycles
    in
    t.panic <- Some msg;
    Machine.halt m
  end
  else if code = Abi.hc_analyze then begin
    t.analyze_calls <- t.analyze_calls + 1;
    let buf_base = peek t "ktrace_buf_base" in
    let saved = peek t "ktrace_saved_cursor" in
    let total = (saved - buf_base) / 4 in
    let remaining = total - t.consumed in
    let chunk = min remaining t.cfg.analysis_chunk in
    if chunk > 0 then begin
      let pa = Addr.kseg0_pa buf_base + (t.consumed * 4) in
      let words = read_chunk t pa chunk in
      (match t.trace_sink with
      | Some sink -> sink words chunk
      | None -> ());
      t.consumed <- t.consumed + chunk
    end;
    let left = remaining - chunk in
    m.Machine.regs.(Reg.v0) <- left;
    m.Machine.regs.(Reg.v1) <- chunk * t.cfg.analysis_cycles_per_word;
    if left = 0 then t.consumed <- 0
  end
  else if code = Abi.hc_debug then ()
  else failwith (Printf.sprintf "unknown hcall %d" code)

(* ------------------------------------------------------------------ *)

let build ?(cfg = default_config) ~programs ~files () =
  let kernel_exe, kernel_orig, kernel_bbs = link_kernel cfg in
  let machine = Machine.create ~cfg:cfg.machine_cfg () in
  let ncolors =
    max 1 (cfg.machine_cfg.Machine.dcache_bytes / Addr.page_size)
  in
  let first_frame = Kcfg.frames_base_pa lsr 12 in
  let last_frame = (Kcfg.frames_limit_pa lsr 12) - 1 in
  let free = Array.make ncolors [] in
  for f = last_frame downto first_frame do
    free.(f mod ncolors) <- f :: free.(f mod ncolors)
  done;
  let t =
    {
      cfg;
      machine;
      kernel_exe;
      kernel_orig;
      kernel_bbs;
      procs = [];
      trace_sink = None;
      consumed = 0;
      panic = None;
      frame_next = first_frame;
      free_frames = free;
      ncolors;
      rng = Systrace_util.Rng.create cfg.seed;
      next_block = 1;
      analyze_calls = 0;
      scratch = [||];
    }
  in
  (* Bump allocator for PT/trace frames comes from the high end to stay
     clear of the coloured pool: instead, reserve the first 256 frames of
     the region for the bump allocator and remove them from the pool. *)
  let bump_reserve = 256 in
  Array.iteri
    (fun c l ->
      free.(c) <- List.filter (fun f -> f >= first_frame + bump_reserve) l)
    free;
  t.frame_next <- first_frame;
  (* Load the kernel. *)
  Machine.load_exe_phys machine kernel_exe ~text_pa:Kcfg.kernel_text_pa
    ~data_pa:(Addr.kseg0_pa kernel_data_va);
  machine.Machine.pc <- kernel_exe.Exe.entry;
  machine.Machine.npc <- kernel_exe.Exe.entry + 4;
  machine.Machine.hcall_handler <- Some (hcall_handler t);
  (* Idle-loop range for ground-truth idle counting. *)
  machine.Machine.idle_lo <- Exe.symbol kernel_exe "kidle_loop";
  machine.Machine.idle_hi <- Exe.symbol kernel_exe "kidle_end";
  (* Kernel tracing state. *)
  let buf_va = kseg0 Kcfg.ktrace_buf_pa in
  poke t "ktrace_buf_base" buf_va;
  poke t "ktrace_cursor_home" buf_va;
  poke t "ktrace_real_limit"
    (buf_va + cfg.trace_buf_bytes - cfg.trace_slack_bytes);
  poke t "ktrace_limit_home"
    (buf_va + cfg.trace_buf_bytes - cfg.trace_slack_bytes);
  let discard = Exe.symbol kernel_exe "ktrace_discard" in
  poke t "ktrace_discard_base" discard;
  poke t "ktrace_discard_end" (discard + 4096 - 256);
  poke t "ktrace_on" (if cfg.traced then 1 else 0);
  poke t "kpersonality"
    (match cfg.personality with Kcfg.Ultrix -> 0 | Kcfg.Mach -> 1 | Kcfg.Tunix -> 0);
  (* The trace region only exists on traced systems: a zero page count
     disables the Mach fault path and the per-thread remap loop. *)
  poke t "ktrace_region_pages" (if cfg.traced then 1 + cfg.user_buf_pages else 0);
  poke t "ktrace_region_end"
    (if cfg.traced then
       Abi.user_book_va + ((1 + cfg.user_buf_pages) * 4096)
     else Abi.user_book_va);
  (* Buffer cache headers *)
  let bufpages = Exe.symbol kernel_exe "bufpages" in
  for i = 0 to Kcfg.nbufs - 1 do
    let off = i * Kcfg.buf_entry_size in
    poke_off t "bufhdrs" (off + Kcfg.buf_block) 0xFFFFFFFF;
    poke_off t "bufhdrs" (off + Kcfg.buf_state) 0;
    poke_off t "bufhdrs" (off + Kcfg.buf_page) (bufpages + (i * 4096))
  done;
  (* Files *)
  List.iteri (fun i f -> add_file t f ~index:i) files;
  poke t "nfiles" (List.length files);
  (* Programs *)
  let nworkload = ref 0 in
  List.iteri
    (fun pid (p : program) ->
      let exe, orig_exe, bbs = link_program cfg p in
      let pi = { pid; prog = p; exe; orig_exe; bbs } in
      load_program t pi ~heap_pages:p.heap_pages;
      if not p.is_server then incr nworkload;
      t.procs <- t.procs @ [ pi ])
    programs;
  poke t "knworkload" !nworkload;
  poke t "kframe_next" t.frame_next;
  (* Start with the first process. *)
  poke t "curpid" 0;
  let pcb0 = Exe.symbol kernel_exe "pcbs" in
  poke t "curpcb" pcb0;
  t

(* ------------------------------------------------------------------ *)

let run t ~max_insns =
  let r = Machine.run t.machine ~max_insns in
  (match t.panic with Some msg -> raise (Panic msg) | None -> ());
  r

(* Hand any trace left in the in-kernel buffer to the sink (end of run),
   in [analysis_chunk]-sized pieces like the ANALYZE hcall path — so peak
   resident trace words stays O(chunk) even when the whole run fits the
   buffer and no ANALYZE phase ever fired. *)
let drain_final t =
  let base = peek t "ktrace_buf_base" in
  let cursor = peek t "ktrace_cursor_home" in
  let total = (cursor - base) / 4 in
  while total - t.consumed > 0 do
    let chunk = min (total - t.consumed) t.cfg.analysis_chunk in
    let pa = Addr.kseg0_pa base + (t.consumed * 4) in
    let words = read_chunk t pa chunk in
    (match t.trace_sink with
    | Some sink -> sink words chunk
    | None -> ());
    t.consumed <- t.consumed + chunk
  done;
  t.consumed <- 0

(* Extract the virtual-to-physical page map from the running system, as
   the traced Ultrix and Mach kernels offered (paper, Â§4.2).  Returns a
   translation function for the trace-driven simulator: kuseg pages are
   looked up per pid through the linear page tables; kseg2 pages through
   the root table. *)
let extract_pagemap t =
  let m = t.machine in
  let user : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let kseg2 : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let root_base = Addr.kseg0_pa (Exe.symbol t.kernel_exe "kroot") in
  for i = 0 to Kcfg.kseg2_span_pages - 1 do
    let pte = Machine.read_phys_u32 m (root_base + (i * 4)) in
    if pte land 0x200 <> 0 then
      Hashtbl.replace kseg2 ((0xC000_0000 lsr 12) + i) (pte lsr 12)
  done;
  List.iter
    (fun (pi : proc_info) ->
      let pid = pi.pid in
      let pt_base = Kcfg.pt_base_va pid in
      for ptpage = 0 to (Kcfg.pt_stride lsr 12) - 1 do
        let pt_va = pt_base + (ptpage lsl 12) in
        match Hashtbl.find_opt kseg2 (pt_va lsr 12) with
        | None -> ()
        | Some frame ->
          for slot = 0 to 1023 do
            let pte = Machine.read_phys_u32 m ((frame lsl 12) + (slot * 4)) in
            if pte land 0x200 <> 0 then
              Hashtbl.replace user (pid, (ptpage lsl 10) + slot) (pte lsr 12)
          done
      done)
    t.procs;
  fun pid va ->
    if va < 0x8000_0000 then
      match Hashtbl.find_opt user (pid, va lsr 12) with
      | Some pfn -> Some ((pfn lsl 12) lor (va land 0xFFF))
      | None -> None
    else if va >= 0xC000_0000 then
      match Hashtbl.find_opt kseg2 (va lsr 12) with
      | Some pfn -> Some ((pfn lsl 12) lor (va land 0xFFF))
      | None -> None
    else Some (va land 0x1FFF_FFFF)

let console t = Machine.console_contents t.machine

let proc t pid = List.find (fun p -> p.pid = pid) t.procs

let tlbdropins t = peek t "ktlbdropins"
let ticks t = peek t "kticks"
