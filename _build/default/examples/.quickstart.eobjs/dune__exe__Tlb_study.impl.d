examples/tlb_study.ml: Array List Printf Systrace Tracesim Tracing Workloads
