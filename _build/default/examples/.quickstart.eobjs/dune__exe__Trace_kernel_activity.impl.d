examples/trace_kernel_activity.ml: Asm Char Hashtbl Insn Isa Option Printf Reg String Systrace Systrace_kernel Tracing Workloads
