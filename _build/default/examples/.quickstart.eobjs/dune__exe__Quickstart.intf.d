examples/quickstart.mli:
