examples/custom_workload.ml: Asm Buffer Char Format Insn Isa Printf Reg Systrace Systrace_kernel Tracesim Validate Workloads
