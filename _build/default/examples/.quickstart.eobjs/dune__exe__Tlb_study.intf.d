examples/tlb_study.mli:
