examples/trace_kernel_activity.mli:
