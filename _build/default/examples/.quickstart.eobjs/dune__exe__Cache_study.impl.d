examples/cache_study.ml: Array List Printf Systrace Tracesim Tracing Workloads
