examples/quickstart.ml: Asm Isa Printf Reg Systrace Systrace_kernel Tracing Workloads
