(* Bringing your own workload: the full journey a user of the tracing
   system takes — write a program against the mini libc, run it measured,
   run it traced, and predict its execution time from the trace alone,
   paper-style.

     dune exec examples/custom_workload.exe                            *)

open Systrace
module Builder = Systrace_kernel.Builder

(* A small "database": builds a hash table of key/value pairs read from a
   file, then serves a burst of lookups and reports a hit count. *)
let kvstore_program () : Builder.program =
  let open Isa in
  let a = Asm.create "kvstore" in
  let nbuckets = 512 in
  Asm.func a "main" ~frame:16 ~saves:[ Reg.s0; Reg.s1; Reg.s2 ] (fun () ->
      (* load the whole input: records of two words (key, value) *)
      Asm.la a Reg.a0 "$fname";
      Asm.jal a "u_open";
      Asm.move a Reg.s0 Reg.v0;
      Asm.la a Reg.s1 "$records";
      Asm.label a "$ld";
      Asm.move a Reg.a0 Reg.s0;
      Asm.move a Reg.a1 Reg.s1;
      Asm.li a Reg.a2 2048;
      Asm.jal a "u_read";
      Asm.blez a Reg.v0 "$insert";
      Asm.nop a;
      Asm.i a (Insn.J (Sym "$ld"));
      Asm.addu a Reg.s1 Reg.s1 Reg.v0;
      (* insert every record: bucket = key mod nbuckets; chain through the
         per-record link word *)
      Asm.label a "$insert";
      Asm.la a Reg.t0 "$records";
      Asm.label a "$ins_loop";
      Asm.sltu a Reg.t1 Reg.t0 Reg.s1;
      Asm.beqz a Reg.t1 "$lookup";
      Asm.nop a;
      Asm.lw a Reg.t2 0 Reg.t0;            (* key *)
      Asm.andi a Reg.t3 Reg.t2 (nbuckets - 1);
      Asm.sll a Reg.t3 Reg.t3 2;
      Asm.la a Reg.t4 "$buckets";
      Asm.addu a Reg.t4 Reg.t4 Reg.t3;
      Asm.lw a Reg.t5 0 Reg.t4;            (* old head *)
      Asm.sw a Reg.t5 8 Reg.t0;            (* record.link = old head *)
      Asm.sw a Reg.t0 0 Reg.t4;            (* head = record *)
      Asm.i a (Insn.J (Sym "$ins_loop"));
      Asm.addiu a Reg.t0 Reg.t0 12;
      (* lookups: an LCG picks keys; count how many are present *)
      Asm.label a "$lookup";
      Asm.li a Reg.s2 0;                   (* hits *)
      Asm.li a Reg.t6 20000;               (* probes *)
      Asm.li a Reg.t7 7;                   (* lcg state *)
      Asm.label a "$probe";
      Asm.blez a Reg.t6 "$report";
      Asm.nop a;
      Asm.li a Reg.t0 1103515245;
      Asm.mul a Reg.t7 Reg.t7 Reg.t0;
      Asm.addiu a Reg.t7 Reg.t7 12345;
      Asm.srl a Reg.t1 Reg.t7 7;
      Asm.andi a Reg.t1 Reg.t1 0x3FF;      (* key space: 0..1023 *)
      Asm.andi a Reg.t2 Reg.t1 (nbuckets - 1);
      Asm.sll a Reg.t2 Reg.t2 2;
      Asm.la a Reg.t3 "$buckets";
      Asm.addu a Reg.t3 Reg.t3 Reg.t2;
      Asm.lw a Reg.t4 0 Reg.t3;            (* chain head *)
      Asm.label a "$chain";
      Asm.beqz a Reg.t4 "$miss";
      Asm.nop a;
      Asm.lw a Reg.t5 0 Reg.t4;
      Asm.beq a Reg.t5 Reg.t1 "$hit";
      Asm.nop a;
      Asm.i a (Insn.J (Sym "$chain"));
      Asm.lw a Reg.t4 8 Reg.t4;
      Asm.label a "$hit";
      Asm.addiu a Reg.s2 Reg.s2 1;
      Asm.label a "$miss";
      Asm.i a (Insn.J (Sym "$probe"));
      Asm.addiu a Reg.t6 Reg.t6 (-1);
      Asm.label a "$report";
      Asm.move a Reg.a0 Reg.s2;
      Asm.jal a "print_uint";
      Asm.li a Reg.v0 0);
  Asm.dlabel a "$fname";
  Asm.asciiz a "kv.in";
  Asm.align a 4;
  Asm.dlabel a "$buckets";
  Asm.space a (nbuckets * 4);
  Asm.align a 4;
  Asm.dlabel a "$records";
  Asm.space a 32768;
  Builder.program "kvstore" [ Asm.to_obj a; Workloads.Userlib.make () ]

let files =
  let b = Buffer.create 8192 in
  let r = ref 17 in
  for _ = 1 to 600 do
    r := ((!r * 75) + 74) mod 65537;
    let key = !r land 0x3FF and value = !r lsr 3 in
    let word v =
      for k = 0 to 3 do
        Buffer.add_char b (Char.chr ((v lsr (8 * k)) land 0xFF))
      done
    in
    word key;
    word value;
    word 0 (* link slot *)
  done;
  [ { Builder.fname = "kv.in"; data = Buffer.contents b; writable_bytes = 0 } ]

let () =
  let spec =
    { Validate.wname = "kvstore"; files; programs = [ kvstore_program () ] }
  in
  Printf.printf "validating the custom kvstore workload under Ultrix...\n%!";
  let row = Validate.run_workload Validate.Ultrix spec in
  let m = row.Validate.r_measured and p = row.Validate.r_predicted in
  Printf.printf "  console:   %S\n" m.Validate.m_console;
  Printf.printf "  measured:  %.4f s (%d user TLB misses)\n"
    m.Validate.m_seconds m.Validate.m_utlb;
  Printf.printf "  predicted: %.4f s (%d user TLB misses)  error %.1f%%\n"
    p.Validate.p_breakdown.Tracesim.Predict.seconds p.Validate.p_utlb
    (Validate.percent_error row);
  Format.printf "  %a@." Tracesim.Predict.pp p.Validate.p_breakdown
