(* TLB study: replay one captured system trace through TLB models of
   different sizes.

   The authors used exactly these traces for "A Simulation Based Study of
   TLB Performance" (Chen, Borg, Jouppi, ISCA 1992).  eqntott — the
   workload with by far the most TLB misses in Table 3 — is captured once
   and replayed against 16- to 256-entry TLBs.

     dune exec examples/tlb_study.exe                                  *)

open Systrace

let () =
  let e = Workloads.Suite.find "eqntott" in
  Printf.printf "capturing the %s system trace...\n%!" e.Workloads.Suite.name;
  let words, run =
    capture_trace [ e.Workloads.Suite.program () ] e.Workloads.Suite.files
  in
  Printf.printf "  %d trace words (%d instructions reconstructed)\n\n"
    (Array.length words) run.parse_stats.Tracing.Parser.insts;
  let base = default_memsim_cfg ~system:run.system in
  Printf.printf "%-12s %-14s %-14s %-16s\n" "TLB entries" "user misses"
    "kseg2 misses" "misses/1k-insn";
  List.iter
    (fun entries ->
      let cfg = { base with Tracesim.Memsim.tlb_entries = entries } in
      let mem, parse = replay ~system:run.system ~memsim_cfg:cfg words in
      Printf.printf "%-12d %-14d %-14d %-16.3f\n" entries
        mem.Tracesim.Memsim.utlb_misses mem.Tracesim.Memsim.ktlb_misses
        (1000.0
        *. float_of_int mem.Tracesim.Memsim.utlb_misses
        /. float_of_int parse.Tracing.Parser.insts))
    [ 16; 32; 64; 128; 256 ]
