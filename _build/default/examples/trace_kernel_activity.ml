(* Tracing complete system activity: the motivating use case of the paper
   ("system activity can have a large impact on overall performance").

   Two processes share the machine: one reads a file through the buffer
   cache (system-call and disk heavy), one spins in user code.  The trace
   shows the kernel/user interleaving, where the kernel spends its
   instructions, and how much idle time the disk induces — the exact
   quantities the paper's §5.1 uses to predict execution times.

     dune exec examples/trace_kernel_activity.exe                      *)

open Systrace
module Builder = Systrace_kernel.Builder

let reader_program () : Builder.program =
  let open Isa in
  let a = Asm.create "reader" in
  Asm.func a "main" ~frame:0 ~saves:[ Reg.s0; Reg.s1 ] (fun () ->
      Asm.la a Reg.a0 "$f";
      Asm.jal a "u_open";
      Asm.move a Reg.s0 Reg.v0;
      Asm.li a Reg.s1 0;
      Asm.label a "$rd";
      Asm.move a Reg.a0 Reg.s0;
      Asm.la a Reg.a1 "$buf";
      Asm.li a Reg.a2 1024;
      Asm.jal a "u_read";
      Asm.blez a Reg.v0 "$done";
      Asm.nop a;
      Asm.i a (Insn.J (Sym "$rd"));
      Asm.addu a Reg.s1 Reg.s1 Reg.v0;
      Asm.label a "$done";
      Asm.move a Reg.a0 Reg.s1;
      Asm.jal a "print_uint";
      Asm.la a Reg.a0 "$nl";
      Asm.jal a "puts";
      Asm.li a Reg.v0 0);
  Asm.dlabel a "$f";
  Asm.asciiz a "data";
  Asm.dlabel a "$nl";
  Asm.asciiz a "\n";
  Asm.dlabel a "$buf";
  Asm.space a 1024;
  {
    Builder.pname = "reader";
    modules = [ Asm.to_obj a; Workloads.Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }

let spinner_program () : Builder.program =
  let open Isa in
  let a = Asm.create "spinner" in
  Asm.func a "main" ~frame:0 ~saves:[] (fun () ->
      Asm.li a Reg.t0 60000;
      Asm.li a Reg.v0 0;
      Asm.label a "$spin";
      Asm.addiu a Reg.t0 Reg.t0 (-1);
      Asm.i a (Insn.Bgtz (Reg.t0, Sym "$spin"));
      Asm.addiu a Reg.v0 Reg.v0 1);
  {
    Builder.pname = "spinner";
    modules = [ Asm.to_obj a; Workloads.Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }

let () =
  let files =
    [
      {
        Builder.fname = "data";
        data = String.init 40960 (fun i -> Char.chr (i land 0xFF));
        writable_bytes = 0;
      };
    ]
  in
  (* Attribute kernel instructions per pid as they stream by. *)
  let kernel_by_pid = Hashtbl.create 8 in
  let on_event = function
    | Inst { pid; kernel = true; _ } ->
      Hashtbl.replace kernel_by_pid pid
        (1 + Option.value ~default:0 (Hashtbl.find_opt kernel_by_pid pid))
    | _ -> ()
  in
  let run =
    run_traced ~on_event [ reader_program (); spinner_program () ] files
  in
  let s = run.parse_stats in
  Printf.printf "Console: %S\n\n" run.console;
  Printf.printf "System trace breakdown:\n";
  Printf.printf "  user instructions:    %9d\n" s.Tracing.Parser.user_insts;
  Printf.printf "  kernel instructions:  %9d\n" s.Tracing.Parser.kernel_insts;
  Printf.printf "  ... of which idle:    %9d (x%d to estimate untraced I/O wait)\n"
    s.Tracing.Parser.idle_insts Systrace_kernel.Kcfg.time_dilation;
  Printf.printf "  context switches:     %9d\n" s.Tracing.Parser.pid_switches;
  Printf.printf "  buffer drains:        %9d\n" s.Tracing.Parser.drains;
  Printf.printf "  nested exceptions:    %9d (max depth %d)\n"
    (s.Tracing.Parser.exc_markers / 2)
    s.Tracing.Parser.max_exc_depth;
  Printf.printf "\nKernel instructions attributed per process:\n";
  Hashtbl.iter
    (fun pid n -> Printf.printf "  pid %d: %d\n" pid n)
    kernel_by_pid
