(* Tests for the workload suite: golden outputs (the workloads are
   deterministic programs, as the paper's validation methodology
   requires), determinism of the machine, personality equivalence, and a
   full traced validation pass for a representative workload. *)

open Systrace_kernel
open Systrace_workloads
open Systrace_validate

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* lisp must find the 92 solutions of 8-queens; the others' digests are
   pinned: any unintended behaviour change in the ISA, kernel or machine
   shows up here. *)
let goldens =
  [
    ("sed", "223");
    ("egrep", "420");
    ("yacc", "1560475639");
    ("gcc", "1868329662");
    ("compress", "2225410");
    ("espresso", "123069");
    ("lisp", "92");
    ("eqntott", "234034680");
    ("fpppp", "4800");
    ("doduc", "44040");
    ("liv", "8001");
    ("tomcatv", "47");
  ]

let run_ultrix (e : Suite.entry) =
  let t =
    Builder.build ~cfg:Builder.default_config
      ~programs:[ e.Suite.program () ]
      ~files:e.Suite.files ()
  in
  match Builder.run t ~max_insns:500_000_000 with
  | Systrace_machine.Machine.Halt -> t
  | Systrace_machine.Machine.Limit -> Alcotest.failf "%s did not halt" e.Suite.name

let strip s = String.trim s

let golden_test name expected () =
  let e = Suite.find name in
  let t = run_ultrix e in
  check_str "console" expected (strip (Builder.console t))

let test_determinism () =
  let e = Suite.find "doduc" in
  let t1 = run_ultrix e and t2 = run_ultrix e in
  check_str "same output" (Builder.console t1) (Builder.console t2);
  Alcotest.(check int)
    "same cycle count" t1.Builder.machine.Systrace_machine.Machine.cycles
    t2.Builder.machine.Systrace_machine.Machine.cycles

let test_mach_equivalence () =
  (* File-processing workloads must produce the same answer through the
     UX server as through the monolithic kernel. *)
  List.iter
    (fun name ->
      let e = Suite.find name in
      let spec =
        { Validate.wname = name; files = e.Suite.files;
          programs = [ e.Suite.program () ] }
      in
      let mu = Validate.measure Validate.Ultrix spec in
      let mm = Validate.measure Validate.Mach spec in
      check_str (name ^ " output") mu.Validate.m_console mm.Validate.m_console)
    (* sed and compress write output files: under Mach that exercises the
       UX server's write path (copyin + user-space cache). *)
    [ "egrep"; "compress"; "yacc"; "sed"; "gcc" ]

let test_validated_prediction () =
  (* Full pipeline for one workload: the traced run must agree on output,
     and the prediction must land within 10% (Figure 3: most workloads are
     under 5%; egrep has no disk-latency pathologies). *)
  let e = Suite.find "egrep" in
  let spec =
    { Validate.wname = "egrep"; files = e.Suite.files;
      programs = [ e.Suite.program () ] }
  in
  let row = Validate.run_workload Validate.Ultrix spec in
  let err = Validate.percent_error row in
  if err > 10.0 then Alcotest.failf "egrep prediction error %.1f%% > 10%%" err

let test_expansion_bands () =
  (* Every workload's epoxie expansion must be below pixie's, and the
     suite means must fall in the paper's bands (1.9-2.3 vs 4-6). *)
  let open Systrace_epoxie in
  let means =
    List.map
      (fun (e : Suite.entry) ->
        let mods = (e.Suite.program ()).Builder.modules in
        let imods, _ = Epoxie.instrument_modules mods in
        let pmods = Pixie.instrument_modules mods in
        let fe = Epoxie.expansion ~original:mods ~instrumented:imods in
        let fp = Pixie.expansion ~original:mods ~instrumented:pmods in
        check (e.Suite.name ^ ": epoxie < pixie") true (fe < fp);
        (fe, fp))
      Suite.all
  in
  let fe = Systrace_util.Stats.mean (List.map fst means) in
  let fp = Systrace_util.Stats.mean (List.map snd means) in
  check "epoxie mean in band" true (fe >= 1.5 && fe <= 2.8);
  check "pixie mean in band" true (fp >= 3.5 && fp <= 6.5)

let test_dilation_band () =
  let e = Suite.find "egrep" in
  let spec =
    { Validate.wname = "egrep"; files = e.Suite.files;
      programs = [ e.Suite.program () ] }
  in
  let row = Validate.run_workload Validate.Ultrix spec in
  let d = Validate.dilation row in
  check "dilation plausible" true (d > 3.0 && d < 25.0)

let tests =
  List.map
    (fun (name, expected) ->
      Alcotest.test_case ("golden: " ^ name) `Slow (golden_test name expected))
    goldens
  @ [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "mach equivalence" `Slow test_mach_equivalence;
      Alcotest.test_case "validated prediction (egrep)" `Slow
        test_validated_prediction;
      Alcotest.test_case "expansion bands" `Quick test_expansion_bands;
      Alcotest.test_case "dilation band" `Quick test_dilation_band;
    ]
