(* End-to-end kernel tests: boot the full system (kernel + user programs
   on the simulated machine) untraced and traced, under both personalities,
   and validate console output, file I/O, scheduling, and the collected
   traces. *)

open Systrace_isa
open Systrace_tracing
open Systrace_kernel
open Systrace_workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* A program that prints a greeting and exits. *)
let hello_prog () : Builder.program =
  let a = Asm.create "hello" in
  let open Asm in
  func a "main" ~frame:0 ~saves:[] (fun () ->
      la a Reg.a0 "$msg";
      jal a "puts";
      li a Reg.v0 0);
  dlabel a "$msg";
  asciiz a "hello, world\n";
  {
    Builder.pname = "hello";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 4;
    is_server = false;
    notrace = false;
  }

(* Opens a file, sums its bytes with read(), prints the sum. *)
let checksum_prog ?(name = "cksum") ~file () : Builder.program =
  let a = Asm.create name in
  let open Asm in
  func a "main" ~frame:0 ~saves:[ Reg.s0; Reg.s1; Reg.s2 ] (fun () ->
      la a Reg.a0 "$fname";
      jal a "u_open";
      move a Reg.s0 Reg.v0;          (* fd *)
      bltz a Reg.s0 "$ck_fail";
      li a Reg.s1 0;                 (* sum *)
      label a "$ck_loop";
      move a Reg.a0 Reg.s0;
      la a Reg.a1 "$buf";
      li a Reg.a2 512;
      jal a "u_read";
      blez a Reg.v0 "$ck_done";
      move a Reg.s2 Reg.v0;          (* n *)
      la a Reg.t0 "$buf";
      addu a Reg.t1 Reg.t0 Reg.s2;
      label a "$ck_sum";
      beq a Reg.t0 Reg.t1 "$ck_loop";
      nop a;
      lbu a Reg.t2 0 Reg.t0;
      addu a Reg.s1 Reg.s1 Reg.t2;
      i a (Insn.J (Sym "$ck_sum"));
      addiu a Reg.t0 Reg.t0 1;
      label a "$ck_done";
      move a Reg.a0 Reg.s1;
      jal a "print_uint";
      la a Reg.a0 "$nl";
      jal a "puts";
      li a Reg.v0 0;
      j_ a (name ^ "::exit_ok");
      label a "$ck_fail";
      la a Reg.a0 "$failmsg";
      jal a "puts";
      li a Reg.v0 1;
      label a (name ^ "::exit_ok"));
  dlabel a "$fname";
  asciiz a file;
  dlabel a "$nl";
  asciiz a "\n";
  dlabel a "$failmsg";
  asciiz a "open failed\n";
  dlabel a "$buf";
  space a 512;
  {
    Builder.pname = name;
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 4;
    is_server = false;
    notrace = false;
  }

(* Yields in a loop, printing its tag each round: exercises scheduling. *)
let pingpong_prog ~name ~tag ~rounds () : Builder.program =
  let a = Asm.create name in
  let open Asm in
  func a "main" ~frame:0 ~saves:[ Reg.s0 ] (fun () ->
      li a Reg.s0 rounds;
      label a "$pp_loop";
      la a Reg.a0 "$tag";
      jal a "puts";
      jal a "u_yield";
      addiu a Reg.s0 Reg.s0 (-1);
      bgtz a Reg.s0 "$pp_loop";
      li a Reg.v0 0);
  dlabel a "$tag";
  asciiz a tag;
  {
    Builder.pname = name;
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 4;
    is_server = false;
    notrace = false;
  }

let test_file =
  {
    Builder.fname = "input";
    data = String.init 1000 (fun i -> Char.chr (i land 0xFF));
    writable_bytes = 0;
  }

let expected_checksum =
  let s = String.init 1000 (fun i -> Char.chr (i land 0xFF)) in
  String.fold_left (fun acc c -> acc + Char.code c) 0 s

let run_system ?(cfg = Builder.default_config) ?(files = []) programs =
  let t = Builder.build ~cfg ~programs ~files () in
  (match Builder.run t ~max_insns:100_000_000 with
  | Systrace_machine.Machine.Halt -> ()
  | Systrace_machine.Machine.Limit -> Alcotest.fail "system did not halt");
  t

(* ------------------------------------------------------------------ *)

let test_boot_hello () =
  let t = run_system [ hello_prog () ] in
  check_str "console" "hello, world\n" (Builder.console t)

let test_file_read () =
  let t = run_system ~files:[ test_file ] [ checksum_prog ~file:"input" () ] in
  check_str "console" (string_of_int expected_checksum ^ "\n") (Builder.console t)

let test_two_processes () =
  let t =
    run_system
      [
        pingpong_prog ~name:"ping" ~tag:"a" ~rounds:5 ();
        pingpong_prog ~name:"pong" ~tag:"b" ~rounds:5 ();
      ]
  in
  let out = Builder.console t in
  check_int "total rounds" 10 (String.length out);
  (* yield alternates the two processes *)
  check "interleaved" true
    (String.length out >= 4 && out.[0] <> out.[1])

let test_utlb_misses_occur () =
  let t = run_system ~files:[ test_file ] [ checksum_prog ~file:"input" () ] in
  check "utlb misses" true (t.Builder.machine.Systrace_machine.Machine.c.Systrace_machine.Machine.utlb_misses > 0)

(* ------------------------------------------------------------------ *)
(* Traced runs                                                         *)

(* Run traced; parse everything through the trace parser; return
   (system, parser stats). *)
let run_traced ?(cfg = Builder.default_config) ?(files = []) ?(live = []) programs =
  let cfg = { cfg with Builder.traced = true } in
  let t = Builder.build ~cfg ~programs ~files () in
  let kernel_bbs = Option.get t.Builder.kernel_bbs in
  let p = Parser.create ~kernel_bbs () in
  List.iter
    (fun (pi : Builder.proc_info) ->
      Parser.register_pid p ~pid:pi.pid (Option.get pi.bbs))
    t.Builder.procs;
  t.Builder.trace_sink <- Some (fun words len -> Parser.feed p words ~len);
  (match Builder.run t ~max_insns:600_000_000 with
  | Systrace_machine.Machine.Halt -> ()
  | Systrace_machine.Machine.Limit -> Alcotest.fail "traced system did not halt");
  Builder.drain_final t;
  Parser.finish ~live p;
  (t, Parser.stats p)

let test_traced_hello () =
  let t, stats = run_traced [ hello_prog () ] in
  check_str "console" "hello, world\n" (Builder.console t);
  check "user insts traced" true (stats.Parser.user_insts > 100);
  check "kernel insts traced" true (stats.Parser.kernel_insts > 100);
  check "drains happened" true (stats.Parser.drains > 0)

let test_traced_matches_untraced () =
  (* The parsed user instruction count of the traced run should closely
     match the machine's ground-truth user instruction count from the
     untraced run (same deterministic program).  They are not exactly
     equal: the untraced count includes the (untraced) crt0 and the
     blocked-syscall retries can differ with timing. *)
  let tu = run_system ~files:[ test_file ] [ checksum_prog ~file:"input" () ] in
  let tt, stats = run_traced ~files:[ test_file ] [ checksum_prog ~file:"input" () ] in
  check_str "same console output"
    (Builder.console tu) (Builder.console tt);
  let measured =
    tu.Builder.machine.Systrace_machine.Machine.c.Systrace_machine.Machine.user_instructions
  in
  let parsed = stats.Parser.user_insts in
  let err =
    abs_float (float_of_int parsed -. float_of_int measured)
    /. float_of_int measured
  in
  if err > 0.02 then
    Alcotest.failf "user instruction counts diverge: measured %d parsed %d"
      measured parsed

let test_traced_two_processes () =
  let t, stats =
    run_traced
      [
        pingpong_prog ~name:"ping" ~tag:"a" ~rounds:5 ();
        pingpong_prog ~name:"pong" ~tag:"b" ~rounds:5 ();
      ]
  in
  check_int "console length" 10 (String.length (Builder.console t));
  check "pid switches in trace" true (stats.Parser.pid_switches >= 2)

let test_analysis_mode_transitions () =
  (* A small in-kernel buffer forces generation/analysis mode switches. *)
  let cfg =
    {
      Builder.default_config with
      Builder.trace_buf_bytes = 64 * 1024;
      trace_slack_bytes = 24 * 1024;
      analysis_chunk = 2048;
    }
  in
  let big_file =
    {
      Builder.fname = "input";
      data = String.init 8000 (fun i -> Char.chr (i land 0xFF));
      writable_bytes = 0;
    }
  in
  let t, stats =
    run_traced ~cfg ~files:[ big_file ] [ checksum_prog ~file:"input" () ]
  in
  check "multiple analyze calls" true (t.Builder.analyze_calls > 1);
  check "mode transitions recorded" true (stats.Parser.mode_transitions >= 2);
  let big_sum =
    let s = String.init 8000 (fun i -> Char.chr (i land 0xFF)) in
    String.fold_left (fun acc c -> acc + Char.code c) 0 s
  in
  check_str "output still right" (string_of_int big_sum ^ "\n")
    (Builder.console t)

(* ------------------------------------------------------------------ *)
(* Mach personality                                                     *)

let mach_cfg = { Builder.default_config with Builder.personality = Kcfg.Mach }

let mach_system ~files programs =
  let server =
    {
      Builder.pname = "uxserver";
      modules =
        [ Ux_server.make ~file_plan:(Builder.file_plan files) (); Userlib.make () ];
      heap_pages = 4;
      is_server = true;
      notrace = false;
    }
  in
  server :: programs

let test_mach_file_read () =
  let programs = mach_system ~files:[ test_file ] [ checksum_prog ~file:"input" () ] in
  let t = run_system ~cfg:mach_cfg ~files:[ test_file ] programs in
  check_str "console" (string_of_int expected_checksum ^ "\n") (Builder.console t)

let test_mach_traced () =
  let programs = mach_system ~files:[ test_file ] [ checksum_prog ~file:"input" () ] in
  let t, stats = run_traced ~cfg:mach_cfg ~files:[ test_file ] ~live:[ 0 ] programs in
  check_str "console" (string_of_int expected_checksum ^ "\n") (Builder.console t);
  (* The trace-page fault path must have marked both processes traced. *)
  let pcb0_traced = Builder.peek_off t "pcbs" Kcfg.pcb_traced in
  let pcb1_traced = Builder.peek_off t "pcbs" (Kcfg.pcb_size + Kcfg.pcb_traced) in
  check_int "server traced by reference" 1 pcb0_traced;
  check_int "client traced by reference" 1 pcb1_traced;
  (* Mach preloads TLB entries at every switch. *)
  check "tlb_map_random calls" true (Builder.tlbdropins t > 0);
  check "user trace from both sides" true (stats.Parser.user_insts > 1000)

let test_mach_amplification () =
  (* The microkernel structure multiplies kernel crossings: every file
     operation becomes recv/reply/copy/raw-IO syscalls in the UX server.
     (Table 3's TLB-miss amplification shows up at realistic workload
     scale in the validation harness; at this micro scale we check the
     structural cause: syscall amplification and server-side user work.) *)
  let programs = mach_system ~files:[ test_file ] [ checksum_prog ~file:"input" () ] in
  let tm = run_system ~cfg:mach_cfg ~files:[ test_file ] programs in
  let tu = run_system ~files:[ test_file ] [ checksum_prog ~file:"input" () ] in
  let syscalls t =
    t.Builder.machine.Systrace_machine.Machine.c.Systrace_machine.Machine.syscalls
  in
  let user t =
    t.Builder.machine.Systrace_machine.Machine.c.Systrace_machine.Machine.user_instructions
  in
  check "mach makes more syscalls" true (syscalls tm > 2 * syscalls tu);
  check "mach does more user work" true (user tm > user tu)

let tests =
  [
    Alcotest.test_case "boot + hello" `Quick test_boot_hello;
    Alcotest.test_case "file read + checksum" `Quick test_file_read;
    Alcotest.test_case "two processes yield" `Quick test_two_processes;
    Alcotest.test_case "utlb misses occur" `Quick test_utlb_misses_occur;
    Alcotest.test_case "traced hello" `Quick test_traced_hello;
    Alcotest.test_case "traced matches untraced" `Quick test_traced_matches_untraced;
    Alcotest.test_case "traced two processes" `Quick test_traced_two_processes;
    Alcotest.test_case "analysis mode transitions" `Quick test_analysis_mode_transitions;
    Alcotest.test_case "mach: file read via ux server" `Quick test_mach_file_read;
    Alcotest.test_case "mach: traced run" `Quick test_mach_traced;
    Alcotest.test_case "mach: microkernel amplification" `Quick
      test_mach_amplification;
  ]

let test_selective_tracing () =
  (* §3.1: "pick and choose the processes to be traced" — one traced, one
     notrace process on a traced system.  Both run correctly; the parsed
     user trace contains only the traced process. *)
  let traced_p = pingpong_prog ~name:"ping" ~tag:"a" ~rounds:4 () in
  let untraced_p =
    { (pingpong_prog ~name:"pong" ~tag:"b" ~rounds:4 ()) with
      Builder.notrace = true }
  in
  let cfg = { Builder.default_config with Builder.traced = true } in
  let t = Builder.build ~cfg ~programs:[ traced_p; untraced_p ] ~files:[] () in
  let p = Parser.create ~kernel_bbs:(Option.get t.Builder.kernel_bbs) () in
  List.iter
    (fun (pi : Builder.proc_info) ->
      match pi.bbs with
      | Some bbs -> Parser.register_pid p ~pid:pi.pid bbs
      | None -> ())
    t.Builder.procs;
  let user_insts_by_pid = Hashtbl.create 4 in
  Parser.set_handlers p
    {
      Parser.on_inst =
        (fun _ pid kernel ->
          if not kernel then
            Hashtbl.replace user_insts_by_pid pid
              (1 + Option.value ~default:0 (Hashtbl.find_opt user_insts_by_pid pid)));
      on_data = (fun _ _ _ _ _ -> ());
    };
  t.Builder.trace_sink <- Some (fun words len -> Parser.feed p words ~len);
  (match Builder.run t ~max_insns:200_000_000 with
  | Systrace_machine.Machine.Halt -> ()
  | Systrace_machine.Machine.Limit -> Alcotest.fail "no halt");
  Builder.drain_final t;
  Parser.finish p;
  check_int "both produced output" 8 (String.length (Builder.console t));
  let insts pid = Option.value ~default:0 (Hashtbl.find_opt user_insts_by_pid pid) in
  check "traced process in trace" true (insts 0 > 100);
  check_int "untraced process absent from trace" 0 (insts 1)

let tests = tests @ [
  Alcotest.test_case "selective tracing (3.1)" `Quick test_selective_tracing;
]

let test_bad_syscall_returns_error () =
  (* An out-of-range syscall number returns -1 without harming the
     system. *)
  let a = Asm.create "bad" in
  let open Asm in
  func a "main" ~frame:0 ~saves:[] (fun () ->
      li a Reg.v0 99;
      syscall a;
      (* v0 = 0xFFFFFFFF: print 1 if so *)
      addiu a Reg.t0 Reg.v0 1;
      beqz a Reg.t0 "$ok";
      nop a;
      la a Reg.a0 "$no";
      jal a "puts";
      j_ a "$out";
      label a "$ok";
      la a Reg.a0 "$yes";
      jal a "puts";
      label a "$out";
      li a Reg.v0 0);
  dlabel a "$yes";
  asciiz a "ok";
  dlabel a "$no";
  asciiz a "bad";
  let prog = Builder.program "bad" [ to_obj a; Userlib.make () ] in
  let t = run_system [ prog ] in
  check_str "error returned" "ok" (Builder.console t)

let test_wild_pointer_panics () =
  (* Under Ultrix a store through a wild pointer has no handler: the
     kernel panics (reported as Builder.Panic, not a hang). *)
  let a = Asm.create "wild" in
  let open Asm in
  func a "main" ~frame:0 ~saves:[] (fun () ->
      li a Reg.t0 0x7000_0000;        (* unmapped user page *)
      sw a Reg.zero 0 Reg.t0;
      li a Reg.v0 0);
  let prog = Builder.program "wild" [ to_obj a; Userlib.make () ] in
  let t = Builder.build ~cfg:Builder.default_config ~programs:[ prog ] ~files:[] () in
  check "panics" true
    (try
       ignore (Builder.run t ~max_insns:10_000_000);
       false
     with Builder.Panic _ -> true)

let tests = tests @ [
  Alcotest.test_case "bad syscall returns error" `Quick
    test_bad_syscall_returns_error;
  Alcotest.test_case "wild pointer panics" `Quick test_wild_pointer_panics;
]

let test_file_writes_reach_disk () =
  (* Ultrix's synchronous write-through: output written by sed must be on
     the disk image when the system halts, with the substitution applied. *)
  let e = Systrace_workloads.Suite.find "sed" in
  let t =
    Builder.build ~cfg:Builder.default_config
      ~programs:[ e.Systrace_workloads.Suite.program () ]
      ~files:e.Systrace_workloads.Suite.files ()
  in
  (match Builder.run t ~max_insns:200_000_000 with
  | Systrace_machine.Machine.Halt -> ()
  | Systrace_machine.Machine.Limit -> Alcotest.fail "no halt");
  let plan = Builder.file_plan e.Systrace_workloads.Suite.files in
  let _, start, _ = List.find (fun (n, _, _) -> n = "sed.out") plan in
  let out =
    Systrace_machine.Disk.read_image t.Builder.machine.Systrace_machine.Machine.disk
      ~block:start ~off:0 ~len:64
  in
  (* the input's "ab" pairs became "XY" *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "substitution on disk" true (contains out "XY");
  check "no ab left in window" true (not (contains out "ab"))

let tests = tests @ [
  Alcotest.test_case "file writes reach disk" `Quick test_file_writes_reach_disk;
]

let test_concurrent_workload_mix () =
  (* Four different programs timesharing one traced system: the full
     multi-process promise of Figure 1.  Every program must produce its
     solo output, and the parser must account user work to all four. *)
  let names = [ "sed"; "egrep"; "yacc"; "lisp" ] in
  let entries = List.map Systrace_workloads.Suite.find names in
  let files = List.concat_map (fun e -> e.Systrace_workloads.Suite.files) entries in
  let programs = List.map (fun e -> e.Systrace_workloads.Suite.program ()) entries in
  (* solo outputs, for comparison *)
  let solo =
    List.map
      (fun (e : Systrace_workloads.Suite.entry) ->
        let t =
          Builder.build ~cfg:Builder.default_config
            ~programs:[ e.Systrace_workloads.Suite.program () ]
            ~files:e.Systrace_workloads.Suite.files ()
        in
        (match Builder.run t ~max_insns:500_000_000 with
        | Systrace_machine.Machine.Halt -> ()
        | Systrace_machine.Machine.Limit -> Alcotest.fail "solo: no halt");
        Builder.console t)
      entries
  in
  let cfg = { Builder.default_config with Builder.traced = true } in
  let t = Builder.build ~cfg ~programs ~files () in
  let p = Parser.create ~kernel_bbs:(Option.get t.Builder.kernel_bbs) () in
  List.iter
    (fun (pi : Builder.proc_info) ->
      Parser.register_pid p ~pid:pi.pid (Option.get pi.bbs))
    t.Builder.procs;
  let per_pid = Hashtbl.create 8 in
  Parser.set_handlers p
    {
      Parser.on_inst =
        (fun _ pid kernel ->
          if not kernel then
            Hashtbl.replace per_pid pid
              (1 + Option.value ~default:0 (Hashtbl.find_opt per_pid pid)));
      on_data = (fun _ _ _ _ _ -> ());
    };
  t.Builder.trace_sink <- Some (fun words len -> Parser.feed p words ~len);
  (match Builder.run t ~max_insns:1_000_000_000 with
  | Systrace_machine.Machine.Halt -> ()
  | Systrace_machine.Machine.Limit -> Alcotest.fail "mix: no halt");
  Builder.drain_final t;
  Parser.finish p;
  (* every solo output appears in the interleaved console *)
  let out = Builder.console t in
  List.iteri
    (fun k s ->
      let s = String.trim s in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        nn = 0 || go 0
      in
      check (List.nth names k ^ " output present") true (contains out s))
    solo;
  (* all four processes contributed traced user work *)
  List.iteri
    (fun pid name ->
      check (name ^ " traced") true
        (Option.value ~default:0 (Hashtbl.find_opt per_pid pid) > 1000))
    names;
  check "many context switches" true
    ((Parser.stats p).Parser.pid_switches > 10)

let tests = tests @ [
  Alcotest.test_case "concurrent workload mix" `Slow test_concurrent_workload_mix;
]

let test_drain_ablation () =
  (* flush-only-when-full must preserve the computation and every user
     trace word (exit drains the residual buffer); only the interleaving differs,
     quantified by the kernel's overtaken-words counter. *)
  let e = Systrace_workloads.Suite.find "sed" in
  let run drain_on_entry =
    let cfg =
      { Builder.default_config with Builder.traced = true; drain_on_entry }
    in
    let t =
      Builder.build ~cfg
        ~programs:[ e.Systrace_workloads.Suite.program () ]
        ~files:e.Systrace_workloads.Suite.files ()
    in
    let p =
      Parser.create ~kernel_bbs:(Option.get t.Builder.kernel_bbs) ()
    in
    List.iter
      (fun (pi : Builder.proc_info) ->
        Parser.register_pid p ~pid:pi.pid (Option.get pi.bbs))
      t.Builder.procs;
    t.Builder.trace_sink <- Some (fun ws len -> Parser.feed p ws ~len);
    (match Builder.run t ~max_insns:2_000_000_000 with
    | Systrace_machine.Machine.Halt -> ()
    | Systrace_machine.Machine.Limit -> Alcotest.fail "no halt");
    Builder.drain_final t;
    Parser.finish p;
    ( String.trim (Builder.console t),
      Parser.stats p,
      Builder.peek t "kstat_displaced" )
  in
  let con1, s1, d1 = run true in
  let con2, s2, d2 = run false in
  Alcotest.(check string) "console identical" con1 con2;
  Alcotest.(check int) "baseline has no overtaken words" 0 d1;
  check "ablation overtakes many words" true (d2 > 1000);
  let user (s : Parser.stats) = s.Parser.insts - s.Parser.kernel_insts in
  Alcotest.(check int) "no user reference lost" (user s1) (user s2);
  check "far fewer drains" true (s2.Parser.drains * 3 < s1.Parser.drains)

let tests = tests @ [
  Alcotest.test_case "drain-on-entry ablation" `Slow test_drain_ablation;
]
