(* Tests for the ISA layer: encoding round-trips, the assembler, basic-block
   analysis, and the linker. *)

open Systrace_isa

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Instruction generator for property tests                            *)

let gen_reg = QCheck.Gen.int_range 0 31
let gen_freg = QCheck.Gen.int_range 0 15
let gen_simm16 = QCheck.Gen.int_range (-32768) 32767
let gen_uimm16 = QCheck.Gen.int_range 0 65535

(* Branch targets must be word-aligned and within signed-16 word offset of
   pc+4; jumps must stay in the same 256MB region.  We generate for a fixed
   pc. *)
let test_pc = 0x0040_1000

let gen_btarget =
  QCheck.Gen.map
    (fun off -> Insn.Abs (test_pc + 4 + (off * 4)))
    (QCheck.Gen.int_range (-30000) 30000)

let gen_jtarget =
  QCheck.Gen.map
    (fun w -> Insn.Abs ((test_pc land 0xF0000000) lor (w * 4)))
    (QCheck.Gen.int_range 0 0x3FFFFF)

let gen_cp0 =
  QCheck.Gen.oneofl
    Insn.[ C0_index; C0_random; C0_entrylo; C0_context; C0_badvaddr;
           C0_count; C0_entryhi; C0_status; C0_cause; C0_epc; C0_prid ]

let gen_insn : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Insn in
  let alu =
    oneofl [ ADD; ADDU; SUB; SUBU; AND; OR; XOR; NOR; SLT; SLTU; SLLV;
             SRLV; SRAV; MUL; MULH; DIV; REM ]
  in
  let alui_s = oneofl [ ADDI; ADDIU; SLTI; SLTIU ] in
  let alui_u = oneofl [ ANDI; ORI; XORI ] in
  let shift = oneofl [ SLL; SRL; SRA ] in
  let lwidth = oneofl [ B; BU; H; HU; W ] in
  (* Canonical store widths only: SB/SH/SW (BU/HU aliase to B/H). *)
  let swidth = oneofl [ B; H; W ] in
  let fop =
    oneofl [ FADD; FSUB; FMUL; FDIV; FABS; FNEG; FMOV; CVTDW; TRUNCWD ]
  in
  let fcond = oneofl [ FEQ; FLT; FLE ] in
  oneof
    [
      map2 (fun op (a, b, c) -> Alu (op, a, b, c)) alu (tup3 gen_reg gen_reg gen_reg);
      map2 (fun op (a, b, c) -> Alui (op, a, b, Imm c)) alui_s (tup3 gen_reg gen_reg gen_simm16);
      map2 (fun op (a, b, c) -> Alui (op, a, b, Imm c)) alui_u (tup3 gen_reg gen_reg gen_uimm16);
      map2 (fun op (a, b, c) -> Shift (op, a, b, c)) shift (tup3 gen_reg gen_reg (int_range 0 31));
      map2 (fun a b -> Lui (a, Imm b)) gen_reg gen_uimm16;
      map2 (fun w (a, b, c) -> Load (w, a, b, Imm c)) lwidth (tup3 gen_reg gen_reg gen_simm16);
      map2 (fun w (a, b, c) -> Store (w, a, b, Imm c)) swidth (tup3 gen_reg gen_reg gen_simm16);
      map (fun (a, b, c) -> Fload (a, b, Imm c)) (tup3 gen_freg gen_reg gen_simm16);
      map (fun (a, b, c) -> Fstore (a, b, Imm c)) (tup3 gen_freg gen_reg gen_simm16);
      map (fun (a, b, t) -> Beq (a, b, t)) (tup3 gen_reg gen_reg gen_btarget);
      map (fun (a, b, t) -> Bne (a, b, t)) (tup3 gen_reg gen_reg gen_btarget);
      map2 (fun a t -> Blez (a, t)) gen_reg gen_btarget;
      map2 (fun a t -> Bgtz (a, t)) gen_reg gen_btarget;
      map2 (fun a t -> Bltz (a, t)) gen_reg gen_btarget;
      map2 (fun a t -> Bgez (a, t)) gen_reg gen_btarget;
      map (fun t -> J t) gen_jtarget;
      map (fun t -> Jal t) gen_jtarget;
      map (fun a -> Jr a) gen_reg;
      map2 (fun a b -> Jalr (a, b)) gen_reg gen_reg;
      return Syscall;
      map (fun n -> Break n) (int_range 0 0xFFFFF);
      map (fun n -> Hcall n) (int_range 0 0xFFFFF);
      map2 (fun r c -> Mfc0 (r, c)) gen_reg gen_cp0;
      map2 (fun r c -> Mtc0 (r, c)) gen_reg gen_cp0;
      oneofl [ Tlbr; Tlbwi; Tlbwr; Tlbp; Rfe ];
      map2 (fun r f -> Mfc1 (r, f)) gen_reg gen_freg;
      map2 (fun r f -> Mtc1 (r, f)) gen_reg gen_freg;
      map2 (fun op (a, b, c) -> Fop (op, a, b, c)) fop (tup3 gen_freg gen_freg gen_freg);
      map2 (fun c (a, b) -> Fcmp (c, a, b)) fcond (tup2 gen_freg gen_freg);
      map (fun t -> Bc1t t) gen_btarget;
      map (fun t -> Bc1f t) gen_btarget;
      map (fun (op, b, o) -> Cache (op, b, Imm o)) (tup3 (int_range 0 3) gen_reg gen_simm16);
    ]

let arb_insn = QCheck.make ~print:Insn.to_string gen_insn

(* FMOV/FABS/FNEG/CVTDW/TRUNCWD ignore ft; unary ops must normalize ft to
   match what decode reconstructs.  The generator above can give nonzero ft
   for unary ops, so normalize both sides before comparing. *)
let normalize (i : Insn.t) : Insn.t =
  match i with
  | Fop ((FABS | FNEG | FMOV | CVTDW | TRUNCWD) as op, fd, fs, _) ->
    Fop (op, fd, fs, 0)
  | i -> i

let prop_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"encode/decode round-trip" arb_insn
    (fun insn ->
      let insn = normalize insn in
      let w = Encode.encode ~pc:test_pc insn in
      let insn' = Encode.decode ~pc:test_pc w in
      if insn' <> insn then
        QCheck.Test.fail_reportf "0x%08x: %s <> %s" w (Insn.to_string insn)
          (Insn.to_string insn')
      else true)

let prop_encode_32bit =
  QCheck.Test.make ~count:2000 ~name:"encoded words fit in 32 bits" arb_insn
    (fun insn ->
      let w = Encode.encode ~pc:test_pc (normalize insn) in
      w >= 0 && w <= 0xFFFFFFFF)

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)

let test_base_offset () =
  let insn = Insn.Load (W, Reg.t0, Reg.sp, Imm (-44)) in
  let w = Encode.encode ~pc:0 insn in
  let base, off = Encode.base_offset_of_word w in
  check_int "base" Reg.sp base;
  check_int "offset" (-44) off

let test_trace_count_nop () =
  (* The special epoxie no-op encodes its word count in the immediate field
     of an addiu to $zero. *)
  let w = Encode.encode ~pc:0 (Insn.trace_count_nop 7) in
  let _, n = Encode.base_offset_of_word w in
  check_int "count" 7 n;
  match Encode.decode ~pc:0 w with
  | Insn.Alui (ADDIU, 0, 0, Imm 7) -> ()
  | i -> Alcotest.failf "unexpected decode: %s" (Insn.to_string i)

let test_branch_encoding () =
  let pc = 0x8000_0100 in
  let insn = Insn.Beq (Reg.t0, Reg.t1, Abs (pc + 4 + 40)) in
  let w = Encode.encode ~pc insn in
  (match Encode.decode ~pc w with
  | Insn.Beq (8, 9, Abs a) -> check_int "target" (pc + 44) a
  | i -> Alcotest.failf "unexpected decode: %s" (Insn.to_string i));
  (* Backward branch *)
  let insn = Insn.Bne (Reg.t0, Reg.zero, Abs (pc + 4 - 400)) in
  let w = Encode.encode ~pc insn in
  match Encode.decode ~pc w with
  | Insn.Bne (8, 0, Abs a) -> check_int "target" (pc + 4 - 400) a
  | i -> Alcotest.failf "unexpected decode: %s" (Insn.to_string i)

let test_branch_out_of_range () =
  let pc = 0x0040_0000 in
  let far = pc + 4 + (40000 * 4) in
  check "raises" true
    (try
       ignore (Encode.encode ~pc (Insn.Beq (1, 2, Abs far)));
       false
     with Encode.Error _ -> true)

let test_jump_region () =
  let pc = 0x0040_0000 in
  check "raises on cross-region jump" true
    (try
       ignore (Encode.encode ~pc (Insn.J (Abs 0x8000_0000)));
       false
     with Encode.Error _ -> true)

let test_li_expansion () =
  let a = Asm.create "t" in
  Asm.li a Reg.t0 5;
  Asm.li a Reg.t1 0x12340000;
  Asm.li a Reg.t2 0x12345678;
  Asm.li a Reg.t3 (-5);
  let obj = Asm.to_obj a in
  check_int "instruction count" 5 (Objfile.insn_count obj)

let simple_module () =
  let a = Asm.create "m" in
  let open Asm in
  global a "_start";
  label a "_start";
  li a Reg.t0 10;
  label a "loop";
  addiu a Reg.t0 Reg.t0 (-1);
  bnez a Reg.t0 "loop";
  la a Reg.t1 "message";
  lw a Reg.t2 0 Reg.t1;
  sw a Reg.t2 4 Reg.t1;
  jr_ a Reg.ra;
  dlabel a "message";
  word a 0xDEADBEEF;
  word a 0;
  to_obj a

let test_link_simple () =
  let exe =
    Link.link ~name:"t" ~text_base:0x0040_0000 ~data_base:0x1000_0000
      ~entry:"_start" [ simple_module () ]
  in
  check_int "entry" 0x0040_0000 exe.Exe.entry;
  (* li 10 = 1 insn; loop: addiu, bnez(+nop), la(2), lw, sw, jr(+nop) *)
  check_int "text words" 10 (Array.length exe.Exe.text);
  check_int "message addr" 0x1000_0000 (Exe.symbol exe "m::message");
  (* Data image starts with the 0xDEADBEEF word. *)
  check_int "data word"
    0xDEADBEEF
    (Int32.to_int (Bytes.get_int32_le exe.Exe.data 0) land 0xFFFFFFFF);
  (* la resolved: lui should carry high half of 0x10000000. *)
  (match exe.Exe.text_insns.(4) with
  | Insn.Lui (_, Imm v) -> check_int "lui hi" 0x1000 v
  | i -> Alcotest.failf "expected lui, got %s" (Insn.to_string i));
  (* Encoded text round-trips through decode. *)
  Array.iteri
    (fun idx w ->
      let pc = exe.Exe.text_base + (idx * 4) in
      let d = Encode.decode ~pc w in
      check_str "disasm matches"
        (Insn.to_string exe.Exe.text_insns.(idx))
        (Insn.to_string d))
    exe.Exe.text

let test_link_undefined_symbol () =
  let a = Asm.create "m" in
  Asm.global a "_start";
  Asm.label a "_start";
  Asm.jal a "nowhere";
  check "raises" true
    (try
       ignore
         (Link.link ~name:"t" ~text_base:0x0040_0000 ~data_base:0x1000_0000
            ~entry:"_start" [ Asm.to_obj a ]);
       false
     with Link.Error _ -> true)

let test_link_cross_module () =
  let m1 = Asm.create "m1" in
  Asm.global m1 "_start";
  Asm.label m1 "_start";
  Asm.jal m1 "helper";
  Asm.ret m1;
  let m2 = Asm.create "m2" in
  Asm.leaf m2 "helper" (fun () -> Asm.li m2 Reg.v0 42);
  let exe =
    Link.link ~name:"t" ~text_base:0x0040_0000 ~data_base:0x1000_0000
      ~entry:"_start" [ Asm.to_obj m1; Asm.to_obj m2 ]
  in
  let helper_addr = Exe.symbol exe "helper" in
  match exe.Exe.text_insns.(0) with
  | Insn.Jal (Abs a) -> check_int "jal target" helper_addr a
  | i -> Alcotest.failf "expected jal, got %s" (Insn.to_string i)

let test_duplicate_global () =
  let mk name =
    let a = Asm.create name in
    Asm.leaf a "dup" (fun () -> Asm.nop a);
    Asm.to_obj a
  in
  check "raises" true
    (try
       ignore
         (Link.link ~name:"t" ~text_base:0 ~data_base:0x1000 ~entry:"dup"
            [ mk "a"; mk "b" ]);
       false
     with Link.Error _ -> true)

let test_validate_delay_slot () =
  let a = Asm.create "m" in
  Asm.i a (Insn.J (Sym "x"));
  Asm.i a (Insn.J (Sym "x"));
  Asm.label a "x";
  Asm.nop a;
  check "raises" true
    (try
       ignore (Asm.to_obj a);
       false
     with Failure _ -> true)

let test_validate_label_in_slot () =
  let a = Asm.create "m" in
  Asm.i a (Insn.J (Sym "x"));
  Asm.label a "x";
  Asm.nop a;
  check "raises" true
    (try
       ignore (Asm.to_obj a);
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Basic-block analysis                                                *)

let test_bb_simple () =
  let a = Asm.create "m" in
  let open Asm in
  label a "f";
  lw a Reg.t0 0 Reg.a0;      (* bb0: lw, addiu, bne, sw(delay) *)
  addiu a Reg.t0 Reg.t0 1;
  i a (Insn.Bne (Reg.t0, Reg.zero, Sym "f"));
  sw a Reg.t0 0 Reg.a0;
  addiu a Reg.v0 Reg.zero 0; (* bb1: addiu, jr, nop(delay) *)
  i a (Insn.Jr Reg.ra);
  nop a;
  let obj = to_obj a in
  let blocks = Bb.analyze obj.Objfile.text in
  check_int "block count" 2 (List.length blocks);
  match blocks with
  | [ b0; b1 ] ->
    check_int "b0 start" 0 b0.Bb.start;
    check_int "b0 len" 4 b0.Bb.len;
    check_int "b0 mems" 2 (List.length b0.Bb.mems);
    check_int "b1 start" 4 b1.Bb.start;
    check_int "b1 len" 3 b1.Bb.len;
    check_int "b1 mems" 0 (List.length b1.Bb.mems);
    (* Memory positions within the block *)
    (match b0.Bb.mems with
    | [ m1; m2 ] ->
      check_int "m1 pos" 0 m1.Bb.pos;
      check "m1 is load" true m1.Bb.is_load;
      check_int "m2 pos" 3 m2.Bb.pos;
      check "m2 is store" false m2.Bb.is_load
    | _ -> Alcotest.fail "expected 2 mem refs")
  | _ -> Alcotest.fail "expected 2 blocks"

let test_bb_label_splits () =
  let a = Asm.create "m" in
  let open Asm in
  label a "f";
  addiu a Reg.t0 Reg.zero 1;
  addiu a Reg.t1 Reg.zero 2;
  label a "mid";
  addiu a Reg.t2 Reg.zero 3;
  ret a;
  let blocks = Bb.analyze (to_obj a).Objfile.text in
  check_int "block count" 2 (List.length blocks);
  match blocks with
  | [ b0; b1 ] ->
    check_int "b0 len" 2 b0.Bb.len;
    check_int "b1 len" 3 b1.Bb.len
  | _ -> Alcotest.fail "expected 2 blocks"

let test_bb_trace_words () =
  let a = Asm.create "m" in
  let open Asm in
  label a "f";
  lw a Reg.t0 0 Reg.a0;
  lw a Reg.t1 4 Reg.a0;
  sw a Reg.t1 8 Reg.a0;
  ret a;
  match Bb.analyze (to_obj a).Objfile.text with
  | [ b ] -> check_int "trace words" 4 (Bb.trace_words b)
  | _ -> Alcotest.fail "expected 1 block"

let test_bb_coverage () =
  (* Every instruction belongs to exactly one block. *)
  let obj = simple_module () in
  let blocks = Bb.analyze obj.Objfile.text in
  let n = Objfile.insn_count obj in
  let covered = Array.make n 0 in
  List.iter
    (fun b ->
      for k = b.Bb.start to b.Bb.start + b.Bb.len - 1 do
        covered.(k) <- covered.(k) + 1
      done)
    blocks;
  Array.iteri (fun idx c -> check_int (Printf.sprintf "insn %d" idx) 1 c) covered

let test_func_scaffold () =
  let a = Asm.create "m" in
  Asm.func a "myfunc" ~frame:16 ~saves:[ Reg.s0; Reg.s1 ] (fun () ->
      Asm.li a Reg.s0 1;
      Asm.li a Reg.s1 2);
  let exe =
    Link.link ~name:"t" ~text_base:0x0040_0000 ~data_base:0x1000_0000
      ~entry:"myfunc" [ Asm.to_obj a ]
  in
  (* Prologue must move sp down by the aligned frame size: 16 + 3*4 = 28,
     aligned to 32. *)
  match exe.Exe.text_insns.(0) with
  | Insn.Alui (ADDIU, 29, 29, Imm v) -> check_int "frame" (-32) v
  | i -> Alcotest.failf "expected addiu sp, got %s" (Insn.to_string i)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_encode_32bit;
    Alcotest.test_case "memtrace base/offset extraction" `Quick test_base_offset;
    Alcotest.test_case "trace-count no-op" `Quick test_trace_count_nop;
    Alcotest.test_case "branch encoding" `Quick test_branch_encoding;
    Alcotest.test_case "branch out of range" `Quick test_branch_out_of_range;
    Alcotest.test_case "jump region check" `Quick test_jump_region;
    Alcotest.test_case "li expansion" `Quick test_li_expansion;
    Alcotest.test_case "link simple module" `Quick test_link_simple;
    Alcotest.test_case "link undefined symbol" `Quick test_link_undefined_symbol;
    Alcotest.test_case "link cross-module call" `Quick test_link_cross_module;
    Alcotest.test_case "duplicate global rejected" `Quick test_duplicate_global;
    Alcotest.test_case "control in delay slot rejected" `Quick test_validate_delay_slot;
    Alcotest.test_case "label in delay slot rejected" `Quick test_validate_label_in_slot;
    Alcotest.test_case "bb: simple split" `Quick test_bb_simple;
    Alcotest.test_case "bb: label splits block" `Quick test_bb_label_splits;
    Alcotest.test_case "bb: trace words" `Quick test_bb_trace_words;
    Alcotest.test_case "bb: full coverage" `Quick test_bb_coverage;
    Alcotest.test_case "function scaffolding" `Quick test_func_scaffold;
  ]

(* ------------------------------------------------------------------ *)
(* More properties: li correctness on the machine, and linker layout
   invariants. *)

let prop_li_loads_value =
  QCheck.Test.make ~count:200 ~name:"li materializes any 32-bit value"
    (QCheck.make
       QCheck.Gen.(
         oneof
           [
             int_range (-32768) 32767;
             map (fun v -> v land 0xFFFFFFFF) (int_bound max_int);
             oneofl [ 0; 1; -1; 0x8000; -32769; 0x7FFFFFFF; 0xFFFFFFFF;
                      0x80000000; 0xDEAD0000; 0xBEEF ];
           ]))
    (fun v ->
      let a = Asm.create "t" in
      Asm.global a "_start";
      Asm.label a "_start";
      Asm.li a Reg.v0 v;
      Asm.hcall a 0;
      let exe =
        Link.link ~name:"t" ~text_base:0x80001000 ~data_base:0x80008000
          ~entry:"_start" [ Asm.to_obj a ]
      in
      let m = Systrace_machine.Machine.create () in
      Systrace_machine.Machine.load_exe_phys m exe ~text_pa:0x1000
        ~data_pa:0x8000;
      m.Systrace_machine.Machine.pc <- exe.Exe.entry;
      m.Systrace_machine.Machine.npc <- exe.Exe.entry + 4;
      m.Systrace_machine.Machine.hcall_handler <-
        Some (fun m _ -> Systrace_machine.Machine.halt m);
      ignore (Systrace_machine.Machine.run m ~max_insns:100);
      m.Systrace_machine.Machine.regs.(Reg.v0) = v land 0xFFFFFFFF)

(* Random small modules: text layout is contiguous and every label maps
   inside its module's extent; data labels are aligned as promised. *)
let gen_tiny_module =
  QCheck.Gen.(
    map
      (fun (nblocks, strs) ->
        let a = Asm.create "m" in
        Asm.global a "_start";
        Asm.label a "_start";
        List.iteri
          (fun k len ->
            Asm.label a (Printf.sprintf "blk%d" k);
            for _ = 1 to len do
              Asm.addiu a Reg.t0 Reg.t0 1
            done)
          nblocks;
        Asm.ret a;
        List.iteri
          (fun k s ->
            Asm.asciiz a s;
            Asm.dlabel a (Printf.sprintf "d%d" k);
            Asm.word a k)
          strs;
        (a, List.length nblocks, List.length strs))
      (pair (list_size (int_range 1 6) (int_range 1 5))
         (list_size (int_range 0 5) (string_size ~gen:(char_range 'a' 'z') (int_range 0 9)))))

let prop_linker_layout =
  QCheck.Test.make ~count:100 ~name:"linker layout invariants"
    (QCheck.make gen_tiny_module)
    (fun (a, nblocks, nstrs) ->
      let exe =
        Link.link ~name:"t" ~text_base:0x00400000 ~data_base:0x10000000
          ~entry:"_start" [ Asm.to_obj a ]
      in
      let text_lo = exe.Exe.text_base in
      let text_hi = Exe.text_limit exe in
      (* every block label is inside the text, word aligned, increasing *)
      let ok_blocks = ref true in
      let prev = ref (text_lo - 4) in
      for k = 0 to nblocks - 1 do
        let v = Exe.symbol exe (Printf.sprintf "m::blk%d" k) in
        if v < text_lo || v >= text_hi || v land 3 <> 0 || v <= !prev then
          ok_blocks := false;
        prev := v
      done;
      (* every data label is 4-aligned (it labels a word after a string of
         arbitrary length: the alignment fix-up must hold) and its word
         content matches *)
      let ok_data = ref true in
      for k = 0 to nstrs - 1 do
        let v = Exe.symbol exe (Printf.sprintf "m::d%d" k) in
        if v land 3 <> 0 then ok_data := false
        else begin
          let off = v - exe.Exe.data_base in
          let w = Int32.to_int (Bytes.get_int32_le exe.Exe.data off) in
          if w <> k then ok_data := false
        end
      done;
      !ok_blocks && !ok_data)

let tests =
  tests
  @ [
      QCheck_alcotest.to_alcotest prop_li_loads_value;
      QCheck_alcotest.to_alcotest prop_linker_layout;
    ]

let test_lo_sign_context_rejected () =
  (* %lo in a sign-extending context (a load offset) must be rejected by
     the linker: with bit 15 set it would silently corrupt the address. *)
  let a = Asm.create "m" in
  Asm.global a "_start";
  Asm.label a "_start";
  Asm.i a (Insn.Load (W, Reg.t0, Reg.t1, Lo "message"));
  Asm.ret a;
  Asm.dlabel a "message";
  Asm.word a 0;
  check "raises" true
    (try
       ignore
         (Link.link ~name:"t" ~text_base:0x400000 ~data_base:0x10000000
            ~entry:"_start" [ Asm.to_obj a ]);
       false
     with Link.Error _ -> true)

let test_duplicate_module_names_rejected () =
  let mk () =
    let a = Asm.create "same" in
    Asm.leaf a (Printf.sprintf "f%d" (Random.bits ()) ) (fun () -> Asm.nop a);
    Asm.to_obj a
  in
  check "raises" true
    (try
       ignore
         (Link.link ~name:"t" ~text_base:0x400000 ~data_base:0x10000000
            ~entry:"f" [ mk (); mk () ]);
       false
     with Link.Error _ -> true)

let test_data_label_alignment () =
  (* A label following an odd-length string binds to the aligned start of
     the next word, not the unaligned position. *)
  let a = Asm.create "m" in
  Asm.leaf a "_start" (fun () -> Asm.nop a);
  Asm.asciiz a "abc";  (* 4 bytes with NUL: still aligned *)
  Asm.asciiz a "x";    (* 2 bytes: misaligns *)
  Asm.dlabel a "w";
  Asm.word a 0xAA55;
  let exe =
    Link.link ~name:"t" ~text_base:0x400000 ~data_base:0x10000000
      ~entry:"_start" [ Asm.to_obj a ]
  in
  let v = Exe.symbol exe "m::w" in
  check_int "aligned" 0 (v land 3);
  check_int "content"
    0xAA55
    (Int32.to_int (Bytes.get_int32_le exe.Exe.data (v - exe.Exe.data_base)))

let tests =
  tests
  @ [
      Alcotest.test_case "%lo rejected in sign context" `Quick
        test_lo_sign_context_rejected;
      Alcotest.test_case "duplicate module names rejected" `Quick
        test_duplicate_module_names_rejected;
      Alcotest.test_case "data label alignment" `Quick test_data_label_alignment;
    ]
