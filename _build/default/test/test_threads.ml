(* Mach threads (paper §3.6): multiple traced threads in one address
   space, each with independent trace pages that the context switch maps
   in when the thread is activated. *)

open Systrace_isa
open Systrace_tracing
open Systrace_kernel
open Systrace_workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* main spawns a thread; both sides loop doing stores and prints, then
   join crudely via yields. *)
let threads_prog () : Builder.program =
  let a = Asm.create "thr" in
  let open Asm in
  (* the thread body: print "b" five times *)
  func a "thread_body" ~frame:8 ~saves:[ Reg.s0 ] (fun () ->
      li a Reg.s0 5;
      label a "$tb_loop";
      la a Reg.a0 "$bmsg";
      jal a "puts";
      jal a "u_yield";
      addiu a Reg.s0 Reg.s0 (-1);
      bgtz a Reg.s0 "$tb_loop";
      (* mark completion for the main thread *)
      la a Reg.t0 "$done";
      li a Reg.t1 1;
      sw a Reg.t1 0 Reg.t0;
      li a Reg.v0 0);
  func a "main" ~frame:8 ~saves:[ Reg.s0 ] (fun () ->
      (* stack for the thread: top of a static buffer *)
      la a Reg.a1 "$tstack";
      addiu a Reg.a1 Reg.a1 (4096 - 16);
      la a Reg.a0 "thread_body";
      jal a "u_thread_create";
      move a Reg.s0 Reg.v0;
      bltz a Reg.s0 "$fail";
      li a Reg.s0 5;
      label a "$m_loop";
      la a Reg.a0 "$amsg";
      jal a "puts";
      jal a "u_yield";
      addiu a Reg.s0 Reg.s0 (-1);
      bgtz a Reg.s0 "$m_loop";
      (* wait for the thread *)
      label a "$wait";
      la a Reg.t0 "$done";
      lw a Reg.t1 0 Reg.t0;
      bnez a Reg.t1 "$joined";
      nop a;
      jal a "u_yield";
      j_ a "$wait";
      label a "$joined";
      li a Reg.v0 0;
      j_ a "main$epilogue";
      label a "$fail";
      li a Reg.v0 1);
  dlabel a "$amsg";
  asciiz a "a";
  dlabel a "$bmsg";
  asciiz a "b";
  dlabel a "$done";
  word a 0;
  align a 8;
  dlabel a "$tstack";
  space a 4096;
  {
    Builder.pname = "thr";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 4;
    is_server = false;
    notrace = false;
  }

let mach_cfg traced =
  {
    Builder.default_config with
    Builder.personality = Kcfg.Mach;
    pagemap = Kcfg.Random;
    traced;
  }

let build_system traced =
  let files = [] in
  let server =
    {
      Builder.pname = "uxserver";
      modules =
        [ Ux_server.make ~file_plan:(Builder.file_plan files) ();
          Userlib.make () ];
      heap_pages = 4;
      is_server = true;
      notrace = false;
    }
  in
  Builder.build ~cfg:(mach_cfg traced) ~programs:[ server; threads_prog () ]
    ~files ()

let count_chars c s =
  String.fold_left (fun n x -> if x = c then n + 1 else n) 0 s

let test_threads_untraced () =
  let t = build_system false in
  (match Builder.run t ~max_insns:200_000_000 with
  | Systrace_machine.Machine.Halt -> ()
  | Systrace_machine.Machine.Limit -> Alcotest.fail "no halt");
  let out = Builder.console t in
  check_int "a count" 5 (count_chars 'a' out);
  check_int "b count" 5 (count_chars 'b' out);
  (* interleaving proves both ran concurrently *)
  check "interleaved" true
    (String.length out >= 2 && String.contains out 'a' && String.contains out 'b')

let test_threads_traced () =
  let t = build_system true in
  let kernel_bbs = Option.get t.Builder.kernel_bbs in
  let p = Parser.create ~kernel_bbs () in
  List.iter
    (fun (pi : Builder.proc_info) ->
      Parser.register_pid p ~pid:pi.pid (Option.get pi.bbs))
    t.Builder.procs;
  (* The spawned thread gets the first free PCB: pid 2 (0 = server,
     1 = main).  It runs the same binary as pid 1. *)
  let thr_prog = Builder.proc t 1 in
  Parser.register_pid p ~pid:2 (Option.get thr_prog.Builder.bbs);
  let per_pid = Hashtbl.create 8 in
  Parser.set_handlers p
    {
      Parser.on_inst =
        (fun _addr pid kernel ->
          if not kernel then
            Hashtbl.replace per_pid pid
              (1 + Option.value ~default:0 (Hashtbl.find_opt per_pid pid)));
      on_data = (fun _ _ _ _ _ -> ());
    };
  t.Builder.trace_sink <- Some (fun words len -> Parser.feed p words ~len);
  (match Builder.run t ~max_insns:600_000_000 with
  | Systrace_machine.Machine.Halt -> ()
  | Systrace_machine.Machine.Limit -> Alcotest.fail "traced: no halt");
  Builder.drain_final t;
  Parser.finish ~live:[ 0; 2 ] p;
  let out = Builder.console t in
  check_int "a count" 5 (count_chars 'a' out);
  check_int "b count" 5 (count_chars 'b' out);
  (* both threads produced traced user work under their own pids *)
  let insts pid = Option.value ~default:0 (Hashtbl.find_opt per_pid pid) in
  check "main thread traced work" true (insts 1 > 100);
  check "spawned thread traced work" true (insts 2 > 100);
  (* the thread got its own trace pages: its PCB records valid PTEs that
     differ from the main thread's *)
  let pte pid k =
    Builder.peek_off t "pcbs"
      ((pid * Kcfg.pcb_size) + Kcfg.pcb_trace_ptes + (4 * k))
  in
  check "main thread traced" true (pte 1 0 land 0x200 <> 0);
  check "spawned thread traced" true (pte 2 0 land 0x200 <> 0);
  check "independent trace pages" true (pte 1 0 <> pte 2 0)

let tests =
  [
    Alcotest.test_case "mach threads: untraced" `Quick test_threads_untraced;
    Alcotest.test_case "mach threads: traced, per-thread pages" `Quick
      test_threads_traced;
  ]
