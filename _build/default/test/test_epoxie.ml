(* End-to-end tests for epoxie instrumentation.

   The strategy mirrors the paper's own validation (§4.3): run a
   deterministic program twice — original and epoxie-instrumented — on the
   machine simulator.  The original run's reference trace (captured by the
   machine itself, our "independently developed CPU simulator") must match,
   address for address, the trace reconstructed by the parsing library from
   the instrumented run's buffer.  Both runs must also compute the same
   results, which exercises register stealing and hazard handling. *)

open Systrace_isa
open Systrace_machine
open Systrace_tracing
open Systrace_epoxie

let check_int = Alcotest.(check int)
let check = Alcotest.(check bool)

let text_va = 0x8000_1000
let data_va = 0x8004_0000
let book_va = 0x8010_0000 (* bookkeeping area, kseg0 *)
let buf_va = 0x8010_1000 (* trace buffer, kseg0 *)
let buf_bytes = 0x80000 (* 512 KB: ample for these tests *)

(* Start-up shim: initialise the stolen registers and shadow slots, call
   main, halt.  Untraced (no_instrument). *)
let shim () =
  let a = Asm.create ~no_instrument:true "shim" in
  let open Asm in
  global a "_start";
  label a "_start";
  li a Abi.xreg_book book_va;
  li a Abi.xreg_cursor buf_va;
  li a Abi.xreg_limit (buf_va + buf_bytes - 256);
  (* Shadow slots start as zero; give the stolen registers recognisable
     shadow values so steal-rewriting is observable. *)
  li a Reg.v0 0x1111;
  sw a Reg.v0 (Abi.shadow_slot Abi.xreg_book) Abi.xreg_book;
  li a Reg.v0 0x2222;
  sw a Reg.v0 (Abi.shadow_slot Abi.xreg_cursor) Abi.xreg_book;
  li a Reg.v0 0x3333;
  sw a Reg.v0 (Abi.shadow_slot Abi.xreg_limit) Abi.xreg_book;
  li a Reg.sp (data_va + 0x2000);
  jal a "main";
  hcall a 0;
  to_obj a

(* Same shim without tracing registers, for the original run. *)
let shim_orig () =
  let a = Asm.create ~no_instrument:true "shim" in
  let open Asm in
  global a "_start";
  label a "_start";
  li a Reg.sp (data_va + 0x2000);
  jal a "main";
  hcall a 0;
  to_obj a

let make_machine exe =
  let m = Machine.create () in
  Machine.load_exe_phys m exe ~text_pa:(Addr.kseg0_pa text_va)
    ~data_pa:(Addr.kseg0_pa data_va);
  m.Machine.pc <- exe.Exe.entry;
  m.Machine.npc <- exe.Exe.entry + 4;
  m.Machine.hcall_handler <- Some (fun m code -> if code = 0 then Machine.halt m);
  m

let run m =
  match Machine.run m ~max_insns:20_000_000 with
  | Machine.Halt -> ()
  | Machine.Limit -> Alcotest.fail "instruction limit reached"

(* Run a program (given as its instrumentable modules) both ways.  Returns
   (orig machine, instr machine, reference events, parsed events, stats). *)
type ev = { kind : int; addr : int }

let run_both (mods : Objfile.t list) =
  (* Original link and run, collecting the reference trace of main only
     (the shim differs between the two links). *)
  let orig_exe =
    Link.link ~name:"orig" ~text_base:text_va ~data_base:data_va
      ~entry:"_start"
      (shim_orig () :: mods)
  in
  let shim_lo = Exe.symbol orig_exe "shim::$text_start" in
  let prog_lo =
    Exe.symbol orig_exe ((List.hd mods).Objfile.name ^ "::$text_start")
  in
  ignore shim_lo;
  let morig = make_machine orig_exe in
  let refev = ref [] in
  let in_prog = ref false in
  morig.Machine.ref_tracer <-
    Some
      (fun kind addr ->
        if kind = 0 then in_prog := addr >= prog_lo;
        if !in_prog then refev := { kind; addr } :: !refev);
  run morig;
  let refev = List.rev !refev in
  (* Instrumented link and run. *)
  let imods, descs = Epoxie.instrument_modules mods in
  let instr_exe =
    Link.link ~name:"instr" ~text_base:text_va ~data_base:data_va
      ~entry:"_start"
      ((shim () :: imods) @ [ Runtime.make Runtime.User ])
  in
  let minstr = make_machine instr_exe in
  run minstr;
  (* Extract and parse the trace buffer. *)
  let table = Bbmap.build ~instrumented:instr_exe ~original:orig_exe descs in
  let cursor = minstr.Machine.regs.(Abi.xreg_cursor) in
  let nwords = (cursor - buf_va) / 4 in
  let words =
    Array.init nwords (fun k ->
        Machine.read_phys_u32 minstr (Addr.kseg0_pa buf_va + (k * 4)))
  in
  let parsed = ref [] in
  let p = Parser.create ~kernel_bbs:table () in
  Parser.set_handlers p
    {
      Parser.on_inst = (fun addr _ _ -> parsed := { kind = 0; addr } :: !parsed);
      on_data =
        (fun addr _ _ is_load _ ->
          parsed := { kind = (if is_load then 1 else 2); addr } :: !parsed);
    };
  Parser.feed p words ~len:nwords;
  Parser.finish p;
  (morig, minstr, refev, List.rev !parsed, Parser.stats p)

let pp_ev e =
  Printf.sprintf "%s 0x%x"
    (match e.kind with 0 -> "I" | 1 -> "L" | _ -> "S")
    e.addr

let compare_traces refev parsed =
  let rec go i r p =
    match (r, p) with
    | [], [] -> ()
    | r0 :: _, [] -> Alcotest.failf "parsed trace short at %d: ref has %s" i (pp_ev r0)
    | [], p0 :: _ -> Alcotest.failf "parsed trace long at %d: extra %s" i (pp_ev p0)
    | r0 :: r', p0 :: p' ->
      if r0 <> p0 then
        Alcotest.failf "trace mismatch at event %d: ref %s, parsed %s" i
          (pp_ev r0) (pp_ev p0);
      go (i + 1) r' p'
  in
  go 0 refev parsed

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)

(* A straightforward loop: sums an array, stores the running sum. *)
let prog_simple () =
  let a = Asm.create "prog" in
  let open Asm in
  global a "main";
  label a "main";
  la a Reg.t0 "array";
  li a Reg.t1 16;
  li a Reg.v0 0;
  label a "loop";
  lw a Reg.t2 0 Reg.t0;
  addu a Reg.v0 Reg.v0 Reg.t2;
  sw a Reg.v0 64 Reg.t0;
  addiu a Reg.t0 Reg.t0 4;
  addiu a Reg.t1 Reg.t1 (-1);
  bnez a Reg.t1 "loop";
  ret a;
  dlabel a "array";
  words a (List.init 16 (fun k -> k * 3));
  space a 128;
  to_obj a

(* Uses the stolen registers heavily: $t7/$t8/$t9 as ordinary computation
   registers, including as load/store bases and in two-stolen-operand
   instructions. *)
let prog_stolen () =
  let a = Asm.create "prog" in
  let open Asm in
  global a "main";
  label a "main";
  la a Reg.t7 "data";       (* stolen as base *)
  li a Reg.t8 5;            (* stolen as counter *)
  li a Reg.t9 0;            (* stolen as accumulator *)
  label a "loop";
  lw a Reg.t2 0 Reg.t7;     (* load via stolen base *)
  addu a Reg.t9 Reg.t9 Reg.t2;
  addu a Reg.t9 Reg.t9 Reg.t8;  (* two stolen sources, stolen dest *)
  sw a Reg.t9 32 Reg.t7;    (* store via stolen base *)
  addiu a Reg.t7 Reg.t7 4;
  addiu a Reg.t8 Reg.t8 (-1);
  bnez a Reg.t8 "loop";
  move a Reg.v0 Reg.t9;
  ret a;
  dlabel a "data";
  words a [ 10; 20; 30; 40; 50 ];
  space a 64;
  to_obj a

(* Hazard cases: function calls spill/reload $ra (sw ra / lw ra), and a
   load overwrites its own base register. *)
let prog_hazard () =
  let a = Asm.create "prog" in
  let open Asm in
  global a "main";
  func a "main" ~frame:8 ~saves:[ Reg.s0 ] (fun () ->
      la a Reg.s0 "cell";
      jal a "leaffn";
      move a Reg.t3 Reg.v0;
      (* load with rt = base *)
      la a Reg.t4 "ptr";
      lw a Reg.t4 0 Reg.t4;
      lw a Reg.t5 0 Reg.t4;
      addu a Reg.v0 Reg.t3 Reg.t5);
  leaf a "leaffn" (fun () ->
      la a Reg.t0 "cell";
      lw a Reg.v0 0 Reg.t0);
  dlabel a "cell";
  word a 77;
  dlabel a "ptr";
  addr a "cell";
  to_obj a

(* Floating point memory traffic. *)
let prog_fp () =
  let a = Asm.create "prog" in
  let open Asm in
  global a "main";
  label a "main";
  la a Reg.t0 "vals";
  ld a 0 0 Reg.t0;
  ld a 1 8 Reg.t0;
  fadd a 2 0 1;
  sd a 2 16 Reg.t0;
  i a (Insn.Fop (TRUNCWD, 2, 2, 0));
  mfc1 a Reg.v0 2;
  ret a;
  dlabel a "vals";
  double a 1.25;
  double a 2.25;
  double a 0.0;
  to_obj a

(* ------------------------------------------------------------------ *)

let test_simple_equivalence () =
  let morig, minstr, refev, parsed, _ = run_both [ prog_simple () ] in
  check_int "same result" morig.Machine.regs.(Reg.v0) minstr.Machine.regs.(Reg.v0);
  check_int "result value" 360 morig.Machine.regs.(Reg.v0);
  compare_traces refev parsed

let test_stolen_registers () =
  let morig, minstr, refev, parsed, _ = run_both [ prog_stolen () ] in
  check_int "same result" morig.Machine.regs.(Reg.v0) minstr.Machine.regs.(Reg.v0);
  (* 10+5 + 20+4 + 30+3 + 40+2 + 50+1 accumulated: 10+5=15, +20+4=39,
     +30+3=72, +40+2=114, +50+1=165 *)
  check_int "result value" 165 morig.Machine.regs.(Reg.v0);
  compare_traces refev parsed

let test_hazards () =
  let morig, minstr, refev, parsed, _ = run_both [ prog_hazard () ] in
  check_int "same result" morig.Machine.regs.(Reg.v0) minstr.Machine.regs.(Reg.v0);
  check_int "result value" 154 morig.Machine.regs.(Reg.v0);
  compare_traces refev parsed

let test_fp () =
  let morig, minstr, refev, parsed, _ = run_both [ prog_fp () ] in
  check_int "same result" morig.Machine.regs.(Reg.v0) minstr.Machine.regs.(Reg.v0);
  check_int "result value" 3 morig.Machine.regs.(Reg.v0);
  compare_traces refev parsed

let test_stats_consistency () =
  let _, _, refev, _, stats = run_both [ prog_simple () ] in
  let insts = List.length (List.filter (fun e -> e.kind = 0) refev) in
  let datas = List.length (List.filter (fun e -> e.kind <> 0) refev) in
  check_int "inst count" insts stats.Parser.insts;
  check_int "data count" datas stats.Parser.datas;
  check "block records seen" true (stats.Parser.bb_records > 0)

let test_expansion_factor () =
  (* Text growth for epoxie should land in the paper's 1.9-2.3x band for
     ordinary code. *)
  let mods = [ prog_simple () ] in
  let imods, _ = Epoxie.instrument_modules mods in
  let f = Epoxie.expansion ~original:mods ~instrumented:imods in
  check "expansion >= 1.5" true (f >= 1.5);
  check "expansion <= 3.0" true (f <= 3.0)

let test_protected_function () =
  (* A protected function must produce no trace but still run correctly. *)
  let a = Asm.create "prog" in
  let open Asm in
  global a "main";
  label a "main";
  i a (Insn.Store (W, Reg.ra, Reg.sp, Imm (-4)));
  jal a "secret";
  i a (Insn.Load (W, Reg.ra, Reg.sp, Imm (-4)));
  ret a;
  protect a "secret";
  leaf a "secret" (fun () ->
      la a Reg.t0 "c";
      lw a Reg.v0 0 Reg.t0);
  dlabel a "c";
  word a 9;
  let mods = [ to_obj a ] in
  let morig, minstr, refev, parsed, _ = run_both mods in
  check_int "same result" morig.Machine.regs.(Reg.v0) minstr.Machine.regs.(Reg.v0);
  check_int "result" 9 morig.Machine.regs.(Reg.v0);
  (* The reference trace includes the protected function; the parsed trace
     must not. *)
  check "parsed shorter than ref" true (List.length parsed < List.length refev)

let tests =
  [
    Alcotest.test_case "simple program equivalence" `Quick test_simple_equivalence;
    Alcotest.test_case "stolen registers" `Quick test_stolen_registers;
    Alcotest.test_case "hazard cases" `Quick test_hazards;
    Alcotest.test_case "floating point" `Quick test_fp;
    Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
    Alcotest.test_case "text expansion factor" `Quick test_expansion_factor;
    Alcotest.test_case "protected function untraced" `Quick test_protected_function;
  ]

(* ------------------------------------------------------------------ *)
(* Property: epoxie preserves semantics and trace fidelity on random
   programs.

   The generator produces structured random programs over the full
   allocatable register set — including the stolen registers $t7-$t9 — with
   arithmetic, memory traffic against a scratch buffer, and a counted
   loop.  Each program is run original and instrumented; the final
   register file and memory must agree, and the parsed trace must equal
   the machine's reference trace. *)

type rinsn =
  | RAlu of Insn.alu * int * int * int
  | RAlui of Insn.alui * int * int * int
  | RShift of Insn.shift * int * int * int
  | RLoad of int * int   (* rt, word offset *)
  | RStore of int * int

let value_regs =
  Reg.[ v0; v1; a0; a1; a2; a3; t0; t1; t2; t3; t4; t5; t6; t7; t8; t9;
        s1; s2; s3; s4; s5; s6; s7 ]

let gen_rinsn =
  let open QCheck.Gen in
  let reg = oneofl value_regs in
  oneof
    [
      map2 (fun op (a, b, c) -> RAlu (op, a, b, c))
        (oneofl Insn.[ ADDU; SUBU; AND; OR; XOR; SLT; SLTU; MUL ])
        (tup3 reg reg reg);
      map2 (fun op (a, b, c) -> RAlui (op, a, b, c))
        (oneofl Insn.[ ADDIU; ANDI; ORI; XORI; SLTI ])
        (tup3 reg reg (int_range 0 255));
      map2 (fun op (a, b, c) -> RShift (op, a, b, c))
        (oneofl Insn.[ SLL; SRL; SRA ])
        (tup3 reg reg (int_range 0 31));
      map2 (fun rt off -> RLoad (rt, off)) reg (int_range 0 63);
      map2 (fun rt off -> RStore (rt, off)) reg (int_range 0 63);
    ]

let gen_program = QCheck.Gen.(list_size (int_range 5 40) gen_rinsn)

let emit_rinsn a (ri : rinsn) =
  let open Asm in
  match ri with
  | RAlu (op, rd, rs, rt) -> i a (Insn.Alu (op, rd, rs, rt))
  | RAlui (op, rt, rs, v) -> i a (Insn.Alui (op, rt, rs, Imm v))
  | RShift (op, rd, rt, sa) -> i a (Insn.Shift (op, rd, rt, sa))
  | RLoad (rt, off) -> lw a rt (off * 4) Reg.s0
  | RStore (rt, off) -> sw a rt (off * 4) Reg.s0

let random_module (body : rinsn list) : Objfile.t =
  let a = Asm.create "prog" in
  let open Asm in
  global a "main";
  label a "main";
  la a Reg.s0 "$scratch";
  (* seed the register file deterministically *)
  List.iteri (fun k r -> li a r ((k * 2654435761) land 0xFFFF)) value_regs;
  (* loop the body a few times so stolen-register state must survive
     iterations *)
  li a Reg.gp 3;   (* gp is free: loop counter outside the value regs *)
  label a "$top";
  List.iter (emit_rinsn a) body;
  addiu a Reg.gp Reg.gp (-1);
  bgtz a Reg.gp "$top";
  nop a;
  (* fold the register file into v0 *)
  List.iter (fun r -> xor_ a Reg.v0 Reg.v0 r) (List.tl value_regs);
  ret a;
  dlabel a "$scratch";
  space a 512;
  to_obj a

let prop_random_equivalence =
  QCheck.Test.make ~count:40 ~name:"random programs: instrumented = original"
    (QCheck.make gen_program)
    (fun body ->
      let mods = [ random_module body ] in
      let morig, minstr, refev, parsed, _ = run_both mods in
      if morig.Machine.regs.(Reg.v0) <> minstr.Machine.regs.(Reg.v0) then
        QCheck.Test.fail_reportf "result differs: %d vs %d"
          morig.Machine.regs.(Reg.v0) minstr.Machine.regs.(Reg.v0);
      compare_traces refev parsed;
      true)

let tests = tests @ [ QCheck_alcotest.to_alcotest prop_random_equivalence ]

(* ------------------------------------------------------------------ *)
(* Mahler / Tunix-style instrumentation (paper §3.4): reserved registers,
   inline trace writes, two-word block records. *)

(* A program compiled under the Tunix contract: no $t7-$t9, no $at, no
   memory instructions in delay slots. *)
let prog_tunix () =
  let a = Asm.create "prog" in
  let open Asm in
  global a "main";
  label a "main";
  la a Reg.t0 "tarray";
  li a Reg.t1 12;
  li a Reg.v0 0;
  label a "tloop";
  lw a Reg.t2 0 Reg.t0;
  addu a Reg.v0 Reg.v0 Reg.t2;
  sw a Reg.v0 64 Reg.t0;
  addiu a Reg.t0 Reg.t0 4;
  addiu a Reg.t1 Reg.t1 (-1);
  bnez a Reg.t1 "tloop";
  ret a;
  dlabel a "tarray";
  words a (List.init 12 (fun k -> (k * 7) + 1));
  space a 128;
  to_obj a

let run_mahler (mods : Objfile.t list) =
  let orig_exe =
    Link.link ~name:"orig" ~text_base:text_va ~data_base:data_va
      ~entry:"_start"
      (shim_orig () :: mods)
  in
  let prog_lo =
    Exe.symbol orig_exe ((List.hd mods).Objfile.name ^ "::$text_start")
  in
  let morig = make_machine orig_exe in
  let refev = ref [] in
  let in_prog = ref false in
  morig.Machine.ref_tracer <-
    Some
      (fun kind addr ->
        if kind = 0 then in_prog := addr >= prog_lo;
        if !in_prog then refev := { kind; addr } :: !refev);
  run morig;
  let imods, descs = Mahler.instrument_modules mods in
  let instr_exe =
    Link.link ~name:"instr" ~text_base:text_va ~data_base:data_va
      ~entry:"_start"
      (shim () :: imods)
  in
  let minstr = make_machine instr_exe in
  run minstr;
  (* Build the lookup table from the Mahler descriptors. *)
  let table = Bbtable.create () in
  List.iter
    (fun (mname, ds) ->
      let orig_base = Exe.symbol orig_exe (mname ^ "::$text_start") in
      List.iter
        (fun (d : Mahler.bb_desc) ->
          Bbtable.add table
            ~record_addr:(Exe.symbol instr_exe (mname ^ "::" ^ d.Mahler.anchor))
            {
              Bbtable.orig_addr = orig_base + (d.Mahler.orig_index * 4);
              ninsns = d.Mahler.ninsns;
              mems = d.Mahler.mems;
              flags = 0;
            })
        ds)
    descs;
  let cursor = minstr.Machine.regs.(Abi.xreg_cursor) in
  let nwords = (cursor - buf_va) / 4 in
  let words =
    Array.init nwords (fun k ->
        Machine.read_phys_u32 minstr (Addr.kseg0_pa buf_va + (k * 4)))
  in
  let parsed = ref [] in
  let stats =
    Mahler.parse ~table words
      ~on_inst:(fun addr -> parsed := { kind = 0; addr } :: !parsed)
      ~on_data:(fun addr is_load ->
        parsed := { kind = (if is_load then 1 else 2); addr } :: !parsed)
  in
  (morig, minstr, List.rev !refev, List.rev !parsed, stats, nwords)

let test_mahler_equivalence () =
  let morig, minstr, refev, parsed, _, _ = run_mahler [ prog_tunix () ] in
  check_int "same result" morig.Machine.regs.(Reg.v0) minstr.Machine.regs.(Reg.v0);
  compare_traces refev parsed

let test_mahler_reserved_check () =
  let a = Asm.create "bad" in
  Asm.leaf a "main" (fun () -> Asm.li a Reg.t8 1);
  check "reserved register rejected" true
    (try
       ignore (Mahler.instrument_modules [ Asm.to_obj a ]);
       false
     with Mahler.Reserved_register_used _ -> true)

let test_mahler_trace_fatter_than_epoxie () =
  (* Same program, both instrumentations: the Tunix format writes one
     extra word per block (the inline length), so its trace is strictly
     bigger — the motivation for the one-word format of §3.5. *)
  let _, _, _, _, _, mahler_words = run_mahler [ prog_tunix () ] in
  let _, minstr, _, _, stats = run_both [ prog_tunix () ] in
  ignore minstr;
  let epoxie_words = stats.Parser.words in
  check "tunix trace bigger" true (mahler_words > epoxie_words);
  check_int "exactly one extra word per block"
    (mahler_words - epoxie_words) stats.Parser.bb_records

let test_mahler_length_validation () =
  (* Corrupt a length word: the redundancy check must catch it. *)
  let a = Asm.create "prog" in
  Asm.global a "main";
  Asm.label a "main";
  Asm.li a Reg.t0 1;
  Asm.ret a;
  let mods = [ Asm.to_obj a ] in
  let imods, descs = Mahler.instrument_modules mods in
  let orig_exe =
    Link.link ~name:"o" ~text_base:text_va ~data_base:data_va ~entry:"main" mods
  in
  let instr_exe =
    Link.link ~name:"i" ~text_base:text_va ~data_base:data_va ~entry:"main" imods
  in
  let table = Bbtable.create () in
  List.iter
    (fun (mname, ds) ->
      let base = Exe.symbol orig_exe (mname ^ "::$text_start") in
      List.iter
        (fun (d : Mahler.bb_desc) ->
          Bbtable.add table
            ~record_addr:(Exe.symbol instr_exe (mname ^ "::" ^ d.Mahler.anchor))
            { Bbtable.orig_addr = base + (d.Mahler.orig_index * 4);
              ninsns = d.Mahler.ninsns; mems = d.Mahler.mems; flags = 0 })
        ds)
    descs;
  let anchor = Exe.symbol instr_exe "prog::$mbb0" in
  check "bad length rejected" true
    (try
       ignore
         (Mahler.parse ~table [| anchor; 999 |]
            ~on_inst:(fun _ -> ()) ~on_data:(fun _ _ -> ()));
       false
     with Mahler.Corrupt _ -> true)

let tests =
  tests
  @ [
      Alcotest.test_case "mahler: equivalence + trace" `Quick
        test_mahler_equivalence;
      Alcotest.test_case "mahler: reserved register check" `Quick
        test_mahler_reserved_check;
      Alcotest.test_case "mahler: trace fatter than epoxie" `Quick
        test_mahler_trace_fatter_than_epoxie;
      Alcotest.test_case "mahler: length validation" `Quick
        test_mahler_length_validation;
    ]

(* ------------------------------------------------------------------ *)
(* Hand-traced routines (paper §3.3): code too delicate for epoxie is
   instrumented by hand; the parsing system recognises its record through
   a manually registered table entry. *)

(* The routine, as it exists in the original binary: 5 instructions, a
   load at position 0 and a store at position 2. *)
let hand_fn_plain () =
  let a = Asm.create ~no_instrument:true "handmod" in
  let open Asm in
  global a "hand_fn";
  label a "hand_fn";
  lw a Reg.v0 0 Reg.a0;
  addiu a Reg.v0 Reg.v0 1;
  sw a Reg.v0 0 Reg.a0;
  i a (Insn.Jr Reg.ra);
  nop a;
  to_obj a

(* The hand-instrumented variant: writes its own record and data words
   through the live cursor before executing the same body. *)
let hand_fn_traced () =
  let a = Asm.create ~no_instrument:true "handmod" in
  let open Asm in
  global a "hand_fn";
  global a "$hand_rec";
  label a "hand_fn";
  label a "$hand_rec";
  (* record word *)
  la a Reg.at "$hand_rec";
  addiu a Abi.xreg_cursor Abi.xreg_cursor 4;
  sw a Reg.at (-4) Abi.xreg_cursor;
  (* the two data addresses (both a0+0) *)
  addiu a Reg.at Reg.a0 0;
  addiu a Abi.xreg_cursor Abi.xreg_cursor 4;
  sw a Reg.at (-4) Abi.xreg_cursor;
  addiu a Reg.at Reg.a0 0;
  addiu a Abi.xreg_cursor Abi.xreg_cursor 4;
  sw a Reg.at (-4) Abi.xreg_cursor;
  (* the declared body *)
  lw a Reg.v0 0 Reg.a0;
  addiu a Reg.v0 Reg.v0 1;
  sw a Reg.v0 0 Reg.a0;
  i a (Insn.Jr Reg.ra);
  nop a;
  to_obj a

let hand_caller () =
  let a = Asm.create "prog" in
  let open Asm in
  func a "main" ~frame:8 ~saves:[ Reg.s0 ] (fun () ->
      la a Reg.s0 "$cell";
      li a Reg.t0 3;
      label a "$hc_loop";
      sw a Reg.t0 0 Reg.sp;
      move a Reg.a0 Reg.s0;
      jal a "hand_fn";
      lw a Reg.t0 0 Reg.sp;
      addiu a Reg.t0 Reg.t0 (-1);
      bgtz a Reg.t0 "$hc_loop";
      lw a Reg.v0 0 Reg.s0);
  dlabel a "$cell";
  word a 100;
  to_obj a

let test_hand_traced_routine () =
  (* Original: caller + plain routine; reference trace covers both. *)
  let orig_exe =
    Link.link ~name:"orig" ~text_base:text_va ~data_base:data_va
      ~entry:"_start"
      [ shim_orig (); hand_caller (); hand_fn_plain () ]
  in
  let prog_lo = Exe.symbol orig_exe "prog::$text_start" in
  let morig = make_machine orig_exe in
  let refev = ref [] in
  let in_prog = ref false in
  morig.Machine.ref_tracer <-
    Some
      (fun kind addr ->
        if kind = 0 then in_prog := addr >= prog_lo;
        if !in_prog then refev := { kind; addr } :: !refev);
  run morig;
  (* Instrumented: epoxie handles the caller; the routine is hand-made. *)
  let imods, descs = Epoxie.instrument_modules [ hand_caller () ] in
  let instr_exe =
    Link.link ~name:"instr" ~text_base:text_va ~data_base:data_va
      ~entry:"_start"
      ((shim () :: imods) @ [ hand_fn_traced (); Runtime.make Runtime.User ])
  in
  let minstr = make_machine instr_exe in
  run minstr;
  let table = Bbmap.build ~instrumented:instr_exe ~original:orig_exe descs in
  Bbmap.add_hand_traced table
    ~record_addr:(Exe.symbol instr_exe "$hand_rec")
    ~orig_addr:(Exe.symbol orig_exe "hand_fn")
    ~ninsns:5
    ~mems:[| (0, 4, true); (2, 4, false) |];
  (match Bbtable.find table (Exe.symbol instr_exe "$hand_rec") with
  | Some e -> check "flagged as hand-traced" true (Bbtable.is_hand e)
  | None -> Alcotest.fail "hand entry missing");
  let cursor = minstr.Machine.regs.(Abi.xreg_cursor) in
  let nwords = (cursor - buf_va) / 4 in
  let words =
    Array.init nwords (fun k ->
        Machine.read_phys_u32 minstr (Addr.kseg0_pa buf_va + (k * 4)))
  in
  let parsed = ref [] in
  let p = Parser.create ~kernel_bbs:table () in
  Parser.set_handlers p
    {
      Parser.on_inst = (fun addr _ _ -> parsed := { kind = 0; addr } :: !parsed);
      on_data =
        (fun addr _ _ is_load _ ->
          parsed := { kind = (if is_load then 1 else 2); addr } :: !parsed);
    };
  Parser.feed p words ~len:nwords;
  Parser.finish p;
  check_int "same result (103)" morig.Machine.regs.(Reg.v0)
    minstr.Machine.regs.(Reg.v0);
  check_int "result" 103 minstr.Machine.regs.(Reg.v0);
  compare_traces (List.rev !refev) (List.rev !parsed)

let tests =
  tests
  @ [ Alcotest.test_case "hand-traced routine" `Quick test_hand_traced_routine ]
