(* Tests for the trace-driven memory-system simulator: the independent
   cache/TLB/write-buffer models, the handler-synthesis logic, and the
   execution-time predictor. *)

open Systrace_tracesim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Cache model                                                         *)

let test_cache_compulsory () =
  let c = Sim_cache.create ~size_bytes:1024 ~line_bytes:16 in
  for k = 0 to 63 do
    ignore (Sim_cache.read c (k * 16))
  done;
  check_int "all compulsory" 64 c.Sim_cache.read_misses;
  for k = 0 to 63 do
    ignore (Sim_cache.read c (k * 16))
  done;
  check_int "all hits" 64 c.Sim_cache.read_hits

let test_cache_conflict () =
  let c = Sim_cache.create ~size_bytes:1024 ~line_bytes:16 in
  (* two addresses 1024 apart map to the same line *)
  ignore (Sim_cache.read c 0);
  ignore (Sim_cache.read c 1024);
  ignore (Sim_cache.read c 0);
  check_int "ping-pong misses" 3 c.Sim_cache.read_misses

let test_cache_write_no_allocate () =
  let c = Sim_cache.create ~size_bytes:1024 ~line_bytes:16 in
  check "write miss" true (not (Sim_cache.write c 64));
  (* the line was NOT allocated *)
  check "read still misses" true (not (Sim_cache.read c 64));
  (* but a write to a present line hits *)
  check "write hit" true (Sim_cache.write c 64)

let prop_cache_sequential =
  QCheck.Test.make ~count:100 ~name:"sequential scan misses once per line"
    QCheck.(pair (int_range 1 6) (int_range 1 64))
    (fun (line_pow, nlines) ->
      let line = 1 lsl (line_pow + 1) in
      let c = Sim_cache.create ~size_bytes:(line * 256) ~line_bytes:line in
      let bytes = nlines * line in
      for a = 0 to bytes - 1 do
        ignore (Sim_cache.read c a)
      done;
      c.Sim_cache.read_misses = nlines)

(* ------------------------------------------------------------------ *)
(* TLB model                                                           *)

let test_tlb_hit_miss () =
  let t = Sim_tlb.create () in
  check "first access misses" true
    (not (Sim_tlb.access t ~vpn:5 ~asid:1 ~global:false ~user:true));
  check "second access hits" true
    (Sim_tlb.access t ~vpn:5 ~asid:1 ~global:false ~user:true);
  check_int "one user miss" 1 t.Sim_tlb.user_misses

let test_tlb_asid_isolation () =
  let t = Sim_tlb.create () in
  ignore (Sim_tlb.access t ~vpn:5 ~asid:1 ~global:false ~user:true);
  check "different asid misses" true
    (not (Sim_tlb.access t ~vpn:5 ~asid:2 ~global:false ~user:true))

let test_tlb_global_entries () =
  let t = Sim_tlb.create () in
  ignore (Sim_tlb.access t ~vpn:9 ~asid:0 ~global:true ~user:false);
  check "global entry matches any asid" true
    (Sim_tlb.access t ~vpn:9 ~asid:7 ~global:false ~user:true)

let test_tlb_capacity () =
  let t = Sim_tlb.create ~size:16 ~wired:0 () in
  (* touch 32 distinct pages twice: capacity misses must occur *)
  for round = 1 to 2 do
    ignore round;
    for vpn = 0 to 31 do
      ignore (Sim_tlb.access t ~vpn ~asid:1 ~global:false ~user:true)
    done
  done;
  check "capacity misses" true (t.Sim_tlb.user_misses > 32)

let test_tlb_size_param () =
  let small = Sim_tlb.create ~size:16 ~wired:8 () in
  let big = Sim_tlb.create ~size:128 ~wired:8 () in
  for round = 1 to 3 do
    ignore round;
    for vpn = 0 to 63 do
      ignore (Sim_tlb.access small ~vpn ~asid:1 ~global:false ~user:true);
      ignore (Sim_tlb.access big ~vpn ~asid:1 ~global:false ~user:true)
    done
  done;
  check "bigger TLB misses less" true
    (big.Sim_tlb.user_misses < small.Sim_tlb.user_misses)

(* ------------------------------------------------------------------ *)
(* Write buffer model                                                  *)

let test_wb_burst_stalls () =
  let wb = Sim_wb.create ~depth:4 ~drain_cycles:6 () in
  let total = ref 0 in
  for _ = 1 to 20 do
    Sim_wb.tick wb 1;
    total := !total + Sim_wb.store wb
  done;
  check "burst causes stalls" true (!total > 0)

let test_wb_spaced_stores_free () =
  let wb = Sim_wb.create ~depth:4 ~drain_cycles:6 () in
  let total = ref 0 in
  for _ = 1 to 20 do
    Sim_wb.tick wb 10;
    total := !total + Sim_wb.store wb
  done;
  check_int "spaced stores never stall" 0 !total

(* ------------------------------------------------------------------ *)
(* Memsim: synthetic event streams                                     *)

let mk_memsim ?(tlb_entries = 64) () =
  Memsim.create
    {
      Memsim.icache_bytes = 4096;
      icache_line = 16;
      icache_ways = 1;
      dcache_bytes = 4096;
      dcache_line = 4;
      dcache_ways = 1;
      read_miss_penalty = 10;
      uncached_penalty = 10;
      wb_depth = 4;
      wb_drain = 6;
      pagemap = (fun _pid va -> Some (va land 0xFFFFF));
      pt_base = (fun pid -> 0xC0000000 + (pid * 0x200000));
      utlb_handler_insns = 8;
      ktlb_handler_insns = 24;
      tlb_entries;
    }

let test_memsim_utlb_synthesis () =
  let m = mk_memsim () in
  (* one user instruction on a fresh page: TLB miss -> synthesized
     handler (8 instructions) + PTE load (whose kseg2 access KTLB-misses
     and synthesizes another 24). *)
  Memsim.on_inst m 0x00400000 1 false;
  let s = Memsim.stats m in
  check_int "one utlb miss" 1 s.Memsim.utlb_misses;
  check_int "one ktlb miss" 1 s.Memsim.ktlb_misses;
  check_int "synthesized instructions" (8 + 24) s.Memsim.synth_insts;
  check_int "one trace instruction" 1 s.Memsim.insts

let test_memsim_no_tlb_for_kseg0 () =
  let m = mk_memsim () in
  Memsim.on_inst m 0x80001000 0 true;
  Memsim.on_data m 0x80080000 0 true true 4;
  let s = Memsim.stats m in
  check_int "no tlb misses" 0 (s.Memsim.utlb_misses + s.Memsim.ktlb_misses)

let test_memsim_kseg1_uncached () =
  let m = mk_memsim () in
  Memsim.on_data m 0xA1000000 0 true true 4;
  Memsim.on_data m 0xA1000000 0 true false 4;
  let s = Memsim.stats m in
  check_int "uncached read" 1 s.Memsim.uncached_reads;
  check_int "uncached write" 1 s.Memsim.uncached_writes

let test_memsim_mode_split () =
  let m = mk_memsim () in
  Memsim.on_inst m 0x80001000 0 true;
  Memsim.on_inst m 0x00400000 1 false;
  let s = Memsim.stats m in
  check_int "kernel insts" 1 s.Memsim.kernel_insts;
  check_int "user insts" 1 s.Memsim.user_insts

let test_memsim_same_page_one_miss () =
  let m = mk_memsim () in
  for k = 0 to 99 do
    Memsim.on_inst m (0x00400000 + (k * 4)) 1 false
  done;
  check_int "one page, one miss" 1 (Memsim.stats m).Memsim.utlb_misses

(* ------------------------------------------------------------------ *)
(* Predictor arithmetic                                                *)

let test_predict_components () =
  let mem =
    {
      Memsim.insts = 1000;
      datas = 300;
      kernel_insts = 400;
      user_insts = 600;
      kernel_stall = 0;
      user_stall = 0;
      synth_insts = 50;
      icache_misses = 10;
      dcache_read_misses = 20;
      uncached_reads = 5;
      uncached_writes = 5;
      wb_stalls = 7;
      utlb_misses = 3;
      ktlb_misses = 1;
      unmapped = 0;
    }
  in
  let parse = Systrace_tracing.Parser.fresh_stats () in
  parse.Systrace_tracing.Parser.idle_insts <- 100;
  let b =
    Predict.make ~mem ~parse ~arith_stalls:11 ~dilation:15
      ~read_miss_penalty:15 ~uncached_penalty:12
  in
  check_int "icache stall" 150 b.Predict.icache_stall;
  check_int "dcache stall" 300 b.Predict.dcache_stall;
  check_int "uncached stall" 120 b.Predict.uncached_stall;
  check_int "idle extra" 1400 b.Predict.io_idle_extra;
  check_int "total"
    (1000 + 50 + 1400 + 150 + 300 + 120 + 7 + 11)
    b.Predict.total_cycles

let tests =
  [
    Alcotest.test_case "cache: compulsory then hits" `Quick test_cache_compulsory;
    Alcotest.test_case "cache: conflict ping-pong" `Quick test_cache_conflict;
    Alcotest.test_case "cache: write no-allocate" `Quick test_cache_write_no_allocate;
    QCheck_alcotest.to_alcotest prop_cache_sequential;
    Alcotest.test_case "tlb: hit/miss" `Quick test_tlb_hit_miss;
    Alcotest.test_case "tlb: asid isolation" `Quick test_tlb_asid_isolation;
    Alcotest.test_case "tlb: global entries" `Quick test_tlb_global_entries;
    Alcotest.test_case "tlb: capacity misses" `Quick test_tlb_capacity;
    Alcotest.test_case "tlb: size parameter" `Quick test_tlb_size_param;
    Alcotest.test_case "wb: burst stalls" `Quick test_wb_burst_stalls;
    Alcotest.test_case "wb: spaced stores free" `Quick test_wb_spaced_stores_free;
    Alcotest.test_case "memsim: utlb synthesis" `Quick test_memsim_utlb_synthesis;
    Alcotest.test_case "memsim: kseg0 bypasses tlb" `Quick test_memsim_no_tlb_for_kseg0;
    Alcotest.test_case "memsim: kseg1 uncached" `Quick test_memsim_kseg1_uncached;
    Alcotest.test_case "memsim: mode split" `Quick test_memsim_mode_split;
    Alcotest.test_case "memsim: page locality" `Quick test_memsim_same_page_one_miss;
    Alcotest.test_case "predict: components" `Quick test_predict_components;
  ]

(* ------------------------------------------------------------------ *)
(* Sim_cache_assoc: set-associative LRU model                           *)

let test_assoc_eliminates_conflict () =
  (* Two lines mapping to the same direct-mapped slot ping-pong in a 1-way
     cache but coexist in a 2-way one — the conflict/capacity distinction
     the associative model exists to expose. *)
  let dm = Sim_cache_assoc.create ~size_bytes:1024 ~line_bytes:16 ~ways:1 () in
  let sa = Sim_cache_assoc.create ~size_bytes:1024 ~line_bytes:16 ~ways:2 () in
  let a = 0x0 and b = 0x400 (* a + 1-way cache size: same set both ways *) in
  for _ = 1 to 50 do
    ignore (Sim_cache_assoc.read dm a);
    ignore (Sim_cache_assoc.read dm b);
    ignore (Sim_cache_assoc.read sa a);
    ignore (Sim_cache_assoc.read sa b)
  done;
  Alcotest.(check int) "1-way: all misses" 100 dm.Sim_cache_assoc.read_misses;
  Alcotest.(check int) "2-way: compulsory only" 2 sa.Sim_cache_assoc.read_misses

let test_assoc_lru_order () =
  (* 2-way set with three competing lines: LRU must evict the least
     recently used, so touching [a] between fills keeps [a] resident. *)
  let c = Sim_cache_assoc.create ~size_bytes:512 ~line_bytes:16 ~ways:2 () in
  let set_stride = 16 * (512 / (16 * 2)) in
  let a = 0 and b = set_stride and d = 2 * set_stride in
  ignore (Sim_cache_assoc.read c a);   (* miss, fill *)
  ignore (Sim_cache_assoc.read c b);   (* miss, fill *)
  ignore (Sim_cache_assoc.read c a);   (* hit: a is now MRU *)
  ignore (Sim_cache_assoc.read c d);   (* miss, must evict b *)
  Alcotest.(check bool) "a still resident" true (Sim_cache_assoc.read c a);
  Alcotest.(check bool) "b evicted" false (Sim_cache_assoc.read c b)

let test_assoc_write_no_allocate () =
  let c = Sim_cache_assoc.create ~size_bytes:512 ~line_bytes:16 ~ways:4 () in
  Alcotest.(check bool) "write miss" false (Sim_cache_assoc.write c 0x40);
  Alcotest.(check bool) "still absent" false (Sim_cache_assoc.read c 0x40);
  Alcotest.(check bool) "write hit after fill" true (Sim_cache_assoc.write c 0x40)

let prop_assoc_one_way_equals_direct =
  (* The cross-check promised in the .mli: a 1-way associative cache is
     access-for-access identical to the direct-mapped validation model. *)
  QCheck.Test.make ~count:200 ~name:"1-way assoc cache == direct-mapped"
    QCheck.(
      list_of_size Gen.(int_range 1 300)
        (pair bool (map (fun a -> a land 0xFFFF) (int_bound max_int))))
    (fun accesses ->
      let dm = Sim_cache.create ~size_bytes:1024 ~line_bytes:16 in
      let sa = Sim_cache_assoc.create ~size_bytes:1024 ~line_bytes:16 ~ways:1 () in
      List.for_all
        (fun (is_read, pa) ->
          if is_read then Sim_cache.read dm pa = Sim_cache_assoc.read sa pa
          else Sim_cache.write dm pa = Sim_cache_assoc.write sa pa)
        accesses)

let prop_assoc_full_lru_compulsory_only =
  (* The LRU theorem worth owning: a fully-associative LRU cache whose
     capacity covers the stream's working set misses exactly once per
     distinct line, whatever the access order.  (Misses across *different
     set counts* are deliberately not compared: halving the set count
     while doubling ways is not a Mattson stack inclusion, and anomalies
     are real.) *)
  QCheck.Test.make ~count:200 ~name:"full-LRU: one miss per distinct line"
    QCheck.(
      list_of_size
        Gen.(int_range 1 500)
        (map (fun a -> (a land 0x1F) * 16) (int_bound max_int)))
    (fun pas ->
      (* 32 ways x 16B lines = 512B, >= the 32-line address range above *)
      let c = Sim_cache_assoc.create ~size_bytes:512 ~line_bytes:16 ~ways:32 () in
      List.iter (fun pa -> ignore (Sim_cache_assoc.read c pa)) pas;
      let distinct = List.sort_uniq compare pas in
      c.Sim_cache_assoc.read_misses = List.length distinct)

let tests =
  tests
  @ [
      Alcotest.test_case "assoc: conflict elimination" `Quick
        test_assoc_eliminates_conflict;
      Alcotest.test_case "assoc: true LRU" `Quick test_assoc_lru_order;
      Alcotest.test_case "assoc: write no-allocate" `Quick
        test_assoc_write_no_allocate;
      QCheck_alcotest.to_alcotest prop_assoc_one_way_equals_direct;
      QCheck_alcotest.to_alcotest prop_assoc_full_lru_compulsory_only;
    ]

let test_memsim_ways_knob () =
  (* Two data pages colliding in a direct-mapped D-cache stop colliding at
     2 ways; everything else in the config untouched. *)
  let mk ways =
    Memsim.create
      {
        Memsim.icache_bytes = 4096;
        icache_line = 4;
        icache_ways = 1;
        dcache_bytes = 4096;
        dcache_line = 4;
        dcache_ways = ways;
        read_miss_penalty = 15;
        uncached_penalty = 6;
        wb_depth = 4;
        wb_drain = 5;
        pagemap = (fun _ va -> Some (va land 0xFFFFFF));
        pt_base = (fun _ -> 0xC0000000);
        utlb_handler_insns = 8;
        ktlb_handler_insns = 24;
        tlb_entries = 64;
      }
  in
  let drive sim =
    for _ = 1 to 40 do
      (* kseg0 addresses: no TLB traffic, pure cache behaviour *)
      Memsim.on_data sim 0x80002000 0 true true 4;
      Memsim.on_data sim 0x80003000 0 true true 4 (* +4096: same line idx *)
    done;
    (Memsim.stats sim).Memsim.dcache_read_misses
  in
  Alcotest.(check int) "1-way ping-pong" 80 (drive (mk 1));
  Alcotest.(check int) "2-way coexist" 2 (drive (mk 2))

let tests =
  tests
  @ [ Alcotest.test_case "memsim: dcache_ways knob" `Quick test_memsim_ways_knob ]

let test_assoc_write_back () =
  let c =
    Sim_cache_assoc.create ~policy:Sim_cache_assoc.Write_back
      ~size_bytes:512 ~line_bytes:16 ~ways:2 ()
  in
  (* write-allocate: a store miss installs the line *)
  Alcotest.(check bool) "store miss" false (Sim_cache_assoc.write c 0x40);
  Alcotest.(check bool) "allocated" true (Sim_cache_assoc.read c 0x40);
  Alcotest.(check int) "no writeback yet" 0 c.Sim_cache_assoc.writebacks;
  (* evict the dirty line: 2 ways, so two more lines in the same set *)
  let set_stride = 16 * (512 / (16 * 2)) in
  ignore (Sim_cache_assoc.read c (0x40 + set_stride));
  ignore (Sim_cache_assoc.read c (0x40 + (2 * set_stride)));
  Alcotest.(check int) "dirty eviction counted" 1 c.Sim_cache_assoc.writebacks;
  (* clean evictions don't count *)
  ignore (Sim_cache_assoc.read c (0x40 + (3 * set_stride)));
  Alcotest.(check int) "clean eviction free" 1 c.Sim_cache_assoc.writebacks;
  (* re-dirtying via a write hit *)
  ignore (Sim_cache_assoc.write c (0x40 + (3 * set_stride)));
  ignore (Sim_cache_assoc.read c 0x40);
  ignore (Sim_cache_assoc.read c (0x40 + set_stride));
  Alcotest.(check int) "write-hit dirt written back" 2
    c.Sim_cache_assoc.writebacks

let prop_assoc_wb_traffic_bounded =
  (* Write-back memory traffic never exceeds the number of stores: each
     writeback needs a distinct preceding store that dirtied the line. *)
  QCheck.Test.make ~count:200 ~name:"write-back: writebacks <= stores"
    QCheck.(
      list_of_size Gen.(int_range 1 400)
        (pair bool (map (fun a -> (a land 0x3F) * 16) (int_bound max_int))))
    (fun accesses ->
      let c =
        Sim_cache_assoc.create ~policy:Sim_cache_assoc.Write_back
          ~size_bytes:256 ~line_bytes:16 ~ways:2 ()
      in
      let stores = ref 0 in
      List.iter
        (fun (is_read, pa) ->
          if is_read then ignore (Sim_cache_assoc.read c pa)
          else begin
            incr stores;
            ignore (Sim_cache_assoc.write c pa)
          end)
        accesses;
      c.Sim_cache_assoc.writebacks <= !stores)

let tests =
  tests
  @ [
      Alcotest.test_case "assoc: write-back policy" `Quick
        test_assoc_write_back;
      QCheck_alcotest.to_alcotest prop_assoc_wb_traffic_bounded;
    ]
