test/test_util.ml: Alcotest Array QCheck QCheck_alcotest Rng Stats String Systrace_util Table
