test/test_machine.ml: Addr Alcotest Array Asm Char Disk Exe Fpu Insn Int64 Link List Machine Reg Systrace_isa Systrace_machine
