test/test_tracesim.ml: Alcotest Gen List Memsim Predict QCheck QCheck_alcotest Sim_cache Sim_cache_assoc Sim_tlb Sim_wb Systrace_tracesim Systrace_tracing
