test/test_kernel.ml: Alcotest Asm Builder Char Hashtbl Insn Kcfg List Option Parser Reg String Systrace_isa Systrace_kernel Systrace_machine Systrace_tracing Systrace_workloads Userlib Ux_server
