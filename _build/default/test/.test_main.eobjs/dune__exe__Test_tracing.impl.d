test/test_tracing.ml: Alcotest Array Bbtable Compress Filename Format_ Fun Gen List Parser QCheck QCheck_alcotest String Sys Systrace_tracing Tracefile Unix
