test/test_threads.ml: Alcotest Asm Builder Hashtbl Kcfg List Option Parser Reg String Systrace_isa Systrace_kernel Systrace_machine Systrace_tracing Systrace_workloads Userlib Ux_server
