test/test_isa.ml: Alcotest Array Asm Bb Bytes Encode Exe Insn Int32 Link List Objfile Printf QCheck QCheck_alcotest Random Reg Systrace_isa Systrace_machine
