(* Benchmark and experiment harness: regenerates every table and figure of
   the paper's evaluation, plus the design-choice ablations from DESIGN.md
   and Bechamel microbenchmarks of the toolchain itself.

     dune exec bench/main.exe             -- everything
     dune exec bench/main.exe table2      -- one experiment
   Experiments: table1 table2 figure3 table3 figure2 expansion dilation
                kernel_cpi distortion buffer_sweep pagemap corruption
                os_structure drain_ablation trace_format micro          *)

open Systrace
module Experiments = Systrace_validate.Experiments
module Table = Systrace_util.Table

let heading title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* The measured/predicted matrix is expensive; compute it once on demand. *)
let matrix =
  lazy
    (let t0 = Unix.gettimeofday () in
     let m =
       Experiments.run_matrix
         ~progress:(fun s ->
           Printf.eprintf "  [%6.1fs] running %s\n%!"
             (Unix.gettimeofday () -. t0)
             s)
         ()
     in
     Printf.eprintf "  matrix complete in %.1fs\n%!"
       (Unix.gettimeofday () -. t0);
     m)

let exp_table1 () =
  heading "Table 1: experimental workloads";
  Table.print (Experiments.table1 ())

let exp_table2 () =
  heading "Table 2: run times, measured and predicted";
  Table.print (Experiments.table2 (Lazy.force matrix))

let exp_figure3 () =
  heading "Figure 3: error in predicted execution times (Ultrix)";
  Table.print (Experiments.figure3 (Lazy.force matrix))

let exp_table3 () =
  heading "Table 3: TLB misses, measured and predicted";
  Table.print (Experiments.table3 (Lazy.force matrix))

let exp_figure2 () =
  heading "Figure 2: instrumentation by epoxie";
  print_string (Experiments.figure2 ())

let exp_expansion () =
  heading "Text expansion: epoxie vs pixie (paper 3.2)";
  Table.print (Experiments.expansion_table ())

let exp_dilation () =
  heading "Time dilation of instrumented execution (paper 4.1)";
  Table.print (Experiments.dilation_table (Lazy.force matrix))

let exp_kernel_cpi () =
  heading "Kernel vs user CPI (paper 3.4)";
  Table.print (Experiments.kernel_cpi_table (Lazy.force matrix))

let exp_distortion () =
  heading "Instrumentation distortion of the traced system (paper 4.1)";
  Table.print (Experiments.distortion_table ())

let exp_buffer_sweep () =
  heading "Ablation: in-kernel buffer size vs analysis transitions (paper 4.3)";
  Table.print (Experiments.buffer_sweep_table ())

let exp_pagemap () =
  heading "Ablation: page-mapping policy sensitivity (paper 4.4)";
  Table.print (Experiments.pagemap_table ())

(* Trace-format ablation (DESIGN.md): one-word records vs Tunix-style
   records that carry the block length inline. *)
let exp_corruption () =
  heading "Defensive tracing: fault injection (paper 4.3)";
  Table.print (Experiments.corruption_table ())

let exp_os_structure () =
  heading "OS structure vs memory behaviour (companion study [7])";
  Table.print (Experiments.os_structure_table (Lazy.force matrix))

let exp_drain_ablation () =
  heading "Ablation: drain-on-kernel-entry vs flush-when-full (paper 3.1)";
  Table.print (Experiments.drain_ablation_table ())

let exp_trace_format () =
  heading "Ablation: trace format density (one-word vs Tunix records)";
  let e = Workloads.Suite.find "egrep" in
  let words, run =
    capture_trace [ e.Workloads.Suite.program () ] e.Workloads.Suite.files
  in
  let s = run.parse_stats in
  let t =
    Table.create ~title:"" ~headers:[ "format"; "words"; "bytes/instruction" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
  in
  let insts = float_of_int s.Tracing.Parser.insts in
  let one_word = Array.length words in
  let tunix = one_word + s.Tracing.Parser.bb_records in
  Table.add_row t
    [ "one-word records (Ultrix/Mach)"; string_of_int one_word;
      Printf.sprintf "%.2f" (4.0 *. float_of_int one_word /. insts) ];
  Table.add_row t
    [ "record + length (Tunix)"; string_of_int tunix;
      Printf.sprintf "%.2f" (4.0 *. float_of_int tunix /. insts) ];
  (* and the stored-trace density when the words leave the machine through
     the delta/varint compressor ("the trace takes less space and less
     time to write", 3.5 — here applied to the tape of 3.4) *)
  let zbytes = String.length (Tracing.Compress.pack words) in
  Table.add_row t
    [ Printf.sprintf "one-word, compressed (%.1fx)"
        (4.0 *. float_of_int one_word /. float_of_int zbytes);
      string_of_int ((zbytes + 3) / 4);
      Printf.sprintf "%.2f" (float_of_int zbytes /. insts) ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the toolchain                            *)

let exp_micro () =
  heading "Microbenchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  (* machine interpreter throughput *)
  let interp_test =
    let open Isa in
    let a = Asm.create "spin" in
    Asm.global a "_start";
    Asm.label a "_start";
    Asm.la a Reg.t2 "buf";
    Asm.label a "loop";
    Asm.lw a Reg.t3 0 Reg.t2;
    Asm.addiu a Reg.t3 Reg.t3 1;
    Asm.sw a Reg.t3 0 Reg.t2;
    Asm.i a (Insn.J (Sym "loop"));
    Asm.nop a;
    Asm.dlabel a "buf";
    Asm.space a 64;
    let exe =
      Link.link ~name:"spin" ~text_base:0x80001000 ~data_base:0x80008000
        ~entry:"_start" [ Asm.to_obj a ]
    in
    Test.make ~name:"machine: interpret 50k instructions"
      (Staged.stage (fun () ->
           let m = Machine.Machine.create () in
           Machine.Machine.load_exe_phys m exe ~text_pa:0x1000 ~data_pa:0x8000;
           m.Machine.Machine.pc <- exe.Isa.Exe.entry;
           m.Machine.Machine.npc <- exe.Isa.Exe.entry + 4;
           ignore (Machine.Machine.run m ~max_insns:50_000)))
  in
  (* trace parsing + memory simulation throughput over a captured trace *)
  let e = Workloads.Suite.find "egrep" in
  let words, run =
    capture_trace [ e.Workloads.Suite.program () ] e.Workloads.Suite.files
  in
  let base_cfg = default_memsim_cfg ~system:run.system in
  let parse_test =
    Test.make
      ~name:
        (Printf.sprintf "tracesim: parse+simulate %d-word trace"
           (Array.length words))
      (Staged.stage (fun () -> ignore (replay ~system:run.system ~memsim_cfg:base_cfg words)))
  in
  (* instrumentation speed *)
  let instr_test =
    let prog = e.Workloads.Suite.program () in
    Test.make ~name:"epoxie: instrument the egrep modules"
      (Staged.stage (fun () ->
           ignore
             (Epoxie.Epoxie.instrument_modules prog.Systrace_kernel.Builder.modules)))
  in
  (* stored-trace compression throughput (dump -z path) *)
  let compress_test =
    Test.make
      ~name:
        (Printf.sprintf "compress: pack %d-word trace" (Array.length words))
      (Staged.stage (fun () -> ignore (Tracing.Compress.pack words)))
  in
  let tests = [ interp_test; parse_test; instr_test; compress_test ] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.5) ~kde:(Some 100) ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"systrace" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols (Instance.monotonic_clock) raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        Printf.printf "  %-48s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-48s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", exp_table1);
    ("table2", exp_table2);
    ("figure3", exp_figure3);
    ("table3", exp_table3);
    ("figure2", exp_figure2);
    ("expansion", exp_expansion);
    ("dilation", exp_dilation);
    ("kernel_cpi", exp_kernel_cpi);
    ("distortion", exp_distortion);
    ("buffer_sweep", exp_buffer_sweep);
    ("pagemap", exp_pagemap);
    ("corruption", exp_corruption);
    ("os_structure", exp_os_structure);
    ("drain_ablation", exp_drain_ablation);
    ("trace_format", exp_trace_format);
    ("micro", exp_micro);
  ]

let () =
  match Sys.argv with
  | [| _ |] -> List.iter (fun (_, f) -> f ()) experiments
  | [| _; name |] -> (
    match List.assoc_opt name experiments with
    | Some f -> f ()
    | None ->
      Printf.eprintf "unknown experiment %S; available: %s\n" name
        (String.concat " " (List.map fst experiments));
      exit 1)
  | _ ->
    Printf.eprintf "usage: %s [experiment]\n" Sys.argv.(0);
    exit 1
