(* Scheduler, idle loop and context switch (instrumented kernel code).

   Round-robin over runnable PCBs.  The idle loop is a marked region
   ([kidle_loop, kidle_end)): the machine counts ground-truth idle
   instructions by PC range, and the trace parser counts them through the
   IDLE flag on the loop's basic blocks — the instruction-counting
   mechanism of §3.5 that §5.1 uses to estimate I/O stall time.

   The context switch saves and restores the FPU (the exception stubs do
   not touch it: only a switch clobbers another process's FP state) and,
   under the Mach personality, pre-loads a few mappings with
   tlb_map_random-style explicit TLB writes — which the trace-driven
   simulator cannot see (Table 3's main error source). *)

open Systrace_isa

let make () : Objfile.t =
  let a = Asm.create "ksched" in
  let open Asm in
  let lgv reg sym = la a reg sym; lw a reg 0 reg in
  (* ---------------------------------------------------------------- *)
  (* ksched_and_ret: return to the current process if it is still
     runnable and no resched is pending; otherwise pick the next process
     (or idle until one appears) and switch to it. *)
  global a "ksched_and_ret";
  label a "ksched_and_ret";
  la a Reg.t0 "kresched";
  lw a Reg.t1 0 Reg.t0;
  sw a Reg.zero 0 Reg.t0;
  bnez a Reg.t1 "$pick";
  nop a;
  lgv Reg.t2 "curpcb";
  lw a Reg.t3 Kcfg.pcb_state Reg.t2;
  addiu a Reg.t3 Reg.t3 (-1);
  bnez a Reg.t3 "$pick";
  nop a;
  j_ a "kret_user";
  (* pick the next runnable process, round robin from curpid+1 *)
  label a "$pick";
  lgv Reg.t4 "curpid";
  li a Reg.t5 1;                       (* offset *)
  label a "$pk_loop";
  slti a Reg.t6 Reg.t5 (Kcfg.max_procs + 1);
  beqz a Reg.t6 "$idle";
  nop a;
  addu a Reg.t7 Reg.t4 Reg.t5;
  slti a Reg.t6 Reg.t7 Kcfg.max_procs;
  bnez a Reg.t6 "$pk_nomod";
  nop a;
  addiu a Reg.t7 Reg.t7 (-Kcfg.max_procs);
  label a "$pk_nomod";
  (* pcb = pcbs + t7*384 *)
  sll a Reg.t1 Reg.t7 7;
  sll a Reg.t2 Reg.t7 8;
  addu a Reg.t1 Reg.t1 Reg.t2;
  la a Reg.t2 "pcbs";
  addu a Reg.t1 Reg.t1 Reg.t2;
  lw a Reg.t3 Kcfg.pcb_state Reg.t1;
  addiu a Reg.t3 Reg.t3 (-1);
  i a (Insn.Beq (Reg.t3, Reg.zero, Sym "$found"));
  move a Reg.a0 Reg.t7;                (* delay slot: candidate pid *)
  addiu a Reg.t5 Reg.t5 1;
  j_ a "$pk_loop";
  label a "$found";
  j_ a "kswitch_to";
  (* ------------------------------- idle ---------------------------- *)
  label a "$idle";
  (* interrupts on while idling *)
  i a (Insn.Mfc0 (Reg.t0, C0_status));
  ori a Reg.t0 Reg.t0 1;
  i a (Insn.Mtc0 (Reg.t0, C0_status));
  global a "kidle_loop";
  label a "kidle_loop";
  (* a full analysis switch can be pending with every process asleep *)
  jal a "kanalysis_maybe";
  la a Reg.t0 "pcbs";
  li a Reg.t1 0;
  label a "$id_scan";
  lw a Reg.t2 Kcfg.pcb_state Reg.t0;
  addiu a Reg.t2 Reg.t2 (-1);
  beqz a Reg.t2 "$id_found";
  nop a;
  addiu a Reg.t1 Reg.t1 1;
  slti a Reg.t3 Reg.t1 Kcfg.max_procs;
  i a (Insn.Bne (Reg.t3, Reg.zero, Sym "$id_scan"));
  addiu a Reg.t0 Reg.t0 Kcfg.pcb_size;
  j_ a "kidle_loop";
  label a "$id_found";
  global a "kidle_end";
  label a "kidle_end";
  (* interrupts off again before switching *)
  i a (Insn.Mfc0 (Reg.t4, C0_status));
  addiu a Reg.t5 Reg.zero (-2);
  and_ a Reg.t4 Reg.t4 Reg.t5;
  i a (Insn.Mtc0 (Reg.t4, C0_status));
  move a Reg.a0 Reg.t1;
  j_ a "kswitch_to";
  (* ---------------------------------------------------------------- *)
  (* kswitch_to(a0 = pid): full switch with FPU save/restore.           *)
  global a "kswitch_to";
  label a "kswitch_to";
  (* save the outgoing process's FPU state *)
  lgv Reg.t0 "curpcb";
  for f = 0 to Reg.nfregs - 1 do
    sd a f (Kcfg.pcb_fpregs + (8 * f)) Reg.t0
  done;
  (* FP condition flag via the branch trick *)
  li a Reg.t1 0;
  i a (Insn.Bc1f (Sym "$sw_fcc0"));
  nop a;
  li a Reg.t1 1;
  label a "$sw_fcc0";
  sw a Reg.t1 Kcfg.pcb_fcc Reg.t0;
  j_ a "kswitch_in";
  (* ---------------------------------------------------------------- *)
  (* kswitch_in(a0 = pid): make pid current and return to it.  Also the
     entry point from boot (no outgoing state to save). *)
  global a "kswitch_in";
  label a "kswitch_in";
  la a Reg.t0 "curpid";
  sw a Reg.a0 0 Reg.t0;
  sll a Reg.t1 Reg.a0 7;
  sll a Reg.t2 Reg.a0 8;
  addu a Reg.t1 Reg.t1 Reg.t2;
  la a Reg.t2 "pcbs";
  addu a Reg.t1 Reg.t1 Reg.t2;
  la a Reg.t3 "curpcb";
  sw a Reg.t1 0 Reg.t3;
  (* address-translation context *)
  lw a Reg.t4 Kcfg.pcb_context Reg.t1;
  i a (Insn.Mtc0 (Reg.t4, C0_context));
  lw a Reg.t5 Kcfg.pcb_asid Reg.t1;
  sll a Reg.t5 Reg.t5 6;
  i a (Insn.Mtc0 (Reg.t5, C0_entryhi));
  (* FPU restore: condition flag first (the compare trick uses f0) *)
  i a (Insn.Mtc1 (Reg.zero, 0));
  lw a Reg.t6 Kcfg.pcb_fcc Reg.t1;
  beqz a Reg.t6 "$si_fcc0";
  nop a;
  fcmp a Insn.FEQ 0 0;
  j_ a "$si_fload";
  label a "$si_fcc0";
  fcmp a Insn.FLT 0 0;
  label a "$si_fload";
  for f = 0 to Reg.nfregs - 1 do
    ld a f (Kcfg.pcb_fpregs + (8 * f)) Reg.t1
  done;
  (* Mach: pre-load a few mappings, as tlb_map_random does, and map this
     thread's private trace pages into the shared page table (paper §3.6:
     "context-switching code in the kernel maps the correct per-thread
     pages when a new thread is activated"). *)
  lgv Reg.t7 "kpersonality";
  beqz a Reg.t7 "$si_marker";
  nop a;
  addiu a Reg.sp Reg.sp (-8);
  sw a Reg.ra 4 Reg.sp;
  sw a Reg.a0 0 Reg.sp;
  (* trace-page remap: incoming context's registers are restored from the
     PCB afterwards, so s-registers are free here *)
  lgv Reg.s1 "curpcb";
  lw a Reg.s2 Kcfg.pcb_context Reg.s1;
  li a Reg.t0 (Systrace_tracing.Abi.user_book_va lsr 12);
  sll a Reg.t0 Reg.t0 2;
  addu a Reg.s2 Reg.s2 Reg.t0;         (* PT slot of the book page *)
  lgv Reg.s3 "ktrace_region_pages";
  li a Reg.s4 0;                       (* page index *)
  label a "$si_remap";
  slt a Reg.t0 Reg.s4 Reg.s3;
  beqz a Reg.t0 "$si_dropins";
  nop a;
  sll a Reg.t1 Reg.s4 2;
  addu a Reg.t2 Reg.s1 Reg.t1;
  lw a Reg.t3 Kcfg.pcb_trace_ptes Reg.t2;
  addu a Reg.t4 Reg.s2 Reg.t1;
  sw a Reg.t3 0 Reg.t4;                (* may KTLB-miss; fine *)
  li a Reg.a0 Systrace_tracing.Abi.user_book_va;
  sll a Reg.t5 Reg.s4 12;
  addu a Reg.a0 Reg.a0 Reg.t5;
  jal a "ktlb_purge";
  addiu a Reg.s4 Reg.s4 1;
  j_ a "$si_remap";
  label a "$si_dropins";
  li a Reg.a0 Kcfg.user_text_va;
  jal a "ktlb_dropin";
  li a Reg.a0 Kcfg.user_data_va;
  jal a "ktlb_dropin";
  li a Reg.a0 (Kcfg.user_stack_top - 4096);
  jal a "ktlb_dropin";
  lw a Reg.a0 0 Reg.sp;
  lw a Reg.ra 4 Reg.sp;
  addiu a Reg.sp Reg.sp 8;
  label a "$si_marker";
  (* PID_SWITCH marker for the trace (no-op when tracing is off) *)
  jal a "kmark_pid";
  j_ a "kret_user";
  to_obj a

(* Boot entry: untraced.  The builder has already initialised kernel data;
   we set up the stack, the kernel trace registers, the line clock, and
   switch to the first process. *)
let make_boot ~traced ~clock_interval () : Objfile.t =
  let a = Asm.create ~no_instrument:true "kboot" in
  let open Asm in
  let module A = Systrace_machine.Addr in
  let dev = 0xA0000000 + A.device_base_pa in
  global a "_kboot";
  label a "_kboot";
  la a Reg.sp "kstack_top";
  if traced then begin
    la a Reg.t0 "ktrace_cursor_home";
    lw a Systrace_tracing.Abi.xreg_cursor 0 Reg.t0;
    la a Reg.t0 "ktrace_limit_home";
    lw a Systrace_tracing.Abi.xreg_limit 0 Reg.t0;
    la a Systrace_tracing.Abi.xreg_book Systrace_tracing.Abi.sym_ktrace_book
  end;
  li a Reg.t1 dev;
  li a Reg.t2 clock_interval;
  sw a Reg.t2 A.dev_clock_interval Reg.t1;
  la a Reg.t3 "curpid";
  lw a Reg.a0 0 Reg.t3;
  j_ a "kswitch_in";
  to_obj a
