(* Untraced tracing-system operations: draining user buffers, writing
   markers, and the trace-generation/trace-analysis mode switch.

   All of this is kernel activity "on behalf of the tracing system" and is
   deliberately excluded from the trace (paper, §3.1). *)

open Systrace_isa
open Systrace_tracing

let cursor = Abi.xreg_cursor
let limit = Abi.xreg_limit

let w_mode_analysis = Format_.marker_word (Format_.Mode 1)
let w_mode_generation = Format_.marker_word (Format_.Mode 0)
let w_drain_base = Format_.make_marker Format_.kind_drain 0
let w_pid_base = Format_.make_marker Format_.kind_pid 0

let make ?(drain_on_entry = true) () : Objfile.t =
  let a = Asm.create ~no_instrument:true "ktraceops" in
  let open Asm in
  let lgv reg sym = la a reg sym; lw a reg 0 reg in
  (* ---------------------------------------------------------------- *)
  (* kdrain: copy the current process's trace buffer into the in-kernel
     buffer, bracketed as a DRAIN block, and reset the saved user cursor.
     Called from the entry stub with the kernel trace registers live.
     Preserves a0-a3. Clobbers t0-t6. *)
  global a "kdrain";
  label a "kdrain";
  lgv Reg.t0 "ktrace_on";
  beqz a Reg.t0 "$kd_out";
  lgv Reg.t1 "curpcb";
  lw a Reg.t2 Kcfg.pcb_traced Reg.t1;
  beqz a Reg.t2 "$kd_out";
  (* The interrupted process may be mid-way through a trace write in
     bbtrace/memtrace (slot reserved, word not yet stored): resetting its
     cursor now would corrupt the stream.  Skip the drain when the saved
     EPC lies inside the tracing runtime — EXCEPT for system calls (a0 = 8),
     which are voluntary and always at a safe point: in particular the
     trace-flush syscall bbtrace raises on a full buffer MUST drain. *)
  if not drain_on_entry then begin
    (* Ablation (DESIGN.md 5): flush-only-when-full.  Drain only for the
       voluntary trace-flush syscall; every skipped drain counts the words
       it leaves behind — kernel records written during this entry will
       overtake them in the global stream ("interleaving violations"). *)
    addiu a Reg.t2 Reg.a0 (-8);
    bnez a Reg.t2 "$kd_skip";             (* not a syscall: skip + count *)
    nop a;
    lw a Reg.t2 (Kcfg.pcb_reg 2) Reg.t1;  (* saved $v0 = syscall number *)
    addiu a Reg.t6 Reg.t2 (-Abi.sys_trace_flush);
    beqz a Reg.t6 "$kd_safe";             (* full buffer: must drain *)
    nop a;
    addiu a Reg.t6 Reg.t2 (-Abi.sys_exit);
    beqz a Reg.t6 "$kd_safe";             (* exiting: last chance to drain *)
    nop a;
    label a "$kd_skip";
    lw a Reg.t3 (Kcfg.pcb_reg cursor) Reg.t1;
    li a Reg.t4 Abi.user_buf_va;
    subu a Reg.t3 Reg.t3 Reg.t4;
    srl a Reg.t3 Reg.t3 2;
    la a Reg.t4 "kstat_displaced";
    lw a Reg.t5 0 Reg.t4;
    addu a Reg.t5 Reg.t5 Reg.t3;
    i a (Insn.J (Sym "$kd_out"));
    sw a Reg.t5 0 Reg.t4
  end;
  addiu a Reg.t2 Reg.a0 (-8);
  beqz a Reg.t2 "$kd_safe";
  nop a;
  lw a Reg.t2 Kcfg.pcb_epc Reg.t1;
  lw a Reg.t5 Kcfg.pcb_trt_lo Reg.t1;
  sltu a Reg.t6 Reg.t2 Reg.t5;
  bnez a Reg.t6 "$kd_safe";
  lw a Reg.t5 Kcfg.pcb_trt_hi Reg.t1;
  sltu a Reg.t6 Reg.t2 Reg.t5;
  bnez a Reg.t6 "$kd_out";
  nop a;
  label a "$kd_safe";
  (* t3 = saved user cursor, t4 = buffer base *)
  lw a Reg.t3 (Kcfg.pcb_reg cursor) Reg.t1;
  li a Reg.t4 Abi.user_buf_va;
  beq a Reg.t3 Reg.t4 "$kd_out";
  (* DRAIN marker | pid, then the word count *)
  li a Reg.t5 w_drain_base;
  lgv Reg.t6 "curpid";
  or_ a Reg.t5 Reg.t5 Reg.t6;
  sw a Reg.t5 0 cursor;
  addiu a cursor cursor 4;
  subu a Reg.t6 Reg.t3 Reg.t4;
  srl a Reg.t6 Reg.t6 2;
  sw a Reg.t6 0 cursor;
  addiu a cursor cursor 4;
  (* copy loop (reads user VAs through the current ASID) *)
  label a "$kd_loop";
  beq a Reg.t4 Reg.t3 "$kd_done";
  nop a;
  lw a Reg.t5 0 Reg.t4;
  sw a Reg.t5 0 cursor;
  addiu a Reg.t4 Reg.t4 4;
  i a (Insn.J (Sym "$kd_loop"));
  addiu a cursor cursor 4;
  label a "$kd_done";
  (* reset the saved user cursor *)
  li a Reg.t4 Abi.user_buf_va;
  sw a Reg.t4 (Kcfg.pcb_reg cursor) Reg.t1;
  label a "$kd_out";
  ret a;
  (* ---------------------------------------------------------------- *)
  (* kmark_pid: write a PID_SWITCH marker (a0 = pid). Clobbers t0/t1. *)
  global a "kmark_pid";
  label a "kmark_pid";
  lgv Reg.t0 "ktrace_on";
  beqz a Reg.t0 "$km_out";
  (* interrupts off around the cursor update (see the kernel runtime) *)
  i a (Insn.Mfc0 (Reg.t2, C0_status));
  andi a Reg.t3 Reg.t2 0xFFFE;
  i a (Insn.Mtc0 (Reg.t3, C0_status));
  li a Reg.t1 w_pid_base;
  or_ a Reg.t1 Reg.t1 Reg.a0;
  addiu a cursor cursor 4;            (* reserve, then fill *)
  sw a Reg.t1 (-4) cursor;
  i a (Insn.Mtc0 (Reg.t2, C0_status));
  label a "$km_out";
  ret a;
  (* ---------------------------------------------------------------- *)
  (* kanalysis_maybe: if the in-kernel buffer has passed its high-water
     mark, switch to trace-analysis mode: turn kernel tracing off (the
     cursor runs in the discard page), hand the buffer to the host-side
     analysis program in chunks, spinning between chunks so that device
     activity keeps happening (and is lost — the "dirt" of §4.3), then
     reset the buffer and return to trace-generation mode.
     Called with interrupts enabled; returns with them disabled. *)
  global a "kanalysis_maybe";
  label a "kanalysis_maybe";
  lgv Reg.t0 Abi.sym_ktrace_need;
  bnez a Reg.t0 "$ka_go";
  nop a;
  ret a;
  label a "$ka_go";
  (* interrupts off while swapping trace state *)
  i a (Insn.Mfc0 (Reg.t2, C0_status));
  addiu a Reg.t3 Reg.zero (-2);
  and_ a Reg.t4 Reg.t2 Reg.t3;
  i a (Insn.Mtc0 (Reg.t4, C0_status));
  (* close the generation phase *)
  li a Reg.t3 w_mode_analysis;
  sw a Reg.t3 0 cursor;
  addiu a cursor cursor 4;
  la a Reg.t4 "ktrace_saved_cursor";
  sw a cursor 0 Reg.t4;
  la a Reg.t4 "ktrace_on";
  sw a Reg.zero 0 Reg.t4;
  lgv cursor "ktrace_discard_base";
  lgv limit "ktrace_discard_end";
  (* interrupts back on for the analysis loop *)
  i a (Insn.Mtc0 (Reg.t2, C0_status));
  label a "$ka_loop";
  hcall a Abi.hc_analyze;       (* v0 = words remaining, v1 = spin count *)
  beqz a Reg.v0 "$ka_done";
  nop a;
  label a "$ka_spin";
  addiu a Reg.v1 Reg.v1 (-1);
  bgtz a Reg.v1 "$ka_spin";
  j_ a "$ka_loop";
  label a "$ka_done";
  (* interrupts off; back to generation mode *)
  i a (Insn.Mfc0 (Reg.t2, C0_status));
  addiu a Reg.t3 Reg.zero (-2);
  and_ a Reg.t2 Reg.t2 Reg.t3;
  i a (Insn.Mtc0 (Reg.t2, C0_status));
  lgv cursor "ktrace_buf_base";
  li a Reg.t3 w_mode_generation;
  sw a Reg.t3 0 cursor;
  addiu a cursor cursor 4;
  lgv limit "ktrace_real_limit";
  la a Reg.t4 "ktrace_on";
  li a Reg.t3 1;
  sw a Reg.t3 0 Reg.t4;
  la a Reg.t4 Abi.sym_ktrace_need;
  sw a Reg.zero 0 Reg.t4;
  ret a;
  to_obj a
