(** Untraced tracing-system operations (excluded from the trace, paper
    §3.1): draining user trace buffers into the in-kernel buffer
    ([kdrain]), PID_SWITCH markers ([kmark_pid]), and the
    trace-generation/trace-analysis mode switch ([kanalysis_maybe],
    §4.3). *)

val make : ?drain_on_entry:bool -> unit -> Systrace_isa.Objfile.t
(** [~drain_on_entry:false] is the flush-only-when-full ablation
    (DESIGN.md §5): user buffers drain only on the trace-flush syscall
    and at process exit, and each skipped drain adds the words it leaves
    behind to the [kstat_displaced] counter. *)
