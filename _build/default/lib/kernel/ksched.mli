(** Scheduler and boot: round-robin [ksched_and_ret] with the marked
    idle loop (paper §5's idle accounting) and the analysis-mode check,
    FPU-saving context switch, Mach per-thread trace-page remapping at
    switch-in (§3.6), and the boot module that initialises devices and
    starts pid 0. *)

val make : unit -> Systrace_isa.Objfile.t

val make_boot :
  traced:bool -> clock_interval:int -> unit -> Systrace_isa.Objfile.t
