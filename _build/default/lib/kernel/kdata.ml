(* Kernel data section: every global variable and table the kernel uses.
   Most structures are initialised by the boot builder poking words into
   the loaded image (playing the role of boot firmware); the labels here
   define the layout. *)

open Systrace_isa

let make ~nbufs : Objfile.t =
  let a = Asm.create ~no_instrument:true "kdata" in
  let open Asm in
  let var ?(init = 0) name =
    global a name;
    dlabel a name;
    word a init
  in
  let arr name bytes =
    global a name;
    align a 8;
    dlabel a name;
    space a bytes
  in
  (* Exception-stub spill slot for $k1 (general vector entry) *)
  var "ksave_k1";
  (* Scheduling state *)
  var "curpid";
  var "curpcb";
  var "kresched";
  var "kticks";
  var "kzombies";
  var "knworkload";
  var "kpersonality";        (* 0 = Ultrix, 1 = Mach *)
  var "ktlbdropins";         (* explicit TLB writes, Table 3 commentary *)
  arr "pcbs" (Kcfg.max_procs * Kcfg.pcb_size);
  (* kseg2 root page table *)
  arr "kroot" (Kcfg.kseg2_span_pages * 4);
  (* Kernel stack (single: syscalls never sleep holding stack state) *)
  arr "kstack" 16384;
  global a "kstack_top";
  dlabel a "kstack_top";
  word a 0;
  (* Tracing control *)
  var "ktrace_on";
  var Systrace_tracing.Abi.sym_ktrace_need;
  var "ktrace_depth";
  var "ktrace_buf_base";          (* kseg0 VA of the in-kernel buffer *)
  var "ktrace_cursor_home";       (* cursor parked while user runs *)
  var "ktrace_limit_home";
  var "ktrace_real_limit";
  var "ktrace_saved_cursor";      (* extent handed to the analysis host *)
  var "ktrace_discard_base";
  var "ktrace_discard_end";
  arr Systrace_tracing.Abi.sym_ktrace_book
    (8 * Systrace_tracing.Abi.book_size);
  arr "ktrace_discard" 4096;
  (* Files: name(16) | start_block | size *)
  arr "filetab" (Kcfg.max_files * Kcfg.file_entry_size);
  var "nfiles";
  (* Buffer cache *)
  arr "bufhdrs" (nbufs * Kcfg.buf_entry_size);
  var "knbufs" ~init:nbufs;
  arr "bufpages" (nbufs * 4096);
  (* Raw disk request table (Mach UX server path) *)
  arr "kdiskreq" (8 * 8);         (* 8 x { block; state } *)
  (* Mach message rendezvous: valid | client | args[4] *)
  arr "kmsg" 32;
  var "kserver_pid" ~init:(-1);
  (* Cross-address-space copy bounce buffer *)
  arr "kbounce" 4096;
  (* Frame bump allocator (Mach trace pages) *)
  var "kframe_next";
  (* Extent of the per-process trace region (book page + buffer pages),
     for the Mach trace-page fault path. *)
  var "ktrace_region_end";
  var "ktrace_region_pages";
  (* words overtaken by kernel records when entry drains are disabled
     (drain_on_entry ablation) *)
  var "kstat_displaced";
  to_obj a
