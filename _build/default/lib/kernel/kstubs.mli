(** Exception vectors and kernel entry/exit stubs — the heart of the
    traced system (paper §3.1/§3.3): the 8-instruction UTLB refill with
    the double-miss (parked-EPC) protocol, the KTLB fast path, context
    save/restore to the PCB, the per-nesting-level bookkeeping frames for
    the stolen trace registers, EXC_ENTER/EXC_EXIT markers around nested
    kernel activity, and the drain of the interrupted process's trace
    buffer on kernel entry. *)

val make : traced:bool -> Systrace_isa.Objfile.t
