(* Kernel layout constants, shared between the assembly emitters and the
   host-side boot builder.  Everything the kernel's assembly and the
   builder's memory pokes must agree on lives here. *)

let max_procs = 8
let max_files = 16
let max_fds = 8
let nbufs = 32

(* ------------------------------------------------------------------ *)
(* PCB layout (byte offsets within one PCB)                             *)

let pcb_regs = 0                    (* 32 words: saved GPRs *)
let pcb_epc = 128
let pcb_status = 132
let pcb_state = 136                 (* 0 free, 1 runnable, 2 blocked, 3 zombie *)
let pcb_traced = 140
let pcb_waitchan = 144              (* disk block the process waits on, or -1 *)
let pcb_brk = 148                   (* heap break VA *)
let pcb_context = 152               (* CP0 context value: PT base in kseg2 *)
let pcb_asid = 156
let pcb_exitcode = 160
let pcb_fds = 164                   (* max_fds x { file id; position } *)
let pcb_fd_stride = 8
(* Under Mach, file descriptors live in the UX server, so the fd area is
   reused for thread support (paper §3.6): the PTEs of this thread's
   private trace pages, remapped into the shared page table at every
   context switch, plus a thread flag. *)
let pcb_trace_ptes = 164            (* up to 6 PTE words *)
let pcb_trt_lo = 228                (* tracing-runtime text range: drains *)
let pcb_trt_hi = 232                (* are skipped when EPC is inside it *)
let pcb_is_thread = 236
let pcb_fpregs = 240                (* 16 doubles, 8-aligned *)
let pcb_fcc = 368
let pcb_size = 384

let pcb_reg r = pcb_regs + (4 * r)

(* ------------------------------------------------------------------ *)
(* File table entry (the "filesystem": named disk extents)              *)

let file_name = 0                   (* 16 bytes, NUL padded *)
let file_start_block = 16
let file_size_bytes = 20
let file_entry_size = 24

(* ------------------------------------------------------------------ *)
(* Buffer cache entry                                                   *)

let buf_block = 0                   (* disk block number, -1 = empty *)
let buf_state = 4                   (* 0 empty, 1 valid, 2 reading, 3 writing *)
let buf_dirty = 8
let buf_page = 12                   (* kseg0 address of the 4KB data page *)
let buf_lru = 16                    (* last-touch tick for eviction *)
let buf_entry_size = 20

(* ------------------------------------------------------------------ *)
(* Exception frame (from-kernel nesting), pushed on the kernel stack    *)

let exc_regs = 0                    (* 32 words; t8/t9 slots unused *)
let exc_epc = 128
let exc_status = 132
let exc_marker = 136                (* 1 = EXC_ENTER marker was written *)
let exc_frame_size = 144

(* ------------------------------------------------------------------ *)
(* Physical memory map                                                  *)

let kernel_text_pa = 0x0
let kernel_text_va = 0x80000000
(* Kernel data is linked right after text; the builder reads the actual
   extent from the linked image.  These are the fixed regions: *)
let ktrace_buf_pa = 0x0020_0000     (* in-kernel trace buffer *)
let ktrace_buf_bytes_default = 4 * 1024 * 1024
let ktrace_slack_bytes = 128 * 1024 (* high-water margin *)
let frames_base_pa = 0x0060_0000    (* user/PT frame allocator region *)
let frames_limit_pa = 0x0100_0000

(* ------------------------------------------------------------------ *)
(* Virtual layout                                                       *)

let user_text_va = 0x0040_0000
let user_data_va = 0x1000_0000
let user_stack_top = 0x7FFF_E000
let user_stack_pages = 4
(* Trace pages: see Systrace_tracing.Abi (book at 0x7E000000). *)

(* Per-process linear page tables in kseg2, 2MB apart (so the PTEbase
   field of the Context register can address them directly). *)
let pt_stride = 0x0020_0000
let pt_base_va pid = 0xC000_0000 + (pid * pt_stride)

(* kseg2 root table: one PTE per kseg2 page the kernel can map. *)
let kseg2_span_pages = 4096         (* 16 MB of kseg2 *)

(* ------------------------------------------------------------------ *)
(* Fixed low-kseg0 slots used by the exception stubs (reachable with a
   single lui). *)

let ksave_k1 = 0x8000_0F00          (* saved $k1 across the general stub *)
let kstub_scratch = 0x8000_0F04     (* scratch for stub flag tests *)

(* The vector page is 0x0 - 0x1000; stub code must stay below these. *)

(* ------------------------------------------------------------------ *)
(* Syscall numbers re-exported for workloads *)

let sys_exit = Systrace_tracing.Abi.sys_exit
let sys_write = Systrace_tracing.Abi.sys_write
let sys_read = Systrace_tracing.Abi.sys_read
let sys_open = Systrace_tracing.Abi.sys_open
let sys_sbrk = Systrace_tracing.Abi.sys_sbrk
let sys_yield = Systrace_tracing.Abi.sys_yield
let sys_gettime = Systrace_tracing.Abi.sys_gettime
let sys_trace_flush = Systrace_tracing.Abi.sys_trace_flush
let sys_trace_ctl = Systrace_tracing.Abi.sys_trace_ctl

(* Mach personality: file syscalls are forwarded to the UX server via a
   simple message rendezvous; these syscalls implement the server side. *)
let sys_server_recv = 16            (* UX server: wait for a request *)
let sys_server_reply = 17           (* UX server: reply to a request *)
let sys_disk_read = 18              (* low-level block read (server only) *)
let sys_disk_write = 19             (* low-level block write (server only) *)
let sys_thread_create = 22          (* Mach: thread in the caller's task *)

type personality = Ultrix | Mach | Tunix

let personality_name = function
  | Ultrix -> "ultrix"
  | Mach -> "mach"
  | Tunix -> "tunix"

(* Page-mapping policy (paper, §4.2): careful = page colouring against the
   cache; random = Mach 3.0's random frame selection. *)
type pagemap = Careful | Random

let clock_interval_default = 100_000 (* ~256 Hz at 25 MHz *)
let time_dilation = 15               (* paper's slowdown factor *)
