(** Trap dispatch and the system-call table: syscall entry with
    sleep/retry/exit dispositions, interrupt entry, the KTLB long path
    with Mach's trace-page fault allocation, TLB purge/dropin, and every
    system call of both personalities (including the Mach message path:
    forward/server_recv/reply/copyin/copyout and thread creation). *)

val make : unit -> Systrace_isa.Objfile.t
