lib/kernel/kstubs.mli: Systrace_isa
