lib/kernel/kcfg.ml: Systrace_tracing
