lib/kernel/ksched.mli: Systrace_isa
