lib/kernel/khandlers.ml: Abi Asm Insn Kcfg Objfile Reg Systrace_isa Systrace_machine Systrace_tracing
