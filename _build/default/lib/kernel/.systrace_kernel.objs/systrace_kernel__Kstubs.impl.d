lib/kernel/kstubs.ml: Abi Asm Format_ Fun Insn Kcfg List Objfile Reg Systrace_isa Systrace_tracing
