lib/kernel/ktraceops.mli: Systrace_isa
