lib/kernel/kdata.mli: Systrace_isa
