lib/kernel/ksched.ml: Asm Insn Kcfg Objfile Reg Systrace_isa Systrace_machine Systrace_tracing
