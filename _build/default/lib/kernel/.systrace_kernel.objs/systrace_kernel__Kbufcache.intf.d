lib/kernel/kbufcache.mli: Systrace_isa
