lib/kernel/ktraceops.ml: Abi Asm Format_ Insn Kcfg Objfile Reg Systrace_isa Systrace_tracing
