lib/kernel/khandlers.mli: Systrace_isa
