lib/kernel/kdata.ml: Asm Kcfg Objfile Systrace_isa Systrace_tracing
