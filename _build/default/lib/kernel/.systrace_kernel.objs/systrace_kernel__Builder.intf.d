lib/kernel/builder.mli: Bbtable Exe Kcfg Machine Objfile Systrace_isa Systrace_machine Systrace_tracing Systrace_util
