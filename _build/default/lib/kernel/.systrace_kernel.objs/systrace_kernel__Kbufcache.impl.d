lib/kernel/kbufcache.ml: Asm Insn Kcfg Objfile Reg Systrace_isa Systrace_machine
