(** The kernel's data segment: PCBs, run queue, kernel stack, trace
    buffer headers and state variables, buffer cache headers and pages,
    file table, Mach message rendezvous and bounce buffer, and the
    counters the experiments read back with {!Builder.peek}. *)

val make : nbufs:int -> Systrace_isa.Objfile.t
