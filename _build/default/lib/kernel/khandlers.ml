(* Kernel exception dispatch, system calls, interrupts, and the Mach
   message path.  All of this module is instrumented when the kernel is
   traced — it is the "system activity" whose addresses the tracing system
   exists to capture. *)

open Systrace_isa
open Systrace_tracing

let dev_kseg1 = 0xA0000000 + Systrace_machine.Addr.device_base_pa

let nsyscalls = 23

let make () : Objfile.t =
  let a = Asm.create "khandlers" in
  let open Asm in
  let lgv reg sym = la a reg sym; lw a reg 0 reg in
  let module A = Systrace_machine.Addr in
  (* ---------------------------------------------------------------- *)
  (* kdispatch: a0 = exception code, a1 = badvaddr, a2 = from_user      *)
  global a "kdispatch";
  label a "kdispatch";
  beqz a Reg.a0 "kintr_entry";
  addiu a Reg.t0 Reg.a0 (-8);
  beqz a Reg.t0 "ksyscall_entry";
  addiu a Reg.t0 Reg.a0 (-2);
  beqz a Reg.t0 "ktrap_tlb";
  addiu a Reg.t0 Reg.a0 (-3);
  beqz a Reg.t0 "ktrap_tlb";
  j_ a "kpanic";
  (* ---------------------------------------------------------------- *)
  (* System call entry                                                 *)
  global a "ksyscall_entry";
  label a "ksyscall_entry";
  (* enable interrupts while in the top half *)
  i a (Insn.Mfc0 (Reg.t0, C0_status));
  ori a Reg.t0 Reg.t0 1;
  i a (Insn.Mtc0 (Reg.t0, C0_status));
  lgv Reg.s0 "curpcb";
  (* skip the syscall instruction *)
  lw a Reg.t1 Kcfg.pcb_epc Reg.s0;
  addiu a Reg.t1 Reg.t1 4;
  sw a Reg.t1 Kcfg.pcb_epc Reg.s0;
  (* fetch number and arguments from the saved context *)
  lw a Reg.t2 (Kcfg.pcb_reg Reg.v0) Reg.s0;
  lw a Reg.a0 (Kcfg.pcb_reg Reg.a0) Reg.s0;
  lw a Reg.a1 (Kcfg.pcb_reg Reg.a1) Reg.s0;
  lw a Reg.a2 (Kcfg.pcb_reg Reg.a2) Reg.s0;
  lw a Reg.a3 (Kcfg.pcb_reg Reg.a3) Reg.s0;
  sltiu a Reg.t3 Reg.t2 nsyscalls;
  beqz a Reg.t3 "$sys_bad";
  la a Reg.t4 "ksys_table";
  sll a Reg.t5 Reg.t2 2;
  addu a Reg.t4 Reg.t4 Reg.t5;
  lw a Reg.t4 0 Reg.t4;
  jalr a Reg.t4;
  (* v0 = result, v1 = disposition: 0 normal, 1 retry-block,
     2 sleep-block, 3 exited *)
  lgv Reg.s0 "curpcb";
  addiu a Reg.t0 Reg.v1 (-1);
  beqz a Reg.t0 "$sys_retry";
  addiu a Reg.t0 Reg.v1 (-3);
  beqz a Reg.t0 "$sys_exited";
  nop a;
  (* normal & sleep-block: store the result *)
  sw a Reg.v0 (Kcfg.pcb_reg Reg.v0) Reg.s0;
  addiu a Reg.t0 Reg.v1 (-2);
  bnez a Reg.t0 "$sys_done";
  li a Reg.t1 2;
  sw a Reg.t1 Kcfg.pcb_state Reg.s0;
  j_ a "$sys_done";
  label a "$sys_retry";
  (* rewind the epc so the syscall re-executes when the process wakes *)
  lw a Reg.t1 Kcfg.pcb_epc Reg.s0;
  addiu a Reg.t1 Reg.t1 (-4);
  sw a Reg.t1 Kcfg.pcb_epc Reg.s0;
  li a Reg.t1 2;
  sw a Reg.t1 Kcfg.pcb_state Reg.s0;
  label a "$sys_exited";
  label a "$sys_done";
  j_ a "ksched_and_ret";
  label a "$sys_bad";
  li a Reg.v0 (-1);
  sw a Reg.v0 (Kcfg.pcb_reg Reg.v0) Reg.s0;
  j_ a "ksched_and_ret";
  (* ---------------------------------------------------------------- *)
  (* Interrupts                                                        *)
  global a "kintr_entry";
  label a "kintr_entry";
  move a Reg.s1 Reg.a2;
  addiu a Reg.sp Reg.sp (-8);
  sw a Reg.ra 4 Reg.sp;
  i a (Insn.Mfc0 (Reg.t0, C0_cause));
  srl a Reg.t1 Reg.t0 8;
  andi a Reg.t2 Reg.t1 (1 lsl A.irq_clock);
  beqz a Reg.t2 "$no_clock";
  li a Reg.t3 dev_kseg1;
  sw a Reg.zero A.dev_clock_ack Reg.t3;
  la a Reg.t4 "kticks";
  lw a Reg.t5 0 Reg.t4;
  addiu a Reg.t5 Reg.t5 1;
  sw a Reg.t5 0 Reg.t4;
  (* preemption: only user-level execution is preemptible *)
  beqz a Reg.s1 "$no_clock";
  la a Reg.t4 "kresched";
  li a Reg.t5 1;
  sw a Reg.t5 0 Reg.t4;
  label a "$no_clock";
  andi a Reg.t2 Reg.t1 (1 lsl A.irq_disk);
  beqz a Reg.t2 "$no_disk";
  nop a;
  jal a "kdisk_intr";
  label a "$no_disk";
  lw a Reg.ra 4 Reg.sp;
  addiu a Reg.sp Reg.sp 8;
  beqz a Reg.s1 "$intr_to_kernel";
  nop a;
  j_ a "ksched_and_ret";
  label a "$intr_to_kernel";
  j_ a "kret_kernel";
  (* ---------------------------------------------------------------- *)
  (* TLB invalid faults: under Mach, the first touch of the per-process
     trace pages allocates them (§3.6); anything else is fatal for our
     workloads. *)
  global a "ktrap_tlb";
  label a "ktrap_tlb";
  beqz a Reg.a2 "kpanic";
  nop a;
  lgv Reg.t0 "kpersonality";
  beqz a Reg.t0 "kpanic";
  nop a;
  li a Reg.t1 Abi.user_book_va;
  sltu a Reg.t2 Reg.a1 Reg.t1;
  bnez a Reg.t2 "kpanic";
  nop a;
  la a Reg.t3 "ktrace_region_end";
  lw a Reg.t3 0 Reg.t3;
  sltu a Reg.t2 Reg.a1 Reg.t3;
  beqz a Reg.t2 "kpanic";
  nop a;
  j_ a "ktrace_page_alloc";
  (* ---------------------------------------------------------------- *)
  global a "kpanic";
  label a "kpanic";
  hcall a Abi.hc_panic;
  j_ a "kpanic";
  (* ---------------------------------------------------------------- *)
  (* Mach trace-page allocation: map the book page and buffer pages with
     fresh frames, flush any stale (invalid) TLB entries for them, and
     mark the process traced. *)
  global a "ktrace_page_alloc";
  label a "ktrace_page_alloc";
  addiu a Reg.sp Reg.sp (-16);
  sw a Reg.ra 12 Reg.sp;
  sw a Reg.s0 8 Reg.sp;
  sw a Reg.s1 4 Reg.sp;
  lgv Reg.s0 "curpcb";
  (* s1 = page VA iterator; t6 = pages remaining *)
  li a Reg.s1 Abi.user_book_va;
  lgv Reg.t6 "ktrace_region_pages";
  label a "$tpa_loop";
  blez a Reg.t6 "$tpa_done";
  sw a Reg.t6 0 Reg.sp;                 (* spill counter across calls *)
  (* pte = (kframe_next++ << 12) | D | V *)
  la a Reg.t0 "kframe_next";
  lw a Reg.t1 0 Reg.t0;
  addiu a Reg.t2 Reg.t1 1;
  sw a Reg.t2 0 Reg.t0;
  sll a Reg.t3 Reg.t1 12;
  ori a Reg.t3 Reg.t3 0x600;            (* D|V *)
  (* PT slot = context + vpn*4 *)
  lw a Reg.t4 Kcfg.pcb_context Reg.s0;
  srl a Reg.t5 Reg.s1 12;
  sll a Reg.t5 Reg.t5 2;
  addu a Reg.t4 Reg.t4 Reg.t5;
  sw a Reg.t3 0 Reg.t4;                 (* may KTLB-miss; fine *)
  (* remember this thread's PTE so context switches can remap it (§3.6) *)
  li a Reg.t4 Abi.user_book_va;
  subu a Reg.t4 Reg.s1 Reg.t4;
  srl a Reg.t4 Reg.t4 12;
  sll a Reg.t4 Reg.t4 2;
  addu a Reg.t4 Reg.t4 Reg.s0;
  sw a Reg.t3 Kcfg.pcb_trace_ptes Reg.t4;
  (* purge any stale invalid entry *)
  move a Reg.a0 Reg.s1;
  jal a "ktlb_purge";
  lw a Reg.t6 0 Reg.sp;
  addiu a Reg.t6 Reg.t6 (-1);
  li a Reg.t0 0x1000;
  i a (Insn.J (Sym "$tpa_loop"));
  addu a Reg.s1 Reg.s1 Reg.t0;
  label a "$tpa_done";
  li a Reg.t0 1;
  sw a Reg.t0 Kcfg.pcb_traced Reg.s0;
  lw a Reg.ra 12 Reg.sp;
  lw a Reg.s0 8 Reg.sp;
  lw a Reg.s1 4 Reg.sp;
  addiu a Reg.sp Reg.sp 16;
  (* retry the faulting instruction *)
  j_ a "ksched_and_ret";
  (* ---------------------------------------------------------------- *)
  (* ktlb_purge(a0 = va): drop any TLB entry for va under the current
     ASID. Clobbers t0-t5. *)
  global a "ktlb_purge";
  label a "ktlb_purge";
  i a (Insn.Mfc0 (Reg.t0, C0_entryhi));  (* save (for the ASID) *)
  andi a Reg.t1 Reg.t0 0xFC0;
  srl a Reg.t2 Reg.a0 12;
  sll a Reg.t2 Reg.t2 12;
  or_ a Reg.t2 Reg.t2 Reg.t1;
  i a (Insn.Mtc0 (Reg.t2, C0_entryhi));
  tlbp a;
  i a (Insn.Mfc0 (Reg.t3, C0_index));
  bltz a Reg.t3 "$pg_out";
  nop a;
  (* park the entry on an impossible vpn (kseg1 is never mapped) *)
  lui a Reg.t4 0xA000;
  sll a Reg.t5 Reg.t3 4;                (* index<<8 -> vpn slot <<12 *)
  or_ a Reg.t4 Reg.t4 Reg.t5;
  i a (Insn.Mtc0 (Reg.t4, C0_entryhi));
  i a (Insn.Mtc0 (Reg.zero, C0_entrylo));
  tlbwi a;
  label a "$pg_out";
  i a (Insn.Mtc0 (Reg.t0, C0_entryhi));
  ret a;
  (* ---------------------------------------------------------------- *)
  (* ktlb_dropin(a0 = va): explicitly install the mapping for va, as
     Ultrix's tlbdropin() / Mach's tlb_map_random() do.  These TLB writes
     are invisible to the trace-driven simulator and are a known source of
     error in Table 3. Clobbers t0-t6, a0. *)
  global a "ktlb_dropin";
  label a "ktlb_dropin";
  addiu a Reg.sp Reg.sp (-8);
  sw a Reg.ra 4 Reg.sp;
  sw a Reg.a0 0 Reg.sp;
  jal a "ktlb_purge";
  lw a Reg.a0 0 Reg.sp;
  (* pte = PT[vpn] *)
  lgv Reg.t0 "curpcb";
  lw a Reg.t1 Kcfg.pcb_context Reg.t0;
  srl a Reg.t2 Reg.a0 12;
  sll a Reg.t3 Reg.t2 2;
  addu a Reg.t1 Reg.t1 Reg.t3;
  lw a Reg.t4 0 Reg.t1;                 (* may KTLB-miss *)
  (* entryhi = vpn | current asid *)
  i a (Insn.Mfc0 (Reg.t5, C0_entryhi));
  andi a Reg.t6 Reg.t5 0xFC0;
  sll a Reg.t2 Reg.t2 12;
  or_ a Reg.t2 Reg.t2 Reg.t6;
  i a (Insn.Mtc0 (Reg.t2, C0_entryhi));
  i a (Insn.Mtc0 (Reg.t4, C0_entrylo));
  nop a;
  tlbwr a;
  i a (Insn.Mtc0 (Reg.t5, C0_entryhi));
  la a Reg.t0 "ktlbdropins";
  lw a Reg.t1 0 Reg.t0;
  addiu a Reg.t1 Reg.t1 1;
  sw a Reg.t1 0 Reg.t0;
  lw a Reg.ra 4 Reg.sp;
  i a (Insn.Jr Reg.ra);
  addiu a Reg.sp Reg.sp 8;  (* delay slot *)
  (* ---------------------------------------------------------------- *)
  (* Syscall implementations                                           *)
  (* -- exit(code) -- *)
  func a "ksys_exit" ~frame:0 ~saves:[] (fun () ->
      lgv Reg.t0 "curpcb";
      sw a Reg.a0 Kcfg.pcb_exitcode Reg.t0;
      li a Reg.t1 3;
      sw a Reg.t1 Kcfg.pcb_state Reg.t0;
      (* threads die quietly: only original workload processes count
         toward the all-exited shutdown *)
      lw a Reg.t5 Kcfg.pcb_is_thread Reg.t0;
      bnez a Reg.t5 "$exit_more";
      nop a;
      la a Reg.t2 "kzombies";
      lw a Reg.t3 0 Reg.t2;
      addiu a Reg.t3 Reg.t3 1;
      sw a Reg.t3 0 Reg.t2;
      lgv Reg.t4 "knworkload";
      bne a Reg.t3 Reg.t4 "$exit_more";
      nop a;
      hcall a Abi.hc_exit_all;
      label a "$exit_more";
      li a Reg.v0 0;
      li a Reg.v1 3);
  (* -- write(fd, buf, len) -- *)
  func a "ksys_write" ~frame:0 ~saves:[] (fun () ->
      slti a Reg.t0 Reg.a0 3;
      beqz a Reg.t0 "$w_file";
      nop a;
      (* console: byte loop to the device *)
      li a Reg.t1 dev_kseg1;
      move a Reg.t2 Reg.a1;
      addu a Reg.t3 Reg.a1 Reg.a2;
      label a "$w_loop";
      beq a Reg.t2 Reg.t3 "$w_done";
      nop a;
      lbu a Reg.t4 0 Reg.t2;
      sw a Reg.t4 A.dev_console_tx Reg.t1;
      i a (Insn.J (Sym "$w_loop"));
      addiu a Reg.t2 Reg.t2 1;
      label a "$w_done";
      move a Reg.v0 Reg.a2;
      li a Reg.v1 0;
      j_ a "ksys_write$epilogue";
      label a "$w_file";
      lgv Reg.t5 "kpersonality";
      bnez a Reg.t5 "$w_mach";
      nop a;
      jal a "kwrite_file";
      j_ a "ksys_write$epilogue";
      label a "$w_mach";
      li a Reg.a3 Abi.sys_write;
      jal a "kforward");
  (* -- read(fd, buf, len) -- *)
  func a "ksys_read" ~frame:0 ~saves:[] (fun () ->
      lgv Reg.t0 "kpersonality";
      bnez a Reg.t0 "$r_mach";
      nop a;
      jal a "kread_file";
      j_ a "ksys_read$epilogue";
      label a "$r_mach";
      li a Reg.a3 Abi.sys_read;
      jal a "kforward");
  (* -- open(path) -- *)
  func a "ksys_open" ~frame:0 ~saves:[] (fun () ->
      lgv Reg.t0 "kpersonality";
      bnez a Reg.t0 "$o_mach";
      nop a;
      jal a "kopen_file";
      j_ a "ksys_open$epilogue";
      label a "$o_mach";
      li a Reg.a3 Abi.sys_open;
      jal a "kforward");
  (* -- sbrk(n) -- *)
  func a "ksys_sbrk" ~frame:0 ~saves:[ Reg.s0 ] (fun () ->
      lgv Reg.t0 "curpcb";
      lw a Reg.s0 Kcfg.pcb_brk Reg.t0;
      addu a Reg.t1 Reg.s0 Reg.a0;
      sw a Reg.t1 Kcfg.pcb_brk Reg.t0;
      (* Ultrix drops the first new page's mapping straight into the TLB *)
      lgv Reg.t2 "kpersonality";
      bnez a Reg.t2 "$sbrk_nodrop";
      nop a;
      move a Reg.a0 Reg.s0;
      jal a "ktlb_dropin";
      label a "$sbrk_nodrop";
      move a Reg.v0 Reg.s0;
      li a Reg.v1 0);
  (* -- yield -- *)
  func a "ksys_yield" ~frame:0 ~saves:[] (fun () ->
      la a Reg.t0 "kresched";
      li a Reg.t1 1;
      sw a Reg.t1 0 Reg.t0;
      li a Reg.v0 0;
      li a Reg.v1 0);
  (* -- gettime -- *)
  func a "ksys_gettime" ~frame:0 ~saves:[] (fun () ->
      li a Reg.t0 dev_kseg1;
      lw a Reg.v0 A.dev_cycle_lo Reg.t0;
      li a Reg.v1 0);
  (* -- trace_flush: the entry-path drain already emptied the buffer -- *)
  func a "ksys_trace_flush" ~frame:0 ~saves:[] (fun () ->
      li a Reg.v0 0;
      li a Reg.v1 0);
  (* -- thread_create(entry, sp, arg) -> thread id (Mach only):
        a new PCB sharing the caller's address space, starting at [entry]
        with stack [sp] and $a0 = [arg].  Its trace pages are its own,
        faulted in on first touch and remapped at every switch. -- *)
  func a "ksys_thread_create" ~frame:8 ~saves:[ Reg.s0; Reg.s1 ] (fun () ->
      lgv Reg.t0 "kpersonality";
      beqz a Reg.t0 "$tc_fail";
      nop a;
      (* find a free PCB *)
      la a Reg.s0 "pcbs";
      li a Reg.s1 0;
      label a "$tc_scan";
      slti a Reg.t1 Reg.s1 Kcfg.max_procs;
      beqz a Reg.t1 "$tc_fail";
      nop a;
      lw a Reg.t2 Kcfg.pcb_state Reg.s0;
      beqz a Reg.t2 "$tc_take";
      nop a;
      addiu a Reg.s1 Reg.s1 1;
      i a (Insn.J (Sym "$tc_scan"));
      addiu a Reg.s0 Reg.s0 Kcfg.pcb_size;
      label a "$tc_take";
      (* share the caller's address space *)
      lgv Reg.t3 "curpcb";
      lw a Reg.t4 Kcfg.pcb_context Reg.t3;
      sw a Reg.t4 Kcfg.pcb_context Reg.s0;
      lw a Reg.t4 Kcfg.pcb_asid Reg.t3;
      sw a Reg.t4 Kcfg.pcb_asid Reg.s0;
      lw a Reg.t4 Kcfg.pcb_brk Reg.t3;
      sw a Reg.t4 Kcfg.pcb_brk Reg.s0;
      lw a Reg.t4 Kcfg.pcb_trt_lo Reg.t3;
      sw a Reg.t4 Kcfg.pcb_trt_lo Reg.s0;
      lw a Reg.t4 Kcfg.pcb_trt_hi Reg.t3;
      sw a Reg.t4 Kcfg.pcb_trt_hi Reg.s0;
      lw a Reg.t4 Kcfg.pcb_status Reg.t3;
      sw a Reg.t4 Kcfg.pcb_status Reg.s0;
      (* fresh thread state: own trace pages (none yet), marked thread *)
      sw a Reg.zero Kcfg.pcb_traced Reg.s0;
      li a Reg.t4 1;
      sw a Reg.t4 Kcfg.pcb_is_thread Reg.s0;
      li a Reg.t4 (-1);
      sw a Reg.t4 Kcfg.pcb_waitchan Reg.s0;
      for k = 0 to 5 do
        sw a Reg.zero (Kcfg.pcb_trace_ptes + (4 * k)) Reg.s0
      done;
      (* initial registers *)
      sw a Reg.a0 Kcfg.pcb_epc Reg.s0;
      sw a Reg.a1 (Kcfg.pcb_reg Reg.sp) Reg.s0;
      sw a Reg.a2 (Kcfg.pcb_reg Reg.a0) Reg.s0;
      li a Reg.t4 1;
      sw a Reg.t4 Kcfg.pcb_state Reg.s0;
      move a Reg.v0 Reg.s1;
      li a Reg.v1 0;
      j_ a "ksys_thread_create$epilogue";
      label a "$tc_fail";
      li a Reg.v0 (-1);
      li a Reg.v1 0);
  (* -- trace_ctl: report words currently in the in-kernel buffer -- *)
  func a "ksys_trace_ctl" ~frame:0 ~saves:[] (fun () ->
      lgv Reg.t0 "ktrace_cursor_home";
      lgv Reg.t1 "ktrace_buf_base";
      subu a Reg.v0 Reg.t0 Reg.t1;
      srl a Reg.v0 Reg.v0 2;
      li a Reg.v1 0);
  (* ---------------------------------------------------------------- *)
  (* Mach message path                                                 *)
  (* kforward(a0-a2 = args, a3 = syscall number): hand the request to the
     UX server and put the caller to sleep awaiting the reply. *)
  func a "kforward" ~frame:0 ~saves:[] (fun () ->
      la a Reg.t0 "kmsg";
      lw a Reg.t1 0 Reg.t0;
      beqz a Reg.t1 "$f_free";
      nop a;
      (* slot busy: retry later *)
      lgv Reg.t2 "curpcb";
      li a Reg.t3 (-2);
      sw a Reg.t3 Kcfg.pcb_waitchan Reg.t2;
      li a Reg.v1 1;
      j_ a "kforward$epilogue";
      label a "$f_free";
      li a Reg.t1 1;
      sw a Reg.t1 0 Reg.t0;
      lgv Reg.t2 "curpid";
      sw a Reg.t2 4 Reg.t0;
      sw a Reg.a3 8 Reg.t0;
      sw a Reg.a0 12 Reg.t0;
      sw a Reg.a1 16 Reg.t0;
      sw a Reg.a2 20 Reg.t0;
      (* wake the server if it is waiting in recv *)
      lgv Reg.t3 "kserver_pid";
      bltz a Reg.t3 "$f_sleep";
      nop a;
      sll a Reg.t4 Reg.t3 7;
      sll a Reg.t5 Reg.t3 8;
      addu a Reg.t4 Reg.t4 Reg.t5;      (* pid * 384 *)
      la a Reg.t5 "pcbs";
      addu a Reg.t4 Reg.t4 Reg.t5;
      lw a Reg.t6 Kcfg.pcb_waitchan Reg.t4;
      addiu a Reg.t6 Reg.t6 4;          (* waitchan == -4 ? *)
      bnez a Reg.t6 "$f_sleep";
      nop a;
      li a Reg.t6 1;
      sw a Reg.t6 Kcfg.pcb_state Reg.t4;
      label a "$f_sleep";
      lgv Reg.t2 "curpcb";
      li a Reg.t3 (-3);
      sw a Reg.t3 Kcfg.pcb_waitchan Reg.t2;
      li a Reg.v1 2);
  (* -- server_recv: wait for a request; returns v0 = client pid and the
     request words in a0-a3 (delivered through the saved context). -- *)
  func a "ksys_server_recv" ~frame:0 ~saves:[] (fun () ->
      la a Reg.t0 "kmsg";
      lw a Reg.t1 0 Reg.t0;
      addiu a Reg.t2 Reg.t1 (-1);
      beqz a Reg.t2 "$rv_take";
      nop a;
      lgv Reg.t3 "curpcb";
      li a Reg.t4 (-4);
      sw a Reg.t4 Kcfg.pcb_waitchan Reg.t3;
      li a Reg.v1 1;
      j_ a "ksys_server_recv$epilogue";
      label a "$rv_take";
      li a Reg.t2 2;
      sw a Reg.t2 0 Reg.t0;             (* taken *)
      lgv Reg.t3 "curpcb";
      lw a Reg.t4 8 Reg.t0;
      sw a Reg.t4 (Kcfg.pcb_reg Reg.a0) Reg.t3;
      lw a Reg.t4 12 Reg.t0;
      sw a Reg.t4 (Kcfg.pcb_reg Reg.a1) Reg.t3;
      lw a Reg.t4 16 Reg.t0;
      sw a Reg.t4 (Kcfg.pcb_reg Reg.a2) Reg.t3;
      lw a Reg.t4 20 Reg.t0;
      sw a Reg.t4 (Kcfg.pcb_reg Reg.a3) Reg.t3;
      lw a Reg.v0 4 Reg.t0;             (* client pid *)
      li a Reg.v1 0);
  (* -- server_reply(client, retval) -- *)
  func a "ksys_server_reply" ~frame:0 ~saves:[] (fun () ->
      sll a Reg.t0 Reg.a0 7;
      sll a Reg.t1 Reg.a0 8;
      addu a Reg.t0 Reg.t0 Reg.t1;
      la a Reg.t1 "pcbs";
      addu a Reg.t0 Reg.t0 Reg.t1;
      sw a Reg.a1 (Kcfg.pcb_reg Reg.v0) Reg.t0;
      li a Reg.t2 1;
      sw a Reg.t2 Kcfg.pcb_state Reg.t0;
      li a Reg.t3 (-1);
      sw a Reg.t3 Kcfg.pcb_waitchan Reg.t0;
      la a Reg.t4 "kmsg";
      sw a Reg.zero 0 Reg.t4;
      (* wake any clients stalled on the busy slot *)
      la a Reg.t5 "pcbs";
      li a Reg.t6 0;
      label a "$rp_scan";
      lw a Reg.t1 Kcfg.pcb_waitchan Reg.t5;
      addiu a Reg.t1 Reg.t1 2;
      bnez a Reg.t1 "$rp_next";
      nop a;
      lw a Reg.t1 Kcfg.pcb_state Reg.t5;
      addiu a Reg.t1 Reg.t1 (-2);
      bnez a Reg.t1 "$rp_next";
      li a Reg.t1 1;
      sw a Reg.t1 Kcfg.pcb_state Reg.t5;
      label a "$rp_next";
      addiu a Reg.t6 Reg.t6 1;
      slti a Reg.t1 Reg.t6 Kcfg.max_procs;
      i a (Insn.Bne (Reg.t1, Reg.zero, Sym "$rp_scan"));
      addiu a Reg.t5 Reg.t5 Kcfg.pcb_size;
      li a Reg.v0 0;
      li a Reg.v1 0);
  (* -- copyout(client, client_va, my_va, len): server -> client bytes,
     through the kernel bounce page, switching ASID/context for the
     destination half. -- *)
  func a "ksys_copyout" ~frame:16 ~saves:[ Reg.s0; Reg.s1; Reg.s2 ] (fun () ->
      (* phase 1: my_va -> bounce (current = server context) *)
      move a Reg.s0 Reg.a0;
      move a Reg.s1 Reg.a1;
      move a Reg.s2 Reg.a3;              (* len *)
      la a Reg.t0 "kbounce";
      move a Reg.t1 Reg.a2;
      addu a Reg.t2 Reg.a2 Reg.a3;
      label a "$co_l1";
      beq a Reg.t1 Reg.t2 "$co_p2";
      nop a;
      lbu a Reg.t3 0 Reg.t1;
      sb a Reg.t3 0 Reg.t0;
      addiu a Reg.t0 Reg.t0 1;
      i a (Insn.J (Sym "$co_l1"));
      addiu a Reg.t1 Reg.t1 1;
      label a "$co_p2";
      (* phase 2: switch to the client's ASID and page table *)
      sll a Reg.t0 Reg.s0 7;
      sll a Reg.t1 Reg.s0 8;
      addu a Reg.t0 Reg.t0 Reg.t1;
      la a Reg.t1 "pcbs";
      addu a Reg.t0 Reg.t0 Reg.t1;      (* client pcb *)
      i a (Insn.Mfc0 (Reg.t4, C0_entryhi));
      i a (Insn.Mfc0 (Reg.t5, C0_context));
      lw a Reg.t2 Kcfg.pcb_asid Reg.t0;
      sll a Reg.t2 Reg.t2 6;
      i a (Insn.Mtc0 (Reg.t2, C0_entryhi));
      lw a Reg.t2 Kcfg.pcb_context Reg.t0;
      i a (Insn.Mtc0 (Reg.t2, C0_context));
      la a Reg.t0 "kbounce";
      move a Reg.t1 Reg.s1;
      addu a Reg.t2 Reg.s1 Reg.s2;
      label a "$co_l2";
      beq a Reg.t1 Reg.t2 "$co_done";
      nop a;
      lbu a Reg.t3 0 Reg.t0;
      sb a Reg.t3 0 Reg.t1;
      addiu a Reg.t0 Reg.t0 1;
      i a (Insn.J (Sym "$co_l2"));
      addiu a Reg.t1 Reg.t1 1;
      label a "$co_done";
      i a (Insn.Mtc0 (Reg.t4, C0_entryhi));
      i a (Insn.Mtc0 (Reg.t5, C0_context));
      li a Reg.v0 0;
      li a Reg.v1 0);
  (* -- copyin(client, client_va, my_va, len): client -> server. -- *)
  func a "ksys_copyin" ~frame:16 ~saves:[ Reg.s0; Reg.s1; Reg.s2 ] (fun () ->
      move a Reg.s0 Reg.a0;
      move a Reg.s1 Reg.a2;              (* my_va *)
      move a Reg.s2 Reg.a3;
      (* phase 1: client_va -> bounce under the client's context *)
      sll a Reg.t0 Reg.s0 7;
      sll a Reg.t1 Reg.s0 8;
      addu a Reg.t0 Reg.t0 Reg.t1;
      la a Reg.t1 "pcbs";
      addu a Reg.t0 Reg.t0 Reg.t1;
      i a (Insn.Mfc0 (Reg.t4, C0_entryhi));
      i a (Insn.Mfc0 (Reg.t5, C0_context));
      lw a Reg.t2 Kcfg.pcb_asid Reg.t0;
      sll a Reg.t2 Reg.t2 6;
      i a (Insn.Mtc0 (Reg.t2, C0_entryhi));
      lw a Reg.t2 Kcfg.pcb_context Reg.t0;
      i a (Insn.Mtc0 (Reg.t2, C0_context));
      la a Reg.t0 "kbounce";
      move a Reg.t1 Reg.a1;
      addu a Reg.t2 Reg.a1 Reg.a3;
      label a "$ci_l1";
      beq a Reg.t1 Reg.t2 "$ci_p2";
      nop a;
      lbu a Reg.t3 0 Reg.t1;
      sb a Reg.t3 0 Reg.t0;
      addiu a Reg.t0 Reg.t0 1;
      i a (Insn.J (Sym "$ci_l1"));
      addiu a Reg.t1 Reg.t1 1;
      label a "$ci_p2";
      i a (Insn.Mtc0 (Reg.t4, C0_entryhi));
      i a (Insn.Mtc0 (Reg.t5, C0_context));
      (* phase 2: bounce -> my_va under our own context *)
      la a Reg.t0 "kbounce";
      move a Reg.t1 Reg.s1;
      addu a Reg.t2 Reg.s1 Reg.s2;
      label a "$ci_l2";
      beq a Reg.t1 Reg.t2 "$ci_done";
      nop a;
      lbu a Reg.t3 0 Reg.t0;
      sb a Reg.t3 0 Reg.t1;
      addiu a Reg.t0 Reg.t0 1;
      i a (Insn.J (Sym "$ci_l2"));
      addiu a Reg.t1 Reg.t1 1;
      label a "$ci_done";
      li a Reg.v0 0;
      li a Reg.v1 0);
  (* ---------------------------------------------------------------- *)
  (* Syscall dispatch table                                            *)
  dlabel a "ksys_table";
  let entry name = addr a name in
  entry "ksys_bad_stub";      (* 0 *)
  entry "ksys_exit";          (* 1 *)
  entry "ksys_write";         (* 2 *)
  entry "ksys_read";          (* 3 *)
  entry "ksys_open";          (* 4 *)
  entry "ksys_sbrk";          (* 5 *)
  entry "ksys_yield";         (* 6 *)
  entry "ksys_gettime";       (* 7 *)
  entry "ksys_trace_flush";   (* 8 *)
  entry "ksys_trace_ctl";     (* 9 *)
  for _ = 10 to 15 do entry "ksys_bad_stub" done;
  entry "ksys_server_recv";   (* 16 *)
  entry "ksys_server_reply";  (* 17 *)
  entry "ksys_disk_read";     (* 18 *)
  entry "ksys_disk_write";    (* 19 *)
  entry "ksys_copyout";       (* 20 *)
  entry "ksys_copyin";        (* 21 *)
  entry "ksys_thread_create"; (* 22 *)
  func a "ksys_bad_stub" ~frame:0 ~saves:[] (fun () ->
      li a Reg.v0 (-1);
      li a Reg.v1 0);
  to_obj a
